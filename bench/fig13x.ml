(** Figure 13 extension: the expanded transient-fault taxonomy and the
    re-execution recovery pipeline.

    Three tables:
    - outcome grid of native-novec vs ELZAR vs SWIFT-R under each fault
      model (register SEUs, memory bit-flips, effective-address faults,
      control-flow faults) on the Phoenix kernels — registers are the only
      class ELZAR protects, so mem/addr land where §VII predicts;
    - Extended vs Reexec recovery under the adversarial double-bit
      same-bit campaign (the no-majority pattern §III-C worries about),
      where re-execution converts fail-stops into corrections;
    - a sample per-instruction-class AVF table (ELZAR, mixed model). *)

let grid_workloads = [ "hist"; "linreg"; "wc" ]
let grid_models = [ Fault.Reg; Fault.Mem; Fault.Addr; Fault.Cf ]

let model_report (w : Workloads.Workload.t) (b : Elzar.build) (model : Fault.model)
    ~(n : int) : Campaign.report =
  let spec = Workloads.Workload.fi_spec w ~build:b () in
  Campaign.model_campaign ~n
    ~jobs:(Common.fi_effective_jobs ())
    ?progress:
      (Common.fi_progress_cb
         (Printf.sprintf "%s/%s/%s" w.Workloads.Workload.name (Elzar.build_name b)
            (Fault.model_to_string model)))
    ~model spec

let double_report (w : Workloads.Workload.t) (b : Elzar.build) ~(n : int) :
    Campaign.report =
  let spec = Workloads.Workload.fi_spec w ~build:b () in
  Campaign.double ~n ~same_bit:true
    ~jobs:(Common.fi_effective_jobs ())
    ?progress:(Common.fi_progress_cb (w.Workloads.Workload.name ^ "/" ^ Elzar.build_name b))
    spec

let cell (s : Fault.stats) =
  Printf.sprintf "%5.1f %5.1f %5.1f" (Fault.crashed_pct s) (Fault.correct_pct s)
    (Fault.sdc_pct s)

let run () =
  let n_grid = max 25 (!Common.fi_injections / 5) in
  let n_double = max 40 (!Common.fi_injections / 3) in
  let totals = Common.fi_totals () in
  Common.heading
    (Printf.sprintf
       "Figure 13x: fault-model grid (%d injections per cell, crashed/correct/SDC %%)"
       n_grid);
  Printf.printf "%-8s %-5s | %17s | %17s | %17s\n" "bench" "model" "native-novec" "elzar"
    "swift-r";
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      List.iter
        (fun model ->
          let rn = model_report w Elzar.Native_novec model ~n:n_grid in
          let re =
            model_report w (Elzar.Hardened Elzar.Harden_config.default) model ~n:n_grid
          in
          let rs = model_report w Elzar.Swiftr model ~n:n_grid in
          List.iter (Common.fi_account totals) [ rn; re; rs ];
          Printf.printf "%-8s %-5s | %s | %s | %s\n" name (Fault.model_to_string model)
            (cell rn.Campaign.stats) (cell re.Campaign.stats) (cell rs.Campaign.stats))
        grid_models)
    grid_workloads;

  Common.heading
    (Printf.sprintf
       "Figure 13x: Extended vs Reexec recovery (double-bit same-bit, %d injections)"
       n_double);
  Printf.printf "%-8s | %26s | %26s\n" "bench" "extended" "reexec(2)";
  Printf.printf "%-8s | %8s %8s %8s | %8s %8s %8s %9s\n" "" "crashed%" "corr%" "SDC%"
    "crashed%" "corr%" "SDC%" "latency";
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      let re = double_report w (Elzar.Hardened Elzar.Harden_config.extended) ~n:n_double in
      let rr = double_report w (Elzar.Hardened Elzar.Harden_config.reexec) ~n:n_double in
      List.iter (Common.fi_account totals) [ re; rr ];
      let se = re.Campaign.stats and sr = rr.Campaign.stats in
      let lat =
        match Fault.mean_latency (Array.map snd rr.Campaign.outcomes) with
        | Some l -> Printf.sprintf "%8.0f" l
        | None -> "       -"
      in
      Printf.printf "%-8s | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f %s\n" name
        (Fault.crashed_pct se)
        (100.0 *. float_of_int se.Fault.corrected /. float_of_int (max 1 se.Fault.runs))
        (Fault.sdc_pct se) (Fault.crashed_pct sr)
        (100.0 *. float_of_int sr.Fault.corrected /. float_of_int (max 1 sr.Fault.runs))
        (Fault.sdc_pct sr) lat)
    grid_workloads;

  Common.heading "Figure 13x: AVF by instruction class (elzar, hist, mixed model)";
  let w = Workloads.Registry.find "hist" in
  let r =
    model_report w (Elzar.Hardened Elzar.Harden_config.default) Fault.Mixed
      ~n:(max 100 !Common.fi_injections)
  in
  Common.fi_account totals r;
  Format.printf "%a" Fault.pp_avf (Fault.avf_table (Array.map snd r.Campaign.outcomes));
  Common.fi_print_totals totals
