(** Ablations of the design choices called out in DESIGN.md §5. *)

let store_heavy = [ "hist"; "smatch"; "wc"; "dedup" ]

(* (a) store checks: value+address (paper) vs address only *)
let ablate_store_checks () =
  Common.heading "Ablation: store checks value+address vs address-only (16 threads)";
  let addr_only =
    Common.elzar_with "elzar-storeaddr"
      { Elzar.Harden_config.default with store_check_value = false }
  in
  Printf.printf "%-10s %12s %12s\n" "bench" "value+addr" "addr-only";
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      Printf.printf "%-10s %12.2f %12.2f\n" name
        (Common.norm ~nthreads:16 w Common.elzar)
        (Common.norm ~nthreads:16 w addr_only))
    store_heavy

(* (b) recovery strategy: basic low-lane comparison vs extended 3-lane
   vote.  Single-bit faults cannot tell them apart (both mask every
   single-lane fault); the differentiating pattern is the multi-bit SEU of
   §III-C — two lanes corrupted identically look like a majority to the
   basic strategy (silent corruption) while the extended one detects the
   2-2 tie and fail-stops. *)
let ablate_recovery () =
  Common.heading
    "Ablation: recovery strategy under DOUBLE-bit injection (same bit, two lanes)";
  let extended =
    Elzar.Hardened { Elzar.Harden_config.default with recovery = Elzar.Harden_config.Extended }
  in
  Printf.printf "%-10s %30s %30s\n" "bench" "basic (SDC% / crashed%)" "extended (SDC% / crashed%)";
  let totals = Common.fi_totals () in
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      let camp b =
        let r =
          Campaign.double ~same_bit:true ~n:(!Common.fi_injections / 2)
            ~jobs:(Common.fi_effective_jobs ())
            ?progress:(Common.fi_progress_cb (name ^ "/double"))
            (Workloads.Workload.fi_spec w ~build:b ())
        in
        Common.fi_account totals r;
        r.Campaign.stats
      in
      let basic = camp (Elzar.Hardened Elzar.Harden_config.default) in
      let ext = camp extended in
      Printf.printf "%-10s %16.1f / %9.1f %18.1f / %9.1f\n" name (Fault.sdc_pct basic)
        (Fault.crashed_pct basic) (Fault.sdc_pct ext) (Fault.crashed_pct ext))
    [ "hist"; "linreg"; "wc" ];
  Common.fi_print_totals totals

(* (c) SWIFT-R voting: repair-all-copies vs use-majority-only *)
let ablate_swiftr_repair () =
  Common.heading "Ablation: SWIFT-R voting repairs copies vs majority-only (16 threads)";
  let norepair = { Common.tag = "swift-r-norepair"; build = Elzar.Swiftr_norepair } in
  Printf.printf "%-10s %12s %12s\n" "bench" "repair" "no-repair";
  List.iter
    (fun (w : Workloads.Workload.t) ->
      Printf.printf "%-10s %12.2f %12.2f\n" w.Workloads.Workload.name
        (Common.norm ~nthreads:16 w Common.swiftr)
        (Common.norm ~nthreads:16 w norepair))
    Common.all_workloads

(* (d) register pressure: what an infinite-register simulator hides.  Real
   SWIFT-R triples live values and spills on x86's 16 GPRs; ELZAR's data
   replication keeps pressure near native (the paper's core bet). *)
let ablate_register_pressure () =
  Common.heading "Ablation: peak register pressure of the hot kernel (live registers)";
  Printf.printf "%-10s %8s %8s %8s %8s\n" "bench" "native" "elzar" "swift-r" "x86-spill?";
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let pressure b =
        let m = Elzar.prepare b (w.Workloads.Workload.build Workloads.Workload.Tiny) in
        match Ir.Instr.find_func m "work" with
        | Some f -> Ir.Dataflow.max_pressure f
        | None -> 0
      in
      let n = pressure Elzar.Native_novec in
      let e = pressure (Elzar.Hardened Elzar.Harden_config.default) in
      let s = pressure Elzar.Swiftr in
      if n > 0 then
        Printf.printf "%-10s %8d %8d %8d %8s\n" w.Workloads.Workload.name n e s
          (if s > 16 && n <= 16 then "swift-r" else "-"))
    Common.all_workloads

let run () =
  ablate_store_checks ();
  ablate_recovery ();
  ablate_swiftr_repair ();
  ablate_register_pressure ()
