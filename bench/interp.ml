(** Interpreter microbenchmark: simulated MIPS (million dynamic
    instructions retired per host second) of the reference interpreter vs
    the closure-compiled engine, per build flavour.  This is the direct
    measure of the threaded-code tier's win (EXPERIMENTS.md §interp);
    campaign-level wall time is measured by [campaign_speed].

    With [--json], emits BENCH_interp.json in the working directory so CI
    can track the MIPS of both tiers over time. *)

let benchmarks = [ "hist"; "linreg"; "km" ]
let flavours = [ Common.native; Common.native_novec; Common.elzar; Common.swiftr ]

type sample = {
  s_bench : string;
  s_flavour : string;
  s_engine : string;
  s_mode : string;  (** "plain" or "census" (the campaign golden-run config) *)
  s_instrs : int;
  s_seconds : float;
  s_mips : float;
}

(* One timed simulation run.  Machine construction (memory image, IR
   loading, input preparation) stays outside the timed region — this
   benchmark isolates the interpretation rate itself; the closure engine's
   one-time translation happens inside (first quantum) and is part of its
   cost. *)
let time_run (w : Workloads.Workload.t) (f : Common.flavour) ~(census : bool)
    (engine : Cpu.Machine.engine_kind) : int * float =
  let prepared = Common.prepared w f !Common.size in
  let cfg =
    {
      Cpu.Machine.default_config with
      Cpu.Machine.engine;
      count_inject_sites = census;
      reexec_retries = Elzar.reexec_retries f.Common.build;
    }
  in
  let machine =
    Cpu.Machine.create ~cfg ~flags_cmp:(Elzar.uses_flags_cmp f.Common.build) prepared
  in
  w.Workloads.Workload.init !Common.size machine;
  let t0 = Unix.gettimeofday () in
  let r = Cpu.Machine.run ~args:[| 2L |] machine "main" in
  let dt = Unix.gettimeofday () -. t0 in
  (match r.Cpu.Machine.trap with
  | Some t -> failwith ("bench interp: trapped: " ^ Cpu.Machine.string_of_trap t)
  | None -> ());
  (r.Cpu.Machine.totals.Cpu.Counters.instrs, dt)

let engine_name = function
  | Cpu.Machine.Reference -> "reference"
  | Cpu.Machine.Closure -> "closure"

let measure (w : Workloads.Workload.t) (f : Common.flavour) ~(census : bool)
    (engine : Cpu.Machine.engine_kind) : sample =
  ignore (time_run w f ~census engine);  (* warm-up: page in code paths and caches *)
  let instrs, dt = time_run w f ~census engine in
  {
    s_bench = w.Workloads.Workload.name;
    s_flavour = f.Common.tag;
    s_engine = engine_name engine;
    s_mode = (if census then "census" else "plain");
    s_instrs = instrs;
    s_seconds = dt;
    s_mips = float_of_int instrs /. 1e6 /. dt;
  }

(* The versioned document (schema "elzar.bench.interp") goes through the
   same report pipeline as campaigns and CLI runs. *)
let emit_json path (samples : sample list) (speedups : (string * float) list) =
  let sample_json s =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str s.s_bench);
        ("flavour", Obs.Json.Str s.s_flavour);
        ("engine", Obs.Json.Str s.s_engine);
        ("mode", Obs.Json.Str s.s_mode);
        ("instrs", Obs.Json.Int s.s_instrs);
        ("seconds", Obs.Json.Float s.s_seconds);
        ("mips", Obs.Json.Float s.s_mips);
      ]
  in
  Report.write path
    (Report.versioned ~schema:"elzar.bench.interp"
       [
         ("size", Obs.Json.Str (Workloads.Workload.size_to_string !Common.size));
         ("samples", Obs.Json.List (List.map sample_json samples));
         ( "closure_speedup",
           Obs.Json.Obj (List.map (fun (tag, x) -> (tag, Obs.Json.Float x)) speedups) );
       ])

let run () =
  Common.heading "Interpreter MIPS: reference interpreter vs closure engine";
  Printf.printf "%-10s %-14s %-7s %10s %10s %8s\n" "bench" "flavour" "mode" "ref MIPS"
    "clos MIPS" "speedup";
  let samples = ref [] in
  let speedups = ref [] in
  List.iter
    (fun f ->
      List.iter
        (fun census ->
          let per = ref [] in
          List.iter
            (fun name ->
              let w = Workloads.Registry.find name in
              let sr = measure w f ~census Cpu.Machine.Reference in
              let sc = measure w f ~census Cpu.Machine.Closure in
              samples := !samples @ [ sr; sc ];
              per := (sc.s_mips /. sr.s_mips) :: !per;
              Printf.printf "%-10s %-14s %-7s %10.2f %10.2f %7.2fx\n" name f.Common.tag
                sr.s_mode sr.s_mips sc.s_mips (sc.s_mips /. sr.s_mips))
            benchmarks;
          speedups :=
            !speedups
            @ [ (f.Common.tag ^ "/" ^ (if census then "census" else "plain"),
                 Common.gmean !per) ])
        [ false; true ])
    flavours;
  List.iter
    (fun (tag, x) -> Printf.printf "%-25s gmean closure speedup %.2fx\n" tag x)
    !speedups;
  if !Common.json_reports then begin
    emit_json "BENCH_interp.json" !samples !speedups;
    Printf.printf "wrote BENCH_interp.json\n"
  end
