(** Interpreter microbenchmark: simulated MIPS (million dynamic
    instructions retired per host second) of the three execution tiers —
    reference interpreter, closure engine, block-fused engine — per build
    flavour.  Every cell doubles as a bit-identity check: the engines must
    agree on retired instructions, wall cycles and the output digest, or
    the benchmark fails.  This is the direct measure of the compiled
    tiers' win (EXPERIMENTS.md §interp); campaign-level wall time is
    measured by [campaign_speed].

    With [--json], emits BENCH_interp.json in the working directory so CI
    can track the MIPS of all tiers over time. *)

let benchmarks = [ "hist"; "linreg"; "km" ]
let flavours = [ Common.native; Common.native_novec; Common.elzar; Common.swiftr ]

type sample = {
  s_bench : string;
  s_flavour : string;
  s_engine : string;
  s_mode : string;  (** "plain" or "census" (the campaign golden-run config) *)
  s_instrs : int;
  s_cycles : int;
  s_digest : string;
  s_seconds : float;
  s_mips : float;
}

(* One timed simulation run.  Machine construction (memory image, IR
   loading, input preparation) stays outside the timed region — this
   benchmark isolates the interpretation rate itself; the compiled
   engines' one-time translation happens inside (first quantum) and is
   part of their cost. *)
let time_run (w : Workloads.Workload.t) (f : Common.flavour) ~(census : bool)
    (engine : Cpu.Machine.engine_kind) : int * int * string * float =
  let prepared = Common.prepared w f !Common.size in
  let cfg =
    {
      Cpu.Machine.default_config with
      Cpu.Machine.engine;
      count_inject_sites = census;
      reexec_retries = Elzar.reexec_retries f.Common.build;
    }
  in
  let machine =
    Cpu.Machine.create ~cfg ~flags_cmp:(Elzar.uses_flags_cmp f.Common.build) prepared
  in
  w.Workloads.Workload.init !Common.size machine;
  let t0 = Unix.gettimeofday () in
  let r = Cpu.Machine.run ~args:[| 2L |] machine "main" in
  let dt = Unix.gettimeofday () -. t0 in
  (match r.Cpu.Machine.trap with
  | Some t -> failwith ("bench interp: trapped: " ^ Cpu.Machine.string_of_trap t)
  | None -> ());
  ( r.Cpu.Machine.totals.Cpu.Counters.instrs,
    r.Cpu.Machine.wall_cycles,
    r.Cpu.Machine.output_digest,
    dt )

let measure (w : Workloads.Workload.t) (f : Common.flavour) ~(census : bool)
    (engine : Cpu.Machine.engine_kind) : sample =
  ignore (time_run w f ~census engine);  (* warm-up: page in code paths and caches *)
  let instrs, cycles, digest, dt = time_run w f ~census engine in
  {
    s_bench = w.Workloads.Workload.name;
    s_flavour = f.Common.tag;
    s_engine = Cpu.Machine.engine_to_string engine;
    s_mode = (if census then "census" else "plain");
    s_instrs = instrs;
    s_cycles = cycles;
    s_digest = digest;
    s_seconds = dt;
    s_mips = float_of_int instrs /. 1e6 /. dt;
  }

(* Cross-engine bit-identity: the benchmark is also a correctness gate. *)
let check_identity (a : sample) (b : sample) =
  if a.s_instrs <> b.s_instrs || a.s_cycles <> b.s_cycles || a.s_digest <> b.s_digest
  then
    failwith
      (Printf.sprintf
         "bench interp: %s/%s/%s: engines %s and %s diverge (instrs %d vs %d, cycles \
          %d vs %d, digests %s)"
         a.s_bench a.s_flavour a.s_mode a.s_engine b.s_engine a.s_instrs b.s_instrs
         a.s_cycles b.s_cycles
         (if a.s_digest = b.s_digest then "equal" else "differ"))

(* The versioned document (schema "elzar.bench.interp") goes through the
   same report pipeline as campaigns and CLI runs.  [closure_speedup]
   (closure over reference, per flavour/mode) is kept for continuity;
   [gmean_speedup] summarizes each engine pair over the plain-mode cells
   (the census cells deliberately deoptimize most blocks on hardened
   flavours, so they measure the fallback, not the tier). *)
let emit_json path (samples : sample list) (speedups : (string * float) list)
    (pair_gmeans : (string * float) list) =
  let sample_json s =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str s.s_bench);
        ("flavour", Obs.Json.Str s.s_flavour);
        ("engine", Obs.Json.Str s.s_engine);
        ("mode", Obs.Json.Str s.s_mode);
        ("instrs", Obs.Json.Int s.s_instrs);
        ("cycles", Obs.Json.Int s.s_cycles);
        ("seconds", Obs.Json.Float s.s_seconds);
        ("mips", Obs.Json.Float s.s_mips);
      ]
  in
  Report.write path
    (Report.versioned ~schema:"elzar.bench.interp"
       [
         ("size", Obs.Json.Str (Workloads.Workload.size_to_string !Common.size));
         ("samples", Obs.Json.List (List.map sample_json samples));
         ( "closure_speedup",
           Obs.Json.Obj (List.map (fun (tag, x) -> (tag, Obs.Json.Float x)) speedups) );
         ( "gmean_speedup",
           Obs.Json.Obj
             (List.map (fun (pair, x) -> (pair, Obs.Json.Float x)) pair_gmeans) );
       ])

let pairs = [ "closure_over_reference"; "block_over_reference"; "block_over_closure" ]

let run () =
  Common.heading "Interpreter MIPS: reference vs closure vs block engines";
  Printf.printf "%-10s %-14s %-7s %9s %9s %9s %9s\n" "bench" "flavour" "mode"
    "ref MIPS" "clos MIPS" "blk MIPS" "blk/clos";
  let samples = ref [] in
  let speedups = ref [] in
  let pair_acc = Hashtbl.create 8 in
  let note pair r =
    Hashtbl.replace pair_acc pair
      (r :: (try Hashtbl.find pair_acc pair with Not_found -> []))
  in
  List.iter
    (fun f ->
      List.iter
        (fun census ->
          let per_clos = ref [] and per_blk = ref [] in
          List.iter
            (fun name ->
              let w = Workloads.Registry.find name in
              let sr = measure w f ~census Cpu.Machine.Reference in
              let sc = measure w f ~census Cpu.Machine.Closure in
              let sb = measure w f ~census Cpu.Machine.Block in
              check_identity sr sc;
              check_identity sr sb;
              samples := !samples @ [ sr; sc; sb ];
              per_clos := (sc.s_mips /. sr.s_mips) :: !per_clos;
              per_blk := (sb.s_mips /. sc.s_mips) :: !per_blk;
              if not census then begin
                note "closure_over_reference" (sc.s_mips /. sr.s_mips);
                note "block_over_reference" (sb.s_mips /. sr.s_mips);
                note "block_over_closure" (sb.s_mips /. sc.s_mips)
              end;
              Printf.printf "%-10s %-14s %-7s %9.2f %9.2f %9.2f %8.2fx\n" name
                f.Common.tag sr.s_mode sr.s_mips sc.s_mips sb.s_mips
                (sb.s_mips /. sc.s_mips))
            benchmarks;
          let mode = if census then "census" else "plain" in
          speedups := !speedups @ [ (f.Common.tag ^ "/" ^ mode, Common.gmean !per_clos) ];
          Printf.printf "  %-30s gmean closure/ref %.2fx  block/closure %.2fx\n"
            (f.Common.tag ^ "/" ^ mode)
            (Common.gmean !per_clos) (Common.gmean !per_blk))
        [ false; true ])
    flavours;
  let pair_gmeans =
    List.map (fun p -> (p, Common.gmean (Hashtbl.find pair_acc p))) pairs
  in
  Printf.printf "identity: all %d cells bit-identical across the three engines\n"
    (List.length !samples / 3);
  List.iter
    (fun (pair, x) -> Printf.printf "%-25s gmean speedup (plain) %.2fx\n" pair x)
    pair_gmeans;
  if !Common.json_reports then begin
    emit_json "BENCH_interp.json" !samples !speedups pair_gmeans;
    Printf.printf "wrote BENCH_interp.json\n"
  end
