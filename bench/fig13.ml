(** Figure 13: fault-injection reliability of native vs ELZAR (2 threads,
    smallest inputs, single-bit flips in destination registers of hardened
    code).  Paper: 12 benchmarks (mmul and fluidanimate excluded), 2,500
    injections each; the campaign size here is configurable
    (--injections), and campaigns fan out over --fi-jobs worker domains
    with bit-identical results for any worker count. *)

let campaign (w : Workloads.Workload.t) (b : Elzar.build) : Campaign.report =
  let spec = Workloads.Workload.fi_spec w ~build:b () in
  Campaign.single ~n:!Common.fi_injections
    ~jobs:(Common.fi_effective_jobs ())
    ?progress:(Common.fi_progress_cb (w.Workloads.Workload.name ^ "/" ^ Elzar.build_name b))
    spec

let run () =
  Common.heading
    (Printf.sprintf
       "Figure 13: fault injection outcomes (%d injections per bar, 2 threads, %d workers)"
       !Common.fi_injections (Common.fi_effective_jobs ()));
  Printf.printf "%-10s | %28s | %38s | %14s\n" "bench" "native" "elzar" "campaign cost";
  Printf.printf "%-10s | %8s %8s %8s | %8s %8s %8s %10s | %6s %7s\n" "" "crashed%" "correct%"
    "SDC%" "crashed%" "correct%" "SDC%" "corrected%" "wall-s" "Gcycles";
  let agg = ref [] in
  let totals = Common.fi_totals () in
  List.iter
    (fun w ->
      if w.Workloads.Workload.fi_ok then begin
        let rn = campaign w Elzar.Native_novec in
        let re = campaign w (Elzar.Hardened Elzar.Harden_config.default) in
        Common.fi_account totals rn;
        Common.fi_account totals re;
        let n = rn.Campaign.stats and e = re.Campaign.stats in
        agg := (n, e) :: !agg;
        Printf.printf "%-10s | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f %10.1f | %6.1f %7.2f\n"
          w.Workloads.Workload.name (Fault.crashed_pct n) (Fault.correct_pct n)
          (Fault.sdc_pct n) (Fault.crashed_pct e) (Fault.correct_pct e) (Fault.sdc_pct e)
          (100.0 *. float_of_int e.Fault.corrected /. float_of_int (max 1 e.Fault.runs))
          (rn.Campaign.wall_seconds +. re.Campaign.wall_seconds)
          (float_of_int (rn.Campaign.cycles_simulated + re.Campaign.cycles_simulated) /. 1e9)
      end)
    Common.all_workloads;
  let mean f side = Common.mean (List.map (fun (n, e) -> f (side (n, e))) !agg) in
  Printf.printf "%-10s | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f\n" "mean"
    (mean Fault.crashed_pct fst) (mean Fault.correct_pct fst) (mean Fault.sdc_pct fst)
    (mean Fault.crashed_pct snd) (mean Fault.correct_pct snd) (mean Fault.sdc_pct snd);
  Common.fi_print_totals totals
