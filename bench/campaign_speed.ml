(** Campaign wall-time: the Fig. 13 injection campaign under the old
    configuration (reference interpreter, every run replays the whole
    program) vs the optimized one (closure engine + snapshot
    fast-forward), at the same worker count and seed.  The two reports
    must be bit-identical — the speedup is pure execution engineering,
    not a change of experiment — and the bench fails loudly if they are
    not.

    The optimized campaign is also re-run under a {!Supervisor} (the
    production default for CLI campaigns): its results must again be
    bit-identical — supervision is pure insurance, never a change of
    experiment — and its wall-time overhead is reported alongside the
    speedup.

    With [--json], emits BENCH_campaign.json recording the wall times,
    the speedup and the supervision overhead per benchmark plus the
    geometric-mean speedup. *)

let benchmarks = [ "hist"; "linreg" ]

type row = {
  r_bench : string;
  r_baseline_s : float;
  r_optimized_s : float;
  r_supervised_s : float;
  r_speedup : float;
  r_sup_overhead : float;  (** supervised / optimized wall-time ratio *)
  r_runs : int;
  r_report : Campaign.report;  (** the optimized campaign, for the JSON results block *)
}

let campaign (w : Workloads.Workload.t) ~(engine : Cpu.Machine.engine_kind)
    ~(fast_forward : bool) ?supervise () : Campaign.report =
  let spec =
    { (Workloads.Workload.fi_spec w ~build:(Elzar.Hardened Elzar.Harden_config.default) ())
      with Fault.engine = engine }
  in
  Campaign.single ~n:!Common.fi_injections
    ~jobs:(Common.fi_effective_jobs ())
    ~fast_forward ?supervise spec

let measure (name : string) : row =
  let w = Workloads.Registry.find name in
  let base = campaign w ~engine:Cpu.Machine.Reference ~fast_forward:false () in
  let opt = campaign w ~engine:Cpu.Machine.Closure ~fast_forward:true () in
  if not (base.Campaign.stats = opt.Campaign.stats
          && base.Campaign.outcomes = opt.Campaign.outcomes) then
    failwith
      (Printf.sprintf
         "bench campaign: %s: optimized campaign is NOT bit-identical to baseline" name);
  let sup =
    campaign w ~engine:Cpu.Machine.Closure ~fast_forward:true
      ~supervise:Supervisor.default ()
  in
  if not (sup.Campaign.stats = opt.Campaign.stats
          && sup.Campaign.outcomes = opt.Campaign.outcomes
          && sup.Campaign.quarantined = []) then
    failwith
      (Printf.sprintf
         "bench campaign: %s: supervised campaign is NOT bit-identical to unsupervised"
         name);
  {
    r_bench = name;
    r_baseline_s = base.Campaign.wall_seconds;
    r_optimized_s = opt.Campaign.wall_seconds;
    r_supervised_s = sup.Campaign.wall_seconds;
    r_speedup = base.Campaign.wall_seconds /. opt.Campaign.wall_seconds;
    r_sup_overhead = sup.Campaign.wall_seconds /. opt.Campaign.wall_seconds;
    r_runs = opt.Campaign.experiments_run;
    r_report = opt;
  }

(* Schema "elzar.bench.campaign".  Each row carries the optimized
   campaign's deterministic results block, so CI diffs catch outcome
   drift as well as wall-time regressions. *)
let emit_json path (rows : row list) (g : float) =
  let row_json r =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str r.r_bench);
        ("runs", Obs.Json.Int r.r_runs);
        ("baseline_seconds", Obs.Json.Float r.r_baseline_s);
        ("optimized_seconds", Obs.Json.Float r.r_optimized_s);
        ("supervised_seconds", Obs.Json.Float r.r_supervised_s);
        ("speedup", Obs.Json.Float r.r_speedup);
        ("supervision_overhead", Obs.Json.Float r.r_sup_overhead);
        ("bit_identical", Obs.Json.Bool true);
        ("results", Report.campaign_results r.r_report);
      ]
  in
  Report.write path
    (Report.versioned ~schema:"elzar.bench.campaign"
       [
         ("injections", Obs.Json.Int !Common.fi_injections);
         ("jobs", Obs.Json.Int (Common.fi_effective_jobs ()));
         ("campaigns", Obs.Json.List (List.map row_json rows));
         ("gmean_speedup", Obs.Json.Float g);
       ])

let run () =
  Common.heading
    (Printf.sprintf
       "Campaign wall-time: reference+replay vs closure+fast-forward (%d injections, %d \
        workers)"
       !Common.fi_injections (Common.fi_effective_jobs ()));
  Printf.printf "%-10s %6s %12s %12s %8s %9s\n" "bench" "runs" "baseline-s" "optimized-s"
    "speedup" "sup-ovh";
  let rows = List.map measure benchmarks in
  List.iter
    (fun r ->
      Printf.printf "%-10s %6d %12.2f %12.2f %7.2fx %8.2fx\n" r.r_bench r.r_runs
        r.r_baseline_s r.r_optimized_s r.r_speedup r.r_sup_overhead)
    rows;
  let g = Common.gmean (List.map (fun r -> r.r_speedup) rows) in
  Printf.printf "%-10s %38s %7.2fx\n" "gmean" "" g;
  if !Common.json_reports then begin
    emit_json "BENCH_campaign.json" rows g;
    Printf.printf "wrote BENCH_campaign.json (reports bit-identical)\n"
  end
