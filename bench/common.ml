(** Shared plumbing for the experiment harness: prepared-module and result
    caches (so figures can reuse each other's runs), build flavours, and
    table formatting. *)

let size = ref Workloads.Workload.Medium
let fi_injections = ref 150

(* Execution engine for the simulation runs behind the figures.  Set with
   --engine; experiments that sweep or compare engines themselves (interp,
   campaign_speed) ignore it and measure all tiers. *)
let engine = ref Cpu.Machine.default_config.Cpu.Machine.engine

(* Fault-injection campaign worker pool: 0 = auto (one worker per
   recommended domain).  Set with --fi-jobs. *)
let fi_jobs = ref 0

(* Live progress meter for campaigns on stderr.  Set with --fi-progress. *)
let fi_progress = ref false

(* Write the machine-readable BENCH_*.json reports (interp, campaign).
   Set with --json; the perf-smoke alias passes it so CI always tracks
   them. *)
let json_reports = ref false

let fi_effective_jobs () = if !fi_jobs > 0 then !fi_jobs else Campaign.default_jobs ()

let fi_progress_cb tag : (Campaign.progress -> unit) option =
  if not !fi_progress then None
  else
    Some
      (fun (p : Campaign.progress) ->
        if p.Campaign.completed mod 10 = 0 || p.Campaign.completed = p.Campaign.total then
          Printf.eprintf
            "\r%-24s %d/%d injections  (%.0fs elapsed, eta %.0fs, SDC %d, crashed %d%s)   %!"
            tag p.Campaign.completed p.Campaign.total p.Campaign.elapsed p.Campaign.eta
            p.Campaign.running.Fault.sdc
            (p.Campaign.running.Fault.hang + p.Campaign.running.Fault.deadlock
           + p.Campaign.running.Fault.os_detected)
            (if p.Campaign.restored > 0 then
               Printf.sprintf ", %d ckpt" p.Campaign.restored
             else "");
        if p.Campaign.completed >= p.Campaign.total then prerr_newline ())

(* Accumulates campaign observability totals for a figure's footer line. *)
type fi_totals = {
  mutable t_experiments : int;
  mutable t_wall : float;
  mutable t_cycles : int;
  mutable t_not_reached : int;
}

let fi_totals () = { t_experiments = 0; t_wall = 0.0; t_cycles = 0; t_not_reached = 0 }

let fi_account (t : fi_totals) (r : Campaign.report) =
  t.t_experiments <- t.t_experiments + r.Campaign.experiments_run;
  t.t_wall <- t.t_wall +. r.Campaign.wall_seconds;
  t.t_cycles <- t.t_cycles + r.Campaign.cycles_simulated;
  t.t_not_reached <- t.t_not_reached + r.Campaign.not_reached

let fi_print_totals (t : fi_totals) =
  Printf.printf
    "campaign totals: %d experiments, %.1fs wall, %.2f Gcycles simulated, %d workers%s\n"
    t.t_experiments t.t_wall
    (float_of_int t.t_cycles /. 1e9)
    (fi_effective_jobs ())
    (if t.t_not_reached > 0 then
       Printf.sprintf ", %d not-reached redrawn" t.t_not_reached
     else "")

type flavour = {
  tag : string;
  build : Elzar.build;
}

let native = { tag = "native"; build = Elzar.Native }
let native_novec = { tag = "native-novec"; build = Elzar.Native_novec }
let elzar = { tag = "elzar"; build = Elzar.Hardened Elzar.Harden_config.default }
let swiftr = { tag = "swift-r"; build = Elzar.Swiftr }

let elzar_with tag cfg = { tag; build = Elzar.Hardened cfg }

(* ---- caches ---- *)

let prepared_cache : (string, Ir.Instr.modul) Hashtbl.t = Hashtbl.create 64
let result_cache : (string, Cpu.Machine.result) Hashtbl.t = Hashtbl.create 256

let prepared (w : Workloads.Workload.t) (f : flavour) (size : Workloads.Workload.size) =
  let key =
    Printf.sprintf "%s/%s/%s" w.Workloads.Workload.name f.tag
      (Workloads.Workload.size_to_string size)
  in
  match Hashtbl.find_opt prepared_cache key with
  | Some m -> m
  | None ->
      let m = Elzar.prepare f.build (w.Workloads.Workload.build size) in
      Hashtbl.replace prepared_cache key m;
      m

(* Runs a workload under a flavour, caching results across figures. *)
let run ?(nthreads = 16) ?size:size_opt (w : Workloads.Workload.t) (f : flavour) :
    Cpu.Machine.result =
  let size = Option.value size_opt ~default:!size in
  let key =
    Printf.sprintf "%s/%s/%s/%d/%s" w.Workloads.Workload.name f.tag
      (Workloads.Workload.size_to_string size)
      nthreads
      (Cpu.Machine.engine_to_string !engine)
  in
  match Hashtbl.find_opt result_cache key with
  | Some r -> r
  | None ->
      let m = prepared w f size in
      let machine_cfg =
        { Cpu.Machine.default_config with Cpu.Machine.engine = !engine }
      in
      let r =
        Workloads.Workload.execute_prepared w ~machine_cfg ~prepared:m
          ~reexec_retries:(Elzar.reexec_retries f.build)
          ~flags_cmp:(Elzar.uses_flags_cmp f.build) ~nthreads ~size
      in
      (match r.Cpu.Machine.trap with
      | Some t ->
          failwith
            (Printf.sprintf "bench: %s trapped: %s" key (Cpu.Machine.string_of_trap t))
      | None -> ());
      Hashtbl.replace result_cache key r;
      r

(* Normalized runtime w.r.t. the vectorized native build at the same thread
   count (the paper's unit). *)
let norm ?(nthreads = 16) (w : Workloads.Workload.t) (f : flavour) : float =
  let r = run ~nthreads w f in
  let n = run ~nthreads w native in
  float_of_int r.Cpu.Machine.wall_cycles /. float_of_int (max 1 n.Cpu.Machine.wall_cycles)

let gmean xs =
  match xs with
  | [] -> nan
  | _ -> exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* ---- formatting ---- *)

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row_header cols = Printf.printf "%-10s %s\n" "bench" (String.concat " " cols)

let threads_sweep = [ 1; 2; 4; 8; 16 ]

let all_workloads = Workloads.Registry.all
