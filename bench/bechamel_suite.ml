(** Bechamel micro-measurements: one [Test.make] per paper table/figure,
    each wrapping a representative single run of that experiment's
    simulation, so wall-clock regressions in the harness itself are
    trackable. *)

open Bechamel
open Toolkit

let tiny = Workloads.Workload.Tiny

let run_workload name flavour () =
  let w = Workloads.Registry.find name in
  ignore
    (Workloads.Workload.execute w ~build:flavour ~nthreads:2 ~size:tiny : Cpu.Machine.result)

let run_app () =
  let app = Apps.Registry_apps.find "apache" in
  ignore
    (Apps.App.execute app ~build:Elzar.Native ~client:Apps.App.Ab ~nthreads:2
      : Cpu.Machine.result)

let run_injection () =
  let w = Workloads.Registry.find "linreg" in
  let spec = Workloads.Workload.fi_spec w ~build:(Elzar.Hardened Elzar.Harden_config.default) () in
  (* jobs:1 — a microbenchmark kernel must not time domain spawning *)
  ignore (Campaign.single ~n:2 ~jobs:1 spec : Campaign.report)

let elzar = Elzar.Hardened Elzar.Harden_config.default

let tests =
  [
    Test.make ~name:"fig1:vectorized-native" (Staged.stage (run_workload "smatch" Elzar.Native));
    Test.make ~name:"fig11:elzar-run" (Staged.stage (run_workload "linreg" elzar));
    Test.make ~name:"fig12:no-checks-run"
      (Staged.stage (run_workload "hist" (Elzar.Hardened Elzar.Harden_config.no_checks)));
    Test.make ~name:"tab2:native-counters" (Staged.stage (run_workload "wc" Elzar.Native));
    Test.make ~name:"tab3:swiftr-run" (Staged.stage (run_workload "pca" Elzar.Swiftr));
    Test.make ~name:"fig13:fault-injection" (Staged.stage run_injection);
    Test.make ~name:"fig14:baseline-pair" (Staged.stage (run_workload "black" Elzar.Swiftr));
    Test.make ~name:"fig15:case-study" (Staged.stage run_app);
    Test.make ~name:"tab4:micro-wrapper"
      (Staged.stage
         (run_workload "micro-loads-avg" (Elzar.Hardened Elzar.Harden_config.no_checks)));
    Test.make ~name:"fig17:future-avx"
      (Staged.stage (run_workload "mmul" (Elzar.Hardened Elzar.Harden_config.future_avx)));
  ]

let benchmark () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.6) ~kde:(Some 300) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"elzar" tests) in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instances results in
  results

let run () =
  Common.heading "Bechamel: harness wall-clock per experiment kernel (ns/run)";
  let results = benchmark () in
  Hashtbl.iter
    (fun label tbl ->
      if label = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name ols ->
            match Bechamel.Analyze.OLS.estimates ols with
            | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
            | _ -> Printf.printf "%-28s (no estimate)\n" name)
          tbl)
    results
