(** Experiment harness: regenerates every table and figure of the paper's
    evaluation (DESIGN.md section 4 maps each to its module).

    Usage: bench/main.exe [experiments...] [--size S] [--engine E]
    [--injections N] [--fi-jobs J] [--fi-progress] [--json]
    With no arguments, runs everything. *)

let experiments =
  [
    ("fig1", Fig01.run);
    ("fig5", Fig05.run);
    ("tab2", Tab02.run);
    ("fig11", Fig11.run);
    ("fig12", Fig12.run);
    ("tab3", Tab03.run);
    ("fig13", Fig13.run);
    ("fig13x", Fig13x.run);
    ("interp", Interp.run);
    ("campaign", Campaign_speed.run);
    ("fig14", Fig14.run);
    ("floatonly", Floatonly.run);
    ("fig15", Fig15.run);
    ("tab4", Tab04.run);
    ("fig17", Fig17.run);
    ("ablate", Ablate.run);
    ("ext", Ext.run);
    ("bechamel", Bechamel_suite.run);
  ]

let usage () =
  Printf.printf
    "usage: main.exe [%s] [--size tiny|small|medium|large] \
     [--engine reference|closure|block] [--injections N] [--fi-jobs J] \
     [--fi-progress] [--json]\n"
    (String.concat "|" (List.map fst experiments));
  exit 1

let () =
  let selected = ref [] in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--size" :: s :: rest ->
        (Common.size :=
           match s with
           | "tiny" -> Workloads.Workload.Tiny
           | "small" -> Workloads.Workload.Small
           | "medium" -> Workloads.Workload.Medium
           | "large" -> Workloads.Workload.Large
           | _ -> usage ());
        parse rest
    | "--engine" :: e :: rest ->
        (Common.engine :=
           match e with
           | "reference" -> Cpu.Machine.Reference
           | "closure" -> Cpu.Machine.Closure
           | "block" -> Cpu.Machine.Block
           | _ -> usage ());
        parse rest
    | "--injections" :: n :: rest ->
        Common.fi_injections := int_of_string n;
        parse rest
    | "--fi-jobs" :: n :: rest ->
        Common.fi_jobs := int_of_string n;
        parse rest
    | "--fi-progress" :: rest ->
        Common.fi_progress := true;
        parse rest
    | "--json" :: rest ->
        Common.json_reports := true;
        parse rest
    | name :: rest when List.mem_assoc name experiments ->
        selected := name :: !selected;
        parse rest
    | "--help" :: _ -> usage ()
    | x :: _ ->
        Printf.printf "unknown argument %s\n" x;
        usage ()
  in
  parse (List.tl args);
  let todo = if !selected = [] then List.map fst experiments else List.rev !selected in
  Printf.printf "ELZAR experiment harness (size=%s, engine=%s, injections=%d, fi-jobs=%d)\n"
    (Workloads.Workload.size_to_string !Common.size)
    (Cpu.Machine.engine_to_string !Common.engine)
    !Common.fi_injections
    (Common.fi_effective_jobs ());
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      let t = Unix.gettimeofday () in
      (List.assoc name experiments) ();
      Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t))
    todo;
  Printf.printf "\ntotal: %.1fs\n" (Unix.gettimeofday () -. t0)
