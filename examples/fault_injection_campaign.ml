(* Scenario: measuring fault coverage (paper §V-C).

   Runs a small fault-injection campaign against one benchmark in its
   native and ELZAR builds and prints the Table I outcome breakdown, plus
   the window-of-vulnerability story: with the future-AVX gather/scatter
   mode the load-address extraction window closes and SDCs drop further.

   Run with: dune exec examples/fault_injection_campaign.exe [workload] [n] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "wc" in
  let n = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 120 in
  let w = Workloads.Registry.find name in
  let campaign tag build =
    let spec = Workloads.Workload.fi_spec w ~build () in
    (* experiments fan out over all recommended domains; for a fixed seed
       the stats are bit-identical no matter how many workers run them *)
    let r = Campaign.single ~n spec in
    let stats = r.Campaign.stats in
    Printf.printf
      "%-14s crashed %5.1f%%  correct %5.1f%% (corrected %4.1f%%)  SDC %5.1f%%  [%.1fs, %d \
       workers]\n"
      tag (Fault.crashed_pct stats) (Fault.correct_pct stats)
      (100.0 *. float_of_int stats.Fault.corrected /. float_of_int (max 1 stats.Fault.runs))
      (Fault.sdc_pct stats) r.Campaign.wall_seconds r.Campaign.jobs
  in
  Printf.printf "fault injection on '%s' (%d single-bit flips per build)\n\n" name n;
  campaign "native" Elzar.Native_novec;
  campaign "elzar" (Elzar.Hardened Elzar.Harden_config.default);
  campaign "elzar-future" (Elzar.Hardened Elzar.Harden_config.future_avx)
