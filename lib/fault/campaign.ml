(** Parallel, deterministic fault-injection campaign engine (paper §IV-B).

    The paper's evaluation runs thousands of independent single-run
    experiments per benchmark; every experiment re-executes the whole
    workload on the simulated machine, which makes campaigns the slowest
    part of the bench suite.  Experiments are mutually independent, so —
    like the SDE/gdb harness the paper scripts around, and like RepTFD's
    campaign driver — they fan out over a pool of workers, here OCaml 5
    domains.

    Determinism: the full experiment list is pre-drawn from the seeded RNG
    before any worker starts, and outcomes are folded back in plan order,
    so the resulting statistics are bit-identical regardless of the worker
    count.  Experiments whose injection site is never reached
    ({!Fault.Not_reached}) carry no information; they are discarded and
    replaced with fresh draws from the same RNG stream (in plan-slot
    order, preserving determinism), as the paper's campaign does.

    Observability: per-outcome running counters and an ETA are pushed to
    an optional progress callback, and the report totals wall-clock time
    and simulated cycles.  Campaigns can checkpoint completed experiments
    to a file and resume after an interruption instead of restarting. *)

(* ---- sizing ---- *)

(* Worker-pool width when the caller does not pin one. *)
let default_jobs () = Domain.recommended_domain_count ()

(* A Not_reached replacement can itself be Not_reached; give up redrawing
   after this many rounds and report the leftovers as discarded. *)
let max_rounds = 8

(* Completed experiments between two checkpoint writes. *)
let save_every = 32

(* ---- experiment drawing (one RNG, fixed draw order) ---- *)

let draw_single (rng : Random.State.t) ~(sites : int) : Fault.experiment =
  let at = 1 + Random.State.int rng sites in
  let lane = Random.State.int rng 32 in
  let bit = Random.State.int rng 64 in
  { Fault.at; lane; bit; second = None; kind = Cpu.Machine.Reg_flip }

(* The second lane is drawn at a non-zero offset from the first; the final
   non-aliasing guarantee (for any destination lane count) is enforced at
   injection time by {!Cpu.Machine.second_flip}. *)
let draw_double ?(same_bit = true) (rng : Random.State.t) ~(sites : int) : Fault.experiment =
  let at = 1 + Random.State.int rng sites in
  let lane = Random.State.int rng 32 in
  let lane2 = lane + 1 + Random.State.int rng 3 in
  let bit = Random.State.int rng 64 in
  let bit2 = if same_bit then bit else Random.State.int rng 64 in
  { Fault.at; lane; bit; second = Some (lane2, bit2); kind = Cpu.Machine.Reg_flip }

(* One draw under a fault model.  Every branch consumes the same RNG
   stream in a fixed order, so a plan is reproducible from (seed, golden
   site counts) alone.  [Mixed] first picks a kind uniformly among those
   with at least one site, then draws that kind's experiment. *)
let draw_model (rng : Random.State.t) ~(model : Fault.model) ~(sites : int)
    ~(mem_sites : int) ~(branch_sites : int) : Fault.experiment =
  let draw_kind (kind : Cpu.Machine.fault_kind) : Fault.experiment =
    match kind with
    | Cpu.Machine.Reg_flip -> draw_single rng ~sites
    | Cpu.Machine.Mem_flip ->
        let at = 1 + Random.State.int rng (max 1 mem_sites) in
        let bit = Random.State.int rng 64 in
        { Fault.at; lane = 0; bit; second = None; kind = Cpu.Machine.Mem_flip }
    | Cpu.Machine.Addr_flip ->
        let at = 1 + Random.State.int rng (max 1 mem_sites) in
        (* low 21 address bits: higher flips almost always segfault
           immediately and teach nothing about the checks *)
        let bit = Random.State.int rng 21 in
        { Fault.at; lane = 0; bit; second = None; kind = Cpu.Machine.Addr_flip }
    | Cpu.Machine.Branch_flip ->
        let at = 1 + Random.State.int rng (max 1 branch_sites) in
        { Fault.at; lane = 0; bit = 0; second = None; kind = Cpu.Machine.Branch_flip }
  in
  match model with
  | Fault.Reg -> draw_kind Cpu.Machine.Reg_flip
  | Fault.Mem -> draw_kind Cpu.Machine.Mem_flip
  | Fault.Addr -> draw_kind Cpu.Machine.Addr_flip
  | Fault.Cf -> draw_kind Cpu.Machine.Branch_flip
  | Fault.Mixed ->
      let kinds =
        List.filter_map
          (fun (k, s) -> if s > 0 then Some k else None)
          [
            (Cpu.Machine.Reg_flip, sites);
            (Cpu.Machine.Mem_flip, mem_sites);
            (Cpu.Machine.Addr_flip, mem_sites);
            (Cpu.Machine.Branch_flip, branch_sites);
          ]
      in
      let kinds = if kinds = [] then [ Cpu.Machine.Reg_flip ] else kinds in
      draw_kind (List.nth kinds (Random.State.int rng (List.length kinds)))

(* ---- progress and reporting ---- *)

type progress = {
  completed : int;  (** experiments finished, including redraws *)
  total : int;  (** experiments currently planned, including redraws *)
  elapsed : float;  (** seconds since the campaign started *)
  eta : float;  (** estimated seconds to completion *)
  running : Fault.stats;  (** per-outcome running counters *)
  not_reached : int;  (** discarded so far *)
}

type report = {
  stats : Fault.stats;
  outcomes : (Fault.experiment * Fault.obs) array;
      (** counted experiments in plan order (excludes discarded ones) *)
  wall_seconds : float;
  cycles_simulated : int;  (** simulated cycles over all injection runs *)
  experiments_run : int;  (** injection runs executed, including redraws *)
  not_reached : int;  (** runs discarded because the site was not reached *)
  jobs : int;
}

(* ---- checkpointing ---- *)

(* A checkpoint is the map (redraw round, plan slot) -> observation of
   every completed experiment, keyed by a digest of the plan + golden run
   so a stale file for a different campaign can never be resumed.  The
   magic line guards the unsafe [Marshal.from_channel] against files in
   older formats (or other files altogether). *)
type ck_state = {
  ck_key : string;
  ck_done : ((int * int) * Fault.obs) list;
}

let ck_magic = "ELZCK2\n"

let ck_key ~(golden : Cpu.Machine.result) (exps : Fault.experiment array) : string =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( exps,
            golden.Cpu.Machine.output_digest,
            golden.Cpu.Machine.inject_sites,
            golden.Cpu.Machine.mem_sites,
            golden.Cpu.Machine.branch_sites )
          []))

let ck_load (path : string) ~(key : string) : ((int * int), Fault.obs) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  (if Sys.file_exists path then
     try
       let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           let magic = really_input_string ic (String.length ck_magic) in
           if magic <> ck_magic then failwith "bad magic";
           let st : ck_state = Marshal.from_channel ic in
           if st.ck_key = key then
             List.iter (fun (k, v) -> Hashtbl.replace tbl k v) st.ck_done)
     with _ ->
       (* unreadable/corrupt checkpoint: say so once and start over *)
       Printf.eprintf "campaign: checkpoint %s unreadable or stale, restarting campaign\n%!"
         path);
  tbl

(* Write-to-temp, flush+fsync, then atomic rename: a crash mid-write can
   never leave a truncated file under the checkpoint's real name. *)
let ck_save (path : string) ~(key : string) done_ =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc ck_magic;
  Marshal.to_channel oc { ck_key = key; ck_done = done_ } [];
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc;
  Sys.rename tmp path

(* ---- the engine ---- *)

(* Mutable campaign-wide state, shared by the workers under [mutex]. *)
type shared = {
  mutex : Mutex.t;
  t0 : float;
  mutable completed : int;
  mutable total : int;
  mutable running : Fault.stats;
  mutable nreach : int;
  mutable cycles : int;
  mutable executed : int;  (** completed minus checkpoint-restored *)
  mutable ck_done : ((int * int) * Fault.obs) list;
  mutable since_save : int;
}

(* Runs one batch of (plan slot, experiment) pairs over [jobs] domains.
   Each worker builds its own machines ({!Fault.run_experiment} creates a
   fresh one per run); the only shared mutable state is the claim counter,
   the disjointly-indexed output array and [shared] under its mutex.
   Returns the observations in batch order. *)
let run_batch ~(jobs : int) ~(spec : Fault.run_spec) ~(golden : Cpu.Machine.result)
    ~(snapshots : Cpu.Machine.snapshot array) ~(max_instrs : int) ~(round : int)
    ~ck_tbl ~(checkpoint : string option) ~(key : string) ~(shared : shared)
    ~(progress : (progress -> unit) option)
    (batch : (int * Fault.experiment) array) : Fault.obs array =
  let k = Array.length batch in
  let out = Array.make k None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < k then begin
        let slot, e = batch.(i) in
        let restored = Hashtbl.find_opt ck_tbl (round, slot) in
        let (o : Fault.obs) =
          match restored with
          | Some o ->
              o
          | None ->
              Fault.observe ~golden
                (if snapshots = [||] then Fault.run_experiment ~max_instrs spec e
                 else Fault.run_experiment_from ~max_instrs ~snapshots spec e)
        in
        out.(i) <- Some o;
        Mutex.lock shared.mutex;
        shared.completed <- shared.completed + 1;
        shared.cycles <- shared.cycles + o.Fault.o_cycles;
        if restored = None then shared.executed <- shared.executed + 1;
        (match o.Fault.o_outcome with
        | Fault.Not_reached -> shared.nreach <- shared.nreach + 1
        | oc -> shared.running <- Fault.add_outcome shared.running oc);
        shared.ck_done <- ((round, slot), o) :: shared.ck_done;
        shared.since_save <- shared.since_save + 1;
        let save_now = checkpoint <> None && shared.since_save >= save_every in
        if save_now then shared.since_save <- 0;
        let done_ = shared.ck_done in
        let snap =
          match progress with
          | None -> None
          | Some _ ->
              let elapsed = Unix.gettimeofday () -. shared.t0 in
              let per = elapsed /. float_of_int (max 1 shared.completed) in
              Some
                {
                  completed = shared.completed;
                  total = shared.total;
                  elapsed;
                  eta = per *. float_of_int (max 0 (shared.total - shared.completed));
                  running = shared.running;
                  not_reached = shared.nreach;
                }
        in
        (* checkpoint write and progress callback stay inside the critical
           section: both must see a consistent snapshot, and serializing
           the callback spares callers any locking of their own *)
        (match (save_now, checkpoint) with
        | true, Some path -> ( try ck_save path ~key done_ with Sys_error _ -> ())
        | _ -> ());
        (match (progress, snap) with Some f, Some p -> f p | _ -> ());
        Mutex.unlock shared.mutex;
        loop ()
      end
    in
    loop ()
  in
  let jobs = max 1 (min jobs k) in
  if jobs = 1 then worker ()
  else Array.iter Domain.join (Array.init jobs (fun _ -> Domain.spawn worker));
  Array.map (function Some oc -> oc | None -> assert false) out

(** Runs a pre-drawn experiment list.  [redraw] supplies replacements for
    [Not_reached] experiments (drawn between rounds, on the calling
    domain, in plan-slot order — deterministic for any [jobs]); without it
    they are simply discarded.  [checkpoint] names a file used to persist
    and resume partial campaigns.  [snapshots] (a {!Fault.golden_capture}
    array) enables snapshot fast-forward: each experiment resumes from the
    latest golden snapshot preceding its injection site instead of
    replaying the whole fault-free prefix — outcomes are bit-identical
    either way. *)
let run ?jobs ?progress ?checkpoint ?redraw ?(snapshots = [||])
    ~(spec : Fault.run_spec) ~(golden : Cpu.Machine.result)
    (exps : Fault.experiment array) : report =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = Array.length exps in
  let max_instrs = Fault.hang_budget ~golden spec in
  let key = ck_key ~golden exps in
  let ck_tbl =
    match checkpoint with Some path -> ck_load path ~key | None -> Hashtbl.create 1
  in
  let shared =
    {
      mutex = Mutex.create ();
      t0 = Unix.gettimeofday ();
      completed = 0;
      total = n;
      running = Fault.empty_stats;
      nreach = 0;
      cycles = 0;
      executed = 0;
      ck_done = [];
      since_save = 0;
    }
  in
  let final = Array.make n None in
  let pending = ref (Array.mapi (fun i e -> (i, e)) exps) in
  let round = ref 0 in
  while Array.length !pending > 0 do
    let batch = !pending in
    let results =
      run_batch ~jobs ~spec ~golden ~snapshots ~max_instrs ~round:!round ~ck_tbl
        ~checkpoint ~key ~shared ~progress batch
    in
    let next = ref [] in
    (* batch is in ascending plan-slot order (invariant below), so redraws
       happen in slot order: the RNG consumption is reproducible *)
    Array.iteri
      (fun i (o : Fault.obs) ->
        let slot, e = batch.(i) in
        match o.Fault.o_outcome with
        | Fault.Not_reached ->
            if !round < max_rounds - 1 then begin
              match redraw with
              | Some d -> next := (slot, d ()) :: !next
              | None -> ()
            end
        | _ -> final.(slot) <- Some (e, o))
      results;
    pending := Array.of_list (List.rev !next);
    if !pending <> [||] then
      Mutex.protect shared.mutex (fun () ->
          shared.total <- shared.total + Array.length !pending);
    incr round
  done;
  (match checkpoint with
  | Some path -> if Sys.file_exists path then ( try Sys.remove path with Sys_error _ -> ())
  | None -> ());
  let outcomes =
    Array.of_list (List.filter_map (fun x -> x) (Array.to_list final))
  in
  let stats =
    Array.fold_left
      (fun s (_, o) -> Fault.add_outcome s o.Fault.o_outcome)
      Fault.empty_stats outcomes
  in
  {
    stats;
    outcomes;
    wall_seconds = Unix.gettimeofday () -. shared.t0;
    cycles_simulated = shared.cycles;
    experiments_run = shared.executed;
    not_reached = shared.nreach;
    jobs;
  }

(* ---- whole campaigns (the paper's Fig. 13 / §III-C experiments) ---- *)

let plan ~(n : int) (draw : unit -> Fault.experiment) : Fault.experiment array =
  (* explicit loop: Array.init's evaluation order is unspecified and the
     draws must consume the RNG in plan order *)
  let exps =
    Array.make n
      { Fault.at = 1; lane = 0; bit = 0; second = None; kind = Cpu.Machine.Reg_flip }
  in
  for i = 0 to n - 1 do
    exps.(i) <- draw ()
  done;
  exps

(* Golden run of a campaign: with fast-forward on, also capture the
   snapshot chain every injection run will restore from. *)
let campaign_golden ~(fast_forward : bool) (spec : Fault.run_spec) :
    Cpu.Machine.result * Cpu.Machine.snapshot array =
  if fast_forward then Fault.golden_capture spec else (Fault.golden spec, [||])

(* A full campaign of [n] independent single-bit injections. *)
let single ?(seed = 42) ?(n = 300) ?jobs ?progress ?checkpoint ?(fast_forward = true)
    (spec : Fault.run_spec) : report =
  let g, snapshots = campaign_golden ~fast_forward spec in
  let sites = g.Cpu.Machine.inject_sites in
  if sites = 0 then invalid_arg "Campaign.single: no hardened code to inject into";
  let rng = Random.State.make [| seed |] in
  let draw () = draw_single rng ~sites in
  run ?jobs ?progress ?checkpoint ~snapshots ~redraw:draw ~spec ~golden:g (plan ~n draw)

(* Campaign of double-bit faults; [same_bit] flips the same bit in two
   different lanes (two replicas agreeing on a wrong value). *)
let double ?(seed = 43) ?(n = 150) ?(same_bit = true) ?jobs ?progress ?checkpoint
    ?(fast_forward = true) (spec : Fault.run_spec) : report =
  let g, snapshots = campaign_golden ~fast_forward spec in
  let sites = g.Cpu.Machine.inject_sites in
  if sites = 0 then invalid_arg "Campaign.double: no hardened code to inject into";
  let rng = Random.State.make [| seed |] in
  let draw () = draw_double ~same_bit rng ~sites in
  run ?jobs ?progress ?checkpoint ~snapshots ~redraw:draw ~spec ~golden:g (plan ~n draw)

(* Campaign under a fault-model axis: reg (same as {!single}), mem, addr,
   cf, or mixed.  The site streams come from the golden run's counters;
   models whose stream is empty for this build (e.g. cf on a branch-free
   kernel) are rejected up front rather than silently degenerating. *)
let model_campaign ?(seed = 44) ?(n = 300) ?jobs ?progress ?checkpoint
    ?(fast_forward = true) ~(model : Fault.model) (spec : Fault.run_spec) : report =
  let g, snapshots = campaign_golden ~fast_forward spec in
  let sites = g.Cpu.Machine.inject_sites in
  let mem_sites = g.Cpu.Machine.mem_sites in
  let branch_sites = g.Cpu.Machine.branch_sites in
  (match model with
  | Fault.Reg | Fault.Mixed ->
      if sites = 0 then
        invalid_arg "Campaign.model_campaign: no hardened code to inject into"
  | Fault.Mem | Fault.Addr ->
      if mem_sites = 0 then
        invalid_arg "Campaign.model_campaign: no hardened memory accesses"
  | Fault.Cf ->
      if branch_sites = 0 then
        invalid_arg "Campaign.model_campaign: no hardened conditional branches");
  let rng = Random.State.make [| seed; Hashtbl.hash (Fault.model_to_string model) |] in
  let draw () = draw_model rng ~model ~sites ~mem_sites ~branch_sites in
  run ?jobs ?progress ?checkpoint ~snapshots ~redraw:draw ~spec ~golden:g (plan ~n draw)

(* One-line observability summary for bench tables. *)
let pp_totals fmt (r : report) =
  Format.fprintf fmt "%d runs, %.1fs wall, %.2f Gcycles simulated, %d jobs%s" r.experiments_run
    r.wall_seconds
    (float_of_int r.cycles_simulated /. 1e9)
    r.jobs
    (if r.not_reached > 0 then Printf.sprintf ", %d not-reached redrawn" r.not_reached else "")
