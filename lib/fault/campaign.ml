(** Parallel, deterministic fault-injection campaign engine (paper §IV-B).

    The paper's evaluation runs thousands of independent single-run
    experiments per benchmark; every experiment re-executes the whole
    workload on the simulated machine, which makes campaigns the slowest
    part of the bench suite.  Experiments are mutually independent, so —
    like the SDE/gdb harness the paper scripts around, and like RepTFD's
    campaign driver — they fan out over a pool of workers, here OCaml 5
    domains.

    Determinism: the full experiment list is pre-drawn from the seeded RNG
    before any worker starts, and outcomes are folded back in plan order,
    so the resulting statistics are bit-identical regardless of the worker
    count.  Experiments whose injection site is never reached
    ({!Fault.Not_reached}) carry no information; they are discarded and
    replaced with fresh draws from the same RNG stream (in plan-slot
    order, preserving determinism), as the paper's campaign does.

    Observability: per-outcome running counters and an ETA are pushed to
    an optional progress callback, and the report totals wall-clock time
    and simulated cycles.  Campaigns can checkpoint completed experiments
    to a file and resume after an interruption instead of restarting.

    Supervision: with [supervise], experiments run under {!Supervisor} —
    host exceptions are retried then quarantined, runaway runs are cut by
    a wall-clock watchdog, dead worker domains are respawned, and an
    external [cancel] flag stops the campaign at the next experiment
    boundary (the checkpoint survives for a later resume).  Quarantined
    experiments are excluded from the statistics and reported
    separately. *)

(* ---- sizing ---- *)

(* Worker-pool width when the caller does not pin one. *)
let default_jobs () = Domain.recommended_domain_count ()

(* A Not_reached replacement can itself be Not_reached; give up redrawing
   after this many rounds and report the leftovers as discarded. *)
let max_rounds = 8

(* Completed experiments between two checkpoint writes. *)
let save_every = 32

(* ---- experiment drawing (one RNG, fixed draw order) ---- *)

let draw_single (rng : Random.State.t) ~(sites : int) : Fault.experiment =
  let at = 1 + Random.State.int rng sites in
  let lane = Random.State.int rng 32 in
  let bit = Random.State.int rng 64 in
  { Fault.at; lane; bit; second = None; kind = Cpu.Machine.Reg_flip }

(* The second lane is drawn at a non-zero offset from the first; the final
   non-aliasing guarantee (for any destination lane count) is enforced at
   injection time by {!Cpu.Machine.second_flip}. *)
let draw_double ?(same_bit = true) (rng : Random.State.t) ~(sites : int) : Fault.experiment =
  let at = 1 + Random.State.int rng sites in
  let lane = Random.State.int rng 32 in
  let lane2 = lane + 1 + Random.State.int rng 3 in
  let bit = Random.State.int rng 64 in
  let bit2 = if same_bit then bit else Random.State.int rng 64 in
  { Fault.at; lane; bit; second = Some (lane2, bit2); kind = Cpu.Machine.Reg_flip }

(* One draw under a fault model.  Every branch consumes the same RNG
   stream in a fixed order, so a plan is reproducible from (seed, golden
   site counts) alone.  [Mixed] first picks a kind uniformly among those
   with at least one site, then draws that kind's experiment. *)
let draw_model (rng : Random.State.t) ~(model : Fault.model) ~(sites : int)
    ~(mem_sites : int) ~(branch_sites : int) : Fault.experiment =
  let draw_kind (kind : Cpu.Machine.fault_kind) : Fault.experiment =
    match kind with
    | Cpu.Machine.Reg_flip -> draw_single rng ~sites
    | Cpu.Machine.Mem_flip ->
        let at = 1 + Random.State.int rng (max 1 mem_sites) in
        let bit = Random.State.int rng 64 in
        { Fault.at; lane = 0; bit; second = None; kind = Cpu.Machine.Mem_flip }
    | Cpu.Machine.Addr_flip ->
        let at = 1 + Random.State.int rng (max 1 mem_sites) in
        (* low 21 address bits: higher flips almost always segfault
           immediately and teach nothing about the checks *)
        let bit = Random.State.int rng 21 in
        { Fault.at; lane = 0; bit; second = None; kind = Cpu.Machine.Addr_flip }
    | Cpu.Machine.Branch_flip ->
        let at = 1 + Random.State.int rng (max 1 branch_sites) in
        { Fault.at; lane = 0; bit = 0; second = None; kind = Cpu.Machine.Branch_flip }
  in
  match model with
  | Fault.Reg -> draw_kind Cpu.Machine.Reg_flip
  | Fault.Mem -> draw_kind Cpu.Machine.Mem_flip
  | Fault.Addr -> draw_kind Cpu.Machine.Addr_flip
  | Fault.Cf -> draw_kind Cpu.Machine.Branch_flip
  | Fault.Mixed ->
      let kinds =
        List.filter_map
          (fun (k, s) -> if s > 0 then Some k else None)
          [
            (Cpu.Machine.Reg_flip, sites);
            (Cpu.Machine.Mem_flip, mem_sites);
            (Cpu.Machine.Addr_flip, mem_sites);
            (Cpu.Machine.Branch_flip, branch_sites);
          ]
      in
      let kinds = if kinds = [] then [ Cpu.Machine.Reg_flip ] else kinds in
      draw_kind (List.nth kinds (Random.State.int rng (List.length kinds)))

(* ---- progress and reporting ---- *)

type progress = {
  completed : int;  (** experiments finished, including redraws *)
  total : int;  (** experiments currently planned, including redraws *)
  restored : int;  (** completed experiments replayed from a checkpoint *)
  elapsed : float;  (** seconds since the campaign started *)
  eta : float;  (** estimated seconds to completion; [nan] until a rate exists *)
  running : Fault.stats;  (** per-outcome running counters *)
  not_reached : int;  (** discarded so far *)
  quarantined : int;  (** experiments given up on by the supervisor *)
}

type report = {
  stats : Fault.stats;
  outcomes : (Fault.experiment * Fault.obs) array;
      (** counted experiments in plan order (excludes discarded ones) *)
  wall_seconds : float;
  cycles_simulated : int;  (** simulated cycles over all injection runs *)
  experiments_run : int;  (** injection runs executed, including redraws *)
  restored : int;  (** experiments replayed from the checkpoint *)
  not_reached : int;  (** runs discarded because the site was not reached *)
  quarantined : Supervisor.tool_error list;
      (** supervisor-quarantined experiments, in plan-slot order; excluded
          from [stats]/[outcomes] *)
  worker_deaths : int;  (** worker domains that died and were respawned *)
  interrupted : bool;  (** cancelled before every experiment completed *)
  jobs : int;
  spans : Obs.Span.row list;  (** where the campaign's wall time went *)
}

(* ---- checkpointing ---- *)

(* A checkpoint maps (redraw round, plan slot) to what the campaign
   learned about that slot — an observation, or a quarantine record for a
   slot the supervisor gave up on (so a resume never re-executes a
   known-poison plan).  It is keyed by a digest of the plan + golden run
   so a stale file for a different campaign can never be resumed.  The
   format is append-friendly: a magic line, the key, then one marshalled
   record per completed experiment — a save appends only the records since
   the previous one (O(total) bytes over a whole campaign instead of
   O(total²)) and a crash mid-append costs at most the truncated tail
   record.  The magic line guards the unsafe [Marshal.from_channel]
   against files in older formats (or other files altogether). *)

let ck_magic = "ELZCK4\n"

type ck_record =
  | Ck_obs of (int * int) * Fault.obs
  | Ck_poison of (int * int) * Supervisor.tool_error

let ck_key ~(golden : Cpu.Machine.result) (exps : Fault.experiment array) : string =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( exps,
            golden.Cpu.Machine.output_digest,
            golden.Cpu.Machine.inject_sites,
            golden.Cpu.Machine.mem_sites,
            golden.Cpu.Machine.branch_sites )
          []))

(* Loads a checkpoint: the restored observations and quarantine records
   plus, when the header is valid for this campaign, the byte offset just
   past the last complete record — the writer truncates there and appends,
   so a tail truncated by a crash can never corrupt a later resume. *)
let ck_load (path : string) ~(key : string) :
    ((int * int), Fault.obs) Hashtbl.t
    * ((int * int), Supervisor.tool_error) Hashtbl.t
    * int option =
  let tbl = Hashtbl.create 64 in
  let ptbl = Hashtbl.create 8 in
  let resume_at = ref None in
  (if Sys.file_exists path then
     try
       let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           let magic = really_input_string ic (String.length ck_magic) in
           if magic <> ck_magic then failwith "bad magic";
           let k = really_input_string ic (String.length key + 1) in
           if k <> key ^ "\n" then failwith "stale key";
           resume_at := Some (pos_in ic);
           (* replay records until EOF; a partial tail record (crash
              mid-append) just ends the replay, keeping everything before *)
           try
             while true do
               (match (Marshal.from_channel ic : ck_record) with
               | Ck_obs (k, v) -> Hashtbl.replace tbl k v
               | Ck_poison (k, te) -> Hashtbl.replace ptbl k te);
               resume_at := Some (pos_in ic)
             done
           with _ -> ())
     with _ ->
       if !resume_at = None then
         (* unreadable/corrupt/stale checkpoint: say so once and start over *)
         Printf.eprintf
           "campaign: checkpoint %s unreadable or stale, restarting campaign\n%!" path);
  (tbl, ptbl, !resume_at)

(* The writer owns the checkpoint channel for the whole campaign.  Its
   mutex serializes appends among workers without touching the campaign
   lock; a failed write warns once on stderr and disables checkpointing
   for the rest of the campaign instead of failing silently. *)
type ck_writer = {
  w_path : string;
  w_io : Mutex.t;
  mutable w_oc : out_channel option;
  mutable w_warned : bool;
}

let ck_warn (w : ck_writer) (msg : string) =
  if not w.w_warned then begin
    w.w_warned <- true;
    Printf.eprintf
      "campaign: checkpoint %s not written (%s), continuing without checkpointing\n%!"
      w.w_path msg
  end

let ck_open (path : string) ~(key : string) (resume_at : int option) : ck_writer =
  let w = { w_path = path; w_io = Mutex.create (); w_oc = None; w_warned = false } in
  (try
     match resume_at with
     | Some pos ->
         (* resuming: drop any truncated tail record, then append *)
         let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
         Fun.protect
           ~finally:(fun () -> Unix.close fd)
           (fun () -> Unix.ftruncate fd pos);
         w.w_oc <- Some (open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path)
     | None ->
         let oc =
           open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path
         in
         output_string oc ck_magic;
         output_string oc (key ^ "\n");
         flush oc;
         w.w_oc <- Some oc
   with
  | Sys_error msg -> ck_warn w msg
  | Unix.Unix_error (e, _, _) -> ck_warn w (Unix.error_message e));
  w

(* Appends a batch of records ([recs] is newest-first) and makes them
   durable.  Runs outside the campaign mutex: only appenders contend on
   [w_io], workers keep claiming experiments meanwhile. *)
let ck_append (w : ck_writer) ~(spans : Obs.Span.t) (recs : ck_record list) : unit =
  Mutex.protect w.w_io (fun () ->
      match w.w_oc with
      | None -> ()
      | Some oc -> (
          try
            Obs.Span.time spans "exec/checkpoint" (fun () ->
                List.iter
                  (fun (r : ck_record) -> Marshal.to_channel oc r [])
                  (List.rev recs);
                flush oc;
                Unix.fsync (Unix.descr_of_out_channel oc))
          with
          | Sys_error msg ->
              close_out_noerr oc;
              w.w_oc <- None;
              ck_warn w msg
          | Unix.Unix_error (e, _, _) ->
              close_out_noerr oc;
              w.w_oc <- None;
              ck_warn w (Unix.error_message e)))

let ck_close (w : ck_writer) : unit =
  Mutex.protect w.w_io (fun () ->
      (match w.w_oc with Some oc -> close_out_noerr oc | None -> ());
      w.w_oc <- None)

(* ---- the engine ---- *)

(* Mutable campaign-wide state, shared by the workers under [mutex]. *)
type shared = {
  mutex : Mutex.t;
  t0 : float;
  mutable completed : int;
  mutable total : int;
  mutable running : Fault.stats;
  mutable nreach : int;
  mutable cycles : int;
  mutable executed : int;  (** completed minus checkpoint-restored/quarantined *)
  mutable restored : int;  (** completed experiments replayed from the checkpoint *)
  mutable quarantined : int;  (** experiments the supervisor gave up on *)
  mutable ck_pending : ck_record list;
      (** records since the last checkpoint append, newest first *)
  mutable since_save : int;
  mutable progress_warned : bool;  (** progress callback raised at least once *)
}

(* What one batch slot produced.  [C_none] marks a slot that was never
   executed — the campaign was cancelled before a worker got to it (or
   mid-run); the slot stays absent from outcomes and the checkpoint, so a
   resume re-executes it. *)
type cell =
  | C_none
  | C_obs of Fault.obs
  | C_poison of Supervisor.tool_error

(* Runs one batch of (plan slot, experiment) pairs over [jobs] domains.
   Each worker builds its own machines ({!Fault.run_experiment} creates a
   fresh one per run); the only shared mutable state is the claim counter,
   the requeue list, the disjointly-indexed output array and [shared]
   under its mutex.  Returns the cells in batch order.

   Supervised mode ([sup <> None]) always runs workers on spawned domains
   — even at [jobs = 1] — so a worker death (a chaos kill, or a real
   crashed domain) can never take down the calling domain: the join loop
   detects the death, requeues the slot the dead worker held (re-executed
   up to the supervisor's retry budget, then quarantined as
   [Worker_death]) and respawns the worker. *)
let run_batch ~(jobs : int) ~(spec : Fault.run_spec) ~(golden : Cpu.Machine.result)
    ~(snapshots : Cpu.Machine.snapshot array) ~(max_instrs : int) ~(round : int)
    ~ck_tbl ~ck_poison ~(writer : ck_writer option) ~(spans : Obs.Span.t)
    ~(shared : shared) ~(progress : (progress -> unit) option)
    ~(sup : Supervisor.t option) ~(chaos : Supervisor.chaos_plan)
    ~(cancel : bool Atomic.t option) (batch : (int * Fault.experiment) array) :
    cell array =
  let k = Array.length batch in
  let out = Array.make k C_none in
  let next = Atomic.make 0 in
  let jobs = max 1 (min jobs k) in
  (* slot index each worker currently holds (-1 = none): read by the join
     loop after a worker death to find what must be requeued *)
  let inflight = Array.make jobs (-1) in
  let rq_lock = Mutex.create () in
  let requeued = ref [] in
  let death_tries : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let cancelled () = match cancel with Some c -> Atomic.get c | None -> false in
  let claim () =
    match
      Mutex.protect rq_lock (fun () ->
          match !requeued with
          | [] -> None
          | i :: tl ->
              requeued := tl;
              Some i)
    with
    | Some _ as r -> r
    | None ->
        let i = Atomic.fetch_and_add next 1 in
        if i < k then Some i else None
  in
  (* Folds one finished slot into the shared state, snapshots progress for
     the callback, and returns any checkpoint records due for an append
     (performed by the caller OUTSIDE the mutex).  Shared by the workers
     and by the join loop's worker-death quarantine path. *)
  let record ~(slot : int) ~(fresh : bool) (c : cell) : ck_record list option =
    Mutex.lock shared.mutex;
    shared.completed <- shared.completed + 1;
    (match c with
    | C_obs o ->
        shared.cycles <- shared.cycles + o.Fault.o_cycles;
        if fresh then shared.executed <- shared.executed + 1
        else shared.restored <- shared.restored + 1;
        (match o.Fault.o_outcome with
        | Fault.Not_reached -> shared.nreach <- shared.nreach + 1
        | oc -> shared.running <- Fault.add_outcome shared.running oc)
    | C_poison _ ->
        shared.quarantined <- shared.quarantined + 1;
        if not fresh then shared.restored <- shared.restored + 1
    | C_none -> assert false);
    (* restored records are already in the file; only fresh ones queue for
       the next append *)
    let flush_recs =
      match writer with
      | Some _ when fresh ->
          let r =
            match c with
            | C_obs o -> Ck_obs ((round, slot), o)
            | C_poison te -> Ck_poison ((round, slot), te)
            | C_none -> assert false
          in
          shared.ck_pending <- r :: shared.ck_pending;
          shared.since_save <- shared.since_save + 1;
          if shared.since_save >= save_every then begin
            shared.since_save <- 0;
            let recs = shared.ck_pending in
            shared.ck_pending <- [];
            Some recs
          end
          else None
      | _ -> None
    in
    (match progress with
    | None -> ()
    | Some f -> (
        let elapsed = Unix.gettimeofday () -. shared.t0 in
        (* rate over actually-executed runs only: checkpoint-restored
           experiments complete instantly, and folding them into the rate
           made a resumed campaign's ETA wildly optimistic.  Until at
           least one run has executed there is no rate at all: the ETA is
           [nan] (render it as unknown), not a garbage extrapolation from
           the restore-replay speed. *)
        let eta =
          if shared.executed = 0 then Float.nan
          else
            elapsed /. float_of_int shared.executed
            *. float_of_int (max 0 (shared.total - shared.completed))
        in
        let p =
          {
            completed = shared.completed;
            total = shared.total;
            restored = shared.restored;
            elapsed;
            eta;
            running = shared.running;
            not_reached = shared.nreach;
            quarantined = shared.quarantined;
          }
        in
        (* the progress callback stays inside the critical section (it
           must see a consistent snapshot) but is exception-safe: a
           raising callback must not kill a worker mid-campaign, so it
           warns once and the campaign carries on *)
        try f p
        with exn ->
          if not shared.progress_warned then begin
            shared.progress_warned <- true;
            Printf.eprintf "campaign: progress callback raised %s, continuing\n%!"
              (Printexc.to_string exn)
          end));
    Mutex.unlock shared.mutex;
    flush_recs
  in
  let finish ~slot ~fresh c =
    let flush_recs = record ~slot ~fresh c in
    (* checkpoint I/O happens OUTSIDE the campaign mutex: the fsync only
       blocks other appenders (on the writer's own lock), not every worker
       trying to record a result *)
    match (flush_recs, writer) with
    | Some recs, Some w -> ck_append w ~spans recs
    | _ -> ()
  in
  let worker wid () =
    let rec loop () =
      if cancelled () then ()
      else
        match claim () with
        | None -> ()
        | Some i -> (
            inflight.(wid) <- i;
            let slot, e = batch.(i) in
            let fresh, c =
              match Hashtbl.find_opt ck_tbl (round, slot) with
              | Some o -> (false, C_obs o)
              | None -> (
                  match Hashtbl.find_opt ck_poison (round, slot) with
                  | Some te ->
                      (* known-poison plan from a previous attempt: never
                         re-execute it *)
                      (false, C_poison te)
                  | None -> (
                      match sup with
                      | None ->
                          ( true,
                            C_obs
                              (Fault.observe ~golden
                                 (if snapshots = [||] then
                                    Fault.run_experiment ~max_instrs spec e
                                  else
                                    Fault.run_experiment_from ~max_instrs ~snapshots
                                      ~spans spec e)) )
                      | Some s -> (
                          match
                            Supervisor.supervised_run s ~wid ~round ~slot ~chaos
                              ~max_instrs ~snapshots ~spans spec e
                          with
                          | Supervisor.V_ok r -> (true, C_obs (Fault.observe ~golden r))
                          | Supervisor.V_quarantined te -> (true, C_poison te)
                          | Supervisor.V_cancelled -> (true, C_none))))
            in
            inflight.(wid) <- -1;
            match c with
            | C_none -> ()  (* cancelled mid-run: slot stays unexecuted *)
            | _ ->
                out.(i) <- c;
                finish ~slot ~fresh c;
                loop ())
    in
    loop ()
  in
  (match sup with
  | None ->
      if jobs = 1 then worker 0 ()
      else
        Array.iter Domain.join (Array.init jobs (fun wid -> Domain.spawn (worker wid)))
  | Some s ->
      let requeue_or_quarantine i =
        let slot, _ = batch.(i) in
        let tries = Option.value ~default:0 (Hashtbl.find_opt death_tries i) + 1 in
        Hashtbl.replace death_tries i tries;
        if tries > (Supervisor.config s).Supervisor.retries then begin
          let te =
            {
              Supervisor.te_round = round;
              te_slot = slot;
              te_kind = Supervisor.Worker_death;
              te_attempts = tries;
              te_detail = "worker domain died while running this experiment";
              te_backtrace = "";
            }
          in
          out.(i) <- C_poison te;
          finish ~slot ~fresh:true (C_poison te)
        end
        else Mutex.protect rq_lock (fun () -> requeued := i :: !requeued)
      in
      (* joins one worker; a worker that died (rather than returned) has
         its in-flight slot requeued or quarantined, and is respawned to
         drain whatever work remains *)
      let rec join_worker wid d =
        match Domain.join d with
        | () -> ()
        | exception _ ->
            Supervisor.note_death s;
            let i = inflight.(wid) in
            inflight.(wid) <- -1;
            if i >= 0 then requeue_or_quarantine i;
            join_worker wid (Domain.spawn (worker wid))
      in
      Array.iteri join_worker (Array.init jobs (fun wid -> Domain.spawn (worker wid))));
  out

(** Runs a pre-drawn experiment list.  [redraw] supplies replacements for
    [Not_reached] experiments (drawn between rounds, on the calling
    domain, in plan-slot order — deterministic for any [jobs]); without it
    they are simply discarded.  [checkpoint] names a file used to persist
    and resume partial campaigns.  [snapshots] (a {!Fault.golden_capture}
    array) enables snapshot fast-forward: each experiment resumes from the
    latest golden snapshot preceding its injection site instead of
    replaying the whole fault-free prefix — outcomes are bit-identical
    either way.  [supervise] runs every experiment under a {!Supervisor};
    [chaos] (test-only, requires [supervise]) injects harness failures;
    [cancel] stops the campaign at the next experiment boundary. *)
let run ?jobs ?progress ?checkpoint ?redraw ?(snapshots = [||]) ?recorder ?supervise
    ?(chaos = []) ?cancel ~(spec : Fault.run_spec) ~(golden : Cpu.Machine.result)
    (exps : Fault.experiment array) : report =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = Array.length exps in
  let max_instrs = Fault.hang_budget ~golden spec in
  let key = ck_key ~golden exps in
  let spans = match recorder with Some r -> r | None -> Obs.Span.make () in
  let cancelled () = match cancel with Some c -> Atomic.get c | None -> false in
  let shared =
    {
      mutex = Mutex.create ();
      t0 = Unix.gettimeofday ();
      completed = 0;
      total = n;
      running = Fault.empty_stats;
      nreach = 0;
      cycles = 0;
      executed = 0;
      restored = 0;
      quarantined = 0;
      ck_pending = [];
      since_save = 0;
      progress_warned = false;
    }
  in
  let sup = Option.map (fun c -> Supervisor.start ?cancel c ~jobs) supervise in
  (* the whole batch-execution phase — including checkpoint load/replay
     and the final fold — runs under the "exec" span; the supervisor's
     watchdog domain is joined however the phase exits *)
  let outcomes, quarantined =
    Fun.protect
      ~finally:(fun () -> Option.iter Supervisor.stop sup)
      (fun () ->
        Obs.Span.time spans "exec" (fun () ->
            let ck_tbl, ck_poison, resume_at =
              match checkpoint with
              | Some path -> ck_load path ~key
              | None -> (Hashtbl.create 1, Hashtbl.create 1, None)
            in
            let writer =
              Option.map (fun path -> ck_open path ~key resume_at) checkpoint
            in
            (* an interrupted campaign must keep its checkpoint (that is
               the point of having one) — with every buffered record
               flushed, and no dangling open channel *)
            Fun.protect
              ~finally:(fun () ->
                match writer with
                | None -> ()
                | Some w ->
                    let recs =
                      Mutex.protect shared.mutex (fun () ->
                          let r = shared.ck_pending in
                          shared.ck_pending <- [];
                          shared.since_save <- 0;
                          r)
                    in
                    if recs <> [] then ck_append w ~spans recs;
                    ck_close w)
              (fun () ->
                let final = Array.make n None in
                let poison = Array.make n None in
                let pending = ref (Array.mapi (fun i e -> (i, e)) exps) in
                let round = ref 0 in
                while Array.length !pending > 0 && not (cancelled ()) do
                  let batch = !pending in
                  let cells =
                    run_batch ~jobs ~spec ~golden ~snapshots ~max_instrs
                      ~round:!round ~ck_tbl ~ck_poison ~writer ~spans ~shared
                      ~progress ~sup ~chaos ~cancel batch
                  in
                  let next = ref [] in
                  (* batch is in ascending plan-slot order (invariant
                     below), so redraws happen in slot order: the RNG
                     consumption is reproducible *)
                  Array.iteri
                    (fun i (c : cell) ->
                      let slot, e = batch.(i) in
                      match c with
                      | C_obs o -> (
                          match o.Fault.o_outcome with
                          | Fault.Not_reached ->
                              if !round < max_rounds - 1 then begin
                                match redraw with
                                | Some d -> next := (slot, d ()) :: !next
                                | None -> ()
                              end
                          | _ -> final.(slot) <- Some (e, o))
                      | C_poison te -> poison.(slot) <- Some te
                      | C_none -> ())
                    cells;
                  pending := Array.of_list (List.rev !next);
                  if !pending <> [||] then
                    Mutex.protect shared.mutex (fun () ->
                        shared.total <- shared.total + Array.length !pending);
                  incr round
                done;
                ( Array.of_list (List.filter_map (fun x -> x) (Array.to_list final)),
                  List.filter_map (fun x -> x) (Array.to_list poison) ))))
  in
  let interrupted = cancelled () && shared.completed < shared.total in
  (match checkpoint with
  | Some path ->
      if (not interrupted) && Sys.file_exists path then (
        try Sys.remove path with Sys_error _ -> ())
  | None -> ());
  Obs.Span.add_cycles spans "exec" shared.cycles;
  let stats =
    Array.fold_left
      (fun s (_, o) -> Fault.add_outcome s o.Fault.o_outcome)
      Fault.empty_stats outcomes
  in
  {
    stats;
    outcomes;
    wall_seconds = Unix.gettimeofday () -. shared.t0;
    cycles_simulated = shared.cycles;
    experiments_run = shared.executed;
    restored = shared.restored;
    not_reached = shared.nreach;
    quarantined;
    worker_deaths = (match sup with Some s -> Supervisor.worker_deaths s | None -> 0);
    interrupted;
    jobs;
    spans = Obs.Span.rows spans;
  }

(* ---- whole campaigns (the paper's Fig. 13 / §III-C experiments) ---- *)

let plan ~(n : int) (draw : unit -> Fault.experiment) : Fault.experiment array =
  (* explicit loop: Array.init's evaluation order is unspecified and the
     draws must consume the RNG in plan order *)
  let exps =
    Array.make n
      { Fault.at = 1; lane = 0; bit = 0; second = None; kind = Cpu.Machine.Reg_flip }
  in
  for i = 0 to n - 1 do
    exps.(i) <- draw ()
  done;
  exps

(* Golden run of a campaign: with fast-forward on, also capture the
   snapshot chain every injection run will restore from.  Timed under the
   "golden" span (snapshot captures additionally under "golden/snapshot"),
   with the golden run's simulated cycles attributed to it. *)
let campaign_golden ?spans ~(fast_forward : bool) (spec : Fault.run_spec) :
    Cpu.Machine.result * Cpu.Machine.snapshot array =
  let timed f = match spans with None -> f () | Some r -> Obs.Span.time r "golden" f in
  let g, snapshots =
    timed (fun () ->
        if fast_forward then Fault.golden_capture ?spans spec
        else (Fault.golden spec, [||]))
  in
  (match spans with
  | Some r -> Obs.Span.add_cycles r "golden" g.Cpu.Machine.wall_cycles
  | None -> ());
  (g, snapshots)

(* A full campaign of [n] independent single-bit injections. *)
let single ?(seed = 42) ?(n = 300) ?jobs ?progress ?checkpoint ?(fast_forward = true)
    ?supervise ?chaos ?cancel (spec : Fault.run_spec) : report =
  let recorder = Obs.Span.make () in
  let g, snapshots = campaign_golden ~spans:recorder ~fast_forward spec in
  let sites = g.Cpu.Machine.inject_sites in
  if sites = 0 then invalid_arg "Campaign.single: no hardened code to inject into";
  let rng = Random.State.make [| seed |] in
  let draw () = draw_single rng ~sites in
  let exps = Obs.Span.time recorder "plan" (fun () -> plan ~n draw) in
  run ?jobs ?progress ?checkpoint ?supervise ?chaos ?cancel ~snapshots ~recorder
    ~redraw:draw ~spec ~golden:g exps

(* Campaign of double-bit faults; [same_bit] flips the same bit in two
   different lanes (two replicas agreeing on a wrong value). *)
let double ?(seed = 43) ?(n = 150) ?(same_bit = true) ?jobs ?progress ?checkpoint
    ?(fast_forward = true) ?supervise ?chaos ?cancel (spec : Fault.run_spec) : report =
  let recorder = Obs.Span.make () in
  let g, snapshots = campaign_golden ~spans:recorder ~fast_forward spec in
  let sites = g.Cpu.Machine.inject_sites in
  if sites = 0 then invalid_arg "Campaign.double: no hardened code to inject into";
  let rng = Random.State.make [| seed |] in
  let draw () = draw_double ~same_bit rng ~sites in
  let exps = Obs.Span.time recorder "plan" (fun () -> plan ~n draw) in
  run ?jobs ?progress ?checkpoint ?supervise ?chaos ?cancel ~snapshots ~recorder
    ~redraw:draw ~spec ~golden:g exps

(* Campaign under a fault-model axis: reg (same as {!single}), mem, addr,
   cf, or mixed.  The site streams come from the golden run's counters;
   models whose stream is empty for this build (e.g. cf on a branch-free
   kernel) are rejected up front rather than silently degenerating. *)
let model_campaign ?(seed = 44) ?(n = 300) ?jobs ?progress ?checkpoint
    ?(fast_forward = true) ?supervise ?chaos ?cancel ~(model : Fault.model)
    (spec : Fault.run_spec) : report =
  let recorder = Obs.Span.make () in
  let g, snapshots = campaign_golden ~spans:recorder ~fast_forward spec in
  let sites = g.Cpu.Machine.inject_sites in
  let mem_sites = g.Cpu.Machine.mem_sites in
  let branch_sites = g.Cpu.Machine.branch_sites in
  (match model with
  | Fault.Reg | Fault.Mixed ->
      if sites = 0 then
        invalid_arg "Campaign.model_campaign: no hardened code to inject into"
  | Fault.Mem | Fault.Addr ->
      if mem_sites = 0 then
        invalid_arg "Campaign.model_campaign: no hardened memory accesses"
  | Fault.Cf ->
      if branch_sites = 0 then
        invalid_arg "Campaign.model_campaign: no hardened conditional branches");
  let rng = Random.State.make [| seed; Hashtbl.hash (Fault.model_to_string model) |] in
  let draw () = draw_model rng ~model ~sites ~mem_sites ~branch_sites in
  let exps = Obs.Span.time recorder "plan" (fun () -> plan ~n draw) in
  run ?jobs ?progress ?checkpoint ?supervise ?chaos ?cancel ~snapshots ~recorder
    ~redraw:draw ~spec ~golden:g exps

(* One-line observability summary for bench tables. *)
let pp_totals fmt (r : report) =
  Format.fprintf fmt "%d runs, %.1fs wall, %.2f Gcycles simulated, %d jobs%s%s%s%s%s"
    r.experiments_run r.wall_seconds
    (float_of_int r.cycles_simulated /. 1e9)
    r.jobs
    (if r.restored > 0 then Printf.sprintf ", %d restored from checkpoint" r.restored else "")
    (if r.not_reached > 0 then Printf.sprintf ", %d not-reached redrawn" r.not_reached else "")
    (if r.quarantined <> [] then
       Printf.sprintf ", %d quarantined" (List.length r.quarantined)
     else "")
    (if r.worker_deaths > 0 then Printf.sprintf ", %d worker deaths" r.worker_deaths
     else "")
    (if r.interrupted then ", interrupted" else "")
