(** Supervision layer for fault-injection campaigns.

    The campaign engine assumes every experiment returns an observation;
    this module makes that assumption safe at scale.  It wraps
    {!Fault.run_experiment_from} with three defenses, modelled on RepTFD's
    bounded-replay discipline (PAPERS.md) applied to the harness itself:

    - {b host-exception isolation} — any exception escaping a run
      (simulator invariant violation, [Stack_overflow], [Out_of_memory])
      is captured with its backtrace and deterministically re-executed up
      to [retries] times; a persistent failure is quarantined into a
      {!tool_error} instead of killing the worker pool;
    - {b wall-clock watchdog} — each run gets a deadline of
      [deadline_factor] x the running median of executed experiment times
      (floored at [deadline_floor]); a dedicated watchdog domain arms a
      per-worker cancellation flag that the machine polls through the
      cheap {!Cpu.Machine.config.abort} hook at quantum boundaries.
      Aborted runs are retried once, then quarantined;
    - {b chaos injection} — a test-only plan (raise / hang / slow /
      kill-worker on chosen plan slots) compiled into the machine's
      {!Cpu.Machine.config.chaos} hook, proving each supervision path
      end-to-end against the real engine.

    Quarantined experiments carry no observation: they are excluded from
    campaign statistics (supervision may shrink the sample, never skew
    it), persisted in the campaign checkpoint so a resume never re-executes
    a known-poison plan, and surfaced in the report.  {!Campaign.run}
    drives this module; tests may also call {!supervised_run} directly. *)

(** Why an experiment was quarantined. *)
type error_kind =
  | Host_exception  (** an exception escaped the run on every attempt *)
  | Deadline  (** the wall-clock watchdog aborted the run twice *)
  | Worker_death  (** the worker domain died while running the slot *)

val error_kind_to_string : error_kind -> string

(** A quarantined experiment: plan position, failure class, attempts
    consumed, and the exception text/backtrace (empty for deadlines).
    Everything except [te_backtrace] is deterministic under a chaos plan
    and is rendered into the report's results block. *)
type tool_error = {
  te_round : int;
  te_slot : int;
  te_kind : error_kind;
  te_attempts : int;
  te_detail : string;
  te_backtrace : string;
}

type config = {
  retries : int;  (** re-executions of a raising run before quarantine *)
  deadline_factor : float;  (** deadline = factor x running median *)
  deadline_floor : float;  (** never deadline below this many seconds *)
  max_tool_errors : int;
      (** campaign-level tolerance: more quarantines than this is a
          nonzero exit for the CLI (the library only reports) *)
}

(** [{ retries = 2; deadline_factor = 10.0; deadline_floor = 5.0;
    max_tool_errors = 0 }] *)
val default : config

(** {2 Chaos plans (test-only)} *)

type chaos_event =
  | Chaos_raise  (** raise {!Chaos_failure} out of the engine *)
  | Chaos_hang  (** stall the run until the watchdog aborts it *)
  | Chaos_slow of float  (** sleep this many seconds, then run normally *)
  | Chaos_kill  (** raise {!Worker_kill}: the worker domain dies *)

type chaos_spec

type chaos_plan = chaos_spec list

(** [chaos ~slot event] fires [event] when plan slot [slot] executes —
    once on its first execution by default, on every execution with
    [~persistent:true]. *)
val chaos : ?persistent:bool -> slot:int -> chaos_event -> chaos_spec

(** Number of times the spec's slot was executed (every consultation
    counts, fired or not) — lets tests assert a quarantined slot was never
    re-executed after a checkpoint resume. *)
val chaos_hits : chaos_spec -> int

(** What {!Chaos_raise} raises: an ordinary host exception, exercising the
    isolation/retry path. *)
exception Chaos_failure

(** What {!Chaos_kill} raises.  {!supervised_run} deliberately re-raises
    it so the worker domain dies, exercising the pool's death-detection
    and respawn path. *)
exception Worker_kill

(** {2 Supervisor lifecycle} *)

type t

(** [start cfg ~jobs] builds the per-worker watchdog slots and spawns the
    watchdog domain (one per campaign, scanning every ~10 ms).  [cancel]
    is an external cancellation flag (Ctrl-C): once set, every in-flight
    run is aborted and subsequent {!supervised_run} calls return
    [V_cancelled] immediately. *)
val start : ?cancel:bool Atomic.t -> config -> jobs:int -> t

(** Stops and joins the watchdog domain.  Call exactly once, after the
    worker pool has drained. *)
val stop : t -> unit

val cancelled : t -> bool

(** The configuration the supervisor was started with (the campaign pool
    reuses [retries] as the worker-death re-execution budget). *)
val config : t -> config

(** Worker domains that died and were respawned so far. *)
val worker_deaths : t -> int

val note_death : t -> unit

(** Folds one executed-experiment wall time into the running median the
    watchdog derives deadlines from. *)
val record_sample : t -> float -> unit

(** Current per-run deadline in seconds: [factor x median] of the recorded
    samples (cold start: [factor x floor]), floored at [deadline_floor]. *)
val deadline : t -> float

(** {2 One supervised experiment} *)

type verdict =
  | V_ok of Cpu.Machine.result  (** the run completed; result untouched *)
  | V_quarantined of tool_error  (** gave up; exclude the slot and record *)
  | V_cancelled  (** external cancel: slot simply not executed *)

(** [supervised_run s ~wid ~round ~slot ~chaos ~max_instrs ~snapshots
    ~spans spec e] executes one experiment under worker [wid]'s watchdog
    slot with retry/quarantine as configured.  Results of [V_ok] runs are
    bit-identical to unsupervised execution.  @raise Worker_kill when a
    {!Chaos_kill} fires (the caller's pool must treat it as worker
    death). *)
val supervised_run :
  t ->
  wid:int ->
  round:int ->
  slot:int ->
  chaos:chaos_plan ->
  max_instrs:int ->
  snapshots:Cpu.Machine.snapshot array ->
  spans:Obs.Span.t ->
  Fault.run_spec ->
  Fault.experiment ->
  verdict

val pp_tool_error : Format.formatter -> tool_error -> unit
