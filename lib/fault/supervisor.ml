(** Supervised experiment execution (see supervisor.mli).

    The design follows RepTFD's replay discipline: a suspect run is
    isolated, deterministically re-executed a bounded number of times, and
    only then given up on — except the suspect here is the *harness*
    itself (a host exception out of the simulator, a wall-clock runaway, a
    dead worker domain), not the simulated program.  Every verdict that
    is not [V_ok] leaves the campaign's statistics untouched: supervision
    may shrink the sample, never skew it. *)

(* ---- quarantine records ---- *)

type error_kind = Host_exception | Deadline | Worker_death

let error_kind_to_string = function
  | Host_exception -> "exception"
  | Deadline -> "timeout"
  | Worker_death -> "worker-death"

type tool_error = {
  te_round : int;
  te_slot : int;
  te_kind : error_kind;
  te_attempts : int;
  te_detail : string;
  te_backtrace : string;
}

(* ---- configuration ---- *)

type config = {
  retries : int;
  deadline_factor : float;
  deadline_floor : float;
  max_tool_errors : int;
}

let default =
  { retries = 2; deadline_factor = 10.0; deadline_floor = 5.0; max_tool_errors = 0 }

(* ---- chaos plans (test-only) ---- *)

type chaos_event = Chaos_raise | Chaos_hang | Chaos_slow of float | Chaos_kill

type chaos_spec = {
  ch_slot : int;
  ch_event : chaos_event;
  ch_persistent : bool;
  ch_hits : int Atomic.t;
}

type chaos_plan = chaos_spec list

let chaos ?(persistent = false) ~slot event =
  { ch_slot = slot; ch_event = event; ch_persistent = persistent; ch_hits = Atomic.make 0 }

let chaos_hits (c : chaos_spec) = Atomic.get c.ch_hits

exception Chaos_failure

exception Worker_kill

(* ---- running median of executed experiment times ---- *)

(* A bounded ring of the most recent samples; the median is computed on
   demand over a copy, so recording stays O(1) on the worker's path. *)
let clock_window = 512

type clock = { k_lock : Mutex.t; k_ring : float array; mutable k_n : int }

let clock_make () =
  { k_lock = Mutex.create (); k_ring = Array.make clock_window 0.0; k_n = 0 }

let clock_record (k : clock) (v : float) =
  Mutex.protect k.k_lock (fun () ->
      k.k_ring.(k.k_n mod clock_window) <- v;
      k.k_n <- k.k_n + 1)

let clock_median (k : clock) : float option =
  Mutex.protect k.k_lock (fun () ->
      let n = min k.k_n clock_window in
      if n = 0 then None
      else begin
        let a = Array.sub k.k_ring 0 n in
        Array.sort compare a;
        Some a.(n / 2)
      end)

(* ---- the supervisor ---- *)

(* Per-worker watchdog slot.  The abort flag is the ONLY state the machine
   ever reads (through the [abort] hook, one atomic load per quantum); the
   deadline is written by the worker when it arms a run and read by the
   watchdog domain.  [infinity] = idle. *)
type slot = { sl_abort : bool Atomic.t; sl_deadline : float Atomic.t }

type t = {
  cfg : config;
  clock : clock;
  slots : slot array;
  cancel : bool Atomic.t;
  deaths : int Atomic.t;
  wd_stop : bool Atomic.t;
  mutable wd : unit Domain.t option;
}

(* How often the watchdog scans the slots.  Bounds both the deadline
   enforcement slack and the Ctrl-C propagation latency. *)
let watchdog_tick = 0.01

let watchdog (s : t) () =
  while not (Atomic.get s.wd_stop) do
    let now = Unix.gettimeofday () in
    let cancelled = Atomic.get s.cancel in
    Array.iter
      (fun sl ->
        if cancelled || now > Atomic.get sl.sl_deadline then Atomic.set sl.sl_abort true)
      s.slots;
    Unix.sleepf watchdog_tick
  done

let start ?cancel (cfg : config) ~(jobs : int) : t =
  (* quarantine records carry the raising exception's backtrace; without
     this they would all be empty *)
  Printexc.record_backtrace true;
  let s =
    {
      cfg;
      clock = clock_make ();
      slots =
        Array.init (max 1 jobs) (fun _ ->
            { sl_abort = Atomic.make false; sl_deadline = Atomic.make infinity });
      cancel = (match cancel with Some c -> c | None -> Atomic.make false);
      deaths = Atomic.make 0;
      wd_stop = Atomic.make false;
      wd = None;
    }
  in
  s.wd <- Some (Domain.spawn (watchdog s));
  s

let stop (s : t) : unit =
  Atomic.set s.wd_stop true;
  Option.iter Domain.join s.wd;
  s.wd <- None

let cancelled (s : t) = Atomic.get s.cancel

let config (s : t) = s.cfg

let worker_deaths (s : t) = Atomic.get s.deaths

let note_death (s : t) = Atomic.incr s.deaths

let record_sample (s : t) (v : float) = clock_record s.clock v

(* Deadline for the next run: factor x running median once one exists.
   Cold start (no executed experiment yet) falls back to factor x floor —
   generous under the production defaults (50 s), and still tight in
   tests, which shrink both knobs. *)
let deadline (s : t) : float =
  match clock_median s.clock with
  | Some m -> Float.max s.cfg.deadline_floor (s.cfg.deadline_factor *. m)
  | None -> Float.max s.cfg.deadline_floor (s.cfg.deadline_factor *. s.cfg.deadline_floor)

(* The machine-side chaos hook for one attempt at [slot], or [None].  The
   hit counter advances on every *consultation* (i.e. every execution of
   the slot), so tests can assert a quarantined-then-resumed slot was
   never re-executed; one-shot specs only act on their first hit. *)
let chaos_hook (plan : chaos_plan) ~(slot : int) ~(worker : slot) : (unit -> unit) option
    =
  match List.find_opt (fun c -> c.ch_slot = slot) plan with
  | None -> None
  | Some c ->
      let hit = Atomic.fetch_and_add c.ch_hits 1 in
      if hit > 0 && not c.ch_persistent then None
      else
        Some
          (match c.ch_event with
          | Chaos_raise -> fun () -> raise Chaos_failure
          | Chaos_kill -> fun () -> raise Worker_kill
          | Chaos_slow d -> fun () -> Unix.sleepf d
          | Chaos_hang ->
              (* stall until the watchdog flags the slot; the machine's own
                 abort poll then raises at this same quantum boundary *)
              fun () ->
               while not (Atomic.get worker.sl_abort) do
                 Unix.sleepf 0.001
               done)

(* ---- one supervised experiment ---- *)

type verdict =
  | V_ok of Cpu.Machine.result
  | V_quarantined of tool_error
  | V_cancelled

let supervised_run (s : t) ~(wid : int) ~(round : int) ~(slot : int)
    ~(chaos : chaos_plan) ~(max_instrs : int)
    ~(snapshots : Cpu.Machine.snapshot array) ~(spans : Obs.Span.t)
    (spec : Fault.run_spec) (e : Fault.experiment) : verdict =
  let sl = s.slots.(wid) in
  let abort_hook () = Atomic.get sl.sl_abort in
  let disarm () = Atomic.set sl.sl_deadline infinity in
  (* [attempts] = executions started; [timeouts]/[failures] = budget used
     per failure class.  An aborted run is retried once (a second deadline
     overrun is no longer plausible scheduling noise); a raising run is
     retried [cfg.retries] times (RepTFD-style bounded replay: a
     deterministic failure will reproduce, an environmental one —
     Out_of_memory, a chaos injection — may clear). *)
  let rec attempt ~(attempts : int) ~(timeouts : int) ~(failures : int) : verdict =
    if Atomic.get s.cancel then V_cancelled
    else begin
      let hook = chaos_hook chaos ~slot ~worker:sl in
      let dl = deadline s in
      Atomic.set sl.sl_abort false;
      let t0 = Unix.gettimeofday () in
      Atomic.set sl.sl_deadline (t0 +. dl);
      match
        Fault.run_experiment_from ~max_instrs ~spans ~abort:abort_hook ?chaos:hook
          ~snapshots spec e
      with
      | r ->
          disarm ();
          clock_record s.clock (Unix.gettimeofday () -. t0);
          V_ok r
      | exception Cpu.Machine.Abort ->
          disarm ();
          if Atomic.get s.cancel then V_cancelled
          else if timeouts >= 1 then
            V_quarantined
              {
                te_round = round;
                te_slot = slot;
                te_kind = Deadline;
                te_attempts = attempts + 1;
                (* static text: quarantine records land in the
                   deterministic results block, so no measured values *)
                te_detail = "wall-clock deadline exceeded twice";
                te_backtrace = "";
              }
          else attempt ~attempts:(attempts + 1) ~timeouts:(timeouts + 1) ~failures
      | exception Worker_kill ->
          (* deliberate worker death (chaos): let it escape and kill the
             domain — the pool's death detection requeues the slot *)
          disarm ();
          raise Worker_kill
      | exception exn ->
          let bt = Printexc.get_backtrace () in
          disarm ();
          if failures >= s.cfg.retries then
            V_quarantined
              {
                te_round = round;
                te_slot = slot;
                te_kind = Host_exception;
                te_attempts = attempts + 1;
                te_detail = Printexc.to_string exn;
                te_backtrace = bt;
              }
          else attempt ~attempts:(attempts + 1) ~timeouts ~failures:(failures + 1)
    end
  in
  attempt ~attempts:0 ~timeouts:0 ~failures:0

let pp_tool_error fmt (te : tool_error) =
  Format.fprintf fmt "slot %d (round %d): %s after %d attempt%s%s" te.te_slot te.te_round
    (error_kind_to_string te.te_kind)
    te.te_attempts
    (if te.te_attempts = 1 then "" else "s")
    (if te.te_detail = "" then "" else ": " ^ te.te_detail)
