(** Parallel, deterministic fault-injection campaign engine (§IV-B).

    Pre-draws the full experiment list from a seeded RNG, fans the
    experiments out over a pool of OCaml 5 domains (each worker builds its
    own simulated machines), folds outcomes back in plan order — so for a
    fixed seed the statistics are bit-identical for any worker count —
    and discards-and-redraws experiments whose injection site was never
    reached.  Supports running-counter/ETA progress reporting,
    checkpoint/resume of interrupted campaigns, and supervised execution
    ({!Supervisor}): retry/quarantine of host failures, a wall-clock
    watchdog, worker-death respawn, and cooperative cancellation. *)

(** [Domain.recommended_domain_count ()]: the pool width used when [jobs]
    is not given. *)
val default_jobs : unit -> int

(** Draw one single-bit experiment: site uniform in [1, sites], lane in
    [0, 32), bit in [0, 64). *)
val draw_single : Random.State.t -> sites:int -> Fault.experiment

(** Draw one double-bit experiment (same destination register).  The
    second lane is drawn at a non-zero offset from the first;
    {!Cpu.Machine.second_flip} guarantees the pair cannot alias (and
    cancel) after the wrap to the destination's actual lane count. *)
val draw_double : ?same_bit:bool -> Random.State.t -> sites:int -> Fault.experiment

(** Draw one experiment under a fault model, against the golden run's
    site streams ([sites] = injection-eligible instructions, [mem_sites] =
    hardened memory accesses, [branch_sites] = hardened conditional
    branches).  Every branch consumes the RNG in a fixed order, so a plan
    is reproducible from (seed, site counts) alone. *)
val draw_model :
  Random.State.t ->
  model:Fault.model ->
  sites:int ->
  mem_sites:int ->
  branch_sites:int ->
  Fault.experiment

type progress = {
  completed : int;  (** experiments finished, including redraws *)
  total : int;  (** experiments currently planned, including redraws *)
  restored : int;
      (** of [completed], how many were replayed from a checkpoint rather
          than executed — they finish instantly, so [eta] is computed from
          the executed-only rate *)
  elapsed : float;  (** seconds since the campaign started *)
  eta : float;
      (** estimated seconds to completion.  [nan] while no experiment has
          actually executed yet (e.g. the checkpoint-replay prefix of a
          resumed campaign): there is no execution rate to extrapolate
          from, and callers should render the ETA as unknown. *)
  running : Fault.stats;  (** per-outcome running counters *)
  not_reached : int;  (** discarded so far *)
  quarantined : int;
      (** experiments the supervisor gave up on (0 when unsupervised) *)
}

type report = {
  stats : Fault.stats;
  outcomes : (Fault.experiment * Fault.obs) array;
      (** counted experiments in plan order (excludes discarded ones);
          the observations feed {!Fault.avf_table} and
          {!Fault.mean_latency} *)
  wall_seconds : float;
  cycles_simulated : int;  (** simulated cycles over all injection runs *)
  experiments_run : int;  (** injection runs executed, including redraws *)
  restored : int;  (** experiments replayed from the checkpoint *)
  not_reached : int;  (** runs discarded because the site was not reached *)
  quarantined : Supervisor.tool_error list;
      (** experiments the supervisor quarantined (host exception on every
          retry, repeated watchdog deadline, repeated worker death), in
          plan-slot order.  Excluded from [stats]/[outcomes]: supervision
          may shrink the sample, never skew it.  Persisted in the
          checkpoint, so a resumed campaign never re-executes them.
          Always [[]] when [supervise] was not given. *)
  worker_deaths : int;
      (** worker domains that died and were respawned (supervised only) *)
  interrupted : bool;
      (** the [cancel] flag stopped the campaign before every planned
          experiment completed; the checkpoint file (if any) was kept for
          a resume *)
  jobs : int;
  spans : Obs.Span.row list;
      (** phase spans: where the campaign's wall time went.  Top-level
          phases ("golden", "plan", "exec") tile the campaign; nested
          regions ("golden/snapshot", "exec/restore", "exec/checkpoint")
          break down captures, fast-forward restores and checkpoint I/O.
          Wall times (and [worker_deaths]/[interrupted]) are
          non-deterministic; everything else in the report above is
          bit-identical for any worker count, with or without
          supervision, for the experiments that completed. *)
}

(** [run ?jobs ?progress ?checkpoint ?redraw ~spec ~golden exps] runs a
    pre-drawn experiment list and returns the campaign report.

    - [jobs]: worker-domain count (default {!default_jobs}; [1] runs
      serially on the calling domain — except under [supervise], which
      always spawns worker domains so a worker death can never take down
      the caller).
    - [progress]: called after every completed experiment, serialized
      under the engine lock.  Exception-safe: a raising callback warns
      once on stderr and the campaign carries on.
    - [checkpoint]: file used to persist completed experiments every few
      runs; if it already holds results for this exact campaign (plan +
      golden run), they are restored instead of re-executed, and the file
      is removed once the campaign completes (kept when [interrupted]).
    - [redraw]: supplies replacement experiments for [Not_reached] runs;
      called between rounds on the calling domain in plan-slot order, so
      RNG-based redraws stay deterministic.  Without it, unreached
      experiments are discarded.
    - [snapshots]: a {!Fault.golden_capture} snapshot chain enabling
      fast-forward — each experiment restores the latest golden snapshot
      preceding its injection site instead of replaying the fault-free
      prefix.  Outcomes, and hence the report, are bit-identical with or
      without it, for any worker count.
    - [recorder]: a span recorder to fold the execution phases into
      (campaign entry points pass the one that already timed their golden
      and planning phases); without it a fresh recorder covers just this
      call.  Either way the rows end up in [report.spans].
    - [supervise]: run every experiment under a {!Supervisor} with this
      configuration — host exceptions are retried then quarantined,
      runaway runs are aborted by a wall-clock watchdog, dead worker
      domains are respawned.
    - [chaos]: test-only harness-failure injection plan; only acts under
      [supervise].
    - [cancel]: cooperative cancellation flag.  Once set (e.g. from a
      signal handler), in-flight experiments finish (or, under
      [supervise], are aborted at the next quantum boundary), no new ones
      start, and the report comes back with [interrupted = true]. *)
val run :
  ?jobs:int ->
  ?progress:(progress -> unit) ->
  ?checkpoint:string ->
  ?redraw:(unit -> Fault.experiment) ->
  ?snapshots:Cpu.Machine.snapshot array ->
  ?recorder:Obs.Span.t ->
  ?supervise:Supervisor.config ->
  ?chaos:Supervisor.chaos_plan ->
  ?cancel:bool Atomic.t ->
  spec:Fault.run_spec ->
  golden:Cpu.Machine.result ->
  Fault.experiment array ->
  report

(** [single ~seed ~n spec] — the paper's Fig. 13 campaign: [n] independent
    single-bit injections.  [fast_forward] (default [true]) captures
    snapshots during the golden run and starts every injection run from
    the latest snapshot preceding its site; the report is bit-identical
    either way.  [supervise]/[chaos]/[cancel] as in {!run}.
    @raise Invalid_argument if [spec] has no hardened code to inject
    into. *)
val single :
  ?seed:int ->
  ?n:int ->
  ?jobs:int ->
  ?progress:(progress -> unit) ->
  ?checkpoint:string ->
  ?fast_forward:bool ->
  ?supervise:Supervisor.config ->
  ?chaos:Supervisor.chaos_plan ->
  ?cancel:bool Atomic.t ->
  Fault.run_spec ->
  report

(** [double ~seed ~n ~same_bit spec] — double-bit campaign (§III-C);
    [same_bit] flips the same bit in two lanes (the adversarial
    two-agreeing-corrupt-replicas pattern). *)
val double :
  ?seed:int ->
  ?n:int ->
  ?same_bit:bool ->
  ?jobs:int ->
  ?progress:(progress -> unit) ->
  ?checkpoint:string ->
  ?fast_forward:bool ->
  ?supervise:Supervisor.config ->
  ?chaos:Supervisor.chaos_plan ->
  ?cancel:bool Atomic.t ->
  Fault.run_spec ->
  report

(** [model_campaign ~model spec] — campaign under a fault-model axis:
    register SEUs ([Reg], same distribution as {!single}), memory
    bit-flips ([Mem]), effective-address faults ([Addr]), control-flow
    faults ([Cf]), or a uniform mix ([Mixed]).  Sites are drawn against
    the golden run's per-kind site streams, pre-drawn and folded in plan
    order, so the stats are bit-identical for any worker count.
    @raise Invalid_argument if the model's site stream is empty for this
    build. *)
val model_campaign :
  ?seed:int ->
  ?n:int ->
  ?jobs:int ->
  ?progress:(progress -> unit) ->
  ?checkpoint:string ->
  ?fast_forward:bool ->
  ?supervise:Supervisor.config ->
  ?chaos:Supervisor.chaos_plan ->
  ?cancel:bool Atomic.t ->
  model:Fault.model ->
  Fault.run_spec ->
  report

(** One-line wall-time / simulated-cycles / jobs summary for bench output. *)
val pp_totals : Format.formatter -> report -> unit
