(** Fault-injection framework (paper §IV-B): single bit-flips in the
    destination register of one randomly chosen dynamic instruction inside
    hardened code (one lane for YMM destinations, per the SEU model of
    §III-A), classified against a golden run into the outcomes of
    Table I.  Whole campaigns are driven by {!Campaign}. *)

type outcome =
  | Hang  (** program became unresponsive *)
  | Os_detected  (** trap: segfault, division by zero, abort, fail-stop *)
  | Elzar_corrected  (** a recovery routine ran and the output is correct *)
  | Masked  (** fault did not affect the output *)
  | Sdc  (** silent data corruption in the output *)
  | Not_reached
      (** injection site never executed — no fault was injected; campaigns
          discard these and redraw rather than counting them as [Masked] *)

val outcome_to_string : outcome -> string

(** Everything needed to run one experiment deterministically. *)
type run_spec = {
  modul : Ir.Instr.modul;  (** already prepared (hardened or native) *)
  flags_cmp : bool;
  entry : string;
  args : int64 array;
  init : Cpu.Machine.t -> unit;  (** host-side input preparation *)
  max_instrs : int;
}

val make_spec :
  ?flags_cmp:bool ->
  ?args:int64 array ->
  ?init:(Cpu.Machine.t -> unit) ->
  ?max_instrs:int ->
  Ir.Instr.modul ->
  string ->
  run_spec

(** One pre-drawn experiment: flip [bit] of one lane of the destination of
    the [at]-th injection-eligible instruction, plus an optional second
    (lane, bit) flip for multi-bit SEUs (resolved to a non-aliasing target
    by {!Cpu.Machine.second_flip}). *)
type experiment = {
  at : int;
  lane : int;
  bit : int;
  second : (int * int) option;
}

(** Fault-free reference run; counts the injection-eligible dynamic
    instructions.  @raise Invalid_argument if the reference run traps. *)
val golden : run_spec -> Cpu.Machine.result

(** Classification against the golden run.  A run whose injection site was
    never reached ([fault_injected = false]) is [Not_reached], not
    [Masked] — counting it as correct would inflate [correct_pct]. *)
val classify : golden:Cpu.Machine.result -> Cpu.Machine.result -> outcome

(** Runs one experiment and returns the raw machine result (outcome via
    {!classify}; simulated cycles via [wall_cycles]). *)
val run_experiment : run_spec -> experiment -> Cpu.Machine.result

(** One experiment: flip [bit] of one lane of the destination of the
    [at]-th injection-eligible instruction. *)
val inject_one :
  run_spec -> golden:Cpu.Machine.result -> at:int -> lane:int -> bit:int -> outcome

(** Two flips in the same destination register (multi-bit SEU). *)
val inject_two :
  run_spec ->
  golden:Cpu.Machine.result ->
  at:int ->
  lane:int ->
  bit:int ->
  lane2:int ->
  bit2:int ->
  outcome

type stats = {
  runs : int;
  hang : int;
  os_detected : int;
  corrected : int;
  masked : int;
  sdc : int;
}

val empty_stats : stats

(** Folds one outcome into the counters.  [Not_reached] leaves the stats
    unchanged: such a run injected nothing and must not dilute the rates. *)
val add_outcome : stats -> outcome -> stats

(** The three Fig. 13 bars. *)
val crashed_pct : stats -> float

val correct_pct : stats -> float
val sdc_pct : stats -> float
val pp_stats : Format.formatter -> stats -> unit
