(** Fault-injection framework (paper §IV-B): single bit-flips in the
    destination register of one randomly chosen dynamic instruction inside
    hardened code (one lane for YMM destinations, per the SEU model of
    §III-A), classified against a golden run into the outcomes of Table I.
    The expanded taxonomy additionally injects memory bit-flips,
    effective-address faults and control-flow faults (the §VII
    limitations) via {!Cpu.Machine.fault_kind}.  Whole campaigns are
    driven by {!Campaign}. *)

type outcome =
  | Hang  (** program became unresponsive (instruction budget exhausted) *)
  | Deadlock
      (** all threads blocked on each other — counted separately, folded
          into the crashed bucket for Table I *)
  | Os_detected  (** trap: segfault, division by zero, abort, fail-stop *)
  | Elzar_corrected  (** a recovery routine ran and the output is correct *)
  | Masked  (** fault did not affect the output *)
  | Sdc  (** silent data corruption in the output *)
  | Not_reached
      (** injection site never executed — no fault was injected; campaigns
          discard these and redraw rather than counting them as [Masked] *)

val outcome_to_string : outcome -> string

(** Fault-model axis of a campaign.  The first four select one
    {!Cpu.Machine.fault_kind}; [Mixed] draws a kind per experiment
    (uniformly among the kinds with at least one site in the golden
    run). *)
type model = Reg | Mem | Addr | Cf | Mixed

val model_to_string : model -> string

(** @raise Invalid_argument on anything but ["reg"|"mem"|"addr"|"cf"|"mixed"]. *)
val model_of_string : string -> model

val all_models : model list

(** Everything needed to run one experiment deterministically. *)
type run_spec = {
  modul : Ir.Instr.modul;  (** already prepared (hardened or native) *)
  flags_cmp : bool;
  entry : string;
  args : int64 array;
  init : Cpu.Machine.t -> unit;  (** host-side input preparation *)
  max_instrs : int;
  reexec_retries : int;  (** re-execution recovery budget of the build *)
  engine : Cpu.Machine.engine_kind;  (** execution engine for every run *)
}

val make_spec :
  ?flags_cmp:bool ->
  ?args:int64 array ->
  ?init:(Cpu.Machine.t -> unit) ->
  ?max_instrs:int ->
  ?reexec_retries:int ->
  ?engine:Cpu.Machine.engine_kind ->
  Ir.Instr.modul ->
  string ->
  run_spec

(** One pre-drawn experiment.  For [Reg_flip]: flip [bit] of one lane of
    the destination of the [at]-th injection-eligible instruction, plus an
    optional second (lane, bit) flip for multi-bit SEUs (resolved to a
    non-aliasing target by {!Cpu.Machine.second_flip}).  The other kinds
    draw [at] against their own site streams and ignore [lane]/[second]. *)
type experiment = {
  at : int;
  lane : int;
  bit : int;
  second : (int * int) option;
  kind : Cpu.Machine.fault_kind;
}

(** Fault-free reference run; counts the injection-eligible dynamic
    instructions and the memory-access / branch site streams.
    @raise Invalid_argument if the reference run traps. *)
val golden : run_spec -> Cpu.Machine.result

(** {!golden}, additionally capturing machine snapshots along the run
    (oldest-first), for campaign fast-forward via
    {!run_experiment_from}.  Captures are spaced by dynamic instruction
    count and geometrically thinned, so at most a couple dozen are kept
    regardless of run length.  [spans] folds each capture's wall time
    into the ["golden/snapshot"] phase span. *)
val golden_capture :
  ?spans:Obs.Span.t -> run_spec -> Cpu.Machine.result * Cpu.Machine.snapshot array

(** Instruction budget for injection runs, derived from the golden run:
    [min spec.max_instrs (max 1_000_000 (20 * golden retired instrs))].
    Campaigns use this instead of the spec's (much larger) default budget
    so hung runs are cut off quickly. *)
val hang_budget : golden:Cpu.Machine.result -> run_spec -> int

(** Classification against the golden run.  A run whose injection site was
    never reached ([fault_injected = false]) is [Not_reached], not
    [Masked] — counting it as correct would inflate [correct_pct]. *)
val classify : golden:Cpu.Machine.result -> Cpu.Machine.result -> outcome

(** Runs one experiment and returns the raw machine result (outcome via
    {!classify}; simulated cycles via [wall_cycles]).  [max_instrs]
    overrides the spec's budget — campaigns pass {!hang_budget}.  [abort]
    and [chaos] are threaded into the machine config verbatim (the
    supervision hooks of {!Cpu.Machine.config}); a run that was never
    aborted is bit-identical with or without them. *)
val run_experiment :
  ?max_instrs:int ->
  ?abort:(unit -> bool) ->
  ?chaos:(unit -> unit) ->
  run_spec ->
  experiment ->
  Cpu.Machine.result

(** {!run_experiment}, fast-forwarded: restores the latest of [snapshots]
    (a {!golden_capture} array) whose site-stream counter for the
    experiment's fault kind is still below [at], and resumes from there
    under the injecting config.  Bit-identical outcome to a from-scratch
    {!run_experiment} — the skipped prefix is deterministic and fault-free
    by construction.  Falls back to a full run when the site precedes the
    first snapshot.  [spans] folds each restore's wall time into the
    ["exec/restore"] phase span (recorders are thread-safe, so campaign
    workers may share one). *)
val run_experiment_from :
  ?max_instrs:int ->
  ?spans:Obs.Span.t ->
  ?abort:(unit -> bool) ->
  ?chaos:(unit -> unit) ->
  snapshots:Cpu.Machine.snapshot array ->
  run_spec ->
  experiment ->
  Cpu.Machine.result

(** One experiment: flip [bit] of one lane of the destination of the
    [at]-th injection-eligible instruction. *)
val inject_one :
  run_spec -> golden:Cpu.Machine.result -> at:int -> lane:int -> bit:int -> outcome

(** Two flips in the same destination register (multi-bit SEU). *)
val inject_two :
  run_spec ->
  golden:Cpu.Machine.result ->
  at:int ->
  lane:int ->
  bit:int ->
  lane2:int ->
  bit2:int ->
  outcome

type stats = {
  runs : int;
  hang : int;
  deadlock : int;
  os_detected : int;
  corrected : int;
  masked : int;
  sdc : int;
}

val empty_stats : stats

(** Folds one outcome into the counters.  [Not_reached] leaves the stats
    unchanged: such a run injected nothing and must not dilute the rates. *)
val add_outcome : stats -> outcome -> stats

(** The three Fig. 13 bars ([crashed_pct] includes deadlocks). *)
val crashed_pct : stats -> float

val correct_pct : stats -> float
val sdc_pct : stats -> float
val pp_stats : Format.formatter -> stats -> unit

(** Per-run observation kept by campaigns: outcome plus wall cycles,
    injection-site instruction class and detection latency. *)
type obs = {
  o_outcome : outcome;
  o_cycles : int;
  o_class : string option;
  o_latency : int option;
}

val observe : golden:Cpu.Machine.result -> Cpu.Machine.result -> obs

(** Mean detection latency (dynamic instructions) over the observations
    that detected their fault; [None] if none did. *)
val mean_latency : obs array -> float option

(** AVF-style table: per injection-site instruction class, outcome stats;
    sorted by descending SDC rate. *)
val avf_table : obs array -> (string * stats) list

val pp_avf : Format.formatter -> (string * stats) list -> unit
