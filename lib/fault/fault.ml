(** Fault-injection framework (paper §IV-B).

    Reproduces the paper's Intel SDE + gdb campaign: each experiment runs
    the program once with a single bit flipped in the destination register
    of one randomly chosen dynamic instruction inside hardened code — GPR
    destinations flip their value, YMM destinations flip one bit of one
    lane, matching the SEU model of §III-A.  The outcome is classified
    against a golden run (Table I).

    This module holds the per-experiment machinery (specs, single
    injections, classification, outcome statistics); {!Campaign} drives
    whole campaigns over it, in parallel across domains. *)

type outcome =
  | Hang  (** program became unresponsive *)
  | Os_detected  (** trap: segfault, division by zero, abort, fail-stop *)
  | Elzar_corrected  (** a recovery routine ran and the output is correct *)
  | Masked  (** fault did not affect the output *)
  | Sdc  (** silent data corruption in the output *)
  | Not_reached
      (** the injection site was never executed: no fault was actually
          injected, so the run says nothing about resilience.  Campaigns
          discard these and redraw, as the paper's campaign does. *)

let outcome_to_string = function
  | Hang -> "hang"
  | Os_detected -> "os-detected"
  | Elzar_corrected -> "elzar-corrected"
  | Masked -> "masked"
  | Sdc -> "SDC"
  | Not_reached -> "not-reached"

(* Everything needed to run one experiment deterministically. *)
type run_spec = {
  modul : Ir.Instr.modul;  (** already prepared (hardened or native) *)
  flags_cmp : bool;
  entry : string;
  args : int64 array;
  init : Cpu.Machine.t -> unit;  (** host-side input preparation *)
  max_instrs : int;
}

let make_spec ?(flags_cmp = false) ?(args = [||]) ?(init = fun _ -> ())
    ?(max_instrs = 200_000_000) modul entry =
  { modul; flags_cmp; entry; args; init; max_instrs }

(* One pre-drawn experiment: flip [bit] of one lane of the destination of
   the [at]-th injection-eligible instruction, plus an optional second
   (lane, bit) flip for multi-bit SEUs.  The second lane is resolved
   against the destination's actual lane count by
   {!Cpu.Machine.second_flip}, which guarantees it never aliases (and
   hence cancels) the first flip after the [mod dlanes] wrap. *)
type experiment = {
  at : int;
  lane : int;
  bit : int;
  second : (int * int) option;
}

let run_with (spec : run_spec) (cfg : Cpu.Machine.config) : Cpu.Machine.result =
  let machine = Cpu.Machine.create ~cfg ~flags_cmp:spec.flags_cmp spec.modul in
  spec.init machine;
  Cpu.Machine.run ~args:spec.args machine spec.entry

(* Fault-free reference run; also counts the injection-eligible dynamic
   instructions (the "instruction trace" step of §IV-B). *)
let golden (spec : run_spec) : Cpu.Machine.result =
  let cfg =
    {
      Cpu.Machine.default_config with
      max_instrs = spec.max_instrs;
      count_inject_sites = true;
    }
  in
  let r = run_with spec cfg in
  (match r.Cpu.Machine.trap with
  | Some t ->
      invalid_arg
        (Printf.sprintf "Fault.golden: reference run of %s trapped (%s)" spec.entry
           (Cpu.Machine.string_of_trap t))
  | None -> ());
  r

let classify ~(golden : Cpu.Machine.result) (r : Cpu.Machine.result) : outcome =
  match r.Cpu.Machine.trap with
  | Some Cpu.Machine.Hang -> Hang
  | Some Cpu.Machine.Deadlock -> Hang
  | Some _ -> Os_detected
  | None ->
      if not r.Cpu.Machine.fault_injected then Not_reached
      else if r.Cpu.Machine.output_digest = golden.Cpu.Machine.output_digest then
        if r.Cpu.Machine.recovered_faults > 0 then Elzar_corrected else Masked
      else Sdc

(* Runs one pre-drawn experiment and returns the raw machine result, so
   callers can account simulated cycles as well as the outcome. *)
let run_experiment (spec : run_spec) (e : experiment) : Cpu.Machine.result =
  let cfg =
    {
      Cpu.Machine.default_config with
      max_instrs = spec.max_instrs;
      inject = Some { Cpu.Machine.at = e.at; lane = e.lane; bit = e.bit; second = e.second };
    }
  in
  run_with spec cfg

(* One experiment: flip [bit] of one lane of the destination of the [at]-th
   injection-eligible instruction. *)
let inject_one (spec : run_spec) ~(golden : Cpu.Machine.result) ~(at : int) ~(lane : int)
    ~(bit : int) : outcome =
  classify ~golden (run_experiment spec { at; lane; bit; second = None })

(* Multi-bit experiment: two flips in the same destination register
   (paper §III-C's extended-recovery discussion). *)
let inject_two (spec : run_spec) ~(golden : Cpu.Machine.result) ~(at : int) ~(lane : int)
    ~(bit : int) ~(lane2 : int) ~(bit2 : int) : outcome =
  classify ~golden (run_experiment spec { at; lane; bit; second = Some (lane2, bit2) })

type stats = {
  runs : int;
  hang : int;
  os_detected : int;
  corrected : int;
  masked : int;
  sdc : int;
}

let empty_stats = { runs = 0; hang = 0; os_detected = 0; corrected = 0; masked = 0; sdc = 0 }

let add_outcome (s : stats) = function
  | Hang -> { s with runs = s.runs + 1; hang = s.hang + 1 }
  | Os_detected -> { s with runs = s.runs + 1; os_detected = s.os_detected + 1 }
  | Elzar_corrected -> { s with runs = s.runs + 1; corrected = s.corrected + 1 }
  | Masked -> { s with runs = s.runs + 1; masked = s.masked + 1 }
  | Sdc -> { s with runs = s.runs + 1; sdc = s.sdc + 1 }
  | Not_reached -> s (* no fault injected: the run carries no information *)

let pct part s = 100.0 *. float_of_int part /. float_of_int (max 1 s.runs)

(* Aggregates into the paper's three Fig. 13 bars. *)
let crashed_pct s = pct (s.hang + s.os_detected) s
let correct_pct s = pct (s.corrected + s.masked) s
let sdc_pct s = pct s.sdc s

let pp_stats fmt (s : stats) =
  Format.fprintf fmt "runs=%d crashed=%.1f%% correct=%.1f%% (corrected=%.1f%%) SDC=%.1f%%"
    s.runs (crashed_pct s) (correct_pct s) (pct s.corrected s) (sdc_pct s)
