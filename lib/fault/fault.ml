(** Fault-injection framework (paper §IV-B).

    Reproduces the paper's Intel SDE + gdb campaign: each experiment runs
    the program once with a single bit flipped in the destination register
    of one randomly chosen dynamic instruction inside hardened code — GPR
    destinations flip their value, YMM destinations flip one bit of one
    lane, matching the SEU model of §III-A.  The outcome is classified
    against a golden run (Table I).

    This module holds the per-experiment machinery (specs, single
    injections, classification, outcome statistics); {!Campaign} drives
    whole campaigns over it, in parallel across domains. *)

type outcome =
  | Hang  (** program became unresponsive (instruction budget exhausted) *)
  | Deadlock  (** all threads blocked on each other — counted separately,
                  folded into the crashed bucket for Table I *)
  | Os_detected  (** trap: segfault, division by zero, abort, fail-stop *)
  | Elzar_corrected  (** a recovery routine ran and the output is correct *)
  | Masked  (** fault did not affect the output *)
  | Sdc  (** silent data corruption in the output *)
  | Not_reached
      (** the injection site was never executed: no fault was actually
          injected, so the run says nothing about resilience.  Campaigns
          discard these and redraw, as the paper's campaign does. *)

let outcome_to_string = function
  | Hang -> "hang"
  | Deadlock -> "deadlock"
  | Os_detected -> "os-detected"
  | Elzar_corrected -> "elzar-corrected"
  | Masked -> "masked"
  | Sdc -> "SDC"
  | Not_reached -> "not-reached"

(** Fault-model axis of a campaign.  The first four select one
    {!Cpu.Machine.fault_kind}; [Mixed] draws a kind per experiment
    (uniformly among the kinds with at least one site in the golden
    run). *)
type model = Reg | Mem | Addr | Cf | Mixed

let model_to_string = function
  | Reg -> "reg"
  | Mem -> "mem"
  | Addr -> "addr"
  | Cf -> "cf"
  | Mixed -> "mixed"

let model_of_string = function
  | "reg" -> Reg
  | "mem" -> Mem
  | "addr" -> Addr
  | "cf" -> Cf
  | "mixed" -> Mixed
  | s -> invalid_arg (Printf.sprintf "Fault.model_of_string: %S" s)

let all_models = [ Reg; Mem; Addr; Cf; Mixed ]

(* Everything needed to run one experiment deterministically. *)
type run_spec = {
  modul : Ir.Instr.modul;  (** already prepared (hardened or native) *)
  flags_cmp : bool;
  entry : string;
  args : int64 array;
  init : Cpu.Machine.t -> unit;  (** host-side input preparation *)
  max_instrs : int;
  reexec_retries : int;  (** re-execution recovery budget of the build *)
  engine : Cpu.Machine.engine_kind;  (** execution engine for every run *)
}

let make_spec ?(flags_cmp = false) ?(args = [||]) ?(init = fun _ -> ())
    ?(max_instrs = 200_000_000) ?(reexec_retries = 0)
    ?(engine = Cpu.Machine.Closure) modul entry =
  { modul; flags_cmp; entry; args; init; max_instrs; reexec_retries; engine }

(* One pre-drawn experiment: flip [bit] of one lane of the destination of
   the [at]-th injection-eligible instruction, plus an optional second
   (lane, bit) flip for multi-bit SEUs.  The second lane is resolved
   against the destination's actual lane count by
   {!Cpu.Machine.second_flip}, which guarantees it never aliases (and
   hence cancels) the first flip after the [mod dlanes] wrap. *)
type experiment = {
  at : int;
  lane : int;
  bit : int;
  second : (int * int) option;
  kind : Cpu.Machine.fault_kind;
}

let run_with (spec : run_spec) (cfg : Cpu.Machine.config) : Cpu.Machine.result =
  let machine = Cpu.Machine.create ~cfg ~flags_cmp:spec.flags_cmp spec.modul in
  spec.init machine;
  Cpu.Machine.run ~args:spec.args machine spec.entry

(* Fault-free reference run; also counts the injection-eligible dynamic
   instructions (the "instruction trace" step of §IV-B) and the
   memory-access / conditional-branch site streams of the other fault
   kinds. *)
let golden_cfg (spec : run_spec) : Cpu.Machine.config =
  {
    Cpu.Machine.default_config with
    max_instrs = spec.max_instrs;
    count_inject_sites = true;
    reexec_retries = spec.reexec_retries;
    engine = spec.engine;
  }

let check_golden (spec : run_spec) (r : Cpu.Machine.result) : Cpu.Machine.result =
  (match r.Cpu.Machine.trap with
  | Some t ->
      invalid_arg
        (Printf.sprintf "Fault.golden: reference run of %s trapped (%s)" spec.entry
           (Cpu.Machine.string_of_trap t))
  | None -> ());
  r

let golden (spec : run_spec) : Cpu.Machine.result =
  check_golden spec (run_with spec (golden_cfg spec))

(* Snapshots kept per golden run.  More snapshots cut more of each
   injection run's replayed prefix but cost capture time and memory; with
   geometric thinning the count stays in (max/2, max]. *)
let max_snapshots = 24

(* Dynamic instructions between captures, until thinning widens it. *)
let initial_snapshot_spacing = 12_500

(* Golden run that additionally captures machine snapshots at quantum
   boundaries, spaced by dynamic instruction count.  When the count would
   exceed [max_snapshots], every other snapshot is dropped and the spacing
   doubles — sound because captures are cumulative deltas against the base
   image (each one is self-contained), and cheap because dropped deltas
   are just garbage-collected.  The returned array is oldest-first. *)
let golden_capture ?spans (spec : run_spec) :
    Cpu.Machine.result * Cpu.Machine.snapshot array =
  let machine = Cpu.Machine.create ~cfg:(golden_cfg spec) ~flags_cmp:spec.flags_cmp spec.modul in
  spec.init machine;
  (* oldest-first throughout *)
  let snaps = ref [] in
  let nsnaps = ref 0 in
  let spacing = ref initial_snapshot_spacing in
  let capture (m : Cpu.Machine.t) : Cpu.Machine.snapshot =
    match spans with
    | None -> Cpu.Machine.snapshot m
    | Some r -> Obs.Span.time r "golden/snapshot" (fun () -> Cpu.Machine.snapshot m)
  in
  (* first capture at the very first quantum boundary: experiments whose
     site falls before any later snapshot then still restore a pooled
     memory instead of paying a from-scratch machine build *)
  let next_at = ref 1 in
  let on_quantum (m : Cpu.Machine.t) =
    if m.Cpu.Machine.total_instrs >= !next_at then begin
      snaps := !snaps @ [ capture m ];
      incr nsnaps;
      if !nsnaps > max_snapshots then begin
        (* keep even indices: the earliest snapshot must survive, it is
           what spares early-site experiments a from-scratch machine *)
        let keep = ref [] and i = ref 0 in
        List.iter
          (fun s ->
            if !i land 1 = 0 then keep := s :: !keep;
            incr i)
          !snaps;
        snaps := List.rev !keep;
        nsnaps := List.length !snaps;
        spacing := 2 * !spacing
      end;
      next_at := m.Cpu.Machine.total_instrs + !spacing
    end
  in
  let r =
    check_golden spec (Cpu.Machine.run ~args:spec.args ~on_quantum machine spec.entry)
  in
  (r, Array.of_list !snaps)

(* Hang budget for injection runs, derived from the golden run: a faulty
   run that retires 20x the golden dynamic instruction count is not going
   to terminate.  The floor keeps tiny workloads from being starved; the
   spec's own budget stays an upper bound. *)
let hang_budget ~(golden : Cpu.Machine.result) (spec : run_spec) : int =
  min spec.max_instrs
    (max 1_000_000 (20 * golden.Cpu.Machine.totals.Cpu.Counters.instrs))

let classify ~(golden : Cpu.Machine.result) (r : Cpu.Machine.result) : outcome =
  match r.Cpu.Machine.trap with
  | Some Cpu.Machine.Hang -> Hang
  | Some Cpu.Machine.Deadlock -> Deadlock
  | Some _ -> Os_detected
  | None ->
      if not r.Cpu.Machine.fault_injected then Not_reached
      else if r.Cpu.Machine.output_digest = golden.Cpu.Machine.output_digest then
        if r.Cpu.Machine.recovered_faults > 0 then Elzar_corrected else Masked
      else Sdc

(* Runs one pre-drawn experiment and returns the raw machine result, so
   callers can account simulated cycles as well as the outcome.
   [max_instrs] overrides the spec's budget (campaigns pass the golden-run
   derived {!hang_budget}); [abort] and [chaos] are the supervision hooks
   of {!Cpu.Machine.config}, compiled into the run's config unchanged. *)
let experiment_cfg ?max_instrs ?abort ?chaos (spec : run_spec) (e : experiment) :
    Cpu.Machine.config =
  {
    Cpu.Machine.default_config with
    max_instrs = (match max_instrs with Some b -> b | None -> spec.max_instrs);
    inject =
      Some
        {
          Cpu.Machine.at = e.at;
          lane = e.lane;
          bit = e.bit;
          second = e.second;
          kind = e.kind;
        };
    reexec_retries = spec.reexec_retries;
    engine = spec.engine;
    abort;
    chaos;
  }

let run_experiment ?max_instrs ?abort ?chaos (spec : run_spec) (e : experiment) :
    Cpu.Machine.result =
  run_with spec (experiment_cfg ?max_instrs ?abort ?chaos spec e)

(* The site stream an experiment's [at] is drawn against. *)
let site_stream (kind : Cpu.Machine.fault_kind) (sn : Cpu.Machine.snapshot) : int =
  let inj, mem, br = Cpu.Machine.snapshot_sites sn in
  match kind with
  | Cpu.Machine.Reg_flip -> inj
  | Cpu.Machine.Mem_flip | Cpu.Machine.Addr_flip -> mem
  | Cpu.Machine.Branch_flip -> br

(* Latest snapshot strictly before the experiment's injection site: the
   [at]-th site fires when the kind's counter reaches [at], so any
   snapshot whose counter is still below [at] precedes the injection.
   [snapshots] is oldest-first; returns [None] when the site lies before
   the first capture. *)
let pick_snapshot (snapshots : Cpu.Machine.snapshot array) (e : experiment) :
    Cpu.Machine.snapshot option =
  let best = ref None in
  Array.iter
    (fun sn -> if site_stream e.kind sn < e.at then best := Some sn)
    snapshots;
  !best

(* [run_experiment], fast-forwarded: instead of re-executing the whole
   fault-free prefix, restore the latest golden snapshot preceding the
   injection site and resume under the injecting config.  Snapshots carry
   their site counters, so the pre-drawn plan stays valid and the outcome
   is bit-identical to a from-scratch run (the prefix is deterministic). *)
let run_experiment_from ?max_instrs ?spans ?abort ?chaos
    ~(snapshots : Cpu.Machine.snapshot array) (spec : run_spec) (e : experiment) :
    Cpu.Machine.result =
  let cfg = experiment_cfg ?max_instrs ?abort ?chaos spec e in
  match pick_snapshot snapshots e with
  | None -> run_with spec cfg
  | Some sn ->
      (* ~reuse is sound here: each worker runs one experiment at a time
         and drops the machine before the next restore *)
      let m =
        match spans with
        | None -> Cpu.Machine.restore ~cfg ~reuse:true sn
        | Some r ->
            Obs.Span.time r "exec/restore" (fun () ->
                Cpu.Machine.restore ~cfg ~reuse:true sn)
      in
      Cpu.Machine.resume m

(* One experiment: flip [bit] of one lane of the destination of the [at]-th
   injection-eligible instruction. *)
let inject_one (spec : run_spec) ~(golden : Cpu.Machine.result) ~(at : int) ~(lane : int)
    ~(bit : int) : outcome =
  classify ~golden
    (run_experiment spec { at; lane; bit; second = None; kind = Cpu.Machine.Reg_flip })

(* Multi-bit experiment: two flips in the same destination register
   (paper §III-C's extended-recovery discussion). *)
let inject_two (spec : run_spec) ~(golden : Cpu.Machine.result) ~(at : int) ~(lane : int)
    ~(bit : int) ~(lane2 : int) ~(bit2 : int) : outcome =
  classify ~golden
    (run_experiment spec
       { at; lane; bit; second = Some (lane2, bit2); kind = Cpu.Machine.Reg_flip })

type stats = {
  runs : int;
  hang : int;
  deadlock : int;
  os_detected : int;
  corrected : int;
  masked : int;
  sdc : int;
}

let empty_stats =
  { runs = 0; hang = 0; deadlock = 0; os_detected = 0; corrected = 0; masked = 0; sdc = 0 }

let add_outcome (s : stats) = function
  | Hang -> { s with runs = s.runs + 1; hang = s.hang + 1 }
  | Deadlock -> { s with runs = s.runs + 1; deadlock = s.deadlock + 1 }
  | Os_detected -> { s with runs = s.runs + 1; os_detected = s.os_detected + 1 }
  | Elzar_corrected -> { s with runs = s.runs + 1; corrected = s.corrected + 1 }
  | Masked -> { s with runs = s.runs + 1; masked = s.masked + 1 }
  | Sdc -> { s with runs = s.runs + 1; sdc = s.sdc + 1 }
  | Not_reached -> s (* no fault injected: the run carries no information *)

let pct part s = 100.0 *. float_of_int part /. float_of_int (max 1 s.runs)

(* Aggregates into the paper's three Fig. 13 bars (deadlocks are crashes
   in Table I terms, but tallied separately above). *)
let crashed_pct s = pct (s.hang + s.deadlock + s.os_detected) s
let correct_pct s = pct (s.corrected + s.masked) s
let sdc_pct s = pct s.sdc s

let pp_stats fmt (s : stats) =
  Format.fprintf fmt "runs=%d crashed=%.1f%% correct=%.1f%% (corrected=%.1f%%) SDC=%.1f%%"
    s.runs (crashed_pct s) (correct_pct s) (pct s.corrected s) (sdc_pct s);
  if s.deadlock > 0 then Format.fprintf fmt " [deadlock=%d]" s.deadlock

(* Per-run observation: everything a campaign keeps from a machine result.
   Keeping these (rather than bare outcomes) lets campaigns report
   detection latency and the per-instruction-class AVF table without
   rerunning anything. *)
type obs = {
  o_outcome : outcome;
  o_cycles : int;  (** wall cycles of the faulty run *)
  o_class : string option;  (** instruction class at the injection site *)
  o_latency : int option;  (** detection latency in dynamic instructions *)
}

let observe ~(golden : Cpu.Machine.result) (r : Cpu.Machine.result) : obs =
  {
    o_outcome = classify ~golden r;
    o_cycles = r.Cpu.Machine.wall_cycles;
    o_class = r.Cpu.Machine.inject_class;
    o_latency = r.Cpu.Machine.detect_latency;
  }

let mean_latency (obs : obs array) : float option =
  let n = ref 0 and sum = ref 0 in
  Array.iter
    (fun o -> match o.o_latency with Some l -> incr n; sum := !sum + l | None -> ())
    obs;
  if !n = 0 then None else Some (float_of_int !sum /. float_of_int !n)

(* AVF-style table: for each instruction class at the injection site, the
   fraction of injections that ended in SDC (the architectural
   vulnerability of that class) and in crashes.  Rows are sorted by
   descending SDC rate, ties by run count. *)
let avf_table (obs : obs array) : (string * stats) list =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun o ->
      match o.o_class with
      | None -> ()
      | Some cls ->
          let s = try Hashtbl.find tbl cls with Not_found -> empty_stats in
          Hashtbl.replace tbl cls (add_outcome s o.o_outcome))
    obs;
  Hashtbl.fold (fun cls s acc -> (cls, s) :: acc) tbl []
  |> List.sort (fun (ca, sa) (cb, sb) ->
         match compare (sdc_pct sb) (sdc_pct sa) with
         | 0 -> ( match compare sb.runs sa.runs with 0 -> compare ca cb | c -> c)
         | c -> c)

let pp_avf fmt (rows : (string * stats) list) =
  Format.fprintf fmt "%-8s %6s %9s %9s %9s@." "class" "runs" "SDC%" "crashed%" "corr%";
  List.iter
    (fun (cls, s) ->
      Format.fprintf fmt "%-8s %6d %8.1f%% %8.1f%% %8.1f%%@." cls s.runs (sdc_pct s)
        (crashed_pct s) (correct_pct s))
    rows
