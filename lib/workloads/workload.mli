(** Common shape of a benchmark workload: a linked IR module (kernels
    hardened, driver unhardened), host-side input preparation, and one
    entry point [main(nthreads)]. *)

type size = Tiny | Small | Medium | Large

val size_to_string : size -> string

type t = {
  name : string;
  description : string;
  build : size -> Ir.Instr.modul;
  init : size -> Cpu.Machine.t -> unit;
  fi_ok : bool;  (** part of the fault-injection campaign (Fig. 13) *)
}

val make :
  ?fi_ok:bool ->
  name:string ->
  description:string ->
  build:(size -> Ir.Instr.modul) ->
  ?init:(size -> Cpu.Machine.t -> unit) ->
  unit ->
  t

(** Builds, prepares under the chosen flavour, loads inputs and executes. *)
val execute :
  ?machine_cfg:Cpu.Machine.config ->
  t ->
  build:Elzar.build ->
  nthreads:int ->
  size:size ->
  Cpu.Machine.result

(** Same, from an already prepared module (prepare once, sweep threads).
    [reexec_retries] re-supplies the re-execution recovery budget of the
    build (the flavour is no longer visible from the prepared module);
    use [Elzar.reexec_retries]. *)
val execute_prepared :
  ?machine_cfg:Cpu.Machine.config ->
  ?reexec_retries:int ->
  t ->
  prepared:Ir.Instr.modul ->
  flags_cmp:bool ->
  nthreads:int ->
  size:size ->
  Cpu.Machine.result

(** Fault-injection spec (paper defaults: smallest inputs, 2 threads). *)
val fi_spec :
  t -> build:Elzar.build -> ?nthreads:int -> ?size:size -> unit -> Fault.run_spec
