(** Common shape of a benchmark workload.

    Each workload builds a linked IR module (kernel functions hardened,
    driver and input plumbing unhardened, mirroring the paper's build where
    musl is hardened but OS/pthreads/IO are not), describes how the host
    pokes input data into simulated memory (the analogue of reading the
    input files — free of simulated cycles), and exposes one entry point
    [main(nthreads)]. *)

type size = Tiny | Small | Medium | Large

let size_to_string = function
  | Tiny -> "tiny"
  | Small -> "small"
  | Medium -> "medium"
  | Large -> "large"

type t = {
  name : string;
  description : string;
  build : size -> Ir.Instr.modul;
  init : size -> Cpu.Machine.t -> unit;
  fi_ok : bool;  (** part of the fault-injection campaign (Fig. 13) *)
}

let make ?(fi_ok = true) ~name ~description ~build ?(init = fun _ _ -> ()) () =
  { name; description; build; init; fi_ok }

(* Builds, prepares (runs the pass pipeline of the chosen flavour), loads
   and executes a workload; the module is verified along the way. *)
let execute ?(machine_cfg = Cpu.Machine.default_config) (w : t) ~(build : Elzar.build)
    ~(nthreads : int) ~(size : size) : Cpu.Machine.result =
  let m = w.build size in
  let prepared = Elzar.prepare build m in
  let machine_cfg =
    { machine_cfg with
      Cpu.Machine.reexec_retries =
        max machine_cfg.Cpu.Machine.reexec_retries (Elzar.reexec_retries build) }
  in
  let machine =
    Cpu.Machine.create ~cfg:machine_cfg ~flags_cmp:(Elzar.uses_flags_cmp build) prepared
  in
  w.init size machine;
  Cpu.Machine.run ~args:[| Int64.of_int nthreads |] machine "main"

(* Same, but from an already prepared module (lets benchmarks prepare once
   and sweep thread counts).  [reexec_retries] must be supplied again
   because the build flavour is no longer visible here. *)
let execute_prepared ?(machine_cfg = Cpu.Machine.default_config) ?(reexec_retries = 0)
    (w : t) ~(prepared : Ir.Instr.modul) ~(flags_cmp : bool) ~(nthreads : int)
    ~(size : size) : Cpu.Machine.result =
  let machine_cfg =
    { machine_cfg with
      Cpu.Machine.reexec_retries = max machine_cfg.Cpu.Machine.reexec_retries reexec_retries }
  in
  let machine = Cpu.Machine.create ~cfg:machine_cfg ~flags_cmp prepared in
  w.init size machine;
  Cpu.Machine.run ~args:[| Int64.of_int nthreads |] machine "main"

(* Fault-injection spec for this workload (paper: smallest inputs, 2
   threads). *)
let fi_spec (w : t) ~(build : Elzar.build) ?(nthreads = 2) ?(size = Tiny) () :
    Fault.run_spec =
  let m = w.build size in
  let prepared = Elzar.prepare build m in
  Fault.make_spec ~flags_cmp:(Elzar.uses_flags_cmp build)
    ~args:[| Int64.of_int nthreads |]
    ~init:(fun machine -> w.init size machine)
    ~reexec_retries:(Elzar.reexec_retries build) prepared "main"
