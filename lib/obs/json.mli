(** Dependency-free JSON emitter: the one serialization path for every
    machine-readable report (campaign results, bench tables, run
    profiles).  Documents are plain values, rendering is deterministic —
    object members keep their construction order and floats have one
    canonical spelling — so two reports over identical data are
    bit-identical and can be diffed across runs, worker counts and PRs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Body of a JSON string literal (no surrounding quotes): quote and
    backslash get a backslash escape, control characters become the usual
    two-character escapes or [\u00XX]; everything else is passed through
    byte-for-byte (UTF-8 stays UTF-8). *)
val escape : string -> string

(** Canonical float spelling: integral values as [x.0], the rest via
    [%.12g]; NaN and infinities (which JSON cannot represent) as [null]. *)
val number : float -> string

(** Renders pretty-printed (2-space indent) by default, single-line with
    [~compact:true].  Both forms are deterministic. *)
val to_string : ?compact:bool -> t -> string

val to_channel : ?compact:bool -> out_channel -> t -> unit

(** Pretty-printed document plus a trailing newline. *)
val to_file : string -> t -> unit
