(** The one report pipeline: renders counters, fault-injection statistics,
    AVF tables, detection-latency histograms, phase spans, per-class
    profiles and whole campaign/run results as versioned JSON documents
    (schema notes in EXPERIMENTS.md).

    Every top-level document starts with ["schema"] (a document-kind name
    like ["elzar.campaign"]) and ["version"] ({!version}); consumers must
    check both.  Within a version, members may be added but never removed,
    renamed or re-typed — bump {!version} for anything else.

    Documents are deterministic given their data: for a fixed campaign
    seed, the {!campaign_results} section is bit-identical for any worker
    count (only the ["timing"] and ["spans"] sections of the full
    {!campaign} document vary run to run). *)

(** Schema version stamped into every document. *)
val version : int

(** [versioned ~schema fields] is the standard envelope:
    [{"schema": ..., "version": ..., fields...}]. *)
val versioned : schema:string -> (string * Obs.Json.t) list -> Obs.Json.t

val counters : Cpu.Counters.t -> Obs.Json.t

(** Outcome counts plus the Fig. 13 percentage bars — the JSON rendering
    of {!Fault.pp_stats}'s numbers. *)
val stats : Fault.stats -> Obs.Json.t

(** Per-instruction-class outcome table ({!Fault.avf_table} order). *)
val avf : (string * Fault.stats) list -> Obs.Json.t

(** Detection-latency summary: mean plus a log2-bucketed histogram
    (bucket [k] counts latencies in [[2^k, 2^(k+1))] dynamic
    instructions). *)
val latency : Fault.obs array -> Obs.Json.t

val spans : Obs.Span.row list -> Obs.Json.t

(** Per-class cycle attribution rows ({!Cpu.Profile.rows} order). *)
val profile : Cpu.Profile.t -> Obs.Json.t

(** The deterministic sections of a campaign report: stats, outcome
    histogram, AVF table, latency histogram, and (since version 2) the
    quarantine count and tool-error records of supervised execution —
    rendered as [0]/[[]] when unsupervised, so the block stays
    bit-identical with supervision on or off.  Bit-identical for any
    worker count, with or without fast-forward or checkpoint resume
    (quarantine backtraces, which vary host to host, are excluded). *)
val campaign_results : Campaign.report -> Obs.Json.t

(** Full campaign document (schema ["elzar.campaign"]): [params] (caller
    context such as workload/build/seed), the deterministic
    {!campaign_results}, and the run-variant ["timing"] (including the
    version-2 ["worker_deaths"]/["interrupted"] supervision fields) and
    ["spans"] sections. *)
val campaign : ?params:(string * Obs.Json.t) list -> Campaign.report -> Obs.Json.t

(** Single-run document (schema ["elzar.run"]): wall cycles, counter
    totals, output digest, recovery counters, optional per-class
    profile. *)
val run_result :
  ?params:(string * Obs.Json.t) list ->
  ?profile:Cpu.Profile.t ->
  Cpu.Machine.result ->
  Obs.Json.t

(** Pretty-prints the document to [path] (trailing newline included). *)
val write : string -> Obs.Json.t -> unit
