(** Phase-span recorder (see span.mli): a mutex-protected table
    path -> (count, wall, cycles).  Cheap enough to leave on — one
    [gettimeofday] pair and one short critical section per region. *)

type cell = { mutable c_count : int; mutable c_wall : float; mutable c_cycles : int }

type t = { mu : Mutex.t; cells : (string, cell) Hashtbl.t }

type row = { path : string; count : int; wall : float; cycles : int }

let make () : t = { mu = Mutex.create (); cells = Hashtbl.create 16 }

let cell (r : t) (path : string) : cell =
  match Hashtbl.find_opt r.cells path with
  | Some c -> c
  | None ->
      let c = { c_count = 0; c_wall = 0.0; c_cycles = 0 } in
      Hashtbl.replace r.cells path c;
      c

let add (r : t) ?(cycles = 0) ?(count = 1) (path : string) (wall : float) : unit =
  Mutex.protect r.mu (fun () ->
      let c = cell r path in
      c.c_count <- c.c_count + count;
      c.c_wall <- c.c_wall +. wall;
      c.c_cycles <- c.c_cycles + cycles)

let add_cycles (r : t) (path : string) (cycles : int) : unit =
  add r ~cycles ~count:0 path 0.0

let time (r : t) (path : string) (f : unit -> 'a) : 'a =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add r path (Unix.gettimeofday () -. t0)) f

let rows (r : t) : row list =
  let all =
    Mutex.protect r.mu (fun () ->
        Hashtbl.fold
          (fun path c acc ->
            { path; count = c.c_count; wall = c.c_wall; cycles = c.c_cycles } :: acc)
          r.cells [])
  in
  List.sort (fun a b -> compare a.path b.path) all

let coverage ~(rows : row list) ~(wall : float) : float =
  if wall <= 0.0 then 1.0
  else
    let top =
      List.fold_left
        (fun acc r -> if String.contains r.path '/' then acc else acc +. r.wall)
        0.0 rows
    in
    top /. wall
