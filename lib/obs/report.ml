(** Versioned JSON report rendering (see report.mli).  All member order is
    fixed by construction, so documents over identical data are
    bit-identical and diffable. *)

module J = Obs.Json

(* v2: campaign results gained "quarantined"/"tool_errors" (supervised
   execution), campaign timing gained "worker_deaths"/"interrupted". *)
let version = 2

let versioned ~(schema : string) (fields : (string * J.t) list) : J.t =
  J.Obj (("schema", J.Str schema) :: ("version", J.Int version) :: fields)

let counters (c : Cpu.Counters.t) : J.t =
  J.Obj
    [
      ("instrs", J.Int c.Cpu.Counters.instrs);
      ("uops", J.Int c.Cpu.Counters.uops);
      ("avx_instrs", J.Int c.Cpu.Counters.avx_instrs);
      ("loads", J.Int c.Cpu.Counters.loads);
      ("stores", J.Int c.Cpu.Counters.stores);
      ("branches", J.Int c.Cpu.Counters.branches);
      ("branch_misses", J.Int c.Cpu.Counters.branch_misses);
      ("l1_refs", J.Int c.Cpu.Counters.l1_refs);
      ("l1_misses", J.Int c.Cpu.Counters.l1_misses);
      ("cycles", J.Int c.Cpu.Counters.cycles);
    ]

let stats (s : Fault.stats) : J.t =
  J.Obj
    [
      ("runs", J.Int s.Fault.runs);
      ("hang", J.Int s.Fault.hang);
      ("deadlock", J.Int s.Fault.deadlock);
      ("os_detected", J.Int s.Fault.os_detected);
      ("corrected", J.Int s.Fault.corrected);
      ("masked", J.Int s.Fault.masked);
      ("sdc", J.Int s.Fault.sdc);
      ("crashed_pct", J.Float (Fault.crashed_pct s));
      ("correct_pct", J.Float (Fault.correct_pct s));
      ("sdc_pct", J.Float (Fault.sdc_pct s));
    ]

let avf (table : (string * Fault.stats) list) : J.t =
  J.List
    (List.map
       (fun (cls, s) -> J.Obj [ ("class", J.Str cls); ("stats", stats s) ])
       table)

(* log2 bucket of a positive latency: bucket k holds [2^k, 2^(k+1)). *)
let log2_bucket (l : int) : int =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  if l <= 1 then 0 else go l 0

let latency (obs : Fault.obs array) : J.t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (o : Fault.obs) ->
      match o.Fault.o_latency with
      | Some l when l >= 0 ->
          let k = log2_bucket l in
          Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      | _ -> ())
    obs;
  let buckets = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  J.Obj
    [
      ( "mean_instrs",
        match Fault.mean_latency obs with Some l -> J.Float l | None -> J.Null );
      ( "log2_histogram",
        J.List
          (List.map
             (fun (k, n) -> J.Obj [ ("bucket", J.Int k); ("count", J.Int n) ])
             buckets) );
    ]

let spans (rows : Obs.Span.row list) : J.t =
  J.List
    (List.map
       (fun (r : Obs.Span.row) ->
         J.Obj
           [
             ("span", J.Str r.Obs.Span.path);
             ("count", J.Int r.Obs.Span.count);
             ("wall_seconds", J.Float r.Obs.Span.wall);
             ("cycles", J.Int r.Obs.Span.cycles);
           ])
       rows)

let profile (p : Cpu.Profile.t) : J.t =
  J.List
    (List.map
       (fun (cls, instrs, cycles) ->
         J.Obj
           [
             ("class", J.Str cls);
             ("instrs", J.Int instrs);
             ("cycles", J.Int cycles);
             ( "cycles_per_instr",
               J.Float (float_of_int cycles /. float_of_int (max 1 instrs)) );
           ])
       (Cpu.Profile.rows p))

(* One quarantine record.  Deterministic fields only: the backtrace is
   host-run-dependent noise and stays out of the results block (it is
   still printed to stderr by the CLI). *)
let tool_error (te : Supervisor.tool_error) : J.t =
  J.Obj
    [
      ("round", J.Int te.Supervisor.te_round);
      ("slot", J.Int te.Supervisor.te_slot);
      ("kind", J.Str (Supervisor.error_kind_to_string te.Supervisor.te_kind));
      ("attempts", J.Int te.Supervisor.te_attempts);
      ("detail", J.Str te.Supervisor.te_detail);
    ]

let campaign_results (r : Campaign.report) : J.t =
  let obs = Array.map snd r.Campaign.outcomes in
  J.Obj
    [
      ("stats", stats r.Campaign.stats);
      ("avf", avf (Fault.avf_table obs));
      ("latency", latency obs);
      ("not_reached", J.Int r.Campaign.not_reached);
      (* always rendered (0/[] when unsupervised): a supervised chaos-free
         campaign's results block is bit-identical to an unsupervised one *)
      ("quarantined", J.Int (List.length r.Campaign.quarantined));
      ("tool_errors", J.List (List.map tool_error r.Campaign.quarantined));
    ]

let campaign ?(params = []) (r : Campaign.report) : J.t =
  versioned ~schema:"elzar.campaign"
    [
      ("campaign", J.Obj params);
      ("results", campaign_results r);
      ( "timing",
        J.Obj
          [
            ("wall_seconds", J.Float r.Campaign.wall_seconds);
            ("cycles_simulated", J.Int r.Campaign.cycles_simulated);
            ("experiments_run", J.Int r.Campaign.experiments_run);
            ("restored", J.Int r.Campaign.restored);
            ("jobs", J.Int r.Campaign.jobs);
            ("worker_deaths", J.Int r.Campaign.worker_deaths);
            ("interrupted", J.Bool r.Campaign.interrupted);
          ] );
      ("spans", spans r.Campaign.spans);
    ]

let run_result ?(params = []) ?profile:prof (r : Cpu.Machine.result) : J.t =
  versioned ~schema:"elzar.run"
    ([
       ("run", J.Obj params);
       ("wall_cycles", J.Int r.Cpu.Machine.wall_cycles);
       ("totals", counters r.Cpu.Machine.totals);
       ("output_digest", J.Str (Digest.to_hex r.Cpu.Machine.output_digest));
       ( "trap",
         match r.Cpu.Machine.trap with
         | Some t -> J.Str (Cpu.Machine.string_of_trap t)
         | None -> J.Null );
       ("recovered_faults", J.Int r.Cpu.Machine.recovered_faults);
       ("retried_faults", J.Int r.Cpu.Machine.retried_faults);
       ("reexecutions", J.Int r.Cpu.Machine.reexecutions);
     ]
    @ match prof with Some p -> [ ("profile", profile p) ] | None -> [])

let write (path : string) (doc : J.t) : unit = J.to_file path doc
