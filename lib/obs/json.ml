(** Dependency-free JSON emitter (see json.mli).  Rendering is fully
    deterministic: member order is construction order, floats have one
    canonical spelling, indentation is fixed — bit-identical input data
    yields bit-identical documents. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number (f : float) : string =
  if f <> f || f = infinity || f = neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

(* Pretty renderer: 2-space indent, "key": value, no trailing spaces. *)
let rec render (buf : Buffer.t) ~(compact : bool) ~(indent : int) (j : t) : unit =
  let pad n = if not compact then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if not compact then Buffer.add_char buf '\n' in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (number f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (indent + 1);
          render buf ~compact ~indent:(indent + 1) item)
        items;
      nl ();
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (indent + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if compact then "\":" else "\": ");
          render buf ~compact ~indent:(indent + 1) v)
        members;
      nl ();
      pad indent;
      Buffer.add_char buf '}'

let to_string ?(compact = false) (j : t) : string =
  let buf = Buffer.create 256 in
  render buf ~compact ~indent:0 j;
  Buffer.contents buf

let to_channel ?(compact = false) (oc : out_channel) (j : t) : unit =
  output_string oc (to_string ~compact j)

let to_file (path : string) (j : t) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      to_channel oc j;
      output_char oc '\n')
