(** Lightweight phase spans: named wall-time (and simulated-Gcycle)
    regions a campaign or bench threads through its phases so a report can
    explain where the time went.

    A recorder aggregates by span *path*: ["exec"] is a top-level phase,
    ["exec/checkpoint"] a region nested inside it (nesting is expressed in
    the name, so spans recorded from worker domains need no per-domain
    stack).  Recorders are thread-safe — workers may time regions
    concurrently; each completed region folds (count, wall seconds,
    attributed cycles) into its path's cell under the recorder's lock.

    Top-level paths are expected to tile the instrumented interval:
    {!coverage} reports the fraction of a measured wall time they account
    for, which campaigns keep ≥ 0.95. *)

type t

type row = {
  path : string;  (** phase name, ['/']-separated for nested regions *)
  count : int;  (** completed regions folded into this path *)
  wall : float;  (** total wall seconds *)
  cycles : int;  (** simulated cycles attributed via {!add_cycles} *)
}

val make : unit -> t

(** [time r path f] runs [f] and folds its wall time into [path]
    (exception-safe: the region is recorded even if [f] raises). *)
val time : t -> string -> (unit -> 'a) -> 'a

(** Fold an externally measured region into [path]. *)
val add : t -> ?cycles:int -> ?count:int -> string -> float -> unit

(** Attribute simulated cycles to [path] without touching its wall time. *)
val add_cycles : t -> string -> int -> unit

(** All rows, sorted by path (deterministic). *)
val rows : t -> row list

(** Fraction of [wall] accounted for by the top-level rows (paths without
    ['/']); [1.0] when [wall] is not positive. *)
val coverage : rows:row list -> wall:float -> float
