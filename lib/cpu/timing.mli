(** Out-of-order superscalar timing engine, one instance per simulated
    core: 4-wide in-order dispatch into a 192-μop window, per-port issue
    with latencies and reciprocal throughputs from {!Cost}, a per-core
    memory pipe serializing L1 misses, and branch-mispredict flushes.
    Wall-clock cycles from this model underlie every normalized-runtime
    figure of the paper. *)

type t = {
  port_free : int array;
  mutable bus_free : int;
  mutable dispatch_cycle : int;
  mutable dispatch_used : int;
  mutable horizon : int;
  rob : int array;
  mutable rob_pos : int;
}

val width : int
val rob_size : int
val create : unit -> t

(** Independent deep copy (for machine snapshots). *)
val copy : t -> t

val reset : t -> unit

(** Current core clock. *)
val cycle : t -> int

(** Issues one instruction's μop sequence; [ready] is when its register
    inputs are available, [mem_lat] substitutes the latency of load μops.
    Returns the cycle its result is ready. *)
val exec : t -> ready:int -> mem_lat:int -> Cost.uop array -> int

(** Precompiled form of one μop: the static facts [exec] would re-derive
    per dynamic instance (decoded port set, chaining, memory class). *)
type uplan = {
  up_lat : int;
  up_ports : int array;  (** port indices decoded from the mask, ascending *)
  up_rt : int;
  up_chain : bool;
  up_load : bool;
  up_membus : bool;
}

(** Static cost plan of one instruction's μop sequence, compiled once by
    the block engine. *)
type plan =
  | Pempty
  | Palu1 of uplan  (** exactly one μop, no memory side *)
  | Pseq of uplan array

val plan_of_uops : Cost.uop array -> plan

(** Bit-identical replay of [exec] over a precompiled plan: only the
    dynamic residue (dispatch window, port contention, hit/miss latency,
    miss-pipe serialization) is evaluated at run time. *)
val exec_plan : t -> ready:int -> mem_lat:int -> plan -> int

(** Branch misprediction: the front end restarts after the branch
    resolves, plus the flush penalty. *)
val mispredict : t -> resolved:int -> unit

(** Fixed-cost advancement (native builtins). *)
val advance : t -> int -> unit

(** Synchronization edge observed at absolute cycle [c] (join, lock
    hand-over): the core cannot proceed earlier. *)
val sync_to : t -> int -> unit
