(** Out-of-order superscalar timing engine, one instance per simulated
    core: 4-wide in-order dispatch into a 192-μop window, per-port issue
    with latencies and reciprocal throughputs from {!Cost}, a per-core
    memory pipe serializing L1 misses, and branch-mispredict flushes.
    Wall-clock cycles from this model underlie every normalized-runtime
    figure of the paper. *)

type t = {
  port_free : int array;
  mutable bus_free : int;
  mutable dispatch_cycle : int;
  mutable dispatch_used : int;
  mutable horizon : int;
  rob : int array;
  mutable rob_pos : int;
}

val width : int
val rob_size : int
val create : unit -> t

(** Independent deep copy (for machine snapshots). *)
val copy : t -> t

val reset : t -> unit

(** Current core clock. *)
val cycle : t -> int

(** Issues one instruction's μop sequence; [ready] is when its register
    inputs are available, [mem_lat] substitutes the latency of load μops.
    Returns the cycle its result is ready. *)
val exec : t -> ready:int -> mem_lat:int -> Cost.uop array -> int

(** Branch misprediction: the front end restarts after the branch
    resolves, plus the flush penalty. *)
val mispredict : t -> resolved:int -> unit

(** Fixed-cost advancement (native builtins). *)
val advance : t -> int -> unit

(** Synchronization edge observed at absolute cycle [c] (join, lock
    hand-over): the core cannot proceed earlier. *)
val sync_to : t -> int -> unit
