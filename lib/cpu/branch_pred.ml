(** Gshare-style branch predictor: 4K two-bit saturating counters indexed by
    the branch PC xor-folded with a global history register.  Feeds the
    branch-miss counters of Table II and the mispredict penalty of the
    timing engine. *)

type t = {
  table : int array;  (** 2-bit counters, 0..3; >=2 predicts taken *)
  mutable history : int;
  mutable branches : int;
  mutable misses : int;
}

let table_bits = 12
let table_size = 1 lsl table_bits

let create () = { table = Array.make table_size 1; history = 0; branches = 0; misses = 0 }

(* Independent deep copy, for machine snapshots. *)
let copy (p : t) : t = { p with table = Array.copy p.table }

(* Records the outcome of a conditional branch at [pc]; returns [true] when
   the prediction was wrong. *)
let record (p : t) ~(pc : int) ~(taken : bool) : bool =
  p.branches <- p.branches + 1;
  let idx = (pc lxor p.history) land (table_size - 1) in
  let ctr = p.table.(idx) in
  let predicted_taken = ctr >= 2 in
  let mispredicted = predicted_taken <> taken in
  if mispredicted then p.misses <- p.misses + 1;
  p.table.(idx) <- (if taken then min 3 (ctr + 1) else max 0 (ctr - 1));
  p.history <- ((p.history lsl 1) lor Bool.to_int taken) land (table_size - 1);
  mispredicted

let miss_ratio (p : t) =
  if p.branches = 0 then 0.0 else float_of_int p.misses /. float_of_int p.branches

let reset (p : t) =
  Array.fill p.table 0 table_size 1;
  p.history <- 0;
  p.branches <- 0;
  p.misses <- 0
