(** Opt-in per-instruction-class cycle attribution for the closure engine.

    A table keyed by the same class strings {!Machine.class_of} feeds to
    the AVF table ("alu", "cmp", "mov", "load", ...), accumulating retired
    instructions and the simulated cycles their execution advanced the
    core clock by.  Supply one via [config.profile] to turn the hook on;
    with [None] the hook is not compiled into the closures at all
    (zero-cost-when-off), and under the [Reference] engine the table is
    ignored.  Tables are single-machine state — do not share one across
    domains. *)

type t

val create : unit -> t

(** Fold one retired instruction of [cls]: +1 instruction, +[cycles]
    (clamped at 0) attributed cycles. *)
val add : t -> string -> cycles:int -> unit

(** [(class, instrs, cycles)] rows, sorted by descending cycles (ties by
    class name). *)
val rows : t -> (string * int * int) list

(** Totals over all classes: (instructions, cycles). *)
val total : t -> int * int

val pp : Format.formatter -> t -> unit
