(** The simulated multicore machine: functional execution of compiled IR
    (bit-exact lane semantics) driving one {!Timing}/{!Cache}/{!Branch_pred}
    per core.  Threads map 1:1 onto cores; the scheduler always advances
    the thread whose core clock is furthest behind, so lock contention and
    join edges appear in wall-clock cycles.  Hosts the native builtins
    (unhardened OS/pthreads/IO, §IV-A) and the fault-injection hooks
    (§IV-B), covering a four-kind transient-fault taxonomy — register
    SEUs, memory bit-flips, effective-address faults and control-flow
    faults (the §VII limitations, modelled explicitly) — plus
    re-execution recovery: with [reexec_retries > 0] each outermost
    hardened call is checkpointed (arguments, stack pointer, a memory
    undo log) so the [elzar_reexec] runtime marker can roll the thread
    back and retry instead of fail-stopping. *)

type trap_reason =
  | Segfault of int64
  | Div_by_zero
  | Aborted
  | Elzar_fatal  (** recovery found no majority: detected but uncorrectable *)
  | Bad_callee of int64
  | Deadlock
  | Unreachable_executed
  | Hang  (** instruction budget exhausted *)

exception Trap of trap_reason

val string_of_trap : trap_reason -> string

type frame = {
  cf : Code.cfunc;
  regs : int64 array;
  ready : int array;  (** per-slot result-ready cycle, for the timing model *)
  mutable pc : int;
  ret_off : int;
  saved_sp : int64;
}

type status = Running | Waiting of int | Waiting_barrier of int64 | Done

(** Re-execution checkpoint of a thread's outermost hardened call:
    arguments, stack pointer, caller frames, program-output length and a
    memory undo log, enough to restart the call from scratch. *)
type ckpt = {
  ck_cf : Code.cfunc;
  ck_args : int64 array;
  ck_ret_off : int;
  ck_sp : int64;
  ck_caller : frame list;
  ck_out_len : int;
  mutable ck_frame : frame;
  mutable ck_log : (int64 * int * int64) list;  (** (addr, width, old value) *)
  mutable ck_log_len : int;
  mutable ck_valid : bool;
  mutable ck_tries : int;
}

type thread = {
  tid : int;
  mutable frames : frame list;
  timing : Timing.t;
  cache : Cache.t;
  bpred : Branch_pred.t;
  ctr : Counters.t;
  mutable status : status;
  mutable sp : int64;
  start_cycle : int;
  mutable final_cycle : int;
  mutable ck : ckpt option;
}

(** The transient-fault taxonomy.  [Reg_flip] is the paper's §IV-B model;
    the other three model exactly the faults §VII lists as out of scope
    for ELZAR's protection domain. *)
type fault_kind =
  | Reg_flip  (** flip bit(s) in the destination register (default) *)
  | Mem_flip
      (** flip one bit of a byte touched by the [at]-th hardened-code
          memory access, right after that access *)
  | Addr_flip
      (** flip one bit of the effective address of the [at]-th
          hardened-code load/store *)
  | Branch_flip
      (** divert the [at]-th hardened-code conditional branch to the
          wrong successor *)

val fault_kind_to_string : fault_kind -> string

(** One pre-drawn fault.  For [Reg_flip]: bit flip(s) in the destination
    register of the [at]-th injection-eligible dynamic instruction — one
    lane always, optionally a second (lane, bit) for multi-bit SEUs.  The
    other kinds draw [at] against their own deterministic site streams
    ([mem_sites] / [branch_sites] of a counting run) and ignore [lane]
    and [second]. *)
type inject = {
  at : int;
  lane : int;
  bit : int;
  second : (int * int) option;
  kind : fault_kind;
}

(** [second_flip ~dlanes ~lane ~bit ~lane2 ~bit2] is the (lane, bit) the
    second flip of a multi-bit SEU actually targets once the destination's
    lane count is known.  Guaranteed never to cancel the first flip
    [(lane mod dlanes, bit land 63)]: on a multi-lane destination the
    second lane is remapped to a distinct lane after the wrap; on a scalar
    destination (no second replica) it falls back to a distinct bit of the
    same word. *)
val second_flip :
  dlanes:int -> lane:int -> bit:int -> lane2:int -> bit2:int -> int * int

(** Execution engine selection.  [Closure] (the default) is the
    threaded-code tier: each instruction is translated once, at machine
    build, into a closure specialized on its operands and on the config's
    fault/trace/recovery hooks.  [Block] builds on it, additionally fusing
    each straight-line instruction run into a single superblock closure
    with bulk counter updates and a precompiled static timing plan; blocks
    whose instructions would carry compiled-in hooks (armed fault sites,
    site census, undo log, tracing, profiling) deoptimize to the
    per-instruction closures, and quanta still end at exactly the same
    instruction counts.  [Reference] is the original interpreter, kept as
    the executable specification; all engines are required to produce
    bit-identical results. *)
type engine_kind = Reference | Closure | Block

(** Lower-case name, as accepted by the CLI [--engine] flag. *)
val engine_to_string : engine_kind -> string

(** Raised out of {!resume}/{!run} when the [abort] hook reports
    cancellation at a quantum boundary.  Not a {!trap_reason}: an aborted
    run was cut short by the host (watchdog deadline, Ctrl-C), so it has
    no outcome and must never be classified — supervisors catch it and
    decide whether to retry or quarantine the experiment. *)
exception Abort

type config = {
  max_instrs : int;  (** exceeded -> Hang *)
  inject : inject option;
  count_inject_sites : bool;
  stack_size : int;  (** per-thread *)
  reexec_retries : int;
      (** re-execution recovery budget: >0 checkpoints each outermost
          hardened call so [elzar_reexec] can roll back and retry that
          many times before fail-stopping *)
  trace : Buffer.t option;
      (** per-instruction execution trace, capped at ~1 MB (the Intel SDE
          debugtrace analogue of §IV-B) *)
  engine : engine_kind;
  profile : Profile.t option;
      (** opt-in per-instruction-class cycle attribution, keyed by the
          same class strings the AVF table uses.  [Some tbl] compiles a
          cycle-delta hook into every closure; [None] (the default)
          compiles nothing — the closures are identical to an unprofiled
          build, so the off state costs zero.  Only the compiled engines
          attribute ([Block] disables fusion wholesale so every
          instruction keeps its hook); [Reference] ignores the table. *)
  abort : (unit -> bool) option;
      (** cancellation hook, polled once per scheduling quantum (the
          boundary [on_quantum] fires on); the first [true] raises
          {!Abort} out of the run.  Cheap by construction: callers pass a
          closure reading an atomic flag armed by an external watchdog,
          and the simulated results of a run that was never aborted are
          bit-identical to one executed without the hook. *)
  chaos : (unit -> unit) option;
      (** test-only chaos hook, invoked exactly once at the first quantum
          boundary, on the simulation thread.  Supervision tests use it
          to raise host exceptions, stall until [abort] fires, or sleep —
          exercising every supervisor path against the real engine.
          [None] outside tests. *)
}

val default_config : config

(** One fused superblock of the [Block] engine (opaque): a hook-free
    straight-line prefix plus optional trailing ender, run as one
    closure. *)
type fblock

type t = {
  code : Code.t;
  mem : Memory.t;
  mutable threads : thread list;
  mutable by_tid : thread array;  (** tid-indexed view of [threads] *)
  mutable kcode : (thread -> frame -> int) array array;
      (** closure-compiled code, by [cf_id] then pc; built on first resume *)
  mutable kblocks : fblock option array array;
      (** fused superblocks, by [cf_id] then starting pc ([Block] engine) *)
  mutable snap_base : Bytes.t;  (** base memory image of the snapshot chain *)
  mutable nthreads : int;
  output : Buffer.t;
  alloc_sizes : (int64, int) Hashtbl.t;
  cfg : config;
  mutable total_instrs : int;
  mutable inj_count : int;
  mutable mem_count : int;
  mutable br_count : int;
  mutable injected : bool;
  mutable recovered : int;
  mutable retried : int;
  mutable reexecs : int;
  mutable addr_mask : int64;
  mutable mem_flip_armed : bool;
  mutable cf_divert : bool;
  mutable inject_instr : int;
  mutable detect_instr : int;
  mutable inject_class : string;
}

type result = {
  wall_cycles : int;
  counters : Counters.t list;  (** one per thread, spawn order *)
  totals : Counters.t;
  output_digest : string;
  output_bytes : string;
  trap : trap_reason option;
  recovered_faults : int;  (** recovery-routine activations *)
  retried_faults : int;  (** recovery re-vote retries ([elzar_retried]) *)
  reexecutions : int;  (** re-execution rollbacks performed *)
  inject_sites : int;  (** injection-eligible instructions executed *)
  mem_sites : int;  (** hardened-code memory accesses (Mem/Addr stream) *)
  branch_sites : int;  (** hardened-code conditional branches (Cf stream) *)
  fault_injected : bool;
  inject_class : string option;
      (** instruction class at the injection site, for the AVF table *)
  detect_latency : int option;
      (** dynamic instructions between injection and the first recovery
          activation or trap; [None] if the fault was never detected *)
}

(** First value appearing at least twice among [n] lanes (the runtime
    recovery vote of gather/scatter; on a 2-2 split the lower pair wins).
    @raise Trap [Elzar_fatal] when all lanes are distinct. *)
val majority4 : n:int -> (int -> int64) -> int64

(** Compiles (a verified) module into a fresh machine with its own memory.
    [flags_cmp] selects the proposed FLAGS-setting comparison lowering for
    vector branches (future-AVX mode). *)
val create : ?cfg:config -> ?flags_cmp:bool -> Ir.Instr.modul -> t

(** Address of a named global, for host-side input preparation. *)
val global_addr : t -> string -> int64

(** Runs [entry] with scalar arguments until all threads finish (or a trap
    or the instruction budget ends the run); never raises.  [on_quantum]
    fires after every scheduling quantum (the snapshot-capture hook). *)
val run : ?args:int64 array -> ?on_quantum:(t -> unit) -> t -> string -> result

(** Drives an already-populated machine (e.g. one rebuilt by {!restore})
    to completion; same contract as {!run}. *)
val resume : ?on_quantum:(t -> unit) -> t -> result

(** Deep, self-contained copy of machine state at a quantum boundary of a
    fault-free run.  Memory is captured copy-on-write style: the first
    snapshot of a machine copies the image and starts cumulative
    dirty-page journaling; later ones store only the delta. *)
type snapshot

(** @raise Invalid_argument if a fault was already injected (snapshots
    must come from the fault-free prefix). *)
val snapshot : t -> snapshot

(** Fault-site counters consumed up to the snapshot:
    (register sites, memory sites, branch sites). *)
val snapshot_sites : snapshot -> int * int * int

(** Dynamic instructions executed up to the snapshot. *)
val snapshot_instrs : snapshot -> int

(** Rebuilds a runnable machine from a snapshot under [cfg] (typically a
    config arming an injection); continue it with {!resume}.  Site
    counters keep their snapshot values, so plans drawn against the full
    golden run stay valid.  [reuse] (default [false]) recycles a
    per-domain pooled memory: the previous [~reuse:true] machine restored
    on this domain from the same snapshot chain is destructively
    re-imaged (only its dirty pages are reverted) instead of copying the
    whole image again — the caller must be done with that machine, which
    is exactly the one-experiment-at-a-time pattern of campaigns. *)
val restore : ?cfg:config -> ?reuse:bool -> snapshot -> t

(** [create] + [run]. *)
val run_module :
  ?cfg:config -> ?flags_cmp:bool -> ?args:int64 array -> Ir.Instr.modul -> string -> result
