(** The simulated multicore machine: functional execution of compiled IR
    (bit-exact lane semantics) driving one {!Timing}/{!Cache}/{!Branch_pred}
    per core.  Threads map 1:1 onto cores; the scheduler always advances
    the thread whose core clock is furthest behind, so lock contention and
    join edges appear in wall-clock cycles.  Hosts the native builtins
    (unhardened OS/pthreads/IO, §IV-A) and the single-bit fault-injection
    hook (§IV-B). *)

type trap_reason =
  | Segfault of int64
  | Div_by_zero
  | Aborted
  | Elzar_fatal  (** recovery found no majority: detected but uncorrectable *)
  | Bad_callee of int64
  | Deadlock
  | Unreachable_executed
  | Hang  (** instruction budget exhausted *)

exception Trap of trap_reason

val string_of_trap : trap_reason -> string

type frame = {
  cf : Code.cfunc;
  regs : int64 array;
  ready : int array;  (** per-slot result-ready cycle, for the timing model *)
  mutable pc : int;
  ret_off : int;
  saved_sp : int64;
}

type status = Running | Waiting of int | Waiting_barrier of int64 | Done

type thread = {
  tid : int;
  mutable frames : frame list;
  timing : Timing.t;
  cache : Cache.t;
  bpred : Branch_pred.t;
  ctr : Counters.t;
  mutable status : status;
  mutable sp : int64;
  start_cycle : int;
  mutable final_cycle : int;
}

(** Bit flip(s) in the destination register of the [at]-th
    injection-eligible dynamic instruction: one lane always, optionally a
    second (lane, bit) for multi-bit SEUs. *)
type inject = {
  at : int;
  lane : int;
  bit : int;
  second : (int * int) option;
}

(** [second_flip ~dlanes ~lane ~bit ~lane2 ~bit2] is the (lane, bit) the
    second flip of a multi-bit SEU actually targets once the destination's
    lane count is known.  Guaranteed never to cancel the first flip
    [(lane mod dlanes, bit land 63)]: on a multi-lane destination the
    second lane is remapped to a distinct lane after the wrap; on a scalar
    destination (no second replica) it falls back to a distinct bit of the
    same word. *)
val second_flip :
  dlanes:int -> lane:int -> bit:int -> lane2:int -> bit2:int -> int * int

type config = {
  max_instrs : int;  (** exceeded -> Hang *)
  inject : inject option;
  count_inject_sites : bool;
  stack_size : int;  (** per-thread *)
  trace : Buffer.t option;
      (** per-instruction execution trace, capped at ~1 MB (the Intel SDE
          debugtrace analogue of §IV-B) *)
}

val default_config : config

type t = {
  code : Code.t;
  mem : Memory.t;
  mutable threads : thread list;
  mutable nthreads : int;
  output : Buffer.t;
  alloc_sizes : (int64, int) Hashtbl.t;
  cfg : config;
  mutable total_instrs : int;
  mutable inj_count : int;
  mutable injected : bool;
  mutable recovered : int;
}

type result = {
  wall_cycles : int;
  counters : Counters.t list;  (** one per thread, spawn order *)
  totals : Counters.t;
  output_digest : string;
  output_bytes : string;
  trap : trap_reason option;
  recovered_faults : int;  (** recovery-routine activations *)
  inject_sites : int;  (** injection-eligible instructions executed *)
  fault_injected : bool;
}

(** Compiles (a verified) module into a fresh machine with its own memory.
    [flags_cmp] selects the proposed FLAGS-setting comparison lowering for
    vector branches (future-AVX mode). *)
val create : ?cfg:config -> ?flags_cmp:bool -> Ir.Instr.modul -> t

(** Address of a named global, for host-side input preparation. *)
val global_addr : t -> string -> int64

(** Runs [entry] with scalar arguments until all threads finish (or a trap
    or the instruction budget ends the run); never raises. *)
val run : ?args:int64 array -> t -> string -> result

(** [create] + [run]. *)
val run_module :
  ?cfg:config -> ?flags_cmp:bool -> ?args:int64 array -> Ir.Instr.modul -> string -> result
