(** The simulated multicore machine.

    Executes compiled code functionally (bit-exact lane semantics from
    {!Value}) while driving one {!Timing} engine, {!Cache} and
    {!Branch_pred} per core.  Threads map 1:1 onto cores, as in the paper's
    testbed; the scheduler always advances the thread whose core clock is
    furthest behind, which makes lock contention and join edges show up in
    wall-clock cycles.  Also hosts the native builtins (OS/pthreads/IO —
    unhardened, §IV-A) and the single-bit fault-injection hook (§IV-B). *)

type trap_reason =
  | Segfault of int64
  | Div_by_zero
  | Aborted
  | Elzar_fatal  (** recovery found no majority: detected but uncorrectable *)
  | Bad_callee of int64
  | Deadlock
  | Unreachable_executed
  | Hang  (** instruction budget exhausted *)

exception Trap of trap_reason

let string_of_trap = function
  | Segfault a -> Printf.sprintf "segfault at 0x%Lx" a
  | Div_by_zero -> "division by zero"
  | Aborted -> "abort() called"
  | Elzar_fatal -> "elzar: uncorrectable fault (no majority)"
  | Bad_callee a -> Printf.sprintf "indirect call to 0x%Lx" a
  | Deadlock -> "deadlock"
  | Unreachable_executed -> "unreachable executed"
  | Hang -> "instruction budget exhausted"

type frame = {
  cf : Code.cfunc;
  regs : int64 array;
  ready : int array;
  mutable pc : int;
  ret_off : int;  (** slot in the caller frame for the return value; -1 *)
  saved_sp : int64;
}

type status = Running | Waiting of int | Waiting_barrier of int64 | Done

(* Re-execution checkpoint: everything needed to restart the outermost
   hardened call of a thread from scratch (RepTFD-style replay recovery).
   The undo log records (address, width, old value) for every simulated
   store the thread performs while the checkpoint is live; rollback
   replays it newest-first.  Builtins with externally visible effects
   (locks, spawns, allocation) invalidate the checkpoint instead. *)
type ckpt = {
  ck_cf : Code.cfunc;
  ck_args : int64 array;  (** scalar arguments as passed at the call *)
  ck_ret_off : int;
  ck_sp : int64;
  ck_caller : frame list;  (** the frames below the checkpointed one *)
  ck_out_len : int;  (** program-output length at checkpoint time *)
  mutable ck_frame : frame;  (** the live checkpointed frame (physical identity) *)
  mutable ck_log : (int64 * int * int64) list;
  mutable ck_log_len : int;
  mutable ck_valid : bool;
  mutable ck_tries : int;  (** rollbacks consumed *)
}

(* Undo-log length bound; a hardened call writing more than this simply
   loses re-execution coverage (the checkpoint is invalidated). *)
let ck_log_cap = 200_000

type thread = {
  tid : int;
  mutable frames : frame list;
  timing : Timing.t;
  cache : Cache.t;
  bpred : Branch_pred.t;
  ctr : Counters.t;
  mutable status : status;
  mutable sp : int64;
  start_cycle : int;
  mutable final_cycle : int;
  mutable ck : ckpt option;
}

(* The transient-fault taxonomy (§VII discusses exactly the non-register
   faults the paper's campaign does not model): register SEUs (the paper's
   §IV-B model), bit-flips in simulated memory, effective-address faults on
   loads/stores, and control-flow faults diverting a conditional branch. *)
type fault_kind =
  | Reg_flip  (** flip bit(s) in the destination register (default) *)
  | Mem_flip
      (** flip one bit of a byte touched by the [at]-th memory access,
          right after that access (visible to the at+1-th access of it) *)
  | Addr_flip  (** flip one bit of the [at]-th load/store's effective address *)
  | Branch_flip  (** divert the [at]-th conditional branch to the wrong successor *)

let fault_kind_to_string = function
  | Reg_flip -> "reg"
  | Mem_flip -> "mem"
  | Addr_flip -> "addr"
  | Branch_flip -> "cf"

type inject = {
  at : int;
  lane : int;
  bit : int;
  second : (int * int) option;  (** optional second (lane, bit) flip in the
                                    same destination — multi-bit SEU *)
  kind : fault_kind;
}

(* Resolves the second flip of a multi-bit SEU against the destination's
   actual lane count.  The raw (lane2, bit2) pair is drawn before the
   injection site (and hence its [dlanes]) is known; after the [mod dlanes]
   wrap it could land on the first flip's lane and silently cancel it,
   turning the experiment into a fault-free run.  Guarantees the returned
   flip never cancels the first: on a multi-lane destination the second
   lane is remapped to a distinct lane; on a scalar destination (a single
   lane, i.e. no second replica to corrupt) it falls back to a distinct
   bit of the same word. *)
let second_flip ~(dlanes : int) ~(lane : int) ~(bit : int) ~(lane2 : int) ~(bit2 : int) :
    int * int =
  let dlanes = max dlanes 1 in
  let l1 = lane mod dlanes in
  let l2 = lane2 mod dlanes in
  let b1 = bit land 63 and b2 = bit2 land 63 in
  if dlanes = 1 then (0, if b2 = b1 then (b1 + 1) land 63 else b2)
  else if l2 = l1 then ((l1 + 1 + (lane2 mod (dlanes - 1))) mod dlanes, b2)
  else (l2, b2)

type config = {
  max_instrs : int;
  inject : inject option;
  count_inject_sites : bool;
  stack_size : int;
  reexec_retries : int;
      (** re-execution recovery budget: >0 checkpoints each outermost
          hardened call (registers, stack pointer, a memory undo log) so
          the [elzar_reexec] runtime marker can roll the thread back and
          retry the whole call that many times before fail-stopping *)
  trace : Buffer.t option;
      (** per-instruction execution trace (requires [debug] compilation);
          capped at ~1 MB — the Intel SDE debugtrace analogue of §IV-B *)
}

let default_config =
  {
    max_instrs = 400_000_000;
    inject = None;
    count_inject_sites = false;
    stack_size = 1 lsl 17;
    reexec_retries = 0;
    trace = None;
  }

type t = {
  code : Code.t;
  mem : Memory.t;
  mutable threads : thread list;  (** reverse spawn order *)
  mutable nthreads : int;
  output : Buffer.t;
  alloc_sizes : (int64, int) Hashtbl.t;
  cfg : config;
  mutable total_instrs : int;
  mutable inj_count : int;  (** injection-eligible instructions executed *)
  mutable mem_count : int;  (** hardened-code memory accesses executed *)
  mutable br_count : int;  (** hardened-code conditional branches executed *)
  mutable injected : bool;
  mutable recovered : int;  (** recovery-routine activations *)
  mutable retried : int;  (** recovery re-vote retries *)
  mutable reexecs : int;  (** re-execution rollbacks performed *)
  mutable addr_mask : int64;  (** armed address-fault XOR mask; 0 = disarmed *)
  mutable mem_flip_armed : bool;
  mutable cf_divert : bool;
  mutable inject_instr : int;  (** [total_instrs] at injection time; -1 *)
  mutable detect_instr : int;  (** [total_instrs] at first recovery/trap; -1 *)
  mutable inject_class : string;  (** instruction class at the injection site *)
}

type result = {
  wall_cycles : int;
  counters : Counters.t list;  (** one per thread, spawn order *)
  totals : Counters.t;
  output_digest : string;
  output_bytes : string;
  trap : trap_reason option;
  recovered_faults : int;
  retried_faults : int;
  reexecutions : int;
  inject_sites : int;
  mem_sites : int;
  branch_sites : int;
  fault_injected : bool;
  inject_class : string option;
  detect_latency : int option;
      (** dynamic instructions between injection and the first recovery
          activation or trap; [None] if never detected *)
}

let create ?(cfg = default_config) ?(flags_cmp = false) (m : Ir.Instr.modul) : t =
  let mem = Memory.create () in
  let code = Code.compile ~debug:(cfg.trace <> None) ~flags_cmp m mem in
  {
    code;
    mem;
    threads = [];
    nthreads = 0;
    output = Buffer.create 256;
    alloc_sizes = Hashtbl.create 64;
    cfg;
    total_instrs = 0;
    inj_count = 0;
    mem_count = 0;
    br_count = 0;
    injected = false;
    recovered = 0;
    retried = 0;
    reexecs = 0;
    addr_mask = 0L;
    mem_flip_armed = false;
    cf_divert = false;
    inject_instr = -1;
    detect_instr = -1;
    inject_class = "";
  }

(* Address of a named global, for host-side input preparation (the moral
   equivalent of the benchmark reading its input file — unhardened I/O that
   costs no simulated cycles). *)
let global_addr (m : t) name =
  match Hashtbl.find_opt m.code.Code.globals name with
  | Some a -> a
  | None -> invalid_arg ("Machine.global_addr: unknown global " ^ name)

(* ---- operand access ---- *)

let get_lane (regs : int64 array) (o : Code.rop) (j : int) : int64 =
  match o with
  | Code.Oslot (off, lanes) -> regs.(off + if lanes = 1 then 0 else j mod lanes)
  | Code.Oconst a -> a.(if Array.length a = 1 then 0 else j mod Array.length a)

let get_scalar (regs : int64 array) (o : Code.rop) : int64 =
  match o with Code.Oslot (off, _) -> regs.(off) | Code.Oconst a -> a.(0)

(* ---- threads ---- *)

let new_frame (cf : Code.cfunc) ~ret_off ~sp : frame =
  {
    cf;
    regs = Array.make (max cf.Code.nslots 1) 0L;
    ready = Array.make (max cf.Code.nslots 1) 0;
    pc = 0;
    ret_off;
    saved_sp = sp;
  }

let spawn_thread (m : t) (cf : Code.cfunc) (args : int64 array) ~(start_cycle : int) : thread =
  let stack_base = Memory.alloc_stack m.mem m.cfg.stack_size in
  let sp = Int64.add stack_base (Int64.of_int m.cfg.stack_size) in
  let fr = new_frame cf ~ret_off:(-1) ~sp in
  Array.iteri
    (fun i v ->
      if i < Array.length cf.Code.param_offs then begin
        let off, lanes = cf.Code.param_offs.(i) in
        for j = 0 to lanes - 1 do
          fr.regs.(off + j) <- v
        done
      end)
    args;
  let timing = Timing.create () in
  Timing.sync_to timing start_cycle;
  let th =
    {
      tid = m.nthreads;
      frames = [ fr ];
      timing;
      cache = Cache.create ();
      bpred = Branch_pred.create ();
      ctr = Counters.create ();
      status = Running;
      sp;
      start_cycle;
      final_cycle = 0;
      ck = None;
    }
  in
  if m.cfg.reexec_retries > 0 && cf.Code.cf_hardened then
    th.ck <-
      Some
        {
          ck_cf = cf;
          ck_args = Array.copy args;
          ck_ret_off = -1;
          ck_sp = sp;
          ck_caller = [];
          ck_out_len = Buffer.length m.output;
          ck_frame = fr;
          ck_log = [];
          ck_log_len = 0;
          ck_valid = true;
          ck_tries = 0;
        };
  m.threads <- th :: m.threads;
  m.nthreads <- m.nthreads + 1;
  th

let wake_joiners (m : t) (finished : thread) =
  List.iter
    (fun th ->
      match th.status with
      | Waiting tid when tid = finished.tid ->
          th.status <- Running;
          Timing.sync_to th.timing finished.final_cycle
      | _ -> ())
    m.threads

let finish_thread (m : t) (th : thread) =
  th.status <- Done;
  th.final_cycle <- Timing.cycle th.timing;
  (* busy span, for per-core IPC (Table III) *)
  th.ctr.Counters.cycles <- th.final_cycle - th.start_cycle;
  wake_joiners m th

let find_thread (m : t) tid = List.find_opt (fun th -> th.tid = tid) m.threads

(* ---- fault bookkeeping ---- *)

let mark_injected (m : t) (cls : string) =
  if not m.injected then begin
    m.injected <- true;
    m.inject_instr <- m.total_instrs;
    m.inject_class <- cls
  end

(* First point where the machine *reacted* to the injected fault — a
   recovery-routine activation, a retry, a rollback, or a trap. *)
let note_detect (m : t) =
  if m.injected && m.detect_instr < 0 then m.detect_instr <- m.total_instrs

let note_recovered (m : t) =
  m.recovered <- m.recovered + 1;
  note_detect m

(* ---- re-execution checkpoints ---- *)

let ck_invalidate (th : thread) =
  match th.ck with Some ck -> ck.ck_valid <- false | None -> ()

(* Program output is a single shared buffer: rollback truncates it to the
   checkpointed length, which is only sound if no *other* thread appended
   since.  Output from any thread therefore invalidates everyone else's
   checkpoint. *)
let ck_invalidate_others (m : t) (th : thread) =
  List.iter (fun o -> if o.tid <> th.tid then ck_invalidate o) m.threads

let ck_log_write (m : t) (th : thread) ~(width : int) (addr : int64) =
  match th.ck with
  | Some ck when ck.ck_valid ->
      if ck.ck_log_len >= ck_log_cap then ck.ck_valid <- false
      else begin
        ck.ck_log <- (addr, width, Memory.read m.mem ~width addr) :: ck.ck_log;
        ck.ck_log_len <- ck.ck_log_len + 1
      end
  | _ -> ()

(* Fixed rollback cost: restoring registers and replaying the undo log is
   the moral equivalent of a signal-handler round trip. *)
let reexec_cycles = 400

(* Rolls [th] back to its checkpoint: undoes logged stores newest-first
   (so the oldest value of a twice-written cell wins), truncates this
   thread's program output, and reinstalls a fresh frame with the original
   arguments.  The one-shot injection already fired (its site counter was
   consumed), so the re-execution is fault-free.  Returns [false] when no
   valid checkpoint or no retry budget remains. *)
let reexec_rollback (m : t) (th : thread) : bool =
  match th.ck with
  | Some ck when ck.ck_valid && ck.ck_tries < m.cfg.reexec_retries ->
      ck.ck_tries <- ck.ck_tries + 1;
      m.reexecs <- m.reexecs + 1;
      note_detect m;
      List.iter (fun (addr, w, v) -> Memory.write m.mem ~width:w addr v) ck.ck_log;
      ck.ck_log <- [];
      ck.ck_log_len <- 0;
      if Buffer.length m.output > ck.ck_out_len then Buffer.truncate m.output ck.ck_out_len;
      th.sp <- ck.ck_sp;
      let nf = new_frame ck.ck_cf ~ret_off:ck.ck_ret_off ~sp:ck.ck_sp in
      Array.iteri
        (fun i v ->
          if i < Array.length ck.ck_cf.Code.param_offs then begin
            let off, lanes = ck.ck_cf.Code.param_offs.(i) in
            for j = 0 to lanes - 1 do
              nf.regs.(off + j) <- v
            done
          end)
        ck.ck_args;
      ck.ck_frame <- nf;
      th.frames <- nf :: ck.ck_caller;
      Timing.advance th.timing reexec_cycles;
      true
  | _ -> false

(* ---- builtins ---- *)

type baction = Bdone | Bretry | Bblock of int | Bbarrier of int64 | Breexec

let exec_builtin (m : t) (th : thread) (fr : frame) (id : int) (args : int64 array)
    (dst : int) (dlanes : int) : baction =
  let spec = Builtins.get id in
  let retv = ref 0L in
  let action = ref Bdone in
  (* Checkpoint discipline: builtins with externally visible effects end
     re-execution coverage.  Output only invalidates *other* threads'
     checkpoints (own output is rolled back by truncation); rand64's state
     write is undo-logged like a normal store. *)
  (match spec.Builtins.name with
  | "thread_id" | "elzar_fatal" | "elzar_recovered" | "elzar_retried" | "elzar_reexec" -> ()
  | "output_i64" | "output_f64" | "output_bytes" -> ck_invalidate_others m th
  | "rand64" -> ()
  | _ -> ck_invalidate th);
  (match spec.Builtins.name with
  | "malloc" ->
      let size = Int64.to_int args.(0) in
      let p = Memory.malloc m.mem size in
      Hashtbl.replace m.alloc_sizes p size;
      retv := p
  | "free" -> (
      match Hashtbl.find_opt m.alloc_sizes args.(0) with
      | Some size ->
          Hashtbl.remove m.alloc_sizes args.(0);
          Memory.free m.mem args.(0) size
      | None -> raise (Trap (Segfault args.(0))))
  | "spawn" ->
      let f = args.(0) in
      let fid = Int64.to_int (Int64.sub f Code.fnptr_base) in
      if f < Code.fnptr_base || fid >= Array.length m.code.Code.cfuncs then
        raise (Trap (Bad_callee f));
      let child =
        spawn_thread m m.code.Code.cfuncs.(fid) [| args.(1) |]
          ~start_cycle:(Timing.cycle th.timing)
      in
      retv := Int64.of_int child.tid
  | "join" -> (
      let tid = Int64.to_int args.(0) in
      match find_thread m tid with
      | Some target when target.status = Done -> Timing.sync_to th.timing target.final_cycle
      | Some _ -> action := Bblock tid
      | None -> raise (Trap (Bad_callee args.(0))))
  | "lock" ->
      let v = Memory.read m.mem ~width:8 args.(0) in
      if v = 0L then Memory.write m.mem ~width:8 args.(0) 1L
      else begin
        (* spin: burn cycles and retry on the next scheduling round *)
        Timing.advance th.timing 60;
        action := Bretry
      end
  | "unlock" -> Memory.write m.mem ~width:8 args.(0) 0L
  | "barrier" ->
      (* pthread_barrier_wait: the cell holds the arrival count; the last
         arriver resets it and releases everyone at its clock *)
      let addr = args.(0) and n = args.(1) in
      let count = Int64.add (Memory.read m.mem ~width:8 addr) 1L in
      if count >= n then begin
        Memory.write m.mem ~width:8 addr 0L;
        let now = Timing.cycle th.timing in
        List.iter
          (fun other ->
            match other.status with
            | Waiting_barrier a when a = addr ->
                other.status <- Running;
                Timing.sync_to other.timing now
            | _ -> ())
          m.threads
      end
      else begin
        Memory.write m.mem ~width:8 addr count;
        action := Bbarrier addr
      end
  | "output_i64" | "output_f64" ->
      Buffer.add_int64_le m.output args.(0)
  | "output_bytes" ->
      let p = args.(0) and len = Int64.to_int args.(1) in
      Memory.check m.mem p (max len 1);
      Buffer.add_subbytes m.output m.mem.Memory.data (Int64.to_int p) len
  | "rand64" ->
      (* xorshift64* over a state cell in simulated memory *)
      let s = Memory.read m.mem ~width:8 args.(0) in
      let s = if s = 0L then 0x9E3779B97F4A7C15L else s in
      let s = Int64.logxor s (Int64.shift_left s 13) in
      let s = Int64.logxor s (Int64.shift_right_logical s 7) in
      let s = Int64.logxor s (Int64.shift_left s 17) in
      ck_log_write m th ~width:8 args.(0);
      Memory.write m.mem ~width:8 args.(0) s;
      retv := Int64.mul s 0x2545F4914F6CDD1DL
  | "abort" -> raise (Trap Aborted)
  | "elzar_fatal" -> raise (Trap Elzar_fatal)
  | "elzar_recovered" -> note_recovered m
  | "elzar_retried" ->
      m.retried <- m.retried + 1;
      note_detect m
  | "elzar_reexec" -> action := Breexec
  | "thread_id" -> retv := Int64.of_int th.tid
  | other -> failwith ("Machine.exec_builtin: unhandled builtin " ^ other));
  if !action = Bdone then begin
    Timing.advance th.timing spec.Builtins.cycles;
    if dst >= 0 then
      for j = 0 to dlanes - 1 do
        fr.regs.(dst + j) <- !retv;
        fr.ready.(dst + j) <- Timing.cycle th.timing
      done
  end;
  !action

(* ---- interpreter ---- *)

let majority4 ~(n : int) (get : int -> int64) : int64 =
  (* value appearing at least twice among n lanes; raises if none *)
  let rec pick i =
    if i >= n then raise (Trap Elzar_fatal)
    else begin
      let v = get i in
      let count = ref 0 in
      for j = 0 to n - 1 do
        if get j = v then incr count
      done;
      if !count >= 2 || n = 1 then v else pick (i + 1)
    end
  in
  pick 0

(* Instruction class of an injection site, for the AVF-style per-class
   vulnerability table. *)
let class_of (op : Code.rinstr) : string =
  match op with
  | Code.Rbinop _ -> "alu"
  | Code.Ricmp _ -> "cmp"
  | Code.Rselect _ -> "select"
  | Code.Rcast _ -> "cast"
  | Code.Rmov _ -> "mov"
  | Code.Rload _ | Code.Rvload _ | Code.Rgather _ -> "load"
  | Code.Rstore _ | Code.Rvstore _ | Code.Rscatter _ -> "store"
  | Code.Ralloca _ -> "alloca"
  | Code.Rcall _ | Code.Rcall_ind _ -> "call"
  | Code.Ratomic _ | Code.Rcmpxchg _ -> "atomic"
  | Code.Rextract _ | Code.Rinsert _ | Code.Rbroadcast _ | Code.Rshuffle _
  | Code.Rptestz _ ->
      "vec"
  | Code.Tret _ | Code.Tbr _ | Code.Tcondbr _ | Code.Tvbr _ | Code.Tvbr_u _
  | Code.Tunreachable ->
      "branch"

(* Executes one instruction of [th]; returns [false] when the thread left
   the Running state or terminated. *)
let step (m : t) (th : thread) : bool =
  let fr = List.hd th.frames in
  let it = fr.cf.Code.code.(fr.pc) in
  (match m.cfg.trace with
  | Some buf when Buffer.length buf < 1_000_000 && Array.length fr.cf.Code.texts > fr.pc ->
      Buffer.add_string buf
        (Printf.sprintf "T%d %c@%s+%d: %s\n" th.tid
           (if fr.cf.Code.cf_hardened then 'H' else '.')
           fr.cf.Code.cf_name fr.pc fr.cf.Code.texts.(fr.pc))
  | _ -> ());
  m.total_instrs <- m.total_instrs + 1;
  if m.total_instrs > m.cfg.max_instrs then raise (Trap Hang);
  let ctr = th.ctr in
  ctr.Counters.instrs <- ctr.Counters.instrs + 1;
  ctr.Counters.uops <- ctr.Counters.uops + Array.length it.Code.uops;
  let fl = it.Code.flags in
  if fl land Code.fl_avx <> 0 then ctr.Counters.avx_instrs <- ctr.Counters.avx_instrs + 1;
  if fl land Code.fl_load <> 0 then ctr.Counters.loads <- ctr.Counters.loads + 1;
  if fl land Code.fl_store <> 0 then ctr.Counters.stores <- ctr.Counters.stores + 1;
  if fl land Code.fl_branch <> 0 then ctr.Counters.branches <- ctr.Counters.branches + 1;
  (* Non-register fault streams: memory accesses and conditional branches
     inside hardened code each form their own deterministic site counter;
     arming happens *before* the instruction executes so the fault applies
     to this very access/branch. *)
  let is_mem_site =
    fr.cf.Code.cf_hardened && fl land (Code.fl_load lor Code.fl_store) <> 0
  in
  let is_br_site =
    fr.cf.Code.cf_hardened
    && match it.Code.op with Code.Tcondbr _ | Code.Tvbr _ | Code.Tvbr_u _ -> true | _ -> false
  in
  (match m.cfg.inject with
  | Some inj -> (
      match inj.kind with
      | Reg_flip -> ()
      | Mem_flip | Addr_flip ->
          if is_mem_site then begin
            m.mem_count <- m.mem_count + 1;
            if m.mem_count = inj.at then
              if inj.kind = Addr_flip then
                m.addr_mask <- Int64.shift_left 1L (inj.bit land 63)
              else m.mem_flip_armed <- true
          end
      | Branch_flip ->
          if is_br_site then begin
            m.br_count <- m.br_count + 1;
            if m.br_count = inj.at then m.cf_divert <- true
          end)
  | None ->
      if m.cfg.count_inject_sites then begin
        if is_mem_site then m.mem_count <- m.mem_count + 1;
        if is_br_site then m.br_count <- m.br_count + 1
      end);
  (* input readiness *)
  let ready = ref 0 in
  Array.iter
    (fun s ->
      if fr.ready.(s) > !ready then ready := fr.ready.(s))
    it.Code.srcs;
  let regs = fr.regs in
  let mem_lat = ref 0 in
  let touch addr width =
    let lat = Cache.access th.cache addr in
    ctr.Counters.l1_refs <- ctr.Counters.l1_refs + 1;
    if lat > Cache.hit_latency then ctr.Counters.l1_misses <- ctr.Counters.l1_misses + 1;
    if lat > !mem_lat then mem_lat := lat;
    (* Armed memory fault: flip one bit of a byte this access touched,
       right after the access — the at+1-th access of the location sees
       the corruption.  Deliberately NOT undo-logged: memory corruption
       persists across re-execution rollback (ELZAR leaves memory to ECC,
       §III-A), so [Reexec] cannot mask it away. *)
    if m.mem_flip_armed then begin
      m.mem_flip_armed <- false;
      match m.cfg.inject with
      | Some inj -> (
          let a = Int64.add addr (Int64.of_int (inj.bit lsr 3 mod max width 1)) in
          try
            let b = Memory.read m.mem ~width:1 a in
            Memory.write m.mem ~width:1 a
              (Int64.logxor b (Int64.of_int (1 lsl (inj.bit land 7))));
            mark_injected m (class_of it.Code.op)
          with Memory.Fault _ -> ())
      | None -> ()
    end
  in
  (* Armed address fault: XOR one bit into the effective address of this
     (the [at]-th) load/store. *)
  let fix_addr (a : int64) : int64 =
    if m.addr_mask = 0L then a
    else begin
      let a' = Int64.logxor a m.addr_mask in
      m.addr_mask <- 0L;
      mark_injected m (class_of it.Code.op);
      a'
    end
  in
  let continue_ = ref true in
  let next_pc = ref (fr.pc + 1) in
  let branch_info = ref None in
  (* (taken, always_mispredict) *)
  (match it.Code.op with
  | Code.Rbinop (d, n, f, a, b) -> (
      try
        for j = 0 to n - 1 do
          regs.(d + j) <- f (get_lane regs a j) (get_lane regs b j)
        done
      with Value.Division_by_zero -> raise (Trap Div_by_zero))
  | Code.Ricmp (d, n, p, tmask, a, b) ->
      for j = 0 to n - 1 do
        regs.(d + j) <- (if p (get_lane regs a j) (get_lane regs b j) then tmask else 0L)
      done
  | Code.Rselect (d, n, c, a, b) ->
      for j = 0 to n - 1 do
        regs.(d + j) <- (if get_lane regs c j <> 0L then get_lane regs a j else get_lane regs b j)
      done
  | Code.Rcast (d, n, f, a) ->
      for j = 0 to n - 1 do
        regs.(d + j) <- f (get_lane regs a j)
      done
  | Code.Rmov (d, n, a) ->
      for j = 0 to n - 1 do
        regs.(d + j) <- get_lane regs a j
      done
  | Code.Rload (d, w, a) -> (
      let addr = fix_addr (get_scalar regs a) in
      try
        regs.(d) <- Memory.read m.mem ~width:w addr;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Rvload (d, n, w, a) -> (
      let addr = fix_addr (get_scalar regs a) in
      try
        for j = 0 to n - 1 do
          regs.(d + j) <-
            Memory.read m.mem ~width:w (Int64.add addr (Int64.of_int (j * w)))
        done;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Rstore (w, v, a) -> (
      let addr = fix_addr (get_scalar regs a) in
      try
        ck_log_write m th ~width:w addr;
        Memory.write m.mem ~width:w addr (get_scalar regs v);
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Rvstore (n, w, v, a) -> (
      let addr = fix_addr (get_scalar regs a) in
      try
        for j = 0 to n - 1 do
          let aj = Int64.add addr (Int64.of_int (j * w)) in
          ck_log_write m th ~width:w aj;
          Memory.write m.mem ~width:w aj (get_lane regs v j)
        done;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Ralloca (d, size) ->
      th.sp <- Int64.sub th.sp (Int64.of_int (Memory.align16 size));
      regs.(d) <- th.sp
  | Code.Rcall (callee, argops, dst, dlanes) -> (
      let args = Array.map (fun o -> get_scalar regs o) argops in
      match callee with
      | Code.Direct fid ->
          let cf = m.code.Code.cfuncs.(fid) in
          let completion = Timing.exec th.timing ~ready:!ready ~mem_lat:4 it.Code.uops in
          let nf = new_frame cf ~ret_off:dst ~sp:th.sp in
          Array.iteri
            (fun i v ->
              let off, lanes = cf.Code.param_offs.(i) in
              for j = 0 to lanes - 1 do
                nf.regs.(off + j) <- v
              done;
              nf.ready.(off) <- completion)
            args;
          fr.pc <- fr.pc + 1 (* resume after the call on return *);
          (* arm a re-execution checkpoint at the outermost hardened call *)
          if m.cfg.reexec_retries > 0 && cf.Code.cf_hardened && th.ck = None then
            th.ck <-
              Some
                {
                  ck_cf = cf;
                  ck_args = args;
                  ck_ret_off = dst;
                  ck_sp = th.sp;
                  ck_caller = th.frames;
                  ck_out_len = Buffer.length m.output;
                  ck_frame = nf;
                  ck_log = [];
                  ck_log_len = 0;
                  ck_valid = true;
                  ck_tries = 0;
                };
          th.frames <- nf :: th.frames;
          next_pc := -1
      | Code.Builtin id -> (
          match exec_builtin m th fr id args dst dlanes with
          | Bdone -> ()
          | Bretry ->
              next_pc := fr.pc;
              continue_ := false
          | Bblock tid ->
              th.status <- Waiting tid;
              next_pc := fr.pc + 1;
              continue_ := false
          | Bbarrier addr ->
              th.status <- Waiting_barrier addr;
              next_pc := fr.pc + 1;
              continue_ := false
          | Breexec ->
              (* no-majority vote fell through every re-vote retry: roll
                 the thread back to its checkpoint, or fail-stop *)
              if reexec_rollback m th then next_pc := -1
              else raise (Trap Elzar_fatal)))
  | Code.Rcall_ind (fp, argops, dst, dlanes) ->
      let f = get_scalar regs fp in
      let fid = Int64.to_int (Int64.sub f Code.fnptr_base) in
      if f < Code.fnptr_base || fid >= Array.length m.code.Code.cfuncs then
        raise (Trap (Bad_callee f));
      let args = Array.map (fun o -> get_scalar regs o) argops in
      let cf = m.code.Code.cfuncs.(fid) in
      let completion = Timing.exec th.timing ~ready:!ready ~mem_lat:4 it.Code.uops in
      let nf = new_frame cf ~ret_off:dst ~sp:th.sp in
      Array.iteri
        (fun i v ->
          let off, lanes = cf.Code.param_offs.(i) in
          for j = 0 to lanes - 1 do
            nf.regs.(off + j) <- v
          done;
          nf.ready.(off) <- completion)
        args;
      ignore dlanes;
      fr.pc <- fr.pc + 1 (* resume after the call on return *);
      if m.cfg.reexec_retries > 0 && cf.Code.cf_hardened && th.ck = None then
        th.ck <-
          Some
            {
              ck_cf = cf;
              ck_args = args;
              ck_ret_off = dst;
              ck_sp = th.sp;
              ck_caller = th.frames;
              ck_out_len = Buffer.length m.output;
              ck_frame = nf;
              ck_log = [];
              ck_log_len = 0;
              ck_valid = true;
              ck_tries = 0;
            };
      th.frames <- nf :: th.frames;
      next_pc := -1
  | Code.Ratomic (op, d, a, x, w) -> (
      let addr = fix_addr (get_scalar regs a) in
      try
        let old = Memory.read m.mem ~width:w addr in
        let v = get_scalar regs x in
        let nv =
          match op with
          | Ir.Instr.Rmw_add -> Int64.add old v
          | Ir.Instr.Rmw_sub -> Int64.sub old v
          | Ir.Instr.Rmw_xchg -> v
          | Ir.Instr.Rmw_and -> Int64.logand old v
          | Ir.Instr.Rmw_or -> Int64.logor old v
        in
        ck_log_write m th ~width:w addr;
        Memory.write m.mem ~width:w addr (Value.mask_of_width (w * 8) |> Int64.logand nv);
        regs.(d) <- old;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Rcmpxchg (d, a, e, dv, w) -> (
      let addr = fix_addr (get_scalar regs a) in
      try
        let old = Memory.read m.mem ~width:w addr in
        if old = get_scalar regs e then begin
          ck_log_write m th ~width:w addr;
          Memory.write m.mem ~width:w addr (get_scalar regs dv)
        end;
        regs.(d) <- old;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Rextract (d, v, l) -> regs.(d) <- get_lane regs v l
  | Code.Rinsert (d, n, v, l, s) ->
      for j = 0 to n - 1 do
        regs.(d + j) <- (if j = l then get_scalar regs s else get_lane regs v j)
      done
  | Code.Rbroadcast (d, n, s) ->
      let x = get_scalar regs s in
      for j = 0 to n - 1 do
        regs.(d + j) <- x
      done
  | Code.Rshuffle (d, n, v, perm) ->
      let tmp = Array.init n (fun j -> get_lane regs v j) in
      for j = 0 to n - 1 do
        regs.(d + j) <- tmp.(perm.(j))
      done
  | Code.Rptestz (d, v) ->
      let all_zero = ref true in
      (match v with
      | Code.Oslot (off, lanes) ->
          for j = 0 to lanes - 1 do
            if regs.(off + j) <> 0L then all_zero := false
          done
      | Code.Oconst a -> Array.iter (fun x -> if x <> 0L then all_zero := false) a);
      regs.(d) <- (if !all_zero then 1L else 0L)
  | Code.Rgather (d, n, w, a) -> (
      (* FPGA-checked gather: majority-vote the replicated address, load
         once, replicate (closes the extract window of vulnerability) *)
      let alanes = match a with Code.Oslot (_, l) -> l | Code.Oconst c -> Array.length c in
      let disagree = ref false in
      let a0 = get_lane regs a 0 in
      for j = 1 to alanes - 1 do
        if get_lane regs a j <> a0 then disagree := true
      done;
      let addr = fix_addr (majority4 ~n:alanes (fun j -> get_lane regs a j)) in
      if !disagree then note_recovered m;
      try
        let v = Memory.read m.mem ~width:w addr in
        for j = 0 to n - 1 do
          regs.(d + j) <- v
        done;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Rscatter (w, v, a) -> (
      let alanes = match a with Code.Oslot (_, l) -> l | Code.Oconst c -> Array.length c in
      let vlanes = match v with Code.Oslot (_, l) -> l | Code.Oconst c -> Array.length c in
      let disagree = ref false in
      let a0 = get_lane regs a 0 and v0 = get_lane regs v 0 in
      for j = 1 to alanes - 1 do
        if get_lane regs a j <> a0 then disagree := true
      done;
      for j = 1 to vlanes - 1 do
        if get_lane regs v j <> v0 then disagree := true
      done;
      let addr = fix_addr (majority4 ~n:alanes (fun j -> get_lane regs a j)) in
      let value = majority4 ~n:vlanes (fun j -> get_lane regs v j) in
      if !disagree then note_recovered m;
      try
        ck_log_write m th ~width:w addr;
        Memory.write m.mem ~width:w addr value;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Tret o -> (
      let completion = Timing.exec th.timing ~ready:!ready ~mem_lat:4 it.Code.uops in
      let popped = fr in
      (* the checkpointed call completed: commit (drop) the checkpoint *)
      (match th.ck with
      | Some ck when ck.ck_frame == popped -> th.ck <- None
      | _ -> ());
      th.sp <- popped.saved_sp;
      th.frames <- List.tl th.frames;
      match th.frames with
      | [] ->
          finish_thread m th;
          continue_ := false;
          next_pc := -1
      | caller :: _ ->
          (match o with
          | Some v when popped.ret_off >= 0 ->
              let lanes = popped.cf.Code.ret_lanes in
              for j = 0 to lanes - 1 do
                caller.regs.(popped.ret_off + j) <- get_lane popped.regs v j
              done;
              caller.ready.(popped.ret_off) <- completion
          | _ -> ());
          next_pc := -1)
  | Code.Tbr target -> next_pc := target
  | Code.Tcondbr (c, t, e) ->
      let taken = get_scalar regs c <> 0L in
      let taken =
        if m.cf_divert then begin
          m.cf_divert <- false;
          mark_injected m "branch";
          not taken
        end
        else taken
      in
      next_pc := (if taken then t else e);
      branch_info := Some (taken, false)
  | Code.Tvbr (mask, t, e, r) ->
      let lanes = match mask with Code.Oslot (_, l) -> l | Code.Oconst c -> Array.length c in
      let all_true = ref true and all_false = ref true in
      for j = 0 to lanes - 1 do
        if get_lane regs mask j = 0L then all_true := false else all_false := false
      done;
      if !all_true then begin
        next_pc := t;
        branch_info := Some (true, false)
      end
      else if !all_false then begin
        next_pc := e;
        branch_info := Some (false, false)
      end
      else begin
        next_pc := r;
        branch_info := Some (true, true)
      end;
      (* control-flow fault: the front end retires the wrong successor —
         a unanimous mask goes the wrong way, a mixed mask jumps straight
         past the recovery edge (the §VII unprotected-control-flow case) *)
      if m.cf_divert then begin
        m.cf_divert <- false;
        mark_injected m "branch";
        next_pc := (if !all_true then e else t)
      end
  | Code.Tvbr_u (mask, t, e) ->
      (* unchecked AVX branch: hardware flags reflect lane 0 on a clean run;
         a mixed mask silently follows lane 0 (the Fig. 12 no-branch-checks
         configuration gives up mixed-outcome detection) *)
      let taken = get_lane regs mask 0 <> 0L in
      let taken =
        if m.cf_divert then begin
          m.cf_divert <- false;
          mark_injected m "branch";
          not taken
        end
        else taken
      in
      next_pc := (if taken then t else e);
      branch_info := Some (taken, false)
  | Code.Tunreachable -> raise (Trap Unreachable_executed));
  (* timing for plain instructions (calls/returns were timed inline) *)
  (match it.Code.op with
  | Code.Rcall _ | Code.Rcall_ind _ | Code.Tret _ -> ()
  | _ ->
      let completion =
        Timing.exec th.timing ~ready:!ready
          ~mem_lat:(if !mem_lat > 0 then !mem_lat else Cache.hit_latency)
          it.Code.uops
      in
      if it.Code.dst >= 0 then fr.ready.(it.Code.dst) <- completion;
      (match !branch_info with
      | Some (taken, force_miss) ->
          let miss = Branch_pred.record th.bpred ~pc:fr.pc ~taken in
          if miss || force_miss then begin
            ctr.Counters.branch_misses <- ctr.Counters.branch_misses + 1;
            Timing.mispredict th.timing ~resolved:completion
          end
      | None -> ()));
  (* fault injection (register-SEU stream; the other fault kinds are armed
     before the instruction executes, above) *)
  (if fl land Code.fl_inject <> 0 then
     match m.cfg.inject with
     | Some inj when inj.kind = Reg_flip ->
         m.inj_count <- m.inj_count + 1;
         if m.inj_count = inj.at then begin
           let dlanes = max it.Code.dlanes 1 in
           let flip lane bit =
             let off = it.Code.dst + (lane mod dlanes) in
             fr.regs.(off) <- Int64.logxor fr.regs.(off) (Int64.shift_left 1L (bit land 63))
           in
           flip inj.lane inj.bit;
           (match inj.second with
           | Some (l, b) ->
               let l, b =
                 second_flip ~dlanes ~lane:inj.lane ~bit:inj.bit ~lane2:l ~bit2:b
               in
               flip l b
           | None -> ());
           mark_injected m (class_of it.Code.op)
         end
     | Some _ -> ()
     | None -> if m.cfg.count_inject_sites then m.inj_count <- m.inj_count + 1);
  if !next_pc >= 0 then fr.pc <- !next_pc;
  !continue_ && th.status = Running

(* ---- scheduler ---- *)

let quantum = 256

let pick_next (m : t) : thread option =
  let best = ref None in
  List.iter
    (fun th ->
      if th.status = Running then
        match !best with
        | Some b when Timing.cycle b.timing <= Timing.cycle th.timing -> ()
        | _ -> best := Some th)
    m.threads;
  !best

let sync_counters (m : t) =
  List.iter
    (fun th ->
      if th.status <> Done then
        th.ctr.Counters.cycles <- Timing.cycle th.timing - th.start_cycle)
    m.threads

let make_result (m : t) (trap : trap_reason option) : result =
  sync_counters m;
  let threads = List.rev m.threads in
  let counters = List.map (fun th -> th.ctr) threads in
  let totals = List.fold_left Counters.add (Counters.create ()) counters in
  let wall =
    List.fold_left
      (fun acc th -> max acc (if th.status = Done then th.final_cycle else Timing.cycle th.timing))
      0 m.threads
  in
  let out = Buffer.contents m.output in
  {
    wall_cycles = wall;
    counters;
    totals;
    output_digest = Digest.string out;
    output_bytes = out;
    trap;
    recovered_faults = m.recovered;
    retried_faults = m.retried;
    reexecutions = m.reexecs;
    inject_sites = m.inj_count;
    mem_sites = m.mem_count;
    branch_sites = m.br_count;
    fault_injected = m.injected;
    inject_class = (if m.injected then Some m.inject_class else None);
    detect_latency =
      (if m.injected && m.detect_instr >= 0 then Some (m.detect_instr - m.inject_instr)
       else None);
  }

(* Runs [entry] with scalar [args] to completion of all threads. *)
let run ?(args = [||]) (m : t) (entry : string) : result =
  let cf = Code.lookup m.code entry in
  ignore (spawn_thread m cf args ~start_cycle:0);
  let rec loop () =
    match pick_next m with
    | Some th ->
        let continue_ = ref true in
        let k = ref 0 in
        while !continue_ && !k < quantum do
          incr k;
          continue_ := step m th
        done;
        loop ()
    | None ->
        if List.for_all (fun th -> th.status = Done) m.threads then ()
        else begin
          (* waiting threads whose target has finished were woken eagerly;
             anything left is a deadlock *)
          List.iter
            (fun th ->
              match th.status with
              | Waiting tid -> (
                  match find_thread m tid with
                  | Some t when t.status = Done ->
                      th.status <- Running;
                      Timing.sync_to th.timing t.final_cycle
                  | _ -> ())
              | Waiting_barrier _ | Running | Done -> ())
            m.threads;
          if List.exists (fun th -> th.status = Running) m.threads then loop ()
          else raise (Trap Deadlock)
        end
  in
  match loop () with
  | () -> make_result m None
  | exception Trap r ->
      (* a trap is a detection event for latency purposes *)
      note_detect m;
      make_result m (Some r)

(* Convenience: build, run, and return the result in one call. *)
let run_module ?(cfg = default_config) ?(flags_cmp = false) ?(args = [||])
    (modul : Ir.Instr.modul) (entry : string) : result =
  let m = create ~cfg ~flags_cmp modul in
  run ~args m entry
