(** The simulated multicore machine.

    Executes compiled code functionally (bit-exact lane semantics from
    {!Value}) while driving one {!Timing} engine, {!Cache} and
    {!Branch_pred} per core.  Threads map 1:1 onto cores, as in the paper's
    testbed; the scheduler always advances the thread whose core clock is
    furthest behind, which makes lock contention and join edges show up in
    wall-clock cycles.  Also hosts the native builtins (OS/pthreads/IO —
    unhardened, §IV-A) and the single-bit fault-injection hook (§IV-B). *)

type trap_reason =
  | Segfault of int64
  | Div_by_zero
  | Aborted
  | Elzar_fatal  (** recovery found no majority: detected but uncorrectable *)
  | Bad_callee of int64
  | Deadlock
  | Unreachable_executed
  | Hang  (** instruction budget exhausted *)

exception Trap of trap_reason

let string_of_trap = function
  | Segfault a -> Printf.sprintf "segfault at 0x%Lx" a
  | Div_by_zero -> "division by zero"
  | Aborted -> "abort() called"
  | Elzar_fatal -> "elzar: uncorrectable fault (no majority)"
  | Bad_callee a -> Printf.sprintf "indirect call to 0x%Lx" a
  | Deadlock -> "deadlock"
  | Unreachable_executed -> "unreachable executed"
  | Hang -> "instruction budget exhausted"

type frame = {
  cf : Code.cfunc;
  regs : int64 array;
  ready : int array;
  mutable pc : int;
  ret_off : int;  (** slot in the caller frame for the return value; -1 *)
  saved_sp : int64;
}

type status = Running | Waiting of int | Waiting_barrier of int64 | Done

(* Re-execution checkpoint: everything needed to restart the outermost
   hardened call of a thread from scratch (RepTFD-style replay recovery).
   The undo log records (address, width, old value) for every simulated
   store the thread performs while the checkpoint is live; rollback
   replays it newest-first.  Builtins with externally visible effects
   (locks, spawns, allocation) invalidate the checkpoint instead. *)
type ckpt = {
  ck_cf : Code.cfunc;
  ck_args : int64 array;  (** scalar arguments as passed at the call *)
  ck_ret_off : int;
  ck_sp : int64;
  ck_caller : frame list;  (** the frames below the checkpointed one *)
  ck_out_len : int;  (** program-output length at checkpoint time *)
  mutable ck_frame : frame;  (** the live checkpointed frame (physical identity) *)
  mutable ck_log : (int64 * int * int64) list;
  mutable ck_log_len : int;
  mutable ck_valid : bool;
  mutable ck_tries : int;  (** rollbacks consumed *)
}

(* Undo-log length bound; a hardened call writing more than this simply
   loses re-execution coverage (the checkpoint is invalidated). *)
let ck_log_cap = 200_000

type thread = {
  tid : int;
  mutable frames : frame list;
  timing : Timing.t;
  cache : Cache.t;
  bpred : Branch_pred.t;
  ctr : Counters.t;
  mutable status : status;
  mutable sp : int64;
  start_cycle : int;
  mutable final_cycle : int;
  mutable ck : ckpt option;
}

(* The transient-fault taxonomy (§VII discusses exactly the non-register
   faults the paper's campaign does not model): register SEUs (the paper's
   §IV-B model), bit-flips in simulated memory, effective-address faults on
   loads/stores, and control-flow faults diverting a conditional branch. *)
type fault_kind =
  | Reg_flip  (** flip bit(s) in the destination register (default) *)
  | Mem_flip
      (** flip one bit of a byte touched by the [at]-th memory access,
          right after that access (visible to the at+1-th access of it) *)
  | Addr_flip  (** flip one bit of the [at]-th load/store's effective address *)
  | Branch_flip  (** divert the [at]-th conditional branch to the wrong successor *)

let fault_kind_to_string = function
  | Reg_flip -> "reg"
  | Mem_flip -> "mem"
  | Addr_flip -> "addr"
  | Branch_flip -> "cf"

type inject = {
  at : int;
  lane : int;
  bit : int;
  second : (int * int) option;  (** optional second (lane, bit) flip in the
                                    same destination — multi-bit SEU *)
  kind : fault_kind;
}

(* Resolves the second flip of a multi-bit SEU against the destination's
   actual lane count.  The raw (lane2, bit2) pair is drawn before the
   injection site (and hence its [dlanes]) is known; after the [mod dlanes]
   wrap it could land on the first flip's lane and silently cancel it,
   turning the experiment into a fault-free run.  Guarantees the returned
   flip never cancels the first: on a multi-lane destination the second
   lane is remapped to a distinct lane; on a scalar destination (a single
   lane, i.e. no second replica to corrupt) it falls back to a distinct
   bit of the same word. *)
let second_flip ~(dlanes : int) ~(lane : int) ~(bit : int) ~(lane2 : int) ~(bit2 : int) :
    int * int =
  let dlanes = max dlanes 1 in
  let l1 = lane mod dlanes in
  let l2 = lane2 mod dlanes in
  let b1 = bit land 63 and b2 = bit2 land 63 in
  if dlanes = 1 then (0, if b2 = b1 then (b1 + 1) land 63 else b2)
  else if l2 = l1 then ((l1 + 1 + (lane2 mod (dlanes - 1))) mod dlanes, b2)
  else (l2, b2)

(* Three-tier execution engine.  [Closure] is the threaded-code tier: at
   machine-build time every [rinstr] is translated into a pre-specialized
   OCaml closure (operand offsets, lane strides, flag bookkeeping and the
   fault-injection hooks of *this* config resolved once), and the dispatch
   loop just tail-calls through the closure array.  [Block] additionally
   fuses each straight-line run of instructions into a single superblock
   closure with bulk counter updates and a precompiled static timing plan;
   blocks whose instructions would carry compiled-in hooks (armed fault
   sites, census, undo log, tracing, profiling) deoptimize to the
   per-instruction closures.  [Reference] is the original [step]
   interpreter, kept as the executable spec: all tiers are required to
   produce bit-identical results (cycles, counters, output, traps), which
   the engine-equivalence tests assert. *)
type engine_kind = Reference | Closure | Block

let engine_to_string = function
  | Reference -> "reference"
  | Closure -> "closure"
  | Block -> "block"

(* Raised out of [resume] when the abort hook reports cancellation at a
   quantum boundary.  Deliberately NOT a [trap_reason]: an aborted run is
   not an experiment outcome (the simulation was cut short by the host),
   so it must never be classified — supervisors catch it and decide
   whether to retry or quarantine. *)
exception Abort

type config = {
  max_instrs : int;
  inject : inject option;
  count_inject_sites : bool;
  stack_size : int;
  reexec_retries : int;
      (** re-execution recovery budget: >0 checkpoints each outermost
          hardened call (registers, stack pointer, a memory undo log) so
          the [elzar_reexec] runtime marker can roll the thread back and
          retry the whole call that many times before fail-stopping *)
  trace : Buffer.t option;
      (** per-instruction execution trace (requires [debug] compilation);
          capped at ~1 MB — the Intel SDE debugtrace analogue of §IV-B *)
  engine : engine_kind;
  profile : Profile.t option;
      (** per-instruction-class cycle attribution (closure engine only);
          [None] compiles no hook into the closures at all *)
  abort : (unit -> bool) option;
      (** cancellation hook, polled once per scheduling quantum (the same
          boundary [on_quantum] fires on): the first [true] raises {!Abort}
          out of the run.  Kept a closure so callers can poll an atomic
          flag set by a watchdog without the machine knowing about it;
          [None] compiles to a single match per quantum *)
  chaos : (unit -> unit) option;
      (** test-only chaos hook: invoked exactly once, at the first quantum
          boundary of the run, on the simulation thread.  Supervision
          tests use it to raise host exceptions, stall the run until the
          abort hook fires, or slow it down — proving the supervisor's
          isolation/watchdog/retry paths against a real engine.  [None]
          (the default everywhere outside tests) costs one bool check per
          quantum *)
}

let default_config =
  {
    max_instrs = 400_000_000;
    inject = None;
    count_inject_sites = false;
    stack_size = 1 lsl 17;
    reexec_retries = 0;
    trace = None;
    engine = Closure;
    profile = None;
    abort = None;
    chaos = None;
  }

(* One fused superblock of the block engine: [fb_len] dynamic instructions
   (a hook-free straight-line prefix, plus the trailing block ender when
   the run ends in a control transfer) executed by one closure.  [fb_exec]
   follows the same return protocol as the per-instruction closures. *)
type fblock = { fb_len : int; fb_exec : thread -> frame -> int }

type t = {
  code : Code.t;
  mem : Memory.t;
  mutable threads : thread list;  (** reverse spawn order *)
  mutable by_tid : thread array;
      (** tid-indexed view of [threads] (tids are dense spawn indices);
          O(1) lookup on the hot join path.  Only the first [nthreads]
          entries are meaningful. *)
  mutable kcode : (thread -> frame -> int) array array;
      (** closure-compiled code, indexed by [cf_id] then [pc]; built
          lazily on the first [resume] under the [Closure] and [Block]
          engines *)
  mutable kblocks : fblock option array array;
      (** fused superblocks, indexed by [cf_id] then starting [pc];
          [Some] only at fusable block starts.  Built lazily on the first
          [resume] under the [Block] engine *)
  mutable snap_base : Bytes.t;
      (** memory image at the first snapshot of this run; empty until
          [snapshot] is first called *)
  mutable nthreads : int;
  output : Buffer.t;
  alloc_sizes : (int64, int) Hashtbl.t;
  cfg : config;
  mutable total_instrs : int;
  mutable inj_count : int;  (** injection-eligible instructions executed *)
  mutable mem_count : int;  (** hardened-code memory accesses executed *)
  mutable br_count : int;  (** hardened-code conditional branches executed *)
  mutable injected : bool;
  mutable recovered : int;  (** recovery-routine activations *)
  mutable retried : int;  (** recovery re-vote retries *)
  mutable reexecs : int;  (** re-execution rollbacks performed *)
  mutable addr_mask : int64;  (** armed address-fault XOR mask; 0 = disarmed *)
  mutable mem_flip_armed : bool;
  mutable cf_divert : bool;
  mutable inject_instr : int;  (** [total_instrs] at injection time; -1 *)
  mutable detect_instr : int;  (** [total_instrs] at first recovery/trap; -1 *)
  mutable inject_class : string;  (** instruction class at the injection site *)
}

type result = {
  wall_cycles : int;
  counters : Counters.t list;  (** one per thread, spawn order *)
  totals : Counters.t;
  output_digest : string;
  output_bytes : string;
  trap : trap_reason option;
  recovered_faults : int;
  retried_faults : int;
  reexecutions : int;
  inject_sites : int;
  mem_sites : int;
  branch_sites : int;
  fault_injected : bool;
  inject_class : string option;
  detect_latency : int option;
      (** dynamic instructions between injection and the first recovery
          activation or trap; [None] if never detected *)
}

let create ?(cfg = default_config) ?(flags_cmp = false) (m : Ir.Instr.modul) : t =
  let mem = Memory.create () in
  let code = Code.compile ~debug:(cfg.trace <> None) ~flags_cmp m mem in
  {
    code;
    mem;
    threads = [];
    by_tid = [||];
    kcode = [||];
    kblocks = [||];
    snap_base = Bytes.empty;
    nthreads = 0;
    output = Buffer.create 256;
    alloc_sizes = Hashtbl.create 64;
    cfg;
    total_instrs = 0;
    inj_count = 0;
    mem_count = 0;
    br_count = 0;
    injected = false;
    recovered = 0;
    retried = 0;
    reexecs = 0;
    addr_mask = 0L;
    mem_flip_armed = false;
    cf_divert = false;
    inject_instr = -1;
    detect_instr = -1;
    inject_class = "";
  }

(* Address of a named global, for host-side input preparation (the moral
   equivalent of the benchmark reading its input file — unhardened I/O that
   costs no simulated cycles). *)
let global_addr (m : t) name =
  match Hashtbl.find_opt m.code.Code.globals name with
  | Some a -> a
  | None -> invalid_arg ("Machine.global_addr: unknown global " ^ name)

(* ---- operand access ---- *)

let get_lane (regs : int64 array) (o : Code.rop) (j : int) : int64 =
  match o with
  | Code.Oslot (off, lanes) -> regs.(off + if lanes = 1 then 0 else j mod lanes)
  | Code.Oconst a -> a.(if Array.length a = 1 then 0 else j mod Array.length a)

let get_scalar (regs : int64 array) (o : Code.rop) : int64 =
  match o with Code.Oslot (off, _) -> regs.(off) | Code.Oconst a -> a.(0)

(* ---- threads ---- *)

let new_frame (cf : Code.cfunc) ~ret_off ~sp : frame =
  {
    cf;
    regs = Array.make (max cf.Code.nslots 1) 0L;
    ready = Array.make (max cf.Code.nslots 1) 0;
    pc = 0;
    ret_off;
    saved_sp = sp;
  }

let spawn_thread (m : t) (cf : Code.cfunc) (args : int64 array) ~(start_cycle : int) : thread =
  let stack_base = Memory.alloc_stack m.mem m.cfg.stack_size in
  let sp = Int64.add stack_base (Int64.of_int m.cfg.stack_size) in
  let fr = new_frame cf ~ret_off:(-1) ~sp in
  Array.iteri
    (fun i v ->
      if i < Array.length cf.Code.param_offs then begin
        let off, lanes = cf.Code.param_offs.(i) in
        for j = 0 to lanes - 1 do
          fr.regs.(off + j) <- v
        done
      end)
    args;
  let timing = Timing.create () in
  Timing.sync_to timing start_cycle;
  let th =
    {
      tid = m.nthreads;
      frames = [ fr ];
      timing;
      cache = Cache.create ();
      bpred = Branch_pred.create ();
      ctr = Counters.create ();
      status = Running;
      sp;
      start_cycle;
      final_cycle = 0;
      ck = None;
    }
  in
  if m.cfg.reexec_retries > 0 && cf.Code.cf_hardened then
    th.ck <-
      Some
        {
          ck_cf = cf;
          ck_args = Array.copy args;
          ck_ret_off = -1;
          ck_sp = sp;
          ck_caller = [];
          ck_out_len = Buffer.length m.output;
          ck_frame = fr;
          ck_log = [];
          ck_log_len = 0;
          ck_valid = true;
          ck_tries = 0;
        };
  m.threads <- th :: m.threads;
  if m.nthreads >= Array.length m.by_tid then begin
    let grown = Array.make (max 4 (2 * Array.length m.by_tid)) th in
    Array.blit m.by_tid 0 grown 0 (Array.length m.by_tid);
    m.by_tid <- grown
  end;
  m.by_tid.(m.nthreads) <- th;
  m.nthreads <- m.nthreads + 1;
  th

let wake_joiners (m : t) (finished : thread) =
  List.iter
    (fun th ->
      match th.status with
      | Waiting tid when tid = finished.tid ->
          th.status <- Running;
          Timing.sync_to th.timing finished.final_cycle
      | _ -> ())
    m.threads

let finish_thread (m : t) (th : thread) =
  th.status <- Done;
  th.final_cycle <- Timing.cycle th.timing;
  (* busy span, for per-core IPC (Table III) *)
  th.ctr.Counters.cycles <- th.final_cycle - th.start_cycle;
  wake_joiners m th

let find_thread (m : t) tid =
  if tid >= 0 && tid < m.nthreads then Some m.by_tid.(tid) else None

(* ---- fault bookkeeping ---- *)

let mark_injected (m : t) (cls : string) =
  if not m.injected then begin
    m.injected <- true;
    m.inject_instr <- m.total_instrs;
    m.inject_class <- cls
  end

(* First point where the machine *reacted* to the injected fault — a
   recovery-routine activation, a retry, a rollback, or a trap. *)
let note_detect (m : t) =
  if m.injected && m.detect_instr < 0 then m.detect_instr <- m.total_instrs

let note_recovered (m : t) =
  m.recovered <- m.recovered + 1;
  note_detect m

(* ---- re-execution checkpoints ---- *)

let ck_invalidate (th : thread) =
  match th.ck with Some ck -> ck.ck_valid <- false | None -> ()

(* Program output is a single shared buffer: rollback truncates it to the
   checkpointed length, which is only sound if no *other* thread appended
   since.  Output from any thread therefore invalidates everyone else's
   checkpoint. *)
let ck_invalidate_others (m : t) (th : thread) =
  List.iter (fun o -> if o.tid <> th.tid then ck_invalidate o) m.threads

let ck_log_write (m : t) (th : thread) ~(width : int) (addr : int64) =
  match th.ck with
  | Some ck when ck.ck_valid ->
      if ck.ck_log_len >= ck_log_cap then ck.ck_valid <- false
      else begin
        ck.ck_log <- (addr, width, Memory.read m.mem ~width addr) :: ck.ck_log;
        ck.ck_log_len <- ck.ck_log_len + 1
      end
  | _ -> ()

(* Fixed rollback cost: restoring registers and replaying the undo log is
   the moral equivalent of a signal-handler round trip. *)
let reexec_cycles = 400

(* Rolls [th] back to its checkpoint: undoes logged stores newest-first
   (so the oldest value of a twice-written cell wins), truncates this
   thread's program output, and reinstalls a fresh frame with the original
   arguments.  The one-shot injection already fired (its site counter was
   consumed), so the re-execution is fault-free.  Returns [false] when no
   valid checkpoint or no retry budget remains. *)
let reexec_rollback (m : t) (th : thread) : bool =
  match th.ck with
  | Some ck when ck.ck_valid && ck.ck_tries < m.cfg.reexec_retries ->
      ck.ck_tries <- ck.ck_tries + 1;
      m.reexecs <- m.reexecs + 1;
      note_detect m;
      List.iter (fun (addr, w, v) -> Memory.write m.mem ~width:w addr v) ck.ck_log;
      ck.ck_log <- [];
      ck.ck_log_len <- 0;
      if Buffer.length m.output > ck.ck_out_len then Buffer.truncate m.output ck.ck_out_len;
      th.sp <- ck.ck_sp;
      let nf = new_frame ck.ck_cf ~ret_off:ck.ck_ret_off ~sp:ck.ck_sp in
      Array.iteri
        (fun i v ->
          if i < Array.length ck.ck_cf.Code.param_offs then begin
            let off, lanes = ck.ck_cf.Code.param_offs.(i) in
            for j = 0 to lanes - 1 do
              nf.regs.(off + j) <- v
            done
          end)
        ck.ck_args;
      ck.ck_frame <- nf;
      th.frames <- nf :: ck.ck_caller;
      Timing.advance th.timing reexec_cycles;
      true
  | _ -> false

(* ---- builtins ---- *)

type baction = Bdone | Bretry | Bblock of int | Bbarrier of int64 | Breexec

let exec_builtin (m : t) (th : thread) (fr : frame) (id : int) (args : int64 array)
    (dst : int) (dlanes : int) : baction =
  let spec = Builtins.get id in
  let retv = ref 0L in
  let action = ref Bdone in
  (* Checkpoint discipline: builtins with externally visible effects end
     re-execution coverage.  Output only invalidates *other* threads'
     checkpoints (own output is rolled back by truncation); rand64's state
     write is undo-logged like a normal store. *)
  (match spec.Builtins.name with
  | "thread_id" | "elzar_fatal" | "elzar_recovered" | "elzar_retried" | "elzar_reexec" -> ()
  | "output_i64" | "output_f64" | "output_bytes" -> ck_invalidate_others m th
  | "rand64" -> ()
  | _ -> ck_invalidate th);
  (match spec.Builtins.name with
  | "malloc" ->
      let size = Int64.to_int args.(0) in
      let p = Memory.malloc m.mem size in
      Hashtbl.replace m.alloc_sizes p size;
      retv := p
  | "free" -> (
      match Hashtbl.find_opt m.alloc_sizes args.(0) with
      | Some size ->
          Hashtbl.remove m.alloc_sizes args.(0);
          Memory.free m.mem args.(0) size
      | None -> raise (Trap (Segfault args.(0))))
  | "spawn" ->
      let f = args.(0) in
      let fid = Int64.to_int (Int64.sub f Code.fnptr_base) in
      if f < Code.fnptr_base || fid >= Array.length m.code.Code.cfuncs then
        raise (Trap (Bad_callee f));
      let child =
        spawn_thread m m.code.Code.cfuncs.(fid) [| args.(1) |]
          ~start_cycle:(Timing.cycle th.timing)
      in
      retv := Int64.of_int child.tid
  | "join" -> (
      let tid = Int64.to_int args.(0) in
      match find_thread m tid with
      | Some target when target.status = Done -> Timing.sync_to th.timing target.final_cycle
      | Some _ -> action := Bblock tid
      | None -> raise (Trap (Bad_callee args.(0))))
  | "lock" ->
      let v = Memory.read m.mem ~width:8 args.(0) in
      if v = 0L then Memory.write m.mem ~width:8 args.(0) 1L
      else begin
        (* spin: burn cycles and retry on the next scheduling round *)
        Timing.advance th.timing 60;
        action := Bretry
      end
  | "unlock" -> Memory.write m.mem ~width:8 args.(0) 0L
  | "barrier" ->
      (* pthread_barrier_wait: the cell holds the arrival count; the last
         arriver resets it and releases everyone at its clock *)
      let addr = args.(0) and n = args.(1) in
      let count = Int64.add (Memory.read m.mem ~width:8 addr) 1L in
      if count >= n then begin
        Memory.write m.mem ~width:8 addr 0L;
        let now = Timing.cycle th.timing in
        List.iter
          (fun other ->
            match other.status with
            | Waiting_barrier a when a = addr ->
                other.status <- Running;
                Timing.sync_to other.timing now
            | _ -> ())
          m.threads
      end
      else begin
        Memory.write m.mem ~width:8 addr count;
        action := Bbarrier addr
      end
  | "output_i64" | "output_f64" ->
      Buffer.add_int64_le m.output args.(0)
  | "output_bytes" ->
      let p = args.(0) and len = Int64.to_int args.(1) in
      Memory.check m.mem p (max len 1);
      Buffer.add_subbytes m.output m.mem.Memory.data (Int64.to_int p) len
  | "rand64" ->
      (* xorshift64* over a state cell in simulated memory *)
      let s = Memory.read m.mem ~width:8 args.(0) in
      let s = if s = 0L then 0x9E3779B97F4A7C15L else s in
      let s = Int64.logxor s (Int64.shift_left s 13) in
      let s = Int64.logxor s (Int64.shift_right_logical s 7) in
      let s = Int64.logxor s (Int64.shift_left s 17) in
      ck_log_write m th ~width:8 args.(0);
      Memory.write m.mem ~width:8 args.(0) s;
      retv := Int64.mul s 0x2545F4914F6CDD1DL
  | "abort" -> raise (Trap Aborted)
  | "elzar_fatal" -> raise (Trap Elzar_fatal)
  | "elzar_recovered" -> note_recovered m
  | "elzar_retried" ->
      m.retried <- m.retried + 1;
      note_detect m
  | "elzar_reexec" -> action := Breexec
  | "thread_id" -> retv := Int64.of_int th.tid
  | other -> failwith ("Machine.exec_builtin: unhandled builtin " ^ other));
  if !action = Bdone then begin
    Timing.advance th.timing spec.Builtins.cycles;
    if dst >= 0 then
      for j = 0 to dlanes - 1 do
        fr.regs.(dst + j) <- !retv;
        fr.ready.(dst + j) <- Timing.cycle th.timing
      done
  end;
  !action

(* ---- interpreter ---- *)

let majority4 ~(n : int) (get : int -> int64) : int64 =
  (* Value appearing at least twice among n lanes; raises if none.  The
     n<=4 chain is branch-ordered to early-exit on the overwhelmingly
     common all-agree case while preserving the reference scan order: lane
     0 is compared against every other lane before lane 1 is considered,
     so ties like (a,b,b,a) still resolve to lane 0's value. *)
  if n <= 0 then raise (Trap Elzar_fatal)
  else if n = 1 then get 0
  else begin
    let v0 = get 0 and v1 = get 1 in
    if v0 = v1 then v0
    else if n = 2 then raise (Trap Elzar_fatal)
    else begin
      let v2 = get 2 in
      if v0 = v2 then v0
      else if n = 3 then (if v1 = v2 then v1 else raise (Trap Elzar_fatal))
      else begin
        let v3 = get 3 in
        if v0 = v3 then v0
        else if v1 = v2 || v1 = v3 then v1
        else if v2 = v3 then v2
        else if n = 4 then raise (Trap Elzar_fatal)
        else begin
          (* n > 4 never occurs with AVX-width replication; keep the
             reference scan as a fallback *)
          let rec pick i =
            if i >= n then raise (Trap Elzar_fatal)
            else begin
              let v = get i in
              let count = ref 0 in
              for j = 0 to n - 1 do
                if get j = v then incr count
              done;
              if !count >= 2 then v else pick (i + 1)
            end
          in
          pick 0
        end
      end
    end
  end

(* Instruction class of an injection site, for the AVF-style per-class
   vulnerability table. *)
let class_of (op : Code.rinstr) : string =
  match op with
  | Code.Rbinop _ -> "alu"
  | Code.Ricmp _ -> "cmp"
  | Code.Rselect _ -> "select"
  | Code.Rcast _ -> "cast"
  | Code.Rmov _ -> "mov"
  | Code.Rload _ | Code.Rvload _ | Code.Rgather _ -> "load"
  | Code.Rstore _ | Code.Rvstore _ | Code.Rscatter _ -> "store"
  | Code.Ralloca _ -> "alloca"
  | Code.Rcall _ | Code.Rcall_ind _ -> "call"
  | Code.Ratomic _ | Code.Rcmpxchg _ -> "atomic"
  | Code.Rextract _ | Code.Rinsert _ | Code.Rbroadcast _ | Code.Rshuffle _
  | Code.Rptestz _ ->
      "vec"
  | Code.Tret _ | Code.Tbr _ | Code.Tcondbr _ | Code.Tvbr _ | Code.Tvbr_u _
  | Code.Tunreachable ->
      "branch"

(* Trace emission, split out of [step] so the untraced quantum loop never
   touches the formatting code: when [cfg.trace = None] the per-step
   Printf work (and even the option check) is skipped entirely. *)
let emit_trace (buf : Buffer.t) (th : thread) =
  let fr = List.hd th.frames in
  if Buffer.length buf < 1_000_000 && Array.length fr.cf.Code.texts > fr.pc then
    Buffer.add_string buf
      (Printf.sprintf "T%d %c@%s+%d: %s\n" th.tid
         (if fr.cf.Code.cf_hardened then 'H' else '.')
         fr.cf.Code.cf_name fr.pc fr.cf.Code.texts.(fr.pc))

(* Executes one instruction of [th]; returns [false] when the thread left
   the Running state or terminated.  Trace emission lives in the quantum
   loop ([ref_quantum]), not here. *)
let step (m : t) (th : thread) : bool =
  let fr = List.hd th.frames in
  let it = fr.cf.Code.code.(fr.pc) in
  m.total_instrs <- m.total_instrs + 1;
  if m.total_instrs > m.cfg.max_instrs then raise (Trap Hang);
  let ctr = th.ctr in
  ctr.Counters.instrs <- ctr.Counters.instrs + 1;
  ctr.Counters.uops <- ctr.Counters.uops + Array.length it.Code.uops;
  let fl = it.Code.flags in
  if fl land Code.fl_avx <> 0 then ctr.Counters.avx_instrs <- ctr.Counters.avx_instrs + 1;
  if fl land Code.fl_load <> 0 then ctr.Counters.loads <- ctr.Counters.loads + 1;
  if fl land Code.fl_store <> 0 then ctr.Counters.stores <- ctr.Counters.stores + 1;
  if fl land Code.fl_branch <> 0 then ctr.Counters.branches <- ctr.Counters.branches + 1;
  (* Non-register fault streams: memory accesses and conditional branches
     inside hardened code each form their own deterministic site counter;
     arming happens *before* the instruction executes so the fault applies
     to this very access/branch. *)
  let is_mem_site =
    fr.cf.Code.cf_hardened && fl land (Code.fl_load lor Code.fl_store) <> 0
  in
  let is_br_site =
    fr.cf.Code.cf_hardened
    && match it.Code.op with Code.Tcondbr _ | Code.Tvbr _ | Code.Tvbr_u _ -> true | _ -> false
  in
  (match m.cfg.inject with
  | Some inj -> (
      match inj.kind with
      | Reg_flip -> ()
      | Mem_flip | Addr_flip ->
          if is_mem_site then begin
            m.mem_count <- m.mem_count + 1;
            if m.mem_count = inj.at then
              if inj.kind = Addr_flip then
                m.addr_mask <- Int64.shift_left 1L (inj.bit land 63)
              else m.mem_flip_armed <- true
          end
      | Branch_flip ->
          if is_br_site then begin
            m.br_count <- m.br_count + 1;
            if m.br_count = inj.at then m.cf_divert <- true
          end)
  | None ->
      if m.cfg.count_inject_sites then begin
        if is_mem_site then m.mem_count <- m.mem_count + 1;
        if is_br_site then m.br_count <- m.br_count + 1
      end);
  (* input readiness *)
  let ready = ref 0 in
  Array.iter
    (fun s ->
      if fr.ready.(s) > !ready then ready := fr.ready.(s))
    it.Code.srcs;
  let regs = fr.regs in
  let mem_lat = ref 0 in
  let touch addr width =
    let lat = Cache.access th.cache addr in
    ctr.Counters.l1_refs <- ctr.Counters.l1_refs + 1;
    if lat > Cache.hit_latency then ctr.Counters.l1_misses <- ctr.Counters.l1_misses + 1;
    if lat > !mem_lat then mem_lat := lat;
    (* Armed memory fault: flip one bit of a byte this access touched,
       right after the access — the at+1-th access of the location sees
       the corruption.  Deliberately NOT undo-logged: memory corruption
       persists across re-execution rollback (ELZAR leaves memory to ECC,
       §III-A), so [Reexec] cannot mask it away. *)
    if m.mem_flip_armed then begin
      m.mem_flip_armed <- false;
      match m.cfg.inject with
      | Some inj -> (
          let a = Int64.add addr (Int64.of_int (inj.bit lsr 3 mod max width 1)) in
          try
            let b = Memory.read m.mem ~width:1 a in
            Memory.write m.mem ~width:1 a
              (Int64.logxor b (Int64.of_int (1 lsl (inj.bit land 7))));
            mark_injected m (class_of it.Code.op)
          with Memory.Fault _ -> ())
      | None -> ()
    end
  in
  (* Armed address fault: XOR one bit into the effective address of this
     (the [at]-th) load/store. *)
  let fix_addr (a : int64) : int64 =
    if m.addr_mask = 0L then a
    else begin
      let a' = Int64.logxor a m.addr_mask in
      m.addr_mask <- 0L;
      mark_injected m (class_of it.Code.op);
      a'
    end
  in
  let continue_ = ref true in
  let next_pc = ref (fr.pc + 1) in
  let branch_info = ref None in
  (* (taken, always_mispredict) *)
  (match it.Code.op with
  | Code.Rbinop (d, n, f, a, b) -> (
      try
        for j = 0 to n - 1 do
          regs.(d + j) <- f (get_lane regs a j) (get_lane regs b j)
        done
      with Value.Division_by_zero -> raise (Trap Div_by_zero))
  | Code.Ricmp (d, n, p, tmask, a, b) ->
      for j = 0 to n - 1 do
        regs.(d + j) <- (if p (get_lane regs a j) (get_lane regs b j) then tmask else 0L)
      done
  | Code.Rselect (d, n, c, a, b) ->
      for j = 0 to n - 1 do
        regs.(d + j) <- (if get_lane regs c j <> 0L then get_lane regs a j else get_lane regs b j)
      done
  | Code.Rcast (d, n, f, a) ->
      for j = 0 to n - 1 do
        regs.(d + j) <- f (get_lane regs a j)
      done
  | Code.Rmov (d, n, a) ->
      for j = 0 to n - 1 do
        regs.(d + j) <- get_lane regs a j
      done
  | Code.Rload (d, w, a) -> (
      let addr = fix_addr (get_scalar regs a) in
      try
        regs.(d) <- Memory.read m.mem ~width:w addr;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Rvload (d, n, w, a) -> (
      let addr = fix_addr (get_scalar regs a) in
      try
        for j = 0 to n - 1 do
          regs.(d + j) <-
            Memory.read m.mem ~width:w (Int64.add addr (Int64.of_int (j * w)))
        done;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Rstore (w, v, a) -> (
      let addr = fix_addr (get_scalar regs a) in
      try
        ck_log_write m th ~width:w addr;
        Memory.write m.mem ~width:w addr (get_scalar regs v);
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Rvstore (n, w, v, a) -> (
      let addr = fix_addr (get_scalar regs a) in
      try
        for j = 0 to n - 1 do
          let aj = Int64.add addr (Int64.of_int (j * w)) in
          ck_log_write m th ~width:w aj;
          Memory.write m.mem ~width:w aj (get_lane regs v j)
        done;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Ralloca (d, size) ->
      th.sp <- Int64.sub th.sp (Int64.of_int (Memory.align16 size));
      regs.(d) <- th.sp
  | Code.Rcall (callee, argops, dst, dlanes) -> (
      let args = Array.map (fun o -> get_scalar regs o) argops in
      match callee with
      | Code.Direct fid ->
          let cf = m.code.Code.cfuncs.(fid) in
          let completion = Timing.exec th.timing ~ready:!ready ~mem_lat:4 it.Code.uops in
          let nf = new_frame cf ~ret_off:dst ~sp:th.sp in
          Array.iteri
            (fun i v ->
              let off, lanes = cf.Code.param_offs.(i) in
              for j = 0 to lanes - 1 do
                nf.regs.(off + j) <- v
              done;
              nf.ready.(off) <- completion)
            args;
          fr.pc <- fr.pc + 1 (* resume after the call on return *);
          (* arm a re-execution checkpoint at the outermost hardened call *)
          if m.cfg.reexec_retries > 0 && cf.Code.cf_hardened && th.ck = None then
            th.ck <-
              Some
                {
                  ck_cf = cf;
                  ck_args = args;
                  ck_ret_off = dst;
                  ck_sp = th.sp;
                  ck_caller = th.frames;
                  ck_out_len = Buffer.length m.output;
                  ck_frame = nf;
                  ck_log = [];
                  ck_log_len = 0;
                  ck_valid = true;
                  ck_tries = 0;
                };
          th.frames <- nf :: th.frames;
          next_pc := -1
      | Code.Builtin id -> (
          match exec_builtin m th fr id args dst dlanes with
          | Bdone -> ()
          | Bretry ->
              next_pc := fr.pc;
              continue_ := false
          | Bblock tid ->
              th.status <- Waiting tid;
              next_pc := fr.pc + 1;
              continue_ := false
          | Bbarrier addr ->
              th.status <- Waiting_barrier addr;
              next_pc := fr.pc + 1;
              continue_ := false
          | Breexec ->
              (* no-majority vote fell through every re-vote retry: roll
                 the thread back to its checkpoint, or fail-stop *)
              if reexec_rollback m th then next_pc := -1
              else raise (Trap Elzar_fatal)))
  | Code.Rcall_ind (fp, argops, dst, dlanes) ->
      let f = get_scalar regs fp in
      let fid = Int64.to_int (Int64.sub f Code.fnptr_base) in
      if f < Code.fnptr_base || fid >= Array.length m.code.Code.cfuncs then
        raise (Trap (Bad_callee f));
      let args = Array.map (fun o -> get_scalar regs o) argops in
      let cf = m.code.Code.cfuncs.(fid) in
      let completion = Timing.exec th.timing ~ready:!ready ~mem_lat:4 it.Code.uops in
      let nf = new_frame cf ~ret_off:dst ~sp:th.sp in
      Array.iteri
        (fun i v ->
          let off, lanes = cf.Code.param_offs.(i) in
          for j = 0 to lanes - 1 do
            nf.regs.(off + j) <- v
          done;
          nf.ready.(off) <- completion)
        args;
      ignore dlanes;
      fr.pc <- fr.pc + 1 (* resume after the call on return *);
      if m.cfg.reexec_retries > 0 && cf.Code.cf_hardened && th.ck = None then
        th.ck <-
          Some
            {
              ck_cf = cf;
              ck_args = args;
              ck_ret_off = dst;
              ck_sp = th.sp;
              ck_caller = th.frames;
              ck_out_len = Buffer.length m.output;
              ck_frame = nf;
              ck_log = [];
              ck_log_len = 0;
              ck_valid = true;
              ck_tries = 0;
            };
      th.frames <- nf :: th.frames;
      next_pc := -1
  | Code.Ratomic (op, d, a, x, w) -> (
      let addr = fix_addr (get_scalar regs a) in
      try
        let old = Memory.read m.mem ~width:w addr in
        let v = get_scalar regs x in
        let nv =
          match op with
          | Ir.Instr.Rmw_add -> Int64.add old v
          | Ir.Instr.Rmw_sub -> Int64.sub old v
          | Ir.Instr.Rmw_xchg -> v
          | Ir.Instr.Rmw_and -> Int64.logand old v
          | Ir.Instr.Rmw_or -> Int64.logor old v
        in
        ck_log_write m th ~width:w addr;
        Memory.write m.mem ~width:w addr (Value.mask_of_width (w * 8) |> Int64.logand nv);
        regs.(d) <- old;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Rcmpxchg (d, a, e, dv, w) -> (
      let addr = fix_addr (get_scalar regs a) in
      try
        let old = Memory.read m.mem ~width:w addr in
        if old = get_scalar regs e then begin
          ck_log_write m th ~width:w addr;
          Memory.write m.mem ~width:w addr (get_scalar regs dv)
        end;
        regs.(d) <- old;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Rextract (d, v, l) -> regs.(d) <- get_lane regs v l
  | Code.Rinsert (d, n, v, l, s) ->
      for j = 0 to n - 1 do
        regs.(d + j) <- (if j = l then get_scalar regs s else get_lane regs v j)
      done
  | Code.Rbroadcast (d, n, s) ->
      let x = get_scalar regs s in
      for j = 0 to n - 1 do
        regs.(d + j) <- x
      done
  | Code.Rshuffle (d, n, v, perm) ->
      let tmp = Array.init n (fun j -> get_lane regs v j) in
      for j = 0 to n - 1 do
        regs.(d + j) <- tmp.(perm.(j))
      done
  | Code.Rptestz (d, v) ->
      let all_zero = ref true in
      (match v with
      | Code.Oslot (off, lanes) ->
          for j = 0 to lanes - 1 do
            if regs.(off + j) <> 0L then all_zero := false
          done
      | Code.Oconst a -> Array.iter (fun x -> if x <> 0L then all_zero := false) a);
      regs.(d) <- (if !all_zero then 1L else 0L)
  | Code.Rgather (d, n, w, a) -> (
      (* FPGA-checked gather: majority-vote the replicated address, load
         once, replicate (closes the extract window of vulnerability) *)
      let alanes = match a with Code.Oslot (_, l) -> l | Code.Oconst c -> Array.length c in
      let disagree = ref false in
      let a0 = get_lane regs a 0 in
      for j = 1 to alanes - 1 do
        if get_lane regs a j <> a0 then disagree := true
      done;
      let addr = fix_addr (majority4 ~n:alanes (fun j -> get_lane regs a j)) in
      if !disagree then note_recovered m;
      try
        let v = Memory.read m.mem ~width:w addr in
        for j = 0 to n - 1 do
          regs.(d + j) <- v
        done;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Rscatter (w, v, a) -> (
      let alanes = match a with Code.Oslot (_, l) -> l | Code.Oconst c -> Array.length c in
      let vlanes = match v with Code.Oslot (_, l) -> l | Code.Oconst c -> Array.length c in
      let disagree = ref false in
      let a0 = get_lane regs a 0 and v0 = get_lane regs v 0 in
      for j = 1 to alanes - 1 do
        if get_lane regs a j <> a0 then disagree := true
      done;
      for j = 1 to vlanes - 1 do
        if get_lane regs v j <> v0 then disagree := true
      done;
      let addr = fix_addr (majority4 ~n:alanes (fun j -> get_lane regs a j)) in
      let value = majority4 ~n:vlanes (fun j -> get_lane regs v j) in
      if !disagree then note_recovered m;
      try
        ck_log_write m th ~width:w addr;
        Memory.write m.mem ~width:w addr value;
        touch addr w
      with Memory.Fault x -> raise (Trap (Segfault x)))
  | Code.Tret o -> (
      let completion = Timing.exec th.timing ~ready:!ready ~mem_lat:4 it.Code.uops in
      let popped = fr in
      (* the checkpointed call completed: commit (drop) the checkpoint *)
      (match th.ck with
      | Some ck when ck.ck_frame == popped -> th.ck <- None
      | _ -> ());
      th.sp <- popped.saved_sp;
      th.frames <- List.tl th.frames;
      match th.frames with
      | [] ->
          finish_thread m th;
          continue_ := false;
          next_pc := -1
      | caller :: _ ->
          (match o with
          | Some v when popped.ret_off >= 0 ->
              let lanes = popped.cf.Code.ret_lanes in
              for j = 0 to lanes - 1 do
                caller.regs.(popped.ret_off + j) <- get_lane popped.regs v j
              done;
              caller.ready.(popped.ret_off) <- completion
          | _ -> ());
          next_pc := -1)
  | Code.Tbr target -> next_pc := target
  | Code.Tcondbr (c, t, e) ->
      let taken = get_scalar regs c <> 0L in
      let taken =
        if m.cf_divert then begin
          m.cf_divert <- false;
          mark_injected m "branch";
          not taken
        end
        else taken
      in
      next_pc := (if taken then t else e);
      branch_info := Some (taken, false)
  | Code.Tvbr (mask, t, e, r) ->
      let lanes = match mask with Code.Oslot (_, l) -> l | Code.Oconst c -> Array.length c in
      let all_true = ref true and all_false = ref true in
      for j = 0 to lanes - 1 do
        if get_lane regs mask j = 0L then all_true := false else all_false := false
      done;
      if !all_true then begin
        next_pc := t;
        branch_info := Some (true, false)
      end
      else if !all_false then begin
        next_pc := e;
        branch_info := Some (false, false)
      end
      else begin
        next_pc := r;
        branch_info := Some (true, true)
      end;
      (* control-flow fault: the front end retires the wrong successor —
         a unanimous mask goes the wrong way, a mixed mask jumps straight
         past the recovery edge (the §VII unprotected-control-flow case) *)
      if m.cf_divert then begin
        m.cf_divert <- false;
        mark_injected m "branch";
        next_pc := (if !all_true then e else t)
      end
  | Code.Tvbr_u (mask, t, e) ->
      (* unchecked AVX branch: hardware flags reflect lane 0 on a clean run;
         a mixed mask silently follows lane 0 (the Fig. 12 no-branch-checks
         configuration gives up mixed-outcome detection) *)
      let taken = get_lane regs mask 0 <> 0L in
      let taken =
        if m.cf_divert then begin
          m.cf_divert <- false;
          mark_injected m "branch";
          not taken
        end
        else taken
      in
      next_pc := (if taken then t else e);
      branch_info := Some (taken, false)
  | Code.Tunreachable -> raise (Trap Unreachable_executed));
  (* timing for plain instructions (calls/returns were timed inline) *)
  (match it.Code.op with
  | Code.Rcall _ | Code.Rcall_ind _ | Code.Tret _ -> ()
  | _ ->
      let completion =
        Timing.exec th.timing ~ready:!ready
          ~mem_lat:(if !mem_lat > 0 then !mem_lat else Cache.hit_latency)
          it.Code.uops
      in
      if it.Code.dst >= 0 then fr.ready.(it.Code.dst) <- completion;
      (match !branch_info with
      | Some (taken, force_miss) ->
          let miss = Branch_pred.record th.bpred ~pc:fr.pc ~taken in
          if miss || force_miss then begin
            ctr.Counters.branch_misses <- ctr.Counters.branch_misses + 1;
            Timing.mispredict th.timing ~resolved:completion
          end
      | None -> ()));
  (* fault injection (register-SEU stream; the other fault kinds are armed
     before the instruction executes, above) *)
  (if fl land Code.fl_inject <> 0 then
     match m.cfg.inject with
     | Some inj when inj.kind = Reg_flip ->
         m.inj_count <- m.inj_count + 1;
         if m.inj_count = inj.at then begin
           let dlanes = max it.Code.dlanes 1 in
           let flip lane bit =
             let off = it.Code.dst + (lane mod dlanes) in
             fr.regs.(off) <- Int64.logxor fr.regs.(off) (Int64.shift_left 1L (bit land 63))
           in
           flip inj.lane inj.bit;
           (match inj.second with
           | Some (l, b) ->
               let l, b =
                 second_flip ~dlanes ~lane:inj.lane ~bit:inj.bit ~lane2:l ~bit2:b
               in
               flip l b
           | None -> ());
           mark_injected m (class_of it.Code.op)
         end
     | Some _ -> ()
     | None -> if m.cfg.count_inject_sites then m.inj_count <- m.inj_count + 1);
  if !next_pc >= 0 then fr.pc <- !next_pc;
  !continue_ && th.status = Running

(* ---- closure-compiled (threaded-code) engine ---- *)

(* Return protocol of a compiled instruction closure:
   -  [r >= 0]: next pc in the same frame; the driver keeps the pc in a
      local and writes [fr.pc] back only when the quantum budget expires
      mid-frame.
   -  [k_switch]: the closure changed the frame stack (call / return /
      re-execution rollback) and already stored any resume pc; the driver
      re-fetches the innermost frame.
   -  [k_yield]: the thread left the Running state (block, lock retry,
      barrier, thread finished); the closure stored the resume pc. *)
let k_switch = -1
let k_yield = -2

let k_touch (th : thread) (addr : int64) : int =
  let lat = Cache.access th.cache addr in
  let ctr = th.ctr in
  ctr.Counters.l1_refs <- ctr.Counters.l1_refs + 1;
  if lat > Cache.hit_latency then ctr.Counters.l1_misses <- ctr.Counters.l1_misses + 1;
  lat

(* [k_touch] plus the armed memory-bit-flip check; only compiled into the
   memory-op closures of Mem_flip campaigns (mirrors [touch] in [step]). *)
let k_touch_flip (m : t) (th : thread) (cls : string) (width : int) (addr : int64) : int =
  let lat = k_touch th addr in
  if m.mem_flip_armed then begin
    m.mem_flip_armed <- false;
    match m.cfg.inject with
    | Some inj -> (
        let a = Int64.add addr (Int64.of_int (inj.bit lsr 3 mod max width 1)) in
        try
          let b = Memory.read m.mem ~width:1 a in
          Memory.write m.mem ~width:1 a
            (Int64.logxor b (Int64.of_int (1 lsl (inj.bit land 7))));
          mark_injected m cls
        with Memory.Fault _ -> ())
    | None -> ()
  end;
  lat

(* Armed address fault; only compiled into Addr_flip campaigns. *)
let k_fix_addr (m : t) (cls : string) (a : int64) : int64 =
  if m.addr_mask = 0L then a
  else begin
    let a' = Int64.logxor a m.addr_mask in
    m.addr_mask <- 0L;
    mark_injected m cls;
    a'
  end

(* ---- operand accessors specialized at compile time ----
   [lane_fn] keeps [get_lane]'s general wrap; [get_fn ~n] additionally
   drops the [mod lanes] when the operand covers all n lanes of the
   consumer.  Shared by the closure and block tiers. *)

let lane_fn (o : Code.rop) : int64 array -> int -> int64 =
  match o with
  | Code.Oconst a ->
      if Array.length a = 1 then fun _ _ -> a.(0)
      else
        let la = Array.length a in
        fun _ j -> a.(j mod la)
  | Code.Oslot (off, 1) -> fun regs _ -> regs.(off)
  | Code.Oslot (off, l) -> fun regs j -> regs.(off + (j mod l))

let get_fn ~(n : int) (o : Code.rop) : int64 array -> int -> int64 =
  match o with
  | Code.Oslot (off, l) when n > 0 && l >= n -> fun regs j -> regs.(off + j)
  | Code.Oconst a when n > 1 && Array.length a >= n -> fun _ j -> a.(j)
  | o -> lane_fn o

let scalar_fn (o : Code.rop) : int64 array -> int64 =
  match o with
  | Code.Oslot (off, _) -> fun regs -> regs.(off)
  | Code.Oconst a -> fun _ -> a.(0)

let rop_lanes = function
  | Code.Oslot (_, l) -> l
  | Code.Oconst a -> Array.length a

(* Readiness of an instruction's register inputs, specialized on the
   source count. *)
let ready_fn (srcs : int array) : frame -> int =
  match Array.length srcs with
  | 0 -> fun _ -> 0
  | 1 ->
      let s0 = srcs.(0) in
      fun fr -> fr.ready.(s0)
  | 2 ->
      let s0 = srcs.(0) and s1 = srcs.(1) in
      fun fr ->
        let a = fr.ready.(s0) and b = fr.ready.(s1) in
        if a > b then a else b
  | ns ->
      fun fr ->
        let r = ref 0 in
        let ra = fr.ready in
        for i = 0 to ns - 1 do
          if ra.(srcs.(i)) > !r then r := ra.(srcs.(i))
        done;
        !r

(* Compiles the operational body of one instruction — semantics, memory
   effects, timing epilogue — into a closure specialized on its operands,
   lane counts and the given hook flags: operand offsets and the
   [mod lanes] stride are resolved once, and the fault-injection /
   undo-log hooks are compiled in or dropped entirely instead of being
   re-examined on every dynamic instruction.  Both compiled tiers build
   on this: the closure tier passes its config-derived flags and a
   [Timing.exec] epilogue via [finish_plain]; the block tier's fused
   prefixes pass all-false flags (fusion eligibility guarantees the
   hooks could not fire) and a precompiled [Timing.exec_plan] epilogue.
   Semantics — including timing, counter and fault-stream order — mirror
   [step] exactly; the equivalence tests hold all engines to
   bit-identical results. *)
let compile_body (m : t) (cf : Code.cfunc) (pc : int) (it : Code.citem)
    ~(addr_faults : bool) ~(mem_faults : bool) ~(cf_faults : bool)
    ~(reexec_on : bool)
    ~(finish_plain : thread -> frame -> int -> int -> unit) :
    thread -> frame -> int -> int =
  let uops = it.Code.uops in
  let cls = class_of it.Code.op in
  let next = pc + 1 in
  let finish_branch th ready ~taken ~force_miss =
    let completion = Timing.exec th.timing ~ready ~mem_lat:Cache.hit_latency uops in
    let miss = Branch_pred.record th.bpred ~pc ~taken in
    if miss || force_miss then begin
      th.ctr.Counters.branch_misses <- th.ctr.Counters.branch_misses + 1;
      Timing.mispredict th.timing ~resolved:completion
    end
  in
  (* must run before the [th.frames] push: [ck_caller]/[ck_sp] capture the
     caller's state *)
  let arm_ckpt th (cfc : Code.cfunc) args cdst (nf : frame) =
    if th.ck = None then
      th.ck <-
        Some
          {
            ck_cf = cfc;
            ck_args = args;
            ck_ret_off = cdst;
            ck_sp = th.sp;
            ck_caller = th.frames;
            ck_out_len = Buffer.length m.output;
            ck_frame = nf;
            ck_log = [];
            ck_log_len = 0;
            ck_valid = true;
            ck_tries = 0;
          }
  in
  match it.Code.op with
    | Code.Rbinop (d, n, f, a, b) ->
        let ga = get_fn ~n a and gb = get_fn ~n b in
        if n = 1 then
          fun th fr ready ->
            (try fr.regs.(d) <- f (ga fr.regs 0) (gb fr.regs 0)
             with Value.Division_by_zero -> raise (Trap Div_by_zero));
            finish_plain th fr ready Cache.hit_latency;
            next
        else
          fun th fr ready ->
            let regs = fr.regs in
            (try
               for j = 0 to n - 1 do
                 regs.(d + j) <- f (ga regs j) (gb regs j)
               done
             with Value.Division_by_zero -> raise (Trap Div_by_zero));
            finish_plain th fr ready Cache.hit_latency;
            next
    | Code.Ricmp (d, n, p, tmask, a, b) ->
        let ga = get_fn ~n a and gb = get_fn ~n b in
        if n = 1 then
          fun th fr ready ->
            fr.regs.(d) <- (if p (ga fr.regs 0) (gb fr.regs 0) then tmask else 0L);
            finish_plain th fr ready Cache.hit_latency;
            next
        else
          fun th fr ready ->
            let regs = fr.regs in
            for j = 0 to n - 1 do
              regs.(d + j) <- (if p (ga regs j) (gb regs j) then tmask else 0L)
            done;
            finish_plain th fr ready Cache.hit_latency;
            next
    | Code.Rselect (d, n, c, a, b) ->
        let gc = get_fn ~n c and ga = get_fn ~n a and gb = get_fn ~n b in
        fun th fr ready ->
          let regs = fr.regs in
          for j = 0 to n - 1 do
            regs.(d + j) <- (if gc regs j <> 0L then ga regs j else gb regs j)
          done;
          finish_plain th fr ready Cache.hit_latency;
          next
    | Code.Rcast (d, n, f, a) ->
        let ga = get_fn ~n a in
        if n = 1 then
          fun th fr ready ->
            fr.regs.(d) <- f (ga fr.regs 0);
            finish_plain th fr ready Cache.hit_latency;
            next
        else
          fun th fr ready ->
            let regs = fr.regs in
            for j = 0 to n - 1 do
              regs.(d + j) <- f (ga regs j)
            done;
            finish_plain th fr ready Cache.hit_latency;
            next
    | Code.Rmov (d, n, a) ->
        let ga = get_fn ~n a in
        if n = 1 then
          fun th fr ready ->
            fr.regs.(d) <- ga fr.regs 0;
            finish_plain th fr ready Cache.hit_latency;
            next
        else
          fun th fr ready ->
            let regs = fr.regs in
            for j = 0 to n - 1 do
              regs.(d + j) <- ga regs j
            done;
            finish_plain th fr ready Cache.hit_latency;
            next
    | Code.Rload (d, w, a) ->
        let ga = scalar_fn a in
        fun th fr ready ->
          let addr = ga fr.regs in
          let addr = if addr_faults then k_fix_addr m cls addr else addr in
          let lat =
            try
              fr.regs.(d) <- Memory.read m.mem ~width:w addr;
              if mem_faults then k_touch_flip m th cls w addr else k_touch th addr
            with Memory.Fault x -> raise (Trap (Segfault x))
          in
          finish_plain th fr ready lat;
          next
    | Code.Rvload (d, n, w, a) ->
        let ga = scalar_fn a in
        fun th fr ready ->
          let addr = ga fr.regs in
          let addr = if addr_faults then k_fix_addr m cls addr else addr in
          let lat =
            try
              let regs = fr.regs in
              for j = 0 to n - 1 do
                regs.(d + j) <-
                  Memory.read m.mem ~width:w (Int64.add addr (Int64.of_int (j * w)))
              done;
              if mem_faults then k_touch_flip m th cls w addr else k_touch th addr
            with Memory.Fault x -> raise (Trap (Segfault x))
          in
          finish_plain th fr ready lat;
          next
    | Code.Rstore (w, v, a) ->
        let ga = scalar_fn a and gv = scalar_fn v in
        fun th fr ready ->
          let addr = ga fr.regs in
          let addr = if addr_faults then k_fix_addr m cls addr else addr in
          let lat =
            try
              if reexec_on then ck_log_write m th ~width:w addr;
              Memory.write m.mem ~width:w addr (gv fr.regs);
              if mem_faults then k_touch_flip m th cls w addr else k_touch th addr
            with Memory.Fault x -> raise (Trap (Segfault x))
          in
          finish_plain th fr ready lat;
          next
    | Code.Rvstore (n, w, v, a) ->
        let ga = scalar_fn a and gv = get_fn ~n v in
        fun th fr ready ->
          let addr = ga fr.regs in
          let addr = if addr_faults then k_fix_addr m cls addr else addr in
          let lat =
            try
              let regs = fr.regs in
              for j = 0 to n - 1 do
                let aj = Int64.add addr (Int64.of_int (j * w)) in
                if reexec_on then ck_log_write m th ~width:w aj;
                Memory.write m.mem ~width:w aj (gv regs j)
              done;
              if mem_faults then k_touch_flip m th cls w addr else k_touch th addr
            with Memory.Fault x -> raise (Trap (Segfault x))
          in
          finish_plain th fr ready lat;
          next
    | Code.Ralloca (d, size) ->
        let sz = Int64.of_int (Memory.align16 size) in
        fun th fr ready ->
          th.sp <- Int64.sub th.sp sz;
          fr.regs.(d) <- th.sp;
          finish_plain th fr ready Cache.hit_latency;
          next
    | Code.Rcall (Code.Direct fid, argops, cdst, _) ->
        let getters = Array.map scalar_fn argops in
        let nargs = Array.length getters in
        let cfc = m.code.Code.cfuncs.(fid) in
        let poffs = cfc.Code.param_offs in
        let arm = reexec_on && cfc.Code.cf_hardened in
        fun th fr ready ->
          let regs = fr.regs in
          let args = Array.make nargs 0L in
          for i = 0 to nargs - 1 do
            args.(i) <- getters.(i) regs
          done;
          let completion = Timing.exec th.timing ~ready ~mem_lat:4 uops in
          let nf = new_frame cfc ~ret_off:cdst ~sp:th.sp in
          for i = 0 to nargs - 1 do
            let off, lanes = poffs.(i) in
            for j = 0 to lanes - 1 do
              nf.regs.(off + j) <- args.(i)
            done;
            nf.ready.(off) <- completion
          done;
          fr.pc <- next;
          if arm then arm_ckpt th cfc args cdst nf;
          th.frames <- nf :: th.frames;
          k_switch
    | Code.Rcall (Code.Builtin id, argops, cdst, cdl) ->
        let getters = Array.map scalar_fn argops in
        let nargs = Array.length getters in
        fun th fr _ready ->
          let regs = fr.regs in
          let args = Array.make nargs 0L in
          for i = 0 to nargs - 1 do
            args.(i) <- getters.(i) regs
          done;
          (match exec_builtin m th fr id args cdst cdl with
          | Bdone -> next
          | Bretry ->
              fr.pc <- pc;
              k_yield
          | Bblock tid ->
              th.status <- Waiting tid;
              fr.pc <- next;
              k_yield
          | Bbarrier addr ->
              th.status <- Waiting_barrier addr;
              fr.pc <- next;
              k_yield
          | Breexec -> if reexec_rollback m th then k_switch else raise (Trap Elzar_fatal))
    | Code.Rcall_ind (fp, argops, cdst, _) ->
        let gfp = scalar_fn fp in
        let getters = Array.map scalar_fn argops in
        let nargs = Array.length getters in
        let nfuncs = Array.length m.code.Code.cfuncs in
        fun th fr ready ->
          let regs = fr.regs in
          let f = gfp regs in
          let fid = Int64.to_int (Int64.sub f Code.fnptr_base) in
          if f < Code.fnptr_base || fid >= nfuncs then raise (Trap (Bad_callee f));
          let args = Array.make nargs 0L in
          for i = 0 to nargs - 1 do
            args.(i) <- getters.(i) regs
          done;
          let cfc = m.code.Code.cfuncs.(fid) in
          let completion = Timing.exec th.timing ~ready ~mem_lat:4 uops in
          let nf = new_frame cfc ~ret_off:cdst ~sp:th.sp in
          let poffs = cfc.Code.param_offs in
          for i = 0 to nargs - 1 do
            let off, lanes = poffs.(i) in
            for j = 0 to lanes - 1 do
              nf.regs.(off + j) <- args.(i)
            done;
            nf.ready.(off) <- completion
          done;
          fr.pc <- next;
          if reexec_on && cfc.Code.cf_hardened then arm_ckpt th cfc args cdst nf;
          th.frames <- nf :: th.frames;
          k_switch
    | Code.Ratomic (op, d, a, x, w) ->
        let ga = scalar_fn a and gx = scalar_fn x in
        let fop =
          match op with
          | Ir.Instr.Rmw_add -> Int64.add
          | Ir.Instr.Rmw_sub -> Int64.sub
          | Ir.Instr.Rmw_xchg -> fun _ v -> v
          | Ir.Instr.Rmw_and -> Int64.logand
          | Ir.Instr.Rmw_or -> Int64.logor
        in
        let wmask = Value.mask_of_width (w * 8) in
        fun th fr ready ->
          let addr = ga fr.regs in
          let addr = if addr_faults then k_fix_addr m cls addr else addr in
          let lat =
            try
              let old = Memory.read m.mem ~width:w addr in
              let nv = fop old (gx fr.regs) in
              if reexec_on then ck_log_write m th ~width:w addr;
              Memory.write m.mem ~width:w addr (Int64.logand nv wmask);
              fr.regs.(d) <- old;
              if mem_faults then k_touch_flip m th cls w addr else k_touch th addr
            with Memory.Fault x -> raise (Trap (Segfault x))
          in
          finish_plain th fr ready lat;
          next
    | Code.Rcmpxchg (d, a, e, dv, w) ->
        let ga = scalar_fn a and ge = scalar_fn e and gd = scalar_fn dv in
        fun th fr ready ->
          let addr = ga fr.regs in
          let addr = if addr_faults then k_fix_addr m cls addr else addr in
          let lat =
            try
              let old = Memory.read m.mem ~width:w addr in
              if old = ge fr.regs then begin
                if reexec_on then ck_log_write m th ~width:w addr;
                Memory.write m.mem ~width:w addr (gd fr.regs)
              end;
              fr.regs.(d) <- old;
              if mem_faults then k_touch_flip m th cls w addr else k_touch th addr
            with Memory.Fault x -> raise (Trap (Segfault x))
          in
          finish_plain th fr ready lat;
          next
    | Code.Rextract (d, v, l) ->
        let gv = lane_fn v in
        fun th fr ready ->
          fr.regs.(d) <- gv fr.regs l;
          finish_plain th fr ready Cache.hit_latency;
          next
    | Code.Rinsert (d, n, v, l, s) ->
        let gv = get_fn ~n v and gs = scalar_fn s in
        fun th fr ready ->
          let regs = fr.regs in
          for j = 0 to n - 1 do
            regs.(d + j) <- (if j = l then gs regs else gv regs j)
          done;
          finish_plain th fr ready Cache.hit_latency;
          next
    | Code.Rbroadcast (d, n, s) ->
        let gs = scalar_fn s in
        fun th fr ready ->
          let regs = fr.regs in
          let x = gs regs in
          for j = 0 to n - 1 do
            regs.(d + j) <- x
          done;
          finish_plain th fr ready Cache.hit_latency;
          next
    | Code.Rshuffle (d, n, v, perm) ->
        let gv = get_fn ~n v in
        (* scratch reused across executions: machines run single-domain,
           and no closure is re-entered mid-instruction *)
        let tmp = Array.make n 0L in
        fun th fr ready ->
          let regs = fr.regs in
          for j = 0 to n - 1 do
            tmp.(j) <- gv regs j
          done;
          for j = 0 to n - 1 do
            regs.(d + j) <- tmp.(perm.(j))
          done;
          finish_plain th fr ready Cache.hit_latency;
          next
    | Code.Rptestz (d, v) -> (
        match v with
        | Code.Oslot (off, lanes) ->
            fun th fr ready ->
              let regs = fr.regs in
              let all_zero = ref true in
              for j = 0 to lanes - 1 do
                if regs.(off + j) <> 0L then all_zero := false
              done;
              regs.(d) <- (if !all_zero then 1L else 0L);
              finish_plain th fr ready Cache.hit_latency;
              next
        | Code.Oconst a ->
            let r = if Array.for_all (fun x -> x = 0L) a then 1L else 0L in
            fun th fr ready ->
              fr.regs.(d) <- r;
              finish_plain th fr ready Cache.hit_latency;
              next)
    | Code.Rgather (d, n, w, a) ->
        let alanes = rop_lanes a in
        let ga = lane_fn a in
        fun th fr ready ->
          let regs = fr.regs in
          let a0 = ga regs 0 in
          let disagree = ref false in
          for j = 1 to alanes - 1 do
            if ga regs j <> a0 then disagree := true
          done;
          let addr = if !disagree then majority4 ~n:alanes (fun j -> ga regs j) else a0 in
          let addr = if addr_faults then k_fix_addr m cls addr else addr in
          if !disagree then note_recovered m;
          let lat =
            try
              let v = Memory.read m.mem ~width:w addr in
              for j = 0 to n - 1 do
                regs.(d + j) <- v
              done;
              if mem_faults then k_touch_flip m th cls w addr else k_touch th addr
            with Memory.Fault x -> raise (Trap (Segfault x))
          in
          finish_plain th fr ready lat;
          next
    | Code.Rscatter (w, v, a) ->
        let alanes = rop_lanes a and vlanes = rop_lanes v in
        let ga = lane_fn a and gv = lane_fn v in
        fun th fr ready ->
          let regs = fr.regs in
          let a0 = ga regs 0 and v0 = gv regs 0 in
          let disagree = ref false in
          for j = 1 to alanes - 1 do
            if ga regs j <> a0 then disagree := true
          done;
          for j = 1 to vlanes - 1 do
            if gv regs j <> v0 then disagree := true
          done;
          let addr = if !disagree then majority4 ~n:alanes (fun j -> ga regs j) else a0 in
          let addr = if addr_faults then k_fix_addr m cls addr else addr in
          let value = if !disagree then majority4 ~n:vlanes (fun j -> gv regs j) else v0 in
          if !disagree then note_recovered m;
          let lat =
            try
              if reexec_on then ck_log_write m th ~width:w addr;
              Memory.write m.mem ~width:w addr value;
              if mem_faults then k_touch_flip m th cls w addr else k_touch th addr
            with Memory.Fault x -> raise (Trap (Segfault x))
          in
          finish_plain th fr ready lat;
          next
    | Code.Tret o ->
        let ret_fn = match o with Some v -> Some (lane_fn v) | None -> None in
        let ret_lanes = cf.Code.ret_lanes in
        fun th fr ready ->
          let completion = Timing.exec th.timing ~ready ~mem_lat:4 uops in
          (if reexec_on then
             (* the checkpointed call completed: commit (drop) the checkpoint *)
             match th.ck with
             | Some ck when ck.ck_frame == fr -> th.ck <- None
             | _ -> ());
          th.sp <- fr.saved_sp;
          th.frames <- List.tl th.frames;
          (match th.frames with
          | [] ->
              finish_thread m th;
              k_yield
          | caller :: _ ->
              (match ret_fn with
              | Some g when fr.ret_off >= 0 ->
                  let roff = fr.ret_off in
                  for j = 0 to ret_lanes - 1 do
                    caller.regs.(roff + j) <- g fr.regs j
                  done;
                  caller.ready.(roff) <- completion
              | _ -> ());
              k_switch)
    | Code.Tbr target ->
        fun th fr ready ->
          finish_plain th fr ready Cache.hit_latency;
          target
    | Code.Tcondbr (c, t, e) ->
        let gc = scalar_fn c in
        if cf_faults then
          fun th fr ready ->
            let taken = gc fr.regs <> 0L in
            let taken =
              if m.cf_divert then begin
                m.cf_divert <- false;
                mark_injected m "branch";
                not taken
              end
              else taken
            in
            finish_branch th ready ~taken ~force_miss:false;
            if taken then t else e
        else
          fun th fr ready ->
            let taken = gc fr.regs <> 0L in
            finish_branch th ready ~taken ~force_miss:false;
            if taken then t else e
    | Code.Tvbr (mask, t, e, r) ->
        let lanes = rop_lanes mask in
        let gm = get_fn ~n:lanes mask in
        fun th fr ready ->
          let regs = fr.regs in
          let all_true = ref true and all_false = ref true in
          for j = 0 to lanes - 1 do
            if gm regs j = 0L then all_true := false else all_false := false
          done;
          let at = !all_true and af = !all_false in
          let npc = if at then t else if af then e else r in
          let npc =
            if cf_faults && m.cf_divert then begin
              m.cf_divert <- false;
              mark_injected m "branch";
              if at then e else t
            end
            else npc
          in
          finish_branch th ready ~taken:(not af) ~force_miss:((not at) && not af);
          npc
    | Code.Tvbr_u (mask, t, e) ->
        let gm = lane_fn mask in
        fun th fr ready ->
          let taken = gm fr.regs 0 <> 0L in
          let taken =
            if cf_faults && m.cf_divert then begin
              m.cf_divert <- false;
              mark_injected m "branch";
              not taken
            end
            else taken
          in
          finish_branch th ready ~taken ~force_miss:false;
          if taken then t else e
    | Code.Tunreachable -> fun _ _ _ -> raise (Trap Unreachable_executed)

(* Compiles one instruction into its closure-tier form: [compile_body]
   with this config's hook flags and a [Timing.exec] epilogue, wrapped in
   the per-instruction bookkeeping (trace, instruction ceiling, counters,
   fault-site streams, optional profiling). *)
let compile_item (m : t) (cf : Code.cfunc) (pc : int) (it : Code.citem) :
    thread -> frame -> int =
  let cfg = m.cfg in
  let uops = it.Code.uops in
  let nuops = Array.length uops in
  let dst = it.Code.dst in
  let fl = it.Code.flags in
  let cls = class_of it.Code.op in
  let is_avx = fl land Code.fl_avx <> 0 in
  let is_load = fl land Code.fl_load <> 0 in
  let is_store = fl land Code.fl_store <> 0 in
  let is_branch = fl land Code.fl_branch <> 0 in
  let hardened = cf.Code.cf_hardened in
  let is_mem_site = hardened && (is_load || is_store) in
  let is_br_site =
    hardened
    && match it.Code.op with Code.Tcondbr _ | Code.Tvbr _ | Code.Tvbr_u _ -> true | _ -> false
  in
  let reexec_on = cfg.reexec_retries > 0 in
  let addr_faults = match cfg.inject with Some i -> i.kind = Addr_flip | None -> false in
  let mem_faults = match cfg.inject with Some i -> i.kind = Mem_flip | None -> false in
  let cf_faults = match cfg.inject with Some i -> i.kind = Branch_flip | None -> false in
  let ready_of = ready_fn it.Code.srcs in
  (* timing epilogue shared by the plain-op bodies (same order as [step]) *)
  let finish_plain th (fr : frame) ready mem_lat =
    let completion = Timing.exec th.timing ~ready ~mem_lat uops in
    if dst >= 0 then fr.ready.(dst) <- completion
  in
  let body =
    compile_body m cf pc it ~addr_faults ~mem_faults ~cf_faults ~reexec_on
      ~finish_plain
  in
  (* per-instruction fault-site streams, compiled to hooks (or to nothing) *)
  let site_hook : (unit -> unit) option =
    match cfg.inject with
    | Some inj -> (
        match inj.kind with
        | Mem_flip when is_mem_site ->
            Some
              (fun () ->
                m.mem_count <- m.mem_count + 1;
                if m.mem_count = inj.at then m.mem_flip_armed <- true)
        | Addr_flip when is_mem_site ->
            let bmask = Int64.shift_left 1L (inj.bit land 63) in
            Some
              (fun () ->
                m.mem_count <- m.mem_count + 1;
                if m.mem_count = inj.at then m.addr_mask <- bmask)
        | Branch_flip when is_br_site ->
            Some
              (fun () ->
                m.br_count <- m.br_count + 1;
                if m.br_count = inj.at then m.cf_divert <- true)
        | _ -> None)
    | None ->
        if not cfg.count_inject_sites then None
        else if is_mem_site then Some (fun () -> m.mem_count <- m.mem_count + 1)
        else if is_br_site then Some (fun () -> m.br_count <- m.br_count + 1)
        else None
  in
  (* register-SEU stream: applied to the (caller) frame after the op body,
     exactly like [step]'s epilogue *)
  let reg_hook : (frame -> unit) option =
    if fl land Code.fl_inject = 0 then None
    else
      match cfg.inject with
      | Some inj when inj.kind = Reg_flip ->
          let dlanes = max it.Code.dlanes 1 in
          Some
            (fun fr ->
              m.inj_count <- m.inj_count + 1;
              if m.inj_count = inj.at then begin
                let flip lane bit =
                  let off = dst + (lane mod dlanes) in
                  fr.regs.(off) <-
                    Int64.logxor fr.regs.(off) (Int64.shift_left 1L (bit land 63))
                in
                flip inj.lane inj.bit;
                (match inj.second with
                | Some (l, b) ->
                    let l, b =
                      second_flip ~dlanes ~lane:inj.lane ~bit:inj.bit ~lane2:l ~bit2:b
                    in
                    flip l b
                | None -> ());
                mark_injected m cls
              end)
      | Some _ -> None
      | None ->
          if cfg.count_inject_sites then Some (fun _ -> m.inj_count <- m.inj_count + 1)
          else None
  in
  let trace_hook : (thread -> unit) option =
    match cfg.trace with
    | Some buf when Array.length cf.Code.texts > pc ->
        let text = cf.Code.texts.(pc) in
        let tag = if hardened then 'H' else '.' in
        let name = cf.Code.cf_name in
        Some
          (fun th ->
            if Buffer.length buf < 1_000_000 then
              Buffer.add_string buf (Printf.sprintf "T%d %c@%s+%d: %s\n" th.tid tag name pc text))
    | _ -> None
  in
  let max_instrs = cfg.max_instrs in
  let exec th fr =
    (match trace_hook with None -> () | Some h -> h th);
    m.total_instrs <- m.total_instrs + 1;
    if m.total_instrs > max_instrs then raise (Trap Hang);
    let ctr = th.ctr in
    ctr.Counters.instrs <- ctr.Counters.instrs + 1;
    ctr.Counters.uops <- ctr.Counters.uops + nuops;
    if is_avx then ctr.Counters.avx_instrs <- ctr.Counters.avx_instrs + 1;
    if is_load then ctr.Counters.loads <- ctr.Counters.loads + 1;
    if is_store then ctr.Counters.stores <- ctr.Counters.stores + 1;
    if is_branch then ctr.Counters.branches <- ctr.Counters.branches + 1;
    (match site_hook with None -> () | Some h -> h ());
    match reg_hook with
    | None -> body th fr (ready_of fr)
    | Some h ->
        let r = body th fr (ready_of fr) in
        h fr;
        r
  in
  (* per-class cycle attribution, like the other hooks compiled in only
     when enabled: with [profile = None] the closure is [exec] itself *)
  match cfg.profile with
  | None -> exec
  | Some prof ->
      fun th fr ->
        let c0 = Timing.cycle th.timing in
        let r = exec th fr in
        Profile.add prof cls ~cycles:(Timing.cycle th.timing - c0);
        r

(* Builds the closure table for every function: [kcode.(cf_id).(pc)] runs
   that instruction. *)
let kcompile (m : t) =
  m.kcode <-
    Array.map
      (fun (cf : Code.cfunc) ->
        Array.mapi (fun pc it -> compile_item m cf pc it) cf.Code.code)
      m.code.Code.cfuncs

(* ---- block-fused engine ---- *)

(* Superblock boundaries: control transfers, calls (including builtins)
   and returns end a block. *)
let is_ender (it : Code.citem) =
  match it.Code.op with
  | Code.Rcall _ | Code.Rcall_ind _ | Code.Tret _ | Code.Tbr _
  | Code.Tcondbr _ | Code.Tvbr _ | Code.Tvbr_u _ | Code.Tunreachable ->
      true
  | _ -> false

(* Leaders: every pc a control transfer can land on (or resume at after a
   call) starts a block.  The array has one extra slot so the
   past-the-last-ender mark needs no bounds check. *)
let leaders (cf : Code.cfunc) : bool array =
  let code = cf.Code.code in
  let n = Array.length code in
  let l = Array.make (n + 1) false in
  if n > 0 then l.(0) <- true;
  Array.iteri
    (fun pc it ->
      (match it.Code.op with
      | Code.Tbr t -> l.(t) <- true
      | Code.Tcondbr (_, t, e) ->
          l.(t) <- true;
          l.(e) <- true
      | Code.Tvbr (_, t, e, r) ->
          l.(t) <- true;
          l.(e) <- true;
          l.(r) <- true
      | Code.Tvbr_u (_, t, e) ->
          l.(t) <- true;
          l.(e) <- true
      | _ -> ());
      if is_ender it then l.(pc + 1) <- true)
    code;
  l

(* Deoptimization rules: a prefix instruction is fusable only if the
   closure tier would compile NO hook into it under this config, so the
   fused (hook-free) body is bit-identical by construction.  Armed
   mem/addr faults are applied and cleared by the very instruction whose
   site hook armed them, so instructions that are not sites of the
   injected kind can never observe an armed flag and fuse safely.
   Majority-vote ops ([Rgather]/[Rscatter]) are excluded whenever a fault
   is in flight: a recovery vote records detection latency against
   [total_instrs], which inside a fused block is bulk-updated. *)
let fusable (cfg : config) ~(hardened : bool) (it : Code.citem) : bool =
  let fl = it.Code.flags in
  let is_mem_site = hardened && fl land (Code.fl_load lor Code.fl_store) <> 0 in
  let is_reg_site = fl land Code.fl_inject <> 0 in
  let logs_stores =
    match it.Code.op with
    | Code.Rstore _ | Code.Rvstore _ | Code.Ratomic _ | Code.Rcmpxchg _
    | Code.Rscatter _ ->
        true
    | _ -> false
  in
  let votes =
    match it.Code.op with Code.Rgather _ | Code.Rscatter _ -> true | _ -> false
  in
  (match cfg.inject with
  | Some inj -> (
      (not votes)
      &&
      match inj.kind with
      | Reg_flip -> not is_reg_site
      | Mem_flip | Addr_flip -> not is_mem_site
      | Branch_flip -> true)
  | None -> (not cfg.count_inject_sites) || not (is_reg_site || is_mem_site))
  && ((not (cfg.reexec_retries > 0)) || not logs_stores)

(* One prefix instruction of a fused block: the [compile_body] semantics
   with every hook compiled out (fusion eligibility guarantees none could
   fire) and the precompiled static timing plan in place of the
   per-instance [Timing.exec] μop walk. *)
let compile_fused_step (m : t) (cf : Code.cfunc) (pc : int) (it : Code.citem) :
    (frame -> int) * (thread -> frame -> int -> int) =
  let dst = it.Code.dst in
  let plan = Timing.plan_of_uops it.Code.uops in
  let finish_plain th (fr : frame) ready mem_lat =
    let completion = Timing.exec_plan th.timing ~ready ~mem_lat plan in
    if dst >= 0 then fr.ready.(dst) <- completion
  in
  let body =
    compile_body m cf pc it ~addr_faults:false ~mem_faults:false
      ~cf_faults:false ~reexec_on:false ~finish_plain
  in
  (ready_fn it.Code.srcs, body)

(* Fuses the straight-line prefix [s .. s+plen-1] plus an optional
   trailing ender into one closure.  The prefix's counter deltas — its
   static cost summary — are precomputed and applied in bulk on entry; a
   mid-prefix trap retracts the unexecuted suffix so [total_instrs],
   counters and hence detection latency stay bit-identical with
   per-instruction execution (the trapping instruction itself counts,
   exactly as in [step]).  The ender runs through its regular
   per-instruction closure, keeping its own hooks, timing, prediction and
   control transfer intact.  Prefixes never contain branch instructions
   ([fl_branch] ops are all enders), so no branch counter is needed. *)
let compile_block (m : t) (cf : Code.cfunc)
    (kc : (thread -> frame -> int) array) (s : int) (plen : int)
    (ender : int option) : fblock =
  let code = cf.Code.code in
  (* suffix sums of the prefix's counter deltas, for trap retraction:
     [suf_X.(i)] covers prefix steps [i .. plen-1] *)
  let suf_uops = Array.make (plen + 1) 0 in
  let suf_avx = Array.make (plen + 1) 0 in
  let suf_loads = Array.make (plen + 1) 0 in
  let suf_stores = Array.make (plen + 1) 0 in
  for i = plen - 1 downto 0 do
    let it = code.(s + i) in
    let fl = it.Code.flags in
    suf_uops.(i) <- suf_uops.(i + 1) + Array.length it.Code.uops;
    suf_avx.(i) <- (suf_avx.(i + 1) + if fl land Code.fl_avx <> 0 then 1 else 0);
    suf_loads.(i) <- (suf_loads.(i + 1) + if fl land Code.fl_load <> 0 then 1 else 0);
    suf_stores.(i) <- (suf_stores.(i + 1) + if fl land Code.fl_store <> 0 then 1 else 0)
  done;
  let t_uops = suf_uops.(0) and t_avx = suf_avx.(0) in
  let t_loads = suf_loads.(0) and t_stores = suf_stores.(0) in
  let steps =
    Array.init plen (fun i -> compile_fused_step m cf (s + i) code.(s + i))
  in
  (* progress through the prefix, for trap retraction; machines run
     single-domain and blocks are never re-entered mid-flight *)
  let progress = ref plen in
  let tail : thread -> frame -> int =
    match ender with
    | Some e -> kc.(e)
    | None ->
        (* falls through into the next block *)
        let nxt = s + plen in
        fun _ _ -> nxt
  in
  let rec chain i (k : thread -> frame -> int) : thread -> frame -> int =
    if i < 0 then k
    else
      let ready_of, body = steps.(i) in
      chain (i - 1) (fun th fr ->
          progress := i;
          ignore (body th fr (ready_of fr) : int);
          k th fr)
  in
  let body =
    chain (plen - 1) (fun th fr ->
        progress := plen;
        tail th fr)
  in
  let fb_exec th fr =
    m.total_instrs <- m.total_instrs + plen;
    let ctr = th.ctr in
    ctr.Counters.instrs <- ctr.Counters.instrs + plen;
    ctr.Counters.uops <- ctr.Counters.uops + t_uops;
    if t_avx > 0 then ctr.Counters.avx_instrs <- ctr.Counters.avx_instrs + t_avx;
    if t_loads > 0 then ctr.Counters.loads <- ctr.Counters.loads + t_loads;
    if t_stores > 0 then ctr.Counters.stores <- ctr.Counters.stores + t_stores;
    try body th fr
    with Trap _ as ex ->
      let p = !progress in
      if p < plen then begin
        m.total_instrs <- m.total_instrs - (plen - p - 1);
        ctr.Counters.instrs <- ctr.Counters.instrs - (plen - p - 1);
        ctr.Counters.uops <- ctr.Counters.uops - suf_uops.(p + 1);
        ctr.Counters.avx_instrs <- ctr.Counters.avx_instrs - suf_avx.(p + 1);
        ctr.Counters.loads <- ctr.Counters.loads - suf_loads.(p + 1);
        ctr.Counters.stores <- ctr.Counters.stores - suf_stores.(p + 1)
      end;
      raise ex
  in
  { fb_len = (match ender with Some _ -> plen + 1 | None -> plen); fb_exec }

(* Builds the fused-block table: [kblocks.(cf_id).(pc)] is [Some b] iff a
   fused superblock starts at [pc] under this machine's config.  Tracing
   and profiling need per-instruction hooks everywhere, so they disable
   fusion wholesale; otherwise each maximal straight-line run whose
   instructions all satisfy [fusable] is fused.  Requires [kcode] (enders
   reuse the per-instruction closures). *)
let kcompile_blocks (m : t) =
  let cfg = m.cfg in
  let fuse = cfg.trace = None && cfg.profile = None in
  m.kblocks <-
    Array.map
      (fun (cf : Code.cfunc) ->
        let code = cf.Code.code in
        let n = Array.length code in
        let tbl = Array.make n None in
        if fuse && n > 0 then begin
          let l = leaders cf in
          let kc = m.kcode.(cf.Code.cf_id) in
          let hardened = cf.Code.cf_hardened in
          for s = 0 to n - 1 do
            if l.(s) && not (is_ender code.(s)) then begin
              let e = ref (s + 1) in
              while !e < n && (not (is_ender code.(!e))) && not l.(!e) do
                incr e
              done;
              let plen = !e - s in
              let ok = ref true in
              for j = s to !e - 1 do
                if not (fusable cfg ~hardened code.(j)) then ok := false
              done;
              if !ok && !e < n then
                if l.(!e) then tbl.(s) <- Some (compile_block m cf kc s plen None)
                else tbl.(s) <- Some (compile_block m cf kc s plen (Some !e))
            end
          done
        end;
        tbl)
      m.code.Code.cfuncs

(* ---- scheduler ---- *)

let quantum = 256

(* One scheduling quantum under the reference interpreter.  The traced and
   untraced loops are split so the common (untraced) path never examines
   [cfg.trace] per instruction. *)
let ref_quantum (m : t) (th : thread) =
  match m.cfg.trace with
  | None ->
      let continue_ = ref true in
      let k = ref 0 in
      while !continue_ && !k < quantum do
        incr k;
        continue_ := step m th
      done
  | Some buf ->
      let continue_ = ref true in
      let k = ref 0 in
      while !continue_ && !k < quantum do
        incr k;
        emit_trace buf th;
        continue_ := step m th
      done

(* One scheduling quantum under the closure engine.  The program counter
   lives in a local between closures; [fr.pc] is written back only when
   the quantum budget expires mid-frame (frame switches maintain it
   inline, per the closure return protocol). *)
let closure_quantum (m : t) (th : thread) =
  let budget = ref quantum in
  let running = ref true in
  while !running && !budget > 0 do
    let fr = List.hd th.frames in
    let code = m.kcode.(fr.cf.Code.cf_id) in
    let pc = ref fr.pc in
    let switched = ref false in
    while (not !switched) && !budget > 0 do
      let r = code.(!pc) th fr in
      decr budget;
      if r >= 0 then pc := r
      else begin
        switched := true;
        if r = k_yield then running := false
      end
    done;
    if not !switched then fr.pc <- !pc
  done

(* One scheduling quantum under the block engine.  At a fused block start
   the whole superblock runs as one closure and the budget is debited
   once by its dynamic length; everywhere else (deoptimized blocks,
   mid-block pcs after a budget expiry or snapshot restore, blocks longer
   than the remaining budget, the [max_instrs] ceiling) execution falls
   back to the per-instruction closures.  Quanta therefore end after
   exactly the same instruction counts as the other engines, preserving
   snapshot/abort/chaos boundary semantics, and the ceiling check
   guarantees [Hang] can never fire inside a fused block. *)
let block_quantum (m : t) (th : thread) =
  let max_instrs = m.cfg.max_instrs in
  let budget = ref quantum in
  let running = ref true in
  while !running && !budget > 0 do
    let fr = List.hd th.frames in
    let cfid = fr.cf.Code.cf_id in
    let code = m.kcode.(cfid) in
    let blocks = m.kblocks.(cfid) in
    let pc = ref fr.pc in
    let switched = ref false in
    while (not !switched) && !budget > 0 do
      let r =
        match blocks.(!pc) with
        | Some fb
          when fb.fb_len <= !budget
               && m.total_instrs + fb.fb_len <= max_instrs ->
            budget := !budget - fb.fb_len;
            fb.fb_exec th fr
        | _ ->
            decr budget;
            code.(!pc) th fr
      in
      if r >= 0 then pc := r
      else begin
        switched := true;
        if r = k_yield then running := false
      end
    done;
    if not !switched then fr.pc <- !pc
  done

let pick_next (m : t) : thread option =
  let best = ref None in
  List.iter
    (fun th ->
      if th.status = Running then
        match !best with
        | Some b when Timing.cycle b.timing <= Timing.cycle th.timing -> ()
        | _ -> best := Some th)
    m.threads;
  !best

let sync_counters (m : t) =
  List.iter
    (fun th ->
      if th.status <> Done then
        th.ctr.Counters.cycles <- Timing.cycle th.timing - th.start_cycle)
    m.threads

let make_result (m : t) (trap : trap_reason option) : result =
  sync_counters m;
  let threads = List.rev m.threads in
  let counters = List.map (fun th -> th.ctr) threads in
  let totals = List.fold_left Counters.add (Counters.create ()) counters in
  let wall =
    List.fold_left
      (fun acc th -> max acc (if th.status = Done then th.final_cycle else Timing.cycle th.timing))
      0 m.threads
  in
  let out = Buffer.contents m.output in
  {
    wall_cycles = wall;
    counters;
    totals;
    output_digest = Digest.string out;
    output_bytes = out;
    trap;
    recovered_faults = m.recovered;
    retried_faults = m.retried;
    reexecutions = m.reexecs;
    inject_sites = m.inj_count;
    mem_sites = m.mem_count;
    branch_sites = m.br_count;
    fault_injected = m.injected;
    inject_class = (if m.injected then Some m.inject_class else None);
    detect_latency =
      (if m.injected && m.detect_instr >= 0 then Some (m.detect_instr - m.inject_instr)
       else None);
  }

(* Drives the scheduler until every thread is done (or the machine traps),
   under the configured engine.  [on_quantum] fires after every scheduling
   quantum — the hook the fault campaign uses to capture snapshots at
   deterministic (quantum-boundary) points. *)
let resume ?on_quantum (m : t) : result =
  (match m.cfg.engine with
  | Reference -> ()
  | Closure -> if Array.length m.kcode = 0 then kcompile m
  | Block ->
      if Array.length m.kcode = 0 then kcompile m;
      if Array.length m.kblocks = 0 then kcompile_blocks m);
  let run_quantum =
    match m.cfg.engine with
    | Reference -> ref_quantum
    | Closure -> closure_quantum
    | Block -> block_quantum
  in
  (* chaos fires once, at the first quantum boundary of this drive; the
     abort hook is polled at every one.  Both raise out of [loop] — past
     the [Trap] handler below — so neither can be mistaken for an
     experiment outcome. *)
  let chaos_pending = ref (m.cfg.chaos <> None) in
  let rec loop () =
    match pick_next m with
    | Some th ->
        run_quantum m th;
        (match on_quantum with Some f -> f m | None -> ());
        if !chaos_pending then begin
          chaos_pending := false;
          match m.cfg.chaos with Some f -> f () | None -> ()
        end;
        (match m.cfg.abort with Some f when f () -> raise Abort | _ -> ());
        loop ()
    | None ->
        if List.for_all (fun th -> th.status = Done) m.threads then ()
        else begin
          (* waiting threads whose target has finished were woken eagerly;
             anything left is a deadlock *)
          List.iter
            (fun th ->
              match th.status with
              | Waiting tid -> (
                  match find_thread m tid with
                  | Some t when t.status = Done ->
                      th.status <- Running;
                      Timing.sync_to th.timing t.final_cycle
                  | _ -> ())
              | Waiting_barrier _ | Running | Done -> ())
            m.threads;
          if List.exists (fun th -> th.status = Running) m.threads then loop ()
          else raise (Trap Deadlock)
        end
  in
  match loop () with
  | () -> make_result m None
  | exception Trap r ->
      (* a trap is a detection event for latency purposes *)
      note_detect m;
      make_result m (Some r)

(* Runs [entry] with scalar [args] to completion of all threads. *)
let run ?(args = [||]) ?on_quantum (m : t) (entry : string) : result =
  let cf = Code.lookup m.code entry in
  ignore (spawn_thread m cf args ~start_cycle:0);
  resume ?on_quantum m

(* ---- machine snapshots (campaign fast-forward) ---- *)

(* A snapshot is a deep, self-contained copy of the architectural and
   micro-architectural state at a quantum boundary of a fault-free run.
   Memory is captured copy-on-write style: the first snapshot copies the
   whole image and turns on cumulative dirty-page journaling, later ones
   store only the pages dirtied since that base — so a chain of snapshots
   over a 64 MB address space costs one image plus the working set.
   [Code.t] and undo-log spines are immutable and shared. *)

type frame_snap = {
  f_cf : Code.cfunc;
  f_regs : int64 array;
  f_ready : int array;
  f_pc : int;
  f_ret_off : int;
  f_saved_sp : int64;
}

type ckpt_snap = {
  k_frame_idx : int;  (** position of [ck_frame] in the thread's frame list *)
  k_cf : Code.cfunc;
  k_args : int64 array;
  k_ret_off : int;
  k_sp : int64;
  k_out_len : int;
  k_log : (int64 * int * int64) list;
  k_log_len : int;
  k_valid : bool;
  k_tries : int;
}

type thread_snap = {
  t_tid : int;
  t_frames : frame_snap array;  (** innermost first *)
  t_timing : Timing.t;
  t_cache : Cache.t;
  t_bpred : Branch_pred.t;
  t_ctr : Counters.t;
  t_status : status;
  t_sp : int64;
  t_start_cycle : int;
  t_final_cycle : int;
  t_ck : ckpt_snap option;
}

type snapshot = {
  sn_code : Code.t;  (** immutable, shared with the source machine *)
  sn_base : Bytes.t;
  sn_pages : (int * Bytes.t) array;
  sn_meta : Memory.meta;
  sn_threads : thread_snap list;  (** in [m.threads] order *)
  sn_nthreads : int;
  sn_output : string;
  sn_allocs : (int64 * int) list;
  sn_total_instrs : int;
  sn_inj_count : int;
  sn_mem_count : int;
  sn_br_count : int;
  sn_recovered : int;
  sn_retried : int;
  sn_reexecs : int;
}

(* Fault-site counters consumed up to this snapshot, in the order
   (register sites, memory sites, branch sites) — what the campaign uses
   to pick the greatest snapshot strictly below an injection site. *)
let snapshot_sites (sn : snapshot) = (sn.sn_inj_count, sn.sn_mem_count, sn.sn_br_count)
let snapshot_instrs (sn : snapshot) = sn.sn_total_instrs

let snapshot (m : t) : snapshot =
  if m.injected then invalid_arg "Machine.snapshot: fault already injected";
  if Bytes.length m.snap_base = 0 then begin
    m.snap_base <- Bytes.copy m.mem.Memory.data;
    Memory.journal_start m.mem
  end;
  let snap_thread (th : thread) : thread_snap =
    let frames =
      Array.of_list
        (List.map
           (fun (fr : frame) ->
             {
               f_cf = fr.cf;
               f_regs = Array.copy fr.regs;
               f_ready = Array.copy fr.ready;
               f_pc = fr.pc;
               f_ret_off = fr.ret_off;
               f_saved_sp = fr.saved_sp;
             })
           th.frames)
    in
    let ck =
      match th.ck with
      | None -> None
      | Some ck ->
          (* [ck_frame] is physically in [th.frames] whenever a checkpoint
             is live, so the identity survives as a list index *)
          let idx = ref (-1) in
          List.iteri (fun i f -> if f == ck.ck_frame then idx := i) th.frames;
          if !idx < 0 then invalid_arg "Machine.snapshot: detached checkpoint frame";
          Some
            {
              k_frame_idx = !idx;
              k_cf = ck.ck_cf;
              k_args = Array.copy ck.ck_args;
              k_ret_off = ck.ck_ret_off;
              k_sp = ck.ck_sp;
              k_out_len = ck.ck_out_len;
              k_log = ck.ck_log;  (* immutable spine and cells *)
              k_log_len = ck.ck_log_len;
              k_valid = ck.ck_valid;
              k_tries = ck.ck_tries;
            }
    in
    {
      t_tid = th.tid;
      t_frames = frames;
      t_timing = Timing.copy th.timing;
      t_cache = Cache.copy th.cache;
      t_bpred = Branch_pred.copy th.bpred;
      t_ctr = Counters.copy th.ctr;
      t_status = th.status;
      t_sp = th.sp;
      t_start_cycle = th.start_cycle;
      t_final_cycle = th.final_cycle;
      t_ck = ck;
    }
  in
  {
    sn_code = m.code;
    sn_base = m.snap_base;
    sn_pages = Memory.journal_capture m.mem;
    sn_meta = Memory.meta m.mem;
    sn_threads = List.map snap_thread m.threads;
    sn_nthreads = m.nthreads;
    sn_output = Buffer.contents m.output;
    sn_allocs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.alloc_sizes [];
    sn_total_instrs = m.total_instrs;
    sn_inj_count = m.inj_count;
    sn_mem_count = m.mem_count;
    sn_br_count = m.br_count;
    sn_recovered = m.recovered;
    sn_retried = m.retried;
    sn_reexecs = m.reexecs;
  }

let rec list_drop n l = if n <= 0 then l else list_drop (n - 1) (List.tl l)

(* Rebuilds a runnable machine from [sn] under [cfg] (typically a config
   that arms an injection).  The restored machine continues with [resume].
   Fault-site counters keep their snapshot values, so a plan drawn against
   the full golden run stays valid: site number k still fires at the same
   dynamic instruction. *)
(* Per-domain memory pool for [restore ~reuse:true]: the last restored
   run's memory, re-imaged in place (dirty pages reverted against the
   shared base) instead of re-copying the whole image for every
   experiment.  Keyed by physical identity of the base image, so a
   snapshot chain from a different golden run falls back to a fresh
   copy. *)
let mem_pool : (Bytes.t * Memory.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let restore ?(cfg = default_config) ?(reuse = false) (sn : snapshot) : t =
  let mem =
    let pool = Domain.DLS.get mem_pool in
    match !pool with
    | Some (base, pm) when reuse && base == sn.sn_base ->
        Memory.reimage pm ~base ~pages:sn.sn_pages sn.sn_meta;
        pm
    | _ ->
        let fresh = Memory.of_image ~base:sn.sn_base ~pages:sn.sn_pages sn.sn_meta in
        if reuse then pool := Some (sn.sn_base, fresh);
        fresh
  in
  let alloc_sizes = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace alloc_sizes k v) sn.sn_allocs;
  let m =
    {
      code = sn.sn_code;
      mem;
      threads = [];
      by_tid = [||];
      kcode = [||];
      kblocks = [||];
      snap_base = Bytes.empty;
      nthreads = sn.sn_nthreads;
      output = Buffer.create (String.length sn.sn_output + 256);
      alloc_sizes;
      cfg;
      total_instrs = sn.sn_total_instrs;
      inj_count = sn.sn_inj_count;
      mem_count = sn.sn_mem_count;
      br_count = sn.sn_br_count;
      injected = false;
      recovered = sn.sn_recovered;
      retried = sn.sn_retried;
      reexecs = sn.sn_reexecs;
      addr_mask = 0L;
      mem_flip_armed = false;
      cf_divert = false;
      inject_instr = -1;
      detect_instr = -1;
      inject_class = "";
    }
  in
  Buffer.add_string m.output sn.sn_output;
  let restore_thread (ts : thread_snap) : thread =
    let frames =
      Array.to_list
        (Array.map
           (fun fs ->
             {
               cf = fs.f_cf;
               regs = Array.copy fs.f_regs;
               ready = Array.copy fs.f_ready;
               pc = fs.f_pc;
               ret_off = fs.f_ret_off;
               saved_sp = fs.f_saved_sp;
             })
           ts.t_frames)
    in
    let ck =
      match ts.t_ck with
      | None -> None
      | Some k ->
          Some
            {
              ck_cf = k.k_cf;
              ck_args = Array.copy k.k_args;
              ck_ret_off = k.k_ret_off;
              ck_sp = k.k_sp;
              ck_caller = list_drop (k.k_frame_idx + 1) frames;
              ck_out_len = k.k_out_len;
              ck_frame = List.nth frames k.k_frame_idx;
              ck_log = k.k_log;
              ck_log_len = k.k_log_len;
              ck_valid = k.k_valid;
              ck_tries = k.k_tries;
            }
    in
    {
      tid = ts.t_tid;
      frames;
      timing = Timing.copy ts.t_timing;
      cache = Cache.copy ts.t_cache;
      bpred = Branch_pred.copy ts.t_bpred;
      ctr = Counters.copy ts.t_ctr;
      status = ts.t_status;
      sp = ts.t_sp;
      start_cycle = ts.t_start_cycle;
      final_cycle = ts.t_final_cycle;
      ck;
    }
  in
  m.threads <- List.map restore_thread sn.sn_threads;
  (match m.threads with
  | [] -> ()
  | any :: _ ->
      let by_tid = Array.make (max m.nthreads 1) any in
      List.iter (fun th -> by_tid.(th.tid) <- th) m.threads;
      m.by_tid <- by_tid);
  m

(* Convenience: build, run, and return the result in one call. *)
let run_module ?(cfg = default_config) ?(flags_cmp = false) ?(args = [||])
    (modul : Ir.Instr.modul) (entry : string) : result =
  let m = create ~cfg ~flags_cmp modul in
  run ~args m entry
