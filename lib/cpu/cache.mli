(** L1 data cache model: set-associative, LRU, 64-byte lines, with a
    next-line prefetch on miss (the effect of hardware stream prefetchers
    on unit-stride code).  Feeds load latencies and the L1-miss counters of
    the paper's Table II. *)

type t = {
  ways : int;
  sets : int;
  tags : int array;
  stamps : int array;
  mutable tick : int;
  mutable refs : int;
  mutable misses : int;
}

val create : ?size_kb:int -> ?ways:int -> unit -> t

(** Independent deep copy (for machine snapshots). *)
val copy : t -> t

val hit_latency : int
val miss_latency : int

(** Inserts a line without counting an access (prefetch path). *)
val insert : t -> int -> unit

(** Touches the line containing the address; returns the access latency. *)
val access : t -> int64 -> int

val miss_ratio : t -> float
val reset : t -> unit
