(** Per-instruction-class cycle attribution table (see profile.mli). *)

type cell = { mutable p_instrs : int; mutable p_cycles : int }

type t = (string, cell) Hashtbl.t

let create () : t = Hashtbl.create 16

let add (t : t) (cls : string) ~(cycles : int) : unit =
  let c =
    match Hashtbl.find_opt t cls with
    | Some c -> c
    | None ->
        let c = { p_instrs = 0; p_cycles = 0 } in
        Hashtbl.replace t cls c;
        c
  in
  c.p_instrs <- c.p_instrs + 1;
  c.p_cycles <- c.p_cycles + max 0 cycles

let rows (t : t) : (string * int * int) list =
  let all = Hashtbl.fold (fun k c acc -> (k, c.p_instrs, c.p_cycles) :: acc) t [] in
  List.sort
    (fun (ka, _, ca) (kb, _, cb) ->
      if ca <> cb then compare cb ca else compare ka kb)
    all

let total (t : t) : int * int =
  Hashtbl.fold (fun _ c (i, cy) -> (i + c.p_instrs, cy + c.p_cycles)) t (0, 0)

let pp fmt (t : t) =
  let ti, tc = total t in
  Format.fprintf fmt "%-8s %12s %12s %8s@." "class" "instrs" "cycles" "cyc/in";
  List.iter
    (fun (cls, instrs, cycles) ->
      Format.fprintf fmt "%-8s %12d %12d %8.2f@." cls instrs cycles
        (float_of_int cycles /. float_of_int (max 1 instrs)))
    (rows t);
  Format.fprintf fmt "%-8s %12d %12d@." "total" ti tc
