(** Flat simulated memory shared by all threads, with a static region for
    globals, a first-fit heap, and per-thread stacks carved from the top.
    The first page is unmapped so null dereferences trap.

    The paper assumes memory is ECC-protected and outside the fault model
    (§III-A); the expanded taxonomy deliberately breaks that assumption:
    {!Machine}'s [Mem_flip] fault kind flips bits in this memory directly
    (bypassing any undo log), to measure what ELZAR's register-level
    replication cannot catch. *)

type t = {
  data : Bytes.t;
  size : int;
  mutable static_brk : int;
  mutable heap_base : int;
  mutable heap_limit : int;
  mutable free_list : (int * int) list;
  mutable stack_top : int;
  mutable journal : Bytes.t;
      (** dirty-page bitset for snapshot deltas; empty = tracking off *)
}

(** Access outside mapped memory. *)
exception Fault of int64

exception Out_of_memory

val page : int
val create : ?size:int -> unit -> t
val align16 : int -> int

(** @raise Fault when [addr, addr+w) is not mapped. *)
val check : t -> int64 -> int -> unit

(** [read m ~width addr] returns the value zero-extended to 64 bits;
    [width] is 1, 2, 4 or 8. *)
val read : t -> width:int -> int64 -> int64

val write : t -> width:int -> int64 -> int64 -> unit

(** Globals region, allocated once at load time. *)
val alloc_static : t -> int -> int64

val blit_string : t -> string -> int64 -> unit

(** Sets up the heap between the globals and the stack reserve. *)
val heap_init : t -> stack_reserve:int -> unit

val malloc : t -> int -> int64
val free : t -> int64 -> int -> unit
val alloc_stack : t -> int -> int64

(** Allocator metadata captured alongside a snapshot image. *)
type meta

val meta : t -> meta

(** Starts cumulative dirty-page tracking (copy-on-write-style capture):
    every subsequent store marks its page, and the set is never cleared, so
    each later {!journal_capture} is a self-contained delta against the
    memory image at this call. *)
val journal_start : t -> unit

(** Copies of all pages dirtied since {!journal_start}, sorted by page. *)
val journal_capture : t -> (int * Bytes.t) array

(** Rebuilds a memory from a base image plus a page delta.  Dirty-page
    tracking stays on in the clone so {!reimage} can later reuse it. *)
val of_image : base:Bytes.t -> pages:(int * Bytes.t) array -> meta -> t

(** [reimage m ~base ~pages mt] resets a memory previously built by
    {!of_image} from the very same [base] (physical identity — the caller
    checks) to a fresh base+delta state, reverting only the pages known
    dirty instead of re-copying the whole image.  The cheap path behind
    per-experiment machine reuse in fault campaigns. *)
val reimage : t -> base:Bytes.t -> pages:(int * Bytes.t) array -> meta -> unit
