(** Out-of-order superscalar timing engine (one instance per simulated core).

    The model is a lightweight Tomasulo approximation: instructions dispatch
    in order, four μops per cycle, into a 192-entry window; each μop issues
    at the earliest cycle at which its inputs are ready and one of its
    allowed execution ports is free, and completes after its latency.  Load
    latencies arrive from the cache model; branch mispredictions flush
    dispatch.  Wall-clock cycles and the resulting ILP are what the paper's
    Tables II/III and all normalized-runtime figures are built from. *)

type t = {
  port_free : int array;
  mutable bus_free : int;  (** next cycle the L1-miss memory pipe is free *)
  mutable dispatch_cycle : int;
  mutable dispatch_used : int;
  mutable horizon : int;  (** latest completion seen *)
  rob : int array;  (** completion times of the last [rob_size] μops *)
  mutable rob_pos : int;
}

let width = 4
let rob_size = 192

let create () =
  {
    port_free = Array.make Cost.nports 0;
    bus_free = 0;
    dispatch_cycle = 0;
    dispatch_used = 0;
    horizon = 0;
    rob = Array.make rob_size 0;
    rob_pos = 0;
  }

(* Independent deep copy, for machine snapshots: the campaign fast-forward
   resumes a core's clock mid-run, so the whole pipe state must travel. *)
let copy (t : t) : t =
  { t with port_free = Array.copy t.port_free; rob = Array.copy t.rob }

let reset (t : t) =
  Array.fill t.port_free 0 Cost.nports 0;
  t.bus_free <- 0;
  t.dispatch_cycle <- 0;
  t.dispatch_used <- 0;
  t.horizon <- 0;
  Array.fill t.rob 0 rob_size 0;
  t.rob_pos <- 0

(* Current core clock: dispatch cannot be behind, completions cannot be
   ahead of it forever. *)
let cycle (t : t) = max t.dispatch_cycle t.horizon

let dispatch_one (t : t) =
  if t.dispatch_used >= width then begin
    t.dispatch_cycle <- t.dispatch_cycle + 1;
    t.dispatch_used <- 0
  end;
  (* window limit: cannot dispatch past an unretired μop 192 entries back *)
  let oldest = t.rob.(t.rob_pos) in
  if oldest > t.dispatch_cycle then begin
    t.dispatch_cycle <- oldest;
    t.dispatch_used <- 0
  end;
  t.dispatch_used <- t.dispatch_used + 1;
  t.dispatch_cycle

(* Issues the μop sequence of one instruction whose inputs are ready at
   [ready]; returns the cycle at which its result is available.  [mem_lat]
   substitutes the latency of μops flagged [Mload]. *)
let exec (t : t) ~(ready : int) ~(mem_lat : int) (uops : Cost.uop array) : int =
  let n = Array.length uops in
  if n = 0 then ready
  else begin
    let last = ref ready and result = ref ready in
    for k = 0 to n - 1 do
      let u = uops.(k) in
      let dispatched = dispatch_one t in
      let dep = if u.Cost.chain then !last else ready in
      let earliest = max dep dispatched in
      (* pick the allowed port that frees up first *)
      let best_port = ref (-1) and best_time = ref max_int in
      for p = 0 to Cost.nports - 1 do
        if u.Cost.ports land (1 lsl p) <> 0 then begin
          let at = max t.port_free.(p) earliest in
          if at < !best_time then begin
            best_time := at;
            best_port := p
          end
        end
      done;
      let issue = ref !best_time in
      t.port_free.(!best_port) <- !issue + u.Cost.rt;
      (* an L1 miss additionally serializes on the per-core memory pipe *)
      let missed = mem_lat > Cache.hit_latency in
      (match u.Cost.mem with
      | Cost.Mload | Cost.Mstore when missed ->
          if t.bus_free > !issue then issue := t.bus_free;
          t.bus_free <- !issue + Cost.membus_rt
      | _ -> ());
      let issue = !issue in
      let lat = match u.Cost.mem with Cost.Mload -> mem_lat | _ -> u.Cost.lat in
      let completion = issue + lat in
      t.rob.(t.rob_pos) <- completion;
      t.rob_pos <- (t.rob_pos + 1) mod rob_size;
      if completion > t.horizon then t.horizon <- completion;
      last := completion;
      if completion > !result then result := completion
    done;
    !result
  end

(* ------------------------------------------------------------------ *)
(* Precompiled μop plans — the static half of the timing model.        *)
(*                                                                     *)
(* [exec] re-derives, for every dynamic instance of an instruction,    *)
(* facts that are fixed at compile time: the μop count, the decoded    *)
(* port set of each μop, whether it chains on the previous μop, and    *)
(* whether it touches memory.  The block engine compiles each          *)
(* instruction's μop sequence once into a [plan]; [exec_plan] then     *)
(* only evaluates the dynamic residue (port contention, the dispatch   *)
(* window, L1 hit/miss latency, the miss pipe) and is bit-identical    *)
(* to [exec] on the same sequence of calls.                            *)
(* ------------------------------------------------------------------ *)

type uplan = {
  up_lat : int;
  up_ports : int array;  (** port indices decoded from the mask, ascending *)
  up_rt : int;
  up_chain : bool;
  up_load : bool;  (** latency comes from the cache model *)
  up_membus : bool;  (** load or store: serializes on the L1-miss pipe *)
}

type plan =
  | Pempty
  | Palu1 of uplan  (** exactly one μop, no memory side — the common case *)
  | Pseq of uplan array

let ports_of_mask (mask : int) : int array =
  let l = ref [] in
  for p = Cost.nports - 1 downto 0 do
    if mask land (1 lsl p) <> 0 then l := p :: !l
  done;
  Array.of_list !l

let uplan_of (u : Cost.uop) : uplan =
  {
    up_lat = u.Cost.lat;
    up_ports = ports_of_mask u.Cost.ports;
    up_rt = u.Cost.rt;
    up_chain = u.Cost.chain;
    up_load = u.Cost.mem = Cost.Mload;
    up_membus =
      (match u.Cost.mem with
      | Cost.Mload | Cost.Mstore -> true
      | Cost.Mnone -> false);
  }

let plan_of_uops (uops : Cost.uop array) : plan =
  match Array.length uops with
  | 0 -> Pempty
  | 1 when uops.(0).Cost.mem = Cost.Mnone -> Palu1 (uplan_of uops.(0))
  | _ -> Pseq (Array.map uplan_of uops)

(* Port pick over a decoded ascending port list: issues the μop (updates
   the chosen port's free time by [rt]) and returns its issue cycle.
   Equivalent to [exec]'s mask scan: same ascending order, same strict
   [<], so ties resolve to the same (lowest-numbered) port. *)
let[@inline] pick_port (t : t) (ports : int array) (rt : int) (earliest : int) :
    int =
  if Array.length ports = 1 then begin
    let p0 = Array.unsafe_get ports 0 in
    let tp = t.port_free.(p0) in
    let at = if tp > earliest then tp else earliest in
    t.port_free.(p0) <- at + rt;
    at
  end
  else begin
    let p0 = Array.unsafe_get ports 0 in
    let t0 = t.port_free.(p0) in
    let best = ref p0
    and best_time = ref (if t0 > earliest then t0 else earliest) in
    for i = 1 to Array.length ports - 1 do
      let p = Array.unsafe_get ports i in
      let tp = t.port_free.(p) in
      let at = if tp > earliest then tp else earliest in
      if at < !best_time then begin
        best_time := at;
        best := p
      end
    done;
    t.port_free.(!best) <- !best_time + rt;
    !best_time
  end

let[@inline] finish_uop (t : t) (completion : int) =
  t.rob.(t.rob_pos) <- completion;
  t.rob_pos <- (t.rob_pos + 1) mod rob_size;
  if completion > t.horizon then t.horizon <- completion

(* Bit-identical replay of [exec] over a precompiled plan. *)
let exec_plan (t : t) ~(ready : int) ~(mem_lat : int) (p : plan) : int =
  match p with
  | Pempty -> ready
  | Palu1 u ->
      (* single non-memory μop: dep is [ready] whether or not it chains,
         and [mem_lat] cannot apply *)
      let dispatched = dispatch_one t in
      let earliest = if ready > dispatched then ready else dispatched in
      let issue = pick_port t u.up_ports u.up_rt earliest in
      let completion = issue + u.up_lat in
      finish_uop t completion;
      completion
  | Pseq us ->
      let n = Array.length us in
      let last = ref ready and result = ref ready in
      let missed = mem_lat > Cache.hit_latency in
      for k = 0 to n - 1 do
        let u = Array.unsafe_get us k in
        let dispatched = dispatch_one t in
        let dep = if u.up_chain then !last else ready in
        let earliest = if dep > dispatched then dep else dispatched in
        let issue = ref (pick_port t u.up_ports u.up_rt earliest) in
        if u.up_membus && missed then begin
          if t.bus_free > !issue then issue := t.bus_free;
          t.bus_free <- !issue + Cost.membus_rt
        end;
        let lat = if u.up_load then mem_lat else u.up_lat in
        let completion = !issue + lat in
        finish_uop t completion;
        last := completion;
        if completion > !result then result := completion
      done;
      !result

(* Branch misprediction: the front end refills after the branch resolves. *)
let mispredict (t : t) ~(resolved : int) =
  let restart = resolved + Cost.mispredict_penalty in
  if restart > t.dispatch_cycle then begin
    t.dispatch_cycle <- restart;
    t.dispatch_used <- 0
  end

(* Fixed-cost advancement for native builtins (OS work the paper leaves
   unhardened and we do not model at μop granularity). *)
let advance (t : t) n =
  t.dispatch_cycle <- cycle t + n;
  t.dispatch_used <- 0;
  if t.dispatch_cycle > t.horizon then t.horizon <- t.dispatch_cycle

(* Synchronization edge: this core observed an event at absolute cycle [c]
   (thread join, lock hand-over); it cannot proceed earlier. *)
let sync_to (t : t) c =
  if c > t.dispatch_cycle then begin
    t.dispatch_cycle <- c;
    t.dispatch_used <- 0
  end;
  if c > t.horizon then t.horizon <- c
