(** Gshare-style branch predictor (4K two-bit counters, global history);
    feeds the branch-miss counters of Table II and the mispredict flushes
    of the timing engine. *)

type t = {
  table : int array;
  mutable history : int;
  mutable branches : int;
  mutable misses : int;
}

val create : unit -> t

(** Independent deep copy (for machine snapshots). *)
val copy : t -> t

(** Records a conditional branch outcome; returns [true] when the
    prediction was wrong. *)
val record : t -> pc:int -> taken:bool -> bool

val miss_ratio : t -> float
val reset : t -> unit
