(** Per-core performance counters, the moral equivalent of the paper's
    perf-stat raw-event collection (Tables II and III). *)

type t = {
  mutable instrs : int;  (** retired IR instructions (incl. terminators) *)
  mutable uops : int;  (** μops — the x86-instruction proxy *)
  mutable avx_instrs : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable branch_misses : int;
  mutable l1_refs : int;
  mutable l1_misses : int;
  mutable cycles : int;  (** busy span of the core *)
}

val create : unit -> t

(** Independent copy (for machine snapshots). *)
val copy : t -> t

(** Pointwise sum; [cycles] is the max (cores run in parallel). *)
val add : t -> t -> t

val zero : unit -> t
val ratio : int -> int -> float
val ilp : t -> float
val l1_miss_pct : t -> float
val branch_miss_pct : t -> float
val loads_pct : t -> float
val stores_pct : t -> float
val branches_pct : t -> float
val pp : Format.formatter -> t -> unit
