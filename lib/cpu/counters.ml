(** Per-core performance counters, the moral equivalent of the paper's
    perf-stat raw-event collection (Tables II and III). *)

type t = {
  mutable instrs : int;  (** retired IR instructions (incl. terminators) *)
  mutable uops : int;
  mutable avx_instrs : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable branch_misses : int;
  mutable l1_refs : int;
  mutable l1_misses : int;
  mutable cycles : int;
}

let create () =
  {
    instrs = 0;
    uops = 0;
    avx_instrs = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    branch_misses = 0;
    l1_refs = 0;
    l1_misses = 0;
    cycles = 0;
  }

(* Independent copy, for machine snapshots (all fields are immediate). *)
let copy (c : t) : t = { c with instrs = c.instrs }

let add (a : t) (b : t) : t =
  {
    instrs = a.instrs + b.instrs;
    uops = a.uops + b.uops;
    avx_instrs = a.avx_instrs + b.avx_instrs;
    loads = a.loads + b.loads;
    stores = a.stores + b.stores;
    branches = a.branches + b.branches;
    branch_misses = a.branch_misses + b.branch_misses;
    l1_refs = a.l1_refs + b.l1_refs;
    l1_misses = a.l1_misses + b.l1_misses;
    cycles = max a.cycles b.cycles;
  }

let zero = create

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

(* Instruction-level parallelism achieved on one core (Table III). *)
let ilp (c : t) = ratio c.instrs c.cycles
let l1_miss_pct (c : t) = 100.0 *. ratio c.l1_misses c.l1_refs
let branch_miss_pct (c : t) = 100.0 *. ratio c.branch_misses c.branches
let loads_pct (c : t) = 100.0 *. ratio c.loads c.instrs
let stores_pct (c : t) = 100.0 *. ratio c.stores c.instrs
let branches_pct (c : t) = 100.0 *. ratio c.branches c.instrs

let pp fmt (c : t) =
  Format.fprintf fmt
    "instrs=%d uops=%d avx=%d loads=%d stores=%d branches=%d cycles=%d ilp=%.2f"
    c.instrs c.uops c.avx_instrs c.loads c.stores c.branches c.cycles (ilp c)
