(** Catalogue of native builtins: the unhardened OS/pthreads/IO layer
    (paper §IV-A) plus the ELZAR runtime markers ([elzar_fatal],
    [elzar_recovered], [elzar_retried], [elzar_reexec]).  Semantics live
    in {!Machine}; this module fixes identities, arities and fixed cycle
    costs. *)

type spec = {
  id : int;
  name : string;
  arity : int;
  has_ret : bool;
  cycles : int;  (** fixed cost charged to the calling core *)
}

val specs : spec array
val find : string -> spec option
val get : int -> spec
val is_builtin : string -> bool
