(** Catalogue of native builtins.

    Calls to functions not defined in the linked IR module resolve here.
    These model the parts the paper deliberately leaves unhardened — OS
    interfaces, pthreads, I/O (§IV-A: "their execution takes less than ~5%
    of the overall time") — plus the ELZAR runtime markers ([elzar_fatal],
    [elzar_recovered], [elzar_retried], [elzar_reexec]).  Semantics live
    in {!Machine}; this module only fixes identities, arities and fixed
    cycle costs. *)

type spec = {
  id : int;
  name : string;
  arity : int;
  has_ret : bool;
  cycles : int;  (** fixed cost charged to the calling core *)
}

let specs =
  [|
    { id = 0; name = "malloc"; arity = 1; has_ret = true; cycles = 120 };
    { id = 1; name = "free"; arity = 1; has_ret = false; cycles = 60 };
    { id = 2; name = "spawn"; arity = 2; has_ret = true; cycles = 1200 };
    { id = 3; name = "join"; arity = 1; has_ret = false; cycles = 300 };
    { id = 4; name = "lock"; arity = 1; has_ret = false; cycles = 30 };
    { id = 5; name = "unlock"; arity = 1; has_ret = false; cycles = 15 };
    { id = 6; name = "output_i64"; arity = 1; has_ret = false; cycles = 20 };
    { id = 7; name = "output_f64"; arity = 1; has_ret = false; cycles = 20 };
    { id = 8; name = "output_bytes"; arity = 2; has_ret = false; cycles = 40 };
    { id = 9; name = "rand64"; arity = 1; has_ret = true; cycles = 15 };
    { id = 10; name = "abort"; arity = 0; has_ret = false; cycles = 0 };
    { id = 11; name = "elzar_fatal"; arity = 0; has_ret = false; cycles = 0 };
    { id = 12; name = "elzar_recovered"; arity = 0; has_ret = false; cycles = 30 };
    { id = 13; name = "thread_id"; arity = 0; has_ret = true; cycles = 10 };
    { id = 14; name = "barrier"; arity = 2; has_ret = false; cycles = 80 };
    { id = 15; name = "elzar_retried"; arity = 0; has_ret = false; cycles = 30 };
    { id = 16; name = "elzar_reexec"; arity = 0; has_ret = false; cycles = 0 };
  |]

let find name = Array.find_opt (fun s -> s.name = name) specs
let get id = specs.(id)
let is_builtin name = find name <> None
