(** Flat simulated memory with a first-fit allocator.

    One address space is shared by all simulated threads (the memory
    subsystem is assumed ECC-protected and is outside the fault model,
    paper §III-A).  The first page is kept unmapped so that null and
    near-null dereferences trap, which the fault-injection campaign
    classifies as OS-detected crashes. *)

type t = {
  data : Bytes.t;
  size : int;
  mutable static_brk : int;  (** globals region bump pointer *)
  mutable heap_base : int;
  mutable heap_limit : int;  (** heap may not grow past this *)
  mutable free_list : (int * int) list;  (** (addr, len), address-ordered *)
  mutable stack_top : int;
  mutable journal : Bytes.t;
      (** dirty-page bitset (one bit per page); length 0 = tracking off *)
}

exception Fault of int64  (** access outside mapped memory *)

let page = 4096
let page_bits = 12

let create ?(size = 1 lsl 26) () =
  {
    data = Bytes.make size '\000';
    size;
    static_brk = page;
    heap_base = 0;
    heap_limit = size;
    free_list = [];
    stack_top = size;
    journal = Bytes.empty;
  }

let align16 n = (n + 15) land lnot 15

let check (m : t) (addr : int64) (w : int) =
  let a = Int64.to_int addr in
  if addr < Int64.of_int page || a + w > m.size || a < 0 then raise (Fault addr)

let read (m : t) ~(width : int) (addr : int64) : int64 =
  check m addr width;
  let a = Int64.to_int addr in
  match width with
  | 1 -> Int64.of_int (Bytes.get_uint8 m.data a)
  | 2 -> Int64.of_int (Bytes.get_uint16_le m.data a)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le m.data a)) 0xFFFFFFFFL
  | 8 -> Bytes.get_int64_le m.data a
  | _ -> invalid_arg "Memory.read: bad width"

(* Marks the page(s) overlapped by a write.  [check] has already bounded
   the access, so the page indices are in range. *)
let mark_dirty (m : t) (a : int) (w : int) =
  let mark p = Bytes.set_uint8 m.journal (p lsr 3)
      (Bytes.get_uint8 m.journal (p lsr 3) lor (1 lsl (p land 7))) in
  let p0 = a lsr page_bits and p1 = (a + w - 1) lsr page_bits in
  mark p0;
  if p1 <> p0 then mark p1

let write (m : t) ~(width : int) (addr : int64) (v : int64) : unit =
  check m addr width;
  let a = Int64.to_int addr in
  if Bytes.length m.journal > 0 then mark_dirty m a width;
  match width with
  | 1 -> Bytes.set_uint8 m.data a (Int64.to_int v land 0xFF)
  | 2 -> Bytes.set_uint16_le m.data a (Int64.to_int v land 0xFFFF)
  | 4 -> Bytes.set_int32_le m.data a (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le m.data a v
  | _ -> invalid_arg "Memory.write: bad width"

(* ---- static data (globals), allocated once at load time ---- *)

let alloc_static (m : t) (n : int) : int64 =
  let addr = m.static_brk in
  m.static_brk <- align16 (m.static_brk + n);
  if m.static_brk >= m.size then failwith "Memory.alloc_static: out of memory";
  m.heap_base <- m.static_brk;
  Int64.of_int addr

let blit_string (m : t) (s : string) (addr : int64) =
  check m addr (String.length s);
  if Bytes.length m.journal > 0 && String.length s > 0 then
    mark_dirty m (Int64.to_int addr) (String.length s);
  Bytes.blit_string s 0 m.data (Int64.to_int addr) (String.length s)

(* ---- heap ---- *)

exception Out_of_memory

let heap_init (m : t) ~(stack_reserve : int) =
  if m.heap_base = 0 then m.heap_base <- m.static_brk;
  m.heap_limit <- m.size - stack_reserve;
  if m.heap_limit <= m.heap_base then failwith "Memory.heap_init: globals leave no heap";
  m.free_list <- [ (m.heap_base, m.heap_limit - m.heap_base) ]

let malloc (m : t) (n : int) : int64 =
  let n = align16 (max n 16) in
  let rec take acc = function
    | [] -> raise Out_of_memory
    | (addr, len) :: rest when len >= n ->
        let remainder = if len > n then [ (addr + n, len - n) ] else [] in
        m.free_list <- List.rev_append acc (remainder @ rest);
        Int64.of_int addr
    | chunk :: rest -> take (chunk :: acc) rest
  in
  take [] m.free_list

let free (m : t) (addr : int64) (len : int) : unit =
  let len = align16 (max len 16) in
  let rec insert = function
    | [] -> [ (Int64.to_int addr, len) ]
    | (a, l) :: rest when Int64.to_int addr < a -> (Int64.to_int addr, len) :: (a, l) :: rest
    | chunk :: rest -> chunk :: insert rest
  in
  m.free_list <- insert m.free_list

(* ---- per-thread stacks, carved from the top of memory ---- *)

let alloc_stack (m : t) (n : int) : int64 =
  m.stack_top <- m.stack_top - align16 n;
  if m.stack_top < m.heap_limit then failwith "Memory.alloc_stack: out of stack space";
  Int64.of_int m.stack_top

(* ---- snapshot support (campaign fast-forward) ---- *)

(* Allocator metadata that travels with a snapshot. *)
type meta = {
  mt_static_brk : int;
  mt_heap_base : int;
  mt_heap_limit : int;
  mt_free_list : (int * int) list;
  mt_stack_top : int;
}

let meta (m : t) : meta =
  {
    mt_static_brk = m.static_brk;
    mt_heap_base = m.heap_base;
    mt_heap_limit = m.heap_limit;
    mt_free_list = m.free_list;
    mt_stack_top = m.stack_top;
  }

(* Starts copy-on-write-style page tracking: from here on, every simulated
   store marks its page dirty.  The set is cumulative (never cleared), so
   any later [journal_capture] is a self-contained delta against the image
   taken at this point — dropping intermediate snapshots stays sound. *)
let journal_start (m : t) =
  m.journal <- Bytes.make ((m.size lsr page_bits) / 8 + 1) '\000'

(* Copies of all pages dirtied since [journal_start], sorted by page. *)
let journal_capture (m : t) : (int * Bytes.t) array =
  let pages = ref [] in
  let npages = m.size lsr page_bits in
  for p = npages - 1 downto 0 do
    if Bytes.get_uint8 m.journal (p lsr 3) land (1 lsl (p land 7)) <> 0 then
      pages := (p, Bytes.sub m.data (p lsl page_bits) page) :: !pages
  done;
  Array.of_list !pages

let set_meta (m : t) (mt : meta) =
  m.static_brk <- mt.mt_static_brk;
  m.heap_base <- mt.mt_heap_base;
  m.heap_limit <- mt.mt_heap_limit;
  m.free_list <- mt.mt_free_list;
  m.stack_top <- mt.mt_stack_top

(* Applies a snapshot's page delta, marking the pages dirty: after this,
   the journal is exactly the set of pages that may differ from [base],
   which is what [reimage] needs to revert cheaply. *)
let apply_pages (m : t) (pages : (int * Bytes.t) array) =
  Array.iter
    (fun (p, b) ->
      mark_dirty m (p lsl page_bits) 1;
      Bytes.blit b 0 m.data (p lsl page_bits) (Bytes.length b))
    pages

(* Rebuilds a memory from a base image plus a page delta.  Journaling is
   left on in the clone so the pages the run dirties are known — that is
   what makes [reimage] able to reuse this memory for the next run. *)
let of_image ~(base : Bytes.t) ~(pages : (int * Bytes.t) array) (mt : meta) : t =
  let m =
    {
      data = Bytes.copy base;
      size = Bytes.length base;
      static_brk = 0;
      heap_base = 0;
      heap_limit = 0;
      free_list = [];
      stack_top = 0;
      journal = Bytes.empty;
    }
  in
  journal_start m;
  apply_pages m pages;
  set_meta m mt;
  m

(* Re-images a memory previously built by [of_image] from the same [base]
   (caller checks identity) into a fresh base+delta state, without copying
   the whole image: only the pages recorded dirty — the previous delta
   plus everything the previous run stored to — are reverted.  This is the
   per-experiment fast path of campaign fast-forward: the full-image copy
   is paid once per (domain, golden run), not once per injection. *)
let reimage (m : t) ~(base : Bytes.t) ~(pages : (int * Bytes.t) array) (mt : meta) : unit =
  let npages = m.size lsr page_bits in
  for byte = 0 to ((npages - 1) lsr 3) do
    let bits = Bytes.get_uint8 m.journal byte in
    if bits <> 0 then begin
      for b = 0 to 7 do
        let p = (byte lsl 3) + b in
        if bits land (1 lsl b) <> 0 && p < npages then
          Bytes.blit base (p lsl page_bits) m.data (p lsl page_bits) page
      done;
      Bytes.set_uint8 m.journal byte 0
    end
  done;
  apply_pages m pages;
  set_meta m mt
