(** L1 data cache model: 32 KB, 8-way set-associative, 64-byte lines, LRU.

    Only hit/miss classification is modeled (feeding load latency and the
    L1-miss counters of the paper's Table II); lower levels collapse into a
    single miss penalty. *)

type t = {
  ways : int;
  sets : int;
  tags : int array;  (** sets*ways entries; -1 = invalid *)
  stamps : int array;  (** LRU timestamps *)
  mutable tick : int;
  mutable refs : int;
  mutable misses : int;
}

let line_bits = 6

let create ?(size_kb = 32) ?(ways = 8) () =
  let lines = size_kb * 1024 / 64 in
  let sets = lines / ways in
  {
    ways;
    sets;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    tick = 0;
    refs = 0;
    misses = 0;
  }

(* Independent deep copy, for machine snapshots. *)
let copy (c : t) : t =
  { c with tags = Array.copy c.tags; stamps = Array.copy c.stamps }

let hit_latency = 4
let miss_latency = 44

let insert (c : t) (line : int) =
  let set = line mod c.sets in
  let base = set * c.ways in
  let rec find i = if i = c.ways then -1 else if c.tags.(base + i) = line then i else find (i + 1) in
  match find 0 with
  | i when i >= 0 -> c.stamps.(base + i) <- c.tick
  | _ ->
      let victim = ref 0 in
      for i = 1 to c.ways - 1 do
        if c.stamps.(base + i) < c.stamps.(base + !victim) then victim := i
      done;
      c.tags.(base + !victim) <- line;
      c.stamps.(base + !victim) <- c.tick

(* Touches the line containing [addr]; returns the access latency.  A miss
   also triggers a next-line prefetch, so unit-stride streams (linreg, the
   runtime library's memcpy/bzero) stop missing — the effect hardware
   stream prefetchers have on the paper's testbed. *)
let access (c : t) (addr : int64) : int =
  c.tick <- c.tick + 1;
  c.refs <- c.refs + 1;
  let line = Int64.to_int (Int64.shift_right_logical addr line_bits) in
  let set = line mod c.sets in
  let base = set * c.ways in
  let rec find i = if i = c.ways then -1 else if c.tags.(base + i) = line then i else find (i + 1) in
  match find 0 with
  | i when i >= 0 ->
      c.stamps.(base + i) <- c.tick;
      hit_latency
  | _ ->
      c.misses <- c.misses + 1;
      insert c line;
      insert c (line + 1);
      miss_latency

let miss_ratio (c : t) = if c.refs = 0 then 0.0 else float_of_int c.misses /. float_of_int c.refs

let reset (c : t) =
  Array.fill c.tags 0 (Array.length c.tags) (-1);
  Array.fill c.stamps 0 (Array.length c.stamps) 0;
  c.tick <- 0;
  c.refs <- 0;
  c.misses <- 0
