(** Configuration of the ELZAR hardening pass: the check toggles of
    Fig. 12, full vs floats-only protection (§V-B), the future-AVX mode of
    §VII, and the recovery strategy of §III-C step 3. *)

type recovery =
  | Basic  (** compare the two low lanes, broadcast lane 0 or lane n-1 *)
  | Extended  (** 3-lane majority vote; [elzar_fatal] when no majority *)
  | Reexec of int
      (** [Extended] plus a bounded re-vote loop and, as a last resort,
          checkpointed re-execution of the hardened call via the
          [elzar_reexec] runtime marker *)

type mode = Full | Floats_only

type t = {
  check_loads : bool;
  check_stores : bool;
  check_branches : bool;
  check_calls : bool;  (** calls, returns, atomics *)
  store_check_value : bool;
  mode : mode;
  future_avx : bool;
  recovery : recovery;
}

val default : t

(** The successive configurations of Fig. 12. *)
val no_load_checks : t

val no_memory_checks : t
val no_mem_branch_checks : t
val no_checks : t
val floats_only : t
val future_avx : t

(** [default] with [Extended] recovery. *)
val extended : t

(** [default] with [Reexec 2] recovery: two in-place re-votes, then one
    checkpointed re-execution of the hardened call. *)
val reexec : t

val to_string : t -> string
