(** The ELZAR transformation (paper §III-C, §IV-A).

    Data, not instructions, is replicated: every protected register becomes
    a YMM vector holding four or more copies of its value, computational
    instructions become their AVX counterparts, and synchronization
    instructions (loads, stores, branches, calls, atomics, returns) are
    wrapped with [extractlane]/[broadcast] plus the shuffle-xor-ptest checks
    of Fig. 8.  Branches use the AVX comparison + [ptest] sequence of
    Figs. 7/9 ([Vbr]); a mixed true/false mask diverts to an out-of-line
    recovery block that majority-votes the faulty register.  Function
    signatures are unchanged, so unhardened libraries and builtins are
    called transparently (§III-B).

    With [future_avx] set, loads and stores become the FPGA-checked
    [gather]/[scatter] accesses of §VII and vector branches lower to the
    proposed FLAGS-setting comparisons: the wrappers and memory checks
    disappear, which is what Fig. 17 estimates. *)

open Ir
open Instr

exception Unsupported of string

type st = {
  cfg : Harden_config.t;
  mutable nextr : int;
  mutable nlab : int;
  vmap : reg option array;  (** original rid -> vector counterpart *)
  mutable cur_label : string;
  mutable cur : t list;  (** current block, reversed *)
  mutable out : (string * block) list;  (** finished blocks, reversed *)
  mutable extra : (string * block) list;  (** out-of-line recovery blocks *)
  mutable fatal : string option;
}

let fresh st ?(name = "z") ty =
  let r = { rid = st.nextr; rname = name; rty = ty } in
  st.nextr <- st.nextr + 1;
  r

let flabel st prefix =
  st.nlab <- st.nlab + 1;
  Printf.sprintf "z.%s%d" prefix st.nlab

let emit st i = st.cur <- i :: st.cur

let close st term =
  st.out <- (st.cur_label, { instrs = List.rev st.cur; term }) :: st.out;
  st.cur <- []

let open_block st l = st.cur_label <- l

let protect_scalar (cfg : Harden_config.t) (s : Types.scalar) =
  match cfg.mode with
  | Harden_config.Full -> true
  | Harden_config.Floats_only -> Types.is_float s

let prot st (r : reg) = st.vmap.(r.rid) <> None

let vreg st (r : reg) =
  match st.vmap.(r.rid) with
  | Some v -> v
  | None -> invalid_arg ("Elzar_pass.vreg: unprotected register " ^ r.rname)

let canonical_mask_ty = Types.Vector (Types.I64, 4)

(* Maps an operand into the vector domain; unprotected registers and
   link-time constants pass through (constants splat for free). *)
let vop st (o : operand) : operand =
  match o with
  | Reg r -> ( match st.vmap.(r.rid) with Some v -> Reg v | None -> o)
  | Imm (Types.Scalar Types.I1, v) ->
      Imm (canonical_mask_ty, if v <> 0L then -1L else 0L)
  | Imm (Types.Scalar s, v) -> Imm (Types.ymm_of s, v)
  | Fimm (Types.Scalar s, v) -> Fimm (Types.ymm_of s, v)
  | Glob _ | Fref _ -> o
  | Imm (Types.Vector _, _) | Fimm (Types.Vector _, _) ->
      raise (Unsupported "vector immediate in input program")

let rotate_perm n = Array.init n (fun j -> (j + 1) mod n)

(* Scalar bit-equality of two lanes; floats compare on their encodings so
   that recovery is exact even around NaNs. *)
let lane_eq st (a : reg) (b : reg) : reg * t list =
  let s = match a.rty with Types.Scalar s -> s | _ -> assert false in
  let c = fresh st ~name:"eq" Types.i1 in
  if Types.is_float s then begin
    let ity = if s = Types.F32 then Types.i32 else Types.i64 in
    let ai = fresh st ~name:"bits" ity and bi = fresh st ~name:"bits" ity in
    ( c,
      [
        Cast (ai, Bitcast, Reg a);
        Cast (bi, Bitcast, Reg b);
        Icmp (c, Ieq, Reg ai, Reg bi);
      ] )
  end
  else (c, [ Icmp (c, Ieq, Reg a, Reg b) ])

let ensure_fatal st =
  match st.fatal with
  | Some l -> l
  | None ->
      let l = "z.fatal" in
      st.extra <- (l, { instrs = [ Call (None, "elzar_fatal", []) ]; term = Unreachable }) :: st.extra;
      st.fatal <- Some l;
      l

(* Builds the out-of-line recovery block(s) that repair vector register [v]
   and continue with [resume]; returns the entry label (paper §III-C step 3:
   the slow path need not be fast, only correct). *)
let recovery st (v : reg) (resume : terminator) : string =
  let s, n =
    match v.rty with Types.Vector (s, n) -> (s, n) | _ -> assert false
  in
  let sc = Types.Scalar s in
  let lab = flabel st "recover" in
  let ex i =
    let e = fresh st ~name:"lane" sc in
    (e, Extractlane (e, Reg v, i))
  in
  (match st.cfg.recovery with
  | Harden_config.Basic ->
      (* compare the two low elements; broadcast the low or the high one *)
      let e0, i0 = ex 0 and e1, i1 = ex 1 and en, ilast = ex (n - 1) in
      let c, eq_is = lane_eq st e0 e1 in
      let m = fresh st ~name:"maj" sc in
      let instrs =
        [ Call (None, "elzar_recovered", []); i0; i1; ilast ]
        @ eq_is
        @ [ Select (m, Reg c, Reg e0, Reg en); Broadcast (v, Reg m) ]
      in
      st.extra <- (lab, { instrs; term = resume }) :: st.extra
  | Harden_config.Extended | Harden_config.Reexec _ ->
      (* full 4-element analysis (paper §III-C step 3, extended strategy):
         (1) >=3 identical -> broadcast the majority;
         (2) exactly one agreeing pair -> broadcast the pair's value;
         (3) two 2-2 groups or all distinct -> no majority.
         The cases are distinguished by the number of agreeing element
         pairs: >=3, exactly 1, and anything else respectively.
         [Extended] fail-stops on no majority; [Reexec k] re-extracts the
         lanes and retries the vote up to [k] times, then calls the
         [elzar_reexec] runtime (checkpointed re-execution of the whole
         hardened call) before the machine finally fail-stops. *)
      let vote_analysis () =
        let e0, i0 = ex 0 and e1, i1 = ex 1 in
        let e2, i2 = ex 2 and e3, i3 = ex (min 3 (n - 1)) in
        let pairs = [ (e0, e1); (e0, e2); (e0, e3); (e1, e2); (e1, e3); (e2, e3) ] in
        let eqs = List.map (fun (a, b) -> lane_eq st a b) pairs in
        let total = fresh st ~name:"total" Types.i64 in
        let count_is =
          List.concat_map
            (fun (c, _) ->
              let z = fresh st ~name:"z" Types.i64 in
              [ Cast (z, Zext, Reg c); Binop (total, Add, Reg total, Reg z) ])
            eqs
        in
        let cs = List.map fst eqs in
        let c01, c02, c03, c12, c13 =
          match cs with
          | [ a; b; c; d; e; _ ] -> (a, b, c, d, e)
          | _ -> assert false
        in
        (* an element belonging to some agreeing pair: e0 if it matches
           anything, else e1, else e2 (a pair not involving e0/e1 must be
           (e2,e3)) *)
        let e0any1 = fresh st ~name:"p" Types.i1 in
        let e0any = fresh st ~name:"p" Types.i1 in
        let e1any = fresh st ~name:"p" Types.i1 in
        let m12 = fresh st ~name:"m12" sc in
        let m = fresh st ~name:"maj" sc in
        let pick_is =
          [
            Binop (e0any1, Or, Reg c01, Reg c02);
            Binop (e0any, Or, Reg e0any1, Reg c03);
            Binop (e1any, Or, Reg c12, Reg c13);
            Select (m12, Reg e1any, Reg e1, Reg e2);
            Select (m, Reg e0any, Reg e0, Reg m12);
          ]
        in
        let has_majority = fresh st ~name:"hasmaj" Types.i1 in
        let is_pair = fresh st ~name:"ispair" Types.i1 in
        let instrs =
          [ i0; i1; i2; i3; Mov (total, Imm (Types.i64, 0L)) ]
          @ List.concat_map snd eqs @ count_is @ pick_is
          @ [
              Icmp (has_majority, Isge, Reg total, Imm (Types.i64, 3L));
              Icmp (is_pair, Ieq, Reg total, Imm (Types.i64, 1L));
            ]
        in
        (instrs, has_majority, is_pair, m)
      in
      (match st.cfg.recovery with
      | Harden_config.Extended ->
          let instrs, has_majority, is_pair, m = vote_analysis () in
          let head = Call (None, "elzar_recovered", []) :: instrs in
          let vote = flabel st "vote" in
          let chk_pair = flabel st "pair" in
          let fatal = ensure_fatal st in
          st.extra <-
            (vote, { instrs = [ Broadcast (v, Reg m) ]; term = resume })
            :: (chk_pair, { instrs = []; term = Cond_br (Reg is_pair, vote, fatal) })
            :: (lab, { instrs = head; term = Cond_br (Reg has_majority, vote, chk_pair) })
            :: st.extra
      | Harden_config.Reexec k ->
          let tries = fresh st ~name:"tries" Types.i64 in
          let exhausted = fresh st ~name:"exh" Types.i1 in
          let loop = flabel st "revote" in
          let chk_pair = flabel st "pair" in
          let retry = flabel st "retry" in
          let reex = flabel st "reexec" in
          let vote = flabel st "vote" in
          let instrs, has_majority, is_pair, m = vote_analysis () in
          st.extra <-
            (vote, { instrs = [ Broadcast (v, Reg m) ]; term = resume })
            :: ( reex,
                 { instrs = [ Call (None, "elzar_reexec", []) ]; term = Unreachable } )
            :: ( retry,
                 {
                   instrs =
                     [
                       Call (None, "elzar_retried", []);
                       Binop (tries, Add, Reg tries, Imm (Types.i64, 1L));
                       Icmp (exhausted, Isge, Reg tries, Imm (Types.i64, Int64.of_int k));
                     ];
                   term = Cond_br (Reg exhausted, reex, loop);
                 } )
            :: (chk_pair, { instrs = []; term = Cond_br (Reg is_pair, vote, retry) })
            :: (loop, { instrs; term = Cond_br (Reg has_majority, vote, chk_pair) })
            :: ( lab,
                 {
                   instrs =
                     [ Call (None, "elzar_recovered", []); Mov (tries, Imm (Types.i64, 0L)) ];
                   term = Br loop;
                 } )
            :: st.extra
      | Harden_config.Basic -> assert false));
  lab

(* Inserts the shuffle-xor-ptest check of Fig. 8 on a protected register
   operand, splitting the current block; faults divert to recovery. *)
let emit_check st (o : operand) =
  match o with
  | Reg r when prot st r ->
      let v = vreg st r in
      let n = Types.lanes v.rty in
      if n >= 2 then begin
        let sh = fresh st ~name:"shuf" v.rty in
        emit st (Shuffle (sh, Reg v, rotate_perm n));
        let x = fresh st ~name:"diff" v.rty in
        emit st (Binop (x, Xor, Reg v, Reg sh));
        let z = fresh st ~name:"allz" Types.i1 in
        emit st (Ptestz (z, Reg x));
        let cont = flabel st "ok" in
        let rl = recovery st v (Br cont) in
        close st (Cond_br (Reg z, cont, rl));
        open_block st cont
      end
  | _ -> ()

(* Extracts one copy of a protected operand for use by a synchronization
   instruction (Fig. 6 left half). *)
let scalarize st (o : operand) : operand =
  match o with
  | Reg r when prot st r -> (
      let v = vreg st r in
      let s = match v.rty with Types.Vector (s, _) -> s | _ -> assert false in
      let e = fresh st ~name:"x" (Types.Scalar s) in
      emit st (Extractlane (e, Reg v, 0));
      match r.rty with
      | Types.Scalar Types.I1 ->
          (* i1 lives as a 64-bit mask lane inside vectors *)
          let c = fresh st ~name:"b" Types.i1 in
          emit st (Icmp (c, Ine, Reg e, Imm (Types.i64, 0L)));
          Reg c
      | _ -> Reg e)
  | o -> o

(* Replicates a just-produced scalar input (load result, call result,
   alloca, parameter) into its vector counterpart (Fig. 6 right half);
   booleans widen to a 64-bit lane and normalize to the canonical all-ones
   mask. *)
let replicate st (r : reg) (src : reg) =
  let v = vreg st r in
  let src =
    if Types.equal src.rty Types.i1 then begin
      let wide = fresh st ~name:"bw" Types.i64 in
      emit st (Cast (wide, Zext, Reg src));
      wide
    end
    else src
  in
  emit st (Broadcast (v, Reg src));
  if r.rty = Types.i1 then
    emit st (Icmp (v, Ine, Reg v, Imm (canonical_mask_ty, 0L)))

(* Canonicalizes a fresh comparison mask into an i1 register's <4 x i64>
   counterpart (the `sext <n x i1> to <4 x i64>` boilerplate of Fig. 10). *)
let canonicalize_mask st (dst : reg) (mask : reg) =
  let v = vreg st dst in
  if Types.equal mask.rty canonical_mask_ty then emit st (Mov (v, Reg mask))
  else emit st (Cast (v, Sext, Reg mask))

let splat_i ty v = Imm (ty, v)

(* ---- per-instruction rewriting ---- *)

let xform_cast st (r : reg) (k : cast) (o : operand) =
  let o_is_i1 = Types.equal (operand_ty None o) Types.i1 in
  let src_prot_reg = match o with Reg x -> prot st x | _ -> false in
  let src_unprot_reg = match o with Reg x -> not (prot st x) | _ -> false in
  if not (prot st r) then
    if src_prot_reg then begin
      (* protected -> unprotected boundary (floats-only mode): extract *)
      let s = scalarize st o in
      emit st (Cast (r, k, s))
    end
    else emit st (Cast (r, k, o))
  else if src_unprot_reg then begin
    (* unprotected -> protected boundary: compute scalar, then replicate *)
    let tmp = fresh st ~name:"cv" r.rty in
    emit st (Cast (tmp, k, o));
    replicate st r tmp
  end
  else if o_is_i1 then begin
    (* source is a canonical <4 x i64> mask *)
    let v = vreg st r in
    match k with
    | Zext ->
        let one = fresh st ~name:"bit" canonical_mask_ty in
        emit st (Binop (one, And, vop st o, splat_i canonical_mask_ty 1L));
        if Types.equal v.rty canonical_mask_ty then emit st (Mov (v, Reg one))
        else emit st (Cast (v, Trunc, Reg one))
    | Sext ->
        let norm = fresh st ~name:"mask" canonical_mask_ty in
        emit st (Icmp (norm, Ine, vop st o, splat_i canonical_mask_ty 0L));
        if Types.equal v.rty canonical_mask_ty then emit st (Mov (v, Reg norm))
        else emit st (Cast (v, Trunc, Reg norm))
    | _ -> raise (Unsupported "non-extension cast from i1")
  end
  else if Types.equal r.rty Types.i1 then begin
    (* truncation to i1: keep the low bit, produce a canonical mask *)
    let src_v = vop st o in
    let vt =
      match src_v with
      | Reg v -> v.rty
      | Imm (t, _) | Fimm (t, _) -> t
      | Glob _ | Fref _ -> assert false
    in
    let bit = fresh st ~name:"bit" vt in
    emit st (Binop (bit, And, src_v, splat_i vt 1L));
    let s, n = match vt with Types.Vector (s, n) -> (s, n) | _ -> assert false in
    let mask = fresh st ~name:"m" (Types.Vector (Types.mask_elem s, n)) in
    emit st (Icmp (mask, Ine, Reg bit, splat_i vt 0L));
    canonicalize_mask st r mask
  end
  else emit st (Cast (vreg st r, k, vop st o))

let xform_cmp st ~is_f (r : reg) emit_cmp (a : operand) (b : operand) =
  ignore is_f;
  let prot_a = match a with Reg x -> prot st x | _ -> false in
  let prot_b = match b with Reg x -> prot st x | _ -> false in
  if not (prot_a || prot_b) then
    if prot st r then begin
      (* comparison of constants/unprotected values feeding a protected i1 *)
      let tmp = fresh st ~name:"c" Types.i1 in
      emit st (emit_cmp tmp a b);
      replicate st r tmp
    end
    else emit st (emit_cmp r a b)
  else begin
    let vt =
      match (vop st a, vop st b) with
      | Reg v, _ | _, Reg v -> v.rty
      | _ -> assert false
    in
    let s, n = match vt with Types.Vector (s, n) -> (s, n) | _ -> assert false in
    let mask = fresh st ~name:"m" (Types.Vector (Types.mask_elem s, n)) in
    emit st (emit_cmp mask (vop st a) (vop st b));
    if prot st r then canonicalize_mask st r mask
    else begin
      (* floats-only mode: reduce the mask to a scalar boolean *)
      let e = fresh st ~name:"x" (Types.Scalar (Types.mask_elem s)) in
      emit st (Extractlane (e, Reg mask, 0));
      emit st (Icmp (r, Ine, Reg e, Imm (Types.Scalar (Types.mask_elem s), 0L)))
    end
  end

let operand_protected st = function Reg r -> prot st r | _ -> false

let xform_instr st (i : t) =
  match i with
  | Binop (r, op, a, b) when prot st r ->
      emit st (Binop (vreg st r, op, vop st a, vop st b))
  | Fbinop (r, op, a, b) when prot st r ->
      emit st (Fbinop (vreg st r, op, vop st a, vop st b))
  | Binop _ | Fbinop _ -> emit st i
  | Icmp (r, cc, a, b) -> xform_cmp st ~is_f:false r (fun d x y -> Icmp (d, cc, x, y)) a b
  | Fcmp (r, cc, a, b) -> xform_cmp st ~is_f:true r (fun d x y -> Fcmp (d, cc, x, y)) a b
  | Select (r, c, a, b) when prot st r ->
      let vc =
        match c with
        | Reg x when prot st x -> Reg (vreg st x)
        | Imm (Types.Scalar Types.I1, v) -> Imm (canonical_mask_ty, if v <> 0L then -1L else 0L)
        | c -> c (* scalar i1 condition selects whole vectors (floats-only) *)
      in
      emit st (Select (vreg st r, vc, vop st a, vop st b))
  | Select (r, c, a, b) ->
      if operand_protected st a || operand_protected st b then begin
        let sa = scalarize st a and sb = scalarize st b in
        emit st (Select (r, c, sa, sb))
      end
      else emit st i
  | Cast (r, k, o) -> xform_cast st r k o
  | Mov (r, o) when prot st r -> emit st (Mov (vreg st r, vop st o))
  | Mov _ -> emit st i
  | Load (r, a) when prot st r ->
      if st.cfg.future_avx && operand_protected st a then
        (* FPGA-checked gather: no wrappers, no separate check (§VII-C) *)
        emit st (Gather (vreg st r, vop st a))
      else begin
        if st.cfg.check_loads then emit_check st a;
        let sa = scalarize st a in
        let s = fresh st ~name:"ld" r.rty in
        emit st (Load (s, sa));
        replicate st r s
      end
  | Load (r, a) ->
      if operand_protected st a then begin
        if st.cfg.check_loads then emit_check st a;
        emit st (Load (r, scalarize st a))
      end
      else emit st i
  | Store (v, a) ->
      let pv = operand_protected st v and pa = operand_protected st a in
      if st.cfg.future_avx && pv && pa then emit st (Scatter (vop st v, vop st a))
      else begin
        if st.cfg.check_stores then begin
          if pv && st.cfg.store_check_value then emit_check st v;
          if pa then emit_check st a
        end;
        let sv = if pv then scalarize st v else v in
        let sa = if pa then scalarize st a else a in
        emit st (Store (sv, sa))
      end
  | Alloca (r, n) when prot st r ->
      let s = fresh st ~name:"sp" Types.ptr in
      emit st (Alloca (s, n));
      replicate st r s
  | Alloca _ -> emit st i
  | Call (r, name, args) ->
      let sargs =
        List.map
          (fun a ->
            if operand_protected st a then begin
              if st.cfg.check_calls then emit_check st a;
              scalarize st a
            end
            else a)
          args
      in
      (match r with
      | Some r when prot st r ->
          let s = fresh st ~name:"ret" r.rty in
          emit st (Call (Some s, name, sargs));
          replicate st r s
      | _ -> emit st (Call (r, name, sargs)))
  | Call_ind (r, rt, fp, args) ->
      let sfp =
        if operand_protected st fp then begin
          if st.cfg.check_calls then emit_check st fp;
          scalarize st fp
        end
        else fp
      in
      let sargs =
        List.map
          (fun a ->
            if operand_protected st a then begin
              if st.cfg.check_calls then emit_check st a;
              scalarize st a
            end
            else a)
          args
      in
      (match r with
      | Some r when prot st r ->
          let s = fresh st ~name:"ret" r.rty in
          emit st (Call_ind (Some s, rt, sfp, sargs));
          replicate st r s
      | _ -> emit st (Call_ind (r, rt, sfp, sargs)))
  | Atomic_rmw (r, op, addr, x) ->
      let handle o =
        if operand_protected st o then begin
          if st.cfg.check_calls then emit_check st o;
          scalarize st o
        end
        else o
      in
      let sa = handle addr in
      let sx = handle x in
      if prot st r then begin
        let s = fresh st ~name:"old" r.rty in
        emit st (Atomic_rmw (s, op, sa, sx));
        replicate st r s
      end
      else emit st (Atomic_rmw (r, op, sa, sx))
  | Cmpxchg (r, addr, e, d) ->
      let handle o =
        if operand_protected st o then begin
          if st.cfg.check_calls then emit_check st o;
          scalarize st o
        end
        else o
      in
      let sa = handle addr in
      let se = handle e in
      let sd = handle d in
      if prot st r then begin
        let s = fresh st ~name:"old" r.rty in
        emit st (Cmpxchg (s, sa, se, sd));
        replicate st r s
      end
      else emit st (Cmpxchg (r, sa, se, sd))
  | Extractlane _ | Insertlane _ | Broadcast _ | Shuffle _ | Ptestz _ | Gather _
  | Scatter _ ->
      raise (Unsupported "input program already contains vector instructions")

let xform_term st (term : terminator) =
  match term with
  | Ret None | Br _ | Unreachable -> close st term
  | Ret (Some o) ->
      if operand_protected st o then begin
        if st.cfg.check_calls then emit_check st o;
        let s = scalarize st o in
        close st (Ret (Some s))
      end
      else close st (Ret (Some o))
  | Cond_br (c, tl, fl) -> (
      match c with
      | Reg r when prot st r ->
          let mask = vreg st r in
          if st.cfg.check_branches then begin
            (* recovery repairs the mask, then re-branches; a second mixed
               outcome means an uncorrectable pattern *)
            let fatal = ensure_fatal st in
            let rl = recovery st mask (Vbr (Reg mask, tl, fl, fatal)) in
            close st (Vbr (Reg mask, tl, fl, rl))
          end
          else close st (Vbr_unchecked (Reg mask, tl, fl))
      | _ -> close st term)
  | Vbr _ | Vbr_unchecked _ ->
      raise (Unsupported "input program already contains vector branches")

(* ---- whole-function / whole-module driver ---- *)

let reg_scalar_types (f : func) : Types.t option array =
  let tys = Array.make f.next_reg None in
  let note (r : reg) = if tys.(r.rid) = None then tys.(r.rid) <- Some r.rty in
  List.iter note f.params;
  List.iter
    (fun (_, (b : block)) ->
      List.iter
        (fun i ->
          (match dest i with Some r -> note r | None -> ());
          List.iter (function Reg r -> note r | _ -> ()) (operands i))
        b.instrs;
      List.iter (function Reg r -> note r | _ -> ()) (term_operands b.term))
    f.blocks;
  tys

let xform_func (cfg : Harden_config.t) (f : func) =
  let tys = reg_scalar_types f in
  let param_ids = List.map (fun (r : reg) -> r.rid) f.params in
  let vmap = Array.make f.next_reg None in
  let nextr = ref f.next_reg in
  Array.iteri
    (fun rid ty ->
      match ty with
      | Some (Types.Scalar s) when protect_scalar cfg s ->
          let vty = Types.ymm_of s in
          if List.mem rid param_ids then begin
            vmap.(rid) <- Some { rid = !nextr; rname = "v"; rty = vty };
            incr nextr
          end
          else vmap.(rid) <- Some { rid; rname = "v"; rty = vty }
      | Some (Types.Vector _) -> raise (Unsupported "input program already vectorized")
      | _ -> ())
    tys;
  let st =
    {
      cfg;
      nextr = !nextr;
      nlab = 0;
      vmap;
      cur_label = "z.entry";
      cur = [];
      out = [];
      extra = [];
      fatal = None;
    }
  in
  (* prologue: replicate protected parameters (§III-B "ILR replicates all
     inputs ... function arguments") *)
  let old_entry = entry_label f in
  List.iter (fun (p : reg) -> if prot st p then replicate st p p) f.params;
  close st (Br old_entry);
  List.iter
    (fun (l, (b : block)) ->
      open_block st l;
      List.iter (xform_instr st) b.instrs;
      xform_term st b.term)
    f.blocks;
  f.blocks <- List.rev st.out @ List.rev st.extra;
  f.next_reg <- st.nextr;
  f.loops <- []

(* Hardens every [hardened] function of (a copy of) the module. *)
let run ?(cfg = Harden_config.default) (m : modul) : modul =
  let m = Linker.copy m in
  List.iter (fun (f : func) -> if f.hardened then xform_func cfg f) m.funcs;
  m
