(** Configuration of the ELZAR hardening pass.

    The check toggles correspond to the overhead-breakdown configurations of
    the paper's Fig. 12; [mode] selects full protection or the stripped-down
    floating-point-only variant of §V-B; [future_avx] emits the proposed
    AVX extensions of §VII (gather/scatter memory accesses with offloaded
    checks, FLAGS-setting vector comparisons) used for Fig. 17. *)

type recovery =
  | Basic  (** compare the two low lanes, broadcast lane 0 or lane n-1 *)
  | Extended  (** 3-lane majority vote; [elzar_fatal] when no majority *)
  | Reexec of int
      (** like [Extended], but on no-majority re-extract the lanes and
          retry the vote up to the given bound, then hand over to the
          [elzar_reexec] runtime (checkpointed re-execution of the whole
          hardened call) before finally fail-stopping *)

type mode = Full | Floats_only

type t = {
  check_loads : bool;
  check_stores : bool;
  check_branches : bool;
  check_calls : bool;  (** calls, returns, atomics *)
  store_check_value : bool;
      (** check the stored value as well as the address (the paper does;
          ablating this isolates the 40%-of-overhead store checks) *)
  mode : mode;
  future_avx : bool;
  recovery : recovery;
}

let default =
  {
    check_loads = true;
    check_stores = true;
    check_branches = true;
    check_calls = true;
    store_check_value = true;
    mode = Full;
    future_avx = false;
    recovery = Basic;
  }

(* The successive configurations of Fig. 12. *)
let no_load_checks = { default with check_loads = false }
let no_memory_checks = { no_load_checks with check_stores = false }
let no_mem_branch_checks = { no_memory_checks with check_branches = false }

let no_checks =
  { no_mem_branch_checks with check_calls = false; store_check_value = false }

let floats_only = { default with mode = Floats_only }
let future_avx = { default with future_avx = true }
let extended = { default with recovery = Extended }

(* Re-execution recovery: two in-place re-votes, then one checkpointed
   re-execution of the whole hardened call. *)
let reexec = { default with recovery = Reexec 2 }

let to_string (c : t) =
  Printf.sprintf "checks[loads=%b stores=%b branches=%b calls=%b] mode=%s%s recovery=%s"
    c.check_loads c.check_stores c.check_branches c.check_calls
    (match c.mode with Full -> "full" | Floats_only -> "floats-only")
    (if c.future_avx then " future-avx" else "")
    (match c.recovery with
    | Basic -> "basic"
    | Extended -> "extended"
    | Reexec k -> Printf.sprintf "reexec(%d)" k)
