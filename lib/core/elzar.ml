(** Public facade of the ELZAR framework.

    A build flavour turns a plain IR module into the artifact the paper
    benchmarks: the auto-vectorized native build, the vectorization-free
    native build (Fig. 1's baseline), an ELZAR-hardened build under a given
    {!Harden_config}, or the SWIFT-R triplicated baseline.  [run] then
    executes the prepared module on the simulated machine. *)

module Harden_config = Harden_config
module Elzar_pass = Elzar_pass
module Swiftr_pass = Swiftr_pass
module Vectorize = Vectorize
module Optimize = Optimize

type build =
  | Native  (** all optimizations, SIMD vectorization enabled *)
  | Native_novec  (** the "no-SIMD" build of Fig. 1 *)
  | Hardened of Harden_config.t  (** ELZAR *)
  | Swiftr  (** instruction-triplication baseline *)
  | Swiftr_norepair
      (** SWIFT-R with voting that picks the majority but does not write it
          back into the three copies (ablation) *)

let build_name = function
  | Native -> "native"
  | Native_novec -> "native-novec"
  | Hardened _ -> "elzar"
  | Swiftr -> "swift-r"
  | Swiftr_norepair -> "swift-r-norepair"

(* Applies the pass pipeline for a build flavour to (a copy of) [m] and
   verifies the result.  Every flavour first runs the scalar optimizer —
   the paper's builds keep all -O3 passes on and plug the hardening in
   right before code generation (§IV-A). *)
let prepare (b : build) (m : Ir.Instr.modul) : Ir.Instr.modul =
  let optimized = Ir.Linker.copy m in
  ignore (Optimize.run optimized);
  let m' =
    match b with
    | Native ->
        ignore (Vectorize.run optimized);
        optimized
    | Native_novec -> optimized
    | Hardened cfg -> Elzar_pass.run ~cfg optimized
    | Swiftr -> Swiftr_pass.run optimized
    | Swiftr_norepair -> Swiftr_pass.run ~repair:false optimized
  in
  Ir.Verifier.verify_exn m';
  m'

let uses_flags_cmp = function
  | Hardened cfg -> cfg.Harden_config.future_avx
  | Native | Native_novec | Swiftr | Swiftr_norepair -> false

(* Re-execution budget the machine must be configured with for this build:
   nonzero only for ELZAR builds with [Reexec] recovery. *)
let reexec_retries = function
  | Hardened { Harden_config.recovery = Harden_config.Reexec k; _ } -> k
  | Hardened _ | Native | Native_novec | Swiftr | Swiftr_norepair -> 0

(* Prepares and runs in one step. *)
let run ?(machine_cfg = Cpu.Machine.default_config) ?(args = [||]) (b : build)
    (m : Ir.Instr.modul) (entry : string) : Cpu.Machine.result =
  let m' = prepare b m in
  let machine_cfg =
    { machine_cfg with
      Cpu.Machine.reexec_retries =
        max machine_cfg.Cpu.Machine.reexec_retries (reexec_retries b) }
  in
  let machine = Cpu.Machine.create ~cfg:machine_cfg ~flags_cmp:(uses_flags_cmp b) m' in
  Cpu.Machine.run ~args machine entry

(* Normalized runtime of a build against the native build, the unit of every
   performance figure in the paper. *)
let normalized_runtime ~(native : Cpu.Machine.result) (r : Cpu.Machine.result) : float =
  float_of_int r.Cpu.Machine.wall_cycles /. float_of_int (max 1 native.Cpu.Machine.wall_cycles)
