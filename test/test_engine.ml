(* Engine equivalence: the closure-compiled and block-fused engines must
   be bit-identical to the reference interpreter — same wall cycles,
   per-thread counters, output bytes, traps and fault-site streams —
   across every workload and build flavour, with and without an armed
   injection.  Also checks that restoring a mid-run snapshot and resuming
   reproduces the straight run exactly (the soundness condition behind
   campaign fast-forward), that the block tier deoptimizes armed fault
   sites to per-instruction execution, and that its supervision hooks
   keep quantum-boundary discipline. *)

let builds =
  [
    Elzar.Native;
    Elzar.Native_novec;
    Elzar.Hardened Elzar.Harden_config.default;
    Elzar.Swiftr;
  ]

let cfg_with engine = { Cpu.Machine.default_config with Cpu.Machine.engine }

let check_result name (a : Cpu.Machine.result) (b : Cpu.Machine.result) =
  let open Cpu.Machine in
  Alcotest.(check int) (name ^ ": wall_cycles") a.wall_cycles b.wall_cycles;
  Alcotest.(check string) (name ^ ": output") a.output_bytes b.output_bytes;
  Alcotest.(check (option string))
    (name ^ ": trap")
    (Option.map string_of_trap a.trap)
    (Option.map string_of_trap b.trap);
  Alcotest.(check int) (name ^ ": inject_sites") a.inject_sites b.inject_sites;
  Alcotest.(check int) (name ^ ": mem_sites") a.mem_sites b.mem_sites;
  Alcotest.(check int) (name ^ ": branch_sites") a.branch_sites b.branch_sites;
  Alcotest.(check int) (name ^ ": recovered") a.recovered_faults b.recovered_faults;
  Alcotest.(check int) (name ^ ": reexecutions") a.reexecutions b.reexecutions;
  Alcotest.(check bool) (name ^ ": injected") a.fault_injected b.fault_injected;
  (* catch-all structural equality: counters lists, detect latency, ... *)
  if a <> b then Alcotest.failf "%s: results differ structurally" name

(* every workload, every build flavour: reference == closure == block *)
let check_engines (w : Workloads.Workload.t) () =
  List.iter
    (fun b ->
      let run engine =
        Workloads.Workload.execute ~machine_cfg:(cfg_with engine) w ~build:b ~nthreads:2
          ~size:Workloads.Workload.Tiny
      in
      let name = w.Workloads.Workload.name ^ "/" ^ Elzar.build_name b in
      let reference = run Cpu.Machine.Reference in
      check_result name reference (run Cpu.Machine.Closure);
      check_result (name ^ "/block") reference (run Cpu.Machine.Block))
    builds

(* armed injections: the per-kind site streams and fault hooks must fire
   at the same instruction under both engines *)
let check_inject_engines () =
  let w = Workloads.Registry.find "hist" in
  let harden = Elzar.Hardened Elzar.Harden_config.default in
  List.iter
    (fun (kind, at, reexec_retries) ->
      let inject =
        Some { Cpu.Machine.at; lane = 1; bit = 13; second = None; kind }
      in
      let run engine =
        Workloads.Workload.execute
          ~machine_cfg:
            { Cpu.Machine.default_config with Cpu.Machine.engine; inject; reexec_retries }
          w ~build:harden ~nthreads:2 ~size:Workloads.Workload.Tiny
      in
      let name =
        Printf.sprintf "inject %s@%d/r%d"
          (Cpu.Machine.fault_kind_to_string kind)
          at reexec_retries
      in
      let reference = run Cpu.Machine.Reference in
      check_result name reference (run Cpu.Machine.Closure);
      check_result (name ^ "/block") reference (run Cpu.Machine.Block))
    [
      (Cpu.Machine.Reg_flip, 5_000, 0);
      (Cpu.Machine.Reg_flip, 50_000, 0);
      (Cpu.Machine.Reg_flip, 20_000, 2);
      (Cpu.Machine.Mem_flip, 2_000, 0);
      (Cpu.Machine.Addr_flip, 3_000, 0);
      (Cpu.Machine.Branch_flip, 1_000, 0);
    ]

(* the counting (site-census) runs must agree too *)
let check_count_sites () =
  let w = Workloads.Registry.find "linreg" in
  let harden = Elzar.Hardened Elzar.Harden_config.default in
  let run engine =
    Workloads.Workload.execute
      ~machine_cfg:
        { Cpu.Machine.default_config with Cpu.Machine.engine; count_inject_sites = true }
      w ~build:harden ~nthreads:2 ~size:Workloads.Workload.Tiny
  in
  let reference = run Cpu.Machine.Reference in
  check_result "count-sites" reference (run Cpu.Machine.Closure);
  check_result "count-sites/block" reference (run Cpu.Machine.Block)

(* snapshot/restore: resuming from any mid-run snapshot must reproduce the
   straight run bit-for-bit, under either engine *)
let check_snapshot_resume engine () =
  let w = Workloads.Registry.find "linreg" in
  let harden = Elzar.Hardened Elzar.Harden_config.default in
  let spec = Workloads.Workload.fi_spec w ~build:harden () in
  let cfg =
    {
      Cpu.Machine.default_config with
      Cpu.Machine.engine;
      reexec_retries = spec.Fault.reexec_retries;
    }
  in
  let make_machine () =
    let m = Cpu.Machine.create ~cfg ~flags_cmp:spec.Fault.flags_cmp spec.Fault.modul in
    spec.Fault.init m;
    m
  in
  let snaps = ref [] in
  let q = ref 0 in
  let m = make_machine () in
  let golden =
    Cpu.Machine.run ~args:spec.Fault.args m spec.Fault.entry ~on_quantum:(fun mm ->
        incr q;
        if !q mod 40 = 0 then snaps := Cpu.Machine.snapshot mm :: !snaps)
  in
  if !snaps = [] then Alcotest.fail "no snapshots captured";
  (* newest, oldest and a middle snapshot *)
  let all = Array.of_list !snaps in
  let picks = [ 0; Array.length all / 2; Array.length all - 1 ] in
  List.iter
    (fun i ->
      let sn = all.(i) in
      let r = Cpu.Machine.resume (Cpu.Machine.restore ~cfg sn) in
      check_result
        (Printf.sprintf "snapshot@%d" (Cpu.Machine.snapshot_instrs sn))
        golden r)
    (List.sort_uniq compare picks)

(* campaign fast-forward: the full report (per-outcome stats and every
   observation, including wall cycles and detection latencies) must be
   bit-identical with fast-forward on or off, and for any worker count *)
let check_campaign_fast_forward () =
  let w = Workloads.Registry.find "linreg" in
  let harden = Elzar.Hardened Elzar.Harden_config.default in
  let spec = Workloads.Workload.fi_spec w ~build:harden () in
  let base = Campaign.single ~seed:19 ~n:24 ~jobs:1 ~fast_forward:false spec in
  List.iter
    (fun jobs ->
      let ff = Campaign.single ~seed:19 ~n:24 ~jobs ~fast_forward:true spec in
      Alcotest.(check bool)
        (Printf.sprintf "ff jobs=%d: same stats" jobs)
        true
        (ff.Campaign.stats = base.Campaign.stats);
      Alcotest.(check bool)
        (Printf.sprintf "ff jobs=%d: same outcomes" jobs)
        true
        (ff.Campaign.outcomes = base.Campaign.outcomes))
    [ 1; 2; 4 ];
  (* and across fault models, whose sites draw on the mem/branch streams *)
  List.iter
    (fun model ->
      let off = Campaign.model_campaign ~seed:23 ~n:8 ~jobs:1 ~fast_forward:false ~model spec in
      let on = Campaign.model_campaign ~seed:23 ~n:8 ~jobs:2 ~fast_forward:true ~model spec in
      Alcotest.(check bool)
        (Fault.model_to_string model ^ ": ff report identical")
        true
        (off.Campaign.stats = on.Campaign.stats && off.Campaign.outcomes = on.Campaign.outcomes))
    [ Fault.Mem; Fault.Addr; Fault.Cf; Fault.Mixed ]

(* campaigns under the block engine: the full report must be bit-identical
   to a closure-engine campaign, for any worker count and fault model *)
let check_block_campaign () =
  let w = Workloads.Registry.find "linreg" in
  let harden = Elzar.Hardened Elzar.Harden_config.default in
  let spec = Workloads.Workload.fi_spec w ~build:harden () in
  let bspec = { spec with Fault.engine = Cpu.Machine.Block } in
  let base = Campaign.single ~seed:19 ~n:24 ~jobs:1 ~fast_forward:false spec in
  List.iter
    (fun jobs ->
      let blk = Campaign.single ~seed:19 ~n:24 ~jobs ~fast_forward:true bspec in
      Alcotest.(check bool)
        (Printf.sprintf "block jobs=%d: same stats" jobs)
        true
        (blk.Campaign.stats = base.Campaign.stats);
      Alcotest.(check bool)
        (Printf.sprintf "block jobs=%d: same outcomes" jobs)
        true
        (blk.Campaign.outcomes = base.Campaign.outcomes))
    [ 1; 2; 4 ];
  List.iter
    (fun model ->
      let cl = Campaign.model_campaign ~seed:23 ~n:8 ~jobs:1 ~fast_forward:false ~model spec in
      let bl = Campaign.model_campaign ~seed:23 ~n:8 ~jobs:2 ~fast_forward:true ~model bspec in
      Alcotest.(check bool)
        (Fault.model_to_string model ^ ": block report identical")
        true
        (cl.Campaign.stats = bl.Campaign.stats && cl.Campaign.outcomes = bl.Campaign.outcomes))
    [ Fault.Mem; Fault.Addr; Fault.Cf; Fault.Mixed ]

let count_fused (m : Cpu.Machine.t) =
  Array.fold_left
    (fun acc tbl ->
      Array.fold_left (fun a b -> match b with Some _ -> a + 1 | None -> a) acc tbl)
    0 m.Cpu.Machine.kblocks

(* dedicated deoptimization check: arming a fault kind must deoptimize
   exactly the blocks carrying its sites (strictly fewer fused blocks than
   an unarmed build), and the armed site must fall back to per-instruction
   execution and fire at the exact dynamic instruction — site streams,
   injected class and detection latency identical to the reference
   interpreter *)
let check_block_deopt () =
  let w = Workloads.Registry.find "hist" in
  let harden = Elzar.Hardened Elzar.Harden_config.default in
  let spec = Workloads.Workload.fi_spec w ~build:harden () in
  let run_with cfg =
    let m = Cpu.Machine.create ~cfg ~flags_cmp:spec.Fault.flags_cmp spec.Fault.modul in
    spec.Fault.init m;
    let r = Cpu.Machine.run ~args:spec.Fault.args m spec.Fault.entry in
    (m, r)
  in
  let plain_cfg =
    { Cpu.Machine.default_config with Cpu.Machine.engine = Cpu.Machine.Block }
  in
  let m_plain, _ = run_with plain_cfg in
  let fused_plain = count_fused m_plain in
  Alcotest.(check bool) "plain build fuses blocks" true (fused_plain > 0);
  List.iter
    (fun (kind, at) ->
      let name = Cpu.Machine.fault_kind_to_string kind in
      let inject = Some { Cpu.Machine.at; lane = 1; bit = 13; second = None; kind } in
      let bcfg = { plain_cfg with Cpu.Machine.inject } in
      let m_blk, r_blk = run_with bcfg in
      let _, r_ref = run_with { bcfg with Cpu.Machine.engine = Cpu.Machine.Reference } in
      (* the armed kind's site instructions leave their blocks deoptimized *)
      if kind <> Cpu.Machine.Branch_flip then
        Alcotest.(check bool)
          (name ^ ": armed sites deoptimize blocks")
          true
          (count_fused m_blk < fused_plain);
      Alcotest.(check bool) (name ^ ": fault fired") true r_ref.Cpu.Machine.fault_injected;
      check_result ("deopt " ^ name) r_ref r_blk)
    [
      (Cpu.Machine.Reg_flip, 5_000);
      (Cpu.Machine.Mem_flip, 2_000);
      (Cpu.Machine.Addr_flip, 3_000);
      (Cpu.Machine.Branch_flip, 1_000);
    ]

(* supervision boundary discipline under the block engine: the abort hook
   is polled exactly once per scheduling quantum (not once per fused
   block), the chaos hook fires exactly once per run, and a cooperative
   abort still cuts the run short *)
let check_block_supervision () =
  let w = Workloads.Registry.find "hist" in
  let harden = Elzar.Hardened Elzar.Harden_config.default in
  let spec = Workloads.Workload.fi_spec w ~build:harden () in
  let run_cfg cfg ~on_quantum =
    let m = Cpu.Machine.create ~cfg ~flags_cmp:spec.Fault.flags_cmp spec.Fault.modul in
    spec.Fault.init m;
    Cpu.Machine.run ~args:spec.Fault.args ~on_quantum m spec.Fault.entry
  in
  let quanta = ref 0 and polls = ref 0 and chaos_fired = ref 0 in
  let cfg =
    {
      Cpu.Machine.default_config with
      Cpu.Machine.engine = Cpu.Machine.Block;
      abort =
        Some
          (fun () ->
            incr polls;
            false);
      chaos = Some (fun () -> incr chaos_fired);
    }
  in
  let r = run_cfg cfg ~on_quantum:(fun _ -> incr quanta) in
  Alcotest.(check (option string))
    "no trap" None
    (Option.map Cpu.Machine.string_of_trap r.Cpu.Machine.trap);
  Alcotest.(check bool) "ran more than one quantum" true (!quanta > 1);
  Alcotest.(check int) "chaos fired exactly once" 1 !chaos_fired;
  Alcotest.(check int) "abort polled once per quantum" !quanta !polls;
  let polls2 = ref 0 in
  let abort_cfg =
    {
      cfg with
      Cpu.Machine.abort =
        Some
          (fun () ->
            incr polls2;
            !polls2 >= 6);
      chaos = None;
    }
  in
  match run_cfg abort_cfg ~on_quantum:(fun _ -> ()) with
  | (_ : Cpu.Machine.result) -> Alcotest.fail "abort hook did not raise under block engine"
  | exception Cpu.Machine.Abort ->
      Alcotest.(check int) "aborted at the sixth boundary" 6 !polls2

let workload_cases =
  List.map
    (fun w ->
      Alcotest.test_case ("equiv " ^ w.Workloads.Workload.name) `Quick (check_engines w))
    (Workloads.Registry.all @ Workloads.Registry.micro)

let tests =
  workload_cases
  @ [
      Alcotest.test_case "equiv under injection" `Quick check_inject_engines;
      Alcotest.test_case "equiv site census" `Quick check_count_sites;
      Alcotest.test_case "snapshot resume (closure)" `Quick
        (check_snapshot_resume Cpu.Machine.Closure);
      Alcotest.test_case "snapshot resume (reference)" `Quick
        (check_snapshot_resume Cpu.Machine.Reference);
      Alcotest.test_case "snapshot resume (block)" `Quick
        (check_snapshot_resume Cpu.Machine.Block);
      Alcotest.test_case "campaign fast-forward bit-identical" `Quick
        check_campaign_fast_forward;
      Alcotest.test_case "campaign under block engine bit-identical" `Quick
        check_block_campaign;
      Alcotest.test_case "block deopt at armed fault sites" `Quick check_block_deopt;
      Alcotest.test_case "block supervision quantum discipline" `Quick
        check_block_supervision;
    ]
