(* Observability-layer tests: the JSON emitter (escaping, canonical
   rendering, round-trip through an independent parser), report schema and
   determinism (bit-identical campaign results for any worker count),
   progress/checkpoint accounting fixes (resumed-campaign ETA, unwritable
   checkpoint paths), span coverage and the per-class profiling hook. *)

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

module J = Obs.Json

(* ---- a tiny independent JSON parser, so round-trip tests do not grade
   the emitter with its own inverse ---- *)

exception Parse_error of string

let parse (s : string) : J.t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %c" c) in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          (match next () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              let hex = String.init 4 (fun _ -> next ()) in
              let code = int_of_string ("0x" ^ hex) in
              if code > 0xff then fail "non-latin \\u escape"
              else Buffer.add_char buf (Char.chr code)
          | _ -> fail "bad escape");
          go ())
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      J.Float (float_of_string tok)
    else J.Int (int_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some 'n' -> literal "null" J.Null
    | Some 't' -> literal "true" (J.Bool true)
    | Some 'f' -> literal "false" (J.Bool false)
    | Some '"' -> J.Str (parse_string ())
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; J.List [] end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> items (v :: acc)
            | ']' -> J.List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; J.Obj [] end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> J.Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | J.Obj ms -> (
      match List.assoc_opt name ms with
      | Some v -> v
      | None -> Alcotest.failf "member %S missing" name)
  | _ -> Alcotest.failf "not an object looking for %S" name

(* ---- emitter unit tests ---- *)

let test_escaping () =
  check_str "quote and backslash" "a\\\"b\\\\c" (J.escape "a\"b\\c");
  check_str "common controls" "x\\ny\\tz\\r" (J.escape "x\ny\tz\r");
  check_str "backspace and formfeed" "\\b\\f" (J.escape "\b\012");
  check_str "other controls as u-escapes" "\\u0001\\u001f" (J.escape "\001\031");
  check_str "utf8 passes through" "caf\xc3\xa9" (J.escape "caf\xc3\xa9");
  check_str "rendered string literal" "\"he said \\\"hi\\\"\""
    (J.to_string ~compact:true (J.Str "he said \"hi\""))

let test_numbers () =
  check_str "integral float keeps .0" "3.0" (J.number 3.0);
  check_str "negative integral" "-2.0" (J.number (-2.0));
  check_str "fractional" "0.5" (J.number 0.5);
  check_str "nan is null" "null" (J.number nan);
  check_str "infinity is null" "null" (J.number infinity)

let test_nesting () =
  let doc =
    J.Obj
      [
        ("a", J.List [ J.Int 1; J.Int 2 ]);
        ("b", J.Obj [ ("c", J.Bool true) ]);
        ("d", J.List []);
        ("e", J.Obj []);
      ]
  in
  check_str "compact form" "{\"a\":[1,2],\"b\":{\"c\":true},\"d\":[],\"e\":{}}"
    (J.to_string ~compact:true doc);
  check_str "pretty form"
    "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": true\n  },\n  \"d\": \
     [],\n  \"e\": {}\n}"
    (J.to_string doc)

let test_round_trip () =
  let doc =
    J.Obj
      [
        ("name", J.Str "line\none\t\"quoted\"");
        ("count", J.Int (-42));
        ("ratio", J.Float 1.5);
        ("tiny", J.Float (-0.25));
        ("whole", J.Float 3.0);
        ("flag", J.Bool false);
        ("nothing", J.Null);
        ("nested", J.List [ J.Obj [ ("k", J.Str "v") ]; J.List [ J.Int 7 ] ]);
      ]
  in
  check_bool "pretty round-trips" true (parse (J.to_string doc) = doc);
  check_bool "compact round-trips" true (parse (J.to_string ~compact:true doc) = doc)

(* ---- campaign report determinism and schema ---- *)

let spec () = Test_fault.spec_of (Elzar.Hardened Elzar.Harden_config.default)

let test_results_bit_identical_across_jobs () =
  let spec = spec () in
  let render jobs =
    J.to_string (Report.campaign_results (Campaign.single ~seed:19 ~n:24 ~jobs spec))
  in
  let r1 = render 1 in
  check_str "1 vs 2 workers" r1 (render 2);
  check_str "1 vs 4 workers" r1 (render 4)

let test_campaign_schema () =
  let spec = spec () in
  let r = Campaign.single ~seed:3 ~n:12 ~jobs:2 spec in
  let doc =
    parse (J.to_string (Report.campaign ~params:[ ("workload", J.Str "pure") ] r))
  in
  check_bool "schema" true (member "schema" doc = J.Str "elzar.campaign");
  check_bool "version" true (member "version" doc = J.Int Report.version);
  check_bool "params carried" true
    (member "workload" (member "campaign" doc) = J.Str "pure");
  let results = member "results" doc in
  let stats = member "stats" results in
  check_bool "runs counted" true (member "runs" stats = J.Int 12);
  (match member "avf" results with
  | J.List (_ :: _) -> ()
  | _ -> Alcotest.fail "avf table empty");
  (match member "log2_histogram" (member "latency" results) with
  | J.List _ -> ()
  | _ -> Alcotest.fail "latency histogram missing");
  check_bool "jobs recorded" true (member "jobs" (member "timing" doc) = J.Int 2);
  match member "spans" doc with
  | J.List (_ :: _ as rows) ->
      List.iter
        (fun row ->
          match (member "span" row, member "wall_seconds" row) with
          | J.Str _, J.Float _ -> ()
          | _ -> Alcotest.fail "span row shape")
        rows
  | _ -> Alcotest.fail "spans missing or empty"

let test_span_coverage () =
  let spec = spec () in
  let t0 = Unix.gettimeofday () in
  let r = Campaign.single ~seed:11 ~n:60 ~jobs:2 spec in
  let wall = Unix.gettimeofday () -. t0 in
  let cov = Obs.Span.coverage ~rows:r.Campaign.spans ~wall in
  if cov < 0.95 then
    Alcotest.failf "top-level spans cover %.1f%% of campaign wall time" (100.0 *. cov);
  check_bool "nested spans present" true
    (List.exists
       (fun (row : Obs.Span.row) -> String.contains row.Obs.Span.path '/')
       r.Campaign.spans)

(* ---- progress/checkpoint accounting ---- *)

(* The resumed-campaign ETA bug: restored experiments finish instantly, so
   the completion rate must come from executed runs only — and while the
   replay prefix is still running (zero executed experiments) there is no
   rate at all, so the ETA must be [nan], never a number extrapolated from
   instant restores.  Interrupt a checkpointed campaign, resume it, and
   check every progress record. *)
let test_resume_eta_uses_executed_rate () =
  let spec = spec () in
  let path = Filename.temp_file "elzar_obs_eta" ".ck" in
  Sys.remove path;
  let cancel = Atomic.make false in
  let partial =
    Campaign.single ~seed:23 ~n:40 ~jobs:1 ~checkpoint:path ~cancel
      ~progress:(fun p -> if p.Campaign.completed >= 35 then Atomic.set cancel true)
      spec
  in
  check_bool "campaign interrupted" true partial.Campaign.interrupted;
  check_bool "checkpoint written" true (Sys.file_exists path);
  let records = ref [] in
  let _ =
    Campaign.single ~seed:23 ~n:40 ~jobs:1 ~checkpoint:path
      ~progress:(fun p -> records := p :: !records)
      spec
  in
  let resumed =
    List.filter (fun (p : Campaign.progress) -> p.Campaign.restored > 0) !records
  in
  check_bool "resume restored experiments" true (resumed <> []);
  check_bool "replay prefix has executed-free records" true
    (List.exists
       (fun (p : Campaign.progress) -> p.Campaign.completed = p.Campaign.restored)
       resumed);
  List.iter
    (fun (p : Campaign.progress) ->
      (* unsupervised resume: quarantined = 0, so executed is just
         completed - restored *)
      let executed = p.Campaign.completed - p.Campaign.restored in
      if executed = 0 then (
        if not (Float.is_nan p.Campaign.eta) then
          Alcotest.failf "eta %.6f on a record with no executed runs (want nan)"
            p.Campaign.eta)
      else
        let expected =
          p.Campaign.elapsed
          /. float_of_int executed
          *. float_of_int (p.Campaign.total - p.Campaign.completed)
        in
        if Float.abs (p.Campaign.eta -. expected) > 1e-6 then
          Alcotest.failf
            "eta %.6f but executed-only rate gives %.6f (completed %d, restored %d)"
            p.Campaign.eta expected p.Campaign.completed p.Campaign.restored)
    resumed

(* A checkpoint path that can never be opened must not kill the campaign:
   it warns once on stderr and completes with the same results. *)
let test_unwritable_checkpoint () =
  let spec = spec () in
  let baseline = Campaign.single ~seed:27 ~n:12 ~jobs:1 spec in
  let r =
    Campaign.single ~seed:27 ~n:12 ~jobs:1
      ~checkpoint:"/nonexistent_dir_elzar_test/campaign.ck" spec
  in
  check_bool "campaign completed with baseline stats" true
    (r.Campaign.stats = baseline.Campaign.stats);
  check_bool "no stray checkpoint file" true
    (not (Sys.file_exists "/nonexistent_dir_elzar_test/campaign.ck"))

(* ---- per-class profiling hook ---- *)

let known_classes =
  [
    "alu"; "cmp"; "select"; "cast"; "mov"; "load"; "store"; "alloca"; "call";
    "atomic"; "vec"; "branch";
  ]

let test_profile_hook () =
  let w = Workloads.Registry.find "hist" in
  let run profile =
    let cfg =
      {
        Cpu.Machine.default_config with
        Cpu.Machine.engine = Cpu.Machine.Closure;
        profile;
      }
    in
    Workloads.Workload.execute ~machine_cfg:cfg w ~build:Elzar.Native ~nthreads:2
      ~size:Workloads.Workload.Tiny
  in
  let off = run None in
  let prof = Cpu.Profile.create () in
  let on = run (Some prof) in
  check_bool "profiling does not change the run" true
    (off.Cpu.Machine.wall_cycles = on.Cpu.Machine.wall_cycles
    && off.Cpu.Machine.totals = on.Cpu.Machine.totals
    && off.Cpu.Machine.output_digest = on.Cpu.Machine.output_digest);
  let instrs, cycles = Cpu.Profile.total prof in
  Alcotest.(check int)
    "every retired instruction attributed" on.Cpu.Machine.totals.Cpu.Counters.instrs
    instrs;
  check_bool "cycles attributed" true (cycles > 0);
  List.iter
    (fun (cls, n, _) ->
      check_bool (Printf.sprintf "class %s known" cls) true (List.mem cls known_classes);
      check_bool (Printf.sprintf "class %s counted" cls) true (n > 0))
    (Cpu.Profile.rows prof);
  (* the JSON rendering exposes the same totals *)
  match Report.profile prof with
  | J.List rows ->
      let sum =
        List.fold_left
          (fun acc row ->
            match member "instrs" row with J.Int n -> acc + n | _ -> acc)
          0 rows
      in
      Alcotest.(check int) "json rows sum to total" instrs sum
  | _ -> Alcotest.fail "profile JSON not a list"

let tests =
  [
    Alcotest.test_case "escaping" `Quick test_escaping;
    Alcotest.test_case "canonical numbers" `Quick test_numbers;
    Alcotest.test_case "nesting pretty and compact" `Quick test_nesting;
    Alcotest.test_case "round-trip" `Quick test_round_trip;
    Alcotest.test_case "results bit-identical across jobs" `Quick
      test_results_bit_identical_across_jobs;
    Alcotest.test_case "campaign schema" `Quick test_campaign_schema;
    Alcotest.test_case "span coverage" `Quick test_span_coverage;
    Alcotest.test_case "resume eta uses executed rate" `Quick
      test_resume_eta_uses_executed_rate;
    Alcotest.test_case "unwritable checkpoint" `Quick test_unwritable_checkpoint;
    Alcotest.test_case "profile hook" `Quick test_profile_hook;
  ]
