(* Fault-injection framework tests: classification, correction properties,
   the window of vulnerability and its closure by future-AVX, and the
   parallel campaign engine (determinism across worker counts, redraw of
   unreached sites, checkpoint/resume, non-aliasing double flips). *)

let check_bool = Alcotest.(check bool)

(* A hardened pure-compute kernel: parameters in, long register-only
   computation, one output.  No loads inside the hardened region means no
   extracted-address window: EVERY single-lane fault must be corrected or
   masked — never an SDC, never a crash. *)
let pure_compute_module () =
  let m = Ir.Builder.create_module () in
  let open Ir.Builder in
  let b, ps = func m "kernel" [ ("x", Ir.Types.i64) ] ~ret:Ir.Types.i64 in
  let x = match ps with [ p ] -> Ir.Instr.Reg p | _ -> assert false in
  let acc = fresh b ~name:"acc" Ir.Types.i64 in
  assign b acc x;
  for_ b ~lo:(i64c 0) ~hi:(i64c 40) (fun i ->
      let t = xor b (Reg acc) (shl b (Reg acc) (i64c 13)) in
      let t2 = add b t (mul b i (i64c 0x9E37)) in
      assign b acc (lshr b t2 (i64c 1)));
  ret b (Some (Reg acc));
  let b, _ = func m ~hardened:false "main" [ ("n", Ir.Types.i64) ] in
  let r = callv b ~ret:Ir.Types.i64 "kernel" [ i64c 123456789 ] in
  call0 b "output_i64" [ r ];
  ret b None;
  m

let spec_of build =
  Fault.make_spec (Elzar.prepare build (pure_compute_module ())) "main" ~args:[| 1L |]
    ~reexec_retries:(Elzar.reexec_retries build)

let test_pure_compute_always_protected () =
  let spec = spec_of (Elzar.Hardened Elzar.Harden_config.default) in
  let golden = Fault.golden spec in
  let sites = golden.Cpu.Machine.inject_sites in
  check_bool "has injection sites" true (sites > 100);
  (* sweep a deterministic sample of injection points, lanes and bits *)
  let bad = ref 0 and corrected = ref 0 in
  for k = 0 to 80 do
    let at = 1 + (k * 7 mod sites) in
    let outcome =
      Fault.inject_one spec ~golden ~at ~lane:(k mod 4) ~bit:((k * 11) mod 64)
    in
    match outcome with
    | Fault.Elzar_corrected ->
        incr corrected
    | Fault.Masked -> ()
    | Fault.Hang | Fault.Deadlock | Fault.Os_detected | Fault.Sdc | Fault.Not_reached ->
        incr bad
  done;
  (* the only unprotected dataflow is the single return-value extract
     (the same window-of-vulnerability class as §V-C) *)
  check_bool "at most the return-extract window leaks" true (!bad <= 2);
  check_bool "some faults actively corrected" true (!corrected > 0)

let test_native_is_vulnerable () =
  let spec = spec_of Elzar.Native_novec in
  let golden = Fault.golden spec in
  let sites = golden.Cpu.Machine.inject_sites in
  let sdc = ref 0 in
  for k = 0 to 60 do
    let at = 1 + (k * 5 mod sites) in
    match Fault.inject_one spec ~golden ~at ~lane:0 ~bit:(k mod 64) with
    | Fault.Sdc -> incr sdc
    | _ -> ()
  done;
  check_bool "native suffers SDCs" true (!sdc > 5)

let test_campaign_stats_consistent () =
  let spec = spec_of (Elzar.Hardened Elzar.Harden_config.default) in
  let r = Campaign.single ~seed:7 ~n:40 ~jobs:1 spec in
  let s = r.Campaign.stats in
  Alcotest.(check int) "runs counted" 40 s.Fault.runs;
  Alcotest.(check int) "outcomes partition runs" 40
    (s.Fault.hang + s.Fault.deadlock + s.Fault.os_detected + s.Fault.corrected
   + s.Fault.masked + s.Fault.sdc);
  Alcotest.(check int) "outcomes array matches plan" 40 (Array.length r.Campaign.outcomes)

(* The engine's core guarantee: pre-drawn experiments make the stats
   bit-identical no matter how many worker domains execute them. *)
let test_campaign_parallel_deterministic () =
  let spec = spec_of (Elzar.Hardened Elzar.Harden_config.default) in
  let r1 = Campaign.single ~seed:13 ~n:24 ~jobs:1 spec in
  let r2 = Campaign.single ~seed:13 ~n:24 ~jobs:2 spec in
  let r4 = Campaign.single ~seed:13 ~n:24 ~jobs:4 spec in
  check_bool "1 vs 2 workers: same stats" true (r1.Campaign.stats = r2.Campaign.stats);
  check_bool "1 vs 4 workers: same stats" true (r1.Campaign.stats = r4.Campaign.stats);
  check_bool "1 vs 2 workers: same per-experiment outcomes" true
    (r1.Campaign.outcomes = r2.Campaign.outcomes);
  check_bool "1 vs 4 workers: same per-experiment outcomes" true
    (r1.Campaign.outcomes = r4.Campaign.outcomes);
  let d1 = Campaign.double ~seed:17 ~n:12 ~jobs:1 spec in
  let d4 = Campaign.double ~seed:17 ~n:12 ~jobs:4 spec in
  check_bool "double campaign: 1 vs 4 workers identical" true
    (d1.Campaign.stats = d4.Campaign.stats && d1.Campaign.outcomes = d4.Campaign.outcomes)

(* An experiment whose site is never executed must be classified
   Not_reached (and discarded by campaigns), not Masked. *)
let test_not_reached () =
  let spec = spec_of (Elzar.Hardened Elzar.Harden_config.default) in
  let golden = Fault.golden spec in
  let sites = golden.Cpu.Machine.inject_sites in
  let r =
    Fault.run_experiment spec
      {
        Fault.at = (10 * sites) + 1;
        lane = 0;
        bit = 5;
        second = None;
        kind = Cpu.Machine.Reg_flip;
      }
  in
  check_bool "no fault injected" false r.Cpu.Machine.fault_injected;
  check_bool "classified Not_reached" true (Fault.classify ~golden r = Fault.Not_reached);
  check_bool "Not_reached does not dilute stats" true
    (Fault.add_outcome Fault.empty_stats Fault.Not_reached = Fault.empty_stats)

(* Interrupt a checkpointed campaign partway (via the cancellation flag),
   then resume it: the resumed run must restore the completed experiments
   instead of re-executing them and end with exactly the stats of an
   uninterrupted run. *)
let test_checkpoint_resume () =
  let spec = spec_of (Elzar.Hardened Elzar.Harden_config.default) in
  let path = Filename.temp_file "elzar_campaign" ".ck" in
  Sys.remove path;
  let baseline = Campaign.single ~seed:21 ~n:40 ~jobs:1 spec in
  let cancel = Atomic.make false in
  let partial =
    Campaign.single ~seed:21 ~n:40 ~jobs:1 ~checkpoint:path ~cancel
      ~progress:(fun p -> if p.Campaign.completed >= 35 then Atomic.set cancel true)
      spec
  in
  check_bool "campaign interrupted" true partial.Campaign.interrupted;
  check_bool "checkpoint file written" true (Sys.file_exists path);
  let resumed = Campaign.single ~seed:21 ~n:40 ~jobs:1 ~checkpoint:path spec in
  check_bool "resumed campaign matches uninterrupted stats" true
    (resumed.Campaign.stats = baseline.Campaign.stats);
  check_bool "resume re-executed only the remainder" true
    (resumed.Campaign.experiments_run < 40);
  check_bool "checkpoint removed after completion" true (not (Sys.file_exists path))

(* ---- property: the second flip of a double-bit SEU never aliases the
   first after the wrap to the destination's lane count (the bug this
   guards against silently turned double campaigns into fault-free runs) *)

let prop_second_flip_never_cancels =
  QCheck.Test.make ~count:1000 ~name:"second flip never cancels the first"
    QCheck.(
      quad (int_range 1 8) (int_bound 31) (int_bound 63) (pair (int_bound 200) (int_bound 63)))
    (fun (dlanes, lane, bit, (lane2, bit2)) ->
      let l2, b2 = Cpu.Machine.second_flip ~dlanes ~lane ~bit ~lane2 ~bit2 in
      let l1 = lane mod dlanes and b1 = bit land 63 in
      l2 >= 0 && l2 < dlanes && b2 >= 0 && b2 < 64 && (l2, b2) <> (l1, b1))

(* The campaign's own draw: the raw second lane is always at a non-zero
   offset so the common 4-lane destinations never alias even pre-wrap. *)
let prop_draw_double_distinct =
  QCheck.Test.make ~count:300 ~name:"draw_double lanes distinct for 4-lane destinations"
    QCheck.(pair small_nat (int_range 1 5000))
    (fun (seed, sites) ->
      let rng = Random.State.make [| seed |] in
      let e = Campaign.draw_double rng ~sites in
      match e.Fault.second with
      | Some (lane2, _) -> (lane2 - e.Fault.lane) mod 4 <> 0 && lane2 <> e.Fault.lane
      | None -> false)

(* ---- property: an injected flip actually changes the destination
   register.  The kernel is a chain of bijective ops (xor/add/odd-mul), so
   if the flip lands, the final output MUST differ from the golden run —
   an unchanged output would mean the flip never hit the register. *)

let bijective_chain_module () =
  let m = Ir.Builder.create_module () in
  let open Ir.Builder in
  let b, ps = func m "kernel" [ ("x", Ir.Types.i64) ] ~ret:Ir.Types.i64 in
  let x = match ps with [ p ] -> Ir.Instr.Reg p | _ -> assert false in
  let t1 = xor b x (i64c 0x5A5A5A5A) in
  let t2 = add b t1 (i64c 0x1234567) in
  let t3 = mul b t2 (i64c 0x9E3779B1) in
  let t4 = xor b t3 (i64c 0x0F0F0F0F) in
  ret b (Some t4);
  let b, _ = func m ~hardened:false "main" [ ("n", Ir.Types.i64) ] in
  let r = callv b ~ret:Ir.Types.i64 "kernel" [ i64c 987654321 ] in
  call0 b "output_i64" [ r ];
  ret b None;
  m

let prop_flip_changes_register =
  let spec =
    Fault.make_spec (Elzar.prepare Elzar.Native_novec (bijective_chain_module ())) "main"
      ~args:[| 1L |]
  in
  let golden = Fault.golden spec in
  let sites = golden.Cpu.Machine.inject_sites in
  QCheck.Test.make ~count:200 ~name:"injected flip changes the destination register"
    QCheck.(triple small_nat (int_bound 63) (int_bound 31))
    (fun (k, bit, lane) ->
      let at = 1 + (k mod sites) in
      let r =
        Fault.run_experiment spec
          { Fault.at; lane; bit; second = None; kind = Cpu.Machine.Reg_flip }
      in
      (* the site is always reached, the flip always lands, and — every op
         being a bijection in the flipped register — always propagates *)
      r.Cpu.Machine.fault_injected
      && r.Cpu.Machine.output_bytes <> golden.Cpu.Machine.output_bytes
      && Fault.classify ~golden r = Fault.Sdc)

(* The extended recovery handles every single-bit fault the basic one does. *)
let test_extended_recovery () =
  let spec =
    spec_of
      (Elzar.Hardened { Elzar.Harden_config.default with recovery = Elzar.Harden_config.Extended })
  in
  let golden = Fault.golden spec in
  let sites = golden.Cpu.Machine.inject_sites in
  let bad = ref 0 in
  for k = 0 to 50 do
    let at = 1 + (k * 13 mod sites) in
    match Fault.inject_one spec ~golden ~at ~lane:(k mod 4) ~bit:((k * 3) mod 64) with
    | Fault.Hang | Fault.Deadlock | Fault.Os_detected | Fault.Sdc | Fault.Not_reached ->
        incr bad
    | Fault.Elzar_corrected | Fault.Masked -> ()
  done;
  check_bool "extended recovery: at most the return window leaks" true (!bad <= 2)

(* In a load-heavy kernel the future-AVX gather mode closes the extracted
   address window: corrected faults still occur, via the FPGA-style vote. *)
let test_future_avx_corrects () =
  let m = Ir.Builder.create_module () in
  Ir.Builder.global m "a" 512;
  let open Ir.Builder in
  let b, _ = func m "kernel" [] ~ret:Ir.Types.i64 in
  let acc = fresh b ~name:"acc" Ir.Types.i64 in
  assign b acc (i64c 0);
  for_ b ~lo:(i64c 0) ~hi:(i64c 60) (fun i ->
      let v = load b Ir.Types.i64 (gep b (Ir.Instr.Glob "a") (and_ b i (i64c 63)) 8) in
      assign b acc (add b (Reg acc) v));
  ret b (Some (Reg acc));
  let b, _ = func m ~hardened:false "main" [ ("n", Ir.Types.i64) ] in
  let r = callv b ~ret:Ir.Types.i64 "kernel" [] in
  call0 b "output_i64" [ r ];
  ret b None;
  let spec =
    Fault.make_spec (Elzar.prepare (Elzar.Hardened Elzar.Harden_config.future_avx) m) "main"
      ~args:[| 1L |]
  in
  let golden = Fault.golden spec in
  let sites = golden.Cpu.Machine.inject_sites in
  let bad = ref 0 in
  for k = 0 to 60 do
    let at = 1 + (k * 3 mod sites) in
    match Fault.inject_one spec ~golden ~at ~lane:(k mod 4) ~bit:((k * 7) mod 64) with
    | Fault.Sdc -> incr bad
    | _ -> ()
  done;
  check_bool "gather mode: almost no SDCs" true (!bad <= 2)

(* ---- majority4: the recovery vote itself ---- *)

let test_majority4 () =
  let of_arr a = Cpu.Machine.majority4 ~n:(Array.length a) (fun i -> a.(i)) in
  Alcotest.(check int64) "3-1 split returns the majority" 7L (of_arr [| 7L; 7L; 9L; 7L |]);
  Alcotest.(check int64) "4-0 split returns the value" 5L (of_arr [| 5L; 5L; 5L; 5L |]);
  Alcotest.(check int64) "pair among four wins" 3L (of_arr [| 1L; 3L; 2L; 3L |]);
  Alcotest.(check int64) "2-2 split picks the first pair" 1L (of_arr [| 1L; 1L; 2L; 2L |]);
  let raises a =
    match of_arr a with
    | _ -> false
    | exception Cpu.Machine.Trap Cpu.Machine.Elzar_fatal -> true
  in
  check_bool "all-distinct has no majority" true (raises [| 1L; 2L; 3L; 4L |])

(* ---- the re-execution pipeline end to end: find a double-bit same-bit
   fault that fail-stops the Extended build (a 2-2 lane split, no
   majority), then check the same fault is *corrected* under Reexec — the
   rollback restarts the hardened call and the one-shot injection does not
   re-fire — and still fail-stops under an exhausted (0-budget) Reexec. *)

let test_reexec_corrects_no_majority () =
  let ext = spec_of (Elzar.Hardened Elzar.Harden_config.extended) in
  let rex = spec_of (Elzar.Hardened Elzar.Harden_config.reexec) in
  let rex0 =
    spec_of
      (Elzar.Hardened
         { Elzar.Harden_config.default with recovery = Elzar.Harden_config.Reexec 0 })
  in
  let golden = Fault.golden ext in
  let sites = golden.Cpu.Machine.inject_sites in
  let exp_at at =
    { Fault.at; lane = 0; bit = 3; second = Some (1, 3); kind = Cpu.Machine.Reg_flip }
  in
  (* scan for a site where the 2-2 split reaches a vote and fail-stops *)
  let rec find at =
    if at > min sites 120 then None
    else
      let r = Fault.run_experiment ext (exp_at at) in
      if r.Cpu.Machine.trap = Some Cpu.Machine.Elzar_fatal then Some at else find (at + 1)
  in
  match find 1 with
  | None -> Alcotest.fail "no fail-stopping 2-2 fault found in the first 120 sites"
  | Some at ->
      let r = Fault.run_experiment rex (exp_at at) in
      check_bool "reexec run rolled back" true (r.Cpu.Machine.reexecutions > 0);
      check_bool "reexec run retried the vote" true (r.Cpu.Machine.retried_faults > 0);
      Alcotest.(check string) "reexec outcome"
        (Fault.outcome_to_string Fault.Elzar_corrected)
        (Fault.outcome_to_string (Fault.classify ~golden r));
      check_bool "detection latency recorded" true (r.Cpu.Machine.detect_latency <> None);
      let r0 = Fault.run_experiment rex0 (exp_at at) in
      Alcotest.(check string) "exhausted budget still fail-stops"
        (Fault.outcome_to_string Fault.Os_detected)
        (Fault.outcome_to_string (Fault.classify ~golden r0))

(* ---- per-model campaigns: kernel with hardened loads and branches so
   every site stream is non-empty, then the engine's core guarantee per
   fault model: bit-identical stats and observations for 1/2/4 workers. *)

let loads_and_branches_module () =
  let m = Ir.Builder.create_module () in
  Ir.Builder.global m "a" 512;
  let open Ir.Builder in
  let b, _ = func m "kernel" [] ~ret:Ir.Types.i64 in
  let acc = fresh b ~name:"acc" Ir.Types.i64 in
  assign b acc (i64c 0);
  for_ b ~lo:(i64c 0) ~hi:(i64c 50) (fun i ->
      let v = load b Ir.Types.i64 (gep b (Ir.Instr.Glob "a") (and_ b i (i64c 63)) 8) in
      assign b acc (add b (Reg acc) (xor b v (shl b i (i64c 2)))));
  ret b (Some (Reg acc));
  let b, _ = func m ~hardened:false "main" [ ("n", Ir.Types.i64) ] in
  let r = callv b ~ret:Ir.Types.i64 "kernel" [] in
  call0 b "output_i64" [ r ];
  ret b None;
  m

let test_model_campaigns_deterministic () =
  let spec =
    Fault.make_spec
      (Elzar.prepare (Elzar.Hardened Elzar.Harden_config.default)
         (loads_and_branches_module ()))
      "main" ~args:[| 1L |]
  in
  let golden = Fault.golden spec in
  check_bool "mem sites counted" true (golden.Cpu.Machine.mem_sites > 0);
  check_bool "branch sites counted" true (golden.Cpu.Machine.branch_sites > 0);
  List.iter
    (fun model ->
      let r1 = Campaign.model_campaign ~seed:5 ~n:10 ~jobs:1 ~model spec in
      let r2 = Campaign.model_campaign ~seed:5 ~n:10 ~jobs:2 ~model spec in
      let r4 = Campaign.model_campaign ~seed:5 ~n:10 ~jobs:4 ~model spec in
      let tag = Fault.model_to_string model in
      check_bool (tag ^ ": 1 vs 2 workers identical") true
        (r1.Campaign.stats = r2.Campaign.stats && r1.Campaign.outcomes = r2.Campaign.outcomes);
      check_bool (tag ^ ": 1 vs 4 workers identical") true
        (r1.Campaign.stats = r4.Campaign.stats && r1.Campaign.outcomes = r4.Campaign.outcomes))
    Fault.all_models

(* ---- deadlocks are their own bucket, folded into crashed% ---- *)

let test_deadlock_counted_separately () =
  let spec = spec_of (Elzar.Hardened Elzar.Harden_config.default) in
  let golden = Fault.golden spec in
  let r = { golden with Cpu.Machine.trap = Some Cpu.Machine.Deadlock } in
  Alcotest.(check string) "classified as deadlock"
    (Fault.outcome_to_string Fault.Deadlock)
    (Fault.outcome_to_string (Fault.classify ~golden r));
  let s = Fault.add_outcome Fault.empty_stats Fault.Deadlock in
  Alcotest.(check int) "deadlock bucket" 1 s.Fault.deadlock;
  Alcotest.(check int) "not in hang bucket" 0 s.Fault.hang;
  check_bool "still a crash for Table I" true (Fault.crashed_pct s = 100.0)

(* ---- hang budget derives from the golden run, floored and capped ---- *)

let test_hang_budget () =
  let spec = spec_of (Elzar.Hardened Elzar.Harden_config.default) in
  let golden = Fault.golden spec in
  let b = Fault.hang_budget ~golden spec in
  let expect =
    min spec.Fault.max_instrs
      (max 1_000_000 (20 * golden.Cpu.Machine.totals.Cpu.Counters.instrs))
  in
  Alcotest.(check int) "budget formula" expect b;
  check_bool "budget well below the default cap" true (b < spec.Fault.max_instrs);
  let tight = { spec with Fault.max_instrs = 500 } in
  Alcotest.(check int) "spec budget stays an upper bound" 500
    (Fault.hang_budget ~golden tight)

(* ---- a corrupt checkpoint file restarts the campaign instead of
   crashing it (and instead of silently resuming garbage) ---- *)

let test_corrupt_checkpoint_restarts () =
  let spec = spec_of (Elzar.Hardened Elzar.Harden_config.default) in
  let baseline = Campaign.single ~seed:31 ~n:12 ~jobs:1 spec in
  let path = Filename.temp_file "elzar_campaign" ".ck" in
  let oc = open_out_bin path in
  output_string oc "not a checkpoint at all";
  close_out oc;
  let r = Campaign.single ~seed:31 ~n:12 ~jobs:1 ~checkpoint:path spec in
  check_bool "campaign completed from scratch" true
    (r.Campaign.stats = baseline.Campaign.stats);
  Alcotest.(check int) "all experiments re-executed" baseline.Campaign.experiments_run
    r.Campaign.experiments_run;
  if Sys.file_exists path then Sys.remove path

(* ---- the Fig. 13-extension acceptance property: under the adversarial
   double-bit same-bit campaign, Reexec strictly reduces crashed%
   relative to Extended (no-majority faults become corrections) ---- *)

let test_reexec_reduces_crashes () =
  let ext = spec_of (Elzar.Hardened Elzar.Harden_config.extended) in
  let rex = spec_of (Elzar.Hardened Elzar.Harden_config.reexec) in
  let re = Campaign.double ~seed:29 ~n:30 ~same_bit:true ~jobs:2 ext in
  let rr = Campaign.double ~seed:29 ~n:30 ~same_bit:true ~jobs:2 rex in
  let ce = Fault.crashed_pct re.Campaign.stats
  and cr = Fault.crashed_pct rr.Campaign.stats in
  check_bool "extended fail-stops some 2-2 faults" true (ce > 0.0);
  check_bool
    (Printf.sprintf "reexec crashes less (%.1f%% < %.1f%%)" cr ce)
    true (cr < ce);
  check_bool "reexec converts them into corrections" true
    (rr.Campaign.stats.Fault.corrected > re.Campaign.stats.Fault.corrected)

let tests =
  [
    Alcotest.test_case "pure compute fully protected" `Slow test_pure_compute_always_protected;
    Alcotest.test_case "native is vulnerable" `Quick test_native_is_vulnerable;
    Alcotest.test_case "campaign stats partition" `Quick test_campaign_stats_consistent;
    Alcotest.test_case "campaign parallel determinism" `Quick
      test_campaign_parallel_deterministic;
    Alcotest.test_case "not-reached sites are discarded" `Quick test_not_reached;
    Alcotest.test_case "checkpoint and resume" `Quick test_checkpoint_resume;
    Alcotest.test_case "extended recovery" `Slow test_extended_recovery;
    Alcotest.test_case "future-AVX closes the window" `Slow test_future_avx_corrects;
    Alcotest.test_case "majority4 vote" `Quick test_majority4;
    Alcotest.test_case "reexec corrects no-majority faults" `Quick
      test_reexec_corrects_no_majority;
    Alcotest.test_case "model campaigns worker-invariant" `Quick
      test_model_campaigns_deterministic;
    Alcotest.test_case "deadlocks counted separately" `Quick test_deadlock_counted_separately;
    Alcotest.test_case "hang budget from golden run" `Quick test_hang_budget;
    Alcotest.test_case "corrupt checkpoint restarts" `Quick test_corrupt_checkpoint_restarts;
    Alcotest.test_case "reexec reduces crashed% vs extended" `Slow test_reexec_reduces_crashes;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_second_flip_never_cancels; prop_draw_double_distinct; prop_flip_changes_register ]
