(* Supervised campaign execution tests: every chaos path end-to-end
   against the real engine (host-exception retry/quarantine, watchdog
   deadlines, worker-domain death and respawn), quarantine persistence
   across checkpoint resume, bit-identity of the deterministic results
   with supervision on/off and for any worker count, cooperative
   cancellation, and the supervisor's deadline arithmetic.

   The workload is Test_fault's pure-compute kernel: a single
   deterministic path whose injection sites are all always reached, so a
   campaign of [n] experiments yields exactly [n] outcomes in plan-slot
   order (no Not_reached redraws).  That makes the strongest assertion
   cheap: quarantining slot [s] must yield precisely the baseline
   outcomes with index [s] removed. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let spec () = Test_fault.spec_of (Elzar.Hardened Elzar.Harden_config.default)

(* Tight watchdog knobs for the deadline tests: cold-start deadline
   factor x floor = 0.4 s, so a hung run is cut off quickly. *)
let tight =
  { Supervisor.default with Supervisor.deadline_factor = 2.0; deadline_floor = 0.2 }

let baseline_report =
  (* one unsupervised jobs=1 run, shared by the comparisons below *)
  let r = lazy (Campaign.single ~seed:51 ~n:16 ~jobs:1 (spec ())) in
  fun () -> Lazy.force r

(* Baseline outcomes with the given plan slots removed: what a campaign
   that quarantined exactly those slots must report. *)
let outcomes_without slots =
  let b = (baseline_report ()).Campaign.outcomes in
  Array.of_list
    (List.filteri (fun i _ -> not (List.mem i slots)) (Array.to_list b))

let results_equal (r : Campaign.report) (expect : (Fault.experiment * Fault.obs) array)
    =
  r.Campaign.outcomes = expect
  && r.Campaign.stats
     = Array.fold_left
         (fun s (_, o) -> Fault.add_outcome s o.Fault.o_outcome)
         Fault.empty_stats expect

(* ---- supervision off vs on: bit-identical results at any job count ---- *)

let test_supervised_matches_unsupervised () =
  let b = baseline_report () in
  check_int "baseline has no discards" 16 (Array.length b.Campaign.outcomes);
  List.iter
    (fun jobs ->
      let r =
        Campaign.single ~seed:51 ~n:16 ~jobs ~supervise:Supervisor.default (spec ())
      in
      check_bool
        (Printf.sprintf "supervised jobs=%d matches unsupervised" jobs)
        true
        (r.Campaign.stats = b.Campaign.stats
        && r.Campaign.outcomes = b.Campaign.outcomes);
      check_bool "nothing quarantined" true (r.Campaign.quarantined = []);
      check_int "no worker deaths" 0 r.Campaign.worker_deaths;
      check_bool "not interrupted" false r.Campaign.interrupted)
    [ 1; 2; 4 ]

(* ---- host exception on the Nth experiment: retried, then clean ---- *)

let test_chaos_raise_retried () =
  let c = Supervisor.chaos ~slot:3 Supervisor.Chaos_raise in
  let r =
    Campaign.single ~seed:51 ~n:16 ~jobs:1 ~supervise:Supervisor.default
      ~chaos:[ c ] (spec ())
  in
  (* one-shot: the first execution raised, the deterministic re-execution
     succeeded, and nothing reached the report *)
  check_int "slot executed twice" 2 (Supervisor.chaos_hits c);
  check_bool "report identical to chaos-free baseline" true
    (results_equal r (baseline_report ()).Campaign.outcomes);
  check_bool "no quarantine" true (r.Campaign.quarantined = [])

(* ---- host exception on every attempt: quarantined, campaign continues ---- *)

let test_chaos_raise_persistent_quarantines () =
  let c = Supervisor.chaos ~persistent:true ~slot:2 Supervisor.Chaos_raise in
  let r =
    Campaign.single ~seed:51 ~n:16 ~jobs:1 ~supervise:Supervisor.default
      ~chaos:[ c ] (spec ())
  in
  (match r.Campaign.quarantined with
  | [ te ] ->
      check_bool "kind" true (te.Supervisor.te_kind = Supervisor.Host_exception);
      check_int "slot" 2 te.Supervisor.te_slot;
      check_int "attempts = 1 + retries" 3 te.Supervisor.te_attempts;
      check_bool "detail names the exception" true
        (te.Supervisor.te_detail = "Test_supervisor.Supervisor.Chaos_failure"
        || String.length te.Supervisor.te_detail > 0)
  | l -> Alcotest.failf "expected 1 quarantine, got %d" (List.length l));
  check_int "all attempts consumed" 3 (Supervisor.chaos_hits c);
  check_bool "other 15 outcomes unaffected" true (results_equal r (outcomes_without [ 2 ]))

(* ---- wall-clock runaway: watchdog aborts twice, then quarantines ---- *)

let test_chaos_hang_deadline () =
  let c = Supervisor.chaos ~persistent:true ~slot:1 Supervisor.Chaos_hang in
  let r = Campaign.single ~seed:51 ~n:16 ~jobs:1 ~supervise:tight ~chaos:[ c ] (spec ()) in
  (match r.Campaign.quarantined with
  | [ te ] ->
      check_bool "kind" true (te.Supervisor.te_kind = Supervisor.Deadline);
      check_int "slot" 1 te.Supervisor.te_slot;
      check_int "aborted twice" 2 te.Supervisor.te_attempts
  | l -> Alcotest.failf "expected 1 deadline quarantine, got %d" (List.length l));
  check_bool "other 15 outcomes unaffected" true (results_equal r (outcomes_without [ 1 ]))

(* ---- transient hang: aborted once, retried clean ---- *)

let test_chaos_hang_once_retried () =
  let c = Supervisor.chaos ~slot:6 Supervisor.Chaos_hang in
  let r = Campaign.single ~seed:51 ~n:16 ~jobs:1 ~supervise:tight ~chaos:[ c ] (spec ()) in
  check_bool "report identical to chaos-free baseline" true
    (results_equal r (baseline_report ()).Campaign.outcomes);
  check_bool "no quarantine" true (r.Campaign.quarantined = [])

(* ---- slow experiment: finishes within its deadline, untouched ---- *)

let test_chaos_slow_tolerated () =
  let c = Supervisor.chaos ~slot:4 (Supervisor.Chaos_slow 0.05) in
  let r =
    (* floor 0.5 s: the 50 ms stall stays well inside every deadline *)
    Campaign.single ~seed:51 ~n:16 ~jobs:1
      ~supervise:{ tight with Supervisor.deadline_floor = 0.5 }
      ~chaos:[ c ] (spec ())
  in
  check_int "slot executed once" 1 (Supervisor.chaos_hits c);
  check_bool "report identical to chaos-free baseline" true
    (results_equal r (baseline_report ()).Campaign.outcomes);
  check_bool "no quarantine" true (r.Campaign.quarantined = [])

(* ---- worker-domain death: detected, slot requeued, worker respawned ---- *)

let test_chaos_kill_respawn () =
  (* one-shot kill: the worker dies, the slot is requeued and succeeds on
     its second execution — the report must not show a trace of it *)
  let c = Supervisor.chaos ~slot:5 Supervisor.Chaos_kill in
  let r =
    Campaign.single ~seed:51 ~n:16 ~jobs:2 ~supervise:Supervisor.default
      ~chaos:[ c ] (spec ())
  in
  check_int "one worker death" 1 r.Campaign.worker_deaths;
  check_bool "report identical to chaos-free baseline" true
    (results_equal r (baseline_report ()).Campaign.outcomes);
  check_bool "no quarantine" true (r.Campaign.quarantined = [])

let test_chaos_kill_persistent_quarantines () =
  let c = Supervisor.chaos ~persistent:true ~slot:0 Supervisor.Chaos_kill in
  let r =
    Campaign.single ~seed:51 ~n:16 ~jobs:2 ~supervise:Supervisor.default
      ~chaos:[ c ] (spec ())
  in
  (match r.Campaign.quarantined with
  | [ te ] ->
      check_bool "kind" true (te.Supervisor.te_kind = Supervisor.Worker_death);
      check_int "slot" 0 te.Supervisor.te_slot;
      check_int "died on every allowed execution" 3 te.Supervisor.te_attempts
  | l -> Alcotest.failf "expected 1 worker-death quarantine, got %d" (List.length l));
  check_int "three worker deaths" 3 r.Campaign.worker_deaths;
  check_bool "other 15 outcomes unaffected" true (results_equal r (outcomes_without [ 0 ]))

(* ---- mixed chaos storm, any worker count: campaign completes in
   degraded mode with the same results block everywhere ---- *)

let test_chaos_storm_worker_invariant () =
  let run jobs =
    Campaign.single ~seed:51 ~n:16 ~jobs ~supervise:tight
      ~chaos:
        [
          Supervisor.chaos ~persistent:true ~slot:3 Supervisor.Chaos_raise;
          Supervisor.chaos ~persistent:true ~slot:7 Supervisor.Chaos_hang;
          Supervisor.chaos ~slot:9 Supervisor.Chaos_raise;
          Supervisor.chaos ~slot:11 (Supervisor.Chaos_slow 0.02);
        ]
      (spec ())
  in
  let expect = outcomes_without [ 3; 7 ] in
  List.iter
    (fun jobs ->
      let r = run jobs in
      check_int
        (Printf.sprintf "jobs=%d: two quarantines" jobs)
        2
        (List.length r.Campaign.quarantined);
      check_bool
        (Printf.sprintf "jobs=%d: quarantines in slot order" jobs)
        true
        (List.map (fun te -> te.Supervisor.te_slot) r.Campaign.quarantined = [ 3; 7 ]);
      check_bool
        (Printf.sprintf "jobs=%d: surviving outcomes bit-identical" jobs)
        true (results_equal r expect))
    [ 1; 2; 4 ]

(* ---- quarantine persists in the checkpoint: a resumed campaign never
   re-executes a known-poison plan ---- *)

let test_quarantine_persists_across_resume () =
  let path = Filename.temp_file "elzar_supervisor" ".ck" in
  Sys.remove path;
  let cancel = Atomic.make false in
  let r1 =
    Campaign.single ~seed:51 ~n:16 ~jobs:1 ~checkpoint:path ~cancel
      ~supervise:Supervisor.default
      ~chaos:[ Supervisor.chaos ~persistent:true ~slot:0 Supervisor.Chaos_raise ]
      ~progress:(fun p -> if p.Campaign.completed >= 10 then Atomic.set cancel true)
      (spec ())
  in
  check_bool "first run interrupted" true r1.Campaign.interrupted;
  check_int "slot 0 quarantined before the interrupt" 1
    (List.length r1.Campaign.quarantined);
  check_bool "checkpoint kept" true (Sys.file_exists path);
  (* resume with a FRESH chaos spec on the same slot: if the resume ever
     re-executed the quarantined experiment, this spec would be consulted
     and its hit counter would advance *)
  let probe = Supervisor.chaos ~persistent:true ~slot:0 Supervisor.Chaos_raise in
  let r2 =
    Campaign.single ~seed:51 ~n:16 ~jobs:1 ~checkpoint:path
      ~supervise:Supervisor.default ~chaos:[ probe ] (spec ())
  in
  check_int "quarantined slot never re-executed" 0 (Supervisor.chaos_hits probe);
  (match r2.Campaign.quarantined with
  | [ te ] ->
      check_int "quarantine restored from checkpoint" 0 te.Supervisor.te_slot;
      check_bool "restored record keeps its kind" true
        (te.Supervisor.te_kind = Supervisor.Host_exception)
  | l -> Alcotest.failf "expected the restored quarantine, got %d" (List.length l));
  check_bool "resume restored completed experiments" true (r2.Campaign.restored > 0);
  check_bool "final outcomes = baseline minus the poisoned slot" true
    (results_equal r2 (outcomes_without [ 0 ]));
  check_bool "checkpoint removed after completion" true (not (Sys.file_exists path))

(* ---- a raising progress callback must not kill the campaign ---- *)

let test_progress_exception_safe () =
  let calls = ref 0 in
  let r =
    Campaign.single ~seed:51 ~n:16 ~jobs:1
      ~progress:(fun _ ->
        incr calls;
        failwith "progress consumer bug")
      (spec ())
  in
  check_bool "campaign completed despite raising progress" true
    (r.Campaign.stats = (baseline_report ()).Campaign.stats);
  check_int "callback still called every experiment" 16 !calls

(* ---- cancellation without supervision: stops at the next boundary ---- *)

let test_cancel_unsupervised () =
  let cancel = Atomic.make false in
  let r =
    Campaign.single ~seed:51 ~n:16 ~jobs:1 ~cancel
      ~progress:(fun p -> if p.Campaign.completed >= 5 then Atomic.set cancel true)
      (spec ())
  in
  check_bool "interrupted" true r.Campaign.interrupted;
  check_bool "partial outcomes only" true (Array.length r.Campaign.outcomes < 16);
  check_bool "at least the 5 completed" true (Array.length r.Campaign.outcomes >= 5)

(* ---- deadline arithmetic: cold start and running median ---- *)

let test_deadline_median () =
  let cfg =
    { Supervisor.default with Supervisor.deadline_factor = 3.0; deadline_floor = 0.5 }
  in
  let s = Supervisor.start cfg ~jobs:1 in
  Fun.protect
    ~finally:(fun () -> Supervisor.stop s)
    (fun () ->
      Alcotest.(check (float 1e-9)) "cold start: factor x floor" 1.5
        (Supervisor.deadline s);
      List.iter (Supervisor.record_sample s) [ 1.0; 1.0; 1.0; 2.0; 8.0 ];
      Alcotest.(check (float 1e-9)) "factor x median" 3.0 (Supervisor.deadline s));
  let s2 = Supervisor.start cfg ~jobs:1 in
  Fun.protect
    ~finally:(fun () -> Supervisor.stop s2)
    (fun () ->
      List.iter (Supervisor.record_sample s2) [ 0.01; 0.01; 0.01 ];
      Alcotest.(check (float 1e-9)) "floor holds for fast runs" 0.5
        (Supervisor.deadline s2))

let tests =
  [
    Alcotest.test_case "supervised = unsupervised at jobs 1/2/4" `Quick
      test_supervised_matches_unsupervised;
    Alcotest.test_case "host exception retried clean" `Quick test_chaos_raise_retried;
    Alcotest.test_case "persistent exception quarantined" `Quick
      test_chaos_raise_persistent_quarantines;
    Alcotest.test_case "watchdog quarantines a hung run" `Quick test_chaos_hang_deadline;
    Alcotest.test_case "transient hang retried clean" `Quick test_chaos_hang_once_retried;
    Alcotest.test_case "slow run tolerated" `Quick test_chaos_slow_tolerated;
    Alcotest.test_case "worker death respawned clean" `Quick test_chaos_kill_respawn;
    Alcotest.test_case "repeated worker death quarantined" `Quick
      test_chaos_kill_persistent_quarantines;
    Alcotest.test_case "chaos storm worker-invariant" `Quick
      test_chaos_storm_worker_invariant;
    Alcotest.test_case "quarantine persists across resume" `Quick
      test_quarantine_persists_across_resume;
    Alcotest.test_case "raising progress callback survives" `Quick
      test_progress_exception_safe;
    Alcotest.test_case "cancel interrupts unsupervised runs" `Quick
      test_cancel_unsupervised;
    Alcotest.test_case "deadline median arithmetic" `Quick test_deadline_median;
  ]
