let () =
  Alcotest.run "elzar"
    [
      ("ir", Test_ir.tests);
      ("dataflow", Test_dataflow.tests);
      ("cpu", Test_cpu.tests);
      ("machine", Test_machine.tests);
      ("engine", Test_engine.tests);
      ("concurrency", Test_concurrency.tests);
      ("passes", Test_passes.tests);
      ("optimize", Test_optimize.tests);
      ("rtlib", Test_rtlib.tests);
      ("fault", Test_fault.tests);
      ("props", Test_props.tests);
      ("vecprops", Test_vecprops.tests);
      ("apps", Test_apps.tests);
      ("smoke", Test_smoke.tests);
      ("workloads", Test_workloads.tests);
      ("characteristics", Test_characteristics.tests);
      ("obs", Test_obs.tests);
      ("supervisor", Test_supervisor.tests);
    ]
