(** Extension beyond the paper: the PARSEC benchmarks it skipped (canneal
    had inline assembly, bodytrack C++ exceptions — §V-A); the IR
    reimplementation has neither limitation, so the ELZAR-vs-SWIFT-R
    question can be answered for them too. *)

let run () =
  Common.heading "Extension: the PARSEC benchmarks the paper could not evaluate";
  Printf.printf "%-10s %10s %10s %8s\n" "bench" "swift-r" "elzar" "delta";
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let e = Common.norm ~nthreads:16 w Common.elzar in
      let s = Common.norm ~nthreads:16 w Common.swiftr in
      Printf.printf "%-10s %10.2f %10.2f %+7.0f%%\n" w.Workloads.Workload.name s e
        (100.0 *. ((e /. s) -. 1.0)))
    Workloads.Registry.extended
