(** Figure 14: ELZAR vs SWIFT-R normalized runtime (16 threads), with the
    per-benchmark delta the paper annotates. *)

let run () =
  Common.heading "Figure 14: ELZAR vs SWIFT-R (16 threads, normalized to native)";
  Printf.printf "%-10s %10s %10s %8s\n" "bench" "swift-r" "elzar" "delta";
  let es = ref [] and ss = ref [] in
  List.iter
    (fun w ->
      let e = Common.norm ~nthreads:16 w Common.elzar in
      let s = Common.norm ~nthreads:16 w Common.swiftr in
      es := e :: !es;
      ss := s :: !ss;
      Printf.printf "%-10s %10.2f %10.2f %+7.0f%%\n" w.Workloads.Workload.name s e
        (100.0 *. ((e /. s) -. 1.0)))
    Common.all_workloads;
  Printf.printf "%-10s %10.2f %10.2f %+7.0f%%\n" "mean" (Common.gmean !ss)
    (Common.gmean !es)
    (100.0 *. ((Common.gmean !es /. Common.gmean !ss) -. 1.0))
