(** Figure 12: overhead breakdown by successively disabling ELZAR's checks
    (16 threads). *)

let configs =
  [
    ("all-checks", Common.elzar);
    ("no-loads", Common.elzar_with "elzar-noload" Elzar.Harden_config.no_load_checks);
    ("+no-stores", Common.elzar_with "elzar-nomem" Elzar.Harden_config.no_memory_checks);
    ("+no-branches", Common.elzar_with "elzar-nomembr" Elzar.Harden_config.no_mem_branch_checks);
    ("no-checks", Common.elzar_with "elzar-nochecks" Elzar.Harden_config.no_checks);
  ]

let run () =
  Common.heading "Figure 12: overhead breakdown by disabling checks (16 threads)";
  Printf.printf "%-10s" "bench";
  List.iter (fun (n, _) -> Printf.printf " %12s" n) configs;
  print_newline ();
  let sums = Array.make (List.length configs) [] in
  List.iter
    (fun w ->
      Printf.printf "%-10s" w.Workloads.Workload.name;
      List.iteri
        (fun i (_, f) ->
          let x = Common.norm ~nthreads:16 w f in
          sums.(i) <- x :: sums.(i);
          Printf.printf " %12.2f" x)
        configs;
      print_newline ())
    Common.all_workloads;
  Printf.printf "%-10s" "mean";
  Array.iter (fun xs -> Printf.printf " %12.2f" (Common.gmean xs)) sums;
  print_newline ()
