(** Figure 17: estimated ELZAR overhead with the proposed AVX changes
    (§VII-B): gather/scatter memory accesses with FPGA-offloaded checks and
    FLAGS-setting vector comparisons.  Unlike the paper's
    "decelerated-native" estimation, the proposed instructions are
    simulated directly. *)

let flavour = Common.elzar_with "elzar-future" Elzar.Harden_config.future_avx

let run () =
  Common.heading "Figure 17: ELZAR with proposed AVX extensions (16 threads)";
  Printf.printf "%-10s %10s %14s\n" "bench" "elzar" "future-elzar";
  let cur = ref [] and fut = ref [] in
  List.iter
    (fun w ->
      let e = Common.norm ~nthreads:16 w Common.elzar in
      let f = Common.norm ~nthreads:16 w flavour in
      cur := e :: !cur;
      fut := f :: !fut;
      Printf.printf "%-10s %10.2f %14.2f\n" w.Workloads.Workload.name e f)
    Common.all_workloads;
  Printf.printf "%-10s %10.2f %14.2f\n" "mean" (Common.gmean !cur) (Common.gmean !fut);
  Printf.printf "estimated overhead with proposed AVX: %.0f%%\n"
    (100.0 *. (Common.gmean !fut -. 1.0))
