bench/fig13.ml: Common Elzar Fault List Printf Workloads
