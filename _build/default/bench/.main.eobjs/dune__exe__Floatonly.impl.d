bench/floatonly.ml: Common Elzar List Printf Workloads
