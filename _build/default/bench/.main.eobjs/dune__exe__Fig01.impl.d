bench/fig01.ml: Apps Common Cpu Elzar List Printf Workloads
