bench/fig05.ml: Common Elzar Ir Option Printf
