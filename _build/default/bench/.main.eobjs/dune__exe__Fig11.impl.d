bench/fig11.ml: Common Cpu Hashtbl List Option Printf Workloads
