bench/fig17.ml: Common Elzar List Printf Workloads
