bench/bechamel_suite.ml: Analyze Apps Bechamel Benchmark Common Cpu Elzar Fault Hashtbl Instance List Measure Printf Staged Test Time Toolkit Workloads
