bench/main.ml: Ablate Array Bechamel_suite Common Ext Fig01 Fig05 Fig11 Fig12 Fig13 Fig14 Fig15 Fig17 Floatonly List Printf String Sys Tab02 Tab03 Tab04 Unix Workloads
