bench/tab04.ml: Common Cpu Elzar Printf Workloads
