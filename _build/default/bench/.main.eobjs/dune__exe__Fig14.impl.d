bench/fig14.ml: Common List Printf Workloads
