bench/fig12.ml: Array Common Elzar List Printf Workloads
