bench/main.mli:
