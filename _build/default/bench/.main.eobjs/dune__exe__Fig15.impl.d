bench/fig15.ml: Apps Common Cpu Elzar List Printf
