bench/common.ml: Cpu Elzar Hashtbl Ir List Option Printf String Workloads
