bench/ext.ml: Common List Printf Workloads
