bench/tab02.ml: Common Cpu List Printf Workloads
