bench/tab03.ml: Common Cpu List Printf Workloads
