bench/ablate.ml: Common Elzar Fault Ir List Printf Workloads
