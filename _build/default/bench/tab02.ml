(** Table II: runtime statistics of the native builds at 16 threads —
    L1D-miss and branch-miss ratios, and the fraction of loads, stores and
    branches over executed instructions (percent). *)

let run () =
  Common.heading "Table II: native runtime statistics (16 threads, %)";
  Printf.printf "%-10s %8s %8s %8s %8s %8s\n" "bench" "L1-miss" "br-miss" "loads" "stores"
    "branches";
  List.iter
    (fun w ->
      let r = Common.run ~nthreads:16 w Common.native in
      let c = r.Cpu.Machine.totals in
      Printf.printf "%-10s %8.2f %8.2f %8.2f %8.2f %8.2f\n" w.Workloads.Workload.name
        (Cpu.Counters.l1_miss_pct c) (Cpu.Counters.branch_miss_pct c)
        (Cpu.Counters.loads_pct c) (Cpu.Counters.stores_pct c)
        (Cpu.Counters.branches_pct c))
    Common.all_workloads
