(** Table IV (+ the §VII-A truncation measurement): normalized runtime of
    the AVX-based versions of the microbenchmarks w.r.t. native — checks
    disabled, so only the wrapper cost is measured, as in the paper. *)

let flavour = Common.elzar_with "elzar-nochecks" Elzar.Harden_config.no_checks

(* Normalized against the no-SIMD native build: the paper's microbenchmarks
   are hand-written volatile assembly that the compiler cannot
   auto-vectorize. *)
let row name avg worst =
  let overhead (w : Workloads.Workload.t) =
    let e = Common.run ~nthreads:1 w flavour in
    let n = Common.run ~nthreads:1 w Common.native_novec in
    float_of_int e.Cpu.Machine.wall_cycles /. float_of_int n.Cpu.Machine.wall_cycles
  in
  Printf.printf "%-12s %12.2f %12.2f\n" name (overhead avg) (overhead worst)

let run () =
  Common.heading "Table IV: AVX wrapper overheads (checks disabled, single thread)";
  Printf.printf "%-12s %12s %12s\n" "" "average-case" "worst-case";
  row "loads" Workloads.Micro.loads_avg Workloads.Micro.loads_worst;
  row "stores" Workloads.Micro.stores_avg Workloads.Micro.stores_worst;
  row "branches" Workloads.Micro.branches_avg Workloads.Micro.branches_worst;
  row "truncation" Workloads.Micro.trunc_avg Workloads.Micro.trunc_worst;
  row "division" Workloads.Micro.div_avg Workloads.Micro.div_worst;
  row "calls" Workloads.Micro.calls_avg Workloads.Micro.calls_worst
