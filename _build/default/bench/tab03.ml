(** Table III: instruction-level parallelism and the increase in executed
    instructions w.r.t. native, for ELZAR and SWIFT-R (16 threads).

    ILP is computed per busiest core (instructions / wall cycles / active
    threads); our 4-wide dispatch model caps it lower than the paper's
    macro-fused Haswell numbers, but the ordering (SWIFT-R > native >=
    ELZAR) is the reproduced claim. *)

(* per-core μops/cycle averaged weighted by μops: the equivalent of
   perf-stat's instructions/cycle on the paper's testbed (μops are our
   x86-instruction proxy; IR instructions are coarser) *)
let ilp (r : Cpu.Machine.result) =
  let num = ref 0.0 and den = ref 0.0 in
  List.iter
    (fun (c : Cpu.Counters.t) ->
      if c.Cpu.Counters.cycles > 0 && c.Cpu.Counters.uops > 100 then begin
        let w = float_of_int c.Cpu.Counters.uops in
        num := !num +. (w *. (w /. float_of_int c.Cpu.Counters.cycles));
        den := !den +. w
      end)
    r.Cpu.Machine.counters;
  if !den = 0.0 then 0.0 else !num /. !den

let run () =
  Common.heading "Table III: ILP and instruction increase vs native (16 threads)";
  Printf.printf "%-10s %10s %10s %10s %12s %12s\n" "bench" "ILP-nat" "ILP-elzar"
    "ILP-swiftr" "incr-elzar" "incr-swiftr";
  List.iter
    (fun w ->
      let n = Common.run ~nthreads:16 w Common.native in
      let e = Common.run ~nthreads:16 w Common.elzar in
      let s = Common.run ~nthreads:16 w Common.swiftr in
      let ni = float_of_int n.Cpu.Machine.totals.Cpu.Counters.uops in
      Printf.printf "%-10s %10.2f %10.2f %10.2f %11.2fx %11.2fx\n" w.Workloads.Workload.name
        (ilp n) (ilp e) (ilp s)
        (float_of_int e.Cpu.Machine.totals.Cpu.Counters.uops /. ni)
        (float_of_int s.Cpu.Machine.totals.Cpu.Counters.uops /. ni))
    Common.all_workloads
