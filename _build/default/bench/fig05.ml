(** Figures 5 and 10: the paper's walk-through of one counting loop in its
    native, SWIFT-R and ELZAR forms.  Regenerated as actual IR from the
    actual passes, not as a hand-drawn figure. *)

let loop_module () =
  let m = Ir.Builder.create_module () in
  let open Ir.Builder in
  let b, _ = func m "main" [] ~ret:Ir.Types.i64 in
  let r1 = fresh b ~name:"r1" Ir.Types.i64 in
  assign b r1 (i64c 0);
  (* loop: r1 = add r1, r2; cmp r1, r3; jne loop  (Fig. 5a) *)
  while_ b
    ~cond:(fun () -> icmp b Ir.Instr.Ine (Ir.Instr.Reg r1) (i64c 1000))
    ~body:(fun () -> assign b r1 (add b (Ir.Instr.Reg r1) (i64c 1)));
  ret b (Some (Ir.Instr.Reg r1));
  m

let show title m =
  Printf.printf "---- %s ----\n%s" title
    (Ir.Printer.func_to_string (Option.get (Ir.Instr.find_func m "main")))

let run () =
  Common.heading "Figures 5/10: one loop under each transformation";
  let m = loop_module () in
  show "native (Fig. 5a)" m;
  show "SWIFT-R: triplicated + majority voting (Fig. 5b)" (Elzar.prepare Elzar.Swiftr m);
  show "ELZAR: YMM data replication + vbr (Fig. 5c / Fig. 10b)"
    (Elzar.prepare (Elzar.Hardened Elzar.Harden_config.default) m)
