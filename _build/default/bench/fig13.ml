(** Figure 13: fault-injection reliability of native vs ELZAR (2 threads,
    smallest inputs, single-bit flips in destination registers of hardened
    code).  Paper: 12 benchmarks (mmul and fluidanimate excluded), 2,500
    injections each; the campaign size here is configurable
    (--injections). *)

let campaign (w : Workloads.Workload.t) (b : Elzar.build) : Fault.stats =
  let spec = Workloads.Workload.fi_spec w ~build:b () in
  Fault.campaign ~n:!Common.fi_injections spec

let run () =
  Common.heading
    (Printf.sprintf "Figure 13: fault injection outcomes (%d injections per bar, 2 threads)"
       !Common.fi_injections);
  Printf.printf "%-10s | %28s | %38s\n" "bench" "native" "elzar";
  Printf.printf "%-10s | %8s %8s %8s | %8s %8s %8s %10s\n" "" "crashed%" "correct%" "SDC%"
    "crashed%" "correct%" "SDC%" "corrected%";
  let agg = ref [] in
  List.iter
    (fun w ->
      if w.Workloads.Workload.fi_ok then begin
        let n = campaign w Elzar.Native_novec in
        let e = campaign w (Elzar.Hardened Elzar.Harden_config.default) in
        agg := (n, e) :: !agg;
        Printf.printf "%-10s | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f %10.1f\n"
          w.Workloads.Workload.name (Fault.crashed_pct n) (Fault.correct_pct n)
          (Fault.sdc_pct n) (Fault.crashed_pct e) (Fault.correct_pct e) (Fault.sdc_pct e)
          (100.0 *. float_of_int e.Fault.corrected /. float_of_int (max 1 e.Fault.runs))
      end)
    Common.all_workloads;
  let mean f side = Common.mean (List.map (fun (n, e) -> f (side (n, e))) !agg) in
  Printf.printf "%-10s | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f\n" "mean"
    (mean Fault.crashed_pct fst) (mean Fault.correct_pct fst) (mean Fault.sdc_pct fst)
    (mean Fault.crashed_pct snd) (mean Fault.correct_pct snd) (mean Fault.sdc_pct snd)
