(** §V-B "Floating point-only protection": overhead of hardening only
    floats/doubles on the FP-heavy PARSEC benchmarks (paper: 9-35% for
    blackscholes, 10-18% for fluidanimate, 40-60% for swaptions). *)

let flavour = Common.elzar_with "elzar-floats" Elzar.Harden_config.floats_only

let run () =
  Common.heading "Floats-only protection overhead over native (%)";
  Printf.printf "%-10s" "bench";
  List.iter (fun t -> Printf.printf " %6dT" t) Common.threads_sweep;
  print_newline ();
  List.iter
    (fun w ->
      Printf.printf "%-10s" w.Workloads.Workload.name;
      List.iter
        (fun nthreads ->
          let x = Common.norm ~nthreads w flavour in
          Printf.printf " %+5.0f%%" (100.0 *. (x -. 1.0)))
        Common.threads_sweep;
      print_newline ())
    Workloads.Registry.float_heavy
