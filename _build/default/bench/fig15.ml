(** Figure 15: case-study throughput, native vs ELZAR, 1-16 threads —
    Memcached and SQLite3 under YCSB workloads A and D, Apache under an
    ab-style client. *)

let threads = [ 1; 2; 4; 8; 12; 16 ]

let series (app : Apps.App.t) (client : Apps.App.client) (b : Elzar.build) =
  List.map
    (fun nthreads ->
      let r = Apps.App.execute app ~build:b ~client ~nthreads in
      (match r.Cpu.Machine.trap with
      | Some t ->
          failwith
            (Printf.sprintf "fig15: %s trapped: %s" app.Apps.App.name
               (Cpu.Machine.string_of_trap t))
      | None -> ());
      Apps.App.throughput app r)
    threads

let run () =
  Common.heading "Figure 15: case-study throughput (requests/s, simulated 2 GHz)";
  Printf.printf "%-22s" "app/client/build";
  List.iter (fun t -> Printf.printf " %9dT" t) threads;
  print_newline ();
  List.iter
    (fun (app : Apps.App.t) ->
      List.iter
        (fun client ->
          let n = series app client Elzar.Native in
          let e = series app client (Elzar.Hardened Elzar.Harden_config.default) in
          let label b =
            Printf.sprintf "%s/%s/%s" app.Apps.App.name (Apps.App.client_to_string client) b
          in
          Printf.printf "%-22s" (label "native");
          List.iter (fun x -> Printf.printf " %10.0f" x) n;
          print_newline ();
          Printf.printf "%-22s" (label "elzar");
          List.iter (fun x -> Printf.printf " %10.0f" x) e;
          print_newline ();
          let ratios = List.map2 (fun a b -> a /. b) e n in
          Printf.printf "%-22s" (label "ratio");
          List.iter (fun x -> Printf.printf " %9.0f%%" (100.0 *. x)) ratios;
          print_newline ())
        app.Apps.App.clients)
    Apps.Registry_apps.all
