(** Figure 11: ELZAR's normalized runtime w.r.t. native for 1-16 threads. *)

let run () =
  Common.heading "Figure 11: ELZAR normalized runtime vs native (threads 1/2/4/8/16)";
  Printf.printf "%-10s" "bench";
  List.iter (fun t -> Printf.printf " %6dT" t) Common.threads_sweep;
  print_newline ();
  let per_thread = Hashtbl.create 8 in
  List.iter
    (fun w ->
      Printf.printf "%-10s" w.Workloads.Workload.name;
      List.iter
        (fun nthreads ->
          let x = Common.norm ~nthreads w Common.elzar in
          let prev = Option.value (Hashtbl.find_opt per_thread nthreads) ~default:[] in
          Hashtbl.replace per_thread nthreads (x :: prev);
          Printf.printf " %6.2f" x)
        Common.threads_sweep;
      print_newline ())
    Common.all_workloads;
  Printf.printf "%-10s" "mean";
  List.iter
    (fun nthreads ->
      Printf.printf " %6.2f" (Common.gmean (Hashtbl.find per_thread nthreads)))
    Common.threads_sweep;
  print_newline ();
  (* the paper's special case: string match vs the no-AVX native build *)
  let w = Workloads.Registry.find "smatch" in
  let na =
    let e = Common.run ~nthreads:16 w Common.elzar in
    let n = Common.run ~nthreads:16 w Common.native_novec in
    float_of_int e.Cpu.Machine.wall_cycles /. float_of_int n.Cpu.Machine.wall_cycles
  in
  Printf.printf "%-10s %6.2f   (string match vs native without AVX, 16T)\n" "smatch-na" na
