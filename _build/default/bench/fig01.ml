(** Figure 1: performance improvement of the native (SIMD-vectorized) build
    over the no-SIMD build — max runtime speedup over thread counts for the
    benchmarks, max throughput increase for the case studies. *)

let speedup_pct (w : Workloads.Workload.t) : float =
  let best =
    List.fold_left
      (fun acc nthreads ->
        let v = Common.run ~nthreads w Common.native in
        let n = Common.run ~nthreads w Common.native_novec in
        max acc
          (float_of_int n.Cpu.Machine.wall_cycles /. float_of_int v.Cpu.Machine.wall_cycles))
      0.0 [ 1; 4 ]
  in
  100.0 *. (best -. 1.0)

let app_speedup_pct (app : Apps.App.t) : float =
  let client = List.hd app.Apps.App.clients in
  let tput b = Apps.App.throughput app (Apps.App.execute app ~build:b ~client ~nthreads:4) in
  100.0 *. ((tput Elzar.Native /. tput Elzar.Native_novec) -. 1.0)

let run () =
  Common.heading "Figure 1: SIMD vectorization benefit (native vs no-SIMD, %)";
  List.iter
    (fun w ->
      Printf.printf "%-10s %+6.1f%%\n" w.Workloads.Workload.name (speedup_pct w))
    Common.all_workloads;
  List.iter
    (fun app -> Printf.printf "%-10s %+6.1f%%\n" app.Apps.App.name (app_speedup_pct app))
    Apps.Registry_apps.all
