let () =
  let w = Workloads.Registry.find (try Sys.argv.(1) with _ -> "hist") in
  let m = w.Workloads.Workload.build Workloads.Workload.Tiny in
  let f = Option.get (Ir.Instr.find_func m (try Sys.argv.(2) with _ -> "reduce")) in
  print_string (Ir.Printer.func_to_string f)
