bin/profile.mli:
