bin/debug.ml: Array Cpu Elzar List Printf Sys Workloads
