bin/debug.mli:
