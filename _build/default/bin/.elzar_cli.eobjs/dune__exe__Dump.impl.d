bin/dump.ml: Array Ir Option Sys Workloads
