bin/elzar_cli.mli:
