bin/elzar_cli.ml: Apps Arg Buffer Cmd Cmdliner Cpu Digest Elzar Fault Format Int64 Ir List Printf String Term Workloads
