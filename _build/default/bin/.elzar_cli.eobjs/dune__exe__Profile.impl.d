bin/profile.ml: Apps Array Cpu Elzar List Printf Sys Workloads
