bin/dump.mli:
