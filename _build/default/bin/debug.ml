let () =
  let w = Workloads.Registry.find (try Sys.argv.(1) with _ -> "hist") in
  let m = w.Workloads.Workload.build Workloads.Workload.Tiny in
  let prepared = Elzar.prepare Elzar.Native_novec m in
  let cfg = { Cpu.Machine.default_config with max_instrs = 3_000_000 } in
  let machine = Cpu.Machine.create ~cfg prepared in
  w.Workloads.Workload.init Workloads.Workload.Tiny machine;
  let r = Cpu.Machine.run ~args:[| 2L |] machine "main" in
  (match r.Cpu.Machine.trap with
  | Some t -> Printf.printf "TRAP: %s\n" (Cpu.Machine.string_of_trap t)
  | None -> Printf.printf "OK cycles=%d\n" r.Cpu.Machine.wall_cycles);
  List.iter
    (fun th ->
      let open Cpu.Machine in
      let frame_desc =
        match th.frames with
        | [] -> "done"
        | fr :: _ -> Printf.sprintf "%s pc=%d" fr.cf.Cpu.Code.cf_name fr.pc
      in
      Printf.printf "thread %d status=%s cycle=%d instrs=%d frame=%s\n" th.tid
        (match th.status with
        | Running -> "running"
        | Waiting t -> "waiting:" ^ string_of_int t
        | Waiting_barrier a -> Printf.sprintf "barrier:0x%Lx" a
        | Done -> "done")
        (Cpu.Timing.cycle th.timing) th.ctr.Cpu.Counters.instrs frame_desc)
    (List.rev machine.Cpu.Machine.threads)
