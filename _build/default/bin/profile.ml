(* Per-build counter comparison for one workload or app: the quick way to
   see where a hardening pass spends its instructions. *)

let builds =
  [
    Elzar.Native;
    Elzar.Native_novec;
    Elzar.Hardened Elzar.Harden_config.default;
    Elzar.Hardened Elzar.Harden_config.no_checks;
    Elzar.Hardened Elzar.Harden_config.future_avx;
    Elzar.Swiftr;
  ]

let report name (r : Cpu.Machine.result) =
  let c = r.Cpu.Machine.totals in
  Printf.printf "%-16s cycles=%-10d instrs=%-10d uops=%-10d avx=%-9d loads=%-8d l1miss=%-7d br=%-8d brmiss=%d\n"
    name r.Cpu.Machine.wall_cycles c.Cpu.Counters.instrs c.Cpu.Counters.uops
    c.Cpu.Counters.avx_instrs c.Cpu.Counters.loads c.Cpu.Counters.l1_misses
    c.Cpu.Counters.branches c.Cpu.Counters.branch_misses

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "linreg" in
  let nthreads = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2 in
  match List.find_opt (fun a -> a.Apps.App.name = name) Apps.Registry_apps.all with
  | Some app ->
      List.iter
        (fun b ->
          report (Elzar.build_name b)
            (Apps.App.execute app ~build:b ~client:(List.hd app.Apps.App.clients) ~nthreads))
        builds
  | None ->
      let w = Workloads.Registry.find name in
      List.iter
        (fun b ->
          report (Elzar.build_name b)
            (Workloads.Workload.execute w ~build:b ~nthreads ~size:Workloads.Workload.Small))
        builds
