(* Case-study scenario: hardening a key-value store.

   Runs the Memcached-like application under YCSB workload A with the
   native build and with ELZAR, and reports the throughput cost of triple
   modular redundancy — the paper's §VI question ("what does it cost to
   make a data-center service tolerate CPU faults?").

   Run with: dune exec examples/kvstore_hardening.exe *)

let () =
  let app = Apps.Registry_apps.find "memcached" in
  let client = Apps.App.Ycsb Apps.Ycsb.A in
  Printf.printf "%-8s %12s %12s %8s\n" "threads" "native" "elzar" "ratio";
  List.iter
    (fun nthreads ->
      let tput b = Apps.App.throughput app (Apps.App.execute app ~build:b ~client ~nthreads) in
      let n = tput Elzar.Native in
      let e = tput (Elzar.Hardened Elzar.Harden_config.default) in
      Printf.printf "%-8d %9.0f/s %9.0f/s %7.0f%%\n" nthreads n e (100.0 *. e /. n))
    [ 1; 2; 4; 8 ];
  Printf.printf
    "\nEvery request is processed with 4-way replicated data; a single\n\
     CPU bit flip in the probe/update path is outvoted by the other lanes.\n"
