(* Quickstart: the paper's Fig. 5 walk-through on a counting loop.

   Builds a small program with the IR builder, shows its native, SWIFT-R
   (instruction triplication) and ELZAR (AVX data replication) forms, runs
   all three on the simulated machine, and finally injects a bit flip into
   the hardened build and watches ELZAR's majority voting mask it.

   Run with: dune exec examples/quickstart.exe *)

let build_program () =
  let m = Ir.Builder.create_module () in
  let open Ir.Builder in
  let b, _ = func m "main" [] ~ret:Ir.Types.i64 in
  let acc = fresh b ~name:"acc" Ir.Types.i64 in
  assign b acc (i64c 0);
  (* the Fig. 5 loop: increment until the bound is reached *)
  for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c 10_000) (fun i ->
      assign b acc (add b (Ir.Instr.Reg acc) i));
  call0 b "output_i64" [ Ir.Instr.Reg acc ];
  ret b (Some (Ir.Instr.Reg acc));
  m

let show title m =
  Printf.printf "---- %s ----\n" title;
  print_string (Ir.Printer.func_to_string (Option.get (Ir.Instr.find_func m "main")))

let run_and_report build m =
  let r = Elzar.run build m "main" in
  Printf.printf "%-14s cycles=%-8d instrs=%-8d avx=%-8d output=%s\n"
    (Elzar.build_name build) r.Cpu.Machine.wall_cycles
    r.Cpu.Machine.totals.Cpu.Counters.instrs r.Cpu.Machine.totals.Cpu.Counters.avx_instrs
    (Digest.to_hex r.Cpu.Machine.output_digest)

let () =
  let m = build_program () in
  Ir.Verifier.verify_exn m;
  show "native IR (Fig. 5a)" m;
  show "SWIFT-R: triplicated instructions + majority voting (Fig. 5b)"
    (Elzar.prepare Elzar.Swiftr m);
  show "ELZAR: data replicated in YMM registers, vbr branches (Fig. 5c)"
    (Elzar.prepare (Elzar.Hardened Elzar.Harden_config.default) m);

  Printf.printf "---- executing all builds ----\n";
  run_and_report Elzar.Native m;
  run_and_report Elzar.Swiftr m;
  run_and_report (Elzar.Hardened Elzar.Harden_config.default) m;

  Printf.printf "---- injecting a bit flip into the hardened build ----\n";
  let spec =
    Fault.make_spec (Elzar.prepare (Elzar.Hardened Elzar.Harden_config.default) m) "main"
  in
  let golden = Fault.golden spec in
  Printf.printf "golden run: %d injectable instructions\n"
    golden.Cpu.Machine.inject_sites;
  let outcome =
    Fault.inject_one spec ~golden
      ~at:(golden.Cpu.Machine.inject_sites / 2)
      ~lane:2 ~bit:17
  in
  Printf.printf "fault at instruction %d, lane 2, bit 17: %s\n"
    (golden.Cpu.Machine.inject_sites / 2)
    (Fault.outcome_to_string outcome)
