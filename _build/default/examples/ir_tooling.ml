(* Scenario: file-based IR tooling.

   Hardened modules are plain text: this example dumps the ELZAR'd form of
   a workload kernel to a .eir file, parses it back, verifies it, and runs
   both copies to show they are the same program — the workflow for
   inspecting (or hand-editing) what the pass generated, like the paper's
   authors reading LLVM bitcode disassembly during their "test-driven"
   codegen exploration (§IV-A, footnote 4).

   Run with: dune exec examples/ir_tooling.exe [workload] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "linreg" in
  let w = Workloads.Registry.find name in
  let hardened =
    Elzar.prepare (Elzar.Hardened Elzar.Harden_config.default)
      (w.Workloads.Workload.build Workloads.Workload.Tiny)
  in
  let path = Filename.temp_file ("elzar_" ^ name ^ "_") ".eir" in
  let oc = open_out path in
  output_string oc (Ir.Printer.modul_to_string hardened);
  close_out oc;
  Printf.printf "wrote hardened IR to %s (%d functions)\n" path
    (List.length hardened.Ir.Instr.funcs);

  let reparsed = Ir.Parser.parse_file path in
  Ir.Verifier.verify_exn reparsed;
  Printf.printf "parsed back: %d functions, verifies\n"
    (List.length reparsed.Ir.Instr.funcs);

  let run m =
    let machine = Cpu.Machine.create m in
    w.Workloads.Workload.init Workloads.Workload.Tiny machine;
    let r = Cpu.Machine.run ~args:[| 2L |] machine "main" in
    (Digest.to_hex r.Cpu.Machine.output_digest, r.Cpu.Machine.wall_cycles)
  in
  let d1, c1 = run hardened in
  let d2, c2 = run reparsed in
  Printf.printf "original:  digest %s, %d cycles\n" d1 c1;
  Printf.printf "reparsed:  digest %s, %d cycles\n" d2 c2;
  if d1 = d2 && c1 = c2 then print_endline "round trip exact."
  else failwith "round trip diverged!"
