examples/kvstore_hardening.ml: Apps Elzar List Printf
