examples/float_only_hardening.ml: Cpu Elzar List Printf Workloads
