examples/kvstore_hardening.mli:
