examples/quickstart.mli:
