examples/float_only_hardening.mli:
