examples/quickstart.ml: Cpu Digest Elzar Fault Ir Option Printf
