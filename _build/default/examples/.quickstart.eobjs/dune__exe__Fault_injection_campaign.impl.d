examples/fault_injection_campaign.ml: Array Elzar Fault Printf Sys Workloads
