examples/ir_tooling.ml: Array Cpu Digest Elzar Filename Ir List Printf Sys Workloads
