(* Scenario: protecting only the floating-point unit (paper §V-B).

   AVX was designed for floating-point data parallelism, so hardening only
   floats/doubles is nearly free; this example compares full ELZAR against
   the stripped-down floats-only mode on the FP-heavy PARSEC benchmarks.

   Run with: dune exec examples/float_only_hardening.exe *)

let () =
  Printf.printf "%-8s %12s %12s %14s\n" "bench" "native" "elzar-full" "elzar-floats";
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let cycles b =
        (Workloads.Workload.execute w ~build:b ~nthreads:4 ~size:Workloads.Workload.Small)
          .Cpu.Machine.wall_cycles
      in
      let n = cycles Elzar.Native in
      let full = cycles (Elzar.Hardened Elzar.Harden_config.default) in
      let fl = cycles (Elzar.Hardened Elzar.Harden_config.floats_only) in
      Printf.printf "%-8s %12d %10.2fx %+12.0f%%\n" w.Workloads.Workload.name n
        (float_of_int full /. float_of_int n)
        (100.0 *. ((float_of_int fl /. float_of_int n) -. 1.0)))
    Workloads.Registry.float_heavy
