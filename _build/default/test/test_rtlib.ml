(* Tests of the IR runtime library (memcpy/memset/bzero/memcmp) and the
   inline libm kernels (exp/ln/sqrt/cndf accuracy). *)

open Ir

let check_bool = Alcotest.(check bool)

let run_mem_program mk =
  let m = Builder.create_module () in
  Builder.global m "src" 256;
  Builder.global m "dst" 256;
  let b, _ = Builder.func m ~hardened:false "main" [ ("n", Types.i64) ] in
  mk b;
  Builder.ret b None;
  let m = Workloads.Rtlib.link m in
  Verifier.verify_exn m;
  let machine = Cpu.Machine.create m in
  let base = Cpu.Machine.global_addr machine "src" in
  for i = 0 to 255 do
    Cpu.Memory.write machine.Cpu.Machine.mem ~width:1
      (Int64.add base (Int64.of_int i))
      (Int64.of_int ((i * 7) land 0xFF))
  done;
  let r = Cpu.Machine.run ~args:[| 0L |] machine "main" in
  check_bool "no trap" true (r.Cpu.Machine.trap = None);
  (machine, r)

let read_dst machine i =
  Cpu.Memory.read machine.Cpu.Machine.mem ~width:1
    (Int64.add (Cpu.Machine.global_addr machine "dst") (Int64.of_int i))

let test_memcpy () =
  (* odd length exercises the byte tail *)
  let machine, _ =
    run_mem_program (fun b ->
        Builder.call0 b "memcpy" [ Instr.Glob "dst"; Instr.Glob "src"; Builder.i64c 203 ])
  in
  let ok = ref true in
  for i = 0 to 202 do
    if read_dst machine i <> Int64.of_int ((i * 7) land 0xFF) then ok := false
  done;
  check_bool "copied exactly" true !ok;
  check_bool "byte past the end untouched" true (read_dst machine 203 = 0L)

let test_memset_bzero () =
  let machine, _ =
    run_mem_program (fun b ->
        Builder.call0 b "memset" [ Instr.Glob "dst"; Builder.i64c 0xAB; Builder.i64c 77 ];
        Builder.call0 b "bzero"
          [ Builder.gep b (Instr.Glob "dst") (Builder.i64c 10) 1; Builder.i64c 13 ])
  in
  check_bool "memset wrote" true (read_dst machine 0 = 0xABL && read_dst machine 76 = 0xABL);
  check_bool "bzero cleared middle" true (read_dst machine 10 = 0L && read_dst machine 22 = 0L);
  check_bool "bzero bounded" true (read_dst machine 9 = 0xABL && read_dst machine 23 = 0xABL)

let test_memcmp () =
  let machine, r =
    run_mem_program (fun b ->
        Builder.call0 b "memcpy" [ Instr.Glob "dst"; Instr.Glob "src"; Builder.i64c 64 ];
        let eq =
          Builder.callv b ~ret:Types.i64 "memcmp"
            [ Instr.Glob "dst"; Instr.Glob "src"; Builder.i64c 64 ]
        in
        Builder.call0 b "output_i64" [ eq ];
        (* perturb one byte and compare again *)
        Builder.store b (Builder.i8c 0xFF) (Builder.gep b (Instr.Glob "dst") (Builder.i64c 33) 1);
        let ne =
          Builder.callv b ~ret:Types.i64 "memcmp"
            [ Instr.Glob "dst"; Instr.Glob "src"; Builder.i64c 64 ]
        in
        Builder.call0 b "output_i64" [ ne ])
  in
  ignore machine;
  let out = Bytes.of_string r.Cpu.Machine.output_bytes in
  check_bool "equal buffers -> 0" true (Bytes.get_int64_le out 0 = 0L);
  check_bool "differing buffers -> nonzero" true (Bytes.get_int64_le out 8 <> 0L)

(* ---- math kernel accuracy, evaluated through the simulator ---- *)

let eval_math mk (inputs : float list) : float list =
  let m = Builder.create_module () in
  let b, _ = Builder.func m "main" [ ("n", Types.i64) ] in
  List.iter
    (fun x -> Builder.call0 b "output_f64" [ mk b (Builder.f64c x) ])
    inputs;
  Builder.ret b None;
  Verifier.verify_exn m;
  let r = Cpu.Machine.run_module m "main" ~args:[| 0L |] in
  let out = Bytes.of_string r.Cpu.Machine.output_bytes in
  List.mapi (fun i _ -> Int64.float_of_bits (Bytes.get_int64_le out (i * 8))) inputs

let rel_err a b = Float.abs (a -. b) /. Float.abs b

let test_exp_accuracy () =
  let xs = [ -5.0; -1.0; -0.1; 0.0; 0.3; 1.0; 2.5; 10.0 ] in
  let got = eval_math Workloads.Fmath.exp xs in
  List.iter2
    (fun x g ->
      if rel_err g (exp x) > 2e-4 then
        Alcotest.failf "exp %.2f: got %.8g want %.8g" x g (exp x))
    xs got

let test_ln_accuracy () =
  let xs = [ 0.01; 0.5; 1.0; 1.7; 10.0; 12345.0 ] in
  let got = eval_math Workloads.Fmath.ln xs in
  List.iter2
    (fun x g ->
      if Float.abs (g -. log x) > 1e-4 then
        Alcotest.failf "ln %.2f: got %.8g want %.8g" x g (log x))
    xs got

let test_sqrt_accuracy () =
  let xs = [ 0.25; 1.0; 2.0; 9.0; 1e6 ] in
  let got = eval_math Workloads.Fmath.sqrt xs in
  List.iter2
    (fun x g ->
      if rel_err g (sqrt x) > 1e-6 then
        Alcotest.failf "sqrt %.2f: got %.8g want %.8g" x g (sqrt x))
    xs got

let test_cndf_properties () =
  let xs = [ -8.0; -2.0; -0.5; 0.0; 0.5; 2.0; 8.0 ] in
  let got = eval_math Workloads.Fmath.cndf xs in
  (* symmetric, monotone, correct at the anchor points *)
  List.iter2
    (fun x g ->
      check_bool "in [0,1]" true (g >= 0.0 && g <= 1.0);
      if x = 0.0 && Float.abs (g -. 0.5) > 1e-6 then Alcotest.failf "cndf 0 = %.8g" g;
      if x >= 8.0 && g < 0.999999 then Alcotest.failf "cndf tail %.8g" g)
    xs got;
  let rec monotone = function
    | a :: b :: rest -> a <= b && monotone (b :: rest)
    | _ -> true
  in
  check_bool "monotone" true (monotone got)

let tests =
  [
    Alcotest.test_case "memcpy with tail" `Quick test_memcpy;
    Alcotest.test_case "memset/bzero" `Quick test_memset_bzero;
    Alcotest.test_case "memcmp" `Quick test_memcmp;
    Alcotest.test_case "exp accuracy" `Quick test_exp_accuracy;
    Alcotest.test_case "ln accuracy" `Quick test_ln_accuracy;
    Alcotest.test_case "sqrt accuracy" `Quick test_sqrt_accuracy;
    Alcotest.test_case "cndf shape" `Quick test_cndf_properties;
  ]
