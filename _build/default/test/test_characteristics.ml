(* Regression locks on the workload characteristics that the paper's
   evaluation depends on (Table II shapes and the scalability signatures).
   If a future change quietly makes mmul cache-friendly or fluidanimate
   predictable, these fail before the figures drift. *)

let check_bool = Alcotest.(check bool)

let native w ~nthreads =
  Workloads.Workload.execute (Workloads.Registry.find w) ~build:Elzar.Native ~nthreads
    ~size:Workloads.Workload.Small

let totals r = r.Cpu.Machine.totals

let test_mmul_memory_bound () =
  let c = totals (native "mmul" ~nthreads:4) in
  check_bool "mmul misses L1 heavily (paper: 62%)" true (Cpu.Counters.l1_miss_pct c > 25.0)

let test_streaming_benchmarks_hit () =
  List.iter
    (fun w ->
      let c = totals (native w ~nthreads:4) in
      if Cpu.Counters.l1_miss_pct c > 12.0 then
        Alcotest.failf "%s should stream through the prefetcher, misses %.1f%%" w
          (Cpu.Counters.l1_miss_pct c))
    [ "hist"; "smatch"; "dedup" ]

let test_fluid_branchy () =
  let c = totals (native "fluid" ~nthreads:4) in
  check_bool "fluidanimate mispredicts (paper: 14.7%)" true
    (Cpu.Counters.branch_miss_pct c > 4.0)

let test_linreg_predictable () =
  let c = totals (native "linreg" ~nthreads:4) in
  check_bool "linreg branches are loop branches (paper: 0.01%)" true
    (Cpu.Counters.branch_miss_pct c < 1.0)

let test_black_few_memory_ops () =
  let c = totals (native "black" ~nthreads:4) in
  check_bool "blackscholes is compute-dense (paper: 9.4% loads)" true
    (Cpu.Counters.loads_pct c < 8.0)

let test_hist_memory_dense () =
  let c = totals (native "hist" ~nthreads:4) in
  check_bool "histogram is the most memory-dense kernel" true
    (Cpu.Counters.loads_pct c +. Cpu.Counters.stores_pct c > 15.0)

let test_elzar_uses_avx_native_does_not () =
  let n = totals (native "linreg" ~nthreads:2) in
  Alcotest.(check int) "no AVX in scalar native linreg" 0 n.Cpu.Counters.avx_instrs;
  let e =
    totals
      (Workloads.Workload.execute (Workloads.Registry.find "linreg")
         ~build:(Elzar.Hardened Elzar.Harden_config.default) ~nthreads:2
         ~size:Workloads.Workload.Small)
  in
  check_bool "hardened build is AVX-dominated" true
    (float_of_int e.Cpu.Counters.avx_instrs /. float_of_int e.Cpu.Counters.instrs > 0.4)

let test_dedup_lock_bound () =
  (* dedup's global-table lock limits scaling (paper §V-B) *)
  let t1 = (native "dedup" ~nthreads:1).Cpu.Machine.wall_cycles in
  let t8 = (native "dedup" ~nthreads:8).Cpu.Machine.wall_cycles in
  let speedup = float_of_int t1 /. float_of_int t8 in
  check_bool "dedup scales sublinearly" true (speedup < 6.0)

let test_linreg_scales () =
  let t1 = (native "linreg" ~nthreads:1).Cpu.Machine.wall_cycles in
  let t8 = (native "linreg" ~nthreads:8).Cpu.Machine.wall_cycles in
  let speedup = float_of_int t1 /. float_of_int t8 in
  check_bool "linreg scales well" true (speedup > 4.0)

let tests =
  [
    Alcotest.test_case "mmul memory-bound" `Slow test_mmul_memory_bound;
    Alcotest.test_case "streaming kernels prefetch" `Slow test_streaming_benchmarks_hit;
    Alcotest.test_case "fluid branch-missy" `Slow test_fluid_branchy;
    Alcotest.test_case "linreg predictable" `Slow test_linreg_predictable;
    Alcotest.test_case "black compute-dense" `Slow test_black_few_memory_ops;
    Alcotest.test_case "hist memory-dense" `Slow test_hist_memory_dense;
    Alcotest.test_case "AVX usage per build" `Slow test_elzar_uses_avx_native_does_not;
    Alcotest.test_case "dedup lock-bound" `Slow test_dedup_lock_bound;
    Alcotest.test_case "linreg scales" `Slow test_linreg_scales;
  ]
