(* Property-based differential testing: random straight-line programs over
   integers, floats, booleans and a scratch buffer must produce bit-identical
   output under every build flavour (the hardening passes and the vectorizer
   are semantics-preserving by construction). *)

open Ir

type pools = {
  b : Builder.t;
  mutable i64s : Instr.operand list;
  mutable i32s : Instr.operand list;
  mutable f64s : Instr.operand list;
  mutable i1s : Instr.operand list;
}

let pick xs k = List.nth xs (k mod List.length xs)
let push_i64 p v = if List.length p.i64s < 24 then p.i64s <- v :: p.i64s
let push_i32 p v = if List.length p.i32s < 16 then p.i32s <- v :: p.i32s
let push_f64 p v = if List.length p.f64s < 16 then p.f64s <- v :: p.f64s
let push_i1 p v = if List.length p.i1s < 8 then p.i1s <- v :: p.i1s

(* interprets one opcode (a random int) against the pools *)
let step (p : pools) (code : int) =
  let b = p.b in
  let open Builder in
  let k1 = code / 23 and k2 = code / 577 in
  let x = pick p.i64s k1 and y = pick p.i64s k2 in
  match code mod 20 with
  | 0 -> push_i64 p (add b x y)
  | 1 -> push_i64 p (sub b x y)
  | 2 -> push_i64 p (mul b x y)
  | 3 ->
      (* force a nonzero denominator *)
      push_i64 p (sdiv b x (or_ b y (i64c 1)))
  | 4 -> push_i64 p (xor b x y)
  | 5 -> push_i64 p (shl b x (and_ b y (i64c 63)))
  | 6 -> push_i1 p (icmp b Instr.Islt x y)
  | 7 -> push_i64 p (select b (pick p.i1s k1) x y)
  | 8 -> push_i64 p (zext b Types.i64 (pick p.i1s k2))
  | 9 -> push_i32 p (trunc b Types.i32 x)
  | 10 -> push_i64 p (sext b Types.i64 (pick p.i32s k1))
  | 11 ->
      let a = pick p.f64s k1 and c = pick p.f64s k2 in
      push_f64 p (fadd b a c)
  | 12 ->
      let a = pick p.f64s k1 and c = pick p.f64s k2 in
      push_f64 p (fmul b a c)
  | 13 ->
      let a = pick p.f64s k1 and c = pick p.f64s k2 in
      push_f64 p (fdiv b a c)
  | 14 ->
      let a = pick p.f64s k1 and c = pick p.f64s k2 in
      push_i1 p (fcmp b Instr.Folt a c)
  | 15 ->
      let a = pick p.f64s k1 and c = pick p.f64s k2 in
      push_f64 p (select b (pick p.i1s k2) a c)
  | 16 -> push_f64 p (sitofp b Types.f64 x)
  | 17 ->
      (* clamp before fptosi so Int64.of_float stays defined *)
      let v = pick p.f64s k1 in
      let inr =
        and_ b
          (zext b Types.i64 (fcmp b Instr.Folt v (f64c 1e9)))
          (zext b Types.i64 (fcmp b Instr.Fogt v (f64c (-1e9))))
      in
      let safe = select b (icmp b Instr.Ine inr (i64c 0)) v (f64c 0.0) in
      push_i64 p (fptosi b Types.i64 safe)
  | 18 ->
      let addr = gep b (Instr.Glob "scratch") (and_ b x (i64c 63)) 8 in
      push_i64 p (load b Types.i64 addr)
  | 19 ->
      let addr = gep b (Instr.Glob "scratch") (and_ b y (i64c 63)) 8 in
      store b x addr
  | _ -> assert false

let build_random (codes : int list) : Instr.modul =
  let m = Builder.create_module () in
  Builder.global m "scratch" 1024;
  let b, ps = Builder.func m "kernel" [ ("a", Types.i64); ("c", Types.i64) ] in
  let a, c = match ps with [ a; c ] -> (Instr.Reg a, Instr.Reg c) | _ -> assert false in
  let open Builder in
  let p =
    {
      b;
      i64s = [ a; c; i64c 7; i64c (-3); Instr.Imm (Types.i64, 0x123456789ABCDEFL) ];
      i32s = [ i32c 5; i32c (-9) ];
      f64s = [ f64c 1.5; f64c (-0.25); f64c 3.25 ];
      i1s = [ i1c true; i1c false ];
    }
  in
  List.iter (fun code -> step p (abs code)) codes;
  (* fold everything into the output stream *)
  let acc = fresh b ~name:"acc" Types.i64 in
  assign b acc (i64c 0);
  List.iter (fun o -> assign b acc (xor b (Reg acc) o)) p.i64s;
  List.iter (fun o -> assign b acc (xor b (Reg acc) (sext b Types.i64 o))) p.i32s;
  List.iter
    (fun o -> assign b acc (xor b (Reg acc) (cast b Instr.Bitcast Types.i64 o)))
    p.f64s;
  List.iter (fun o -> assign b acc (xor b (Reg acc) (zext b Types.i64 o))) p.i1s;
  call0 b "output_i64" [ Reg acc ];
  (* and dump the scratch buffer to catch store divergence *)
  for_ b ~lo:(i64c 0) ~hi:(i64c 64) (fun i ->
      call0 b "output_i64" [ load b Types.i64 (gep b (Instr.Glob "scratch") i 8) ]);
  ret b None;
  let b, ps = Builder.func m ~hardened:false "main" [ ("n", Types.i64) ] in
  let n = match ps with [ n ] -> Instr.Reg n | _ -> assert false in
  call0 b "kernel" [ n; i64c 99 ];
  ret b None;
  m

let builds =
  [
    Elzar.Native;
    Elzar.Hardened Elzar.Harden_config.default;
    Elzar.Hardened Elzar.Harden_config.no_checks;
    Elzar.Hardened { Elzar.Harden_config.default with recovery = Elzar.Harden_config.Extended };
    Elzar.Hardened Elzar.Harden_config.future_avx;
    Elzar.Swiftr;
    Elzar.Swiftr_norepair;
  ]

let differential codes =
  let m = build_random codes in
  Verifier.verify_exn m;
  let run b =
    let prepared = Elzar.prepare b m in
    let cfg = { Cpu.Machine.default_config with max_instrs = 2_000_000 } in
    let machine = Cpu.Machine.create ~cfg ~flags_cmp:(Elzar.uses_flags_cmp b) prepared in
    let r = Cpu.Machine.run ~args:[| 42L |] machine "main" in
    match r.Cpu.Machine.trap with
    | Some t ->
        QCheck.Test.fail_reportf "%s trapped: %s" (Elzar.build_name b)
          (Cpu.Machine.string_of_trap t)
    | None -> r.Cpu.Machine.output_bytes
  in
  let reference = run Elzar.Native_novec in
  List.for_all
    (fun b ->
      let out = run b in
      if out <> reference then
        QCheck.Test.fail_reportf "%s diverges from native-novec" (Elzar.build_name b)
      else true)
    builds

let gen_codes = QCheck.(list_of_size (Gen.int_range 5 45) (int_bound 1_000_000))

let prop_differential =
  QCheck.Test.make ~count:40 ~name:"random programs: all builds agree" gen_codes differential

(* a second property: hardened builds execute MORE instructions, never fewer *)
let prop_hardening_costs =
  QCheck.Test.make ~count:15 ~name:"hardening never reduces instruction count" gen_codes
    (fun codes ->
      let m = build_random codes in
      Verifier.verify_exn m;
      let instrs b =
        let prepared = Elzar.prepare b m in
        let machine = Cpu.Machine.create prepared in
        let r = Cpu.Machine.run ~args:[| 42L |] machine "main" in
        r.Cpu.Machine.totals.Cpu.Counters.instrs
      in
      let n = instrs Elzar.Native_novec in
      instrs (Elzar.Hardened Elzar.Harden_config.default) >= n && instrs Elzar.Swiftr >= n)

let tests =
  List.map QCheck_alcotest.to_alcotest [ prop_differential; prop_hardening_costs ]

(* parser round trip over the same random programs *)
let prop_parser_roundtrip =
  QCheck.Test.make ~count:25 ~name:"parser: print/parse/print fixpoint" gen_codes
    (fun codes ->
      let m = build_random codes in
      Verifier.verify_exn m;
      let s1 = Printer.modul_to_string m in
      let s2 = Printer.modul_to_string (Parser.parse s1) in
      if s1 <> s2 then QCheck.Test.fail_reportf "round trip diverged" else true)

(* the optimizer alone preserves behaviour (the differential property runs
   it inside every build; this isolates it) *)
let prop_optimizer_sound =
  QCheck.Test.make ~count:25 ~name:"optimizer: output unchanged" gen_codes
    (fun codes ->
      let m = build_random codes in
      let opt = Linker.copy m in
      ignore (Elzar.Optimize.run opt);
      Verifier.verify_exn opt;
      let out mm = (Cpu.Machine.run_module mm "main" ~args:[| 42L |]).Cpu.Machine.output_bytes in
      out m = out opt)

let tests =
  tests
  @ List.map QCheck_alcotest.to_alcotest [ prop_parser_roundtrip; prop_optimizer_sound ]
