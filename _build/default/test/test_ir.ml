(* Unit tests of the IR layer: types, builder, printer, verifier. *)

open Ir

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- types ---- *)

let test_type_sizes () =
  check_int "i1 bits" 1 (Types.bits Types.I1);
  check_int "i8 bytes" 1 (Types.bytes Types.I8);
  check_int "i16 bytes" 2 (Types.bytes Types.I16);
  check_int "f32 bits" 32 (Types.bits Types.F32);
  check_int "ptr bytes" 8 (Types.bytes Types.Ptr);
  check_int "ymm lanes i8" 32 (Types.ymm_lanes Types.I8);
  check_int "ymm lanes i32" 8 (Types.ymm_lanes Types.I32);
  check_int "ymm lanes f64" 4 (Types.ymm_lanes Types.F64);
  (* booleans live as 64-bit mask lanes *)
  check_bool "ymm of i1" true (Types.ymm_of Types.I1 = Types.Vector (Types.I64, 4))

let test_mask_elem () =
  check_bool "mask of f32 is i32" true (Types.mask_elem Types.F32 = Types.I32);
  check_bool "mask of ptr is i64" true (Types.mask_elem Types.Ptr = Types.I64);
  check_bool "mask of i16 is i16" true (Types.mask_elem Types.I16 = Types.I16)

let test_type_printing () =
  check_string "vector type" "<4 x i64>" (Types.to_string (Types.Vector (Types.I64, 4)));
  check_string "scalar" "f32" (Types.to_string Types.f32)

(* ---- builder ---- *)

let build_simple () =
  let m = Builder.create_module () in
  let b, ps = Builder.func m "f" [ ("x", Types.i64) ] ~ret:Types.i64 in
  let x = match ps with [ p ] -> Instr.Reg p | _ -> assert false in
  let open Builder in
  let y = add b x (i64c 1) in
  ret b (Some y);
  m

let test_builder_basics () =
  let m = build_simple () in
  let f = Option.get (Instr.find_func m "f") in
  check_int "one block" 1 (List.length f.Instr.blocks);
  check_int "one instr" 1 (List.length (snd (List.hd f.Instr.blocks)).Instr.instrs);
  check_bool "verifies" true (Verifier.verify m = Ok ())

let test_builder_loop_metadata () =
  let m = Builder.create_module () in
  let b, _ = Builder.func m "f" [] in
  let open Builder in
  for_ b ~lo:(i64c 0) ~hi:(i64c 10) (fun _ -> ());
  ret b None;
  let f = Option.get (Instr.find_func m "f") in
  check_int "loop recorded" 1 (List.length f.Instr.loops);
  let li = List.hd f.Instr.loops in
  check_bool "bounds recorded" true
    (li.Instr.l_lo = Instr.Imm (Types.i64, 0L) && li.Instr.l_hi = Instr.Imm (Types.i64, 10L))

let test_if_else () =
  let m = Builder.create_module () in
  let b, ps = Builder.func m "f" [ ("x", Types.i64) ] ~ret:Types.i64 in
  let x = match ps with [ p ] -> Instr.Reg p | _ -> assert false in
  let open Builder in
  let r = fresh b Types.i64 in
  if_ b
    (icmp b Instr.Isgt x (i64c 0))
    ~then_:(fun () -> assign b r x)
    ~else_:(fun () -> assign b r (sub b (i64c 0) x))
    ();
  ret b (Some (Instr.Reg r));
  Verifier.verify_exn m;
  let run v =
    let r = Cpu.Machine.run_module m "f" ~args:[| v |] in
    check_bool "no trap" true (r.Cpu.Machine.trap = None);
    r
  in
  ignore (run 5L);
  ignore (run (-5L))

(* ---- verifier rejections ---- *)

let ill_formed mk =
  let m = Builder.create_module () in
  mk m;
  match Verifier.verify m with Ok () -> false | Error _ -> true

let test_verifier_type_mismatch () =
  check_bool "i32 + i64 rejected" true
    (ill_formed (fun m ->
         let b, _ = Builder.func m "f" [] in
         let r = Builder.fresh b Types.i64 in
         Builder.emit b (Instr.Binop (r, Instr.Add, Builder.i32c 1, Builder.i64c 2));
         Builder.ret b None))

let test_verifier_bad_branch () =
  check_bool "branch to unknown label rejected" true
    (ill_formed (fun m ->
         let b, _ = Builder.func m "f" [] in
         Builder.br b "nowhere"))

let test_verifier_bad_arity () =
  check_bool "wrong call arity rejected" true
    (ill_formed (fun m ->
         let b, _ = Builder.func m "callee" [ ("x", Types.i64) ] in
         Builder.ret b None;
         let b2, _ = Builder.func m "f" [] in
         Builder.call0 b2 "callee" [];
         Builder.ret b2 None))

let test_verifier_float_arith_on_int () =
  check_bool "fadd on ints rejected" true
    (ill_formed (fun m ->
         let b, _ = Builder.func m "f" [] in
         let r = Builder.fresh b Types.i64 in
         Builder.emit b (Instr.Fbinop (r, Instr.Fadd, Builder.i64c 1, Builder.i64c 2));
         Builder.ret b None))

let test_verifier_allows_float_xor () =
  (* bitwise ops on float vectors are the basis of the shuffle-xor check *)
  let m = Builder.create_module () in
  let b, _ = Builder.func m "f" [] in
  let vty = Types.Vector (Types.F64, 4) in
  let v = Builder.fresh b vty in
  Builder.emit b (Instr.Mov (v, Instr.Fimm (vty, 1.5)));
  let x = Builder.fresh b vty in
  Builder.emit b (Instr.Binop (x, Instr.Xor, Instr.Reg v, Instr.Reg v));
  Builder.ret b None;
  check_bool "float xor ok" true (Verifier.verify m = Ok ())

let test_verifier_shuffle_bounds () =
  check_bool "out-of-range shuffle rejected" true
    (ill_formed (fun m ->
         let b, _ = Builder.func m "f" [] in
         let vty = Types.Vector (Types.I64, 4) in
         let v = Builder.fresh b vty in
         Builder.emit b (Instr.Mov (v, Instr.Imm (vty, 0L)));
         let s = Builder.fresh b vty in
         Builder.emit b (Instr.Shuffle (s, Instr.Reg v, [| 0; 1; 2; 7 |]));
         Builder.ret b None))

let test_verifier_duplicate_symbol () =
  let mk () =
    let m = Builder.create_module () in
    let b, _ = Builder.func m "f" [] in
    Builder.ret b None;
    m
  in
  check_bool "duplicate function rejected" true
    (try
       ignore (Linker.link [ mk (); mk () ]);
       false
     with Linker.Duplicate_symbol _ -> true)

(* ---- printer ---- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_printer_roundtrip_stability () =
  let m = build_simple () in
  let s1 = Printer.modul_to_string m in
  let s2 = Printer.modul_to_string m in
  check_string "printing is deterministic" s1 s2;
  check_bool "mentions function" true (contains s1 "@f");
  check_bool "mentions add" true (contains s1 "add")

let tests =
  [
    Alcotest.test_case "type sizes" `Quick test_type_sizes;
    Alcotest.test_case "mask elements" `Quick test_mask_elem;
    Alcotest.test_case "type printing" `Quick test_type_printing;
    Alcotest.test_case "builder basics" `Quick test_builder_basics;
    Alcotest.test_case "loop metadata" `Quick test_builder_loop_metadata;
    Alcotest.test_case "if/else" `Quick test_if_else;
    Alcotest.test_case "verifier: type mismatch" `Quick test_verifier_type_mismatch;
    Alcotest.test_case "verifier: bad branch" `Quick test_verifier_bad_branch;
    Alcotest.test_case "verifier: bad arity" `Quick test_verifier_bad_arity;
    Alcotest.test_case "verifier: fadd on ints" `Quick test_verifier_float_arith_on_int;
    Alcotest.test_case "verifier: float xor ok" `Quick test_verifier_allows_float_xor;
    Alcotest.test_case "verifier: shuffle bounds" `Quick test_verifier_shuffle_bounds;
    Alcotest.test_case "linker: duplicate symbol" `Quick test_verifier_duplicate_symbol;
  ]

(* ---- parser round trips ---- *)

let roundtrip m =
  let s1 = Printer.modul_to_string m in
  let m2 = Parser.parse s1 in
  let s2 = Printer.modul_to_string m2 in
  check_string "print/parse/print fixpoint" s1 s2;
  (match Verifier.verify m2 with
  | Ok () -> ()
  | Error es -> Alcotest.failf "parsed module ill-formed: %s" (String.concat "; " es))

let test_parser_roundtrip_simple () = roundtrip (build_simple ())

let test_parser_roundtrip_workload () =
  let m = (Workloads.Registry.find "linreg").Workloads.Workload.build Workloads.Workload.Tiny in
  roundtrip m

let test_parser_roundtrip_hardened () =
  let m = (Workloads.Registry.find "wc").Workloads.Workload.build Workloads.Workload.Tiny in
  roundtrip (Elzar.prepare (Elzar.Hardened Elzar.Harden_config.default) m);
  roundtrip (Elzar.prepare Elzar.Swiftr m);
  roundtrip (Elzar.prepare (Elzar.Hardened Elzar.Harden_config.future_avx) m)

let test_parser_roundtrip_vectorized () =
  let m = (Workloads.Registry.find "smatch").Workloads.Workload.build Workloads.Workload.Tiny in
  roundtrip (Elzar.prepare Elzar.Native m)

let test_parsed_module_runs () =
  let m = build_simple () in
  (* wrap in a runnable main *)
  let b, _ = Builder.func m ~hardened:false "main" [ ("n", Types.i64) ] in
  let r = Builder.callv b ~ret:Types.i64 "f" [ Builder.i64c 41 ] in
  Builder.call0 b "output_i64" [ r ];
  Builder.ret b None;
  let m2 = Parser.parse (Printer.modul_to_string m) in
  let out1 = (Cpu.Machine.run_module m "main" ~args:[| 0L |]).Cpu.Machine.output_bytes in
  let out2 = (Cpu.Machine.run_module m2 "main" ~args:[| 0L |]).Cpu.Machine.output_bytes in
  check_string "parsed module computes the same" out1 out2

let test_parser_rejects_garbage () =
  check_bool "bad input raises" true
    (try
       ignore (Parser.parse "define banana @f() {\nentry:\n  ret void\n}");
       false
     with Parser.Parse_error _ -> true)

let tests =
  tests
  @ [
      Alcotest.test_case "parser: roundtrip simple" `Quick test_parser_roundtrip_simple;
      Alcotest.test_case "parser: roundtrip workload" `Quick test_parser_roundtrip_workload;
      Alcotest.test_case "parser: roundtrip hardened" `Quick test_parser_roundtrip_hardened;
      Alcotest.test_case "parser: roundtrip vectorized" `Quick test_parser_roundtrip_vectorized;
      Alcotest.test_case "parser: parsed module runs" `Quick test_parsed_module_runs;
      Alcotest.test_case "parser: rejects garbage" `Quick test_parser_rejects_garbage;
    ]
