(* Multithreading semantics of the simulated machine: spawn/join, spinlock
   mutual exclusion, atomic read-modify-write under contention, determinism
   of the scheduler, and deadlock detection. *)

open Ir

let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)

let first_i64 (r : Cpu.Machine.result) =
  Bytes.get_int64_le (Bytes.of_string r.Cpu.Machine.output_bytes) 0

(* N workers each do K lock-protected read-modify-write increments of a
   shared counter; without mutual exclusion updates would be lost. *)
let locked_counter_module ~nthreads ~iters =
  let m = Builder.create_module () in
  Builder.global m "counter" 8;
  Builder.global m "lk" 8;
  Workloads.Parallel.add_globals m;
  let open Builder in
  let b, _ = func m "work" [ ("arg", Types.ptr) ] in
  for_ b ~lo:(i64c 0) ~hi:(i64c iters) (fun _ ->
      call0 b "lock" [ Instr.Glob "lk" ];
      let v = load b Types.i64 (Instr.Glob "counter") in
      (* a deliberately long critical section to force contention *)
      let bump = fresh b ~name:"bump" Types.i64 in
      assign b bump (i64c 0);
      for_ b ~lo:(i64c 0) ~hi:(i64c 5) (fun _ ->
          assign b bump (add b (Reg bump) (i64c 1)));
      store b (add b v (sdiv b (Reg bump) (i64c 5))) (Instr.Glob "counter");
      call0 b "unlock" [ Instr.Glob "lk" ]);
  ret b None;
  let b, ps = func m ~hardened:false "main" [ ("nthreads", Types.i64) ] in
  ignore ps;
  Workloads.Parallel.spawn_join b ~worker:"work" ~nthreads:(i64c nthreads);
  call0 b "output_i64" [ load b Types.i64 (Instr.Glob "counter") ];
  ret b None;
  m

let test_lock_mutual_exclusion () =
  let m = locked_counter_module ~nthreads:6 ~iters:40 in
  Verifier.verify_exn m;
  let r = Cpu.Machine.run_module m "main" ~args:[| 0L |] in
  check_bool "no trap" true (r.Cpu.Machine.trap = None);
  check_i64 "no lost updates" 240L (first_i64 r)

let test_atomic_fetch_add () =
  let m = Builder.create_module () in
  Builder.global m "counter" 8;
  Workloads.Parallel.add_globals m;
  let open Builder in
  let b, _ = func m "work" [ ("arg", Types.ptr) ] in
  for_ b ~lo:(i64c 0) ~hi:(i64c 100) (fun _ ->
      ignore (atomic_rmw b Instr.Rmw_add (Instr.Glob "counter") (i64c 1)));
  ret b None;
  let b, _ = func m ~hardened:false "main" [ ("nthreads", Types.i64) ] in
  Workloads.Parallel.spawn_join b ~worker:"work" ~nthreads:(i64c 8);
  call0 b "output_i64" [ load b Types.i64 (Instr.Glob "counter") ];
  ret b None;
  Verifier.verify_exn m;
  let r = Cpu.Machine.run_module m "main" ~args:[| 0L |] in
  check_i64 "atomics never lose updates" 800L (first_i64 r)

let test_cmpxchg_spinlock () =
  (* a hand-rolled CAS lock instead of the builtin *)
  let m = Builder.create_module () in
  Builder.global m "counter" 8;
  Builder.global m "cas" 8;
  Workloads.Parallel.add_globals m;
  let open Builder in
  let b, _ = func m "work" [ ("arg", Types.ptr) ] in
  for_ b ~lo:(i64c 0) ~hi:(i64c 30) (fun _ ->
      let got = fresh b ~name:"got" Types.i64 in
      assign b got (i64c 0);
      while_ b
        ~cond:(fun () -> icmp b Instr.Ieq (Reg got) (i64c 0))
        ~body:(fun () ->
          let old = cmpxchg b (Instr.Glob "cas") (i64c 0) (i64c 1) in
          if_ b (icmp b Instr.Ieq old (i64c 0))
            ~then_:(fun () -> assign b got (i64c 1))
            ());
      let v = load b Types.i64 (Instr.Glob "counter") in
      store b (add b v (i64c 1)) (Instr.Glob "counter");
      store b (i64c 0) (Instr.Glob "cas"));
  ret b None;
  let b, _ = func m ~hardened:false "main" [ ("nthreads", Types.i64) ] in
  Workloads.Parallel.spawn_join b ~worker:"work" ~nthreads:(i64c 5);
  call0 b "output_i64" [ load b Types.i64 (Instr.Glob "counter") ];
  ret b None;
  Verifier.verify_exn m;
  let r = Cpu.Machine.run_module m "main" ~args:[| 0L |] in
  check_i64 "CAS lock protects" 150L (first_i64 r)

let test_scheduler_deterministic () =
  let m = locked_counter_module ~nthreads:4 ~iters:25 in
  let run () =
    let r = Cpu.Machine.run_module m "main" ~args:[| 0L |] in
    (r.Cpu.Machine.wall_cycles, r.Cpu.Machine.output_bytes)
  in
  let a = run () and b = run () in
  check_bool "same cycles, same output" true (a = b)

let test_deadlock_detected () =
  let m = Builder.create_module () in
  Builder.global m "lk" 8;
  let open Builder in
  let b, _ = func m ~hardened:false "main" [ ("n", Types.i64) ] in
  call0 b "lock" [ Instr.Glob "lk" ];
  call0 b "lock" [ Instr.Glob "lk" ];  (* self-deadlock *)
  ret b None;
  Verifier.verify_exn m;
  let cfg = { Cpu.Machine.default_config with max_instrs = 100_000 } in
  let r = Cpu.Machine.run_module ~cfg m "main" ~args:[| 0L |] in
  check_bool "hang or deadlock reported" true
    (match r.Cpu.Machine.trap with
    | Some Cpu.Machine.Hang | Some Cpu.Machine.Deadlock -> true
    | _ -> false)

let test_join_before_read () =
  (* main reads a value the worker writes; the join edge must order them *)
  let m = Builder.create_module () in
  Builder.global m "flag" 8;
  Workloads.Parallel.add_globals m;
  let open Builder in
  let b, _ = func m "work" [ ("arg", Types.ptr) ] in
  (* burn some cycles first *)
  let acc = fresh b ~name:"acc" Types.i64 in
  assign b acc (i64c 0);
  for_ b ~lo:(i64c 0) ~hi:(i64c 5_000) (fun i -> assign b acc (add b (Reg acc) i));
  store b (i64c 42) (Instr.Glob "flag");
  ret b None;
  let b, _ = func m ~hardened:false "main" [ ("n", Types.i64) ] in
  Workloads.Parallel.spawn_join b ~worker:"work" ~nthreads:(i64c 1);
  call0 b "output_i64" [ load b Types.i64 (Instr.Glob "flag") ];
  ret b None;
  Verifier.verify_exn m;
  let r = Cpu.Machine.run_module m "main" ~args:[| 0L |] in
  check_i64 "join orders memory" 42L (first_i64 r);
  (* and the joiner's clock advanced past the worker's work *)
  check_bool "wall includes worker time" true (r.Cpu.Machine.wall_cycles > 5_000)

let test_contention_costs_cycles () =
  let uncontended = Cpu.Machine.run_module (locked_counter_module ~nthreads:1 ~iters:100) "main" ~args:[| 0L |] in
  let contended = Cpu.Machine.run_module (locked_counter_module ~nthreads:8 ~iters:100) "main" ~args:[| 0L |] in
  (* 8x the total work, but serialized by the lock: the wall clock must
     grow superlinearly vs the single-thread run's useful work *)
  check_bool "lock serializes wall-clock" true
    (contended.Cpu.Machine.wall_cycles > 4 * uncontended.Cpu.Machine.wall_cycles)

let tests =
  [
    Alcotest.test_case "lock mutual exclusion" `Quick test_lock_mutual_exclusion;
    Alcotest.test_case "atomic fetch-add" `Quick test_atomic_fetch_add;
    Alcotest.test_case "cmpxchg spinlock" `Quick test_cmpxchg_spinlock;
    Alcotest.test_case "scheduler determinism" `Quick test_scheduler_deterministic;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detected;
    Alcotest.test_case "join ordering" `Quick test_join_before_read;
    Alcotest.test_case "contention costs cycles" `Quick test_contention_costs_cycles;
  ]
