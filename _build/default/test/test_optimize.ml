(* Unit tests of the scalar optimizer. *)

open Ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let count_instrs (f : Instr.func) =
  List.fold_left (fun a (_, (b : Instr.block)) -> a + List.length b.Instr.instrs) 0 f.Instr.blocks

let with_func mk =
  let m = Builder.create_module () in
  Builder.global m "g" 64;
  let b, ps = Builder.func m "f" [ ("x", Types.i64) ] ~ret:Types.i64 in
  let x = match ps with [ p ] -> Instr.Reg p | _ -> assert false in
  mk b x;
  (m, Option.get (Instr.find_func m "f"))

let test_constant_folding () =
  let m, f =
    with_func (fun b x ->
        let open Builder in
        (* (2+3)*4 folds to 20 *)
        let c = mul b (add b (i64c 2) (i64c 3)) (i64c 4) in
        ret b (Some (add b x c)))
  in
  ignore (Elzar.Optimize.run m);
  Verifier.verify_exn m;
  let has_imm20 =
    List.exists
      (fun (_, (blk : Instr.block)) ->
        List.exists
          (function
            | Instr.Binop (_, Instr.Add, _, Instr.Imm (_, 20L))
            | Instr.Binop (_, Instr.Add, Instr.Imm (_, 20L), _) ->
                true
            | _ -> false)
          blk.Instr.instrs)
      f.Instr.blocks
  in
  check_bool "constant chain folded to 20" true has_imm20

let test_dce_removes_unused () =
  let m, f =
    with_func (fun b x ->
        let open Builder in
        ignore (mul b x (i64c 3));  (* dead *)
        ignore (xor b x (i64c 5));  (* dead *)
        ret b (Some x))
  in
  ignore (Elzar.Optimize.run m);
  check_int "dead instructions removed" 0 (count_instrs f)

let test_dce_keeps_effects () =
  let m, f =
    with_func (fun b x ->
        let open Builder in
        ignore (load b Types.i64 (Instr.Glob "g"));  (* result unused, but a load *)
        store b x (Instr.Glob "g");
        call0 b "output_i64" [ x ];
        ret b (Some x))
  in
  ignore (Elzar.Optimize.run m);
  check_int "loads/stores/calls kept" 3 (count_instrs f)

let test_cse_merges () =
  let m, f =
    with_func (fun b x ->
        let open Builder in
        let a1 = add b x (i64c 7) in
        let a2 = add b x (i64c 7) in
        (* both used: the second collapses to a copy of the first and then
           propagates away *)
        ret b (Some (mul b a1 a2)))
  in
  ignore (Elzar.Optimize.run m);
  Verifier.verify_exn m;
  check_int "one add + one mul remain" 2 (count_instrs f)

let test_cse_respects_redefinition () =
  let m, _ =
    with_func (fun b x ->
        let open Builder in
        let acc = fresh b ~name:"acc" Types.i64 in
        assign b acc x;
        let a1 = add b (Instr.Reg acc) (i64c 1) in
        assign b acc a1;
        (* not the same value: acc changed in between *)
        let a2 = add b (Instr.Reg acc) (i64c 1) in
        ret b (Some a2))
  in
  ignore (Elzar.Optimize.run m);
  Verifier.verify_exn m;
  let r = Cpu.Machine.run_module m "f" ~args:[| 10L |] in
  check_bool "no trap" true (r.Cpu.Machine.trap = None)

let test_copyprop_through_mov () =
  let m, f =
    with_func (fun b x ->
        let open Builder in
        let t = mov b x in
        let u = mov b t in
        ret b (Some (add b u (i64c 1))))
  in
  ignore (Elzar.Optimize.run m);
  check_int "mov chain collapsed" 1 (count_instrs f)

(* the optimizer must preserve semantics on every workload (cheap smoke on
   top of the full differential property suite) *)
let test_semantics_preserved () =
  let w = Workloads.Registry.find "wc" in
  let m = w.Workloads.Workload.build Workloads.Workload.Tiny in
  let raw = Ir.Linker.copy m in
  let opt = Ir.Linker.copy m in
  let stats = Elzar.Optimize.run opt in
  check_bool "optimizer did something" true
    (stats.Elzar.Optimize.dce_removed + stats.Elzar.Optimize.cse_hits
     + stats.Elzar.Optimize.propagated + stats.Elzar.Optimize.folded
    > 0);
  Verifier.verify_exn opt;
  let run mm =
    let machine = Cpu.Machine.create mm in
    w.Workloads.Workload.init Workloads.Workload.Tiny machine;
    (Cpu.Machine.run ~args:[| 2L |] machine "main").Cpu.Machine.output_bytes
  in
  Alcotest.(check string) "same output" (run raw) (run opt)

let tests =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "DCE removes unused" `Quick test_dce_removes_unused;
    Alcotest.test_case "DCE keeps effects" `Quick test_dce_keeps_effects;
    Alcotest.test_case "CSE merges duplicates" `Quick test_cse_merges;
    Alcotest.test_case "CSE respects redefinition" `Quick test_cse_respects_redefinition;
    Alcotest.test_case "copy propagation" `Quick test_copyprop_through_mov;
    Alcotest.test_case "semantics preserved" `Quick test_semantics_preserved;
  ]

let test_licm_hoists () =
  let m = Builder.create_module () in
  Builder.global m "g" 64;
  let b, ps = Builder.func m "f" [ ("x", Types.i64) ] ~ret:Types.i64 in
  let x = match ps with [ p ] -> Instr.Reg p | _ -> assert false in
  let open Builder in
  let acc = fresh b ~name:"acc" Types.i64 in
  assign b acc (i64c 0);
  for_ b ~lo:(i64c 0) ~hi:(i64c 50) (fun i ->
      (* x*13+5 is loop-invariant; i*x is not *)
      let inv = add b (mul b x (i64c 13)) (i64c 5) in
      assign b acc (add b (Instr.Reg acc) (add b inv (mul b i x))));
  ret b (Some (Instr.Reg acc));
  Verifier.verify_exn m;
  let f = Option.get (Instr.find_func m "f") in
  (* dependent invariants hoist across successive sweeps *)
  let hoisted = Elzar.Optimize.licm f + Elzar.Optimize.licm f in
  Verifier.verify_exn m;
  check_bool "hoisted the invariant chain" true (hoisted >= 2);
  (* and semantics are intact *)
  let r = Cpu.Machine.run_module m "f" ~args:[| 3L |] in
  check_bool "no trap" true (r.Cpu.Machine.trap = None)

let test_licm_leaves_divisions () =
  let m = Builder.create_module () in
  let b, ps = Builder.func m "f" [ ("x", Types.i64) ] ~ret:Types.i64 in
  let x = match ps with [ p ] -> Instr.Reg p | _ -> assert false in
  let open Builder in
  let acc = fresh b ~name:"acc" Types.i64 in
  assign b acc (i64c 0);
  (* zero-trip loop containing a division by x (= 0 at runtime): hoisting
     it would introduce a trap the original never has *)
  for_ b ~lo:(i64c 5) ~hi:(i64c 5) (fun _ ->
      assign b acc (sdiv b (i64c 100) x));
  ret b (Some (Instr.Reg acc));
  Verifier.verify_exn m;
  ignore (Elzar.Optimize.run m);
  let r = Cpu.Machine.run_module m "f" ~args:[| 0L |] in
  check_bool "division not speculated" true (r.Cpu.Machine.trap = None)

let tests =
  tests
  @ [
      Alcotest.test_case "LICM hoists invariants" `Quick test_licm_hoists;
      Alcotest.test_case "LICM never speculates divisions" `Quick test_licm_leaves_divisions;
    ]
