(* Structural tests of the transformation passes: the ELZAR pass emits the
   shapes the paper describes (vector branches, shuffle-xor-ptest checks,
   out-of-line recovery), SWIFT-R triplicates, the vectorizer accepts and
   rejects the right loops. *)

open Ir

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a small hardened function with a loop, loads and stores *)
let sample_module () =
  let m = Builder.create_module () in
  Builder.global m "buf" 1024;
  let open Builder in
  let b, _ = func m "main" [] in
  let acc = fresh b ~name:"acc" Types.i64 in
  assign b acc (i64c 0);
  for_ b ~lo:(i64c 0) ~hi:(i64c 64) (fun i ->
      let v = load b Types.i64 (gep b (Glob "buf") i 8) in
      assign b acc (add b (Reg acc) v);
      store b (Reg acc) (gep b (Glob "buf") i 8));
  call0 b "output_i64" [ Reg acc ];
  ret b None;
  m

let func_of m name = Option.get (Instr.find_func m name)

let count_instrs p (f : Instr.func) =
  List.fold_left
    (fun acc (_, (blk : Instr.block)) ->
      acc + List.length (List.filter p blk.Instr.instrs))
    0 f.Instr.blocks

let count_terms p (f : Instr.func) =
  List.length (List.filter (fun (_, (blk : Instr.block)) -> p blk.Instr.term) f.Instr.blocks)

let is_shuffle = function Instr.Shuffle _ -> true | _ -> false
let is_ptest = function Instr.Ptestz _ -> true | _ -> false
let is_broadcast = function Instr.Broadcast _ -> true | _ -> false
let is_extract = function Instr.Extractlane _ -> true | _ -> false
let is_gather = function Instr.Gather _ -> true | _ -> false
let is_scatter = function Instr.Scatter _ -> true | _ -> false
let is_vbr = function Instr.Vbr _ -> true | _ -> false
let is_vbr_unchecked = function Instr.Vbr_unchecked _ -> true | _ -> false

let test_elzar_shapes () =
  let m = Elzar.prepare (Elzar.Hardened Elzar.Harden_config.default) (sample_module ()) in
  let f = func_of m "main" in
  check_bool "has vector branches" true (count_terms is_vbr f > 0);
  check_bool "has checks (shuffle)" true (count_instrs is_shuffle f > 0);
  check_bool "has checks (ptest)" true (count_instrs is_ptest f > 0);
  check_bool "wraps loads (broadcast)" true (count_instrs is_broadcast f > 0);
  check_bool "wraps sync ops (extract)" true (count_instrs is_extract f > 0);
  check_bool "has recovery blocks" true
    (List.exists
       (fun (l, (blk : Instr.block)) ->
         String.length l >= 5
         && String.sub l 0 2 = "z."
         && List.exists
              (function Instr.Call (_, "elzar_recovered", _) -> true | _ -> false)
              blk.Instr.instrs)
       f.Instr.blocks)

let test_elzar_no_checks () =
  let m = Elzar.prepare (Elzar.Hardened Elzar.Harden_config.no_checks) (sample_module ()) in
  let f = func_of m "main" in
  check_int "no shuffle checks" 0 (count_instrs is_shuffle f);
  check_int "no ptest" 0 (count_instrs is_ptest f);
  check_bool "branches become unchecked vbr" true (count_terms is_vbr_unchecked f > 0);
  check_int "no checked vbr" 0 (count_terms is_vbr f);
  check_bool "wrappers remain" true (count_instrs is_broadcast f > 0)

let test_elzar_future_avx () =
  let m = Elzar.prepare (Elzar.Hardened Elzar.Harden_config.future_avx) (sample_module ()) in
  let f = func_of m "main" in
  check_bool "loads become gathers" true (count_instrs is_gather f > 0);
  check_bool "stores become scatters" true (count_instrs is_scatter f > 0);
  check_int "no load wrappers left" 0
    (count_instrs (function Instr.Load _ -> true | _ -> false) f)

let test_elzar_leaves_unhardened_alone () =
  let m0 = sample_module () in
  (* add an unhardened library function *)
  let open Builder in
  let b, ps = func m0 ~hardened:false "lib" [ ("x", Types.i64) ] ~ret:Types.i64 in
  let x = match ps with [ p ] -> Instr.Reg p | _ -> assert false in
  ret b (Some (add b x (i64c 1)));
  let before = Printer.func_to_string (func_of m0 "lib") in
  let m = Elzar.prepare (Elzar.Hardened Elzar.Harden_config.default) m0 in
  Alcotest.(check string) "unhardened untouched" before (Printer.func_to_string (func_of m "lib"))

let test_swiftr_triplication () =
  let m0 = sample_module () in
  let m = Elzar.prepare Elzar.Swiftr m0 in
  let n0 = count_instrs (fun _ -> true) (func_of m0 "main") in
  let n = count_instrs (fun _ -> true) (func_of m "main") in
  check_bool "instructions at least doubled" true (n > 2 * n0);
  check_int "no vector code in SWIFT-R" 0
    (count_instrs (fun i -> Cpu.Cost.is_avx i) (func_of m "main"))

let test_swiftr_votes_before_stores () =
  let m = Elzar.prepare Elzar.Swiftr (sample_module ()) in
  let f = func_of m "main" in
  check_bool "has selects (majority voting)" true
    (count_instrs (function Instr.Select _ -> true | _ -> false) f > 0)

(* ---- vectorizer ---- *)

let loop_module mk =
  let m = Builder.create_module () in
  Builder.global m "a" 2048;
  Builder.global m "b2" 2048;
  let b, _ = Builder.func m "main" [] in
  mk b;
  Builder.ret b None;
  m

let vec_count m = Elzar.Vectorize.run m

let test_vectorize_sum () =
  let m =
    loop_module (fun b ->
        let open Builder in
        let acc = fresh b ~name:"acc" Types.i64 in
        assign b acc (i64c 0);
        for_ b ~lo:(i64c 0) ~hi:(i64c 100) (fun i ->
            let v = load b Types.i64 (gep b (Glob "a") i 8) in
            assign b acc (add b (Reg acc) v));
        call0 b "output_i64" [ Reg acc ])
  in
  check_int "sum loop vectorized" 1 (vec_count m);
  Verifier.verify_exn m

let test_vectorize_rejects_strided () =
  let m =
    loop_module (fun b ->
        let open Builder in
        let acc = fresh b ~name:"acc" Types.i64 in
        assign b acc (i64c 0);
        for_ b ~lo:(i64c 0) ~hi:(i64c 100) (fun i ->
            let v = load b Types.i64 (gep b (Glob "a") (mul b i (i64c 2)) 8) in
            assign b acc (add b (Reg acc) v)))
  in
  check_int "strided load rejected" 0 (vec_count m)

let test_vectorize_rejects_fp_reduction () =
  let m =
    loop_module (fun b ->
        let open Builder in
        let acc = fresh b ~name:"acc" Types.f64 in
        assign b acc (f64c 0.0);
        for_ b ~lo:(i64c 0) ~hi:(i64c 100) (fun i ->
            let v = load b Types.f64 (gep b (Glob "a") i 8) in
            assign b acc (fadd b (Reg acc) v)))
  in
  check_int "FP reduction rejected (strict IEEE)" 0 (vec_count m)

let test_vectorize_rejects_loop_carried () =
  let m =
    loop_module (fun b ->
        let open Builder in
        let prev = fresh b ~name:"prev" Types.i64 in
        assign b prev (i64c 0);
        for_ b ~lo:(i64c 0) ~hi:(i64c 100) (fun i ->
            let v = load b Types.i64 (gep b (Glob "a") i 8) in
            (* uses prev from the previous iteration, then redefines it *)
            store b (add b v (Reg prev)) (gep b (Glob "b2") i 8);
            assign b prev v))
  in
  check_int "loop-carried dependence rejected" 0 (vec_count m)

let test_vectorize_rejects_calls () =
  let m =
    loop_module (fun b ->
        let open Builder in
        for_ b ~lo:(i64c 0) ~hi:(i64c 100) (fun i -> call0 b "output_i64" [ i ]))
  in
  check_int "call in body rejected" 0 (vec_count m)

let test_vectorize_remainder_correct () =
  (* n = 103 is not a multiple of 4: vector loop + scalar remainder *)
  let mk n =
    let m = Builder.create_module () in
    Builder.global m "a" 1024;
    let b, _ = Builder.func m "main" [] in
    let open Builder in
    for_ b ~lo:(i64c 0) ~hi:(i64c n) (fun i ->
        store b (mul b i (i64c 7)) (gep b (Glob "a") i 8));
    let acc = fresh b ~name:"acc" Types.i64 in
    assign b acc (i64c 0);
    for_ b ~lo:(i64c 0) ~hi:(i64c n) (fun i ->
        let v = load b Types.i64 (gep b (Glob "a") i 8) in
        assign b acc (add b (Reg acc) (xor b v i)));
    call0 b "output_i64" [ Reg acc ];
    ret b None;
    m
  in
  let m = mk 103 in
  let plain = Cpu.Machine.run_module (Elzar.prepare Elzar.Native_novec m) "main" in
  let vectorized = Elzar.prepare Elzar.Native m in
  Verifier.verify_exn vectorized;
  let v = Cpu.Machine.run_module vectorized "main" in
  Alcotest.(check string)
    "same output with remainder" plain.Cpu.Machine.output_bytes v.Cpu.Machine.output_bytes;
  check_bool "vector build uses AVX" true (v.Cpu.Machine.totals.Cpu.Counters.avx_instrs > 0)

(* floats-only mode protects floats but leaves integers scalar *)
let test_floats_only_partition () =
  let m0 = Builder.create_module () in
  Builder.global m0 "a" 1024;
  let open Builder in
  let b, _ = func m0 "main" [] in
  let facc = fresh b ~name:"facc" Types.f64 in
  assign b facc (f64c 0.0);
  let iacc = fresh b ~name:"iacc" Types.i64 in
  assign b iacc (i64c 0);
  for_ b ~lo:(i64c 0) ~hi:(i64c 50) (fun i ->
      let v = load b Types.f64 (gep b (Glob "a") i 8) in
      assign b facc (fadd b (Reg facc) v);
      assign b iacc (add b (Reg iacc) i));
  call0 b "output_f64" [ Reg facc ];
  call0 b "output_i64" [ Reg iacc ];
  ret b None;
  let m = Elzar.prepare (Elzar.Hardened Elzar.Harden_config.floats_only) m0 in
  let f = func_of m "main" in
  let vector_int_binop = function
    | Instr.Binop (r, Instr.Add, _, _) -> Types.is_vector r.Instr.rty
    | _ -> false
  in
  let vector_float_op = function
    | Instr.Fbinop (r, _, _, _) -> Types.is_vector r.Instr.rty
    | _ -> false
  in
  check_int "integer adds stay scalar" 0 (count_instrs vector_int_binop f);
  check_bool "float ops vectorized" true (count_instrs vector_float_op f > 0)

let tests =
  [
    Alcotest.test_case "elzar: shapes" `Quick test_elzar_shapes;
    Alcotest.test_case "elzar: no-checks config" `Quick test_elzar_no_checks;
    Alcotest.test_case "elzar: future AVX" `Quick test_elzar_future_avx;
    Alcotest.test_case "elzar: unhardened untouched" `Quick test_elzar_leaves_unhardened_alone;
    Alcotest.test_case "swiftr: triplication" `Quick test_swiftr_triplication;
    Alcotest.test_case "swiftr: voting" `Quick test_swiftr_votes_before_stores;
    Alcotest.test_case "vectorize: sum loop" `Quick test_vectorize_sum;
    Alcotest.test_case "vectorize: rejects strided" `Quick test_vectorize_rejects_strided;
    Alcotest.test_case "vectorize: rejects FP reduction" `Quick test_vectorize_rejects_fp_reduction;
    Alcotest.test_case "vectorize: rejects loop-carried" `Quick test_vectorize_rejects_loop_carried;
    Alcotest.test_case "vectorize: rejects calls" `Quick test_vectorize_rejects_calls;
    Alcotest.test_case "vectorize: remainder" `Quick test_vectorize_remainder_correct;
    Alcotest.test_case "floats-only partition" `Quick test_floats_only_partition;
  ]
