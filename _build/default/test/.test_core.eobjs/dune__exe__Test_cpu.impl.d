test/test_cpu.ml: Alcotest Array Branch_pred Cache Cost Cpu Float Hashtbl Int64 Ir Memory Timing Value
