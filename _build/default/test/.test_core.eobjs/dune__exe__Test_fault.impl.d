test/test_fault.ml: Alcotest Cpu Elzar Fault Ir
