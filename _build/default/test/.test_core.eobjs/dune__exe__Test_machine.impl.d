test/test_machine.ml: Alcotest Buffer Builder Bytes Cpu Instr Ir Option String Types Verifier
