test/test_characteristics.ml: Alcotest Cpu Elzar List Workloads
