test/test_smoke.ml: Alcotest Bytes Cpu Elzar Int64 Ir List String
