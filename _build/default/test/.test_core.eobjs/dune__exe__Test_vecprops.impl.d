test/test_vecprops.ml: Alcotest Builder Cpu Elzar Instr Ir Printf QCheck QCheck_alcotest Random Types Verifier Workloads
