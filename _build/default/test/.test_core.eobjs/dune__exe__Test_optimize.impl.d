test/test_optimize.ml: Alcotest Builder Cpu Elzar Instr Ir List Option Types Verifier Workloads
