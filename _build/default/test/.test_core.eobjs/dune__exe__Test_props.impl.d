test/test_props.ml: Builder Cpu Elzar Gen Instr Ir Linker List Parser Printer QCheck QCheck_alcotest Types Verifier
