test/test_ir.ml: Alcotest Builder Cpu Elzar Instr Ir Linker List Option Parser Printer String Types Verifier Workloads
