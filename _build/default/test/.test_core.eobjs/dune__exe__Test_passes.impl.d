test/test_passes.ml: Alcotest Builder Cpu Elzar Instr Ir List Option Printer String Types Verifier
