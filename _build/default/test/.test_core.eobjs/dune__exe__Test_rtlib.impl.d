test/test_rtlib.ml: Alcotest Builder Bytes Cpu Float Instr Int64 Ir List Types Verifier Workloads
