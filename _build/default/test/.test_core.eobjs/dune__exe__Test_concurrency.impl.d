test/test_concurrency.ml: Alcotest Builder Bytes Cpu Instr Ir Types Verifier Workloads
