test/test_workloads.ml: Alcotest Cpu Elzar List String Workloads
