test/test_apps.ml: Alcotest Apps Array Cpu Elzar List
