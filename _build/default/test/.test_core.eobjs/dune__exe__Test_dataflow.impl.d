test/test_dataflow.ml: Alcotest Array Builder Dataflow Elzar Hashtbl Instr Ir List Option String Types Verifier Workloads
