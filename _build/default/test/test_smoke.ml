(* Early smoke test: a summation loop built with the builder, executed on
   the machine, checked for value and for sane counters. *)

let sum_module n =
  let m = Ir.Builder.create_module () in
  let b, _ = Ir.Builder.func m "main" [] ~ret:Ir.Types.i64 in
  let open Ir.Builder in
  let acc = fresh b ~name:"acc" Ir.Types.i64 in
  assign b acc (i64c 0);
  for_ b ~lo:(i64c 0) ~hi:(i64c n) (fun i ->
      assign b acc (add b (Ir.Instr.Reg acc) i));
  call0 b "output_i64" [ Ir.Instr.Reg acc ];
  ret b (Some (Ir.Instr.Reg acc));
  m

let test_sum () =
  let m = sum_module 1000 in
  Ir.Verifier.verify_exn m;
  let r = Cpu.Machine.run_module m "main" in
  Alcotest.(check (option reject)) "no trap" None r.Cpu.Machine.trap;
  let bytes = r.Cpu.Machine.output_bytes in
  Alcotest.(check int) "output size" 8 (String.length bytes);
  let v = Bytes.get_int64_le (Bytes.of_string bytes) 0 in
  Alcotest.(check int64) "sum 0..999" 499500L v;
  Alcotest.(check bool) "cycles sane" true (r.Cpu.Machine.wall_cycles > 0)

let test_memory () =
  let m = Ir.Builder.create_module () in
  Ir.Builder.global m "buf" 1024;
  let b, _ = Ir.Builder.func m "main" [] in
  let open Ir.Builder in
  for_ b ~lo:(i64c 0) ~hi:(i64c 100) (fun i ->
      let addr = gep b (Ir.Instr.Glob "buf") i 8 in
      store b (mul b i (i64c 3)) addr);
  let acc = fresh b ~name:"acc" Ir.Types.i64 in
  assign b acc (i64c 0);
  for_ b ~lo:(i64c 0) ~hi:(i64c 100) (fun i ->
      let addr = gep b (Ir.Instr.Glob "buf") i 8 in
      assign b acc (add b (Ir.Instr.Reg acc) (load b Ir.Types.i64 addr)));
  call0 b "output_i64" [ Ir.Instr.Reg acc ];
  ret b None;
  Ir.Verifier.verify_exn m;
  let r = Cpu.Machine.run_module m "main" in
  Alcotest.(check (option reject)) "no trap" None r.Cpu.Machine.trap;
  let v = Bytes.get_int64_le (Bytes.of_string r.Cpu.Machine.output_bytes) 0 in
  Alcotest.(check int64) "sum of 3i" (Int64.of_int (3 * 99 * 100 / 2)) v

let tests =
  [
    Alcotest.test_case "sum loop" `Quick test_sum;
    Alcotest.test_case "global memory" `Quick test_memory;
  ]

(* ---- differential: all build flavours compute the same output ---- *)

let run_build b m =
  let r = Elzar.run b m "main" in
  (match r.Cpu.Machine.trap with
  | Some t -> Alcotest.failf "%s trapped: %s" (Elzar.build_name b) (Cpu.Machine.string_of_trap t)
  | None -> ());
  r

let test_differential () =
  let builds =
    [
      Elzar.Native;
      Elzar.Native_novec;
      Elzar.Hardened Elzar.Harden_config.default;
      Elzar.Hardened Elzar.Harden_config.no_checks;
      Elzar.Hardened Elzar.Harden_config.future_avx;
      Elzar.Hardened { Elzar.Harden_config.default with recovery = Elzar.Harden_config.Extended };
      Elzar.Swiftr;
    ]
  in
  let m = sum_module 500 in
  Ir.Verifier.verify_exn m;
  let reference = (run_build Elzar.Native_novec m).Cpu.Machine.output_bytes in
  List.iter
    (fun b ->
      let r = run_build b m in
      Alcotest.(check string)
        (Elzar.build_name b ^ " output")
        reference r.Cpu.Machine.output_bytes)
    builds

let test_elzar_slower_than_native () =
  let m = sum_module 2000 in
  let n = run_build Elzar.Native_novec m in
  let e = run_build (Elzar.Hardened Elzar.Harden_config.default) m in
  let ratio = Elzar.normalized_runtime ~native:n e in
  if ratio <= 1.0 then Alcotest.failf "elzar not slower: %.2f" ratio

let tests =
  tests
  @ [
      Alcotest.test_case "differential builds" `Quick test_differential;
      Alcotest.test_case "elzar costs more than native" `Quick test_elzar_slower_than_native;
    ]
