(* Unit tests of the CPU substrate: value semantics, cache, branch
   predictor, timing engine, memory/allocator. *)

open Cpu

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

(* ---- value semantics ---- *)

let test_int_widths () =
  let add8 = Value.binop_fn Ir.Types.I8 Ir.Instr.Add in
  check_i64 "i8 wraps" 0L (add8 255L 1L);
  let mul32 = Value.binop_fn Ir.Types.I32 Ir.Instr.Mul in
  check_i64 "i32 wraps" 0L (mul32 0x10000L 0x10000L);
  let sub16 = Value.binop_fn Ir.Types.I16 Ir.Instr.Sub in
  check_i64 "i16 canonical zero-extended" 0xFFFFL (sub16 0L 1L)

let test_signed_ops () =
  let sdiv = Value.binop_fn Ir.Types.I32 Ir.Instr.Sdiv in
  check_i64 "sdiv negative" (Value.canon Ir.Types.I32 (-3L)) (sdiv (Value.canon Ir.Types.I32 (-7L)) 2L);
  let ashr = Value.binop_fn Ir.Types.I32 Ir.Instr.Ashr in
  check_i64 "ashr sign extends" (Value.canon Ir.Types.I32 (-1L))
    (ashr (Value.canon Ir.Types.I32 (-1L)) 5L);
  let lshr = Value.binop_fn Ir.Types.I32 Ir.Instr.Lshr in
  check_i64 "lshr is logical" 0x7FFFFFFFL (lshr 0xFFFFFFFFL 1L)

let test_div_by_zero () =
  let sdiv = Value.binop_fn Ir.Types.I64 Ir.Instr.Sdiv in
  check_bool "raises" true
    (try
       ignore (sdiv 1L 0L);
       false
     with Value.Division_by_zero -> true)

let test_float_roundtrip () =
  let v = 3.14159 in
  check_bool "f64 bits roundtrip" true (Value.f64_decode (Value.f64_encode v) = v);
  let v32 = Value.f32_decode (Value.f32_encode 1.5) in
  check_bool "f32 exact for 1.5" true (v32 = 1.5);
  let fadd32 = Value.fbinop_fn Ir.Types.F32 Ir.Instr.Fadd in
  (* single-precision rounding actually happens *)
  let one_third = Value.f32_encode (1.0 /. 3.0) in
  check_bool "f32 is not f64" true
    (Value.f32_decode (fadd32 one_third one_third) <> 2.0 /. 3.0)

let test_casts () =
  let sext = Value.cast_fn Ir.Instr.Sext ~from:Ir.Types.I8 ~dst:Ir.Types.I64 in
  check_i64 "sext i8" (-1L) (sext 0xFFL);
  let zext = Value.cast_fn Ir.Instr.Zext ~from:Ir.Types.I8 ~dst:Ir.Types.I64 in
  check_i64 "zext i8" 255L (zext 0xFFL);
  let fptosi = Value.cast_fn Ir.Instr.Fptosi ~from:Ir.Types.F64 ~dst:Ir.Types.I32 in
  check_i64 "fptosi truncates toward zero" (Value.canon Ir.Types.I32 (-3L))
    (fptosi (Value.f64_encode (-3.7)));
  check_i64 "fptosi of nan is 0" 0L (fptosi (Value.f64_encode Float.nan))

let test_icmp_unsigned () =
  let ult = Value.icmp_fn Ir.Types.I64 Ir.Instr.Iult in
  check_bool "unsigned compare" true (ult 1L (-1L));
  let slt = Value.icmp_fn Ir.Types.I64 Ir.Instr.Islt in
  check_bool "signed compare" false (slt 1L (-1L))

(* ---- cache ---- *)

let test_cache_hit_after_miss () =
  let c = Cache.create () in
  check_int "first access misses" Cache.miss_latency (Cache.access c 0x10000L);
  check_int "second access hits" Cache.hit_latency (Cache.access c 0x10008L);
  check_int "one miss recorded" 1 c.Cache.misses

let test_cache_prefetch_next_line () =
  let c = Cache.create () in
  ignore (Cache.access c 0x10000L);
  check_int "next line was prefetched" Cache.hit_latency (Cache.access c 0x10040L)

let test_cache_capacity_eviction () =
  let c = Cache.create ~size_kb:32 () in
  (* touch 64 KB: the first lines must be evicted *)
  for i = 0 to 1023 do
    ignore (Cache.access c (Int64.of_int (0x100000 + (i * 64))))
  done;
  check_int "evicted line misses again" Cache.miss_latency (Cache.access c 0x100000L)

let test_cache_lru () =
  let c = Cache.create ~size_kb:1 ~ways:2 () in
  (* 1KB, 2-way, 64B lines -> 8 sets; three lines mapping to set 0 *)
  let addr k = Int64.of_int (k * 8 * 64) in
  ignore (Cache.access c (addr 0));
  ignore (Cache.access c (addr 2));
  ignore (Cache.access c (addr 0));
  (* line 2 is LRU (line 0 was re-touched); inserting line 4 evicts 2 *)
  ignore (Cache.access c (addr 4));
  check_int "line 0 retained" Cache.hit_latency (Cache.access c (addr 0))

(* ---- branch predictor ---- *)

let test_predictor_learns () =
  let p = Branch_pred.create () in
  for _ = 1 to 100 do
    ignore (Branch_pred.record p ~pc:42 ~taken:true)
  done;
  check_bool "steady taken branch predicted" false (Branch_pred.record p ~pc:42 ~taken:true)

let test_predictor_alternation_costs () =
  let p = Branch_pred.create () in
  let misses = ref 0 in
  for i = 1 to 1000 do
    (* pseudo-random outcome: hard for a 2-bit counter *)
    let taken = Hashtbl.hash i land 1 = 0 in
    if Branch_pred.record p ~pc:7 ~taken then incr misses
  done;
  check_bool "random branch mispredicts a lot" true (!misses > 200)

(* ---- timing engine ---- *)

let alu_uops n = Array.make n Cost.alu

let test_timing_ilp () =
  let t = Timing.create () in
  (* 100 independent single-cycle ALU ops on 4 ports: ~4 per cycle *)
  for _ = 1 to 100 do
    ignore (Timing.exec t ~ready:0 ~mem_lat:4 (alu_uops 1))
  done;
  let c = Timing.cycle t in
  check_bool "4-wide ILP" true (c >= 24 && c <= 35)

let test_timing_dependency_chain () =
  let t = Timing.create () in
  let ready = ref 0 in
  for _ = 1 to 100 do
    ready := Timing.exec t ~ready:!ready ~mem_lat:4 [| Cost.imul |]
  done;
  (* dependent multiplies serialize at 3 cycles each *)
  check_bool "latency-bound chain" true (!ready >= 300)

let test_timing_port_contention () =
  let t = Timing.create () in
  (* fdiv is port-0 only with rt 8: 20 independent divides still serialize *)
  for _ = 1 to 20 do
    ignore (Timing.exec t ~ready:0 ~mem_lat:4 [| Cost.fdiv_u |])
  done;
  check_bool "port-0 throughput bound" true (Timing.cycle t >= 8 * 19)

let test_timing_membus () =
  let t = Timing.create () in
  (* independent missing loads are bandwidth-limited by the memory pipe *)
  for _ = 1 to 50 do
    ignore (Timing.exec t ~ready:0 ~mem_lat:Cache.miss_latency [| Cost.load_u |])
  done;
  check_bool "bus-bound misses" true (Timing.cycle t >= Cost.membus_rt * 49)

let test_timing_mispredict () =
  let t = Timing.create () in
  let before = Timing.cycle t in
  Timing.mispredict t ~resolved:(before + 10);
  check_bool "flush advances dispatch" true
    (Timing.cycle t >= before + 10 + Cost.mispredict_penalty)

(* ---- memory ---- *)

let test_memory_rw () =
  let m = Memory.create () in
  let a = Memory.alloc_static m 64 in
  Memory.write m ~width:8 a 0x1122334455667788L;
  check_i64 "w8/r8" 0x1122334455667788L (Memory.read m ~width:8 a);
  check_i64 "little endian byte" 0x88L (Memory.read m ~width:1 a);
  Memory.write m ~width:2 (Int64.add a 16L) 0xABCDL;
  check_i64 "w2/r2" 0xABCDL (Memory.read m ~width:2 (Int64.add a 16L))

let test_memory_null_faults () =
  let m = Memory.create () in
  check_bool "null deref faults" true
    (try
       ignore (Memory.read m ~width:8 8L);
       false
     with Memory.Fault _ -> true);
  check_bool "oob faults" true
    (try
       ignore (Memory.read m ~width:8 (Int64.of_int (m.Memory.size - 4)));
       false
     with Memory.Fault _ -> true)

let test_malloc_free_reuse () =
  let m = Memory.create () in
  ignore (Memory.alloc_static m 128);
  Memory.heap_init m ~stack_reserve:4096;
  let a = Memory.malloc m 100 in
  let b = Memory.malloc m 100 in
  check_bool "distinct blocks" true (a <> b);
  Memory.free m a 100;
  let c = Memory.malloc m 50 in
  check_bool "freed space reused" true (c = a)

let test_stack_isolated_from_heap () =
  let m = Memory.create () in
  ignore (Memory.alloc_static m 64);
  Memory.heap_init m ~stack_reserve:8192;
  let s = Memory.alloc_stack m 4096 in
  check_bool "stack above heap limit" true (Int64.to_int s >= m.Memory.heap_limit)

let tests =
  [
    Alcotest.test_case "integer widths wrap" `Quick test_int_widths;
    Alcotest.test_case "signed operations" `Quick test_signed_ops;
    Alcotest.test_case "division by zero" `Quick test_div_by_zero;
    Alcotest.test_case "float encode/decode" `Quick test_float_roundtrip;
    Alcotest.test_case "casts" `Quick test_casts;
    Alcotest.test_case "signed vs unsigned compare" `Quick test_icmp_unsigned;
    Alcotest.test_case "cache: hit after miss" `Quick test_cache_hit_after_miss;
    Alcotest.test_case "cache: next-line prefetch" `Quick test_cache_prefetch_next_line;
    Alcotest.test_case "cache: capacity eviction" `Quick test_cache_capacity_eviction;
    Alcotest.test_case "cache: LRU" `Quick test_cache_lru;
    Alcotest.test_case "predictor learns loops" `Quick test_predictor_learns;
    Alcotest.test_case "predictor vs noise" `Quick test_predictor_alternation_costs;
    Alcotest.test_case "timing: 4-wide ILP" `Quick test_timing_ilp;
    Alcotest.test_case "timing: dependency chain" `Quick test_timing_dependency_chain;
    Alcotest.test_case "timing: port contention" `Quick test_timing_port_contention;
    Alcotest.test_case "timing: memory bandwidth" `Quick test_timing_membus;
    Alcotest.test_case "timing: mispredict flush" `Quick test_timing_mispredict;
    Alcotest.test_case "memory: read/write" `Quick test_memory_rw;
    Alcotest.test_case "memory: faults" `Quick test_memory_null_faults;
    Alcotest.test_case "memory: malloc/free" `Quick test_malloc_free_reuse;
    Alcotest.test_case "memory: stack isolation" `Quick test_stack_isolated_from_heap;
  ]
