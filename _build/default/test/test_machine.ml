(* Machine-level behaviours: traps, tracing, function pointers, and the
   runtime/builtin layer. *)

open Ir

let check_bool = Alcotest.(check bool)

let run_expect_trap mk (expected : Cpu.Machine.trap_reason -> bool) =
  let m = Builder.create_module () in
  Builder.global m "g" 64;
  let b, _ = Builder.func m ~hardened:false "main" [ ("n", Types.i64) ] in
  mk b;
  Builder.ret b None;
  Verifier.verify_exn m;
  let cfg = { Cpu.Machine.default_config with max_instrs = 100_000 } in
  let r = Cpu.Machine.run_module ~cfg m "main" ~args:[| 0L |] in
  match r.Cpu.Machine.trap with
  | Some t when expected t -> ()
  | Some t -> Alcotest.failf "unexpected trap: %s" (Cpu.Machine.string_of_trap t)
  | None -> Alcotest.fail "expected a trap"

let test_trap_null_deref () =
  run_expect_trap
    (fun b -> ignore (Builder.load b Types.i64 (Builder.ptrc 8)))
    (function Cpu.Machine.Segfault _ -> true | _ -> false)

let test_trap_div_zero () =
  run_expect_trap
    (fun b ->
      let z = Builder.sub b (Builder.i64c 5) (Builder.i64c 5) in
      ignore (Builder.sdiv b (Builder.i64c 1) z))
    (function Cpu.Machine.Div_by_zero -> true | _ -> false)

let test_trap_bad_callee () =
  run_expect_trap
    (fun b -> ignore (Builder.call_ind b ~ret:Types.i64 (Builder.ptrc 4096) []))
    (function Cpu.Machine.Bad_callee _ -> true | _ -> false)

let test_trap_abort () =
  run_expect_trap
    (fun b -> Builder.call0 b "abort" [])
    (function Cpu.Machine.Aborted -> true | _ -> false)

let test_function_pointers_work () =
  let m = Builder.create_module () in
  let open Builder in
  let b, ps = func m "double_it" ~ret:Types.i64 [ ("x", Types.i64) ] in
  let x = match ps with [ p ] -> Instr.Reg p | _ -> assert false in
  ret b (Some (mul b x (i64c 2)));
  let b, _ = func m ~hardened:false "main" [ ("n", Types.i64) ] in
  let fp = mov b (Instr.Fref "double_it") in
  let r = Option.get (call_ind b ~ret:Types.i64 fp [ i64c 21 ]) in
  call0 b "output_i64" [ r ];
  ret b None;
  Verifier.verify_exn m;
  let r = Cpu.Machine.run_module m "main" ~args:[| 0L |] in
  check_bool "no trap" true (r.Cpu.Machine.trap = None);
  Alcotest.(check int64) "42" 42L
    (Bytes.get_int64_le (Bytes.of_string r.Cpu.Machine.output_bytes) 0)

let test_malloc_free_roundtrip () =
  let m = Builder.create_module () in
  let open Builder in
  let b, _ = func m ~hardened:false "main" [ ("n", Types.i64) ] in
  let p = callv b ~ret:Types.ptr "malloc" [ i64c 256 ] in
  store b (i64c 77) p;
  let v = load b Types.i64 p in
  call0 b "output_i64" [ v ];
  call0 b "free" [ p ];
  let q = callv b ~ret:Types.ptr "malloc" [ i64c 64 ] in
  call0 b "output_i64" [ q ];
  ret b None;
  Verifier.verify_exn m;
  let r = Cpu.Machine.run_module m "main" ~args:[| 0L |] in
  check_bool "no trap" true (r.Cpu.Machine.trap = None);
  let out = Bytes.of_string r.Cpu.Machine.output_bytes in
  Alcotest.(check int64) "stored value" 77L (Bytes.get_int64_le out 0)

let test_trace_capture () =
  let m = Builder.create_module () in
  let open Builder in
  let b, _ = func m "kernel" [] in
  let acc = fresh b ~name:"acc" Types.i64 in
  assign b acc (i64c 0);
  for_ b ~lo:(i64c 0) ~hi:(i64c 3) (fun i -> assign b acc (add b (Instr.Reg acc) i));
  call0 b "output_i64" [ Instr.Reg acc ];
  ret b None;
  let b, _ = func m ~hardened:false "main" [ ("n", Types.i64) ] in
  call0 b "kernel" [];
  ret b None;
  Verifier.verify_exn m;
  let buf = Buffer.create 1024 in
  let cfg = { Cpu.Machine.default_config with trace = Some buf } in
  let r = Cpu.Machine.run_module ~cfg m "main" ~args:[| 0L |] in
  check_bool "no trap" true (r.Cpu.Machine.trap = None);
  let t = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and h = String.length t in
    let rec go i = i + n <= h && (String.sub t i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "trace mentions hardened kernel" true (contains "H@kernel");
  check_bool "trace mentions unhardened main" true (contains ".@main");
  check_bool "trace shows instruction text" true (contains "icmp slt")

let test_alloca_stack_discipline () =
  let m = Builder.create_module () in
  let open Builder in
  let b, ps = func m "leaf" ~ret:Types.i64 [ ("x", Types.i64) ] in
  let x = match ps with [ p ] -> Instr.Reg p | _ -> assert false in
  let slot = alloca b 64 in
  store b x slot;
  ret b (Some (load b Types.i64 slot));
  let b, _ = func m ~hardened:false "main" [ ("n", Types.i64) ] in
  (* repeated calls must not leak stack *)
  let acc = fresh b ~name:"acc" Types.i64 in
  assign b acc (i64c 0);
  for_ b ~lo:(i64c 0) ~hi:(i64c 10_000) (fun i ->
      let v = callv b ~ret:Types.i64 "leaf" [ i ] in
      assign b acc (add b (Instr.Reg acc) v));
  call0 b "output_i64" [ Instr.Reg acc ];
  ret b None;
  Verifier.verify_exn m;
  let r = Cpu.Machine.run_module m "main" ~args:[| 0L |] in
  check_bool "no stack overflow across 10k calls" true (r.Cpu.Machine.trap = None)

let tests =
  [
    Alcotest.test_case "trap: null deref" `Quick test_trap_null_deref;
    Alcotest.test_case "trap: division by zero" `Quick test_trap_div_zero;
    Alcotest.test_case "trap: bad callee" `Quick test_trap_bad_callee;
    Alcotest.test_case "trap: abort" `Quick test_trap_abort;
    Alcotest.test_case "function pointers" `Quick test_function_pointers_work;
    Alcotest.test_case "malloc/free" `Quick test_malloc_free_roundtrip;
    Alcotest.test_case "instruction trace" `Quick test_trace_capture;
    Alcotest.test_case "alloca stack discipline" `Quick test_alloca_stack_discipline;
  ]
