(* Case-study application tests: YCSB distributions, trap-free execution,
   and the scalability signatures the paper reports (memcached scales,
   sqlite3 reverse-scales). *)

let check_bool = Alcotest.(check bool)

let test_ycsb_workload_a_mix () =
  let reqs = Apps.Ycsb.generate Apps.Ycsb.A ~nkeys:1000 ~nreq:4000 in
  let reads = Array.fold_left (fun a (op, _) -> if op = Apps.Ycsb.Read then a + 1 else a) 0 reqs in
  let frac = float_of_int reads /. 4000.0 in
  check_bool "workload A is ~50% reads" true (frac > 0.45 && frac < 0.55)

let test_ycsb_workload_d_mix () =
  let reqs = Apps.Ycsb.generate Apps.Ycsb.D ~nkeys:1000 ~nreq:4000 in
  let reads = Array.fold_left (fun a (op, _) -> if op = Apps.Ycsb.Read then a + 1 else a) 0 reqs in
  let frac = float_of_int reads /. 4000.0 in
  check_bool "workload D is ~95% reads" true (frac > 0.92 && frac < 0.98)

let test_zipf_is_skewed () =
  let reqs = Apps.Ycsb.generate Apps.Ycsb.A ~nkeys:1000 ~nreq:5000 in
  let hot = Array.fold_left (fun a (_, k) -> if k < 10 then a + 1 else a) 0 reqs in
  (* 10 of 1000 keys should get far more than 1% of the traffic *)
  check_bool "zipfian head is hot" true (float_of_int hot /. 5000.0 > 0.15)

let test_latest_is_recent () =
  let reqs = Apps.Ycsb.generate Apps.Ycsb.D ~nkeys:1000 ~nreq:5000 in
  let recent = Array.fold_left (fun a (_, k) -> if k >= 990 then a + 1 else a) 0 reqs in
  check_bool "latest keys are hot" true (float_of_int recent /. 5000.0 > 0.15)

let run_app name client build nthreads =
  let app = Apps.Registry_apps.find name in
  let r = Apps.App.execute app ~build ~client ~nthreads in
  (match r.Cpu.Machine.trap with
  | Some t -> Alcotest.failf "%s trapped: %s" name (Cpu.Machine.string_of_trap t)
  | None -> ());
  (app, r)

let test_apps_run_all_builds () =
  List.iter
    (fun (app : Apps.App.t) ->
      List.iter
        (fun client ->
          List.iter
            (fun b -> ignore (run_app app.Apps.App.name client b 2))
            [ Elzar.Native; Elzar.Hardened Elzar.Harden_config.default ])
        app.Apps.App.clients)
    Apps.Registry_apps.all

let throughput name client build nthreads =
  let app, r = run_app name client build nthreads in
  Apps.App.throughput app r

let test_memcached_scales () =
  let t1 = throughput "memcached" (Apps.App.Ycsb Apps.Ycsb.A) Elzar.Native 1 in
  let t8 = throughput "memcached" (Apps.App.Ycsb Apps.Ycsb.A) Elzar.Native 8 in
  check_bool "memcached scales with threads" true (t8 > 2.0 *. t1)

let test_sqlite_reverse_scales () =
  let t1 = throughput "sqlite3" (Apps.App.Ycsb Apps.Ycsb.A) Elzar.Native 1 in
  let t8 = throughput "sqlite3" (Apps.App.Ycsb Apps.Ycsb.A) Elzar.Native 8 in
  check_bool "sqlite3 does not scale (global lock)" true (t8 < 1.3 *. t1)

let test_elzar_throughput_ratios () =
  (* the paper's §VI ordering: apache amortizes best, sqlite3 worst *)
  let ratio name client =
    throughput name client (Elzar.Hardened Elzar.Harden_config.default) 4
    /. throughput name client Elzar.Native 4
  in
  let mc = ratio "memcached" (Apps.App.Ycsb Apps.Ycsb.A) in
  let sq = ratio "sqlite3" (Apps.App.Ycsb Apps.Ycsb.A) in
  let ap = ratio "apache" Apps.App.Ab in
  check_bool "all ratios in (0,1]" true (mc > 0.0 && mc <= 1.01 && sq > 0.0 && ap <= 1.01);
  check_bool "apache amortizes better than sqlite3" true (ap > sq);
  check_bool "memcached amortizes better than sqlite3" true (mc > sq)

let tests =
  [
    Alcotest.test_case "ycsb A mix" `Quick test_ycsb_workload_a_mix;
    Alcotest.test_case "ycsb D mix" `Quick test_ycsb_workload_d_mix;
    Alcotest.test_case "zipfian skew" `Quick test_zipf_is_skewed;
    Alcotest.test_case "latest skew" `Quick test_latest_is_recent;
    Alcotest.test_case "all apps, all builds" `Slow test_apps_run_all_builds;
    Alcotest.test_case "memcached scales" `Quick test_memcached_scales;
    Alcotest.test_case "sqlite3 reverse-scales" `Quick test_sqlite_reverse_scales;
    Alcotest.test_case "hardening throughput order" `Slow test_elzar_throughput_ratios;
  ]
