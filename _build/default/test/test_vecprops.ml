(* Property-based testing of the auto-vectorizer: random canonical loops
   over two input arrays and an output array, with random reductions —
   vectorized and scalar builds must agree bit-for-bit, and the vector loop
   must handle remainders, invariants and affine operands. *)

open Ir

(* a loop body is a small expression tree over: A[i], B[i], the induction
   variable, an invariant parameter, and constants *)
type expr =
  | Load_a
  | Load_b
  | Ivar
  | Param
  | Const of int
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Xorop of expr * expr
  | Shlop of expr  (* << 3 *)
  | Cmpsel of expr * expr  (* if x < y then x else y *)

let rec gen_expr n st =
  if n <= 1 then
    match Random.State.int st 5 with
    | 0 -> Load_a
    | 1 -> Load_b
    | 2 -> Ivar
    | 3 -> Param
    | _ -> Const (Random.State.int st 100 - 50)
  else
    let sub () = gen_expr (n / 2) st in
    match Random.State.int st 6 with
    | 0 -> Add (sub (), sub ())
    | 1 -> Sub (sub (), sub ())
    | 2 -> Mul (sub (), sub ())
    | 3 -> Xorop (sub (), sub ())
    | 4 -> Shlop (sub ())
    | _ -> Cmpsel (sub (), sub ())

type spec = {
  seed : int;
  depth : int;
  trip : int;  (** deliberately often not a multiple of 4 *)
  reduce : bool;  (** accumulate into a sum, or store to C[i] *)
}

let rec emit_expr b ~a ~bb ~param (i : Instr.operand) (e : expr) : Instr.operand =
  let open Builder in
  let rec1 = emit_expr b ~a ~bb ~param i in
  match e with
  | Load_a -> load b Types.i64 (gep b a i 8)
  | Load_b -> load b Types.i64 (gep b bb i 8)
  | Ivar -> i
  | Param -> param
  | Const c -> i64c c
  | Add (x, y) -> add b (rec1 x) (rec1 y)
  | Sub (x, y) -> sub b (rec1 x) (rec1 y)
  | Mul (x, y) -> mul b (rec1 x) (rec1 y)
  | Xorop (x, y) -> xor b (rec1 x) (rec1 y)
  | Shlop x -> shl b (rec1 x) (i64c 3)
  | Cmpsel (x, y) ->
      let vx = rec1 x and vy = rec1 y in
      select b (icmp b Instr.Islt vx vy) vx vy

let build_loop (s : spec) : Instr.modul =
  let st = Random.State.make [| s.seed |] in
  let e = gen_expr s.depth st in
  let m = Builder.create_module () in
  Builder.global m "A" (s.trip * 8);
  Builder.global m "B" (s.trip * 8);
  Builder.global m "C" (s.trip * 8);
  let open Builder in
  let b, ps = func m "kernel" [ ("p", Types.i64) ] in
  let param = match ps with [ p ] -> Instr.Reg p | _ -> assert false in
  let acc = fresh b ~name:"acc" Types.i64 in
  assign b acc (i64c 0);
  for_ b ~lo:(i64c 0) ~hi:(i64c s.trip) (fun i ->
      let v = emit_expr b ~a:(Instr.Glob "A") ~bb:(Instr.Glob "B") ~param i e in
      if s.reduce then assign b acc (add b (Instr.Reg acc) v)
      else store b v (gep b (Instr.Glob "C") i 8));
  call0 b "output_i64" [ Instr.Reg acc ];
  for_ b ~lo:(i64c 0) ~hi:(i64c s.trip) (fun i ->
      call0 b "output_i64" [ load b Types.i64 (gep b (Instr.Glob "C") i 8) ]);
  ret b None;
  let b, ps = func m ~hardened:false "main" [ ("n", Types.i64) ] in
  let n = match ps with [ p ] -> Instr.Reg p | _ -> assert false in
  call0 b "kernel" [ n ];
  ret b None;
  m

let init_arrays machine trip =
  let st = Random.State.make [| 777 |] in
  Workloads.Data.fill_i64 machine "A" trip (fun _ -> Random.State.int64 st 1000L);
  Workloads.Data.fill_i64 machine "B" trip (fun _ -> Random.State.int64 st 1000L)

let run_spec (s : spec) build =
  let m = build_loop s in
  Verifier.verify_exn m;
  let prepared = Elzar.prepare build m in
  let machine = Cpu.Machine.create prepared in
  init_arrays machine s.trip;
  let r = Cpu.Machine.run ~args:[| 9L |] machine "main" in
  (match r.Cpu.Machine.trap with
  | Some t -> QCheck.Test.fail_reportf "trap: %s" (Cpu.Machine.string_of_trap t)
  | None -> ());
  r

let gen_spec =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "{seed=%d; depth=%d; trip=%d; reduce=%b}" s.seed s.depth s.trip s.reduce)
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      let* depth = int_range 1 10 in
      let* trip = int_range 1 133 in
      let* reduce = bool in
      return { seed; depth; trip; reduce })

let prop_vectorizer_sound =
  QCheck.Test.make ~count:60 ~name:"vectorizer: scalar and vector loops agree" gen_spec
    (fun s ->
      let scalar = run_spec s Elzar.Native_novec in
      let vector = run_spec s Elzar.Native in
      scalar.Cpu.Machine.output_bytes = vector.Cpu.Machine.output_bytes)

(* the generator must actually exercise the vectorizer, not only reject *)
let test_generator_vectorizes () =
  let vectorized = ref 0 in
  for seed = 0 to 30 do
    let m = build_loop { seed; depth = 4; trip = 64; reduce = seed mod 2 = 0 } in
    let m = Ir.Linker.copy m in
    ignore (Elzar.Optimize.run m);
    vectorized := !vectorized + Elzar.Vectorize.run m
  done;
  Alcotest.(check bool)
    (Printf.sprintf "a healthy fraction vectorizes (%d/31)" !vectorized)
    true (!vectorized > 8)

let tests =
  QCheck_alcotest.to_alcotest prop_vectorizer_sound
  :: [ Alcotest.test_case "generator coverage" `Quick test_generator_vectorizes ]
