(* Fault-injection framework tests: classification, correction properties,
   the window of vulnerability and its closure by future-AVX. *)

let check_bool = Alcotest.(check bool)

(* A hardened pure-compute kernel: parameters in, long register-only
   computation, one output.  No loads inside the hardened region means no
   extracted-address window: EVERY single-lane fault must be corrected or
   masked — never an SDC, never a crash. *)
let pure_compute_module () =
  let m = Ir.Builder.create_module () in
  let open Ir.Builder in
  let b, ps = func m "kernel" [ ("x", Ir.Types.i64) ] ~ret:Ir.Types.i64 in
  let x = match ps with [ p ] -> Ir.Instr.Reg p | _ -> assert false in
  let acc = fresh b ~name:"acc" Ir.Types.i64 in
  assign b acc x;
  for_ b ~lo:(i64c 0) ~hi:(i64c 40) (fun i ->
      let t = xor b (Reg acc) (shl b (Reg acc) (i64c 13)) in
      let t2 = add b t (mul b i (i64c 0x9E37)) in
      assign b acc (lshr b t2 (i64c 1)));
  ret b (Some (Reg acc));
  let b, _ = func m ~hardened:false "main" [ ("n", Ir.Types.i64) ] in
  let r = callv b ~ret:Ir.Types.i64 "kernel" [ i64c 123456789 ] in
  call0 b "output_i64" [ r ];
  ret b None;
  m

let spec_of build =
  Fault.make_spec (Elzar.prepare build (pure_compute_module ())) "main" ~args:[| 1L |]

let test_pure_compute_always_protected () =
  let spec = spec_of (Elzar.Hardened Elzar.Harden_config.default) in
  let golden = Fault.golden spec in
  let sites = golden.Cpu.Machine.inject_sites in
  check_bool "has injection sites" true (sites > 100);
  (* sweep a deterministic sample of injection points, lanes and bits *)
  let bad = ref 0 and corrected = ref 0 in
  for k = 0 to 80 do
    let at = 1 + (k * 7 mod sites) in
    let outcome =
      Fault.inject_one spec ~golden ~at ~lane:(k mod 4) ~bit:((k * 11) mod 64)
    in
    match outcome with
    | Fault.Elzar_corrected ->
        incr corrected
    | Fault.Masked -> ()
    | Fault.Hang | Fault.Os_detected | Fault.Sdc -> incr bad
  done;
  (* the only unprotected dataflow is the single return-value extract
     (the same window-of-vulnerability class as §V-C) *)
  check_bool "at most the return-extract window leaks" true (!bad <= 2);
  check_bool "some faults actively corrected" true (!corrected > 0)

let test_native_is_vulnerable () =
  let spec = spec_of Elzar.Native_novec in
  let golden = Fault.golden spec in
  let sites = golden.Cpu.Machine.inject_sites in
  let sdc = ref 0 in
  for k = 0 to 60 do
    let at = 1 + (k * 5 mod sites) in
    match Fault.inject_one spec ~golden ~at ~lane:0 ~bit:(k mod 64) with
    | Fault.Sdc -> incr sdc
    | _ -> ()
  done;
  check_bool "native suffers SDCs" true (!sdc > 5)

let test_campaign_stats_consistent () =
  let spec = spec_of (Elzar.Hardened Elzar.Harden_config.default) in
  let s = Fault.campaign ~seed:7 ~n:40 spec in
  Alcotest.(check int) "runs counted" 40 s.Fault.runs;
  Alcotest.(check int) "outcomes partition runs" 40
    (s.Fault.hang + s.Fault.os_detected + s.Fault.corrected + s.Fault.masked + s.Fault.sdc)

let test_campaign_deterministic () =
  let spec = spec_of (Elzar.Hardened Elzar.Harden_config.default) in
  let a = Fault.campaign ~seed:13 ~n:25 spec in
  let b = Fault.campaign ~seed:13 ~n:25 spec in
  check_bool "same seed, same stats" true (a = b)

(* The extended recovery handles every single-bit fault the basic one does. *)
let test_extended_recovery () =
  let spec =
    spec_of
      (Elzar.Hardened { Elzar.Harden_config.default with recovery = Elzar.Harden_config.Extended })
  in
  let golden = Fault.golden spec in
  let sites = golden.Cpu.Machine.inject_sites in
  let bad = ref 0 in
  for k = 0 to 50 do
    let at = 1 + (k * 13 mod sites) in
    match Fault.inject_one spec ~golden ~at ~lane:(k mod 4) ~bit:((k * 3) mod 64) with
    | Fault.Hang | Fault.Os_detected | Fault.Sdc -> incr bad
    | Fault.Elzar_corrected | Fault.Masked -> ()
  done;
  check_bool "extended recovery: at most the return window leaks" true (!bad <= 2)

(* In a load-heavy kernel the future-AVX gather mode closes the extracted
   address window: corrected faults still occur, via the FPGA-style vote. *)
let test_future_avx_corrects () =
  let m = Ir.Builder.create_module () in
  Ir.Builder.global m "a" 512;
  let open Ir.Builder in
  let b, _ = func m "kernel" [] ~ret:Ir.Types.i64 in
  let acc = fresh b ~name:"acc" Ir.Types.i64 in
  assign b acc (i64c 0);
  for_ b ~lo:(i64c 0) ~hi:(i64c 60) (fun i ->
      let v = load b Ir.Types.i64 (gep b (Ir.Instr.Glob "a") (and_ b i (i64c 63)) 8) in
      assign b acc (add b (Reg acc) v));
  ret b (Some (Reg acc));
  let b, _ = func m ~hardened:false "main" [ ("n", Ir.Types.i64) ] in
  let r = callv b ~ret:Ir.Types.i64 "kernel" [] in
  call0 b "output_i64" [ r ];
  ret b None;
  let spec =
    Fault.make_spec (Elzar.prepare (Elzar.Hardened Elzar.Harden_config.future_avx) m) "main"
      ~args:[| 1L |]
  in
  let golden = Fault.golden spec in
  let sites = golden.Cpu.Machine.inject_sites in
  let bad = ref 0 in
  for k = 0 to 60 do
    let at = 1 + (k * 3 mod sites) in
    match Fault.inject_one spec ~golden ~at ~lane:(k mod 4) ~bit:((k * 7) mod 64) with
    | Fault.Sdc -> incr bad
    | _ -> ()
  done;
  check_bool "gather mode: almost no SDCs" true (!bad <= 2)

let tests =
  [
    Alcotest.test_case "pure compute fully protected" `Slow test_pure_compute_always_protected;
    Alcotest.test_case "native is vulnerable" `Quick test_native_is_vulnerable;
    Alcotest.test_case "campaign stats partition" `Quick test_campaign_stats_consistent;
    Alcotest.test_case "campaign determinism" `Quick test_campaign_deterministic;
    Alcotest.test_case "extended recovery" `Slow test_extended_recovery;
    Alcotest.test_case "future-AVX closes the window" `Slow test_future_avx_corrects;
  ]
