(* Dataflow analysis tests: definite assignment, liveness, and the
   register-pressure story that the infinite-register simulator would
   otherwise hide (real SWIFT-R triples live values). *)

open Ir

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_verify_defs_catches_undefined () =
  (* if/else where one arm forgets to assign *)
  let m = Builder.create_module () in
  let b, ps = Builder.func m "f" [ ("x", Types.i64) ] ~ret:Types.i64 in
  let x = match ps with [ p ] -> Instr.Reg p | _ -> assert false in
  let open Builder in
  let r = fresh b ~name:"r" Types.i64 in
  if_ b
    (icmp b Instr.Isgt x (i64c 0))
    ~then_:(fun () -> assign b r x)
    ();
  (* r undefined when the branch is not taken *)
  ret b (Some (Instr.Reg r));
  match Verifier.verify m with
  | Ok () -> Alcotest.fail "undefined-register path not caught"
  | Error es ->
      check_bool "mentions definite assignment" true
        (List.exists (fun e -> String.length e > 0) es)

let test_verify_defs_accepts_diamond () =
  let m = Builder.create_module () in
  let b, ps = Builder.func m "f" [ ("x", Types.i64) ] ~ret:Types.i64 in
  let x = match ps with [ p ] -> Instr.Reg p | _ -> assert false in
  let open Builder in
  let r = fresh b ~name:"r" Types.i64 in
  if_ b
    (icmp b Instr.Isgt x (i64c 0))
    ~then_:(fun () -> assign b r x)
    ~else_:(fun () -> assign b r (i64c 0))
    ();
  ret b (Some (Instr.Reg r));
  check_bool "both arms assign: accepted" true (Verifier.verify m = Ok ())

let test_liveness_simple () =
  let m = Builder.create_module () in
  let b, ps = Builder.func m "f" [ ("x", Types.i64) ] ~ret:Types.i64 in
  let x = match ps with [ p ] -> Instr.Reg p | _ -> assert false in
  let open Builder in
  let t = add b x (i64c 1) in
  let u = mul b t t in
  ret b (Some u);
  let f = Option.get (Instr.find_func m "f") in
  let lv = Dataflow.liveness f in
  (* single block: nothing live out of the exit *)
  check_int "nothing live out" 0 (Dataflow.Iset.cardinal lv.Dataflow.live_out.(0));
  check_bool "param live in" true
    (Dataflow.Iset.mem 0 lv.Dataflow.live_in.(0))

let test_pressure_monotone_under_swiftr () =
  let w = Workloads.Registry.find "linreg" in
  let m = w.Workloads.Workload.build Workloads.Workload.Tiny in
  let pressure build name =
    let p = Elzar.prepare build m in
    Dataflow.max_pressure (Option.get (Instr.find_func p name))
  in
  let native = pressure Elzar.Native_novec "work" in
  let swiftr = pressure Elzar.Swiftr "work" in
  let elzar = pressure (Elzar.Hardened Elzar.Harden_config.default) "work" in
  check_bool "SWIFT-R pressure well above native (spills on a 16-reg ISA)" true
    (swiftr > 2 * native);
  (* ELZAR replicates data, not registers: pressure stays in the same
     ballpark as native (the paper's rationale for the approach) *)
  check_bool "ELZAR pressure below SWIFT-R" true (elzar < swiftr);
  check_bool "native pressure plausible" true (native > 4 && native < 64)

let test_cfg_shape () =
  let m = Builder.create_module () in
  let b, _ = Builder.func m "f" [] in
  let open Builder in
  for_ b ~lo:(i64c 0) ~hi:(i64c 4) (fun _ -> ());
  ret b None;
  let f = Option.get (Instr.find_func m "f") in
  let cfg = Dataflow.build_cfg f in
  (* entry, head, body, latch, exit *)
  check_int "five blocks" 5 (Array.length cfg.Dataflow.labels);
  let head = Hashtbl.find cfg.Dataflow.index "for.head1" in
  check_int "loop header has two predecessors" 2 (List.length cfg.Dataflow.preds.(head))

let tests =
  [
    Alcotest.test_case "definite assignment: catches" `Quick test_verify_defs_catches_undefined;
    Alcotest.test_case "definite assignment: diamond ok" `Quick test_verify_defs_accepts_diamond;
    Alcotest.test_case "liveness basics" `Quick test_liveness_simple;
    Alcotest.test_case "register pressure: SWIFT-R vs ELZAR" `Quick
      test_pressure_monotone_under_swiftr;
    Alcotest.test_case "cfg construction" `Quick test_cfg_shape;
  ]
