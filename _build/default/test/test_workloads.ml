(* Integration: every workload runs trap-free and produces identical output
   under every build flavour (the hardening passes are semantics-preserving
   by construction; this is the end-to-end check). *)

let builds =
  [
    Elzar.Native;
    Elzar.Native_novec;
    Elzar.Hardened Elzar.Harden_config.default;
    Elzar.Swiftr;
  ]

let check_workload ?(nthreads = 2) (w : Workloads.Workload.t) () =
  let run b =
    let r = Workloads.Workload.execute w ~build:b ~nthreads ~size:Workloads.Workload.Tiny in
    (match r.Cpu.Machine.trap with
    | Some t ->
        Alcotest.failf "%s/%s trapped: %s" w.Workloads.Workload.name (Elzar.build_name b)
          (Cpu.Machine.string_of_trap t)
    | None -> ());
    if String.length r.Cpu.Machine.output_bytes = 0 then
      Alcotest.failf "%s/%s produced no output" w.Workloads.Workload.name (Elzar.build_name b);
    r
  in
  let reference = run Elzar.Native_novec in
  List.iter
    (fun b ->
      let r = run b in
      Alcotest.(check string)
        (w.Workloads.Workload.name ^ "/" ^ Elzar.build_name b ^ " output")
        reference.Cpu.Machine.output_bytes r.Cpu.Machine.output_bytes)
    builds

let case w =
  Alcotest.test_case w.Workloads.Workload.name `Quick (check_workload w)

let tests =
  List.map case
    (Workloads.Registry.all @ Workloads.Registry.extended @ Workloads.Registry.micro)

(* thread-count scaling sanity: 4 threads should not be slower than 1 on an
   embarrassingly parallel benchmark *)
let test_scaling () =
  let w = Workloads.Registry.find "black" in
  let r1 = Workloads.Workload.execute w ~build:Elzar.Native ~nthreads:1 ~size:Workloads.Workload.Small in
  let r4 = Workloads.Workload.execute w ~build:Elzar.Native ~nthreads:4 ~size:Workloads.Workload.Small in
  if r4.Cpu.Machine.wall_cycles >= r1.Cpu.Machine.wall_cycles then
    Alcotest.failf "no speedup: 1t=%d 4t=%d" r1.Cpu.Machine.wall_cycles
      r4.Cpu.Machine.wall_cycles

let tests = tests @ [ Alcotest.test_case "thread scaling" `Quick test_scaling ]
