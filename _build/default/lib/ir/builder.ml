(** Imperative construction of IR modules.

    A builder holds a current function and a current basic block; emit
    helpers append instructions and return the destination as an operand, so
    straight-line code reads like the computation it performs.  Structured
    control flow ([if_], [while_], [for_]) manages labels and terminators;
    [for_] additionally records canonical-loop metadata for the
    auto-vectorizer. *)

open Instr

type t = {
  func : func;
  mutable cur : string;
  mutable nlabel : int;
}

let create_module () : modul = { funcs = []; globals = [] }

let global (m : modul) name size = m.globals <- { gname = name; gsize = size; ginit = None } :: m.globals

let global_init (m : modul) name data =
  m.globals <- { gname = name; gsize = String.length data; ginit = Some data } :: m.globals

let func (m : modul) ?(hardened = true) ?ret name params : t * reg list =
  let params =
    List.mapi (fun i (n, ty) -> { rid = i; rname = n; rty = ty }) params
  in
  let f =
    {
      fname = name;
      params;
      ret_ty = ret;
      blocks = [ ("entry", { instrs = []; term = Unreachable }) ];
      next_reg = List.length params;
      loops = [];
      hardened;
    }
  in
  m.funcs <- m.funcs @ [ f ];
  ({ func = f; cur = "entry"; nlabel = 0 }, params)

let fresh b ?(name = "t") ty =
  let r = { rid = b.func.next_reg; rname = name; rty = ty } in
  b.func.next_reg <- b.func.next_reg + 1;
  r

let label b prefix =
  b.nlabel <- b.nlabel + 1;
  Printf.sprintf "%s%d" prefix b.nlabel

(* Creates an empty block without switching to it. *)
let declare_block b l =
  b.func.blocks <- b.func.blocks @ [ (l, { instrs = []; term = Unreachable }) ]

let switch_to b l = b.cur <- l

let block b l =
  declare_block b l;
  switch_to b l

let cur_block b = find_block b.func b.cur
let emit b i = (cur_block b).instrs <- (cur_block b).instrs @ [ i ]
let terminate b t = (cur_block b).term <- t

(* ---- immediates ---- *)

let i1c v : operand = Imm (Types.i1, if v then 1L else 0L)
let i8c v : operand = Imm (Types.i8, Int64.of_int v)
let i16c v : operand = Imm (Types.i16, Int64.of_int v)
let i32c v : operand = Imm (Types.i32, Int64.of_int v)
let i64c v : operand = Imm (Types.i64, Int64.of_int v)
let ptrc v : operand = Imm (Types.ptr, Int64.of_int v)
let f32c v : operand = Fimm (Types.f32, v)
let f64c v : operand = Fimm (Types.f64, v)

let ty_of (o : operand) = operand_ty None o

(* ---- value-producing emitters ---- *)

let binop b op x y =
  let r = fresh b (ty_of x) in
  emit b (Binop (r, op, x, y));
  Reg r

let add b x y = binop b Add x y
let sub b x y = binop b Sub x y
let mul b x y = binop b Mul x y
let sdiv b x y = binop b Sdiv x y
let udiv b x y = binop b Udiv x y
let srem b x y = binop b Srem x y
let urem b x y = binop b Urem x y
let and_ b x y = binop b And x y
let or_ b x y = binop b Or x y
let xor b x y = binop b Xor x y
let shl b x y = binop b Shl x y
let lshr b x y = binop b Lshr x y
let ashr b x y = binop b Ashr x y

let fbinop b op x y =
  let r = fresh b (ty_of x) in
  emit b (Fbinop (r, op, x, y));
  Reg r

let fadd b x y = fbinop b Fadd x y
let fsub b x y = fbinop b Fsub x y
let fmul b x y = fbinop b Fmul x y
let fdiv b x y = fbinop b Fdiv x y

let icmp b cc x y =
  let r = fresh b Types.i1 in
  emit b (Icmp (r, cc, x, y));
  Reg r

let fcmp b cc x y =
  let r = fresh b Types.i1 in
  emit b (Fcmp (r, cc, x, y));
  Reg r

let select b c x y =
  let r = fresh b (ty_of x) in
  emit b (Select (r, c, x, y));
  Reg r

let cast b kind ty x =
  let r = fresh b ty in
  emit b (Cast (r, kind, x));
  Reg r

let trunc b ty x = cast b Trunc ty x
let zext b ty x = cast b Zext ty x
let sext b ty x = cast b Sext ty x
let sitofp b ty x = cast b Sitofp ty x
let fptosi b ty x = cast b Fptosi ty x

let mov b x =
  let r = fresh b (ty_of x) in
  emit b (Mov (r, x));
  Reg r

let load b ty addr =
  let r = fresh b ty in
  emit b (Load (r, addr));
  Reg r

let store b v addr = emit b (Store (v, addr))

let alloca b size =
  let r = fresh b Types.ptr in
  emit b (Alloca (r, size));
  Reg r

let call b ?ret name args =
  match ret with
  | None ->
      emit b (Call (None, name, args));
      None
  | Some ty ->
      let r = fresh b ty in
      emit b (Call (Some r, name, args));
      Some (Reg r)

let callv b ~ret name args =
  match call b ~ret name args with
  | Some v -> v
  | None -> assert false

let call0 b name args = ignore (call b name args)

let call_ind b ?ret fp args =
  match ret with
  | None ->
      emit b (Call_ind (None, None, fp, args));
      None
  | Some ty ->
      let r = fresh b ty in
      emit b (Call_ind (Some r, Some ty, fp, args));
      Some (Reg r)

let atomic_rmw b op addr x =
  let r = fresh b (ty_of x) in
  emit b (Atomic_rmw (r, op, addr, x));
  Reg r

let cmpxchg b addr expected desired =
  let r = fresh b (ty_of expected) in
  emit b (Cmpxchg (r, addr, expected, desired));
  Reg r

(* Writes [v] into an existing register (loop accumulators etc.). *)
let assign b (r : reg) (v : operand) = emit b (Mov (r, v))

(* ---- address arithmetic ---- *)

(* addr + index * scale, all in the pointer domain.  Power-of-two scales
   become shifts, as x86 addressing/LEA would encode them. *)
let gep b base index scale =
  let idx =
    match ty_of index with
    | Types.Scalar Types.Ptr -> index
    | Types.Scalar Types.I64 -> cast b Bitcast Types.ptr index
    | _ -> cast b Zext Types.ptr index
  in
  let off =
    if scale = 1 then idx
    else if scale land (scale - 1) = 0 then
      let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
      binop b Shl idx (ptrc (log2 scale 0))
    else binop b Mul idx (ptrc scale)
  in
  binop b Add base off

(* ---- vector helpers (used by hardened code and the vectorizer) ---- *)

let extractlane b o lane =
  let r = fresh b (Types.Scalar (Types.elem (ty_of o))) in
  emit b (Extractlane (r, o, lane));
  Reg r

let insertlane b vec lane s =
  let r = fresh b (ty_of vec) in
  emit b (Insertlane (r, vec, lane, s));
  Reg r

let broadcast b vty s =
  let r = fresh b vty in
  emit b (Broadcast (r, s));
  Reg r

let shuffle b o perm =
  let r = fresh b (ty_of o) in
  emit b (Shuffle (r, o, perm));
  Reg r

let ptestz b o =
  let r = fresh b Types.i1 in
  emit b (Ptestz (r, o));
  Reg r

(* ---- control flow ---- *)

let ret b o = terminate b (Ret o)
let br b l = terminate b (Br l)
let cond_br b c t f = terminate b (Cond_br (c, t, f))

let if_ b cond ~then_ ?else_ () =
  let lt = label b "then" and le = label b "else" and lj = label b "join" in
  (match else_ with
  | Some _ -> cond_br b cond lt le
  | None -> cond_br b cond lt lj);
  block b lt;
  then_ ();
  br b lj;
  (match else_ with
  | Some f ->
      block b le;
      f ();
      br b lj
  | None -> ());
  block b lj

let while_ b ~cond ~body =
  let lh = label b "while.head" and lb = label b "while.body" and lx = label b "while.exit" in
  br b lh;
  block b lh;
  let c = cond () in
  cond_br b c lb lx;
  block b lb;
  body ();
  br b lh;
  block b lx

(* Canonical counted loop over [lo, hi) with unit step; records metadata for
   the auto-vectorizer.  The body receives the induction variable. *)
let for_ b ?(name = "i") ~lo ~hi body =
  let lh = label b "for.head"
  and lb = label b "for.body"
  and ll = label b "for.latch"
  and lx = label b "for.exit" in
  let i = fresh b ~name (ty_of lo) in
  assign b i lo;
  br b lh;
  block b lh;
  let c = icmp b Islt (Reg i) hi in
  cond_br b c lb lx;
  block b lb;
  body (Reg i);
  br b ll;
  block b ll;
  emit b (Binop (i, Add, Reg i, Imm (i.rty, 1L)));
  br b lh;
  block b lx;
  b.func.loops <-
    {
      l_header = lh;
      l_body = lb;
      l_latch = ll;
      l_exit = lx;
      l_ivar = i;
      l_lo = lo;
      l_hi = hi;
    }
    :: b.func.loops
