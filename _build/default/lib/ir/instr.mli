(** Instructions, basic blocks, functions and modules of the ELZAR IR.

    The IR is a register-transfer form rather than SSA: virtual registers
    may be assigned more than once, which keeps loops free of phi nodes and
    lets the hardening passes rewrite programs with a one-to-one register
    map.  Control flow is structured into named basic blocks ending in a
    single terminator. *)

(** A virtual register.  [rid] is unique within a function; two [reg]
    values with the same [rid] denote the same storage (the hardening
    passes exploit this to retype a register in place). *)
type reg = { rid : int; rname : string; rty : Types.t }

type operand =
  | Reg of reg
  | Imm of Types.t * int64  (** integer/pointer immediate; splat if vector *)
  | Fimm of Types.t * float  (** float immediate; splat if vector *)
  | Glob of string  (** address of a named global buffer (type ptr) *)
  | Fref of string  (** address of a named function (type ptr) *)

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Udiv
  | Srem
  | Urem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type fbinop = Fadd | Fsub | Fmul | Fdiv
type icmp = Ieq | Ine | Islt | Isle | Isgt | Isge | Iult | Iule | Iugt | Iuge
type fcmp = Foeq | Fone | Folt | Fole | Fogt | Foge
type cast = Trunc | Zext | Sext | Fptosi | Sitofp | Fpext | Fptrunc | Bitcast
type rmw = Rmw_add | Rmw_sub | Rmw_xchg | Rmw_and | Rmw_or

type t =
  | Binop of reg * binop * operand * operand
  | Fbinop of reg * fbinop * operand * operand
  | Icmp of reg * icmp * operand * operand
      (** vector compares fill lanes with full-width all-ones/all-zero
          masks, like AVX [vpcmpeq*] *)
  | Fcmp of reg * fcmp * operand * operand
  | Select of reg * operand * operand * operand  (** cond, if-true, if-false *)
  | Cast of reg * cast * operand
      (** target type is [reg.rty]; vector casts with differing lane counts
          read source lane [j mod lanes] *)
  | Mov of reg * operand
  | Load of reg * operand  (** loads a [reg.rty] from a scalar address *)
  | Store of operand * operand  (** value, address *)
  | Alloca of reg * int  (** stack allocation of n bytes; yields ptr *)
  | Call of reg option * string * operand list
  | Call_ind of reg option * Types.t option * operand * operand list
  | Atomic_rmw of reg * rmw * operand * operand  (** returns old value *)
  | Cmpxchg of reg * operand * operand * operand
  | Extractlane of reg * operand * int
  | Insertlane of reg * operand * int * operand
  | Broadcast of reg * operand
  | Shuffle of reg * operand * int array
  | Ptestz of reg * operand  (** i1 := all lanes of the vector are zero *)
  | Gather of reg * operand
      (** FPGA-checked gather (paper §VII): majority-votes the address
          lanes, performs one load, replicates the result *)
  | Scatter of operand * operand
      (** FPGA-checked scatter: votes value and address lanes, stores once *)

type terminator =
  | Ret of operand option
  | Br of string
  | Cond_br of operand * string * string
  | Vbr of operand * string * string * string
      (** mask vector; all-true, all-false and mixed (fault -> recovery)
          targets; lowers to [vptest]+[je]+[ja] *)
  | Vbr_unchecked of operand * string * string
      (** AVX branch without the mixed-outcome check (Fig. 12's "no branch
          checks"); lowers to [vptest]+[jcc] *)
  | Unreachable

type block = { mutable instrs : t list; mutable term : terminator }

(** Loop metadata recorded by {!Builder.for_}; consumed by the
    auto-vectorizer. *)
type loop_info = {
  l_header : string;
  l_body : string;
  l_latch : string;
  l_exit : string;
  l_ivar : reg;
  l_lo : operand;
  l_hi : operand;
}

type func = {
  fname : string;
  params : reg list;
  ret_ty : Types.t option;
  mutable blocks : (string * block) list;  (** in layout order; head = entry *)
  mutable next_reg : int;
  mutable loops : loop_info list;
  hardened : bool;  (** false = third-party/library code left unprotected *)
}

type global = { gname : string; gsize : int; ginit : string option }
type modul = { mutable funcs : func list; mutable globals : global list }

(** Type of an operand ([Glob]/[Fref] are pointers). *)
val operand_ty : modul option -> operand -> Types.t

(** Destination register, if any. *)
val dest : t -> reg option

(** Register and immediate inputs, in evaluation order. *)
val operands : t -> operand list

val term_operands : terminator -> operand list
val successors : terminator -> string list

(** Hardening classification (paper §III-B): synchronization instructions
    (memory and call-like, plus all terminators) are not replicated. *)
type klass = Computational | Memory | Callish

val classify : t -> klass
val find_func : modul -> string -> func option

(** @raise Invalid_argument when the label is unknown. *)
val find_block : func -> string -> block

(** @raise Invalid_argument when the function has no blocks. *)
val entry_label : func -> string
