lib/ir/builder.mli: Instr Types
