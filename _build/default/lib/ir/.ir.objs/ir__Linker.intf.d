lib/ir/linker.mli: Instr
