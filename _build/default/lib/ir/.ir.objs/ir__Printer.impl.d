lib/ir/printer.ml: Array Char Format Instr List Printf String Types
