lib/ir/parser.ml: Array Buffer Char Hashtbl Instr Int64 List Printf String Types
