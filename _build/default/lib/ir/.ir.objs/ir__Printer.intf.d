lib/ir/printer.mli: Format Instr
