lib/ir/linker.ml: Hashtbl Instr List
