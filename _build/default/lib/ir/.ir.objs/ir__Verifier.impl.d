lib/ir/verifier.ml: Array Dataflow Instr List Printer Printf Types
