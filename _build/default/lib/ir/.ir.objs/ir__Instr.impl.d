lib/ir/instr.ml: List Printf Types
