lib/ir/parser.mli: Instr
