lib/ir/dataflow.ml: Array Hashtbl Instr Int List Printf Set
