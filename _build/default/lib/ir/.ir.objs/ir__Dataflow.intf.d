lib/ir/dataflow.mli: Hashtbl Instr Set
