lib/ir/verifier.mli: Instr
