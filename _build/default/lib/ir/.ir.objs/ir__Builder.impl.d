lib/ir/builder.ml: Instr Int64 List Printf String Types
