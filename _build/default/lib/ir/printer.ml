(** Textual rendering of IR modules, in an LLVM-flavoured syntax.

    Used by the examples (to show native vs. SWIFT-R vs. ELZAR code, as in
    the paper's Figs. 5 and 10), by error messages, and by the test suite. *)

open Instr

let string_of_binop = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | Udiv -> "udiv"
  | Srem -> "srem"
  | Urem -> "urem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"

let string_of_fbinop = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let string_of_icmp = function
  | Ieq -> "eq"
  | Ine -> "ne"
  | Islt -> "slt"
  | Isle -> "sle"
  | Isgt -> "sgt"
  | Isge -> "sge"
  | Iult -> "ult"
  | Iule -> "ule"
  | Iugt -> "ugt"
  | Iuge -> "uge"

let string_of_fcmp = function
  | Foeq -> "oeq"
  | Fone -> "one"
  | Folt -> "olt"
  | Fole -> "ole"
  | Fogt -> "ogt"
  | Foge -> "oge"

let string_of_cast = function
  | Trunc -> "trunc"
  | Zext -> "zext"
  | Sext -> "sext"
  | Fptosi -> "fptosi"
  | Sitofp -> "sitofp"
  | Fpext -> "fpext"
  | Fptrunc -> "fptrunc"
  | Bitcast -> "bitcast"

let string_of_rmw = function
  | Rmw_add -> "add"
  | Rmw_sub -> "sub"
  | Rmw_xchg -> "xchg"
  | Rmw_and -> "and"
  | Rmw_or -> "or"

let string_of_reg (r : reg) = Printf.sprintf "%%%s.%d" r.rname r.rid

let string_of_operand = function
  | Reg r -> string_of_reg r
  | Imm (t, v) -> Printf.sprintf "%s %Ld" (Types.to_string t) v
  | Fimm (t, v) -> Printf.sprintf "%s %h" (Types.to_string t) v
  | Glob g -> Printf.sprintf "@%s" g
  | Fref f -> Printf.sprintf "@fn:%s" f

let so = string_of_operand

let sdest (r : reg) =
  Printf.sprintf "%s = %s " (string_of_reg r) (Types.to_string r.rty)

let string_of_instr (i : t) =
  match i with
  | Binop (r, op, a, b) ->
      Printf.sprintf "%s%s %s, %s" (sdest r) (string_of_binop op) (so a) (so b)
  | Fbinop (r, op, a, b) ->
      Printf.sprintf "%s%s %s, %s" (sdest r) (string_of_fbinop op) (so a) (so b)
  | Icmp (r, cc, a, b) ->
      Printf.sprintf "%sicmp %s %s, %s" (sdest r) (string_of_icmp cc) (so a) (so b)
  | Fcmp (r, cc, a, b) ->
      Printf.sprintf "%sfcmp %s %s, %s" (sdest r) (string_of_fcmp cc) (so a) (so b)
  | Select (r, c, a, b) ->
      Printf.sprintf "%sselect %s, %s, %s" (sdest r) (so c) (so a) (so b)
  | Cast (r, k, a) -> Printf.sprintf "%s%s %s" (sdest r) (string_of_cast k) (so a)
  | Mov (r, a) -> Printf.sprintf "%smov %s" (sdest r) (so a)
  | Load (r, a) -> Printf.sprintf "%sload %s" (sdest r) (so a)
  | Store (v, a) -> Printf.sprintf "store %s, %s" (so v) (so a)
  | Alloca (r, n) -> Printf.sprintf "%salloca %d" (sdest r) n
  | Call (Some r, f, args) ->
      Printf.sprintf "%scall @%s(%s)" (sdest r) f (String.concat ", " (List.map so args))
  | Call (None, f, args) ->
      Printf.sprintf "call @%s(%s)" f (String.concat ", " (List.map so args))
  | Call_ind (r, _, fp, args) ->
      let d = match r with Some r -> sdest r | None -> "" in
      Printf.sprintf "%scall_ind %s(%s)" d (so fp) (String.concat ", " (List.map so args))
  | Atomic_rmw (r, op, addr, x) ->
      Printf.sprintf "%satomicrmw %s %s, %s" (sdest r) (string_of_rmw op) (so addr) (so x)
  | Cmpxchg (r, addr, e, d) ->
      Printf.sprintf "%scmpxchg %s, %s, %s" (sdest r) (so addr) (so e) (so d)
  | Extractlane (r, v, l) -> Printf.sprintf "%sextractlane %s, %d" (sdest r) (so v) l
  | Insertlane (r, v, l, s) ->
      Printf.sprintf "%sinsertlane %s, %d, %s" (sdest r) (so v) l (so s)
  | Broadcast (r, s) -> Printf.sprintf "%sbroadcast %s" (sdest r) (so s)
  | Shuffle (r, v, perm) ->
      let p = String.concat "," (Array.to_list (Array.map string_of_int perm)) in
      Printf.sprintf "%sshuffle %s, [%s]" (sdest r) (so v) p
  | Ptestz (r, v) -> Printf.sprintf "%sptestz %s" (sdest r) (so v)
  | Gather (r, v) -> Printf.sprintf "%sgather %s" (sdest r) (so v)
  | Scatter (v, a) -> Printf.sprintf "scatter %s, %s" (so v) (so a)

let string_of_terminator = function
  | Ret None -> "ret void"
  | Ret (Some o) -> Printf.sprintf "ret %s" (so o)
  | Br l -> Printf.sprintf "br %%%s" l
  | Cond_br (c, t, f) -> Printf.sprintf "br %s, %%%s, %%%s" (so c) t f
  | Vbr (m, t, f, r) -> Printf.sprintf "vbr %s, %%%s, %%%s, recover %%%s" (so m) t f r
  | Vbr_unchecked (m, t, f) -> Printf.sprintf "vbr.nocheck %s, %%%s, %%%s" (so m) t f
  | Unreachable -> "unreachable"

let pp_func fmt (f : func) =
  let params =
    String.concat ", "
      (List.map
         (fun r -> Printf.sprintf "%s %s" (Types.to_string r.rty) (string_of_reg r))
         f.params)
  in
  let ret = match f.ret_ty with None -> "void" | Some t -> Types.to_string t in
  Format.fprintf fmt "define %s @%s(%s)%s {@." ret f.fname params
    (if f.hardened then "" else " unhardened");
  List.iter
    (fun (l, b) ->
      Format.fprintf fmt "%s:@." l;
      List.iter (fun i -> Format.fprintf fmt "  %s@." (string_of_instr i)) b.instrs;
      Format.fprintf fmt "  %s@." (string_of_terminator b.term))
    f.blocks;
  Format.fprintf fmt "}@."

let hex_of_string s =
  String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c)) (List.init (String.length s) (String.get s)))

let pp_modul fmt (m : modul) =
  List.iter
    (fun g ->
      match g.ginit with
      | None -> Format.fprintf fmt "global @%s[%d]@." g.gname g.gsize
      | Some init -> Format.fprintf fmt "global @%s[%d] = %s@." g.gname g.gsize (hex_of_string init))
    m.globals;
  List.iter (fun f -> Format.fprintf fmt "@.%a" pp_func f) m.funcs

let func_to_string f = Format.asprintf "%a" pp_func f
let modul_to_string m = Format.asprintf "%a" pp_modul m
