(** Linking of IR modules.

    Programs are linked against the IR runtime library (the hardened
    libc/libm subset) before being handed to a hardening pass or to the
    machine, mirroring how the paper links benchmarks against musl via the
    LLVM gold plugin. *)

open Instr

exception Duplicate_symbol of string

let check_no_dup names =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun n ->
      if Hashtbl.mem tbl n then raise (Duplicate_symbol n);
      Hashtbl.replace tbl n ())
    names

(* Links [ms] into a single module.  Function and global names must be
   unique across all inputs. *)
let link (ms : modul list) : modul =
  let funcs = List.concat_map (fun m -> m.funcs) ms in
  let globals = List.concat_map (fun m -> m.globals) ms in
  check_no_dup (List.map (fun f -> f.fname) funcs);
  check_no_dup (List.map (fun g -> g.gname) globals);
  { funcs; globals }

(* Set of function names defined in the module; calls to anything else are
   builtins provided natively by the machine (OS, pthreads, I/O — the parts
   the paper leaves unhardened). *)
let defined_names (m : modul) =
  List.fold_left (fun acc f -> f.fname :: acc) [] m.funcs

(* Deep copy, so that a hardening pass can rewrite a module in place without
   clobbering the caller's copy. *)
let copy_func (f : func) : func =
  {
    f with
    blocks = List.map (fun (l, b) -> (l, { instrs = b.instrs; term = b.term })) f.blocks;
    loops = f.loops;
  }

let copy (m : modul) : modul =
  { funcs = List.map copy_func m.funcs; globals = m.globals }
