(** CFG dataflow analyses over the non-SSA IR: definite assignment (used by
    the verifier to catch pass bugs) and backward liveness / register
    pressure. *)

module Iset : Set.S with type elt = int

type cfg = {
  labels : string array;
  index : (string, int) Hashtbl.t;
  preds : int list array;
  succs : int list array;
}

val build_cfg : Instr.func -> cfg

(** Errors for registers read on some path before any definition
    (unreachable blocks are ignored). *)
val verify_defs : Instr.func -> string list

type liveness = { live_in : Iset.t array; live_out : Iset.t array }

val liveness : Instr.func -> liveness

(** Peak number of simultaneously live registers: a register-pressure
    proxy (what makes real SWIFT-R spill on 16-register x86). *)
val max_pressure : Instr.func -> int
