(** Structural and type checking of IR modules.

    Runs after construction and after every transformation pass in the test
    suite; a pass that produces ill-typed code is a bug, so the main entry
    point raises.

    Global and function addresses ([Glob]/[Fref]) are scalar pointers but
    may appear wherever a pointer-element vector is expected: they are
    link-time constants and splat for free, which the ELZAR pass relies
    on. *)

exception Ill_formed of string list

(** Errors of one function, as human-readable strings (empty = valid). *)
val verify_func : Instr.modul -> Instr.func -> string list

val verify : Instr.modul -> (unit, string list) result

(** @raise Ill_formed when the module does not verify. *)
val verify_exn : Instr.modul -> unit
