(** Parser for the textual IR emitted by {!Printer}; the round trip
    [parse (Printer.modul_to_string m)] reconstructs [m] up to loop
    metadata. *)

exception Parse_error of int * string
(** Line number and message. *)

val parse : string -> Instr.modul
val parse_file : string -> Instr.modul
