(** Imperative construction of IR modules.

    A builder holds a current function and a current basic block; emit
    helpers append instructions and return the destination as an operand.
    Structured control flow ([if_], [while_], [for_]) manages labels and
    terminators; [for_] additionally records canonical-loop metadata for
    the auto-vectorizer. *)

open Instr

type t = {
  func : func;
  mutable cur : string;  (** label of the block being appended to *)
  mutable nlabel : int;
}

val create_module : unit -> modul

(** [global m name size] declares a zero-initialized global buffer. *)
val global : modul -> string -> int -> unit

(** Declares a global initialized with the given bytes. *)
val global_init : modul -> string -> string -> unit

(** [func m name params] starts a new function and returns its builder and
    parameter registers.  [~hardened:false] marks third-party/library code
    that the hardening passes must leave untouched. *)
val func :
  modul -> ?hardened:bool -> ?ret:Types.t -> string -> (string * Types.t) list -> t * reg list

(** Fresh virtual register of the given type. *)
val fresh : t -> ?name:string -> Types.t -> reg

(** Fresh block label with the given prefix. *)
val label : t -> string -> string

val declare_block : t -> string -> unit
val switch_to : t -> string -> unit

(** Creates a block and makes it current. *)
val block : t -> string -> unit

val cur_block : t -> block
val emit : t -> Instr.t -> unit
val terminate : t -> terminator -> unit

(** {1 Immediates} *)

val i1c : bool -> operand
val i8c : int -> operand
val i16c : int -> operand
val i32c : int -> operand
val i64c : int -> operand
val ptrc : int -> operand
val f32c : float -> operand
val f64c : float -> operand

val ty_of : operand -> Types.t

(** {1 Value-producing emitters}

    Each appends one instruction to the current block and returns its
    destination. *)

val binop : t -> binop -> operand -> operand -> operand
val add : t -> operand -> operand -> operand
val sub : t -> operand -> operand -> operand
val mul : t -> operand -> operand -> operand
val sdiv : t -> operand -> operand -> operand
val udiv : t -> operand -> operand -> operand
val srem : t -> operand -> operand -> operand
val urem : t -> operand -> operand -> operand
val and_ : t -> operand -> operand -> operand
val or_ : t -> operand -> operand -> operand
val xor : t -> operand -> operand -> operand
val shl : t -> operand -> operand -> operand
val lshr : t -> operand -> operand -> operand
val ashr : t -> operand -> operand -> operand
val fbinop : t -> fbinop -> operand -> operand -> operand
val fadd : t -> operand -> operand -> operand
val fsub : t -> operand -> operand -> operand
val fmul : t -> operand -> operand -> operand
val fdiv : t -> operand -> operand -> operand
val icmp : t -> icmp -> operand -> operand -> operand
val fcmp : t -> fcmp -> operand -> operand -> operand
val select : t -> operand -> operand -> operand -> operand
val cast : t -> cast -> Types.t -> operand -> operand
val trunc : t -> Types.t -> operand -> operand
val zext : t -> Types.t -> operand -> operand
val sext : t -> Types.t -> operand -> operand
val sitofp : t -> Types.t -> operand -> operand
val fptosi : t -> Types.t -> operand -> operand
val mov : t -> operand -> operand
val load : t -> Types.t -> operand -> operand
val store : t -> operand -> operand -> unit
val alloca : t -> int -> operand

val call : t -> ?ret:Types.t -> string -> operand list -> operand option

(** [call] that must return a value. *)
val callv : t -> ret:Types.t -> string -> operand list -> operand

(** [call] for effect only. *)
val call0 : t -> string -> operand list -> unit

val call_ind : t -> ?ret:Types.t -> operand -> operand list -> operand option
val atomic_rmw : t -> rmw -> operand -> operand -> operand
val cmpxchg : t -> operand -> operand -> operand -> operand

(** Writes a value into an existing register (loop accumulators etc.). *)
val assign : t -> reg -> operand -> unit

(** [gep b base index scale] computes [base + index*scale] in the pointer
    domain; power-of-two scales become shifts, as x86 addressing would
    encode them. *)
val gep : t -> operand -> operand -> int -> operand

(** {1 Vector helpers} (used by hardened code and the vectorizer) *)

val extractlane : t -> operand -> int -> operand
val insertlane : t -> operand -> int -> operand -> operand
val broadcast : t -> Types.t -> operand -> operand
val shuffle : t -> operand -> int array -> operand
val ptestz : t -> operand -> operand

(** {1 Control flow} *)

val ret : t -> operand option -> unit
val br : t -> string -> unit
val cond_br : t -> operand -> string -> string -> unit

(** Structured conditional; creates then/else/join blocks. *)
val if_ : t -> operand -> then_:(unit -> unit) -> ?else_:(unit -> unit) -> unit -> unit

val while_ : t -> cond:(unit -> operand) -> body:(unit -> unit) -> unit

(** Canonical counted loop over [lo, hi) with unit step; records metadata
    for the auto-vectorizer.  The body receives the induction variable. *)
val for_ : t -> ?name:string -> lo:operand -> hi:operand -> (operand -> unit) -> unit
