(** Structural and type checking of IR modules.

    The verifier runs after construction and after every transformation pass
    in the test suite; a hardening pass that produces ill-typed code is a
    bug, not a runtime condition, so the main entry point raises.

    Global and function addresses ([Glob]/[Fref]) are scalar pointers but
    may appear wherever a pointer-element vector is expected: they denote
    link-time constants, which splat for free (the hardened code of the
    ELZAR pass relies on this, exactly like LLVM constant expressions). *)

open Instr

exception Ill_formed of string list

type ctx = { m : modul; f : func; mutable errors : string list }

let err ctx fmt =
  Printf.ksprintf
    (fun s -> ctx.errors <- Printf.sprintf "@%s: %s" ctx.f.fname s :: ctx.errors)
    fmt

let is_int_ty (t : Types.t) = Types.is_int (Types.elem t)
let is_float_ty (t : Types.t) = Types.is_float (Types.elem t)

let mask_ty_of (t : Types.t) =
  match t with
  | Types.Scalar _ -> Types.i1
  | Types.Vector (s, n) -> Types.Vector (Types.mask_elem s, n)

let is_mask_ty (t : Types.t) =
  match t with
  | Types.Scalar Types.I1 -> true
  | Types.Vector (s, _) -> Types.is_int s
  | Types.Scalar _ -> false

let oty (o : operand) = operand_ty None o

(* Link-time address constants are compatible with any pointer-element
   position, scalar or vector. *)
let compat (expected : Types.t) (o : operand) =
  match o with
  | Glob _ | Fref _ -> Types.elem expected = Types.Ptr
  | _ -> Types.equal expected (oty o)

let check_op ctx what expected o =
  if not (compat expected o) then
    err ctx "%s: expected %s, got %s" what (Types.to_string expected)
      (Types.to_string (oty o))

let check_same ctx what a b =
  if not (Types.equal a b) then
    err ctx "%s: type mismatch %s vs %s" what (Types.to_string a) (Types.to_string b)

(* Common type of two operands where address constants defer to the other
   side. *)
let join_ty a b =
  match (a, b) with
  | (Glob _ | Fref _), o when not (match o with Glob _ | Fref _ -> true | _ -> false) ->
      oty o
  | o, _ -> oty o

let is_bitwise = function And | Or | Xor -> true | _ -> false

let check_cast ctx (r : reg) kind (o : operand) =
  let from_e = Types.elem (oty o) and to_e = Types.elem r.rty in
  let fb = Types.bits from_e and tb = Types.bits to_e in
  let ok =
    match kind with
    | Trunc -> Types.is_int from_e && Types.is_int to_e && tb < fb
    | Zext | Sext -> Types.is_int from_e && Types.is_int to_e && tb > fb
    | Fptosi -> Types.is_float from_e && Types.is_int to_e
    | Sitofp -> Types.is_int from_e && Types.is_float to_e
    | Fpext -> from_e = Types.F32 && to_e = Types.F64
    | Fptrunc -> from_e = Types.F64 && to_e = Types.F32
    | Bitcast -> fb = tb
  in
  if not ok then
    err ctx "invalid %s from %s to %s" (Printer.string_of_cast kind)
      (Types.to_string (oty o)) (Types.to_string r.rty)

let check_instr ctx (i : t) =
  (match i with
  | Binop (r, op, a, b) ->
      check_op ctx "binop lhs" r.rty a;
      check_op ctx "binop rhs" r.rty b;
      (* bitwise ops are legal on float vectors (vxorps & co., used by the
         shuffle-xor checks); arithmetic ones are integer-only *)
      if (not (is_int_ty r.rty)) && not (is_bitwise op) then
        err ctx "binop on non-integer %s" (Types.to_string r.rty)
  | Fbinop (r, _, a, b) ->
      check_op ctx "fbinop lhs" r.rty a;
      check_op ctx "fbinop rhs" r.rty b;
      if not (is_float_ty r.rty) then err ctx "fbinop on non-float %s" (Types.to_string r.rty)
  | Icmp (r, _, a, b) ->
      let t = join_ty a b in
      check_op ctx "icmp lhs" t a;
      check_op ctx "icmp rhs" t b;
      if not (is_int_ty t) then err ctx "icmp on non-integer";
      check_same ctx "icmp result" r.rty (mask_ty_of t)
  | Fcmp (r, _, a, b) ->
      let t = join_ty a b in
      check_op ctx "fcmp lhs" t a;
      check_op ctx "fcmp rhs" t b;
      if not (is_float_ty t) then err ctx "fcmp on non-float";
      check_same ctx "fcmp result" r.rty (mask_ty_of t)
  | Select (r, c, a, b) ->
      check_op ctx "select lhs" r.rty a;
      check_op ctx "select rhs" r.rty b;
      if not (is_mask_ty (oty c)) then err ctx "select condition is not a mask"
  | Cast (r, k, o) -> check_cast ctx r k o
  | Mov (r, o) -> check_op ctx "mov" r.rty o
  | Load (_, a) -> check_op ctx "load address" Types.ptr a
  | Store (_, a) -> check_op ctx "store address" Types.ptr a
  | Alloca (r, n) ->
      check_same ctx "alloca" r.rty Types.ptr;
      if n <= 0 then err ctx "alloca of %d bytes" n
  | Call (r, name, args) -> (
      match find_func ctx.m name with
      | None -> ()  (* builtin: checked by the machine's builtin table *)
      | Some callee ->
          if List.length args <> List.length callee.params then
            err ctx "call @%s: arity %d, expected %d" name (List.length args)
              (List.length callee.params)
          else
            List.iter2
              (fun a p -> check_op ctx ("call @" ^ name ^ " arg") p.rty a)
              args callee.params;
          (match (r, callee.ret_ty) with
          | Some r, Some t -> check_same ctx ("call @" ^ name ^ " result") r.rty t
          | Some _, None -> err ctx "call @%s: void callee used as value" name
          | None, _ -> ()))
  | Call_ind (_, _, fp, _) -> check_op ctx "indirect callee" Types.ptr fp
  | Atomic_rmw (r, _, addr, x) ->
      check_op ctx "atomicrmw address" Types.ptr addr;
      check_op ctx "atomicrmw operand" r.rty x;
      if Types.is_vector r.rty || not (is_int_ty r.rty) then
        err ctx "atomicrmw on %s" (Types.to_string r.rty)
  | Cmpxchg (r, addr, e, d) ->
      check_op ctx "cmpxchg address" Types.ptr addr;
      check_op ctx "cmpxchg expected" r.rty e;
      check_op ctx "cmpxchg desired" r.rty d
  | Extractlane (r, v, l) -> (
      match oty v with
      | Types.Vector (s, n) ->
          if l < 0 || l >= n then err ctx "extractlane %d out of %d lanes" l n;
          check_same ctx "extractlane result" r.rty (Types.Scalar s)
      | t -> err ctx "extractlane from non-vector %s" (Types.to_string t))
  | Insertlane (r, v, l, s) -> (
      check_op ctx "insertlane vector" r.rty v;
      match r.rty with
      | Types.Vector (e, n) ->
          if l < 0 || l >= n then err ctx "insertlane %d out of %d lanes" l n;
          check_op ctx "insertlane scalar" (Types.Scalar e) s
      | t -> err ctx "insertlane into non-vector %s" (Types.to_string t))
  | Broadcast (r, s) -> (
      match r.rty with
      | Types.Vector (e, _) -> check_op ctx "broadcast" (Types.Scalar e) s
      | t -> err ctx "broadcast into non-vector %s" (Types.to_string t))
  | Shuffle (r, v, perm) -> (
      check_op ctx "shuffle" r.rty v;
      match r.rty with
      | Types.Vector (_, n) ->
          if Array.length perm <> n then
            err ctx "shuffle mask has %d entries, want %d" (Array.length perm) n;
          Array.iter
            (fun p -> if p < 0 || p >= n then err ctx "shuffle index %d out of range" p)
            perm
      | t -> err ctx "shuffle of non-vector %s" (Types.to_string t))
  | Ptestz (r, v) ->
      check_same ctx "ptestz result" r.rty Types.i1;
      if not (Types.is_vector (oty v)) then err ctx "ptestz of non-vector"
  | Gather (r, a) -> (
      (match oty a with
      | Types.Vector (Types.Ptr, _) -> ()
      | Types.Scalar Types.Ptr when (match a with Glob _ | Fref _ -> true | _ -> false) -> ()
      | t -> err ctx "gather addresses have type %s" (Types.to_string t));
      if not (Types.is_vector r.rty) then err ctx "gather into non-vector")
  | Scatter (v, a) ->
      (match oty a with
      | Types.Vector (Types.Ptr, _) -> ()
      | Types.Scalar Types.Ptr when (match a with Glob _ | Fref _ -> true | _ -> false) -> ()
      | t -> err ctx "scatter addresses have type %s" (Types.to_string t));
      if not (Types.is_vector (oty v)) then err ctx "scatter of non-vector");
  List.iter
    (function
      | Reg r when r.rid >= ctx.f.next_reg ->
          err ctx "operand %s outside register space" (Printer.string_of_reg r)
      | _ -> ())
    (operands i);
  match dest i with
  | Some r when r.rid >= ctx.f.next_reg ->
      err ctx "destination %s outside register space" (Printer.string_of_reg r)
  | _ -> ()

let check_term ctx (t : terminator) =
  (match t with
  | Ret o -> (
      match (o, ctx.f.ret_ty) with
      | None, None -> ()
      | Some o, Some t -> check_op ctx "return value" t o
      | Some _, None -> err ctx "returning a value from a void function"
      | None, Some _ -> err ctx "missing return value")
  | Br _ | Unreachable -> ()
  | Cond_br (c, _, _) -> check_op ctx "branch condition" Types.i1 c
  | Vbr (m, _, _, _) | Vbr_unchecked (m, _, _) ->
      if not (Types.is_vector (oty m) && is_int_ty (oty m)) then
        err ctx "vbr mask has type %s" (Types.to_string (oty m)));
  List.iter
    (fun l ->
      if not (List.mem_assoc l ctx.f.blocks) then err ctx "branch to unknown block %%%s" l)
    (successors t)

let verify_func (m : modul) (f : func) : string list =
  let ctx = { m; f; errors = [] } in
  if f.blocks = [] then err ctx "function has no blocks";
  let labels = List.map fst f.blocks in
  let rec dup = function
    | [] -> ()
    | l :: rest ->
        if List.mem l rest then err ctx "duplicate block label %%%s" l;
        dup rest
  in
  dup labels;
  List.iter
    (fun (_, b) ->
      List.iter (check_instr ctx) b.instrs;
      check_term ctx b.term)
    f.blocks;
  (* definite assignment: catches passes that leave a path reading an
     uninitialized register *)
  if ctx.errors = [] then ctx.errors <- List.rev_append (Dataflow.verify_defs f) ctx.errors;
  List.rev ctx.errors

let verify (m : modul) : (unit, string list) result =
  let errors = List.concat_map (verify_func m) m.funcs in
  if errors = [] then Ok () else Error errors

let verify_exn m =
  match verify m with Ok () -> () | Error es -> raise (Ill_formed es)
