(** Types of the ELZAR intermediate representation.

    The IR mirrors the fragment of LLVM that the original ELZAR pass
    manipulates: fixed-width integers, single/double floats, pointers, and
    fixed-length vectors of those ([<n x ty>] in LLVM syntax).  [I1] is the
    boolean type produced by comparisons; [Ptr] is a 64-bit byte address into
    the simulated memory. *)

type scalar =
  | I1
  | I8
  | I16
  | I32
  | I64
  | F32
  | F64
  | Ptr

type t =
  | Scalar of scalar
  | Vector of scalar * int  (** element type and lane count *)

let i1 = Scalar I1
let i8 = Scalar I8
let i16 = Scalar I16
let i32 = Scalar I32
let i64 = Scalar I64
let f32 = Scalar F32
let f64 = Scalar F64
let ptr = Scalar Ptr

(* Logical width in bits of a scalar value. *)
let bits = function
  | I1 -> 1
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 -> 64
  | F32 -> 32
  | F64 -> 64
  | Ptr -> 64

(* Storage footprint in bytes when the value lives in simulated memory. *)
let bytes = function
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 | F32 -> 4
  | I64 | F64 | Ptr -> 8

let is_float = function F32 | F64 -> true | I1 | I8 | I16 | I32 | I64 | Ptr -> false
let is_int = function I1 | I8 | I16 | I32 | I64 | Ptr -> true | F32 | F64 -> false

(* The integer scalar carrying the comparison mask for a given element type:
   AVX compares produce full-width all-ones/all-zeros lanes. *)
let mask_elem = function
  | F32 -> I32
  | F64 | Ptr -> I64
  | (I1 | I8 | I16 | I32 | I64) as s -> s

let elem = function Scalar s -> s | Vector (s, _) -> s
let lanes = function Scalar _ -> 1 | Vector (_, n) -> n
let is_vector = function Vector _ -> true | Scalar _ -> false

(* Number of lanes a 256-bit YMM register holds for an element type.  [I1]
   values are sign-extended to 64 bits inside vectors (the `sext <n x i1> to
   <n x i64>` boilerplate of the paper's Fig. 10), so they count as 64-bit. *)
let ymm_lanes s =
  match s with
  | I1 -> 4
  | I8 -> 32
  | I16 -> 16
  | I32 | F32 -> 8
  | I64 | F64 | Ptr -> 4

(* The YMM vector type ELZAR replicates a scalar into (paper §III-D,
   option 3: fill the whole register). *)
let ymm_of s = match s with I1 -> Vector (I64, 4) | s -> Vector (s, ymm_lanes s)

let equal (a : t) (b : t) = a = b

let scalar_to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "f32"
  | F64 -> "f64"
  | Ptr -> "ptr"

let to_string = function
  | Scalar s -> scalar_to_string s
  | Vector (s, n) -> Printf.sprintf "<%d x %s>" n (scalar_to_string s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
