(** Textual rendering of IR modules in an LLVM-flavoured syntax; used by
    the examples (native vs. SWIFT-R vs. ELZAR code, as in the paper's
    Figs. 5 and 10), error messages and tests. *)

val string_of_binop : Instr.binop -> string
val string_of_fbinop : Instr.fbinop -> string
val string_of_icmp : Instr.icmp -> string
val string_of_fcmp : Instr.fcmp -> string
val string_of_cast : Instr.cast -> string
val string_of_rmw : Instr.rmw -> string
val string_of_reg : Instr.reg -> string
val string_of_operand : Instr.operand -> string
val string_of_instr : Instr.t -> string
val string_of_terminator : Instr.terminator -> string
val pp_func : Format.formatter -> Instr.func -> unit
val pp_modul : Format.formatter -> Instr.modul -> unit
val func_to_string : Instr.func -> string
val modul_to_string : Instr.modul -> string
