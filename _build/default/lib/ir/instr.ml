(** Instructions, basic blocks, functions and modules of the ELZAR IR.

    The IR is a register-transfer form rather than SSA: virtual registers may
    be assigned more than once, which keeps loops free of phi nodes and lets
    the hardening passes rewrite programs with a one-to-one register map.
    Control flow is structured into named basic blocks ending in a single
    terminator. *)

type reg = { rid : int; rname : string; rty : Types.t }

type operand =
  | Reg of reg
  | Imm of Types.t * int64  (** integer/pointer immediate; splat if vector *)
  | Fimm of Types.t * float  (** float immediate; splat if vector *)
  | Glob of string  (** address of a named global buffer (type ptr) *)
  | Fref of string  (** address of a named function (type ptr) *)

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Udiv
  | Srem
  | Urem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type fbinop = Fadd | Fsub | Fmul | Fdiv

type icmp = Ieq | Ine | Islt | Isle | Isgt | Isge | Iult | Iule | Iugt | Iuge
type fcmp = Foeq | Fone | Folt | Fole | Fogt | Foge

type cast =
  | Trunc
  | Zext
  | Sext
  | Fptosi
  | Sitofp
  | Fpext
  | Fptrunc
  | Bitcast

type rmw = Rmw_add | Rmw_sub | Rmw_xchg | Rmw_and | Rmw_or

type t =
  | Binop of reg * binop * operand * operand
  | Fbinop of reg * fbinop * operand * operand
  | Icmp of reg * icmp * operand * operand
  | Fcmp of reg * fcmp * operand * operand
  | Select of reg * operand * operand * operand  (** cond, if-true, if-false *)
  | Cast of reg * cast * operand  (** target type is [reg.rty] *)
  | Mov of reg * operand  (** register copy / immediate materialization *)
  | Load of reg * operand  (** loads a [reg.rty] from a scalar address *)
  | Store of operand * operand  (** value, address *)
  | Alloca of reg * int  (** stack allocation of n bytes; yields ptr *)
  | Call of reg option * string * operand list
  | Call_ind of reg option * Types.t option * operand * operand list
      (** indirect call through a function pointer; snd is return type *)
  | Atomic_rmw of reg * rmw * operand * operand  (** returns old value *)
  | Cmpxchg of reg * operand * operand * operand
      (** addr, expected, desired; returns old value *)
  | Extractlane of reg * operand * int
  | Insertlane of reg * operand * int * operand  (** vec, lane, scalar *)
  | Broadcast of reg * operand  (** scalar replicated into all lanes *)
  | Shuffle of reg * operand * int array  (** lane permutation of one vector *)
  | Ptestz of reg * operand  (** i1 := all lanes of the vector are zero *)
  | Gather of reg * operand
      (** FPGA-checked gather (paper §VII): majority-votes the address
          lanes, performs one load, replicates the result *)
  | Scatter of operand * operand
      (** FPGA-checked scatter: majority-votes value and address lanes,
          performs one store *)

type terminator =
  | Ret of operand option
  | Br of string
  | Cond_br of operand * string * string  (** i1 cond, if-true, if-false *)
  | Vbr of operand * string * string * string
      (** mask vector; all-true target, all-false target, mixed target
          (fault detected -> recovery).  Lowers to [vptest]+[je]+[ja]. *)
  | Vbr_unchecked of operand * string * string
      (** AVX branch without the mixed-outcome check (the "no branch
          checks" configuration of Fig. 12); lowers to [vptest]+[jcc] *)
  | Unreachable

type block = { mutable instrs : t list; mutable term : terminator }

(* Loop metadata recorded by the builder's [for_] combinator; consumed by the
   auto-vectorizer. *)
type loop_info = {
  l_header : string;
  l_body : string;
  l_latch : string;
  l_exit : string;
  l_ivar : reg;  (** canonical induction variable: starts at l_lo, step +1 *)
  l_lo : operand;
  l_hi : operand;  (** exclusive upper bound, loop-invariant *)
}

type func = {
  fname : string;
  params : reg list;
  ret_ty : Types.t option;
  mutable blocks : (string * block) list;  (** in layout order; head = entry *)
  mutable next_reg : int;
  mutable loops : loop_info list;
  hardened : bool;  (** false = third-party/library code left unprotected *)
}

type global = { gname : string; gsize : int; ginit : string option }

type modul = {
  mutable funcs : func list;
  mutable globals : global list;
}

let operand_ty (m : modul option) (o : operand) : Types.t =
  ignore m;
  match o with
  | Reg r -> r.rty
  | Imm (t, _) -> t
  | Fimm (t, _) -> t
  | Glob _ | Fref _ -> Types.ptr

(* Destination register of an instruction, if any. *)
let dest = function
  | Binop (r, _, _, _)
  | Fbinop (r, _, _, _)
  | Icmp (r, _, _, _)
  | Fcmp (r, _, _, _)
  | Select (r, _, _, _)
  | Cast (r, _, _)
  | Mov (r, _)
  | Load (r, _)
  | Alloca (r, _)
  | Atomic_rmw (r, _, _, _)
  | Cmpxchg (r, _, _, _)
  | Extractlane (r, _, _)
  | Insertlane (r, _, _, _)
  | Broadcast (r, _)
  | Shuffle (r, _, _)
  | Ptestz (r, _)
  | Gather (r, _) ->
      Some r
  | Call (r, _, _) | Call_ind (r, _, _, _) -> r
  | Store _ | Scatter _ -> None

let operands = function
  | Binop (_, _, a, b)
  | Fbinop (_, _, a, b)
  | Icmp (_, _, a, b)
  | Fcmp (_, _, a, b)
  | Atomic_rmw (_, _, a, b) ->
      [ a; b ]
  | Select (_, c, a, b) | Cmpxchg (_, c, a, b) -> [ c; a; b ]
  | Cast (_, _, a)
  | Mov (_, a)
  | Load (_, a)
  | Broadcast (_, a)
  | Shuffle (_, a, _)
  | Ptestz (_, a)
  | Gather (_, a)
  | Extractlane (_, a, _) ->
      [ a ]
  | Insertlane (_, a, _, b) | Store (a, b) | Scatter (a, b) -> [ a; b ]
  | Call (_, _, args) -> args
  | Call_ind (_, _, f, args) -> f :: args
  | Alloca _ -> []

let term_operands = function
  | Ret (Some o) -> [ o ]
  | Ret None | Br _ | Unreachable -> []
  | Cond_br (o, _, _) | Vbr (o, _, _, _) | Vbr_unchecked (o, _, _) -> [ o ]

let successors = function
  | Ret _ | Unreachable -> []
  | Br l -> [ l ]
  | Cond_br (_, a, b) | Vbr_unchecked (_, a, b) -> [ a; b ]
  | Vbr (_, a, b, c) -> [ a; b; c ]

(* Instruction classification used by the hardening passes (paper §III-B):
   synchronization instructions (memory and call-like operations, plus all
   terminators) are not replicated; computational ones are. *)
type klass = Computational | Memory | Callish

let classify = function
  | Binop _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Mov _
  | Extractlane _ | Insertlane _ | Broadcast _ | Shuffle _ | Ptestz _ ->
      Computational
  | Load _ | Store _ | Gather _ | Scatter _ | Alloca _ -> Memory
  | Atomic_rmw _ | Cmpxchg _ | Call _ | Call_ind _ -> Callish

let find_func (m : modul) name = List.find_opt (fun f -> f.fname = name) m.funcs

let find_block (f : func) label =
  match List.assoc_opt label f.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "find_block: no %%%s in @%s" label f.fname)

let entry_label (f : func) =
  match f.blocks with
  | (l, _) :: _ -> l
  | [] -> invalid_arg (Printf.sprintf "entry_label: @%s has no blocks" f.fname)
