(** Parser for the textual IR emitted by {!Printer}.

    [parse (Printer.modul_to_string m)] reconstructs [m] up to loop
    metadata (which is analysis state, not program text) — the test suite
    holds the round trip as a property.  Enables file-based IR tooling:
    dumping a hardened module, editing it, and re-running it. *)

open Instr

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

(* ---- lexical helpers ---- *)

let strip s = String.trim s

let split_top_commas (s : string) : string list =
  (* splits on commas not nested in (), [] or <> *)
  let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' | '[' | '<' ->
          incr depth;
          Buffer.add_char buf c
      | ')' | ']' | '>' ->
          decr depth;
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map strip !parts

(* first whitespace-separated token and the rest *)
let token (s : string) : string * string =
  let s = strip s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, strip (String.sub s (i + 1) (String.length s - i - 1)))

let scalar_of_string ln = function
  | "i1" -> Types.I1
  | "i8" -> Types.I8
  | "i16" -> Types.I16
  | "i32" -> Types.I32
  | "i64" -> Types.I64
  | "f32" -> Types.F32
  | "f64" -> Types.F64
  | "ptr" -> Types.Ptr
  | s -> fail ln "unknown scalar type %S" s

(* "<4 x i64>" or "i64"; returns the type and the rest of the string *)
let parse_ty ln (s : string) : Types.t * string =
  let s = strip s in
  if String.length s > 0 && s.[0] = '<' then begin
    match String.index_opt s '>' with
    | None -> fail ln "unterminated vector type in %S" s
    | Some close ->
        let inner = String.sub s 1 (close - 1) in
        let rest = strip (String.sub s (close + 1) (String.length s - close - 1)) in
        (match String.split_on_char 'x' inner with
        | [ n; elem ] ->
            let n = int_of_string (strip n) in
            (Types.Vector (scalar_of_string ln (strip elem), n), rest)
        | _ -> fail ln "malformed vector type %S" s)
  end
  else
    let t, rest = token s in
    (Types.Scalar (scalar_of_string ln t), rest)

(* ---- operand parsing (register types resolved through [regs]) ---- *)

type ctx = {
  regs : (int, reg) Hashtbl.t;  (** rid -> register *)
  mutable line : int;
}

(* "%name.id" -> reg *)
let parse_reg ctx (s : string) : reg =
  let s = strip s in
  if String.length s < 2 || s.[0] <> '%' then fail ctx.line "expected register, got %S" s;
  match String.rindex_opt s '.' with
  | None -> fail ctx.line "malformed register %S" s
  | Some dot -> (
      let rid = int_of_string (String.sub s (dot + 1) (String.length s - dot - 1)) in
      match Hashtbl.find_opt ctx.regs rid with
      | Some r -> r
      | None -> fail ctx.line "use of undefined register %S" s)

let parse_operand ctx (s : string) : operand =
  let s = strip s in
  if s = "" then fail ctx.line "empty operand";
  match s.[0] with
  | '%' -> Reg (parse_reg ctx s)
  | '@' ->
      let name = String.sub s 1 (String.length s - 1) in
      if String.length name > 3 && String.sub name 0 3 = "fn:" then
        Fref (String.sub name 3 (String.length name - 3))
      else Glob name
  | _ ->
      let ty, rest = parse_ty ctx.line s in
      if Types.is_float (Types.elem ty) then Fimm (ty, float_of_string rest)
      else Imm (ty, Int64.of_string rest)

(* declares a destination register, checking for retyping conflicts *)
let declare_reg ctx (s : string) (rty : Types.t) : reg =
  let s = strip s in
  if String.length s < 2 || s.[0] <> '%' then fail ctx.line "expected register, got %S" s;
  match String.rindex_opt s '.' with
  | None -> fail ctx.line "malformed register %S" s
  | Some dot ->
      let rid = int_of_string (String.sub s (dot + 1) (String.length s - dot - 1)) in
      let rname = String.sub s 1 (dot - 1) in
      let r = { rid; rname; rty } in
      (match Hashtbl.find_opt ctx.regs rid with
      | Some prev when not (Types.equal prev.rty rty) ->
          fail ctx.line "register %S redefined at a different type" s
      | _ -> ());
      Hashtbl.replace ctx.regs rid r;
      r

(* ---- instruction parsing ---- *)

let binop_of_string = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "sdiv" -> Some Sdiv
  | "udiv" -> Some Udiv
  | "srem" -> Some Srem
  | "urem" -> Some Urem
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "shl" -> Some Shl
  | "lshr" -> Some Lshr
  | "ashr" -> Some Ashr
  | _ -> None

let fbinop_of_string = function
  | "fadd" -> Some Fadd
  | "fsub" -> Some Fsub
  | "fmul" -> Some Fmul
  | "fdiv" -> Some Fdiv
  | _ -> None

let icmp_of_string ln = function
  | "eq" -> Ieq
  | "ne" -> Ine
  | "slt" -> Islt
  | "sle" -> Isle
  | "sgt" -> Isgt
  | "sge" -> Isge
  | "ult" -> Iult
  | "ule" -> Iule
  | "ugt" -> Iugt
  | "uge" -> Iuge
  | s -> fail ln "unknown icmp predicate %S" s

let fcmp_of_string ln = function
  | "oeq" -> Foeq
  | "one" -> Fone
  | "olt" -> Folt
  | "ole" -> Fole
  | "ogt" -> Fogt
  | "oge" -> Foge
  | s -> fail ln "unknown fcmp predicate %S" s

let cast_of_string = function
  | "trunc" -> Some Trunc
  | "zext" -> Some Zext
  | "sext" -> Some Sext
  | "fptosi" -> Some Fptosi
  | "sitofp" -> Some Sitofp
  | "fpext" -> Some Fpext
  | "fptrunc" -> Some Fptrunc
  | "bitcast" -> Some Bitcast
  | _ -> None

let rmw_of_string ln = function
  | "add" -> Rmw_add
  | "sub" -> Rmw_sub
  | "xchg" -> Rmw_xchg
  | "and" -> Rmw_and
  | "or" -> Rmw_or
  | s -> fail ln "unknown atomicrmw op %S" s

(* "@f(args)" -> name, arg operands *)
let parse_call_tail ctx (s : string) : string * operand list =
  let s = strip s in
  match String.index_opt s '(' with
  | None -> fail ctx.line "malformed call %S" s
  | Some lp ->
      if s.[String.length s - 1] <> ')' then fail ctx.line "malformed call %S" s;
      let callee = String.sub s 0 lp in
      let inner = String.sub s (lp + 1) (String.length s - lp - 2) in
      let args = if strip inner = "" then [] else List.map (parse_operand ctx) (split_top_commas inner) in
      if String.length callee < 2 || callee.[0] <> '@' then
        fail ctx.line "malformed callee %S" callee;
      (String.sub callee 1 (String.length callee - 1), args)

let parse_shuffle_mask ctx (s : string) : int array =
  let s = strip s in
  if String.length s < 2 || s.[0] <> '[' || s.[String.length s - 1] <> ']' then
    fail ctx.line "malformed shuffle mask %S" s;
  String.sub s 1 (String.length s - 2)
  |> String.split_on_char ','
  |> List.map (fun x -> int_of_string (strip x))
  |> Array.of_list

(* one instruction body, with optional destination already split off *)
let parse_rhs ctx (dest : (string * Types.t) option) (s : string) : t =
  let op, rest = token s in
  let dreg () =
    match dest with
    | Some (name, ty) -> declare_reg ctx name ty
    | None -> fail ctx.line "instruction %S requires a destination" op
  in
  let ops () = List.map (parse_operand ctx) (split_top_commas rest) in
  match (binop_of_string op, fbinop_of_string op, cast_of_string op) with
  | Some bop, _, _ -> (
      match ops () with
      | [ a; b ] -> Binop (dreg (), bop, a, b)
      | _ -> fail ctx.line "binop arity")
  | _, Some fop, _ -> (
      match ops () with
      | [ a; b ] -> Fbinop (dreg (), fop, a, b)
      | _ -> fail ctx.line "fbinop arity")
  | _, _, Some c -> Cast (dreg (), c, parse_operand ctx rest)
  | None, None, None -> (
      match op with
      | "icmp" ->
          let cc, rest = token rest in
          (match List.map (parse_operand ctx) (split_top_commas rest) with
          | [ a; b ] -> Icmp (dreg (), icmp_of_string ctx.line cc, a, b)
          | _ -> fail ctx.line "icmp arity")
      | "fcmp" ->
          let cc, rest = token rest in
          (match List.map (parse_operand ctx) (split_top_commas rest) with
          | [ a; b ] -> Fcmp (dreg (), fcmp_of_string ctx.line cc, a, b)
          | _ -> fail ctx.line "fcmp arity")
      | "select" -> (
          match ops () with
          | [ c; a; b ] -> Select (dreg (), c, a, b)
          | _ -> fail ctx.line "select arity")
      | "mov" -> Mov (dreg (), parse_operand ctx rest)
      | "load" -> Load (dreg (), parse_operand ctx rest)
      | "store" -> (
          match ops () with
          | [ v; a ] -> Store (v, a)
          | _ -> fail ctx.line "store arity")
      | "alloca" -> Alloca (dreg (), int_of_string (strip rest))
      | "call" ->
          let callee, args = parse_call_tail ctx rest in
          (match dest with
          | Some (name, ty) -> Call (Some (declare_reg ctx name ty), callee, args)
          | None -> Call (None, callee, args))
      | "call_ind" -> (
          (* "%fp.3(%a.1, ...)" *)
          match String.index_opt rest '(' with
          | None -> fail ctx.line "malformed call_ind %S" rest
          | Some lp ->
              let fp = parse_operand ctx (String.sub rest 0 lp) in
              let inner = String.sub rest (lp + 1) (String.length rest - lp - 2) in
              let args =
                if strip inner = "" then []
                else List.map (parse_operand ctx) (split_top_commas inner)
              in
              (match dest with
              | Some (name, ty) ->
                  Call_ind (Some (declare_reg ctx name ty), Some ty, fp, args)
              | None -> Call_ind (None, None, fp, args)))
      | "atomicrmw" ->
          let rop, rest = token rest in
          (match List.map (parse_operand ctx) (split_top_commas rest) with
          | [ a; x ] -> Atomic_rmw (dreg (), rmw_of_string ctx.line rop, a, x)
          | _ -> fail ctx.line "atomicrmw arity")
      | "cmpxchg" -> (
          match ops () with
          | [ a; e; d ] -> Cmpxchg (dreg (), a, e, d)
          | _ -> fail ctx.line "cmpxchg arity")
      | "extractlane" -> (
          match split_top_commas rest with
          | [ v; l ] -> Extractlane (dreg (), parse_operand ctx v, int_of_string (strip l))
          | _ -> fail ctx.line "extractlane arity")
      | "insertlane" -> (
          match split_top_commas rest with
          | [ v; l; s ] ->
              Insertlane
                (dreg (), parse_operand ctx v, int_of_string (strip l), parse_operand ctx s)
          | _ -> fail ctx.line "insertlane arity")
      | "broadcast" -> Broadcast (dreg (), parse_operand ctx rest)
      | "shuffle" -> (
          match split_top_commas rest with
          | [ v; mask ] -> Shuffle (dreg (), parse_operand ctx v, parse_shuffle_mask ctx mask)
          | _ -> fail ctx.line "shuffle arity")
      | "ptestz" -> Ptestz (dreg (), parse_operand ctx rest)
      | "gather" -> Gather (dreg (), parse_operand ctx rest)
      | "scatter" -> (
          match ops () with
          | [ v; a ] -> Scatter (v, a)
          | _ -> fail ctx.line "scatter arity")
      | op -> fail ctx.line "unknown instruction %S" op)

let parse_label ctx (s : string) : string =
  let s = strip s in
  if String.length s < 2 || s.[0] <> '%' then fail ctx.line "expected block label, got %S" s
  else String.sub s 1 (String.length s - 1)

let parse_terminator ctx (s : string) : terminator =
  let op, rest = token s in
  match op with
  | "ret" -> if strip rest = "void" then Ret None else Ret (Some (parse_operand ctx rest))
  | "unreachable" -> Unreachable
  | "br" -> (
      match split_top_commas rest with
      | [ l ] -> Br (parse_label ctx l)
      | [ c; t; f ] -> Cond_br (parse_operand ctx c, parse_label ctx t, parse_label ctx f)
      | _ -> fail ctx.line "malformed br %S" rest)
  | "vbr" -> (
      (* "OP, %t, %f, recover %r" *)
      match split_top_commas rest with
      | [ m; t; f; r ] ->
          let rword, rlbl = token r in
          if rword <> "recover" then fail ctx.line "expected 'recover' in vbr";
          Vbr (parse_operand ctx m, parse_label ctx t, parse_label ctx f, parse_label ctx rlbl)
      | _ -> fail ctx.line "malformed vbr %S" rest)
  | "vbr.nocheck" -> (
      match split_top_commas rest with
      | [ m; t; f ] -> Vbr_unchecked (parse_operand ctx m, parse_label ctx t, parse_label ctx f)
      | _ -> fail ctx.line "malformed vbr.nocheck %S" rest)
  | op -> fail ctx.line "unknown terminator %S" op

let is_terminator_line (s : string) =
  let op, _ = token s in
  List.mem op [ "ret"; "br"; "vbr"; "vbr.nocheck"; "unreachable" ]

(* instruction or terminator line; dispatches on "%dst = TY rhs" *)
let parse_instr_line ctx (s : string) : [ `Instr of t | `Term of terminator ] =
  if is_terminator_line s then `Term (parse_terminator ctx s)
  else
    match String.index_opt s '=' with
    | Some eq
      when String.length s > 0 && s.[0] = '%'
           && (* not a store of "%x, ..." — dests are followed by " = " *)
           eq > 0 && s.[eq - 1] = ' ' ->
        let dst = strip (String.sub s 0 eq) in
        let rhs = strip (String.sub s (eq + 1) (String.length s - eq - 1)) in
        let ty, rhs = parse_ty ctx.line rhs in
        `Instr (parse_rhs ctx (Some (dst, ty)) rhs)
    | _ -> `Instr (parse_rhs ctx None s)

(* ---- top level ---- *)

let unhex ln (s : string) : string =
  if String.length s mod 2 <> 0 then fail ln "odd-length hex initializer";
  String.init (String.length s / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (i * 2) 2)))

(* "define RET @name(TY %p.0, ...) [unhardened] {" *)
let parse_define ctx (s : string) : func =
  let rest = strip s in
  let ret, rest =
    let w, r = token rest in
    if w = "void" then (None, r)
    else
      let ty, r' = parse_ty ctx.line (w ^ " " ^ r) in
      (Some ty, r')
  in
  match String.index_opt rest '(' with
  | None -> fail ctx.line "malformed define %S" s
  | Some lp ->
      let name = strip (String.sub rest 0 lp) in
      let name =
        if String.length name > 1 && name.[0] = '@' then String.sub name 1 (String.length name - 1)
        else fail ctx.line "malformed function name %S" name
      in
      let rp = String.rindex rest ')' in
      let inner = String.sub rest (lp + 1) (rp - lp - 1) in
      let tail = strip (String.sub rest (rp + 1) (String.length rest - rp - 1)) in
      let hardened =
        match token tail with
        | "unhardened", _ -> false
        | "{", _ | "", _ -> true
        | w, _ -> fail ctx.line "unexpected %S after define" w
      in
      let params =
        if strip inner = "" then []
        else
          List.map
            (fun p ->
              let ty, rest = parse_ty ctx.line p in
              let r = declare_reg ctx (strip rest) ty in
              r)
            (split_top_commas inner)
      in
      {
        fname = name;
        params;
        ret_ty = ret;
        blocks = [];
        next_reg = 0;
        loops = [];
        hardened;
      }

let parse (text : string) : modul =
  let lines = String.split_on_char '\n' text in
  let m = { funcs = []; globals = [] } in
  let ctx = { regs = Hashtbl.create 64; line = 0 } in
  let cur_func : func option ref = ref None in
  let cur_label = ref "" in
  let cur_instrs : t list ref = ref [] in
  let cur_blocks : (string * block) list ref = ref [] in
  let flush_block term =
    if !cur_label <> "" then begin
      cur_blocks := (!cur_label, { instrs = List.rev !cur_instrs; term }) :: !cur_blocks;
      cur_instrs := [];
      cur_label := ""
    end
  in
  (* pre-pass: collect destination registers of the function being read is
     unnecessary — the printer's layout defines registers before use except
     for loop latches, so we pre-scan each function's lines instead *)
  let prescan (body : (int * string) list) =
    List.iter
      (fun (ln, line) ->
        match String.index_opt line '=' with
        | Some eq when String.length line > 0 && line.[0] = '%' && eq > 0 && line.[eq - 1] = ' '
          -> (
            let dst = strip (String.sub line 0 eq) in
            let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
            match parse_ty ln rhs with
            | ty, _ -> ignore (declare_reg { ctx with line = ln } dst ty)
            | exception _ -> ())
        | _ -> ())
      body
  in
  let numbered = List.mapi (fun i l -> (i + 1, strip l)) lines in
  List.iter
    (fun (ln, line) ->
      ctx.line <- ln;
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "global " then begin
        let rest = strip (String.sub line 7 (String.length line - 7)) in
        match String.index_opt rest '[' with
        | None -> fail ln "malformed global %S" line
        | Some lb ->
            let name = String.sub rest 1 (lb - 1) in
            let rb = String.index rest ']' in
            let size = int_of_string (String.sub rest (lb + 1) (rb - lb - 1)) in
            let tail = strip (String.sub rest (rb + 1) (String.length rest - rb - 1)) in
            let ginit =
              if tail = "" then None
              else
                match token tail with
                | "=", hex -> Some (unhex ln (strip hex))
                | _ -> fail ln "malformed global initializer %S" tail
            in
            m.globals <- m.globals @ [ { gname = name; gsize = size; ginit } ]
      end
      else if String.length line >= 7 && String.sub line 0 7 = "define " then begin
        Hashtbl.reset ctx.regs;
        (* prescan this function's body for destination registers *)
        let body =
          let after = List.filter (fun (l2, _) -> l2 > ln) numbered in
          let rec take acc = function
            | [] -> List.rev acc
            | (_, "}") :: _ -> List.rev acc
            | x :: rest -> take (x :: acc) rest
          in
          take [] after
        in
        let f = parse_define ctx (String.sub line 7 (String.length line - 7)) in
        prescan body;
        cur_func := Some f;
        cur_blocks := [];
        cur_instrs := [];
        cur_label := ""
      end
      else if line = "}" then begin
        match !cur_func with
        | None -> fail ln "stray '}'"
        | Some f ->
            flush_block Unreachable;
            f.blocks <- List.rev !cur_blocks;
            (* next_reg = 1 + max rid seen *)
            let mx = Hashtbl.fold (fun rid _ acc -> max rid acc) ctx.regs (-1) in
            f.next_reg <- mx + 1;
            m.funcs <- m.funcs @ [ f ];
            cur_func := None
      end
      else if String.length line > 1 && line.[String.length line - 1] = ':' then begin
        (* a new block label; the previous block must have ended with a
           terminator and been flushed *)
        if !cur_label <> "" then fail ln "block %S has no terminator" !cur_label;
        cur_label := String.sub line 0 (String.length line - 1)
      end
      else begin
        if !cur_func = None then fail ln "instruction outside function: %S" line;
        if !cur_label = "" then fail ln "instruction outside block: %S" line;
        match parse_instr_line ctx line with
        | `Instr i -> cur_instrs := i :: !cur_instrs
        | `Term t -> flush_block t
      end)
    numbered;
  m

let parse_file (path : string) : modul =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse s
