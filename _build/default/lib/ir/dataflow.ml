(** CFG dataflow analyses over the non-SSA IR.

    [verify_defs] is a definite-assignment check (every register read must
    be written on all paths from entry), used by the verifier to catch
    transformation-pass bugs.  [liveness] and [max_pressure] compute
    classic backward liveness and the peak number of simultaneously live
    registers — the register-pressure cost that makes real SWIFT-R spill
    (and that an infinite-register simulator otherwise hides). *)

open Instr

module Iset = Set.Make (Int)

type cfg = {
  labels : string array;
  index : (string, int) Hashtbl.t;
  preds : int list array;
  succs : int list array;
}

let build_cfg (f : func) : cfg =
  let labels = Array.of_list (List.map fst f.blocks) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace index l i) labels;
  let n = Array.length labels in
  let preds = Array.make n [] and succs = Array.make n [] in
  List.iteri
    (fun i (_, (b : block)) ->
      List.iter
        (fun l ->
          match Hashtbl.find_opt index l with
          | Some j ->
              succs.(i) <- j :: succs.(i);
              preds.(j) <- i :: preds.(j)
          | None -> ())
        (successors b.term))
    f.blocks;
  { labels; index; preds; succs }

let uses_of_instr (i : t) : int list =
  List.filter_map (function Reg r -> Some r.rid | _ -> None) (operands i)

let defs_of_instr (i : t) : int list =
  match dest i with Some r -> [ r.rid ] | None -> []

let uses_of_term (t : terminator) : int list =
  List.filter_map (function Reg r -> Some r.rid | _ -> None) (term_operands t)

(* ---- definite assignment ---- *)

(* Forward may-not-be-defined analysis: defined-at-entry of a block is the
   intersection of defined-at-exit over its predecessors; unreachable
   blocks are skipped. *)
let verify_defs (f : func) : string list =
  let blocks = Array.of_list (List.map snd f.blocks) in
  let cfg = build_cfg f in
  let n = Array.length blocks in
  if n = 0 then []
  else begin
    let params = Iset.of_list (List.map (fun (r : reg) -> r.rid) f.params) in
    let gen = Array.make n Iset.empty in
    Array.iteri
      (fun i (b : block) ->
        gen.(i) <- List.fold_left (fun s instr -> List.fold_left (fun s d -> Iset.add d s) s (defs_of_instr instr)) Iset.empty b.instrs)
      blocks;
    (* reachability *)
    let reachable = Array.make n false in
    let rec visit i =
      if not reachable.(i) then begin
        reachable.(i) <- true;
        List.iter visit cfg.succs.(i)
      end
    in
    visit 0;
    (* all-defined lattice: start from "everything" and shrink *)
    let all =
      Array.fold_left (fun s g -> Iset.union s g) params gen
    in
    let entry_in = Array.make n all in
    entry_in.(0) <- params;
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iteri
        (fun i _ ->
          if reachable.(i) && i > 0 then begin
            let inter =
              match List.filter (fun p -> reachable.(p)) cfg.preds.(i) with
              | [] -> params  (* reachable only via entry? conservative *)
              | p :: rest ->
                  List.fold_left
                    (fun s q -> Iset.inter s (Iset.union entry_in.(q) gen.(q)))
                    (Iset.union entry_in.(p) gen.(p))
                    rest
            in
            if not (Iset.equal inter entry_in.(i)) then begin
              entry_in.(i) <- inter;
              changed := true
            end
          end)
        blocks
    done;
    let errors = ref [] in
    Array.iteri
      (fun i (b : block) ->
        if reachable.(i) then begin
          let defined = ref entry_in.(i) in
          List.iter
            (fun instr ->
              List.iter
                (fun u ->
                  if not (Iset.mem u !defined) then
                    errors :=
                      Printf.sprintf "@%s: block %%%s reads register #%d before any definition"
                        f.fname cfg.labels.(i) u
                      :: !errors)
                (uses_of_instr instr);
              List.iter (fun d -> defined := Iset.add d !defined) (defs_of_instr instr))
            b.instrs;
          List.iter
            (fun u ->
              if not (Iset.mem u !defined) then
                errors :=
                  Printf.sprintf "@%s: terminator of %%%s reads register #%d before any definition"
                    f.fname cfg.labels.(i) u
                  :: !errors)
            (uses_of_term b.term)
        end)
      blocks;
    List.rev !errors
  end

(* ---- liveness ---- *)

type liveness = { live_in : Iset.t array; live_out : Iset.t array }

let liveness (f : func) : liveness =
  let blocks = Array.of_list (List.map snd f.blocks) in
  let cfg = build_cfg f in
  let n = Array.length blocks in
  (* per-block use (read before any write) and def sets *)
  let use = Array.make n Iset.empty and def = Array.make n Iset.empty in
  Array.iteri
    (fun i (b : block) ->
      let u = ref Iset.empty and d = ref Iset.empty in
      List.iter
        (fun instr ->
          List.iter (fun x -> if not (Iset.mem x !d) then u := Iset.add x !u) (uses_of_instr instr);
          List.iter (fun x -> d := Iset.add x !d) (defs_of_instr instr))
        b.instrs;
      List.iter (fun x -> if not (Iset.mem x !d) then u := Iset.add x !u) (uses_of_term b.term);
      use.(i) <- !u;
      def.(i) <- !d)
    blocks;
  let live_in = Array.make n Iset.empty and live_out = Array.make n Iset.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left (fun s j -> Iset.union s live_in.(j)) Iset.empty cfg.succs.(i)
      in
      let inn = Iset.union use.(i) (Iset.diff out def.(i)) in
      if not (Iset.equal out live_out.(i)) || not (Iset.equal inn live_in.(i)) then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  { live_in; live_out }

(* Peak number of simultaneously live registers across the function: a
   proxy for register pressure (and hence for the spills an infinite-
   register machine never pays). *)
let max_pressure (f : func) : int =
  let blocks = Array.of_list (List.map snd f.blocks) in
  let lv = liveness f in
  let peak = ref 0 in
  Array.iteri
    (fun i (b : block) ->
      (* walk backwards from live-out *)
      let live = ref lv.live_out.(i) in
      peak := max !peak (Iset.cardinal !live);
      List.iter
        (fun instr ->
          List.iter (fun d -> live := Iset.remove d !live) (defs_of_instr instr);
          List.iter (fun u -> live := Iset.add u !live) (uses_of_instr instr);
          peak := max !peak (Iset.cardinal !live))
        (List.rev b.instrs))
    blocks;
  !peak
