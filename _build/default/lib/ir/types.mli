(** Types of the ELZAR intermediate representation: fixed-width integers,
    floats, pointers, and fixed-length vectors ([<n x ty>] in LLVM
    syntax). *)

type scalar =
  | I1  (** booleans, as produced by comparisons *)
  | I8
  | I16
  | I32
  | I64
  | F32
  | F64
  | Ptr  (** 64-bit byte address into simulated memory *)

type t =
  | Scalar of scalar
  | Vector of scalar * int  (** element type and lane count *)

(** {1 Shorthands} *)

val i1 : t
val i8 : t
val i16 : t
val i32 : t
val i64 : t
val f32 : t
val f64 : t
val ptr : t

(** {1 Properties} *)

(** Logical width in bits ([I1] is 1). *)
val bits : scalar -> int

(** Storage footprint in bytes when the value lives in simulated memory. *)
val bytes : scalar -> int

val is_float : scalar -> bool
val is_int : scalar -> bool

(** The integer scalar carrying a comparison mask for an element type: AVX
    compares fill lanes with all-ones/all-zeros of the element's width. *)
val mask_elem : scalar -> scalar

val elem : t -> scalar
val lanes : t -> int
val is_vector : t -> bool

(** Lanes a 256-bit YMM register holds for an element type ([I1] widens to
    64-bit mask lanes). *)
val ymm_lanes : scalar -> int

(** The YMM vector type ELZAR replicates a scalar into (paper §III-D,
    option 3: fill the whole register). *)
val ymm_of : scalar -> t

val equal : t -> t -> bool
val scalar_to_string : scalar -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
