(** Linking of IR modules: programs are combined with the IR runtime
    library before hardening, mirroring how the paper links benchmarks
    against musl. *)

exception Duplicate_symbol of string

(** Links modules into one; function and global names must be unique.
    @raise Duplicate_symbol otherwise. *)
val link : Instr.modul list -> Instr.modul

(** Names of all functions defined in the module; calls to anything else
    resolve to native builtins (the unhardened OS/pthreads/IO layer). *)
val defined_names : Instr.modul -> string list

val copy_func : Instr.func -> Instr.func

(** Deep copy, so a pass can rewrite in place without clobbering the
    caller's module. *)
val copy : Instr.modul -> Instr.modul
