(** PARSEC x264: the SAD motion-estimation kernel — for every 8x8 block of
    the current frame, search a +/-4 window in the reference frame for the
    offset minimizing the sum of absolute byte differences. *)

open Ir
open Instr

let blk = 8
let search = 2  (* +/- window *)

(* frame width/height in blocks *)
let params = function
  | Workload.Tiny -> (2, 2)
  | Workload.Small -> (4, 3)
  | Workload.Medium -> (6, 4)
  | Workload.Large -> (10, 7)

let build size : modul =
  let bw, bh = params size in
  let w = (bw * blk) + (2 * search) and h = (bh * blk) + (2 * search) in
  let m = Builder.create_module () in
  Builder.global m "cur" (w * h);
  Builder.global m "ref" (w * h);
  Builder.global m "mv" (bw * bh * 8);
  Builder.global m "psad" (Parallel.max_threads * 8);
  let open Builder in
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let nblocks = bw * bh in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c nblocks) in
  let sadsum = fresh b ~name:"sadsum" Types.i64 in
  assign b sadsum (i64c 0);
  for_ b ~name:"blkid" ~lo ~hi (fun blkid ->
      let bx = srem b blkid (i64c bw) in
      let by = sdiv b blkid (i64c bw) in
      let x0 = add b (mul b bx (i64c blk)) (i64c search) in
      let y0 = add b (mul b by (i64c blk)) (i64c search) in
      let bestsad = fresh b ~name:"bestsad" Types.i64 in
      let bestmv = fresh b ~name:"bestmv" Types.i64 in
      assign b bestsad (Imm (Types.i64, Int64.max_int));
      assign b bestmv (i64c 0);
      for_ b ~name:"dy" ~lo:(i64c (-search)) ~hi:(i64c (search + 1)) (fun dy ->
          for_ b ~name:"dx" ~lo:(i64c (-search)) ~hi:(i64c (search + 1)) (fun dx ->
              let sad = fresh b ~name:"sad" Types.i64 in
              assign b sad (i64c 0);
              (* SAD with early termination: abandon the candidate as soon
                 as it exceeds the best so far, as x264's motion search
                 does (this data-dependent exit is also why the loop cannot
                 be vectorized) *)
              for_ b ~name:"ry" ~lo:(i64c 0) ~hi:(i64c blk) (fun ry ->
                  let crow = mul b (add b y0 ry) (i64c w) in
                  let rrow = mul b (add b (add b y0 dy) ry) (i64c w) in
                  let cbase = add b crow x0 in
                  let rbase = add b (add b rrow x0) dx in
                  let rx = fresh b ~name:"rx" Types.i64 in
                  assign b rx (i64c 0);
                  while_ b
                    ~cond:(fun () ->
                      let inb = icmp b Islt (Reg rx) (i64c blk) in
                      let alive = icmp b Isle (Reg sad) (Reg bestsad) in
                      and_ b inb alive)
                    ~body:(fun () ->
                      let c =
                        load b Types.i8 (gep b (Glob "cur") (add b cbase (Reg rx)) 1)
                      in
                      let r =
                        load b Types.i8 (gep b (Glob "ref") (add b rbase (Reg rx)) 1)
                      in
                      let ci = zext b Types.i64 c and ri = zext b Types.i64 r in
                      let d = sub b ci ri in
                      let neg = icmp b Islt d (i64c 0) in
                      let ad = select b neg (sub b (i64c 0) d) d in
                      assign b sad (add b (Reg sad) ad);
                      assign b rx (add b (Reg rx) (i64c 1))));
              let better = icmp b Islt (Reg sad) (Reg bestsad) in
              if_ b better
                ~then_:(fun () ->
                  assign b bestsad (Reg sad);
                  assign b bestmv
                    (add b (mul b (add b dy (i64c search)) (i64c 16))
                       (add b dx (i64c search))))
                ()));
      store b (Reg bestmv) (gep b (Glob "mv") blkid 8);
      assign b sadsum (add b (Reg sadsum) (Reg bestsad)));
  store b (Reg sadsum) (gep b (Glob "psad") tid 8);
  ret b None;
  let b, ps = func m "reduce" [ ("nth", Types.i64) ] in
  let nth = match ps with [ a ] -> Reg a | _ -> assert false in
  let tot = fresh b ~name:"tot" Types.i64 in
  assign b tot (i64c 0);
  for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
      assign b tot (add b (Reg tot) (load b Types.i64 (gep b (Glob "psad") t 8))));
  call0 b "output_i64" [ Reg tot ];
  let chk = fresh b ~name:"chk" Types.i64 in
  assign b chk (i64c 0);
  for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c nblocks) (fun i ->
      let v = load b Types.i64 (gep b (Glob "mv") i 8) in
      assign b chk (add b (mul b (Reg chk) (i64c 31)) v));
  call0 b "output_i64" [ Reg chk ];
  ret b None;
  Parallel.standard_main m ~worker:"work" ~finish:(fun b ->
      match b.Builder.func.params with
      | [ p ] -> Builder.call0 b "reduce" [ Reg p ]
      | _ -> assert false);
  Rtlib.link m

let init size machine =
  let bw, bh = params size in
  let w = (bw * blk) + (2 * search) and h = (bh * blk) + (2 * search) in
  let st = Data.rng 59 in
  let reff = Array.init (w * h) (fun _ -> Random.State.int st 256) in
  Data.fill_bytes machine "ref" (w * h) (fun i -> reff.(i));
  (* current frame: the reference shifted with noise, so motion search has
     real minima *)
  Data.fill_bytes machine "cur" (w * h) (fun i ->
      let x = i mod w and y = i / w in
      let sx = min (w - 1) (max 0 (x + 2)) and sy = min (h - 1) (max 0 (y - 1)) in
      (reff.((sy * w) + sx) + Random.State.int st 8) land 0xFF)

let workload =
  Workload.make ~name:"x264" ~description:"PARSEC x264 (SAD motion estimation)" ~build ~init ()
