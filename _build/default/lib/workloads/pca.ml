(** Phoenix PCA: row means and the covariance matrix, row pairs split
    across threads.  Covariance accumulates in double precision (a strict
    IEEE FP reduction, which keeps the auto-vectorizer out, as observed for
    the real benchmark in Fig. 1). *)

open Ir
open Instr

let params = function
  | Workload.Tiny -> (8, 96)
  | Workload.Small -> (16, 288)
  | Workload.Medium -> (24, 512)
  | Workload.Large -> (40, 1024)

let build size : modul =
  let rows, cols = params size in
  let m = Builder.create_module () in
  Builder.global m "mat" (rows * cols * 4);
  Builder.global m "mean" (rows * 8);
  Builder.global m "cov" (rows * rows * 8);
  let open Builder in
  (* hardened: per-row means (cheap, done by thread 0's slice = all rows) *)
  let b, _ = func m "means" [] in
  for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c rows) (fun i ->
      let s = fresh b ~name:"s" Types.i64 in
      assign b s (i64c 0);
      let base = mul b i (i64c cols) in
      for_ b ~name:"c" ~lo:(i64c 0) ~hi:(i64c cols) (fun c ->
          let v = load b Types.i32 (gep b (Glob "mat") (add b base c) 4) in
          assign b s (add b (Reg s) (zext b Types.i64 v)));
      store b (sdiv b (Reg s) (i64c cols)) (gep b (Glob "mean") i 8));
  ret b None;
  (* worker: covariance rows [lo, hi) x [i, rows) *)
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c rows) in
  for_ b ~name:"i" ~lo ~hi (fun i ->
      let mi = sitofp b Types.f64 (load b Types.i64 (gep b (Glob "mean") i 8)) in
      for_ b ~name:"j" ~lo:i ~hi:(i64c rows) (fun j ->
          let mj = sitofp b Types.f64 (load b Types.i64 (gep b (Glob "mean") j 8)) in
          let acc = fresh b ~name:"acc" Types.f64 in
          assign b acc (f64c 0.0);
          let bi = mul b i (i64c cols) and bj = mul b j (i64c cols) in
          for_ b ~name:"c" ~lo:(i64c 0) ~hi:(i64c cols) (fun c ->
              let a = load b Types.i32 (gep b (Glob "mat") (add b bi c) 4) in
              let v = load b Types.i32 (gep b (Glob "mat") (add b bj c) 4) in
              let da = fsub b (sitofp b Types.f64 a) mi in
              let dv = fsub b (sitofp b Types.f64 v) mj in
              assign b acc (fadd b (Reg acc) (fmul b da dv)));
          let cov = fdiv b (Reg acc) (f64c (float_of_int (cols - 1))) in
          store b cov (gep b (Glob "cov") (add b (mul b i (i64c rows)) j) 8)));
  ret b None;
  (* hardened: checksum per row of the covariance matrix *)
  let b, _ = func m "emit" [] in
  for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c rows) (fun i ->
      let s = fresh b ~name:"s" Types.f64 in
      assign b s (f64c 0.0);
      for_ b ~name:"j" ~lo:i ~hi:(i64c rows) (fun j ->
          let v = load b Types.f64 (gep b (Glob "cov") (add b (mul b i (i64c rows)) j) 8) in
          assign b s (fadd b (Reg s) v));
      call0 b "output_f64" [ Reg s ]);
  ret b None;
  Parallel.add_globals m;
  let b, ps = func m ~hardened:false "main" [ ("nthreads", Types.i64) ] in
  let nthreads = match ps with [ p ] -> Reg p | _ -> assert false in
  call0 b "means" [];
  Parallel.spawn_join b ~worker:"work" ~nthreads;
  call0 b "emit" [];
  ret b None;
  Rtlib.link m

let init size machine =
  let rows, cols = params size in
  let st = Data.rng 19 in
  Data.fill_i32 machine "mat" (rows * cols) (fun _ -> Random.State.int st 256)

let workload =
  Workload.make ~name:"pca" ~description:"Phoenix PCA (row means + covariance matrix)" ~build
    ~init ()
