(** The benchmark registry, in the paper's row order. *)

let phoenix =
  [
    Histogram.workload;
    Kmeans.workload;
    Linear_regression.workload;
    Matrix_multiply.workload;
    Pca.workload;
    String_match.workload;
    Word_count.workload;
  ]

let parsec =
  [
    Blackscholes.workload;
    Dedup.workload;
    Ferret.workload;
    Fluidanimate.workload;
    Streamcluster.workload;
    Swaptions.workload;
    X264.workload;
  ]

let all = phoenix @ parsec

(* PARSEC benchmarks the paper had to skip (inline assembly, C++
   exceptions, §V-A); our IR reimplementation covers them as an extension
   beyond the paper's evaluation. *)
let extended = [ Canneal.workload; Bodytrack.workload ]

let micro = Micro.all

(* The benchmarks with enough floating-point work for the floats-only mode
   experiment (§V-B). *)
let float_heavy = [ Blackscholes.workload; Fluidanimate.workload; Swaptions.workload ]

let find name =
  match List.find_opt (fun w -> w.Workload.name = name) (all @ extended @ micro) with
  | Some w -> w
  | None -> invalid_arg ("Registry.find: unknown workload " ^ name)
