(** PARSEC bodytrack, skipped by the paper (C++ exceptions); extension coverage. *)

val workload : Workload.t
