(** PARSEC canneal — simulated-annealing placement.

    The paper had to skip canneal ("has inline assembly", §V-A); the IR
    reimplementation has no such limitation, so this is evaluation beyond
    the paper's coverage.  The netlist is partitioned per thread (neighbor
    lists stay inside a partition, keeping runs deterministic across build
    flavours); each worker anneals its partition with randomized swaps,
    accepting cost-increasing moves with decaying probability.  The random
    index chasing gives it canneal's characteristic pointer-heavy loads. *)

open Ir
open Instr

let neighbors = 4
let grid = 256

(* elements per partition (paper benchmarks run with up to 16 threads) *)
let per_part = function
  | Workload.Tiny -> 64
  | Workload.Small -> 192
  | Workload.Medium -> 448
  | Workload.Large -> 1_024

let swaps_per_elem = 6

let build size : modul =
  let np = per_part size in
  let total = np * Parallel.max_threads in
  let m = Builder.create_module () in
  (* per element: x, y (i64 each); neighbor ids (relative to partition) *)
  Builder.global m "locx" (total * 8);
  Builder.global m "locy" (total * 8);
  Builder.global m "nbr" (total * neighbors * 8);
  Builder.global m "rng" (Parallel.max_threads * 8);
  Builder.global m "pcost" (Parallel.max_threads * 8);
  let open Builder in
  (* hardened: Manhattan cost of one element to its neighbors *)
  let b, ps = func m "elem_cost" ~ret:Types.i64 [ ("base", Types.i64); ("e", Types.i64) ] in
  let base, e = match ps with [ a; b ] -> (Reg a, Reg b) | _ -> assert false in
  let idx = add b base e in
  let x = load b Types.i64 (gep b (Glob "locx") idx 8) in
  let y = load b Types.i64 (gep b (Glob "locy") idx 8) in
  let cost = fresh b ~name:"cost" Types.i64 in
  assign b cost (i64c 0);
  for_ b ~name:"k" ~lo:(i64c 0) ~hi:(i64c neighbors) (fun k ->
      let nb = load b Types.i64 (gep b (Glob "nbr") (add b (mul b idx (i64c neighbors)) k) 8) in
      let nidx = add b base nb in
      let nx = load b Types.i64 (gep b (Glob "locx") nidx 8) in
      let ny = load b Types.i64 (gep b (Glob "locy") nidx 8) in
      let dx = sub b x nx and dy = sub b y ny in
      let adx = select b (icmp b Islt dx (i64c 0)) (sub b (i64c 0) dx) dx in
      let ady = select b (icmp b Islt dy (i64c 0)) (sub b (i64c 0) dy) dy in
      assign b cost (add b (Reg cost) (add b adx ady)));
  ret b (Some (Reg cost));
  (* worker: anneal one partition *)
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, _nth = Parallel.worker_ids b arg in
  let base = mul b tid (i64c np) in
  let rng_cell = gep b (Glob "rng") tid 8 in
  let nswaps = np * swaps_per_elem in
  let temp = fresh b ~name:"temp" Types.i64 in
  assign b temp (i64c 4096);
  for_ b ~name:"s" ~lo:(i64c 0) ~hi:(i64c nswaps) (fun s ->
      let r = callv b ~ret:Types.i64 "rand64" [ rng_cell ] in
      let e1 = urem b (lshr b r (i64c 3)) (i64c np) in
      let e2 = urem b (lshr b r (i64c 23)) (i64c np) in
      let before =
        add b
          (callv b ~ret:Types.i64 "elem_cost" [ base; e1 ])
          (callv b ~ret:Types.i64 "elem_cost" [ base; e2 ])
      in
      (* tentatively swap the two locations *)
      let i1 = add b base e1 and i2 = add b base e2 in
      let swap g =
        let a = load b Types.i64 (gep b (Glob g) i1 8) in
        let c = load b Types.i64 (gep b (Glob g) i2 8) in
        store b c (gep b (Glob g) i1 8);
        store b a (gep b (Glob g) i2 8)
      in
      swap "locx";
      swap "locy";
      let after =
        add b
          (callv b ~ret:Types.i64 "elem_cost" [ base; e1 ])
          (callv b ~ret:Types.i64 "elem_cost" [ base; e2 ])
      in
      (* accept improving moves, and worsening ones within the temperature *)
      let delta = sub b after before in
      let jitter = and_ b (lshr b r (i64c 43)) (sub b (Reg temp) (i64c 1)) in
      let reject = icmp b Isgt delta jitter in
      if_ b reject
        ~then_:(fun () ->
          swap "locx";
          swap "locy")
        ();
      (* geometric-ish cooling *)
      if_ b
        (icmp b Ieq (and_ b s (i64c 255)) (i64c 255))
        ~then_:(fun () ->
          assign b temp (sub b (Reg temp) (lshr b (Reg temp) (i64c 2)));
          if_ b (icmp b Islt (Reg temp) (i64c 1)) ~then_:(fun () -> assign b temp (i64c 1)) ())
        ());
  (* final partition cost *)
  let total_cost = fresh b ~name:"total" Types.i64 in
  assign b total_cost (i64c 0);
  for_ b ~name:"e" ~lo:(i64c 0) ~hi:(i64c np) (fun e ->
      assign b total_cost
        (add b (Reg total_cost) (callv b ~ret:Types.i64 "elem_cost" [ base; e ])));
  store b (Reg total_cost) (gep b (Glob "pcost") tid 8);
  ret b None;
  let b, ps = func m "reduce" [ ("nth", Types.i64) ] in
  let nth = match ps with [ a ] -> Reg a | _ -> assert false in
  for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
      call0 b "output_i64" [ load b Types.i64 (gep b (Glob "pcost") t 8) ]);
  ret b None;
  Parallel.standard_main m ~worker:"work" ~finish:(fun b ->
      match b.Builder.func.params with
      | [ p ] -> Builder.call0 b "reduce" [ Reg p ]
      | _ -> assert false);
  Rtlib.link m

let init size machine =
  let np = per_part size in
  let total = np * Parallel.max_threads in
  let st = Data.rng 71 in
  Data.fill_i64 machine "locx" total (fun _ -> Int64.of_int (Random.State.int st grid));
  Data.fill_i64 machine "locy" total (fun _ -> Int64.of_int (Random.State.int st grid));
  (* neighbor ids are partition-relative so partitions stay independent *)
  Data.fill_i64 machine "nbr" (total * neighbors) (fun _ ->
      Int64.of_int (Random.State.int st np));
  Data.fill_i64 machine "rng" Parallel.max_threads (fun t -> Int64.of_int ((t * 2654435761) + 12345))

let workload =
  Workload.make ~name:"canneal" ~fi_ok:false
    ~description:"PARSEC canneal (annealed placement; skipped in the paper: inline asm)" ~build
    ~init ()
