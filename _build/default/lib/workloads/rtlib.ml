(** IR implementations of the libc memory routines.

    The paper hardens musl alongside the application (§IV-A: string match's
    32x instruction blow-up comes from hardened [bzero]); linking these
    IR functions into every workload reproduces that coupling.  The
    word-sized loops also give the auto-vectorizer the same opportunity
    LLVM has on real memset/memcpy code. *)

open Ir
open Instr

(* memcpy(dst, src, n): 8-byte chunks plus a byte tail. *)
let add_memcpy m =
  let b, ps = Builder.func m "memcpy" [ ("dst", Types.ptr); ("src", Types.ptr); ("n", Types.i64) ] in
  let dst, src, n =
    match ps with [ d; s; n ] -> (Reg d, Reg s, Reg n) | _ -> assert false
  in
  let open Builder in
  let words = lshr b n (i64c 3) in
  for_ b ~name:"w" ~lo:(i64c 0) ~hi:words (fun i ->
      let v = load b Types.i64 (gep b src i 8) in
      store b v (gep b dst i 8));
  let tail = shl b words (i64c 3) in
  for_ b ~name:"t" ~lo:tail ~hi:n (fun i ->
      let v = load b Types.i8 (gep b src i 1) in
      store b v (gep b dst i 1));
  ret b None

(* memset(dst, c, n) with c interpreted as a byte. *)
let add_memset m =
  let b, ps = Builder.func m "memset" [ ("dst", Types.ptr); ("c", Types.i64); ("n", Types.i64) ] in
  let dst, c, n = match ps with [ d; c; n ] -> (Reg d, Reg c, Reg n) | _ -> assert false in
  let open Builder in
  let byte = and_ b c (i64c 0xFF) in
  let word = mul b byte (Imm (Types.i64, 0x0101010101010101L)) in
  let words = lshr b n (i64c 3) in
  for_ b ~name:"w" ~lo:(i64c 0) ~hi:words (fun i -> store b word (gep b dst i 8));
  let tail = shl b words (i64c 3) in
  for_ b ~name:"t" ~lo:tail ~hi:n (fun i -> store b byte (gep b dst i 1));
  ret b None

(* bzero(dst, n): the routine string match lives in. *)
let add_bzero m =
  let b, ps = Builder.func m "bzero" [ ("dst", Types.ptr); ("n", Types.i64) ] in
  let dst, n = match ps with [ d; n ] -> (Reg d, Reg n) | _ -> assert false in
  let open Builder in
  let words = lshr b n (i64c 3) in
  for_ b ~name:"w" ~lo:(i64c 0) ~hi:words (fun i -> store b (i64c 0) (gep b dst i 8));
  let tail = shl b words (i64c 3) in
  for_ b ~name:"t" ~lo:tail ~hi:n (fun i -> store b (i8c 0) (gep b dst i 1));
  ret b None

(* memcmp(a, b, n) -> 0 iff equal (byte loop with early exit). *)
let add_memcmp m =
  let b, ps =
    Builder.func m "memcmp" ~ret:Types.i64
      [ ("a", Types.ptr); ("bb", Types.ptr); ("n", Types.i64) ]
  in
  let pa, pb, n = match ps with [ a; bb; n ] -> (Reg a, Reg bb, Reg n) | _ -> assert false in
  let open Builder in
  let i = fresh b ~name:"i" Types.i64 in
  let diff = fresh b ~name:"diff" Types.i64 in
  assign b i (i64c 0);
  assign b diff (i64c 0);
  while_ b
    ~cond:(fun () ->
      let inb = icmp b Islt (Reg i) n in
      let same = icmp b Ieq (Reg diff) (i64c 0) in
      and_ b inb same)
    ~body:(fun () ->
      let ca = load b Types.i8 (gep b pa (Reg i) 1) in
      let cb = load b Types.i8 (gep b pb (Reg i) 1) in
      let xa = zext b Types.i64 ca in
      let xb = zext b Types.i64 cb in
      assign b diff (sub b xa xb);
      assign b i (add b (Reg i) (i64c 1)));
  ret b (Some (Reg diff))

(* Builds the runtime-library module to be linked into every workload. *)
let modul () : modul =
  let m = Builder.create_module () in
  add_memcpy m;
  add_memset m;
  add_bzero m;
  add_memcmp m;
  m

(* Links a workload module against a fresh copy of the runtime library. *)
let link (m : modul) : modul = Linker.link [ m; modul () ]
