(** IR implementations of the libc memory routines, hardened together with
    the application like the paper's musl (string match's blow-up lives in
    [bzero]). *)

val modul : unit -> Ir.Instr.modul

(** Links a workload module against a fresh copy of the runtime library. *)
val link : Ir.Instr.modul -> Ir.Instr.modul
