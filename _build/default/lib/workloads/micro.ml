(** Microbenchmarks of Table IV (§VII-A): each saturates the CPU with one
    instruction class so that the cost of ELZAR's AVX wrappers
    (extract/broadcast around loads and stores, ptest around branches,
    scalarization of truncations) is measured in isolation.  The paper runs
    them with checks disabled; the bench harness does the same.

    Two variants per class: [avg] interleaves the probed instructions with
    ALU work (the paper's average case), [worst] issues them back to
    back. *)

open Ir
open Instr

type mix = Avg | Worst

let iters = function
  | Workload.Tiny -> 2_000
  | Workload.Small -> 10_000
  | Workload.Medium -> 30_000
  | Workload.Large -> 100_000

let buf_slots = 64

(* The worker body receives its private buffer base and returns an
   accumulator operand; per-thread results are emitted in tid order by a
   hardened reduce (worker output order is scheduling-dependent). *)
let with_worker ~name ~description body =
  let build size : modul =
    let m = Builder.create_module () in
    Builder.global m "buf" (Parallel.max_threads * buf_slots * 8);
    Builder.global m "pout" (Parallel.max_threads * 8);
    let open Builder in
    let b, ps = func m "work" [ ("arg", Types.ptr) ] in
    let arg = match ps with [ a ] -> Reg a | _ -> assert false in
    let tid, nth = Parallel.worker_ids b arg in
    ignore nth;
    let mybuf = gep b (Glob "buf") tid (buf_slots * 8) in
    let acc = body b mybuf (iters size) in
    store b acc (gep b (Glob "pout") tid 8);
    ret b None;
    let b, ps = func m "reduce" [ ("nth", Types.i64) ] in
    let nth = match ps with [ a ] -> Reg a | _ -> assert false in
    for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
        call0 b "output_i64" [ load b Types.i64 (gep b (Glob "pout") t 8) ]);
    ret b None;
    Parallel.standard_main m ~worker:"work" ~finish:(fun b ->
        match b.Builder.func.params with
        | [ p ] -> Builder.call0 b "reduce" [ Reg p ]
        | _ -> assert false);
    Rtlib.link m
  in
  Workload.make ~name ~description ~build
    ~init:(fun _ machine ->
      Data.fill_i64 machine "buf" (Parallel.max_threads * buf_slots) (fun i ->
          Int64.of_int (i * 3)))
    ~fi_ok:false ()

let pad (b : Builder.t) mix (x : operand) =
  match mix with
  | Worst -> x
  | Avg ->
      (* two dependent ALU ops between probed instructions *)
      let open Builder in
      let t = add b x (i64c 1) in
      xor b t (i64c 5)

(* 8 independent loads per iteration, accumulated. *)
let loads_micro mix name =
  with_worker ~name ~description:"Table IV load microbenchmark" (fun b mybuf n ->
      let open Builder in
      let acc = fresh b ~name:"acc" Types.i64 in
      assign b acc (i64c 0);
      for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c n) (fun i ->
          let base = and_ b i (i64c 31) in
          for k = 0 to 7 do
            let v = load b Types.i64 (gep b mybuf (add b base (i64c (k land 3))) 8) in
            assign b acc (add b (Reg acc) (pad b mix v))
          done);
      Reg acc)

(* 8 independent stores per iteration. *)
let stores_micro mix name =
  with_worker ~name ~description:"Table IV store microbenchmark" (fun b mybuf n ->
      let open Builder in
      for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c n) (fun i ->
          let base = and_ b i (i64c 31) in
          for k = 0 to 7 do
            let v = pad b mix i in
            store b v (gep b mybuf (add b base (i64c k)) 8)
          done);
      load b Types.i64 mybuf)

(* 8 data-dependent (but predictable) branches per iteration. *)
let branches_micro mix name =
  with_worker ~name ~description:"Table IV branch microbenchmark" (fun b _ n ->
      let open Builder in
      let acc = fresh b ~name:"acc" Types.i64 in
      assign b acc (i64c 0);
      for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c n) (fun i ->
          for k = 0 to 7 do
            let c = icmp b Isgt (pad b mix i) (i64c (k * 3)) in
            if_ b c
              ~then_:(fun () -> assign b acc (add b (Reg acc) (i64c 1)))
              ~else_:(fun () -> assign b acc (add b (Reg acc) (i64c 2)))
              ()
          done);
      Reg acc)

(* 8 truncations per iteration: i64 -> i32 narrowing has no AVX encoding
   and scalarizes (8x overhead in the paper's measurement). *)
let trunc_micro mix name =
  with_worker ~name ~description:"§VII-A truncation microbenchmark" (fun b _ n ->
      let open Builder in
      let acc = fresh b ~name:"acc" Types.i64 in
      assign b acc (i64c 0);
      for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c n) (fun i ->
          for k = 0 to 7 do
            let t = trunc b Types.i32 (pad b mix (add b i (i64c k))) in
            assign b acc (add b (Reg acc) (zext b Types.i64 t))
          done);
      Reg acc)

(* 8 integer divisions per iteration: like truncation, division has no AVX
   encoding and scalarizes (§VII-A "Missing instructions"). *)
let div_micro mix name =
  with_worker ~name ~description:"§VII-A integer-division microbenchmark" (fun b _ n ->
      let open Builder in
      let acc = fresh b ~name:"acc" Types.i64 in
      assign b acc (i64c 1);
      for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c n) (fun i ->
          for k = 0 to 7 do
            let denom = or_ b (pad b mix i) (i64c (k + 1)) in
            assign b acc (add b (Reg acc) (sdiv b (add b i (i64c (1000 + k))) denom))
          done);
      Reg acc)

(* 4 calls per iteration to a tiny hardened callee: ELZAR checks and
   extracts every argument and re-broadcasts the result (§III-C). *)
let call_micro mix name =
  let build size : modul =
    let m = Builder.create_module () in
    Builder.global m "buf" (Parallel.max_threads * buf_slots * 8);
    Builder.global m "pout" (Parallel.max_threads * 8);
    let open Builder in
    let b, ps = func m "callee" ~ret:Types.i64 [ ("x", Types.i64); ("y", Types.i64) ] in
    let x, y = match ps with [ x; y ] -> (Reg x, Reg y) | _ -> assert false in
    ret b (Some (xor b (add b x y) (i64c 13)));
    let b, ps = func m "work" [ ("arg", Types.ptr) ] in
    let arg = match ps with [ a ] -> Reg a | _ -> assert false in
    let tid, _ = Parallel.worker_ids b arg in
    let acc = fresh b ~name:"acc" Types.i64 in
    assign b acc (i64c 0);
    for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c (iters size / 2)) (fun i ->
        for k = 0 to 3 do
          let v = callv b ~ret:Types.i64 "callee" [ pad b mix i; i64c k ] in
          assign b acc (add b (Reg acc) v)
        done);
    store b (Reg acc) (gep b (Glob "pout") tid 8);
    ret b None;
    let b, ps = func m "reduce" [ ("nth", Types.i64) ] in
    let nth = match ps with [ a ] -> Reg a | _ -> assert false in
    for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
        call0 b "output_i64" [ load b Types.i64 (gep b (Glob "pout") t 8) ]);
    ret b None;
    Parallel.standard_main m ~worker:"work" ~finish:(fun b ->
        match b.Builder.func.params with
        | [ p ] -> Builder.call0 b "reduce" [ Reg p ]
        | _ -> assert false);
    Rtlib.link m
  in
  Workload.make ~name ~description:"§III-C call-wrapper microbenchmark" ~build ~fi_ok:false ()

let loads_avg = loads_micro Avg "micro-loads-avg"
let loads_worst = loads_micro Worst "micro-loads-worst"
let stores_avg = stores_micro Avg "micro-stores-avg"
let stores_worst = stores_micro Worst "micro-stores-worst"
let branches_avg = branches_micro Avg "micro-branches-avg"
let branches_worst = branches_micro Worst "micro-branches-worst"
let trunc_avg = trunc_micro Avg "micro-trunc-avg"
let trunc_worst = trunc_micro Worst "micro-trunc-worst"
let div_avg = div_micro Avg "micro-div-avg"
let div_worst = div_micro Worst "micro-div-worst"
let calls_avg = call_micro Avg "micro-calls-avg"
let calls_worst = call_micro Worst "micro-calls-worst"

let all =
  [
    loads_avg;
    loads_worst;
    stores_avg;
    stores_worst;
    branches_avg;
    branches_worst;
    trunc_avg;
    trunc_worst;
    div_avg;
    div_worst;
    calls_avg;
    calls_worst;
  ]
