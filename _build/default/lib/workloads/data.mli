(** Host-side input preparation: deterministic pseudo-random datasets poked
    directly into simulated memory (zero simulated cycles, like the paper's
    unhardened input file reads). *)

val rng : int -> Random.State.t
val addr_of : Cpu.Machine.t -> string -> int64
val fill_i64 : Cpu.Machine.t -> string -> int -> (int -> int64) -> unit
val fill_i32 : Cpu.Machine.t -> string -> int -> (int -> int) -> unit
val fill_f64 : Cpu.Machine.t -> string -> int -> (int -> float) -> unit
val fill_bytes : Cpu.Machine.t -> string -> int -> (int -> int) -> unit
val blit_string : Cpu.Machine.t -> string -> string -> unit

(** Uniform random float in [lo, hi). *)
val uniform : Random.State.t -> float -> float -> float
