(** The benchmark registry, in the paper's row order. *)

val phoenix : Workload.t list
val parsec : Workload.t list
val all : Workload.t list

(** PARSEC benchmarks the paper skipped (inline asm / C++ exceptions);
    covered here as an extension beyond the paper. *)
val extended : Workload.t list

val micro : Workload.t list

(** Benchmarks with enough floating-point work for the floats-only mode
    experiment (§V-B). *)
val float_heavy : Workload.t list

(** @raise Invalid_argument on unknown names. *)
val find : string -> Workload.t
