(** Phoenix string match: for every word in the stream, clear a scratch
    buffer ([bzero] from the hardened runtime library — where the paper
    found the benchmark spends most of its time), "encrypt" the word into
    it, and compare against four target keys with [memcmp].

    This is the paper's pathological case: a 32x instruction increase under
    ELZAR (stores and branches in bzero/memcmp each grow wrappers and
    checks), while the native build profits most from vectorization
    (Fig. 1: +60%). *)

open Ir
open Instr

let word_len = 16
let nkeys = 4

let nwords = function
  | Workload.Tiny -> 300
  | Workload.Small -> 2_000
  | Workload.Medium -> 8_000
  | Workload.Large -> 30_000

let build size : modul =
  let n = nwords size in
  let m = Builder.create_module () in
  Builder.global m "words" (n * word_len);
  Builder.global m "keys" (nkeys * word_len);
  Builder.global m "scratch" (Parallel.max_threads * 64);
  Builder.global m "matches" (Parallel.max_threads * nkeys * 8);
  let open Builder in
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c n) in
  let buf = gep b (Glob "scratch") tid 64 in
  let mymatches = gep b (Glob "matches") tid (nkeys * 8) in
  for_ b ~name:"w" ~lo ~hi (fun w ->
      call0 b "bzero" [ buf; i64c 64 ];
      let wbase = gep b (Glob "words") w word_len in
      (* "encrypt": xor each byte with 1 while copying, as Phoenix does *)
      for_ b ~name:"c" ~lo:(i64c 0) ~hi:(i64c word_len) (fun c ->
          let v = load b Types.i8 (gep b wbase c 1) in
          store b (xor b v (i8c 1)) (gep b buf c 1));
      for_ b ~name:"k" ~lo:(i64c 0) ~hi:(i64c nkeys) (fun k ->
          let key = gep b (Glob "keys") k word_len in
          let d = callv b ~ret:Types.i64 "memcmp" [ buf; key; i64c word_len ] in
          if_ b
            (icmp b Ieq d (i64c 0))
            ~then_:(fun () ->
              let slot = gep b mymatches k 8 in
              let v = load b Types.i64 slot in
              store b (add b v (i64c 1)) slot)
            ()));
  ret b None;
  let b, ps = func m "reduce" [ ("nth", Types.i64) ] in
  let nth = match ps with [ a ] -> Reg a | _ -> assert false in
  for_ b ~name:"k" ~lo:(i64c 0) ~hi:(i64c nkeys) (fun k ->
      let s = fresh b ~name:"s" Types.i64 in
      assign b s (i64c 0);
      for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
          let v = load b Types.i64 (gep b (gep b (Glob "matches") t (nkeys * 8)) k 8) in
          assign b s (add b (Reg s) v));
      call0 b "output_i64" [ Reg s ]);
  ret b None;
  Parallel.standard_main m ~worker:"work" ~finish:(fun b ->
      match b.Builder.func.params with
      | [ p ] -> Builder.call0 b "reduce" [ Reg p ]
      | _ -> assert false);
  Rtlib.link m

let init size machine =
  let n = nwords size in
  let st = Data.rng 23 in
  (* keys are stored pre-"encrypted" so that some words match *)
  let mk_word () = String.init word_len (fun _ -> Char.chr (97 + Random.State.int st 26)) in
  let keys = Array.init nkeys (fun _ -> mk_word ()) in
  let key_bytes =
    String.concat ""
      (Array.to_list (Array.map (String.map (fun c -> Char.chr (Char.code c lxor 1))) keys))
  in
  Data.blit_string machine "keys" key_bytes;
  let words =
    String.concat ""
      (List.init n (fun _ ->
           if Random.State.int st 100 < 7 then keys.(Random.State.int st nkeys)
           else mk_word ()))
  in
  Data.blit_string machine "words" words

let workload =
  Workload.make ~name:"smatch" ~description:"Phoenix string match (bzero + encrypt + memcmp)"
    ~build ~init ()
