(** PARSEC bodytrack — annealed particle filter for pose tracking.

    Skipped in the paper ("uses C++ exceptions not supported by ELZAR",
    §V-A); reimplemented here as evaluation beyond the paper's coverage.
    Persistent workers score their slice of particles against the
    observation (float-heavy likelihoods), a barrier separates scoring from
    the sequential resampling step (thread 0 builds the cumulative weight
    table), and workers then resample and propagate with per-thread noise
    — the binary search over cumulative weights supplies bodytrack's
    data-dependent branches. *)

open Ir
open Instr

let dims = 8
let frames = 3

let nparticles = function
  | Workload.Tiny -> 64
  | Workload.Small -> 256
  | Workload.Medium -> 768
  | Workload.Large -> 2_048

let build size : modul =
  let n = nparticles size in
  let m = Builder.create_module () in
  Builder.global m "state" (n * dims * 8);  (* particle states, f64 *)
  Builder.global m "nextstate" (n * dims * 8);
  Builder.global m "obs" (dims * 8);  (* the observation per frame *)
  Builder.global m "weight" (n * 8);
  Builder.global m "cumw" ((n + 1) * 8);
  Builder.global m "rng" (Parallel.max_threads * 8);
  Builder.global m "bar1" 8;
  Builder.global m "bar2" 8;
  Builder.global m "bar3" 8;
  let open Builder in
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c n) in
  let rng_cell = gep b (Glob "rng") tid 8 in
  for_ b ~name:"frame" ~lo:(i64c 0) ~hi:(i64c frames) (fun frame ->
      (* 1. likelihood of each owned particle against the observation *)
      for_ b ~name:"i" ~lo ~hi (fun i ->
          let d2 = fresh b ~name:"d2" Types.f64 in
          assign b d2 (f64c 0.0);
          for_ b ~name:"c" ~lo:(i64c 0) ~hi:(i64c dims) (fun c ->
              let s = load b Types.f64 (gep b (Glob "state") (add b (mul b i (i64c dims)) c) 8) in
              let o = load b Types.f64 (gep b (Glob "obs") c 8) in
              let frame_drift = fmul b (sitofp b Types.f64 frame) (f64c 0.05) in
              let d = fsub b s (fadd b o frame_drift) in
              assign b d2 (fadd b (Reg d2) (fmul b d d)));
          let w = Fmath.exp b (fmul b (f64c (-0.5)) (Reg d2)) in
          store b w (gep b (Glob "weight") i 8));
      call0 b "barrier" [ Glob "bar1"; nth ];
      (* 2. thread 0 builds the cumulative weight table (sequential) *)
      if_ b
        (icmp b Ieq tid (i64c 0))
        ~then_:(fun () ->
          let acc = fresh b ~name:"acc" Types.f64 in
          assign b acc (f64c 0.0);
          store b (f64c 0.0) (Glob "cumw");
          for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c n) (fun i ->
              assign b acc (fadd b (Reg acc) (load b Types.f64 (gep b (Glob "weight") i 8)));
              store b (Reg acc) (gep b (Glob "cumw") (add b i (i64c 1)) 8));
          call0 b "output_f64" [ Reg acc ])
        ();
      call0 b "barrier" [ Glob "bar2"; nth ];
      (* 3. resample owned slots by binary search over cumw, then propagate
         with per-thread noise *)
      let totw = load b Types.f64 (gep b (Glob "cumw") (i64c n) 8) in
      for_ b ~name:"i" ~lo ~hi (fun i ->
          let r = callv b ~ret:Types.i64 "rand64" [ rng_cell ] in
          let u01 =
            fmul b
              (sitofp b Types.f64 (lshr b r (i64c 11)))
              (f64c (1.0 /. 9007199254740992.0))
          in
          let target = fmul b u01 totw in
          let lo2 = fresh b ~name:"lo" Types.i64 and hi2 = fresh b ~name:"hi" Types.i64 in
          assign b lo2 (i64c 0);
          assign b hi2 (i64c n);
          while_ b
            ~cond:(fun () -> icmp b Islt (Reg lo2) (Reg hi2))
            ~body:(fun () ->
              let mid = lshr b (add b (Reg lo2) (Reg hi2)) (i64c 1) in
              let c = load b Types.f64 (gep b (Glob "cumw") (add b mid (i64c 1)) 8) in
              if_ b (fcmp b Folt c target)
                ~then_:(fun () -> assign b lo2 (add b mid (i64c 1)))
                ~else_:(fun () -> assign b hi2 mid)
                ());
          let src = select b (icmp b Islt (Reg lo2) (i64c n)) (Reg lo2) (i64c (n - 1)) in
          for_ b ~name:"c" ~lo:(i64c 0) ~hi:(i64c dims) (fun c ->
              let v = load b Types.f64 (gep b (Glob "state") (add b (mul b src (i64c dims)) c) 8) in
              let r2 = callv b ~ret:Types.i64 "rand64" [ rng_cell ] in
              let noise =
                fmul b
                  (fsub b
                     (fmul b
                        (sitofp b Types.f64 (lshr b r2 (i64c 11)))
                        (f64c (2.0 /. 9007199254740992.0)))
                     (f64c 1.0))
                  (f64c 0.02)
              in
              store b (fadd b v noise)
                (gep b (Glob "nextstate") (add b (mul b i (i64c dims)) c) 8)));
      call0 b "barrier" [ Glob "bar3"; nth ];
      (* 4. swap state buffers: each worker copies its own slice back *)
      for_ b ~name:"i" ~lo ~hi (fun i ->
          for_ b ~name:"c" ~lo:(i64c 0) ~hi:(i64c dims) (fun c ->
              let off = add b (mul b i (i64c dims)) c in
              store b (load b Types.f64 (gep b (Glob "nextstate") off 8))
                (gep b (Glob "state") off 8)));
      call0 b "barrier" [ Glob "bar1"; nth ]);
  ret b None;
  (* final estimate: mean of dimension 0 over all particles *)
  let b, _ = func m "emit" [] in
  let s = fresh b ~name:"s" Types.f64 in
  assign b s (f64c 0.0);
  for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c n) (fun i ->
      assign b s (fadd b (Reg s) (load b Types.f64 (gep b (Glob "state") (mul b i (i64c dims)) 8))));
  call0 b "output_f64" [ fdiv b (Reg s) (f64c (float_of_int n)) ];
  ret b None;
  Parallel.standard_main m ~worker:"work" ~finish:(fun b -> Builder.call0 b "emit" []);
  Rtlib.link m

let init size machine =
  let n = nparticles size in
  let st = Data.rng 73 in
  Data.fill_f64 machine "state" (n * dims) (fun _ -> Data.uniform st (-1.0) 1.0);
  Data.fill_f64 machine "obs" dims (fun _ -> Data.uniform st (-0.5) 0.5);
  Data.fill_i64 machine "rng" Parallel.max_threads (fun t ->
      Int64.of_int ((t * 40503) + 9973))

let workload =
  Workload.make ~name:"bodytrack" ~fi_ok:false
    ~description:"PARSEC bodytrack (particle filter; skipped in the paper: C++ exceptions)"
    ~build ~init ()
