(** PARSEC fluidanimate: SPH-flavoured particle simulation on a 1-D cell
    grid — per step, each particle accumulates density from its own and
    neighbouring cells under a cutoff test (the data-dependent branch that
    gives fluidanimate its 14.7% branch-miss ratio), then integrates. *)

open Ir
open Instr

let cell_cap = 4
let steps = 4

let nparticles = function
  | Workload.Tiny -> 200
  | Workload.Small -> 500
  | Workload.Medium -> 1_000
  | Workload.Large -> 2_500

let build size : modul =
  let n = nparticles size in
  let ncells = (n / 3) + 1 in
  let m = Builder.create_module () in
  Builder.global m "px" (n * 8);
  Builder.global m "py" (n * 8);
  Builder.global m "vx" (n * 8);
  Builder.global m "vy" (n * 8);
  Builder.global m "dens" (n * 8);
  Builder.global m "cells" (ncells * cell_cap * 8);  (* particle ids, -1 empty *)
  Builder.global m "cellof" (n * 8);
  Builder.global m "bar1" 8;
  Builder.global m "bar2" 8;
  let open Builder in
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c n) in
  let h2 = f64c 0.25 in
  for_ b ~name:"step" ~lo:(i64c 0) ~hi:(i64c steps) (fun _ ->
  (* density pass over this worker's particles *)
  for_ b ~name:"i" ~lo ~hi (fun i ->
      let xi = load b Types.f64 (gep b (Glob "px") i 8) in
      let yi = load b Types.f64 (gep b (Glob "py") i 8) in
      let ci = load b Types.i64 (gep b (Glob "cellof") i 8) in
      let d = fresh b ~name:"d" Types.f64 in
      assign b d (f64c 0.0);
      (* own cell and the two neighbours *)
      for_ b ~name:"nc" ~lo:(i64c 0) ~hi:(i64c 3) (fun nc ->
          let c = add b ci (sub b nc (i64c 1)) in
          let valid =
            and_ b
              (zext b Types.i64 (icmp b Isge c (i64c 0)))
              (zext b Types.i64 (icmp b Islt c (i64c ncells)))
          in
          if_ b
            (icmp b Ine valid (i64c 0))
            ~then_:(fun () ->
              let cbase = gep b (Glob "cells") (mul b c (i64c cell_cap)) 8 in
              for_ b ~name:"s" ~lo:(i64c 0) ~hi:(i64c cell_cap) (fun s ->
                  let j = load b Types.i64 (gep b cbase s 8) in
                  if_ b
                    (icmp b Isge j (i64c 0))
                    ~then_:(fun () ->
                      let xj = load b Types.f64 (gep b (Glob "px") j 8) in
                      let yj = load b Types.f64 (gep b (Glob "py") j 8) in
                      let dx = fsub b xi xj and dy = fsub b yi yj in
                      let r2 = fadd b (fmul b dx dx) (fmul b dy dy) in
                      if_ b (fcmp b Folt r2 h2)
                        ~then_:(fun () ->
                          let t = fsub b h2 r2 in
                          let w = fmul b t (fmul b t t) in
                          assign b d (fadd b (Reg d) w))
                        ())
                    ()))
            ());
      store b (Reg d) (gep b (Glob "dens") i 8));
  (* every density must land before anyone integrates *)
  call0 b "barrier" [ Glob "bar1"; nth ];
  (* integrate: velocity damped by density, positions advance *)
  for_ b ~name:"i" ~lo ~hi (fun i ->
      let d = load b Types.f64 (gep b (Glob "dens") i 8) in
      let damp = fdiv b (f64c 1.0) (fadd b (f64c 1.0) (fmul b (f64c 0.1) d)) in
      let upd pg vg =
        let p = load b Types.f64 (gep b (Glob pg) i 8) in
        let v = load b Types.f64 (gep b (Glob vg) i 8) in
        let v' = fmul b v damp in
        store b v' (gep b (Glob vg) i 8);
        store b (fadd b p (fmul b v' (f64c 0.01))) (gep b (Glob pg) i 8)
      in
      upd "px" "vx";
      upd "py" "vy");
  call0 b "barrier" [ Glob "bar2"; nth ]);
  ret b None;
  let b, _ = func m "emit" [] in
  let sx = fresh b ~name:"sx" Types.f64 and sd = fresh b ~name:"sd" Types.f64 in
  assign b sx (f64c 0.0);
  assign b sd (f64c 0.0);
  for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c n) (fun i ->
      assign b sx (fadd b (Reg sx) (load b Types.f64 (gep b (Glob "px") i 8)));
      assign b sd (fadd b (Reg sd) (load b Types.f64 (gep b (Glob "dens") i 8))));
  call0 b "output_f64" [ Reg sx ];
  call0 b "output_f64" [ Reg sd ];
  ret b None;
  Parallel.add_globals m;
  let b, ps = func m ~hardened:false "main" [ ("nthreads", Types.i64) ] in
  let nthreads = match ps with [ p ] -> Reg p | _ -> assert false in
  Parallel.spawn_join b ~worker:"work" ~nthreads;
  call0 b "emit" [];
  ret b None;
  Rtlib.link m

let init size machine =
  let n = nparticles size in
  let ncells = (n / 3) + 1 in
  let st = Data.rng 43 in
  let cells = Array.make (ncells * cell_cap) (-1) in
  let cellof = Array.make n 0 in
  for i = 0 to n - 1 do
    (* place particles into cells, at most cell_cap each *)
    let rec place tries =
      let c = Random.State.int st ncells in
      let rec slot s = if s = cell_cap then None else if cells.((c * cell_cap) + s) < 0 then Some s else slot (s + 1) in
      match slot 0 with
      | Some s ->
          cells.((c * cell_cap) + s) <- i;
          cellof.(i) <- c
      | None -> if tries < 50 then place (tries + 1) else cellof.(i) <- c
    in
    place 0
  done;
  Data.fill_f64 machine "px" n (fun i -> float_of_int cellof.(i) *. 0.5 +. Data.uniform st 0.0 0.5);
  Data.fill_f64 machine "py" n (fun _ -> Data.uniform st 0.0 1.0);
  Data.fill_f64 machine "vx" n (fun _ -> Data.uniform st (-1.0) 1.0);
  Data.fill_f64 machine "vy" n (fun _ -> Data.uniform st (-1.0) 1.0);
  Data.fill_i64 machine "cells" (ncells * cell_cap) (fun i -> Int64.of_int cells.(i));
  Data.fill_i64 machine "cellof" n (fun i -> Int64.of_int cellof.(i))

let workload =
  Workload.make ~name:"fluid" ~fi_ok:false
    ~description:"PARSEC fluidanimate (SPH steps with barriers on a cell grid)" ~build ~init ()
