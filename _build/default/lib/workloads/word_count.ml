(** Phoenix word count: scan text for words, hash each into an
    open-addressing table of per-thread counts.

    Character classification is data-dependent (the 3.3% branch-miss ratio
    of Table II) and the probe sequence produces the load/store-heavy
    profile that makes ELZAR expensive here. *)

open Ir
open Instr

let table_slots = 512  (* per thread; power of two *)

let nbytes = function
  | Workload.Tiny -> 4_000
  | Workload.Small -> 30_000
  | Workload.Medium -> 120_000
  | Workload.Large -> 500_000

let build size : modul =
  let n = nbytes size in
  let m = Builder.create_module () in
  Builder.global m "text" n;
  (* per-thread table: slot = (hash, count) pairs *)
  Builder.global m "tab" (Parallel.max_threads * table_slots * 16);
  Builder.global m "nwords" (Parallel.max_threads * 8);
  let open Builder in
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c n) in
  let mytab = gep b (Glob "tab") tid (table_slots * 16) in
  let count = fresh b ~name:"count" Types.i64 in
  assign b count (i64c 0);
  let hash = fresh b ~name:"hash" Types.i64 in
  let inword = fresh b ~name:"inword" Types.i64 in
  assign b hash (Imm (Types.i64, 0xcbf29ce484222325L));
  assign b inword (i64c 0);
  let finish_word () =
    (* insert [hash] into the open-addressing table (linear probing) *)
    let idx = fresh b ~name:"idx" Types.i64 in
    assign b idx (and_ b (Reg hash) (i64c (table_slots - 1)));
    let placed = fresh b ~name:"placed" Types.i64 in
    assign b placed (i64c 0);
    while_ b
      ~cond:(fun () -> icmp b Ieq (Reg placed) (i64c 0))
      ~body:(fun () ->
        let slot = gep b mytab (Reg idx) 16 in
        let key = load b Types.i64 slot in
        if_ b
          (icmp b Ieq key (Reg hash))
          ~then_:(fun () ->
            let c = gep b slot (i64c 1) 8 in
            store b (add b (load b Types.i64 c) (i64c 1)) c;
            assign b placed (i64c 1))
          ~else_:(fun () ->
            if_ b
              (icmp b Ieq key (i64c 0))
              ~then_:(fun () ->
                store b (Reg hash) slot;
                store b (i64c 1) (gep b slot (i64c 1) 8);
                assign b placed (i64c 1))
              ~else_:(fun () ->
                assign b idx (and_ b (add b (Reg idx) (i64c 1)) (i64c (table_slots - 1))))
              ())
          ());
    assign b count (add b (Reg count) (i64c 1));
    assign b hash (Imm (Types.i64, 0xcbf29ce484222325L));
    assign b inword (i64c 0)
  in
  for_ b ~name:"i" ~lo ~hi (fun i ->
      let c = zext b Types.i64 (load b Types.i8 (gep b (Glob "text") i 1)) in
      let is_alpha =
        and_ b
          (zext b Types.i64 (icmp b Isge c (i64c 97)))
          (zext b Types.i64 (icmp b Isle c (i64c 122)))
      in
      if_ b
        (icmp b Ine is_alpha (i64c 0))
        ~then_:(fun () ->
          assign b hash
            (mul b (xor b (Reg hash) c) (Imm (Types.i64, 0x100000001b3L)));
          assign b inword (i64c 1))
        ~else_:(fun () ->
          if_ b (icmp b Ine (Reg inword) (i64c 0)) ~then_:finish_word ())
        ());
  if_ b (icmp b Ine (Reg inword) (i64c 0)) ~then_:finish_word ();
  store b (Reg count) (gep b (Glob "nwords") tid 8);
  ret b None;
  (* hardened reduce: total words + table checksum *)
  let b, ps = func m "reduce" [ ("nth", Types.i64) ] in
  let nth = match ps with [ a ] -> Reg a | _ -> assert false in
  let tot = fresh b ~name:"tot" Types.i64 in
  let chk = fresh b ~name:"chk" Types.i64 in
  assign b tot (i64c 0);
  assign b chk (i64c 0);
  for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
      let v = load b Types.i64 (gep b (Glob "nwords") t 8) in
      assign b tot (add b (Reg tot) v);
      for_ b ~name:"s" ~lo:(i64c 0) ~hi:(i64c table_slots) (fun s ->
          let slot = gep b (gep b (Glob "tab") t (table_slots * 16)) s 16 in
          let key = load b Types.i64 slot in
          let cnt = load b Types.i64 (gep b slot (i64c 1) 8) in
          assign b chk (add b (Reg chk) (xor b key (mul b cnt (i64c 1099511628211))))));
  call0 b "output_i64" [ Reg tot ];
  call0 b "output_i64" [ Reg chk ];
  ret b None;
  Parallel.standard_main m ~worker:"work" ~finish:(fun b ->
      match b.Builder.func.params with
      | [ p ] -> Builder.call0 b "reduce" [ Reg p ]
      | _ -> assert false);
  Rtlib.link m

(* Text drawn from a fixed vocabulary so per-thread tables cannot overflow
   (distinct words << table_slots). *)
let init size machine =
  let n = nbytes size in
  let st = Data.rng 29 in
  let vocab =
    Array.init 200 (fun _ ->
        String.init
          (3 + Random.State.int st 6)
          (fun _ -> Char.chr (97 + Random.State.int st 26)))
  in
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    Buffer.add_string buf vocab.(Random.State.int st 200);
    Buffer.add_char buf ' '
  done;
  Data.blit_string machine "text" (String.sub (Buffer.contents buf) 0 n)

let workload =
  Workload.make ~name:"wc" ~description:"Phoenix word count (hash table of word frequencies)"
    ~build ~init ()
