(** PARSEC swaptions: HJM Monte-Carlo pricing — an integer LCG drives
    Irwin-Hall gaussians, a full forward-rate curve of [tenors] points
    evolves per time step (the factor-array loads/stores that give the
    benchmark its memory mix), and discounted payoffs accumulate per
    swaption. *)

open Ir
open Instr

let horizon = 8  (* time steps per path *)
let tenors = 8  (* forward-curve points evolved per step *)

let params = function
  | Workload.Tiny -> (4, 15)
  | Workload.Small -> (8, 40)
  | Workload.Medium -> (16, 80)
  | Workload.Large -> (32, 250)

let build size : modul =
  let nsw, paths = params size in
  let m = Builder.create_module () in
  Builder.global m "strike" (nsw * 8);
  Builder.global m "vol" (nsw * 8);
  Builder.global m "r0" (nsw * 8);
  Builder.global m "price" (nsw * 8);
  (* per-(step, tenor) forward-rate factors (the HJM factor arrays of the
     real benchmark) and per-thread forward curves *)
  Builder.global m "factors" (horizon * tenors * 8);
  Builder.global m "drift" (horizon * tenors * 8);
  Builder.global m "rates" (Parallel.max_threads * tenors * 8);
  let open Builder in
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c nsw) in
  let lcg = fresh b ~name:"lcg" Types.i32 in
  (* gaussian by Irwin-Hall over 4 uniforms drawn from the classic 32-bit
     libc LCG (32-bit multiplies do have an AVX2 encoding) *)
  let gauss () =
    let s = fresh b ~name:"g" Types.f64 in
    assign b s (f64c (-2.0));
    for _ = 1 to 4 do
      assign b lcg
        (add b (mul b (Reg lcg) (i32c 1103515245)) (i32c 12345));
      let u = lshr b (zext b Types.i64 (Reg lcg)) (i64c 1) in
      let uf = fmul b (sitofp b Types.f64 u) (f64c (1.0 /. 2147483648.0)) in
      assign b s (fadd b (Reg s) uf)
    done;
    (* variance 4/12 -> scale to unit *)
    fmul b (Reg s) (f64c 1.7320508075688772)
  in
  for_ b ~name:"sw" ~lo ~hi (fun sw ->
      let k = load b Types.f64 (gep b (Glob "strike") sw 8) in
      let v = load b Types.f64 (gep b (Glob "vol") sw 8) in
      let r0 = load b Types.f64 (gep b (Glob "r0") sw 8) in
      assign b lcg (trunc b Types.i32 (add b (mul b sw (i64c 0x9E3779B9)) (i64c 12345)));
      let sum = fresh b ~name:"sum" Types.f64 in
      assign b sum (f64c 0.0);
      let myrates = gep b (Glob "rates") tid (tenors * 8) in
      for_ b ~name:"p" ~lo:(i64c 0) ~hi:(i64c paths) (fun _ ->
          let disc = fresh b ~name:"disc" Types.f64 in
          assign b disc (f64c 0.0);
          (* initialize the forward curve *)
          for_ b ~name:"j" ~lo:(i64c 0) ~hi:(i64c tenors) (fun j ->
              let spread = fmul b (sitofp b Types.f64 j) (f64c 0.0004) in
              store b (fadd b r0 spread) (gep b myrates j 8));
          for_ b ~name:"t" ~lo:(i64c 0) ~hi:(i64c horizon) (fun t ->
              let g = gauss () in
              let frow = mul b t (i64c tenors) in
              (* evolve every tenor; the no-arbitrage drift couples each
                 tenor to its shorter neighbour, a loop-carried dependence *)
              let rprev = fresh b ~name:"rprev" Types.f64 in
              assign b rprev (load b Types.f64 myrates);
              for_ b ~name:"j" ~lo:(i64c 0) ~hi:(i64c tenors) (fun j ->
                  let fac = load b Types.f64 (gep b (Glob "factors") (add b frow j) 8) in
                  let dr = load b Types.f64 (gep b (Glob "drift") (add b frow j) 8) in
                  let slot = gep b myrates j 8 in
                  let r = load b Types.f64 slot in
                  let coupled = fmul b (f64c 0.02) (fsub b (Reg rprev) r) in
                  let r' = fadd b r (fadd b coupled (fadd b dr (fmul b v (fmul b g fac)))) in
                  store b r' slot;
                  assign b rprev r');
              let r0now = load b Types.f64 myrates in
              assign b disc (fadd b (Reg disc) r0now));
          (* payoff max(r_T - K, 0) on the short rate, discounted *)
          let rT = load b Types.f64 myrates in
          let payoff = fsub b rT k in
          let pos = fcmp b Fogt payoff (f64c 0.0) in
          let pay = select b pos payoff (f64c 0.0) in
          let df = Fmath.exp b (fmul b (f64c (-0.125)) (Reg disc)) in
          assign b sum (fadd b (Reg sum) (fmul b pay df)));
      store b (fdiv b (Reg sum) (f64c (float_of_int paths)))
        (gep b (Glob "price") sw 8));
  ret b None;
  let b, _ = func m "emit" [] in
  for_ b ~name:"sw" ~lo:(i64c 0) ~hi:(i64c nsw) (fun sw ->
      call0 b "output_f64" [ load b Types.f64 (gep b (Glob "price") sw 8) ]);
  ret b None;
  Parallel.standard_main m ~worker:"work" ~finish:(fun b -> Builder.call0 b "emit" []);
  Rtlib.link m

let init size machine =
  let nsw, _ = params size in
  let st = Data.rng 53 in
  Data.fill_f64 machine "strike" nsw (fun _ -> Data.uniform st 0.02 0.08);
  Data.fill_f64 machine "vol" nsw (fun _ -> Data.uniform st 0.05 0.3);
  Data.fill_f64 machine "r0" nsw (fun _ -> Data.uniform st 0.01 0.05);
  Data.fill_f64 machine "factors" (horizon * tenors) (fun _ -> Data.uniform st 0.05 0.15);
  Data.fill_f64 machine "drift" (horizon * tenors) (fun _ -> Data.uniform st 0.0001 0.001)

let workload =
  Workload.make ~name:"swap" ~description:"PARSEC swaptions (Monte-Carlo short-rate pricing)"
    ~build ~init ()
