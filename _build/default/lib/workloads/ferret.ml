(** PARSEC ferret: content-based similarity search.

    Each query ranks a feature-vector database by distance; the distance
    metric is selected per-entry through a function-pointer table (ferret's
    plugin architecture), exercising indirect calls, and the top-K
    insertion sort supplies the high branch-miss ratio of Table II. *)

open Ir
open Instr

let dim = 32
let topk = 8

let params = function
  | Workload.Tiny -> (4, 50)
  | Workload.Small -> (10, 200)
  | Workload.Medium -> (16, 600)
  | Workload.Large -> (32, 1_500)

let build size : modul =
  let q, db = params size in
  let m = Builder.create_module () in
  Builder.global m "queries" (q * dim * 8);
  Builder.global m "db" (db * dim * 8);
  Builder.global m "metric" (db * 8);  (* 0 = L2, 1 = L1 *)
  Builder.global m "fntab" 16;  (* two function pointers, set by the driver *)
  Builder.global m "best" (q * topk * 16);  (* (dist bits, index) *)
  let open Builder in
  (* hardened distance plugins *)
  let dist_body name combine =
    let b, ps = func m name ~ret:Types.f64 [ ("pa", Types.ptr); ("pb", Types.ptr) ] in
    let pa, pb = match ps with [ a; c ] -> (Reg a, Reg c) | _ -> assert false in
    let acc = fresh b ~name:"acc" Types.f64 in
    assign b acc (f64c 0.0);
    for_ b ~name:"c" ~lo:(i64c 0) ~hi:(i64c dim) (fun c ->
        let x = load b Types.f64 (gep b pa c 8) in
        let y = load b Types.f64 (gep b pb c 8) in
        let d = fsub b x y in
        assign b acc (fadd b (Reg acc) (combine b d)));
    ret b (Some (Reg acc))
  in
  dist_body "l2dist" (fun b d -> Builder.fmul b d d);
  dist_body "l1dist" (fun b d ->
      let open Builder in
      let neg = fcmp b Folt d (f64c 0.0) in
      select b neg (fsub b (f64c 0.0) d) d);
  (* worker: queries are chunked; for each db entry call the plugin through
     the function table, then insertion-sort into the query's top-K *)
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c q) in
  for_ b ~name:"qi" ~lo ~hi (fun qi ->
      let qbase = gep b (Glob "queries") (mul b qi (i64c dim)) 8 in
      let mybest = gep b (Glob "best") (mul b qi (i64c topk)) 16 in
      (* initialize top-K with +inf *)
      for_ b ~name:"k" ~lo:(i64c 0) ~hi:(i64c topk) (fun k ->
          let slot = gep b mybest k 16 in
          store b (Imm (Types.i64, Int64.bits_of_float infinity)) slot;
          store b (i64c (-1)) (gep b slot (i64c 1) 8));
      for_ b ~name:"e" ~lo:(i64c 0) ~hi:(i64c db) (fun e ->
          let ebase = gep b (Glob "db") (mul b e (i64c dim)) 8 in
          let mi = load b Types.i64 (gep b (Glob "metric") e 8) in
          let fp = load b Types.ptr (gep b (Glob "fntab") mi 8) in
          let d =
            match call_ind b ~ret:Types.f64 fp [ qbase; ebase ] with
            | Some v -> v
            | None -> assert false
          in
          let dbits = cast b Bitcast Types.i64 d in
          (* bubble the candidate up the sorted top-K list *)
          let cur = fresh b ~name:"cur" Types.i64 in
          let curidx = fresh b ~name:"curidx" Types.i64 in
          assign b cur dbits;
          assign b curidx e;
          for_ b ~name:"k" ~lo:(i64c 0) ~hi:(i64c topk) (fun k ->
              let slot = gep b mybest k 16 in
              let sb = load b Types.i64 slot in
              let sidx = load b Types.i64 (gep b slot (i64c 1) 8) in
              let sd = cast b Bitcast Types.f64 sb in
              let cd = cast b Bitcast Types.f64 (Reg cur) in
              if_ b (fcmp b Folt cd sd)
                ~then_:(fun () ->
                  store b (Reg cur) slot;
                  store b (Reg curidx) (gep b slot (i64c 1) 8);
                  assign b cur sb;
                  assign b curidx sidx)
                ())));
  ret b None;
  (* hardened reduce: emit the ranked indices *)
  let b, _ = func m "emit" [] in
  for_ b ~name:"qi" ~lo:(i64c 0) ~hi:(i64c q) (fun qi ->
      let s = fresh b ~name:"s" Types.i64 in
      assign b s (i64c 0);
      for_ b ~name:"k" ~lo:(i64c 0) ~hi:(i64c topk) (fun k ->
          let slot = gep b (gep b (Glob "best") (mul b qi (i64c topk)) 16) k 16 in
          let idx = load b Types.i64 (gep b slot (i64c 1) 8) in
          assign b s (add b (mul b (Reg s) (i64c 131)) idx));
      call0 b "output_i64" [ Reg s ]);
  ret b None;
  Parallel.add_globals m;
  let b, ps = func m ~hardened:false "main" [ ("nthreads", Types.i64) ] in
  let nthreads = match ps with [ p ] -> Reg p | _ -> assert false in
  store b (Fref "l2dist") (Glob "fntab");
  store b (Fref "l1dist") (gep b (Glob "fntab") (i64c 1) 8);
  Parallel.spawn_join b ~worker:"work" ~nthreads;
  call0 b "emit" [];
  ret b None;
  Rtlib.link m

let init size machine =
  let q, db = params size in
  let st = Data.rng 41 in
  Data.fill_f64 machine "queries" (q * dim) (fun _ -> Data.uniform st (-1.0) 1.0);
  Data.fill_f64 machine "db" (db * dim) (fun _ -> Data.uniform st (-1.0) 1.0);
  Data.fill_i64 machine "metric" db (fun _ -> Int64.of_int (Random.State.int st 2))

let workload =
  Workload.make ~name:"ferret"
    ~description:"PARSEC ferret (similarity search, indirect calls, top-K ranking)" ~build ~init
    ()
