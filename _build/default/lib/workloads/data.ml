(** Host-side input preparation: deterministic pseudo-random datasets poked
    directly into the simulated memory of a loaded machine. *)

let rng seed = Random.State.make [| seed; 0x5151 |]

let addr_of machine name = Cpu.Machine.global_addr machine name

let fill_i64 machine name count f =
  let base = addr_of machine name in
  for i = 0 to count - 1 do
    Cpu.Memory.write machine.Cpu.Machine.mem ~width:8
      (Int64.add base (Int64.of_int (i * 8)))
      (f i)
  done

let fill_i32 machine name count f =
  let base = addr_of machine name in
  for i = 0 to count - 1 do
    Cpu.Memory.write machine.Cpu.Machine.mem ~width:4
      (Int64.add base (Int64.of_int (i * 4)))
      (Int64.of_int (f i land 0xFFFFFFFF))
  done

let fill_f64 machine name count f =
  let base = addr_of machine name in
  for i = 0 to count - 1 do
    Cpu.Memory.write machine.Cpu.Machine.mem ~width:8
      (Int64.add base (Int64.of_int (i * 8)))
      (Int64.bits_of_float (f i))
  done

let fill_bytes machine name count f =
  let base = addr_of machine name in
  for i = 0 to count - 1 do
    Cpu.Memory.write machine.Cpu.Machine.mem ~width:1
      (Int64.add base (Int64.of_int i))
      (Int64.of_int (f i land 0xFF))
  done

let blit_string machine name s =
  Cpu.Memory.blit_string machine.Cpu.Machine.mem s (addr_of machine name)

(* Uniform random float in [lo, hi). *)
let uniform st lo hi = lo +. Random.State.float st (hi -. lo)
