(** Inline libm: straight-line double-precision kernels emitted into the
    caller (hardened musl libm, inlined).  Accuracies are a few 1e-5
    relative — enough for bit-deterministic benchmarking, not for
    production numerics. *)

val ln2 : float

(** e^x for |x| < ~700 (i32-based range reduction: the i64 conversions have
    no AVX2 encoding). *)
val exp : Ir.Builder.t -> Ir.Instr.operand -> Ir.Instr.operand

(** Natural log for x > 0. *)
val ln : Ir.Builder.t -> Ir.Instr.operand -> Ir.Instr.operand

(** Multiply-only Newton square root. *)
val sqrt : Ir.Builder.t -> Ir.Instr.operand -> Ir.Instr.operand

(** Standard normal CDF with the saturated-tail early-out branch. *)
val cndf : Ir.Builder.t -> Ir.Instr.operand -> Ir.Instr.operand
