(** PARSEC streamcluster: online k-median-style clustering — persistent
    worker threads separated by barriers (as the real benchmark is); each
    round opens one new center and every point re-evaluates its assignment
    cost against all open centers (load-dominated, low ILP, Table II). *)

open Ir
open Instr

let dim = 16
let rounds = 5

let npoints = function
  | Workload.Tiny -> 100
  | Workload.Small -> 500
  | Workload.Medium -> 1_500
  | Workload.Large -> 5_000

let build size : modul =
  let n = npoints size in
  let m = Builder.create_module () in
  Builder.global m "pts" (n * dim * 8);
  Builder.global m "cost" (n * 8);
  Builder.global m "pcost" (Parallel.max_threads * 8);
  Builder.global m "ncenters" 8;
  Builder.global m "bar1" 8;
  Builder.global m "bar2" 8;
  let open Builder in
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c n) in
  for_ b ~name:"round" ~lo:(i64c 0) ~hi:(i64c rounds) (fun _ ->
      let nc = load b Types.i64 (Glob "ncenters") in
      let total = fresh b ~name:"total" Types.f64 in
      assign b total (f64c 0.0);
      for_ b ~name:"i" ~lo ~hi (fun i ->
          let pbase = gep b (Glob "pts") (mul b i (i64c dim)) 8 in
          let best = fresh b ~name:"best" Types.f64 in
          assign b best (Fimm (Types.f64, infinity));
          (* centers are the first nc points *)
          for_ b ~name:"k" ~lo:(i64c 0) ~hi:nc (fun k ->
              let cbase = gep b (Glob "pts") (mul b k (i64c dim)) 8 in
              let d = fresh b ~name:"d" Types.f64 in
              assign b d (f64c 0.0);
              for_ b ~name:"c" ~lo:(i64c 0) ~hi:(i64c dim) (fun c ->
                  let x = load b Types.f64 (gep b pbase c 8) in
                  let y = load b Types.f64 (gep b cbase c 8) in
                  let t = fsub b x y in
                  assign b d (fadd b (Reg d) (fmul b t t)));
              let closer = fcmp b Folt (Reg d) (Reg best) in
              assign b best (select b closer (Reg d) (Reg best)));
          store b (Reg best) (gep b (Glob "cost") i 8);
          assign b total (fadd b (Reg total) (Reg best)));
      store b (Reg total) (gep b (Glob "pcost") tid 8);
      call0 b "barrier" [ Glob "bar1"; nth ];
      (* thread 0 aggregates, reports and opens the next center *)
      if_ b
        (icmp b Ieq tid (i64c 0))
        ~then_:(fun () ->
          let tot = fresh b ~name:"tot" Types.f64 in
          assign b tot (f64c 0.0);
          for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
              assign b tot (fadd b (Reg tot) (load b Types.f64 (gep b (Glob "pcost") t 8))));
          call0 b "output_f64" [ Reg tot ];
          store b (add b (load b Types.i64 (Glob "ncenters")) (i64c 1)) (Glob "ncenters"))
        ();
      call0 b "barrier" [ Glob "bar2"; nth ]);
  ret b None;
  Parallel.add_globals m;
  let b, ps = func m ~hardened:false "main" [ ("nthreads", Types.i64) ] in
  let nthreads = match ps with [ p ] -> Reg p | _ -> assert false in
  store b (i64c 1) (Glob "ncenters");
  Parallel.spawn_join b ~worker:"work" ~nthreads;
  ret b None;
  Rtlib.link m

let init size machine =
  let n = npoints size in
  let st = Data.rng 47 in
  Data.fill_f64 machine "pts" (n * dim) (fun _ -> Data.uniform st 0.0 10.0)

let workload =
  Workload.make ~name:"scluster"
    ~description:"PARSEC streamcluster (k-median rounds, persistent threads + barriers)" ~build
    ~init ()
