(** PARSEC canneal, skipped by the paper (inline assembly); extension coverage. *)

val workload : Workload.t
