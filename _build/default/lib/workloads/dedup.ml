(** PARSEC dedup: content-defined chunking (rolling hash), chunk
    fingerprinting, a global deduplication table behind one lock, and RLE
    "compression" of unique chunks.

    The global-table lock serializes threads, reproducing dedup's
    notoriously poor scalability — which partially amortizes ELZAR's
    overhead at high thread counts (paper §V-B). *)

open Ir
open Instr

let table_slots = 1024

let nbytes = function
  | Workload.Tiny -> 3_000
  | Workload.Small -> 20_000
  | Workload.Medium -> 80_000
  | Workload.Large -> 300_000

let build size : modul =
  let n = nbytes size in
  let m = Builder.create_module () in
  Builder.global m "text" n;
  Builder.global m "tab" (table_slots * 16);  (* (fingerprint, count) *)
  Builder.global m "tablock" 8;
  Builder.global m "pstats" (Parallel.max_threads * 16);  (* (chunks, compressed) *)
  let open Builder in
  (* hardened: fingerprint + dedup + compress one chunk [lo, hi) *)
  let b, ps =
    func m "handle_chunk" ~ret:Types.i64 [ ("clo", Types.i64); ("chi", Types.i64) ]
  in
  let clo, chi = match ps with [ a; b ] -> (Reg a, Reg b) | _ -> assert false in
  let fp = fresh b ~name:"fp" Types.i64 in
  assign b fp (Imm (Types.i64, 0xcbf29ce484222325L));
  for_ b ~name:"i" ~lo:clo ~hi:chi (fun i ->
      let c = zext b Types.i64 (load b Types.i8 (gep b (Glob "text") i 1)) in
      assign b fp (mul b (xor b (Reg fp) c) (Imm (Types.i64, 0x100000001b3L))));
  (* global dedup table under the global lock *)
  let fresh_chunk = fresh b ~name:"freshc" Types.i64 in
  call0 b "lock" [ Glob "tablock" ];
  let idx = fresh b ~name:"idx" Types.i64 in
  assign b idx (and_ b (Reg fp) (i64c (table_slots - 1)));
  let done_ = fresh b ~name:"done" Types.i64 in
  assign b done_ (i64c 0);
  assign b fresh_chunk (i64c 0);
  while_ b
    ~cond:(fun () -> icmp b Ieq (Reg done_) (i64c 0))
    ~body:(fun () ->
      let slot = gep b (Glob "tab") (Reg idx) 16 in
      let key = load b Types.i64 slot in
      if_ b
        (icmp b Ieq key (Reg fp))
        ~then_:(fun () ->
          let c = gep b slot (i64c 1) 8 in
          store b (add b (load b Types.i64 c) (i64c 1)) c;
          assign b done_ (i64c 1))
        ~else_:(fun () ->
          if_ b
            (icmp b Ieq key (i64c 0))
            ~then_:(fun () ->
              store b (Reg fp) slot;
              store b (i64c 1) (gep b slot (i64c 1) 8);
              assign b fresh_chunk (i64c 1);
              assign b done_ (i64c 1))
            ~else_:(fun () ->
              assign b idx (and_ b (add b (Reg idx) (i64c 1)) (i64c (table_slots - 1))))
            ())
        ());
  call0 b "unlock" [ Glob "tablock" ];
  (* "compress" unique chunks: run-length count *)
  let compressed = fresh b ~name:"comp" Types.i64 in
  assign b compressed (i64c 0);
  if_ b
    (icmp b Ine (Reg fresh_chunk) (i64c 0))
    ~then_:(fun () ->
      let prev = fresh b ~name:"prev" Types.i64 in
      assign b prev (i64c (-1));
      for_ b ~name:"i" ~lo:clo ~hi:chi (fun i ->
          let c = zext b Types.i64 (load b Types.i8 (gep b (Glob "text") i 1)) in
          let diff = icmp b Ine c (Reg prev) in
          assign b compressed (add b (Reg compressed) (zext b Types.i64 diff));
          assign b prev c))
    ();
  ret b (Some (Reg compressed));
  (* worker: roll over the slice, cutting chunks at hash boundaries *)
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c n) in
  let roll = fresh b ~name:"roll" Types.i64 in
  let start = fresh b ~name:"start" Types.i64 in
  let chunks = fresh b ~name:"chunks" Types.i64 in
  let comp = fresh b ~name:"comp" Types.i64 in
  assign b roll (i64c 0);
  assign b start lo;
  assign b chunks (i64c 0);
  assign b comp (i64c 0);
  for_ b ~name:"i" ~lo ~hi (fun i ->
      let c = zext b Types.i64 (load b Types.i8 (gep b (Glob "text") i 1)) in
      assign b roll (add b (mul b (Reg roll) (i64c 31)) c);
      let len = sub b i (Reg start) in
      let boundary =
        or_ b
          (zext b Types.i64 (icmp b Ieq (and_ b (Reg roll) (i64c 255)) (i64c 7)))
          (zext b Types.i64 (icmp b Isge len (i64c 1024)))
      in
      if_ b
        (icmp b Ine boundary (i64c 0))
        ~then_:(fun () ->
          let r = callv b ~ret:Types.i64 "handle_chunk" [ Reg start; add b i (i64c 1) ] in
          assign b comp (add b (Reg comp) r);
          assign b chunks (add b (Reg chunks) (i64c 1));
          assign b start (add b i (i64c 1));
          assign b roll (i64c 0))
        ());
  if_ b
    (icmp b Islt (Reg start) hi)
    ~then_:(fun () ->
      let r = callv b ~ret:Types.i64 "handle_chunk" [ Reg start; hi ] in
      assign b comp (add b (Reg comp) r);
      assign b chunks (add b (Reg chunks) (i64c 1)))
    ();
  let slot = gep b (Glob "pstats") tid 16 in
  store b (Reg chunks) slot;
  store b (Reg comp) (gep b slot (i64c 1) 8);
  ret b None;
  let b, ps = func m "reduce" [ ("nth", Types.i64) ] in
  let nth = match ps with [ a ] -> Reg a | _ -> assert false in
  let tc = fresh b ~name:"tc" Types.i64 and tz = fresh b ~name:"tz" Types.i64 in
  assign b tc (i64c 0);
  assign b tz (i64c 0);
  for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
      let slot = gep b (Glob "pstats") t 16 in
      assign b tc (add b (Reg tc) (load b Types.i64 slot));
      assign b tz (add b (Reg tz) (load b Types.i64 (gep b slot (i64c 1) 8))));
  call0 b "output_i64" [ Reg tc ];
  call0 b "output_i64" [ Reg tz ];
  (* table histogram checksum *)
  let chk = fresh b ~name:"chk" Types.i64 in
  assign b chk (i64c 0);
  for_ b ~name:"s" ~lo:(i64c 0) ~hi:(i64c table_slots) (fun s ->
      let slot = gep b (Glob "tab") s 16 in
      let k = load b Types.i64 slot in
      let c = load b Types.i64 (gep b slot (i64c 1) 8) in
      assign b chk (xor b (Reg chk) (add b k (mul b c (i64c 2654435761)))));
  call0 b "output_i64" [ Reg chk ];
  ret b None;
  Parallel.standard_main m ~worker:"work" ~finish:(fun b ->
      match b.Builder.func.params with
      | [ p ] -> Builder.call0 b "reduce" [ Reg p ]
      | _ -> assert false);
  Rtlib.link m

let init size machine =
  let n = nbytes size in
  let st = Data.rng 37 in
  (* repetitive data so the dedup table actually dedups *)
  let block = String.init 256 (fun _ -> Char.chr (Random.State.int st 256)) in
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    if Random.State.int st 3 = 0 then Buffer.add_string buf block
    else
      Buffer.add_string buf
        (String.init 64 (fun _ -> Char.chr (Random.State.int st 256)))
  done;
  Data.blit_string machine "text" (String.sub (Buffer.contents buf) 0 n)

let workload =
  Workload.make ~name:"dedup" ~description:"PARSEC dedup (chunking + global dedup table + RLE)"
    ~build ~init ()
