(** Inline libm: straight-line double-precision kernels emitted directly
    into the caller (the moral equivalent of the hardened musl libm, but
    inlined, so both the ELZAR pass and the auto-vectorizer see pure
    floating-point dataflow — which is exactly the regime where the paper
    finds AVX-based hardening cheap, §V-B). *)

open Ir
open Instr

let ln2 = 0.6931471805599453

let f64 = Types.f64
let i64 = Types.i64

(* e^x for |x| < ~700, ~1e-7 relative accuracy: range reduction by ln 2 and
   a 6th-order Horner polynomial, with 2^k assembled by exponent-field
   arithmetic.  The float<->int conversions go through i32 (cvttpd2dq /
   cvtdq2pd exist in AVX2; the i64 forms do not and would scalarize). *)
let exp (b : Builder.t) (x : operand) : operand =
  let open Builder in
  let k32 = fptosi b Types.i32 (fmul b x (f64c (1.0 /. ln2))) in
  let k = sext b i64 k32 in
  let r = fsub b x (fmul b (sitofp b f64 k32) (f64c ln2)) in
  (* Estrin-style evaluation: the two halves of the polynomial are
     independent chains, keeping native ILP high *)
  let r2 = fmul b r r in
  let low = fadd b (f64c 1.0) (fadd b r (fmul b r2 (f64c 0.5))) in
  let hi = fmul b (fmul b r2 r) (fadd b (f64c (1.0 /. 6.0)) (fmul b r (f64c (1.0 /. 24.0)))) in
  let p = fadd b low hi in
  let ebits = shl b (add b k (i64c 1023)) (i64c 52) in
  let e2k = cast b Bitcast f64 ebits in
  fmul b p e2k

(* ln x for x > 0: exponent/mantissa split and the atanh series. *)
let ln (b : Builder.t) (x : operand) : operand =
  let open Builder in
  let bits = cast b Bitcast i64 x in
  let e = sub b (lshr b bits (i64c 52)) (i64c 1023) in
  let mant =
    or_ b (and_ b bits (Imm (i64, 0xFFFFFFFFFFFFFL))) (Imm (i64, 0x3FF0000000000000L))
  in
  let msc = cast b Bitcast f64 mant in
  let t = fdiv b (fsub b msc (f64c 1.0)) (fadd b msc (f64c 1.0)) in
  let t2 = fmul b t t in
  (* 2t(1 + t^2/3 + t^4/5 + t^6/7) *)
  let s = ref (f64c (1.0 /. 7.0)) in
  List.iter
    (fun c -> s := fadd b (f64c c) (fmul b t2 !s))
    [ 1.0 /. 5.0; 1.0 /. 3.0; 1.0 ];
  let lnm = fmul b (fmul b (f64c 2.0) t) !s in
  fadd b lnm (fmul b (sitofp b f64 e) (f64c ln2))

(* sqrt x = x * rsqrt(x): the reciprocal square root starts from the
   classic bit-hack guess and takes multiply-only Newton steps
   (y' = y(1.5 - 0.5 x y^2)), as vectorized code does to avoid divides. *)
let sqrt (b : Builder.t) (x : operand) : operand =
  let open Builder in
  let bits = cast b Bitcast i64 x in
  let gbits = sub b (Imm (i64, 0x5FE6EB50C7B537A9L)) (lshr b bits (i64c 1)) in
  let y = ref (cast b Bitcast f64 gbits) in
  let half_x = fmul b (f64c 0.5) x in
  for _ = 1 to 4 do
    let y2 = fmul b !y !y in
    y := fmul b !y (fsub b (f64c 1.5) (fmul b half_x y2))
  done;
  fmul b x !y

(* Standard normal CDF (Abramowitz & Stegun 7.1.26 flavour, as in PARSEC's
   blackscholes), with the usual tail early-out branch: beyond six standard
   deviations the CDF saturates and the polynomial is skipped. *)
let cndf (b : Builder.t) (x : operand) : operand =
  let open Builder in
  let neg = fcmp b Folt x (f64c 0.0) in
  let ax = select b neg (fsub b (f64c 0.0) x) x in
  let res = fresh b ~name:"cdf" Types.f64 in
  if_ b
    (fcmp b Fogt ax (f64c 6.0))
    ~then_:(fun () -> assign b res (f64c 1.0))
    ~else_:(fun () ->
      let k = fdiv b (f64c 1.0) (fadd b (f64c 1.0) (fmul b (f64c 0.2316419) ax)) in
      let poly = ref (f64c 1.330274429) in
      List.iter
        (fun c -> poly := fadd b (f64c c) (fmul b k !poly))
        [ -1.821255978; 1.781477937; -0.356563782; 0.319381530 ];
      let poly = fmul b k !poly in
      let pdf =
        fmul b (f64c 0.3989422804014327) (exp b (fmul b (f64c (-0.5)) (fmul b ax ax)))
      in
      assign b res (fsub b (f64c 1.0) (fmul b pdf poly)))
    ();
  select b neg (fsub b (f64c 1.0) (Reg res)) (Reg res)
