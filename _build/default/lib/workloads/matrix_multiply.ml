(** Phoenix matrix multiply: naive row-major times column-stride matmul,
    C(m x n) = A(m x K) * B(K x n), rows of C split across threads.

    K is large and n*8 spans two cache lines, so the walk down B's columns
    thrashes L1 even past the next-line prefetcher — reproducing the 62%
    L1-miss ratio of Table II that makes mmul the paper's best ELZAR case
    (~1.1x): the core spends its time waiting for memory, not executing
    the extra AVX instructions. *)

open Ir
open Instr

(* (m, n, K) *)
let dims = function
  | Workload.Tiny -> (8, 16, 128)
  | Workload.Small -> (12, 16, 320)
  | Workload.Medium -> (16, 16, 512)
  | Workload.Large -> (32, 16, 1024)

let build size : modul =
  let mrows, ncols, kdim = dims size in
  let m = Builder.create_module () in
  Builder.global m "A" (mrows * kdim * 8);
  Builder.global m "B" (kdim * ncols * 8);
  Builder.global m "C" (mrows * ncols * 8);
  let open Builder in
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c mrows) in
  for_ b ~name:"i" ~lo ~hi (fun i ->
      let arow = mul b i (i64c kdim) in
      for_ b ~name:"j" ~lo:(i64c 0) ~hi:(i64c ncols) (fun j ->
          let acc = fresh b ~name:"acc" Types.i64 in
          assign b acc (i64c 0);
          for_ b ~name:"k" ~lo:(i64c 0) ~hi:(i64c kdim) (fun k ->
              let a = load b Types.i64 (gep b (Glob "A") (add b arow k) 8) in
              let bb =
                load b Types.i64 (gep b (Glob "B") (add b (mul b k (i64c ncols)) j) 8)
              in
              assign b acc (add b (Reg acc) (mul b a bb)));
          store b (Reg acc) (gep b (Glob "C") (add b (mul b i (i64c ncols)) j) 8)));
  ret b None;
  (* hardened: emit one checksum per row of C *)
  let b, _ = func m "emit" [] in
  for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c mrows) (fun i ->
      let s = fresh b ~name:"s" Types.i64 in
      assign b s (i64c 0);
      for_ b ~name:"j" ~lo:(i64c 0) ~hi:(i64c ncols) (fun j ->
          let v = load b Types.i64 (gep b (Glob "C") (add b (mul b i (i64c ncols)) j) 8) in
          assign b s (add b (Reg s) (xor b v (shl b v (i64c 13)))));
      call0 b "output_i64" [ Reg s ]);
  ret b None;
  Parallel.standard_main m ~worker:"work" ~finish:(fun b -> Builder.call0 b "emit" []);
  Rtlib.link m

let init size machine =
  let mrows, ncols, kdim = dims size in
  let st = Data.rng 17 in
  Data.fill_i64 machine "A" (mrows * kdim) (fun _ -> Int64.of_int (Random.State.int st 100));
  Data.fill_i64 machine "B" (kdim * ncols) (fun _ -> Int64.of_int (Random.State.int st 100))

let workload =
  Workload.make ~name:"mmul" ~fi_ok:false
    ~description:"Phoenix matrix multiply (column-stride B, memory-bound)" ~build ~init ()
