(** Phoenix histogram: bucket counts over a byte image.

    Per-thread private histograms in memory (load+increment+store per
    pixel), merged by a hardened reduce step — the benchmark with the
    highest memory-access fraction in Table II (53% loads, 27% stores),
    and the paper's worst SDC case for ELZAR because of the address
    extraction window before each of those accesses (§V-C). *)

open Ir
open Instr

let npixels = function
  | Workload.Tiny -> 3_000
  | Workload.Small -> 20_000
  | Workload.Medium -> 120_000
  | Workload.Large -> 500_000

let buckets = 256

let build size : modul =
  let n = npixels size in
  let m = Builder.create_module () in
  Builder.global m "img" n;
  Builder.global m "hists" (Parallel.max_threads * buckets * 8);
  (* worker: count the pixels of one slice into a private histogram *)
  let b, ps = Builder.func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let open Builder in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c n) in
  let mine = gep b (Glob "hists") tid (buckets * 8) in
  for_ b ~name:"i" ~lo ~hi (fun i ->
      let px = load b Types.i8 (gep b (Glob "img") i 1) in
      let v = zext b Types.i64 px in
      let slot = gep b mine v 8 in
      let c = load b Types.i64 slot in
      store b (add b c (i64c 1)) slot);
  ret b None;
  (* hardened reduce: merge per-thread histograms and emit every bucket *)
  let b, ps = Builder.func m "reduce" [ ("nth", Types.i64) ] in
  let nth = match ps with [ a ] -> Reg a | _ -> assert false in
  for_ b ~name:"k" ~lo:(i64c 0) ~hi:(i64c buckets) (fun k ->
      let s = fresh b ~name:"s" Types.i64 in
      assign b s (i64c 0);
      for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
          let base = gep b (Glob "hists") t (buckets * 8) in
          let v = load b Types.i64 (gep b base k 8) in
          assign b s (add b (Reg s) v));
      call0 b "output_i64" [ Reg s ]);
  ret b None;
  Parallel.standard_main m ~worker:"work" ~finish:(fun b ->
      match b.Builder.func.params with
      | [ p ] -> Builder.call0 b "reduce" [ Reg p ]
      | _ -> assert false);
  Rtlib.link m

let init size machine =
  let st = Data.rng 7 in
  Data.fill_bytes machine "img" (npixels size) (fun _ -> Random.State.int st 256)

let workload =
  Workload.make ~name:"hist" ~description:"Phoenix histogram (byte image bucket counts)"
    ~build ~init ()
