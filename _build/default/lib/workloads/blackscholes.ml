(** PARSEC blackscholes: Black-Scholes option pricing over SoA arrays with
    the CNDF/exp/ln/sqrt kernels inlined from the hardened libm.

    47% of instructions are floating-point (per the PARSEC characterization
    the paper cites); with few loads and branches this is ELZAR's best
    PARSEC case and the headline example for floats-only protection
    (§V-B: 9-35% overhead). *)

open Ir
open Instr

let params = function
  | Workload.Tiny -> (100, 1)
  | Workload.Small -> (500, 2)
  | Workload.Medium -> (2_000, 3)
  | Workload.Large -> (8_000, 3)

let build size : modul =
  let n, reps = params size in
  let m = Builder.create_module () in
  List.iter (fun g -> Builder.global m g (n * 8)) [ "spot"; "strike"; "rate"; "vol"; "time"; "otype"; "price" ];
  Builder.global m "psum" (Parallel.max_threads * 8);
  let open Builder in
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c n) in
  let acc = fresh b ~name:"acc" Types.f64 in
  assign b acc (f64c 0.0);
  for_ b ~name:"i" ~lo ~hi (fun i ->
      (* NUM_RUNS repetitions per option, reloading the inputs each time,
         as the PARSEC kernel does *)
      for_ b ~name:"rep" ~lo:(i64c 0) ~hi:(i64c reps) (fun _ ->
          let ld g = load b Types.f64 (gep b (Glob g) i 8) in
          let s = ld "spot" and k = ld "strike" and r = ld "rate" in
          let v = ld "vol" and t = ld "time" in
          let oty = load b Types.i64 (gep b (Glob "otype") i 8) in
          let sqrt_t = Fmath.sqrt b t in
          let vsq = fmul b v sqrt_t in
          let d1 =
            fadd b
              (fdiv b (Fmath.ln b (fdiv b s k)) vsq)
              (fmul b (fdiv b (fadd b r (fmul b (f64c 0.5) (fmul b v v))) v) sqrt_t)
          in
          let d2 = fsub b d1 vsq in
          let kexp = fmul b k (Fmath.exp b (fmul b (fsub b (f64c 0.0) r) t)) in
          let call_price =
            fsub b (fmul b s (Fmath.cndf b d1)) (fmul b kexp (Fmath.cndf b d2))
          in
          let price = fresh b ~name:"price" Types.f64 in
          if_ b
            (icmp b Ieq oty (i64c 1))
            ~then_:(fun () ->
              (* put via parity: P = C - S + K e^{-rT} *)
              assign b price (fadd b (fsub b call_price s) kexp))
            ~else_:(fun () -> assign b price call_price)
            ();
          store b (Reg price) (gep b (Glob "price") i 8);
          assign b acc (fadd b (Reg acc) (Reg price))));
  store b (Reg acc) (gep b (Glob "psum") tid 8);
  ret b None;
  let b, ps = func m "reduce" [ ("nth", Types.i64) ] in
  let nth = match ps with [ a ] -> Reg a | _ -> assert false in
  let tot = fresh b ~name:"tot" Types.f64 in
  assign b tot (f64c 0.0);
  for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
      assign b tot (fadd b (Reg tot) (load b Types.f64 (gep b (Glob "psum") t 8))));
  call0 b "output_f64" [ Reg tot ];
  (* a few individual prices to widen the SDC surface *)
  for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c (min n 32)) (fun i ->
      call0 b "output_f64" [ load b Types.f64 (gep b (Glob "price") i 8) ]);
  ret b None;
  Parallel.standard_main m ~worker:"work" ~finish:(fun b ->
      match b.Builder.func.params with
      | [ p ] -> Builder.call0 b "reduce" [ Reg p ]
      | _ -> assert false);
  Rtlib.link m

let init size machine =
  let n, _ = params size in
  let st = Data.rng 31 in
  Data.fill_f64 machine "spot" n (fun _ -> Data.uniform st 20.0 120.0);
  Data.fill_f64 machine "strike" n (fun _ -> Data.uniform st 20.0 120.0);
  Data.fill_f64 machine "rate" n (fun _ -> Data.uniform st 0.01 0.08);
  Data.fill_f64 machine "vol" n (fun _ -> Data.uniform st 0.1 0.6);
  Data.fill_f64 machine "time" n (fun _ -> Data.uniform st 0.2 2.0);
  Data.fill_i64 machine "otype" n (fun _ -> Int64.of_int (Random.State.int st 2))

let workload =
  Workload.make ~name:"black" ~description:"PARSEC blackscholes (FP-heavy option pricing)"
    ~build ~init ()
