(** Microbenchmarks of Table IV (§VII-A): saturate one instruction class to
    measure ELZAR's wrapper costs in isolation.  [avg] interleaves ALU work
    between probed instructions; [worst] issues them back to back. *)

val loads_avg : Workload.t
val loads_worst : Workload.t
val stores_avg : Workload.t
val stores_worst : Workload.t
val branches_avg : Workload.t
val branches_worst : Workload.t
val trunc_avg : Workload.t
val trunc_worst : Workload.t
val div_avg : Workload.t
val div_worst : Workload.t
val calls_avg : Workload.t
val calls_worst : Workload.t
val all : Workload.t list
