(** Phoenix kmeans: iterative integer k-means.

    Assignment is branchless (compare+select) over squared distances; the
    centroid recomputation uses integer division, which has no AVX
    counterpart and exercises ELZAR's scalarization fallback (§III-C
    "ELZAR falls back ... integer division and modulo").  The multiply-heavy
    inner loop is also why enabling SIMD vectorization makes the native
    build *slower* (Fig. 1 footnote: compilers' rough cost models). *)

open Ir
open Instr

(* Phoenix kmeans clusters 3-d points by default; with VF = 4 the
   vectorized inner loop never executes, leaving only its overhead — the
   "suboptimal instruction sequences" of the paper's Fig. 1 footnote. *)
let dim = 3
let nclusters = 8

let params = function
  | Workload.Tiny -> (300, 2)
  | Workload.Small -> (1_500, 4)
  | Workload.Medium -> (4_500, 5)
  | Workload.Large -> (14_000, 5)

let build size : modul =
  let n, iters = params size in
  let m = Builder.create_module () in
  Builder.global m "pts" (n * dim * 4);
  Builder.global m "cent" (nclusters * dim * 4);
  Builder.global m "asgn" (n * 8);
  Builder.global m "psum" (Parallel.max_threads * nclusters * dim * 8);
  Builder.global m "pcnt" (Parallel.max_threads * nclusters * 8);
  let open Builder in
  (* worker: assign each point of the slice to its nearest centroid and
     accumulate per-thread partial sums *)
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c n) in
  let mysum = gep b (Glob "psum") tid (nclusters * dim * 8) in
  let mycnt = gep b (Glob "pcnt") tid (nclusters * 8) in
  for_ b ~name:"i" ~lo ~hi (fun i ->
      let pbase = mul b i (i64c dim) in
      let best = fresh b ~name:"best" Types.i64 in
      let bestj = fresh b ~name:"bestj" Types.i64 in
      assign b best (Imm (Types.i64, Int64.max_int));
      assign b bestj (i64c 0);
      for_ b ~name:"j" ~lo:(i64c 0) ~hi:(i64c nclusters) (fun j ->
          let dist = fresh b ~name:"dist" Types.i64 in
          assign b dist (i64c 0);
          let cbase = mul b j (i64c dim) in
          for_ b ~name:"c" ~lo:(i64c 0) ~hi:(i64c dim) (fun c ->
              let p = load b Types.i32 (gep b (Glob "pts") (add b pbase c) 4) in
              let q = load b Types.i32 (gep b (Glob "cent") (add b cbase c) 4) in
              let d = sub b p q in
              let d2 = mul b d d in
              assign b dist (add b (Reg dist) (zext b Types.i64 d2)));
          let better = icmp b Islt (Reg dist) (Reg best) in
          assign b best (select b better (Reg dist) (Reg best));
          assign b bestj (select b better j (Reg bestj)));
      store b (Reg bestj) (gep b (Glob "asgn") i 8);
      let sbase = mul b (Reg bestj) (i64c dim) in
      for_ b ~name:"c" ~lo:(i64c 0) ~hi:(i64c dim) (fun c ->
          let slot = gep b mysum (add b sbase c) 8 in
          let p = load b Types.i32 (gep b (Glob "pts") (add b pbase c) 4) in
          let v = load b Types.i64 slot in
          store b (add b v (zext b Types.i64 p)) slot);
      let cslot = gep b mycnt (Reg bestj) 8 in
      let cv = load b Types.i64 cslot in
      store b (add b cv (i64c 1)) cslot);
  ret b None;
  (* hardened recompute: merge partials and divide (integer division!) *)
  let b, ps = func m "recompute" [ ("nth", Types.i64) ] in
  let nth = match ps with [ a ] -> Reg a | _ -> assert false in
  for_ b ~name:"j" ~lo:(i64c 0) ~hi:(i64c nclusters) (fun j ->
      let cnt = fresh b ~name:"cnt" Types.i64 in
      assign b cnt (i64c 0);
      for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
          let base = gep b (Glob "pcnt") t (nclusters * 8) in
          let v = load b Types.i64 (gep b base j 8) in
          assign b cnt (add b (Reg cnt) v));
      let denom = select b (icmp b Ieq (Reg cnt) (i64c 0)) (i64c 1) (Reg cnt) in
      for_ b ~name:"c" ~lo:(i64c 0) ~hi:(i64c dim) (fun c ->
          let s = fresh b ~name:"s" Types.i64 in
          assign b s (i64c 0);
          let off = add b (mul b j (i64c dim)) c in
          for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
              let base = gep b (Glob "psum") t (nclusters * dim * 8) in
              let v = load b Types.i64 (gep b base off 8) in
              assign b s (add b (Reg s) v));
          let mean = sdiv b (Reg s) denom in
          store b (trunc b Types.i32 mean) (gep b (Glob "cent") off 4)));
  ret b None;
  (* hardened zeroing of the partials between iterations *)
  let b, _ = func m "clear_partials" [] in
  call0 b "bzero" [ Glob "psum"; i64c (Parallel.max_threads * nclusters * dim * 8) ];
  call0 b "bzero" [ Glob "pcnt"; i64c (Parallel.max_threads * nclusters * 8) ];
  ret b None;
  (* hardened output of the final centroids *)
  let b, _ = func m "emit" [] in
  for_ b ~name:"o" ~lo:(i64c 0) ~hi:(i64c (nclusters * dim)) (fun o ->
      let v = load b Types.i32 (gep b (Glob "cent") o 4) in
      call0 b "output_i64" [ zext b Types.i64 v ]);
  ret b None;
  (* unhardened driver: iterate assign / recompute *)
  Parallel.add_globals m;
  let b, ps = func m ~hardened:false "main" [ ("nthreads", Types.i64) ] in
  let nthreads = match ps with [ p ] -> Reg p | _ -> assert false in
  for_ b ~name:"iter" ~lo:(i64c 0) ~hi:(i64c iters) (fun _ ->
      call0 b "clear_partials" [];
      Parallel.spawn_join b ~worker:"work" ~nthreads;
      call0 b "recompute" [ nthreads ]);
  call0 b "emit" [];
  ret b None;
  Rtlib.link m

let init size machine =
  let n, _ = params size in
  let st = Data.rng 11 in
  Data.fill_i32 machine "pts" (n * dim) (fun _ -> Random.State.int st 1000);
  (* initial centroids: the first k points *)
  let base = Data.addr_of machine "pts" in
  let cbase = Data.addr_of machine "cent" in
  for i = 0 to (nclusters * dim) - 1 do
    let v = Cpu.Memory.read machine.Cpu.Machine.mem ~width:4 (Int64.add base (Int64.of_int (i * 4))) in
    Cpu.Memory.write machine.Cpu.Machine.mem ~width:4 (Int64.add cbase (Int64.of_int (i * 4))) v
  done

let workload =
  Workload.make ~name:"km" ~description:"Phoenix kmeans (integer k-means clustering)" ~build
    ~init ()
