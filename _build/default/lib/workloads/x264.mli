(** PARSEC x264 SAD motion-estimation kernel. *)

val workload : Workload.t
