(** Builder combinators for the fork-join structure every benchmark
    shares: an unhardened driver spawns workers over a hardened kernel and
    joins them. *)

val max_threads : int

(** Adds the per-worker argument blocks and spawn-handle globals. *)
val add_globals : Ir.Instr.modul -> unit

(** Emits the spawn/join loops into the current block; [worker] must have
    signature (ptr) -> void. *)
val spawn_join : Ir.Builder.t -> worker:string -> nthreads:Ir.Instr.operand -> unit

(** Reads (tid, nthreads) back inside a worker from its argument block. *)
val worker_ids : Ir.Builder.t -> Ir.Instr.operand -> Ir.Instr.operand * Ir.Instr.operand

(** [lo, hi) slice of [total] items owned by worker [tid] of [nthreads]. *)
val chunk :
  Ir.Builder.t ->
  tid:Ir.Instr.operand ->
  nthreads:Ir.Instr.operand ->
  total:Ir.Instr.operand ->
  Ir.Instr.operand * Ir.Instr.operand

(** The standard driver: main(nthreads) spawns [worker], joins, runs
    [finish]. *)
val standard_main :
  Ir.Instr.modul -> worker:string -> finish:(Ir.Builder.t -> unit) -> unit
