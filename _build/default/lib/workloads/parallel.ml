(** Builder combinators for the fork-join structure every benchmark shares:
    an unhardened driver spawns [nthreads] workers over a hardened kernel
    function, passes each a small argument block, and joins them. *)

open Ir
open Instr

let max_threads = 16

(* Per-worker argument blocks (tid, nthreads) and the spawn handles. *)
let add_globals (m : modul) =
  Builder.global m "z.targs" (max_threads * 16);
  Builder.global m "z.tids" (max_threads * 8)

(* Emits the spawn/join loops into the current block of [b] (the unhardened
   driver).  [worker] must have signature (ptr) -> void. *)
let spawn_join (b : Builder.t) ~(worker : string) ~(nthreads : operand) =
  let open Builder in
  for_ b ~name:"t" ~lo:(i64c 0) ~hi:nthreads (fun t ->
      let slot = gep b (Glob "z.targs") t 16 in
      store b t slot;
      store b nthreads (gep b slot (i64c 1) 8);
      let tid = callv b ~ret:Types.i64 "spawn" [ Fref worker; slot ] in
      store b tid (gep b (Glob "z.tids") t 8));
  for_ b ~name:"t" ~lo:(i64c 0) ~hi:nthreads (fun t ->
      let tid = load b Types.i64 (gep b (Glob "z.tids") t 8) in
      call0 b "join" [ tid ])

(* Reads (tid, nthreads) back inside a worker whose single parameter is the
   argument block pointer. *)
let worker_ids (b : Builder.t) (arg : operand) : operand * operand =
  let open Builder in
  let tid = load b Types.i64 arg in
  let n = load b Types.i64 (gep b arg (i64c 1) 8) in
  (tid, n)

(* [lo, hi) slice of [total] items owned by worker [tid] of [n]. *)
let chunk (b : Builder.t) ~(tid : operand) ~(nthreads : operand) ~(total : operand) :
    operand * operand =
  let open Builder in
  let per = sdiv b total nthreads in
  let lo = mul b tid per in
  let next = add b tid (i64c 1) in
  let is_last = icmp b Ieq next nthreads in
  let hi = select b is_last total (mul b next per) in
  (lo, hi)

(* The standard driver: main(nthreads) spawns [worker], joins, then runs
   [finish] (e.g. merging per-thread partials and emitting output). *)
let standard_main (m : modul) ~(worker : string) ~(finish : Builder.t -> unit) =
  add_globals m;
  let b, params = Builder.func m ~hardened:false "main" [ ("nthreads", Types.i64) ] in
  let nthreads = match params with [ p ] -> Reg p | _ -> assert false in
  spawn_join b ~worker ~nthreads;
  finish b;
  Builder.ret b None
