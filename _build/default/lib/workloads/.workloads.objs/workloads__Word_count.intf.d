lib/workloads/word_count.mli: Workload
