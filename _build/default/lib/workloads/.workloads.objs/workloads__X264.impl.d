lib/workloads/x264.ml: Array Builder Data Instr Int64 Ir Parallel Random Rtlib Types Workload
