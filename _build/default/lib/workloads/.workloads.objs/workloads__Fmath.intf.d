lib/workloads/fmath.mli: Ir
