lib/workloads/fluidanimate.ml: Array Builder Data Instr Int64 Ir Parallel Random Rtlib Types Workload
