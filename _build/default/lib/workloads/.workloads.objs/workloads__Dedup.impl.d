lib/workloads/dedup.ml: Buffer Builder Char Data Instr Ir Parallel Random Rtlib String Types Workload
