lib/workloads/ferret.ml: Builder Data Instr Int64 Ir Parallel Random Rtlib Types Workload
