lib/workloads/workload.ml: Cpu Elzar Fault Int64 Ir
