lib/workloads/workload.mli: Cpu Elzar Fault Ir
