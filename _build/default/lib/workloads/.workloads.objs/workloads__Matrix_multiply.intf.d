lib/workloads/matrix_multiply.mli: Workload
