lib/workloads/kmeans.mli: Workload
