lib/workloads/word_count.ml: Array Buffer Builder Char Data Instr Ir Parallel Random Rtlib String Types Workload
