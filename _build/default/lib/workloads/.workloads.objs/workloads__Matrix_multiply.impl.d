lib/workloads/matrix_multiply.ml: Builder Data Instr Int64 Ir Parallel Random Rtlib Types Workload
