lib/workloads/linear_regression.mli: Workload
