lib/workloads/pca.ml: Builder Data Instr Ir Parallel Random Rtlib Types Workload
