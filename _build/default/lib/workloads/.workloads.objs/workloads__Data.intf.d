lib/workloads/data.mli: Cpu Random
