lib/workloads/streamcluster.ml: Builder Data Instr Ir Parallel Rtlib Types Workload
