lib/workloads/string_match.ml: Array Builder Char Data Instr Ir List Parallel Random Rtlib String Types Workload
