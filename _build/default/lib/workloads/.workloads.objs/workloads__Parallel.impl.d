lib/workloads/parallel.ml: Builder Instr Ir Types
