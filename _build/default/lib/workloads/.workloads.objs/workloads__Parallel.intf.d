lib/workloads/parallel.mli: Ir
