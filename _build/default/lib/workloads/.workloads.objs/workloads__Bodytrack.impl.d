lib/workloads/bodytrack.ml: Builder Data Fmath Instr Int64 Ir Parallel Rtlib Types Workload
