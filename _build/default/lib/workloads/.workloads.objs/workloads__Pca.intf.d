lib/workloads/pca.mli: Workload
