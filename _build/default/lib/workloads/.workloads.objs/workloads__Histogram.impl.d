lib/workloads/histogram.ml: Builder Data Instr Ir Parallel Random Rtlib Types Workload
