lib/workloads/linear_regression.ml: Array Builder Data Instr Int64 Ir List Parallel Random Rtlib Types Workload
