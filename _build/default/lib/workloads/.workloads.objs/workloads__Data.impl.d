lib/workloads/data.ml: Cpu Int64 Random
