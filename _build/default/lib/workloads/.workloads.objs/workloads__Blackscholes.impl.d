lib/workloads/blackscholes.ml: Builder Data Fmath Instr Int64 Ir List Parallel Random Rtlib Types Workload
