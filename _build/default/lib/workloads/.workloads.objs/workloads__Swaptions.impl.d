lib/workloads/swaptions.ml: Builder Data Fmath Instr Ir Parallel Rtlib Types Workload
