lib/workloads/kmeans.ml: Builder Cpu Data Instr Int64 Ir Parallel Random Rtlib Types Workload
