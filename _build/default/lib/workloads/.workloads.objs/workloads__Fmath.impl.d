lib/workloads/fmath.ml: Builder Instr Ir List Types
