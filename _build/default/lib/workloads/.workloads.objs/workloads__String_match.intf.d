lib/workloads/string_match.mli: Workload
