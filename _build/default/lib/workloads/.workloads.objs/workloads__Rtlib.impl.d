lib/workloads/rtlib.ml: Builder Instr Ir Linker Types
