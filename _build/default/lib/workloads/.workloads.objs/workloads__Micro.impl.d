lib/workloads/micro.ml: Builder Data Instr Int64 Ir Parallel Rtlib Types Workload
