lib/workloads/rtlib.mli: Ir
