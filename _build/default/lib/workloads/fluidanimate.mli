(** fluidanimate benchmark kernel (see the .ml for the modelling notes). *)

val workload : Workload.t
