(** Phoenix linear regression: one streaming pass accumulating the five
    moment sums over an array of (x, y) structs.

    The highest-ILP benchmark of Table II (independent accumulator chains);
    the array-of-structs layout (stride 16) keeps the auto-vectorizer out,
    as the real benchmark's memory-bandwidth ceiling does. *)

open Ir
open Instr

let npoints = function
  | Workload.Tiny -> 2_000
  | Workload.Small -> 20_000
  | Workload.Medium -> 100_000
  | Workload.Large -> 400_000

let build size : modul =
  let n = npoints size in
  let m = Builder.create_module () in
  Builder.global m "pts" (n * 16);
  Builder.global m "parts" (Parallel.max_threads * 5 * 8);
  let open Builder in
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, nth = Parallel.worker_ids b arg in
  let lo, hi = Parallel.chunk b ~tid ~nthreads:nth ~total:(i64c n) in
  let sx = fresh b ~name:"sx" Types.i64
  and sy = fresh b ~name:"sy" Types.i64
  and sxx = fresh b ~name:"sxx" Types.i64
  and syy = fresh b ~name:"syy" Types.i64
  and sxy = fresh b ~name:"sxy" Types.i64 in
  List.iter (fun r -> assign b r (i64c 0)) [ sx; sy; sxx; syy; sxy ];
  for_ b ~name:"i" ~lo ~hi (fun i ->
      let px = gep b (Glob "pts") i 16 in
      let x = load b Types.i64 px in
      let y = load b Types.i64 (gep b px (i64c 1) 8) in
      assign b sx (add b (Reg sx) x);
      assign b sy (add b (Reg sy) y);
      assign b sxx (add b (Reg sxx) (mul b x x));
      assign b syy (add b (Reg syy) (mul b y y));
      assign b sxy (add b (Reg sxy) (mul b x y)));
  let base = gep b (Glob "parts") tid 40 in
  List.iteri
    (fun k r -> store b (Reg r) (gep b base (i64c k) 8))
    [ sx; sy; sxx; syy; sxy ];
  ret b None;
  (* hardened reduce: merge partials, output the sums and the fitted line *)
  let b, ps = func m "reduce" [ ("nth", Types.i64) ] in
  let nth = match ps with [ a ] -> Reg a | _ -> assert false in
  let tot = Array.init 5 (fun _ -> fresh b ~name:"tot" Types.i64) in
  Array.iter (fun r -> assign b r (i64c 0)) tot;
  for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
      let base = gep b (Glob "parts") t 40 in
      Array.iteri
        (fun k r ->
          let v = load b Types.i64 (gep b base (i64c k) 8) in
          assign b r (add b (Reg r) v))
        tot);
  Array.iter (fun r -> call0 b "output_i64" [ Reg r ]) tot;
  (* slope = (n*sxy - sx*sy) / (n*sxx - sx^2) in floating point *)
  let f k = sitofp b Types.f64 (Reg tot.(k)) in
  let nf = f64c (float_of_int n) in
  let num = fsub b (fmul b nf (f 4)) (fmul b (f 0) (f 1)) in
  let den = fsub b (fmul b nf (f 2)) (fmul b (f 0) (f 0)) in
  call0 b "output_f64" [ fdiv b num den ];
  ret b None;
  Parallel.standard_main m ~worker:"work" ~finish:(fun b ->
      match b.Builder.func.params with
      | [ p ] -> Builder.call0 b "reduce" [ Reg p ]
      | _ -> assert false);
  Rtlib.link m

let init size machine =
  let st = Data.rng 13 in
  Data.fill_i64 machine "pts" (npoints size * 2) (fun _ ->
      Int64.of_int (Random.State.int st 500))

let workload =
  Workload.make ~name:"linreg" ~description:"Phoenix linear regression (moment sums)" ~build
    ~init ()
