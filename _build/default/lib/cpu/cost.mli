(** Haswell-flavoured micro-operation cost model: every IR instruction
    lowers to a short μop array with latencies, allowed execution ports and
    reciprocal throughputs.  Only relative costs matter (the simulator
    reports normalized ratios): in particular scalar vs. AVX ops, and the
    extract/broadcast/ptest wrappers that dominate ELZAR's overhead
    (paper §VII-A). *)

(** {1 Port bitmasks (Haswell p0..p7)} *)

val p0 : int
val p1 : int
val p2 : int
val p3 : int
val p4 : int
val p5 : int
val p6 : int
val p7 : int
val p01 : int
val p06 : int
val p15 : int
val p23 : int
val p237 : int
val p0156 : int
val nports : int

type mem = Mnone | Mload | Mstore

type uop = {
  lat : int;  (** result latency; for loads, the L1-hit latency *)
  ports : int;  (** bitmask of ports this μop may issue on *)
  rt : int;  (** cycles the chosen port stays busy *)
  chain : bool;  (** depends on the previous μop of the same instruction *)
  mem : mem;
}

val u : ?rt:int -> ?chain:bool -> ?mem:mem -> int -> int -> uop

(** {1 Reference μops} (exposed for the timing tests) *)

val alu : uop
val imul : uop
val idiv : uop
val fadd_u : uop
val fmul_u : uop
val fdiv_u : uop
val load_u : uop
val jcc : uop
val valu : uop
val vmul : uop
val vfadd : uop
val vfmul : uop
val vfdiv : uop
val vshuf : uop

val mispredict_penalty : int

(** Cycles one L1 miss occupies the per-core memory pipe (~5.8 GB/s
    sustained at the 2 GHz clock). *)
val membus_rt : int

(** A vector operation with no AVX2 encoding is scalarized by the code
    generator: per lane, extract + scalar op + insert (paper §IV-A). *)
val scalarized : int -> uop -> uop array

val is_avx : Ir.Instr.t -> bool

(** μop lowering of one IR instruction. *)
val of_instr : Ir.Instr.t -> uop array

(** μop lowering of a terminator.  [Vbr] is the AVX branching sequence of
    the paper's Figs. 7/9 (vptest + je + ja); with [flags_cmp] (the
    proposed FLAGS-setting AVX comparison of §VII-B) the ptest disappears. *)
val of_term : ?flags_cmp:bool -> Ir.Instr.terminator -> uop array
