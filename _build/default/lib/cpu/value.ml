(** Bit-level value semantics.

    Every runtime value is an array of 64-bit lanes: scalars use one lane,
    vectors one lane per element.  Lanes hold the value's raw bits in
    canonical zero-extended form (floats as their IEEE-754 encoding), which
    makes single-bit-flip fault injection a plain [lxor] and keeps integer
    overflow semantics exact for every width. *)

open Ir

let mask_of_width w = if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

(* Canonical form: the low [w] bits of the value, zero-extended. *)
let canon (s : Types.scalar) (x : int64) = Int64.logand x (mask_of_width (Types.bits s))

(* Read back as a signed value. *)
let signed (s : Types.scalar) (x : int64) =
  let w = Types.bits s in
  if w >= 64 then x else Int64.shift_right (Int64.shift_left x (64 - w)) (64 - w)

(* All-ones mask lane of the element's width (what AVX compares produce). *)
let true_mask (s : Types.scalar) = mask_of_width (Types.bits s)

(* ---- float encode/decode ---- *)

let f32_decode (x : int64) = Int32.float_of_bits (Int64.to_int32 x)
let f32_encode (f : float) = Int64.logand (Int64.of_int32 (Int32.bits_of_float f)) 0xFFFFFFFFL
let f64_decode = Int64.float_of_bits
let f64_encode = Int64.bits_of_float

let fdecode (s : Types.scalar) x =
  match s with
  | Types.F32 -> f32_decode x
  | Types.F64 -> f64_decode x
  | _ -> invalid_arg "Value.fdecode: not a float type"

let fencode (s : Types.scalar) f =
  match s with
  | Types.F32 -> f32_encode f
  | Types.F64 -> f64_encode f
  | _ -> invalid_arg "Value.fencode: not a float type"

exception Division_by_zero

(* ---- integer binary operations ---- *)

let ucmp a b =
  (* unsigned comparison of int64 bit patterns *)
  Int64.unsigned_compare a b

let binop_fn (s : Types.scalar) (op : Instr.binop) : int64 -> int64 -> int64 =
  let c = canon s in
  let sg = signed s in
  match op with
  | Instr.Add -> fun a b -> c (Int64.add a b)
  | Instr.Sub -> fun a b -> c (Int64.sub a b)
  | Instr.Mul -> fun a b -> c (Int64.mul a b)
  | Instr.Sdiv ->
      fun a b ->
        if b = 0L then raise Division_by_zero;
        c (Int64.div (sg a) (sg b))
  | Instr.Udiv ->
      fun a b ->
        if b = 0L then raise Division_by_zero;
        c (Int64.unsigned_div a b)
  | Instr.Srem ->
      fun a b ->
        if b = 0L then raise Division_by_zero;
        c (Int64.rem (sg a) (sg b))
  | Instr.Urem ->
      fun a b ->
        if b = 0L then raise Division_by_zero;
        c (Int64.unsigned_rem a b)
  | Instr.And -> fun a b -> Int64.logand a b
  | Instr.Or -> fun a b -> Int64.logor a b
  | Instr.Xor -> fun a b -> Int64.logxor a b
  | Instr.Shl ->
      fun a b ->
        let sh = Int64.to_int b land 63 in
        c (Int64.shift_left a sh)
  | Instr.Lshr ->
      fun a b ->
        let sh = Int64.to_int b land 63 in
        Int64.shift_right_logical a sh
  | Instr.Ashr ->
      fun a b ->
        let sh = Int64.to_int b land 63 in
        c (Int64.shift_right (sg a) sh)

let fbinop_fn (s : Types.scalar) (op : Instr.fbinop) : int64 -> int64 -> int64 =
  let dec = fdecode s and enc = fencode s in
  let f =
    match op with
    | Instr.Fadd -> ( +. )
    | Instr.Fsub -> ( -. )
    | Instr.Fmul -> ( *. )
    | Instr.Fdiv -> ( /. )
  in
  fun a b -> enc (f (dec a) (dec b))

let icmp_fn (s : Types.scalar) (cc : Instr.icmp) : int64 -> int64 -> bool =
  let sg = signed s in
  match cc with
  | Instr.Ieq -> ( = )
  | Instr.Ine -> ( <> )
  | Instr.Islt -> fun a b -> sg a < sg b
  | Instr.Isle -> fun a b -> sg a <= sg b
  | Instr.Isgt -> fun a b -> sg a > sg b
  | Instr.Isge -> fun a b -> sg a >= sg b
  | Instr.Iult -> fun a b -> ucmp a b < 0
  | Instr.Iule -> fun a b -> ucmp a b <= 0
  | Instr.Iugt -> fun a b -> ucmp a b > 0
  | Instr.Iuge -> fun a b -> ucmp a b >= 0

let fcmp_fn (s : Types.scalar) (cc : Instr.fcmp) : int64 -> int64 -> bool =
  let dec = fdecode s in
  let f =
    match cc with
    | Instr.Foeq -> fun a b -> a = b
    | Instr.Fone -> fun a b -> a <> b && not (Float.is_nan a || Float.is_nan b)
    | Instr.Folt -> fun a b -> a < b
    | Instr.Fole -> fun a b -> a <= b
    | Instr.Fogt -> fun a b -> a > b
    | Instr.Foge -> fun a b -> a >= b
  in
  fun a b -> f (dec a) (dec b)

let cast_fn (k : Instr.cast) ~(from : Types.scalar) ~(dst : Types.scalar) :
    int64 -> int64 =
  match k with
  | Instr.Trunc -> canon dst
  | Instr.Zext -> fun x -> x (* canonical form is already zero-extended *)
  | Instr.Sext -> fun x -> canon dst (signed from x)
  | Instr.Fptosi ->
      fun x ->
        let f = fdecode from x in
        let i = if Float.is_nan f then 0L else Int64.of_float f in
        canon dst i
  | Instr.Sitofp -> fun x -> fencode dst (Int64.to_float (signed from x))
  | Instr.Fpext -> fun x -> f64_encode (f32_decode x)
  | Instr.Fptrunc -> fun x -> f32_encode (f64_decode x)
  | Instr.Bitcast -> fun x -> canon dst x

(* Encode an IR immediate operand into lane bits. *)
let encode_imm (t : Types.t) (v : int64) : int64 array =
  let s = Types.elem t in
  Array.make (Types.lanes t) (canon s v)

let encode_fimm (t : Types.t) (v : float) : int64 array =
  let s = Types.elem t in
  Array.make (Types.lanes t) (fencode s v)
