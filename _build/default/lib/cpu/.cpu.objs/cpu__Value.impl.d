lib/cpu/value.ml: Array Float Instr Int32 Int64 Ir Types
