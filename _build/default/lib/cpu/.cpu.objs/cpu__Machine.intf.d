lib/cpu/machine.mli: Branch_pred Buffer Cache Code Counters Hashtbl Ir Memory Timing
