lib/cpu/counters.mli: Format
