lib/cpu/memory.ml: Bytes Int64 List String
