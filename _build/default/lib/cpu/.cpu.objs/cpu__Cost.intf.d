lib/cpu/cost.mli: Ir
