lib/cpu/code.ml: Array Builtins Cost Hashtbl Instr Int64 Ir List Memory Option Printer Types Value
