lib/cpu/machine.ml: Array Branch_pred Buffer Builtins Cache Code Counters Digest Hashtbl Int64 Ir List Memory Printf Timing Value
