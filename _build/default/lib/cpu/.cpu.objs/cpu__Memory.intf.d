lib/cpu/memory.mli: Bytes
