lib/cpu/cost.ml: Array Instr Ir List Types
