lib/cpu/builtins.mli:
