lib/cpu/timing.ml: Array Cache Cost
