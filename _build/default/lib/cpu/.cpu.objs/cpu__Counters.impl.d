lib/cpu/counters.ml: Format
