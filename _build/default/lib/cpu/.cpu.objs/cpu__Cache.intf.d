lib/cpu/cache.mli:
