lib/cpu/branch_pred.mli:
