lib/cpu/timing.mli: Cost
