lib/cpu/builtins.ml: Array
