(** Haswell-flavoured micro-operation cost model.

    Every IR instruction lowers to a short array of μops; each μop carries a
    latency, the set of execution ports it may issue on, and a reciprocal
    throughput (how long it occupies the chosen port).  The numbers are
    structural approximations of Intel Haswell (Agner Fog's tables): the
    simulator's output is normalized ratios, not absolute cycles, so only
    relative costs matter — in particular the relative cost of scalar ALU
    ops vs. AVX ops, and of the extract/broadcast/ptest wrappers that
    dominate ELZAR's overhead (paper §VII-A). *)

open Ir

(* port bitmasks *)
let p0 = 1
let p1 = 2
let p2 = 4
let p3 = 8
let p4 = 16
let p5 = 32
let p6 = 64
let p7 = 128
let p01 = p0 lor p1
let p06 = p0 lor p6
let p15 = p1 lor p5
let p23 = p2 lor p3
let p237 = p2 lor p3 lor p7
let p0156 = p0 lor p1 lor p5 lor p6

let nports = 8

type mem = Mnone | Mload | Mstore

type uop = {
  lat : int;  (** result latency; for loads this is the L1-hit latency *)
  ports : int;  (** bitmask of ports this μop may issue on *)
  rt : int;  (** cycles the chosen port stays busy (1 = fully pipelined) *)
  chain : bool;  (** depends on the previous μop of the same instruction *)
  mem : mem;
}

let u ?(rt = 1) ?(chain = false) ?(mem = Mnone) lat ports = { lat; ports; rt; chain; mem }

(* scalar μops *)
let alu = u 1 p0156
let shift = u 1 p06
let imul = u 3 p1
let idiv = u ~rt:8 26 p0
let fadd_u = u 3 p1
let fmul_u = u 5 p01
let fdiv_u = u ~rt:8 14 p0
let fcmp_u = u 3 p1
let cmov = u 2 p06
let load_u = u ~mem:Mload 4 p23
let sta = u 1 p237
let std = u ~chain:false ~mem:Mstore 1 p4
let jcc = u 1 p6

(* vector μops: AVX has fewer ports and higher latencies than the scalar
   core, which is one of the two causes of ELZAR's disappointing numbers
   (paper §I). *)
let valu = u 1 p15
let vshift = u 1 p0
let vmul = u ~rt:2 10 p0
let vfadd = u 3 p1
let vfmul = u 5 p01
let vfdiv = u ~rt:14 21 p0
let vblend = u 2 p5
let vshuf = u 3 p5
let vload = u ~mem:Mload 5 p23
let vmov = u 1 p15

(* extract: cross-lane shuffle + vector->GPR move *)
let extract_seq = [| u 3 p5; u ~chain:true 2 p0 |]

(* broadcast: GPR->vector move + lane replication *)
let broadcast_seq = [| u 1 p5; u ~chain:true 3 p5 |]

(* ptest: two μops (p0 + p5); the flag consumer is the branch that follows *)
let ptest_seq = [| u 2 p0; u ~chain:true 2 p5 |]

let mispredict_penalty = 16

(* A cache miss occupies the core's memory pipe for this many cycles: one
   64-byte line per 22 cycles at 2 GHz is ~5.8 GB/s of per-core sustained
   bandwidth.  This is what makes memory-bound benchmarks (mmul, memcached)
   amortize hardening overheads, as the paper observes (§V-B, §VI). *)
let membus_rt = 22

(* A vector operation with no AVX2 encoding is scalarized by the code
   generator: per lane, extract + scalar op + insert (paper §IV-A: "we can
   still write it in an LLVM vector form, and the x86 code generator
   automatically converts it to four regular division instructions").  *)
let scalarized n (op : uop) : uop array =
  Array.concat
    (List.init n (fun _ ->
         [| u 3 p5; { op with chain = true }; u ~chain:true 2 p5 |]))

let int_binop_uop (op : Instr.binop) : uop =
  match op with
  | Instr.Add | Instr.Sub | Instr.And | Instr.Or | Instr.Xor -> alu
  | Instr.Mul -> imul
  | Instr.Sdiv | Instr.Udiv | Instr.Srem | Instr.Urem -> idiv
  | Instr.Shl | Instr.Lshr | Instr.Ashr -> shift

let fbinop_uop (op : Instr.fbinop) : uop =
  match op with
  | Instr.Fadd | Instr.Fsub -> fadd_u
  | Instr.Fmul -> fmul_u
  | Instr.Fdiv -> fdiv_u

(* vpmullq is AVX-512 only: on AVX2 a <4 x i64> multiply lowers to the
   vpmuludq + shift + add magic sequence (3 partial products combined). *)
let i64_vmul_seq =
  [| vmul; vmul; vmul; vshift; u ~chain:true 1 p15; vshift; u ~chain:true 1 p15 |]

let vec_binop_uops (s : Types.scalar) (n : int) (op : Instr.binop) : uop array =
  match op with
  | Instr.Add | Instr.Sub | Instr.And | Instr.Or | Instr.Xor -> [| valu |]
  | Instr.Shl | Instr.Lshr | Instr.Ashr -> [| vshift |]
  | Instr.Mul -> if s = Types.I64 || s = Types.Ptr then i64_vmul_seq else [| vmul |]
  | Instr.Sdiv | Instr.Udiv | Instr.Srem | Instr.Urem ->
      (* integer division has no AVX counterpart (paper §II-C) *)
      scalarized n idiv

let vec_fbinop_uops (op : Instr.fbinop) : uop array =
  match op with
  | Instr.Fadd | Instr.Fsub -> [| vfadd |]
  | Instr.Fmul -> [| vfmul |]
  | Instr.Fdiv -> [| vfdiv |]

let vec_cast_uops (k : Instr.cast) ~(from : Types.scalar) ~(dst : Types.scalar)
    ~(lanes : int) : uop array =
  (* four source replicas carry the redundancy; wider destinations are
     re-duplicated with one extra shuffle *)
  let scalarized4 op =
    if lanes > 4 then Array.append (scalarized 4 op) [| vshuf |] else scalarized lanes op
  in
  match k with
  | Instr.Bitcast -> [||]
  | Instr.Zext | Instr.Sext -> [| vshuf |]  (* vpmovsx/vpmovzx: widen in one μop *)
  | Instr.Trunc ->
      (* narrowing conversions are missing from AVX2 (§VII-A "Missing
         instructions"); the codegen scalarizes them *)
      scalarized4 alu
  | Instr.Fpext | Instr.Fptrunc -> [| u 4 p1; u ~chain:true 3 p5 |]
  | Instr.Sitofp | Instr.Fptosi ->
      if from = Types.I64 || dst = Types.I64 then scalarized4 (u 6 p1)
      else [| u 4 p1; u ~chain:true 3 p5 |]

let scalar_cast_uops (k : Instr.cast) ~(from : Types.scalar) ~(dst : Types.scalar) :
    uop array =
  ignore from;
  ignore dst;
  match k with
  | Instr.Bitcast ->
      if Types.is_float from <> Types.is_float dst then [| u 2 p5 |] else [||]
  | Instr.Trunc | Instr.Zext | Instr.Sext -> [| alu |]
  | Instr.Sitofp | Instr.Fptosi -> [| u 6 p1 |]
  | Instr.Fpext | Instr.Fptrunc -> [| u 3 p1 |]

(* call/return control μops; the callee body is costed separately *)
let call_seq = [| u 2 p6; u 1 p237; u ~mem:Mstore 1 p4 |]
let ret_seq = [| u ~mem:Mload 4 p23; u ~chain:true 2 p6 |]

let atomic_seq = [| u ~mem:Mload 4 p23; u ~chain:true ~rt:8 16 p0 |]

let is_vec_operand (o : Instr.operand) = Types.is_vector (Instr.operand_ty None o)

let is_avx (i : Instr.t) =
  (match Instr.dest i with Some r -> Types.is_vector r.rty | None -> false)
  || List.exists is_vec_operand (Instr.operands i)

(* μop lowering of one IR instruction. *)
let of_instr (i : Instr.t) : uop array =
  match i with
  | Instr.Binop (r, op, _, _) -> (
      match r.rty with
      | Types.Scalar _ -> [| int_binop_uop op |]
      | Types.Vector (s, n) -> vec_binop_uops s n op)
  | Instr.Fbinop (r, op, _, _) -> (
      match r.rty with
      | Types.Scalar _ -> [| fbinop_uop op |]
      | Types.Vector _ -> vec_fbinop_uops op)
  | Instr.Icmp (r, _, _, _) ->
      if Types.is_vector r.rty then [| valu |] else [| alu |]
  | Instr.Fcmp (r, _, _, _) ->
      if Types.is_vector r.rty then [| vfadd |] else [| fcmp_u |]
  | Instr.Select (r, _, _, _) ->
      if Types.is_vector r.rty then [| vblend |] else [| cmov |]
  | Instr.Cast (r, k, o) -> (
      let from = Types.elem (Instr.operand_ty None o) in
      match r.rty with
      | Types.Scalar dst -> scalar_cast_uops k ~from ~dst
      | Types.Vector (dst, n) -> vec_cast_uops k ~from ~dst ~lanes:n)
  | Instr.Mov (r, _) -> if Types.is_vector r.rty then [| vmov |] else [| alu |]
  | Instr.Load (r, _) -> if Types.is_vector r.rty then [| vload |] else [| load_u |]
  | Instr.Store _ -> [| sta; std |]
  | Instr.Alloca _ -> [| alu |]
  | Instr.Call _ | Instr.Call_ind _ -> call_seq
  | Instr.Atomic_rmw _ | Instr.Cmpxchg _ -> atomic_seq
  | Instr.Extractlane _ -> extract_seq
  | Instr.Insertlane _ -> [| u 2 p5; u ~chain:true 2 p5 |]
  | Instr.Broadcast _ -> broadcast_seq
  | Instr.Shuffle _ -> [| vshuf |]
  | Instr.Ptestz _ -> ptest_seq
  | Instr.Gather _ ->
      (* modeled on the improved gather the paper asks for (§VII-B) *)
      [| u ~mem:Mload 8 p23; u ~chain:true 3 p5 |]
  | Instr.Scatter _ -> [| u 3 p5; sta; std |]

(* μop lowering of a terminator.  [Vbr] is the AVX branching sequence of the
   paper's Fig. 7/9: vptest plus two conditional jumps (je + ja).  When
   [flags_cmp] is set (the proposed FLAGS-setting AVX comparison of §VII-B),
   the ptest disappears and a single jcc remains. *)
let of_term ?(flags_cmp = false) (t : Instr.terminator) : uop array =
  match t with
  | Instr.Ret _ -> ret_seq
  | Instr.Br _ -> [| u 1 p6 |]
  | Instr.Cond_br _ -> [| jcc |]
  | Instr.Vbr _ ->
      if flags_cmp then [| jcc |]
      else Array.append ptest_seq [| { jcc with chain = true }; { jcc with chain = true } |]
  | Instr.Vbr_unchecked _ ->
      if flags_cmp then [| jcc |] else Array.append ptest_seq [| { jcc with chain = true } |]
  | Instr.Unreachable -> [||]
