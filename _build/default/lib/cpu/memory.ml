(** Flat simulated memory with a first-fit allocator.

    One address space is shared by all simulated threads (the memory
    subsystem is assumed ECC-protected and is outside the fault model,
    paper §III-A).  The first page is kept unmapped so that null and
    near-null dereferences trap, which the fault-injection campaign
    classifies as OS-detected crashes. *)

type t = {
  data : Bytes.t;
  size : int;
  mutable static_brk : int;  (** globals region bump pointer *)
  mutable heap_base : int;
  mutable heap_limit : int;  (** heap may not grow past this *)
  mutable free_list : (int * int) list;  (** (addr, len), address-ordered *)
  mutable stack_top : int;
}

exception Fault of int64  (** access outside mapped memory *)

let page = 4096

let create ?(size = 1 lsl 26) () =
  {
    data = Bytes.make size '\000';
    size;
    static_brk = page;
    heap_base = 0;
    heap_limit = size;
    free_list = [];
    stack_top = size;
  }

let align16 n = (n + 15) land lnot 15

let check (m : t) (addr : int64) (w : int) =
  let a = Int64.to_int addr in
  if addr < Int64.of_int page || a + w > m.size || a < 0 then raise (Fault addr)

let read (m : t) ~(width : int) (addr : int64) : int64 =
  check m addr width;
  let a = Int64.to_int addr in
  match width with
  | 1 -> Int64.of_int (Bytes.get_uint8 m.data a)
  | 2 -> Int64.of_int (Bytes.get_uint16_le m.data a)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le m.data a)) 0xFFFFFFFFL
  | 8 -> Bytes.get_int64_le m.data a
  | _ -> invalid_arg "Memory.read: bad width"

let write (m : t) ~(width : int) (addr : int64) (v : int64) : unit =
  check m addr width;
  let a = Int64.to_int addr in
  match width with
  | 1 -> Bytes.set_uint8 m.data a (Int64.to_int v land 0xFF)
  | 2 -> Bytes.set_uint16_le m.data a (Int64.to_int v land 0xFFFF)
  | 4 -> Bytes.set_int32_le m.data a (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le m.data a v
  | _ -> invalid_arg "Memory.write: bad width"

(* ---- static data (globals), allocated once at load time ---- *)

let alloc_static (m : t) (n : int) : int64 =
  let addr = m.static_brk in
  m.static_brk <- align16 (m.static_brk + n);
  if m.static_brk >= m.size then failwith "Memory.alloc_static: out of memory";
  m.heap_base <- m.static_brk;
  Int64.of_int addr

let blit_string (m : t) (s : string) (addr : int64) =
  check m addr (String.length s);
  Bytes.blit_string s 0 m.data (Int64.to_int addr) (String.length s)

(* ---- heap ---- *)

exception Out_of_memory

let heap_init (m : t) ~(stack_reserve : int) =
  if m.heap_base = 0 then m.heap_base <- m.static_brk;
  m.heap_limit <- m.size - stack_reserve;
  if m.heap_limit <= m.heap_base then failwith "Memory.heap_init: globals leave no heap";
  m.free_list <- [ (m.heap_base, m.heap_limit - m.heap_base) ]

let malloc (m : t) (n : int) : int64 =
  let n = align16 (max n 16) in
  let rec take acc = function
    | [] -> raise Out_of_memory
    | (addr, len) :: rest when len >= n ->
        let remainder = if len > n then [ (addr + n, len - n) ] else [] in
        m.free_list <- List.rev_append acc (remainder @ rest);
        Int64.of_int addr
    | chunk :: rest -> take (chunk :: acc) rest
  in
  take [] m.free_list

let free (m : t) (addr : int64) (len : int) : unit =
  let len = align16 (max len 16) in
  let rec insert = function
    | [] -> [ (Int64.to_int addr, len) ]
    | (a, l) :: rest when Int64.to_int addr < a -> (Int64.to_int addr, len) :: (a, l) :: rest
    | chunk :: rest -> chunk :: insert rest
  in
  m.free_list <- insert m.free_list

(* ---- per-thread stacks, carved from the top of memory ---- *)

let alloc_stack (m : t) (n : int) : int64 =
  m.stack_top <- m.stack_top - align16 n;
  if m.stack_top < m.heap_limit then failwith "Memory.alloc_stack: out of stack space";
  Int64.of_int m.stack_top
