(** Translation of verified IR modules into a flat executable form.

    Blocks are flattened into one instruction array per function, labels
    become program counters, registers become frame-slot offsets (vectors
    occupy one 64-bit cell per lane), immediates are pre-encoded into lane
    bits, and every instruction is paired with its μop lowering from
    {!Cost}.  The interpreter in {!Machine} then runs a single tight
    dispatch loop. *)

open Ir

exception Unknown_function of string

(* Function pointers live far above simulated memory so that using a data
   pointer as a callee (or vice versa) traps. *)
let fnptr_base = 0x4000_0000_0000L

type rop =
  | Oslot of int * int  (** frame offset, lanes *)
  | Oconst of int64 array

type callee = Direct of int | Builtin of int

type rinstr =
  | Rbinop of int * int * (int64 -> int64 -> int64) * rop * rop
  | Ricmp of int * int * (int64 -> int64 -> bool) * int64 * rop * rop
      (** dest, lanes, predicate, per-lane true mask *)
  | Rselect of int * int * rop * rop * rop
  | Rcast of int * int * (int64 -> int64) * rop
  | Rmov of int * int * rop
  | Rload of int * int * rop  (** dest, byte width, address *)
  | Rvload of int * int * int * rop  (** dest, lanes, elem width, address *)
  | Rstore of int * rop * rop  (** byte width, value, address *)
  | Rvstore of int * int * rop * rop  (** lanes, elem width, value, address *)
  | Ralloca of int * int
  | Rcall of callee * rop array * int * int  (** dest offset (-1 none), lanes *)
  | Rcall_ind of rop * rop array * int * int
  | Ratomic of Instr.rmw * int * rop * rop * int  (** dest, addr, operand, width *)
  | Rcmpxchg of int * rop * rop * rop * int
  | Rextract of int * rop * int
  | Rinsert of int * int * rop * int * rop
  | Rbroadcast of int * int * rop
  | Rshuffle of int * int * rop * int array
  | Rptestz of int * rop
  | Rgather of int * int * int * rop  (** dest, lanes, elem width, addresses *)
  | Rscatter of int * rop * rop  (** elem width, values, addresses *)
  | Tret of rop option
  | Tbr of int
  | Tcondbr of rop * int * int
  | Tvbr of rop * int * int * int
  | Tvbr_u of rop * int * int
  | Tunreachable

(* flag bits *)
let fl_load = 1
let fl_store = 2
let fl_branch = 4
let fl_avx = 8
let fl_inject = 16

type citem = {
  op : rinstr;
  uops : Cost.uop array;
  srcs : int array;  (** frame offsets read, for dependency tracking *)
  dst : int;  (** frame offset written, -1 if none *)
  dlanes : int;
  flags : int;
}

type cfunc = {
  cf_id : int;
  cf_name : string;
  cf_hardened : bool;
  code : citem array;
  nslots : int;
  param_offs : (int * int) array;
  ret_lanes : int;
  texts : string array;  (** printed source per pc; empty unless compiled
                             with [debug] (the SDE-debugtrace analogue) *)
}

type t = {
  cfuncs : cfunc array;
  by_name : (string, int) Hashtbl.t;
  globals : (string, int64) Hashtbl.t;
}

let oty = Instr.operand_ty None

(* ---- register layout ---- *)

let reg_layout (f : Instr.func) =
  let lanes = Array.make f.Instr.next_reg 1 in
  let note (r : Instr.reg) = lanes.(r.rid) <- Types.lanes r.rty in
  List.iter note f.params;
  List.iter
    (fun (_, (b : Instr.block)) ->
      List.iter
        (fun i ->
          (match Instr.dest i with Some r -> note r | None -> ());
          List.iter (function Instr.Reg r -> note r | _ -> ()) (Instr.operands i))
        b.instrs;
      List.iter (function Instr.Reg r -> note r | _ -> ()) (Instr.term_operands b.term))
    f.blocks;
  let offs = Array.make f.Instr.next_reg 0 in
  let total = ref 0 in
  Array.iteri
    (fun i n ->
      offs.(i) <- !total;
      total := !total + n)
    lanes;
  (offs, lanes, !total)

(* ---- compilation of one function ---- *)

let compile_func ~(debug : bool) ~(flags_cmp : bool) ~(fids : (string, int) Hashtbl.t)
    ~(globals : (string, int64) Hashtbl.t) (cf_id : int) (f : Instr.func) : cfunc =
  let offs, lanes, nslots = reg_layout f in
  let rop (o : Instr.operand) : rop =
    match o with
    | Instr.Reg r -> Oslot (offs.(r.rid), lanes.(r.rid))
    | Instr.Imm (t, v) -> Oconst (Value.encode_imm t v)
    | Instr.Fimm (t, v) -> Oconst (Value.encode_fimm t v)
    | Instr.Glob g -> (
        match Hashtbl.find_opt globals g with
        | Some a -> Oconst [| a |]
        | None -> raise (Unknown_function ("global " ^ g)))
    | Instr.Fref name -> (
        match Hashtbl.find_opt fids name with
        | Some id -> Oconst [| Int64.add fnptr_base (Int64.of_int id) |]
        | None -> raise (Unknown_function name))
  in
  let srcs_of (ops : Instr.operand list) =
    ops
    |> List.filter_map (function Instr.Reg r -> Some offs.(r.rid) | _ -> None)
    |> Array.of_list
  in
  (* first pass: program counter of each block *)
  let pcs = Hashtbl.create 16 in
  let n = ref 0 in
  List.iter
    (fun (l, (b : Instr.block)) ->
      Hashtbl.replace pcs l !n;
      n := !n + List.length b.instrs + 1)
    f.blocks;
  let pc_of l =
    match Hashtbl.find_opt pcs l with
    | Some p -> p
    | None -> raise (Unknown_function ("label " ^ l))
  in
  let callee_of name =
    match Hashtbl.find_opt fids name with
    | Some id -> Direct id
    | None -> (
        match Builtins.find name with
        | Some s -> Builtin s.Builtins.id
        | None -> raise (Unknown_function name))
  in
  let width_of (t : Types.t) = Types.bytes (Types.elem t) in
  let lower (i : Instr.t) : rinstr * int =
    (* returns resolved instruction + extra flags *)
    match i with
    | Instr.Binop (r, op, a, b) ->
        let s = Types.elem r.rty in
        (Rbinop (offs.(r.rid), lanes.(r.rid), Value.binop_fn s op, rop a, rop b), 0)
    | Instr.Fbinop (r, op, a, b) ->
        let s = Types.elem r.rty in
        (Rbinop (offs.(r.rid), lanes.(r.rid), Value.fbinop_fn s op, rop a, rop b), 0)
    | Instr.Icmp (r, cc, a, b) ->
        let s = Types.elem (oty a) in
        ( Ricmp
            ( offs.(r.rid),
              lanes.(r.rid),
              Value.icmp_fn s cc,
              (if Types.is_vector r.rty then Value.true_mask (Types.elem r.rty) else 1L),
              rop a,
              rop b ),
          0 )
    | Instr.Fcmp (r, cc, a, b) ->
        let s = Types.elem (oty a) in
        ( Ricmp
            ( offs.(r.rid),
              lanes.(r.rid),
              Value.fcmp_fn s cc,
              (if Types.is_vector r.rty then Value.true_mask (Types.elem r.rty) else 1L),
              rop a,
              rop b ),
          0 )
    | Instr.Select (r, c, a, b) -> (Rselect (offs.(r.rid), lanes.(r.rid), rop c, rop a, rop b), 0)
    | Instr.Cast (r, k, o) ->
        let from = Types.elem (oty o) and dst = Types.elem r.rty in
        (Rcast (offs.(r.rid), lanes.(r.rid), Value.cast_fn k ~from ~dst, rop o), 0)
    | Instr.Mov (r, o) -> (Rmov (offs.(r.rid), lanes.(r.rid), rop o), 0)
    | Instr.Load (r, a) ->
        if Types.is_vector r.rty then
          (Rvload (offs.(r.rid), lanes.(r.rid), width_of r.rty, rop a), fl_load)
        else (Rload (offs.(r.rid), width_of r.rty, rop a), fl_load)
    | Instr.Store (v, a) ->
        let t = oty v in
        if Types.is_vector t then (Rvstore (Types.lanes t, width_of t, rop v, rop a), fl_store)
        else (Rstore (width_of t, rop v, rop a), fl_store)
    | Instr.Alloca (r, size) -> (Ralloca (offs.(r.rid), size), 0)
    | Instr.Call (r, name, args) ->
        let d, dl = match r with Some r -> (offs.(r.rid), lanes.(r.rid)) | None -> (-1, 0) in
        (Rcall (callee_of name, Array.of_list (List.map rop args), d, dl), 0)
    | Instr.Call_ind (r, _, fp, args) ->
        let d, dl = match r with Some r -> (offs.(r.rid), lanes.(r.rid)) | None -> (-1, 0) in
        (Rcall_ind (rop fp, Array.of_list (List.map rop args), d, dl), 0)
    | Instr.Atomic_rmw (r, op, addr, x) ->
        (Ratomic (op, offs.(r.rid), rop addr, rop x, width_of r.rty), fl_load lor fl_store)
    | Instr.Cmpxchg (r, addr, e, d) ->
        (Rcmpxchg (offs.(r.rid), rop addr, rop e, rop d, width_of r.rty), fl_load lor fl_store)
    | Instr.Extractlane (r, v, l) -> (Rextract (offs.(r.rid), rop v, l), 0)
    | Instr.Insertlane (r, v, l, s) -> (Rinsert (offs.(r.rid), lanes.(r.rid), rop v, l, rop s), 0)
    | Instr.Broadcast (r, s) -> (Rbroadcast (offs.(r.rid), lanes.(r.rid), rop s), 0)
    | Instr.Shuffle (r, v, perm) -> (Rshuffle (offs.(r.rid), lanes.(r.rid), rop v, perm), 0)
    | Instr.Ptestz (r, v) -> (Rptestz (offs.(r.rid), rop v), 0)
    | Instr.Gather (r, a) ->
        (Rgather (offs.(r.rid), lanes.(r.rid), width_of r.rty, rop a), fl_load)
    | Instr.Scatter (v, a) -> (Rscatter (width_of (oty v), rop v, rop a), fl_store)
  in
  let items = ref [] in
  let emit it = items := it :: !items in
  List.iter
    (fun (_, (b : Instr.block)) ->
      List.iter
        (fun i ->
          let op, extra = lower i in
          let dst, dlanes =
            match Instr.dest i with
            | Some r -> (offs.(r.rid), lanes.(r.rid))
            | None -> (-1, 0)
          in
          let flags =
            extra
            lor (if Cost.is_avx i then fl_avx else 0)
            lor if f.Instr.hardened && dst >= 0 then fl_inject else 0
          in
          emit
            {
              op;
              uops = Cost.of_instr i;
              srcs = srcs_of (Instr.operands i);
              dst;
              dlanes;
              flags;
            })
        b.instrs;
      let top =
        match b.term with
        | Instr.Ret o -> Tret (Option.map rop o)
        | Instr.Br l -> Tbr (pc_of l)
        | Instr.Cond_br (c, t, e) -> Tcondbr (rop c, pc_of t, pc_of e)
        | Instr.Vbr (m, t, e, r) -> Tvbr (rop m, pc_of t, pc_of e, pc_of r)
        | Instr.Vbr_unchecked (m, t, e) -> Tvbr_u (rop m, pc_of t, pc_of e)
        | Instr.Unreachable -> Tunreachable
      in
      let flags =
        match b.term with
        | Instr.Br _ | Instr.Cond_br _ | Instr.Vbr _ | Instr.Vbr_unchecked _ -> fl_branch
        | Instr.Ret _ | Instr.Unreachable -> 0
      in
      emit
        {
          op = top;
          uops = Cost.of_term ~flags_cmp b.term;
          srcs = srcs_of (Instr.term_operands b.term);
          dst = -1;
          dlanes = 0;
          flags;
        })
    f.blocks;
  let texts =
    if not debug then [||]
    else
      Array.of_list
        (List.concat_map
           (fun (_, (b : Instr.block)) ->
             List.map Printer.string_of_instr b.Instr.instrs
             @ [ Printer.string_of_terminator b.Instr.term ])
           f.Instr.blocks)
  in
  {
    cf_id;
    cf_name = f.Instr.fname;
    cf_hardened = f.Instr.hardened;
    code = Array.of_list (List.rev !items);
    nslots;
    param_offs =
      Array.of_list (List.map (fun (r : Instr.reg) -> (offs.(r.rid), lanes.(r.rid))) f.params);
    ret_lanes = (match f.Instr.ret_ty with None -> 0 | Some t -> Types.lanes t);
    texts;
  }

(* ---- module compilation ---- *)

(* Lays out globals in [mem] and compiles every function.  [flags_cmp]
   selects the proposed FLAGS-setting AVX comparison lowering for vector
   branches (future-AVX experiments, paper §VII-B). *)
let compile ?(debug = false) ?(flags_cmp = false) (m : Instr.modul) (mem : Memory.t) : t =
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (g : Instr.global) ->
      let addr = Memory.alloc_static mem g.gsize in
      (match g.ginit with Some s -> Memory.blit_string mem s addr | None -> ());
      Hashtbl.replace globals g.gname addr)
    m.globals;
  Memory.heap_init mem ~stack_reserve:(1 lsl 25);
  let fids = Hashtbl.create 64 in
  List.iteri (fun i (f : Instr.func) -> Hashtbl.replace fids f.fname i) m.funcs;
  let cfuncs =
    Array.of_list
      (List.mapi (fun i f -> compile_func ~debug ~flags_cmp ~fids ~globals i f) m.funcs)
  in
  { cfuncs; by_name = fids; globals }

let lookup (c : t) name =
  match Hashtbl.find_opt c.by_name name with
  | Some id -> c.cfuncs.(id)
  | None -> raise (Unknown_function name)
