lib/apps/memcached.mli: App
