lib/apps/registry_apps.mli: App
