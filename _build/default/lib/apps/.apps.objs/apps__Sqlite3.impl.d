lib/apps/sqlite3.ml: App Builder Cpu Instr Int64 Ir Random String Types Workloads Ycsb
