lib/apps/memcached.ml: App Array Builder Cpu Instr Int64 Ir Random Types Workloads Ycsb
