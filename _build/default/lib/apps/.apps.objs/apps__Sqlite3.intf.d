lib/apps/sqlite3.mli: App
