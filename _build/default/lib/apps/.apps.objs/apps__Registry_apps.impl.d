lib/apps/registry_apps.ml: Apache App List Memcached Sqlite3
