lib/apps/ycsb.ml: Array Cpu Int64 Random
