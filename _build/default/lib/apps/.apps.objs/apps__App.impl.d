lib/apps/app.ml: Cpu Elzar Int64 Ir Ycsb
