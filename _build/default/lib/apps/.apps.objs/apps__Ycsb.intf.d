lib/apps/ycsb.mli: Cpu Random
