lib/apps/apache.mli: App
