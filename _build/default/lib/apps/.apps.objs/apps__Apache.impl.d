lib/apps/apache.ml: App Builder Instr Ir Random String Types Workloads Ycsb
