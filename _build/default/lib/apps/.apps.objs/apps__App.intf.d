lib/apps/app.mli: Cpu Elzar Ir Ycsb
