(** Memcached-like key-value store (paper §VI, Fig. 15a).

    An open-addressing hash table prefilled with the key space; worker
    threads claim requests with an atomic fetch-and-add (memcached 1.4.24
    "with all optimizations enabled, including atomic memory accesses"),
    probe lock-free on reads and take a striped lock on updates.  Random
    key popularity gives the poor memory locality that amortizes ELZAR's
    overhead in the paper (72-85% of native throughput). *)

open Ir
open Instr

let nkeys = 8192
let slots = 16384  (* power of two, 2x occupancy *)
let value_words = 2  (* 24-byte items: key word + 2 value words *)
let nstripes = 64
let nreq = 3000

(* Keys arrive pre-hashed: YCSB generates string keys whose hashes are
   uniformly scattered, which we model host-side with a random permutation
   of the key space; the in-server hash is then a cheap mask.  Hot zipfian
   keys therefore land on random table lines (the poor locality the paper
   credits for memcached's good result). *)
let hash_host key = key land (slots - 1)

let build () : modul =
  let m = Builder.create_module () in
  Builder.global m "reqs" (nreq * 16);
  Builder.global m "reqidx" 8;
  Builder.global m "table" (slots * 8 * (1 + value_words));  (* cache-line items *)
  Builder.global m "locks" (nstripes * 8);
  Builder.global m "stats" 16;  (* (gets, sets) *)
  Builder.global m "pacc" (Workloads.Parallel.max_threads * 8);
  Builder.global m "netbuf" (Workloads.Parallel.max_threads * 128);
  let open Builder in
  (* unhardened network/event layer: most of a memcached request is spent
     in libevent and the kernel socket path, which ELZAR does not harden —
     this is the larger part of why the paper's memcached keeps 72-85% of
     native throughput.  Copies the wire request into the worker's buffer
     and does the event-loop bookkeeping. *)
  let b, ps =
    func m ~hardened:false "net_io" ~ret:Types.i64
      [ ("idx", Types.i64); ("tid", Types.i64) ]
  in
  let idx, tid = match ps with [ i; t ] -> (Reg i, Reg t) | _ -> assert false in
  let buf = gep b (Glob "netbuf") tid 128 in
  let rbase = gep b (Glob "reqs") idx 16 in
  (* "receive": stage the request through the connection buffer, with the
     usual parse-and-validate pass over the frame *)
  let chk = fresh b ~name:"chk" Types.i64 in
  assign b chk (i64c 0);
  for_ b ~name:"w" ~lo:(i64c 0) ~hi:(i64c 8) (fun w ->
      let v = load b Types.i64 (gep b rbase (and_ b w (i64c 1)) 8) in
      store b v (gep b buf w 8);
      assign b chk (add b (mul b (Reg chk) (i64c 31)) v));
  for_ b ~name:"w" ~lo:(i64c 0) ~hi:(i64c 8) (fun w ->
      let v = load b Types.i64 (gep b buf w 8) in
      assign b chk (xor b (Reg chk) (add b v w)));
  (* "send": build and checksum the response frame (the kernel-bound tx
     path of the real server) in the second half of the connection buffer *)
  for_ b ~name:"w" ~lo:(i64c 0) ~hi:(i64c 8) (fun w ->
      let v = load b Types.i64 (gep b buf w 8) in
      store b (xor b v (Reg chk)) (gep b buf (add b w (i64c 8)) 8));
  for_ b ~name:"w" ~lo:(i64c 8) ~hi:(i64c 16) (fun w ->
      let v = load b Types.i64 (gep b buf w 8) in
      assign b chk (add b (Reg chk) (mul b v (i64c 131))));
  (* event-loop + socket-path bookkeeping: a loopback recv/send round trip
     costs on the order of a microsecond of kernel time, dwarfing the
     table probe itself *)
  let spin = fresh b ~name:"spin" Types.i64 in
  assign b spin (Reg chk);
  for_ b ~name:"w" ~lo:(i64c 0) ~hi:(i64c 110) (fun w ->
      assign b spin (xor b (add b (Reg spin) w) (lshr b (Reg spin) (i64c 7))));
  ret b (Some (Reg spin));
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, _nth = Workloads.Parallel.worker_ids b arg in
  let acc = fresh b ~name:"acc" Types.i64 in
  assign b acc (i64c 0);
  let gets = fresh b ~name:"gets" Types.i64 in
  let sets = fresh b ~name:"sets" Types.i64 in
  assign b gets (i64c 0);
  assign b sets (i64c 0);
  let fin = fresh b ~name:"fin" Types.i64 in
  assign b fin (i64c 0);
  while_ b
    ~cond:(fun () -> icmp b Ieq (Reg fin) (i64c 0))
    ~body:(fun () ->
      let idx = atomic_rmw b Rmw_add (Glob "reqidx") (i64c 1) in
      if_ b
        (icmp b Isge idx (i64c nreq))
        ~then_:(fun () -> assign b fin (i64c 1))
        ~else_:(fun () ->
          ignore (callv b ~ret:Types.i64 "net_io" [ idx; tid ]);
          let mybuf = gep b (Glob "netbuf") tid 128 in
          let op = load b Types.i64 mybuf in
          let key = load b Types.i64 (gep b mybuf (i64c 1) 8) in
          (* probe: all keys are resident, so the scan terminates *)
          let h = fresh b ~name:"h" Types.i64 in
          assign b h (and_ b key (i64c (slots - 1)));
          let found = fresh b ~name:"found" Types.i64 in
          assign b found (i64c 0);
          while_ b
            ~cond:(fun () -> icmp b Ieq (Reg found) (i64c 0))
            ~body:(fun () ->
              let slot = gep b (Glob "table") (Reg h) (8 * (1 + value_words)) in
              let k = load b Types.i64 slot in
              if_ b
                (icmp b Ieq k (add b key (i64c 1)))
                ~then_:(fun () -> assign b found (i64c 1))
                ~else_:(fun () ->
                  assign b h (and_ b (add b (Reg h) (i64c 1)) (i64c (slots - 1))))
                ());
          let slot = gep b (Glob "table") (Reg h) (8 * (1 + value_words)) in
          if_ b
            (icmp b Ieq op (i64c 0))
            ~then_:(fun () ->
              (* GET: read the item value; stats are thread-local, as in
                 modern memcached *)
              let v = load b Types.i64 (gep b slot (i64c 1) 8) in
              assign b acc (add b (Reg acc) v);
              assign b gets (add b (Reg gets) (i64c 1)))
            ~else_:(fun () ->
              (* SET: rewrite the value under the item's stripe lock *)
              let stripe = gep b (Glob "locks") (and_ b key (i64c (nstripes - 1))) 8 in
              call0 b "lock" [ stripe ];
              let seed = xor b key (mul b idx (i64c 31)) in
              for_ b ~name:"vw" ~lo:(i64c 1) ~hi:(i64c (1 + value_words)) (fun vw ->
                  store b (add b seed vw) (gep b slot vw 8));
              call0 b "unlock" [ stripe ];
              assign b sets (add b (Reg sets) (i64c 1)))
            ())
        ());
  store b (Reg acc) (gep b (Glob "pacc") tid 8);
  (* publish thread-local stats *)
  ignore (atomic_rmw b Rmw_add (Glob "stats") (Reg gets));
  ignore (atomic_rmw b Rmw_add (gep b (Glob "stats") (i64c 1) 8) (Reg sets));
  ret b None;
  let b, ps = func m "reduce" [ ("nth", Types.i64) ] in
  let nth = match ps with [ a ] -> Reg a | _ -> assert false in
  let tot = fresh b ~name:"tot" Types.i64 in
  assign b tot (i64c 0);
  for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
      assign b tot (add b (Reg tot) (load b Types.i64 (gep b (Glob "pacc") t 8))));
  call0 b "output_i64" [ Reg tot ];
  call0 b "output_i64" [ load b Types.i64 (Glob "stats") ];
  call0 b "output_i64" [ load b Types.i64 (gep b (Glob "stats") (i64c 1) 8) ];
  ret b None;
  Workloads.Parallel.standard_main m ~worker:"work" ~finish:(fun b ->
      match b.Builder.func.params with
      | [ p ] -> Builder.call0 b "reduce" [ Reg p ]
      | _ -> assert false);
  Workloads.Rtlib.link m

(* Host-side prefill mirroring the IR probe sequence exactly. *)
let init client machine =
  let wl = match client with App.Ycsb wl -> wl | App.Ab -> Ycsb.A in
  let table = Array.make slots 0L in
  let slot_bytes = 8 * (1 + value_words) in
  let base = Cpu.Machine.global_addr machine "table" in
  for key = 0 to nkeys - 1 do
    let h = ref (hash_host key) in
    while table.(!h) <> 0L do
      h := (!h + 1) land (slots - 1)
    done;
    table.(!h) <- Int64.of_int (key + 1);
    let a = Int64.add base (Int64.of_int (!h * slot_bytes)) in
    Cpu.Memory.write machine.Cpu.Machine.mem ~width:8 a (Int64.of_int (key + 1));
    for w = 1 to value_words do
      Cpu.Memory.write machine.Cpu.Machine.mem ~width:8
        (Int64.add a (Int64.of_int (w * 8)))
        (Int64.of_int ((key * 7) + w))
    done
  done;
  (* scatter the key space (see [hash_host]) *)
  let st = Random.State.make [| 4099 |] in
  let perm = Array.init nkeys (fun i -> i) in
  for i = nkeys - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let reqs =
    Array.map (fun (op, k) -> (op, perm.(k))) (Ycsb.generate wl ~nkeys ~nreq)
  in
  Ycsb.install machine reqs

let app =
  {
    App.name = "memcached";
    description = "key-value store: striped locks, atomic stats, random-key probes";
    build;
    init;
    nreq;
    clients = [ App.Ycsb Ycsb.A; App.Ycsb Ycsb.D ];
  }
