(** memcached case study (paper §VI); see the .ml for modelling notes. *)

val app : App.t
