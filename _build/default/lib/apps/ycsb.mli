(** Host-side YCSB workload generator (Cooper et al.): workload A (50/50
    reads/updates, zipfian) and D (95/5, "latest"), encoded as (op, key)
    request streams preloaded into the application's request array. *)

type workload = A | D

val workload_to_string : workload -> string

type op = Read | Update

(** Zipfian sampler over [0, n), theta = 0.99. *)
val zipf_sampler : Random.State.t -> int -> unit -> int

val generate : ?seed:int -> workload -> nkeys:int -> nreq:int -> (op * int) array

(** Writes the stream into the app's "reqs" global (16 bytes/request). *)
val install : Cpu.Machine.t -> (op * int) array -> unit
