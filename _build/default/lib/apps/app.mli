(** Common shape of the three case-study applications (paper §VI):
    a preloaded request stream processed to completion; the figure of merit
    is throughput at the simulated 2 GHz clock. *)

type client = Ycsb of Ycsb.workload | Ab  (** ab: constant static-page load *)

type t = {
  name : string;
  description : string;
  build : unit -> Ir.Instr.modul;
  init : client -> Cpu.Machine.t -> unit;
  nreq : int;
  clients : client list;  (** the client configurations the paper plots *)
}

val clock_hz : float

val execute :
  ?machine_cfg:Cpu.Machine.config ->
  t ->
  build:Elzar.build ->
  client:client ->
  nthreads:int ->
  Cpu.Machine.result

(** Requests per second at the simulated clock. *)
val throughput : t -> Cpu.Machine.result -> float

val client_to_string : client -> string
