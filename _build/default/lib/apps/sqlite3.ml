(** SQLite3-like in-memory database (paper §VI, Fig. 15b).

    Rows live in a sorted table reached by binary search; every operation
    first "parses" its query (a hash pass over the query text, standing in
    for SQLite's parser) and then runs under one global lock — SQLite is
    thread-safe but not concurrent, which is exactly the reverse
    scalability curve the paper reports.  The dense near loads, function
    calls and branches make this ELZAR's worst case study (20-30% of
    native throughput). *)

open Ir
open Instr

let nrows = 4096  (* power of two; row = (key, a, b, chk) = 32 bytes *)
let nreq = 1500
let qlen = 48

let build () : modul =
  let m = Builder.create_module () in
  Builder.global m "reqs" (nreq * 16);
  Builder.global m "reqidx" 8;
  Builder.global m "rows" (nrows * 32);
  Builder.global m "dblock" 8;
  Builder.global m "qtext" (2 * qlen);  (* SELECT / UPDATE templates *)
  Builder.global m "pacc" (Workloads.Parallel.max_threads * 8);
  let open Builder in
  (* "parser": hash the query template (hardened, as sqlite3.c would be) *)
  let b, ps = func m "parse_query" ~ret:Types.i64 [ ("op", Types.i64) ] in
  let op = match ps with [ a ] -> Reg a | _ -> assert false in
  let qbase = gep b (Glob "qtext") op qlen in
  let h = fresh b ~name:"h" Types.i64 in
  assign b h (Imm (Types.i64, 0xcbf29ce484222325L));
  for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c qlen) (fun i ->
      let c = zext b Types.i64 (load b Types.i8 (gep b qbase i 1)) in
      assign b h (mul b (xor b (Reg h) c) (Imm (Types.i64, 0x100000001b3L))));
  ret b (Some (Reg h));
  (* b-tree style lookup: binary search over the sorted key column *)
  let b, ps = func m "find_row" ~ret:Types.i64 [ ("key", Types.i64) ] in
  let key = match ps with [ a ] -> Reg a | _ -> assert false in
  let lo = fresh b ~name:"lo" Types.i64 and hi = fresh b ~name:"hi" Types.i64 in
  assign b lo (i64c 0);
  assign b hi (i64c nrows);
  while_ b
    ~cond:(fun () -> icmp b Islt (Reg lo) (Reg hi))
    ~body:(fun () ->
      let mid = lshr b (add b (Reg lo) (Reg hi)) (i64c 1) in
      let k = load b Types.i64 (gep b (Glob "rows") (mul b mid (i64c 4)) 8) in
      if_ b
        (icmp b Islt k key)
        ~then_:(fun () -> assign b lo (add b mid (i64c 1)))
        ~else_:(fun () -> assign b hi mid)
        ());
  ret b (Some (Reg lo));
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, _ = Workloads.Parallel.worker_ids b arg in
  let acc = fresh b ~name:"acc" Types.i64 in
  assign b acc (i64c 0);
  let fin = fresh b ~name:"fin" Types.i64 in
  assign b fin (i64c 0);
  while_ b
    ~cond:(fun () -> icmp b Ieq (Reg fin) (i64c 0))
    ~body:(fun () ->
      let idx = atomic_rmw b Rmw_add (Glob "reqidx") (i64c 1) in
      if_ b
        (icmp b Isge idx (i64c nreq))
        ~then_:(fun () -> assign b fin (i64c 1))
        ~else_:(fun () ->
          let rbase = gep b (Glob "reqs") idx 16 in
          let op = load b Types.i64 rbase in
          let key = load b Types.i64 (gep b rbase (i64c 1) 8) in
          (* the whole statement — including sqlite3_prepare's parse — runs
             under the connection's global mutex (serialized mode) *)
          call0 b "lock" [ Glob "dblock" ];
          let qh = callv b ~ret:Types.i64 "parse_query" [ op ] in
          let r = callv b ~ret:Types.i64 "find_row" [ key ] in
          let row = gep b (Glob "rows") (mul b r (i64c 4)) 8 in
          let a_slot = gep b row (i64c 1) 8 in
          let b_slot = gep b row (i64c 2) 8 in
          let chk_slot = gep b row (i64c 3) 8 in
          if_ b
            (icmp b Ieq op (i64c 0))
            ~then_:(fun () ->
              let va = load b Types.i64 a_slot in
              let vb = load b Types.i64 b_slot in
              let vc = load b Types.i64 chk_slot in
              assign b acc (add b (Reg acc) (add b va (add b vb (xor b vc qh)))))
            ~else_:(fun () ->
              let va = load b Types.i64 a_slot in
              let va' = add b va (xor b idx qh) in
              store b va' a_slot;
              let vb = load b Types.i64 b_slot in
              store b (xor b key (xor b va' vb)) chk_slot)
            ();
          call0 b "unlock" [ Glob "dblock" ])
        ());
  store b (Reg acc) (gep b (Glob "pacc") tid 8);
  ret b None;
  let b, ps = func m "reduce" [ ("nth", Types.i64) ] in
  let nth = match ps with [ a ] -> Reg a | _ -> assert false in
  let tot = fresh b ~name:"tot" Types.i64 in
  assign b tot (i64c 0);
  for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
      assign b tot (add b (Reg tot) (load b Types.i64 (gep b (Glob "pacc") t 8))));
  call0 b "output_i64" [ Reg tot ];
  ret b None;
  Workloads.Parallel.standard_main m ~worker:"work" ~finish:(fun b ->
      match b.Builder.func.params with
      | [ p ] -> Builder.call0 b "reduce" [ Reg p ]
      | _ -> assert false);
  Workloads.Rtlib.link m

let init client machine =
  let wl = match client with App.Ycsb wl -> wl | App.Ab -> Ycsb.A in
  let st = Random.State.make [| 61 |] in
  let base = Cpu.Machine.global_addr machine "rows" in
  for i = 0 to nrows - 1 do
    let a = Int64.of_int (Random.State.int st 1_000_000) in
    let bv = Int64.of_int (Random.State.int st 1_000_000) in
    let row = Int64.add base (Int64.of_int (i * 32)) in
    Cpu.Memory.write machine.Cpu.Machine.mem ~width:8 row (Int64.of_int i);
    Cpu.Memory.write machine.Cpu.Machine.mem ~width:8 (Int64.add row 8L) a;
    Cpu.Memory.write machine.Cpu.Machine.mem ~width:8 (Int64.add row 16L) bv;
    Cpu.Memory.write machine.Cpu.Machine.mem ~width:8 (Int64.add row 24L)
      (Int64.logxor (Int64.of_int i) (Int64.logxor a bv))
  done;
  Workloads.Data.blit_string machine "qtext"
    (let pad s = s ^ String.make (qlen - String.length s) ' ' in
     pad "SELECT a,b,chk FROM t WHERE key=?;" ^ pad "UPDATE t SET a=? WHERE key=?;");
  Ycsb.install machine (Ycsb.generate wl ~nkeys:nrows ~nreq)

let app =
  {
    App.name = "sqlite3";
    description = "in-memory DB: parse + binary search under one global lock";
    build;
    init;
    nreq;
    clients = [ App.Ycsb Ycsb.A; App.Ycsb Ycsb.D ];
  }
