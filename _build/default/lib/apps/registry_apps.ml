(** The three case studies of paper §VI, in figure order. *)

let all = [ Memcached.app; Sqlite3.app; Apache.app ]

let find name =
  match List.find_opt (fun a -> a.App.name = name) all with
  | Some a -> a
  | None -> invalid_arg ("Registry_apps.find: unknown app " ^ name)
