(** Apache-like static web server (paper §VI, Fig. 15c).

    The worker-MPM model: threads claim requests, parse the HTTP header
    (hardened, as httpd core would be), then hand the actual page copy and
    checksum to an *unhardened* library routine — the paper attributes
    Apache's good result (~85% of native) to its heavy use of third-party
    libraries that ELZAR does not harden. *)

open Ir
open Instr

let npages = 4
let page_bytes = 16 * 1024
let nreq = 160
let hdr_len = 96

let build () : modul =
  let m = Builder.create_module () in
  Builder.global m "reqs" (nreq * 16);
  Builder.global m "reqidx" 8;
  Builder.global m "pages" (npages * page_bytes);
  Builder.global m "outbuf" (Workloads.Parallel.max_threads * page_bytes);
  Builder.global m "hdr" hdr_len;
  Builder.global m "pacc" (Workloads.Parallel.max_threads * 8);
  let open Builder in
  (* unhardened "third-party library": copy the page and checksum it *)
  let b, ps =
    func m ~hardened:false "apr_serve" ~ret:Types.i64
      [ ("page", Types.i64); ("out", Types.ptr) ]
  in
  let page, out = match ps with [ p; o ] -> (Reg p, Reg o) | _ -> assert false in
  let src = gep b (Glob "pages") page page_bytes in
  for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c (page_bytes / 8)) (fun i ->
      store b (load b Types.i64 (gep b src i 8)) (gep b out i 8));
  let chk = fresh b ~name:"chk" Types.i64 in
  assign b chk (i64c 0);
  for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c (page_bytes / 8)) (fun i ->
      let v = load b Types.i64 (gep b out i 8) in
      assign b chk (add b (xor b (Reg chk) v) (i64c 1)));
  ret b (Some (Reg chk));
  (* hardened httpd core: header parse + dispatch *)
  let b, ps = func m "work" [ ("arg", Types.ptr) ] in
  let arg = match ps with [ a ] -> Reg a | _ -> assert false in
  let tid, _ = Workloads.Parallel.worker_ids b arg in
  let mybuf = gep b (Glob "outbuf") tid page_bytes in
  let acc = fresh b ~name:"acc" Types.i64 in
  assign b acc (i64c 0);
  let fin = fresh b ~name:"fin" Types.i64 in
  assign b fin (i64c 0);
  while_ b
    ~cond:(fun () -> icmp b Ieq (Reg fin) (i64c 0))
    ~body:(fun () ->
      let idx = atomic_rmw b Rmw_add (Glob "reqidx") (i64c 1) in
      if_ b
        (icmp b Isge idx (i64c nreq))
        ~then_:(fun () -> assign b fin (i64c 1))
        ~else_:(fun () ->
          let key = load b Types.i64 (gep b (gep b (Glob "reqs") idx 16) (i64c 1) 8) in
          (* parse the request header *)
          let h = fresh b ~name:"h" Types.i64 in
          assign b h key;
          for_ b ~name:"i" ~lo:(i64c 0) ~hi:(i64c hdr_len) (fun i ->
              let c = zext b Types.i64 (load b Types.i8 (gep b (Glob "hdr") i 1)) in
              assign b h (mul b (xor b (Reg h) c) (Imm (Types.i64, 0x100000001b3L))));
          let page = and_ b key (i64c (npages - 1)) in
          let chk = callv b ~ret:Types.i64 "apr_serve" [ page; mybuf ] in
          assign b acc (add b (Reg acc) (xor b chk (Reg h))))
        ());
  store b (Reg acc) (gep b (Glob "pacc") tid 8);
  ret b None;
  let b, ps = func m "reduce" [ ("nth", Types.i64) ] in
  let nth = match ps with [ a ] -> Reg a | _ -> assert false in
  let tot = fresh b ~name:"tot" Types.i64 in
  assign b tot (i64c 0);
  for_ b ~name:"t" ~lo:(i64c 0) ~hi:nth (fun t ->
      assign b tot (add b (Reg tot) (load b Types.i64 (gep b (Glob "pacc") t 8))));
  call0 b "output_i64" [ Reg tot ];
  ret b None;
  Workloads.Parallel.standard_main m ~worker:"work" ~finish:(fun b ->
      match b.Builder.func.params with
      | [ p ] -> Builder.call0 b "reduce" [ Reg p ]
      | _ -> assert false);
  Workloads.Rtlib.link m

let init _client machine =
  let st = Random.State.make [| 67 |] in
  Workloads.Data.fill_bytes machine "pages" (npages * page_bytes) (fun _ -> Random.State.int st 256);
  Workloads.Data.blit_string machine "hdr"
    (let s = "GET /index.html HTTP/1.1 Host: example.org User-Agent: ab/2.3" in
     s ^ String.make (hdr_len - String.length s) ' ');
  Ycsb.install machine (Ycsb.generate Ycsb.A ~nkeys:npages ~nreq)

let app =
  {
    App.name = "apache";
    description = "static web server: hardened core, unhardened page-serving library";
    build;
    init;
    nreq;
    clients = [ App.Ab ];
  }
