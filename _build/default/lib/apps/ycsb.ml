(** Host-side YCSB workload generator (Cooper et al., cited by the paper
    for the Memcached/SQLite case studies).

    Workload A: 50% reads / 50% updates, zipfian key popularity.
    Workload D: 95% reads / 5% updates, "latest" popularity (recent keys
    are hot).  Requests are encoded as (op, key) pairs and preloaded into
    the application's request array in simulated memory — the analogue of
    client traffic arriving over the (unsimulated) network. *)

type workload = A | D

let workload_to_string = function A -> "A" | D -> "D"

type op = Read | Update

(* zipfian sampler over [0, n) with the classic theta = 0.99, via an
   inverse-CDF table *)
let zipf_sampler st n =
  let theta = 0.99 in
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  Array.iteri
    (fun i w ->
      total := !total +. w;
      cum.(i) <- !total)
    weights;
  let total = !total in
  fun () ->
    let u = Random.State.float st total in
    (* binary search the cumulative table *)
    let rec bs lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cum.(mid) < u then bs (mid + 1) hi else bs lo mid
    in
    bs 0 (n - 1)

(* One request stream. [nkeys] must match the store's prefilled key space. *)
let generate ?(seed = 97) (wl : workload) ~(nkeys : int) ~(nreq : int) : (op * int) array =
  let st = Random.State.make [| seed; (match wl with A -> 1 | D -> 2) |] in
  let zipf = zipf_sampler st nkeys in
  Array.init nreq (fun _ ->
      match wl with
      | A ->
          let op = if Random.State.bool st then Read else Update in
          (op, zipf ())
      | D ->
          let op = if Random.State.int st 100 < 95 then Read else Update in
          (* "latest": popularity decays from the newest key downward *)
          (Update, nkeys - 1 - zipf ()) |> fun (_, k) -> (op, k))

(* Writes the request array into the app's "reqs" global: 16 bytes per
   request, (op, key) as two i64. *)
let install machine (reqs : (op * int) array) =
  let base = Cpu.Machine.global_addr machine "reqs" in
  Array.iteri
    (fun i (op, key) ->
      let a = Int64.add base (Int64.of_int (i * 16)) in
      Cpu.Memory.write machine.Cpu.Machine.mem ~width:8 a
        (match op with Read -> 0L | Update -> 1L);
      Cpu.Memory.write machine.Cpu.Machine.mem ~width:8 (Int64.add a 8L)
        (Int64.of_int key))
    reqs
