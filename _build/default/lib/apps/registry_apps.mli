(** The three case studies of paper §VI, in figure order. *)

val all : App.t list

(** @raise Invalid_argument on unknown names. *)
val find : string -> App.t
