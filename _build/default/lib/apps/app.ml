(** Common shape of the three case-study applications (paper §VI).

    Applications process a preloaded request stream to completion; the
    figure of merit is throughput = requests / simulated seconds at the
    2 GHz clock of the paper's Haswell testbed. *)

type client = Ycsb of Ycsb.workload | Ab  (** ab: constant static-page load *)

type t = {
  name : string;
  description : string;
  build : unit -> Ir.Instr.modul;
  init : client -> Cpu.Machine.t -> unit;
  nreq : int;
  clients : client list;  (** the client configurations the paper plots *)
}

let clock_hz = 2.0e9

let execute ?(machine_cfg = Cpu.Machine.default_config) (app : t) ~(build : Elzar.build)
    ~(client : client) ~(nthreads : int) : Cpu.Machine.result =
  let m = app.build () in
  let prepared = Elzar.prepare build m in
  let machine =
    Cpu.Machine.create ~cfg:machine_cfg ~flags_cmp:(Elzar.uses_flags_cmp build) prepared
  in
  app.init client machine;
  Cpu.Machine.run ~args:[| Int64.of_int nthreads |] machine "main"

(* Requests per second at the simulated clock. *)
let throughput (app : t) (r : Cpu.Machine.result) : float =
  float_of_int app.nreq /. (float_of_int r.Cpu.Machine.wall_cycles /. clock_hz)

let client_to_string = function
  | Ycsb wl -> "YCSB-" ^ Ycsb.workload_to_string wl
  | Ab -> "ab"
