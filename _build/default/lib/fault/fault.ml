(** Fault-injection framework (paper §IV-B).

    Reproduces the paper's Intel SDE + gdb campaign: each experiment runs
    the program once with a single bit flipped in the destination register
    of one randomly chosen dynamic instruction inside hardened code — GPR
    destinations flip their value, YMM destinations flip one bit of one
    lane, matching the SEU model of §III-A.  The outcome is classified
    against a golden run (Table I). *)

type outcome =
  | Hang  (** program became unresponsive *)
  | Os_detected  (** trap: segfault, division by zero, abort, fail-stop *)
  | Elzar_corrected  (** a recovery routine ran and the output is correct *)
  | Masked  (** fault did not affect the output *)
  | Sdc  (** silent data corruption in the output *)

let outcome_to_string = function
  | Hang -> "hang"
  | Os_detected -> "os-detected"
  | Elzar_corrected -> "elzar-corrected"
  | Masked -> "masked"
  | Sdc -> "SDC"

(* Everything needed to run one experiment deterministically. *)
type run_spec = {
  modul : Ir.Instr.modul;  (** already prepared (hardened or native) *)
  flags_cmp : bool;
  entry : string;
  args : int64 array;
  init : Cpu.Machine.t -> unit;  (** host-side input preparation *)
  max_instrs : int;
}

let make_spec ?(flags_cmp = false) ?(args = [||]) ?(init = fun _ -> ())
    ?(max_instrs = 200_000_000) modul entry =
  { modul; flags_cmp; entry; args; init; max_instrs }

let run_with (spec : run_spec) (cfg : Cpu.Machine.config) : Cpu.Machine.result =
  let machine = Cpu.Machine.create ~cfg ~flags_cmp:spec.flags_cmp spec.modul in
  spec.init machine;
  Cpu.Machine.run ~args:spec.args machine spec.entry

(* Fault-free reference run; also counts the injection-eligible dynamic
   instructions (the "instruction trace" step of §IV-B). *)
let golden (spec : run_spec) : Cpu.Machine.result =
  let cfg =
    {
      Cpu.Machine.default_config with
      max_instrs = spec.max_instrs;
      count_inject_sites = true;
    }
  in
  let r = run_with spec cfg in
  (match r.Cpu.Machine.trap with
  | Some t ->
      invalid_arg
        (Printf.sprintf "Fault.golden: reference run of %s trapped (%s)" spec.entry
           (Cpu.Machine.string_of_trap t))
  | None -> ());
  r

let classify ~(golden : Cpu.Machine.result) (r : Cpu.Machine.result) : outcome =
  match r.Cpu.Machine.trap with
  | Some Cpu.Machine.Hang -> Hang
  | Some Cpu.Machine.Deadlock -> Hang
  | Some _ -> Os_detected
  | None ->
      if r.Cpu.Machine.output_digest = golden.Cpu.Machine.output_digest then
        if r.Cpu.Machine.recovered_faults > 0 then Elzar_corrected else Masked
      else Sdc

(* One experiment: flip [bit] of one lane of the destination of the [at]-th
   injection-eligible instruction. *)
let inject_one (spec : run_spec) ~(golden : Cpu.Machine.result) ~(at : int) ~(lane : int)
    ~(bit : int) : outcome =
  let cfg =
    {
      Cpu.Machine.default_config with
      max_instrs = spec.max_instrs;
      inject = Some { Cpu.Machine.at; lane; bit; second = None };
    }
  in
  classify ~golden (run_with spec cfg)

(* Multi-bit experiment: two flips in the same destination register
   (paper §III-C's extended-recovery discussion).  With [same_value] the
   second lane gets the same bit flipped — the adversarial pattern where
   two corrupted replicas agree with each other. *)
let inject_two (spec : run_spec) ~(golden : Cpu.Machine.result) ~(at : int) ~(lane : int)
    ~(bit : int) ~(lane2 : int) ~(bit2 : int) : outcome =
  let cfg =
    {
      Cpu.Machine.default_config with
      max_instrs = spec.max_instrs;
      inject = Some { Cpu.Machine.at; lane; bit; second = Some (lane2, bit2) };
    }
  in
  classify ~golden (run_with spec cfg)

type stats = {
  runs : int;
  hang : int;
  os_detected : int;
  corrected : int;
  masked : int;
  sdc : int;
}

let empty_stats = { runs = 0; hang = 0; os_detected = 0; corrected = 0; masked = 0; sdc = 0 }

let add_outcome (s : stats) = function
  | Hang -> { s with runs = s.runs + 1; hang = s.hang + 1 }
  | Os_detected -> { s with runs = s.runs + 1; os_detected = s.os_detected + 1 }
  | Elzar_corrected -> { s with runs = s.runs + 1; corrected = s.corrected + 1 }
  | Masked -> { s with runs = s.runs + 1; masked = s.masked + 1 }
  | Sdc -> { s with runs = s.runs + 1; sdc = s.sdc + 1 }

let pct part s = 100.0 *. float_of_int part /. float_of_int (max 1 s.runs)

(* Aggregates into the paper's three Fig. 13 bars. *)
let crashed_pct s = pct (s.hang + s.os_detected) s
let correct_pct s = pct (s.corrected + s.masked) s
let sdc_pct s = pct s.sdc s

(* A full campaign of [n] independent injections with a seeded RNG. *)
let campaign ?(seed = 42) ?(n = 300) (spec : run_spec) : stats =
  let g = golden spec in
  let sites = g.Cpu.Machine.inject_sites in
  if sites = 0 then invalid_arg "Fault.campaign: no hardened code to inject into";
  let rng = Random.State.make [| seed |] in
  let s = ref empty_stats in
  for _ = 1 to n do
    let at = 1 + Random.State.int rng sites in
    let lane = Random.State.int rng 32 in
    let bit = Random.State.int rng 64 in
    s := add_outcome !s (inject_one spec ~golden:g ~at ~lane ~bit)
  done;
  !s

(* Campaign of double-bit faults; [same_bit] flips the same bit in two
   different lanes (two replicas agreeing on a wrong value). *)
let campaign_double ?(seed = 43) ?(n = 150) ?(same_bit = true) (spec : run_spec) : stats =
  let g = golden spec in
  let sites = g.Cpu.Machine.inject_sites in
  if sites = 0 then invalid_arg "Fault.campaign_double: no hardened code to inject into";
  let rng = Random.State.make [| seed |] in
  let s = ref empty_stats in
  for _ = 1 to n do
    let at = 1 + Random.State.int rng sites in
    let lane = Random.State.int rng 32 in
    let lane2 = lane + 1 + Random.State.int rng 3 in
    let bit = Random.State.int rng 64 in
    let bit2 = if same_bit then bit else Random.State.int rng 64 in
    s := add_outcome !s (inject_two spec ~golden:g ~at ~lane ~bit ~lane2 ~bit2)
  done;
  !s

let pp_stats fmt (s : stats) =
  Format.fprintf fmt "runs=%d crashed=%.1f%% correct=%.1f%% (corrected=%.1f%%) SDC=%.1f%%"
    s.runs (crashed_pct s) (correct_pct s) (pct s.corrected s) (sdc_pct s)
