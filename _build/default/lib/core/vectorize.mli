(** Conservative four-wide inner-loop auto-vectorizer, standing in for
    LLVM's in the paper's "native" builds; the "no-SIMD" builds of Fig. 1
    skip it.  Vectorizes canonical counted loops with straight-line bodies,
    provably unit-stride or invariant memory accesses, and recognizable
    integer reductions.  Strict IEEE: floating-point reductions and
    loop-carried dependences are rejected.  Like the compilers the paper
    studies, there is no profitability model — legal loops are vectorized
    even when that is slower. *)

val vf : int

(** Attempts every recorded loop of every function (in place); returns how
    many loops were vectorized. *)
val run : Ir.Instr.modul -> int
