(** Classic scalar optimizations (constant folding, block-local copy
    propagation and CSE, dead-code elimination), run before vectorization
    and hardening in every build flavour — the paper plugs ELZAR in after
    all -O3 passes (§IV-A).  Conservative under the non-SSA register
    model. *)

type stats = { folded : int; propagated : int; cse_hits : int; dce_removed : int }

val constant_fold : Ir.Instr.func -> int
val copy_propagate : Ir.Instr.func -> int
val local_cse : Ir.Instr.func -> int

(** Loop-invariant code motion over builder-recorded loops. *)
val licm : Ir.Instr.func -> int

val dead_code_eliminate : Ir.Instr.func -> int
val run_func : Ir.Instr.func -> stats

(** Optimizes every function in place; returns aggregate statistics. *)
val run : Ir.Instr.modul -> stats
