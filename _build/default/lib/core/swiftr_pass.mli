(** SWIFT-R instruction triplication (Reis et al.), the paper's ILR
    baseline: every computational instruction is emitted three times over
    independent register files; register operands of synchronization
    instructions are majority-voted with branchless compare+select before
    use (Fig. 5b). *)

exception Unsupported of string

(** [repair] controls whether voting writes the majority back into all
    three copies (the classic behaviour) or only feeds the consumer
    (ablation). *)
val xform_func : ?repair:bool -> Ir.Instr.func -> unit

val run : ?repair:bool -> Ir.Instr.modul -> Ir.Instr.modul
