lib/core/elzar_pass.ml: Array Harden_config Instr Ir Linker List Printf Types
