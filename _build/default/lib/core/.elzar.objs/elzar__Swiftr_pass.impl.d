lib/core/swiftr_pass.ml: Array Elzar_pass Instr Ir Linker List Types
