lib/core/harden_config.ml: Printf
