lib/core/optimize.ml: Array Cpu Hashtbl Instr Ir List Option Printer Printf String Types
