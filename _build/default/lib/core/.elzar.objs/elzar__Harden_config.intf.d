lib/core/harden_config.mli:
