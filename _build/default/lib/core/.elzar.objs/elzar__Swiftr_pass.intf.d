lib/core/swiftr_pass.mli: Ir
