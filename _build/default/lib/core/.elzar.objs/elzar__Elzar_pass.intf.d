lib/core/elzar_pass.mli: Harden_config Ir
