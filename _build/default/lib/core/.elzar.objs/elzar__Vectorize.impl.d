lib/core/vectorize.ml: Array Hashtbl Instr Int64 Ir List Option Types
