lib/core/elzar.ml: Cpu Elzar_pass Harden_config Ir Optimize Swiftr_pass Vectorize
