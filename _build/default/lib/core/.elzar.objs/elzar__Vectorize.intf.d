lib/core/vectorize.mli: Ir
