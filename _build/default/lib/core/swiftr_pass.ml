(** SWIFT-R instruction triplication (Reis et al., reproduced as the
    paper's ILR baseline for Fig. 14 / Table III).

    Every computational instruction is emitted three times over three
    independent register files (master + two shadows); inputs (loads, call
    results, allocas, parameters) are replicated with moves; and before
    every synchronization instruction each register operand is
    majority-voted with a branchless compare+select and repaired in all
    three copies (Fig. 5b).  Control flow and memory stay single-copy. *)

open Ir
open Instr

exception Unsupported of string

type st = {
  s2 : reg array;  (** rid -> shadow copy 2 *)
  s3 : reg array;  (** rid -> shadow copy 3 *)
  mutable nextr : int;
  mutable cur : t list;  (** reversed *)
  repair : bool;  (** write the majority back into all three copies *)
}

let fresh st ty =
  let r = { rid = st.nextr; rname = "w"; rty = ty } in
  st.nextr <- st.nextr + 1;
  r

let emit st i = st.cur <- i :: st.cur

let sub_operand (map : reg array) (o : operand) : operand =
  match o with Reg r -> Reg map.(r.rid) | o -> o

let sub_instr (map : reg array) (i : t) : t =
  let s = sub_operand map in
  match i with
  | Binop (r, op, a, b) -> Binop (map.(r.rid), op, s a, s b)
  | Fbinop (r, op, a, b) -> Fbinop (map.(r.rid), op, s a, s b)
  | Icmp (r, cc, a, b) -> Icmp (map.(r.rid), cc, s a, s b)
  | Fcmp (r, cc, a, b) -> Fcmp (map.(r.rid), cc, s a, s b)
  | Select (r, c, a, b) -> Select (map.(r.rid), s c, s a, s b)
  | Cast (r, k, o) -> Cast (map.(r.rid), k, s o)
  | Mov (r, o) -> Mov (map.(r.rid), s o)
  | _ -> invalid_arg "Swiftr_pass.sub_instr: not a computational instruction"

(* Scalar bit-equality (floats compare on their encodings). *)
let lane_eq st (a : operand) (b : operand) : operand =
  let t = operand_ty None a in
  let c = fresh st Types.i1 in
  (match Types.elem t with
  | Types.F32 | Types.F64 ->
      let ity = if Types.elem t = Types.F32 then Types.i32 else Types.i64 in
      let ai = fresh st ity and bi = fresh st ity in
      emit st (Cast (ai, Bitcast, a));
      emit st (Cast (bi, Bitcast, b));
      emit st (Icmp (c, Ieq, Reg ai, Reg bi))
  | _ -> emit st (Icmp (c, Ieq, a, b)));
  Reg c

(* majority(r, r', r''): if the master agrees with shadow 2 it wins,
   otherwise shadow 3 holds the majority value (single-fault model). *)
let vote st (o : operand) : operand =
  match o with
  | Reg r ->
      let r2 = st.s2.(r.rid) and r3 = st.s3.(r.rid) in
      let c = lane_eq st (Reg r) (Reg r2) in
      let m = fresh st r.rty in
      emit st (Select (m, c, Reg r, Reg r3));
      if st.repair then begin
        emit st (Mov (r, Reg m));
        emit st (Mov (r2, Reg m));
        emit st (Mov (r3, Reg m))
      end;
      Reg m
  | o -> o

(* Replicates a freshly produced input into the shadow copies. *)
let replicate st (r : reg) =
  emit st (Mov (st.s2.(r.rid), Reg r));
  emit st (Mov (st.s3.(r.rid), Reg r))

let xform_instr st (i : t) =
  match i with
  | Binop _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Mov _ ->
      emit st i;
      emit st (sub_instr st.s2 i);
      emit st (sub_instr st.s3 i)
  | Load (r, a) ->
      let va = vote st a in
      emit st (Load (r, va));
      replicate st r
  | Store (v, a) ->
      let vv = vote st v in
      let va = vote st a in
      emit st (Store (vv, va))
  | Alloca (r, _) ->
      emit st i;
      replicate st r
  | Call (r, name, args) ->
      let vargs = List.map (vote st) args in
      emit st (Call (r, name, vargs));
      (match r with Some r -> replicate st r | None -> ())
  | Call_ind (r, rt, fp, args) ->
      let vfp = vote st fp in
      let vargs = List.map (vote st) args in
      emit st (Call_ind (r, rt, vfp, vargs));
      (match r with Some r -> replicate st r | None -> ())
  | Atomic_rmw (r, op, addr, x) ->
      let va = vote st addr in
      let vx = vote st x in
      emit st (Atomic_rmw (r, op, va, vx));
      replicate st r
  | Cmpxchg (r, addr, e, d) ->
      let va = vote st addr in
      let ve = vote st e in
      let vd = vote st d in
      emit st (Cmpxchg (r, va, ve, vd));
      replicate st r
  | Extractlane _ | Insertlane _ | Broadcast _ | Shuffle _ | Ptestz _ | Gather _
  | Scatter _ ->
      raise (Unsupported "input program already contains vector instructions")

let xform_term st (term : terminator) : terminator =
  match term with
  | Ret (Some o) -> Ret (Some (vote st o))
  | Cond_br (c, t, f) -> Cond_br (vote st c, t, f)
  | (Ret None | Br _ | Unreachable) as t -> t
  | Vbr _ | Vbr_unchecked _ ->
      raise (Unsupported "input program already contains vector branches")

let xform_func ?(repair = true) (f : func) =
  let tys = Elzar_pass.reg_scalar_types f in
  let nextr = ref f.next_reg in
  let mk () =
    Array.init f.next_reg (fun rid ->
        let ty = match tys.(rid) with Some t -> t | None -> Types.i64 in
        let r = { rid = !nextr; rname = "w"; rty = ty } in
        incr nextr;
        r)
  in
  let s2 = mk () in
  let s3 = mk () in
  let st = { s2; s3; nextr = !nextr; cur = []; repair } in
  let blocks =
    List.map
      (fun (l, (b : block)) ->
        st.cur <- [];
        List.iter (xform_instr st) b.instrs;
        let term = xform_term st b.term in
        (l, { instrs = List.rev st.cur; term }))
      f.blocks
  in
  (* prologue block replicating the parameters *)
  st.cur <- [];
  List.iter (fun (p : reg) -> replicate st p) f.params;
  let entry = entry_label f in
  let prologue = ("w.entry", { instrs = List.rev st.cur; term = Br entry }) in
  f.blocks <- prologue :: blocks;
  f.next_reg <- st.nextr;
  f.loops <- []

(* Triplicates every [hardened] function of (a copy of) the module. *)
let run ?(repair = true) (m : modul) : modul =
  let m = Linker.copy m in
  List.iter (fun (f : func) -> if f.hardened then xform_func ~repair f) m.funcs;
  m
