(** Conservative inner-loop auto-vectorizer.

    Stands in for LLVM's loop vectorizer in the paper's "native" builds
    (`-msse4.2 -mavx2`); the "no-SIMD" builds of Fig. 1 simply skip this
    pass.  Canonical counted loops recorded by [Builder.for_] are vectorized
    four-wide when the body is straight-line, memory accesses are provably
    unit-stride or loop-invariant affine functions of the induction
    variable, and cross-iteration state is limited to recognizable
    reductions.  Like the compilers the paper studies (footnote 1), the pass
    has no profitability model: legal loops are vectorized even when the
    AVX μops are slower than the scalar ones, which is precisely how some
    benchmarks end up slower with SIMD enabled.

    Aliasing caveat: loads and stores in the same loop are assumed
    independent (`restrict` semantics), which the bundled workloads satisfy
    by construction. *)

open Ir
open Instr

let vf = 4

type sym = { stride : int64 option; konst : int64 option }

let unknown = { stride = None; konst = None }
let invariant = { stride = Some 0L; konst = None }

(* ---- symbolic affine analysis over the body ---- *)

let sym_of_operand (env : sym array) (o : operand) : sym =
  match o with
  | Reg r -> env.(r.rid)
  | Imm (_, v) -> { stride = Some 0L; konst = Some v }
  | Fimm _ -> invariant
  | Glob _ | Fref _ -> invariant

let sym_binop op (a : sym) (b : sym) : sym =
  let lift2 f = match (a.konst, b.konst) with Some x, Some y -> Some (f x y) | _ -> None in
  match op with
  | Add ->
      {
        stride = (match (a.stride, b.stride) with Some x, Some y -> Some (Int64.add x y) | _ -> None);
        konst = lift2 Int64.add;
      }
  | Sub ->
      {
        stride = (match (a.stride, b.stride) with Some x, Some y -> Some (Int64.sub x y) | _ -> None);
        konst = lift2 Int64.sub;
      }
  | Mul ->
      let stride =
        match (a.stride, b.konst, b.stride, a.konst) with
        | Some sa, Some kb, _, _ -> Some (Int64.mul sa kb)
        | _, _, Some sb, Some ka -> Some (Int64.mul sb ka)
        | _ -> None
      in
      { stride; konst = lift2 Int64.mul }
  | Shl -> (
      match b.konst with
      | Some k when k >= 0L && k < 32L ->
          let f x = Int64.shift_left x (Int64.to_int k) in
          {
            stride = Option.map f a.stride;
            konst = Option.map f a.konst;
          }
      | _ -> unknown)
  | _ -> unknown

(* ---- vectorization of one loop ---- *)

exception Reject

type vctx = {
  f : func;
  mutable nextr : int;
  vmap : reg option array;  (** body-local scalar -> vector counterpart *)
  mutable pre : t list;  (** preheader instructions, reversed *)
  mutable body : t list;  (** vector body instructions, reversed *)
  mutable iotas : (Types.scalar * int64 * reg) list;  (** elem, stride, [0,s,2s,3s] *)
  mutable reductions : (reg * reg * binop option * fbinop option) list;
      (** scalar acc, vector acc, integer or float op *)
}

let vfresh ctx ty =
  let r = { rid = ctx.nextr; rname = "q"; rty = ty } in
  ctx.nextr <- ctx.nextr + 1;
  r

let scalar_elem (o : operand) =
  match operand_ty None o with Types.Scalar s -> s | Types.Vector (s, _) -> s

(* The constant vector [0, s, 2s, 3s] used to widen affine scalars. *)
let iota ctx (elem : Types.scalar) (stride : int64) : reg =
  match List.find_opt (fun (e, s, _) -> e = elem && s = stride) ctx.iotas with
  | Some (_, _, r) -> r
  | None ->
      let ty = Types.Vector (elem, vf) in
      let r = vfresh ctx ty in
      ctx.pre <- Mov (r, Imm (ty, 0L)) :: ctx.pre;
      for j = 1 to vf - 1 do
        let r' = r in
        ctx.pre <-
          Insertlane (r', Reg r', j, Imm (Types.Scalar elem, Int64.mul stride (Int64.of_int j)))
          :: ctx.pre
      done;
      ctx.iotas <- (elem, stride, r) :: ctx.iotas;
      r

(* Widens an operand for use in a vector instruction. *)
let widen ctx (env : sym array) (o : operand) : operand =
  match o with
  | Imm (Types.Scalar s, v) -> Imm (Types.Vector (s, vf), v)
  | Fimm (Types.Scalar s, v) -> Fimm (Types.Vector (s, vf), v)
  | Glob _ | Fref _ -> o
  | Imm (Types.Vector _, _) | Fimm (Types.Vector _, _) -> o
  | Reg r -> (
      match ctx.vmap.(r.rid) with
      | Some v -> Reg v
      | None -> (
          let elem = scalar_elem o in
          let vty = Types.Vector (elem, vf) in
          match env.(r.rid).stride with
          | Some 0L ->
              let b = vfresh ctx vty in
              ctx.body <- Broadcast (b, Reg r) :: ctx.body;
              Reg b
          | Some s ->
              (* affine: lane j = scalar + j*stride *)
              let io = iota ctx elem s in
              let b = vfresh ctx vty in
              ctx.body <- Broadcast (b, Reg r) :: ctx.body;
              let sum = vfresh ctx vty in
              ctx.body <- Binop (sum, Add, Reg b, Reg io) :: ctx.body;
              Reg sum
          | None -> raise Reject))

let set_vmap ctx (r : reg) (v : reg) = ctx.vmap.(r.rid) <- Some v

let mask_vty (o : operand) =
  Types.Vector (Types.mask_elem (scalar_elem o), vf)

let neutral_int = function
  | Add | Or | Xor | Sub -> 0L
  | Mul -> 1L
  | And -> -1L
  | _ -> raise Reject

(* Returns [true] if [o] mentions a register that already has a vector
   counterpart (forcing this instruction into the vector domain). *)
let mentions_vector ctx = function
  | Reg r when r.rid < Array.length ctx.vmap -> ctx.vmap.(r.rid) <> None
  | _ -> false

let vectorize_loop (f : func) (li : loop_info) : bool =
  let body_block =
    match List.assoc_opt li.l_body f.blocks with Some b -> b | None -> raise Reject
  in
  if body_block.term <> Br li.l_latch then raise Reject;
  (* the latch must be exactly the canonical increment *)
  (match List.assoc_opt li.l_latch f.blocks with
  | Some { instrs = [ Binop (r, Add, Reg r', Imm (_, 1L)) ]; term = Br h }
    when r.rid = li.l_ivar.rid && r'.rid = li.l_ivar.rid && h = li.l_header ->
      ()
  | _ -> raise Reject);
  if li.l_ivar.rty <> Types.i64 then raise Reject;
  (* registers defined in the body *)
  let defined = Hashtbl.create 16 in
  List.iter
    (fun i -> match dest i with Some r -> Hashtbl.replace defined r.rid i | None -> ())
    body_block.instrs;
  (* uses and defs of body-defined registers elsewhere in the function *)
  let outside_use = Hashtbl.create 16 in
  List.iter
    (fun (l, (b : block)) ->
      if l <> li.l_body then begin
        let see o = match o with Reg r -> Hashtbl.replace outside_use r.rid () | _ -> () in
        List.iter
          (fun i ->
            List.iter see (operands i);
            match dest i with Some r -> Hashtbl.replace outside_use r.rid () | None -> ())
          b.instrs;
        List.iter see (term_operands b.term)
      end)
    f.blocks;
  (* reduction candidates: defined in body AND live outside.  Floating-point
     reductions are NOT vectorized: folding lanes reassociates the sum,
     which strict IEEE semantics (LLVM without -ffast-math, as in the
     paper's builds) forbids. *)
  let is_reduction_mov = function
    | Mov (acc, Reg t) when Hashtbl.mem outside_use acc.rid -> (
        match Hashtbl.find_opt defined t.rid with
        | Some (Binop (_, op, Reg a, x)) when a.rid = acc.rid && x <> Reg acc ->
            Some (acc, t, Some op, None)
        | Some (Binop (_, op, x, Reg a)) when a.rid = acc.rid && x <> Reg acc ->
            Some (acc, t, Some op, None)
        | _ -> None)
    | _ -> None
  in
  let reductions =
    List.filter_map is_reduction_mov body_block.instrs
  in
  let red_accs = List.map (fun (a, _, _, _) -> a.rid) reductions in
  let red_ts = List.map (fun (_, t, _, _) -> t.rid) reductions in
  (* every body-defined register escaping the body must be a reduction acc *)
  Hashtbl.iter
    (fun rid _ ->
      if Hashtbl.mem outside_use rid && not (List.mem rid red_accs) then raise Reject)
    defined;
  (* loop-carried register dependences (a body-defined register read before
     its definition) cannot be vectorized; reduction accumulators are the
     one recognized exception *)
  let defined_so_far = Hashtbl.create 16 in
  List.iter
    (fun i ->
      List.iter
        (function
          | Reg r
            when Hashtbl.mem defined r.rid
                 && (not (Hashtbl.mem defined_so_far r.rid))
                 && not (List.mem r.rid red_accs) ->
              raise Reject
          | _ -> ())
        (operands i);
      match dest i with Some r -> Hashtbl.replace defined_so_far r.rid () | None -> ())
    body_block.instrs;
  (* accumulators and their update temps may appear only in their own pair *)
  let count_uses rid =
    List.fold_left
      (fun acc i ->
        acc
        + List.length (List.filter (function Reg r -> r.rid = rid | _ -> false) (operands i)))
      0 body_block.instrs
  in
  List.iter (fun rid -> if count_uses rid <> 1 then raise Reject) red_accs;
  List.iter (fun rid -> if count_uses rid <> 1 then raise Reject) red_ts;
  (* affine analysis *)
  let has_store = List.exists (function Store _ -> true | _ -> false) body_block.instrs in
  let n = f.next_reg in
  let env = Array.make n invariant in
  Hashtbl.iter (fun rid _ -> env.(rid) <- unknown) defined;
  List.iter (fun rid -> env.(rid) <- unknown) red_accs;
  env.(li.l_ivar.rid) <- { stride = Some 1L; konst = None };
  List.iter
    (fun i ->
      match i with
      | Binop (r, op, a, b) ->
          env.(r.rid) <- sym_binop op (sym_of_operand env a) (sym_of_operand env b)
      | Cast (r, (Bitcast | Zext | Sext), a) -> env.(r.rid) <- sym_of_operand env a
      | Mov (r, a) -> env.(r.rid) <- sym_of_operand env a
      | Load (r, a) ->
          (* a load from a loop-invariant address in a store-free loop is
             itself invariant and can be broadcast at its uses *)
          env.(r.rid) <-
            (if (not has_store) && (sym_of_operand env a).stride = Some 0L then invariant
             else unknown)
      | _ -> ( match dest i with Some r -> env.(r.rid) <- unknown | None -> ()))
    body_block.instrs;
  (* legality of memory accesses *)
  let addr_stride (a : operand) =
    match a with
    | Glob _ -> Some 0L
    | _ -> (sym_of_operand env a).stride
  in
  List.iter
    (fun i ->
      match i with
      | Load (r, a) -> (
          let w = Int64.of_int (Types.bytes (Types.elem r.rty)) in
          match addr_stride a with
          | Some s when s = w -> ()
          | Some 0L when not has_store -> ()
          | _ -> raise Reject)
      | Store (v, a) -> (
          let w = Int64.of_int (Types.bytes (Types.elem (operand_ty None v))) in
          match addr_stride a with Some s when s = w -> () | _ -> raise Reject)
      | Binop _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Mov _ -> ()
      | _ -> raise Reject)
    body_block.instrs;

  (* ---- build the vector loop ---- *)
  let ctx =
    {
      f;
      nextr = f.next_reg;
      vmap = Array.make n None;
      pre = [];
      body = [];
      iotas = [];
      reductions = [];
    }
  in
  (* vector accumulators, initialized to the operation's neutral element *)
  List.iter
    (fun (acc, _, iop, fop) ->
      let elem = Types.elem acc.rty in
      let vty = Types.Vector (elem, vf) in
      let vacc = vfresh ctx vty in
      (match (iop, fop) with
      | Some op, _ -> ctx.pre <- Mov (vacc, Imm (vty, neutral_int op)) :: ctx.pre
      | _, Some Fadd -> ctx.pre <- Mov (vacc, Fimm (vty, 0.0)) :: ctx.pre
      | _, Some Fmul -> ctx.pre <- Mov (vacc, Fimm (vty, 1.0)) :: ctx.pre
      | _ -> raise Reject);
      ctx.reductions <- (acc, vacc, iop, fop) :: ctx.reductions;
      set_vmap ctx acc vacc)
    reductions;
  (* rewrite the body *)
  List.iter
    (fun i ->
      let any_vec = List.exists (mentions_vector ctx) (operands i) in
      match i with
      | Load (r, a) when (addr_stride a = Some (Int64.of_int (Types.bytes (Types.elem r.rty)))) ->
          let v = vfresh ctx (Types.Vector (Types.elem r.rty, vf)) in
          ctx.body <- Load (v, a) :: ctx.body;
          (* keep the scalar address chain: emit nothing else *)
          set_vmap ctx r v
      | Load _ -> ctx.body <- i :: ctx.body (* invariant load stays scalar *)
      | Store (v, a) ->
          let wv = widen ctx env v in
          ctx.body <- Store (wv, a) :: ctx.body
      | Mov (acc, Reg t) when List.mem acc.rid red_accs && List.mem t.rid red_ts ->
          let vacc = match ctx.vmap.(acc.rid) with Some v -> v | None -> raise Reject in
          let vt = match ctx.vmap.(t.rid) with Some v -> v | None -> raise Reject in
          ctx.body <- Mov (vacc, Reg vt) :: ctx.body
      | Binop (r, op, a, b) when any_vec || List.mem r.rid red_ts ->
          let wa = widen ctx env a and wb = widen ctx env b in
          let elem = Types.elem r.rty in
          let v = vfresh ctx (Types.Vector (elem, vf)) in
          ctx.body <- Binop (v, op, wa, wb) :: ctx.body;
          set_vmap ctx r v
      | Fbinop (r, op, a, b) when any_vec || List.mem r.rid red_ts ->
          let wa = widen ctx env a and wb = widen ctx env b in
          let v = vfresh ctx (Types.Vector (Types.elem r.rty, vf)) in
          ctx.body <- Fbinop (v, op, wa, wb) :: ctx.body;
          set_vmap ctx r v
      | Icmp (r, cc, a, b) when any_vec ->
          let wa = widen ctx env a and wb = widen ctx env b in
          let v = vfresh ctx (mask_vty a) in
          ctx.body <- Icmp (v, cc, wa, wb) :: ctx.body;
          set_vmap ctx r v
      | Fcmp (r, cc, a, b) when any_vec ->
          let wa = widen ctx env a and wb = widen ctx env b in
          let v = vfresh ctx (mask_vty a) in
          ctx.body <- Fcmp (v, cc, wa, wb) :: ctx.body;
          set_vmap ctx r v
      | Select (r, c, a, b) when any_vec ->
          let wc = (match c with Reg x when ctx.vmap.(x.rid) <> None -> Reg (Option.get ctx.vmap.(x.rid)) | c -> c) in
          let wa = widen ctx env a and wb = widen ctx env b in
          let v = vfresh ctx (Types.Vector (Types.elem r.rty, vf)) in
          ctx.body <- Select (v, wc, wa, wb) :: ctx.body;
          set_vmap ctx r v
      | Cast (r, k, a) when any_vec ->
          let src = (match a with Reg x -> x | _ -> raise Reject) in
          let vsrc = match ctx.vmap.(src.rid) with Some v -> v | None -> raise Reject in
          let delem = Types.elem r.rty in
          let v = vfresh ctx (Types.Vector (delem, vf)) in
          (if Types.equal src.rty Types.i1 then
             (* mask -> integer: zext keeps the low bit, sext is the mask *)
             match k with
             | Zext ->
                 let one = vfresh ctx vsrc.rty in
                 ctx.body <- Binop (one, And, Reg vsrc, Imm (vsrc.rty, 1L)) :: ctx.body;
                 if Types.equal v.rty vsrc.rty then ctx.body <- Mov (v, Reg one) :: ctx.body
                 else if Types.bits delem > Types.bits (Types.elem vsrc.rty) then
                   ctx.body <- Cast (v, Zext, Reg one) :: ctx.body
                 else ctx.body <- Cast (v, Trunc, Reg one) :: ctx.body
             | Sext ->
                 if Types.equal v.rty vsrc.rty then ctx.body <- Mov (v, Reg vsrc) :: ctx.body
                 else if Types.bits delem > Types.bits (Types.elem vsrc.rty) then
                   ctx.body <- Cast (v, Sext, Reg vsrc) :: ctx.body
                 else ctx.body <- Cast (v, Trunc, Reg vsrc) :: ctx.body
             | _ -> raise Reject
           else ctx.body <- Cast (v, k, Reg vsrc) :: ctx.body);
          set_vmap ctx r v
      | Binop _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Mov _ ->
          ctx.body <- i :: ctx.body (* pure scalar (address arithmetic etc.) *)
      | _ -> raise Reject)
    body_block.instrs;

  (* ---- stitch the CFG ---- *)
  let ivar = li.l_ivar in
  let pre_l = "q.pre." ^ li.l_header
  and head_l = "q.head." ^ li.l_header
  and body_l = "q.body." ^ li.l_header
  and latch_l = "q.latch." ^ li.l_header
  and red_l = "q.reduce." ^ li.l_header in
  let t = vfresh ctx Types.i64 in
  let c = vfresh ctx Types.i1 in
  let head_instrs =
    [
      Binop (t, Add, Reg ivar, Imm (Types.i64, Int64.of_int vf));
      Icmp (c, Isle, Reg t, li.l_hi);
    ]
  in
  (* reduction epilogue: fold the vector lanes into the scalar accumulator *)
  let red_instrs = ref [] in
  List.iter
    (fun (acc, vacc, iop, fop) ->
      let elem = Types.Scalar (Types.elem acc.rty) in
      for j = 0 to vf - 1 do
        let e = vfresh ctx elem in
        red_instrs := Extractlane (e, Reg vacc, j) :: !red_instrs;
        match (iop, fop) with
        | Some op, _ -> red_instrs := Binop (acc, op, Reg acc, Reg e) :: !red_instrs
        | _, Some op -> red_instrs := Fbinop (acc, op, Reg acc, Reg e) :: !red_instrs
        | None, None -> assert false
      done)
    ctx.reductions;
  let new_blocks =
    [
      (pre_l, { instrs = List.rev ctx.pre; term = Br head_l });
      (head_l, { instrs = head_instrs; term = Cond_br (Reg c, body_l, red_l) });
      (body_l, { instrs = List.rev ctx.body; term = Br latch_l });
      ( latch_l,
        {
          instrs = [ Binop (ivar, Add, Reg ivar, Imm (Types.i64, Int64.of_int vf)) ];
          term = Br head_l;
        } );
      (red_l, { instrs = List.rev !red_instrs; term = Br li.l_header });
    ]
  in
  (* entry edges into the loop now go through the vector loop *)
  let retarget l = if l = li.l_header then pre_l else l in
  List.iter
    (fun (l, (b : block)) ->
      if l <> li.l_latch && l <> latch_l then
        b.term <-
          (match b.term with
          | Br x -> Br (retarget x)
          | Cond_br (o, a, bb) -> Cond_br (o, retarget a, retarget bb)
          | Vbr (o, a, bb, r) -> Vbr (o, retarget a, retarget bb, retarget r)
          | Vbr_unchecked (o, a, bb) -> Vbr_unchecked (o, retarget a, retarget bb)
          | t -> t))
    f.blocks;
  f.blocks <- f.blocks @ new_blocks;
  f.next_reg <- ctx.nextr;
  true

(* Attempts every recorded loop of every function; returns how many loops
   were vectorized. *)
let run (m : modul) : int =
  let count = ref 0 in
  List.iter
    (fun (f : func) ->
      List.iter
        (fun li ->
          match vectorize_loop f li with
          | true -> incr count
          | false -> ()
          | exception Reject -> ())
        f.loops)
    m.funcs;
  !count
