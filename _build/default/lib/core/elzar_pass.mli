(** The ELZAR transformation (paper §III-C, §IV-A): data replication across
    YMM lanes, extract/broadcast wrappers and shuffle-xor-ptest checks on
    synchronization instructions, AVX-comparison branches ([Vbr]) and
    out-of-line majority-voting recovery blocks.  Function signatures are
    unchanged, so unhardened libraries and builtins are called
    transparently.  With [future_avx] the pass emits the gather/scatter and
    FLAGS-comparison forms of §VII instead. *)

exception Unsupported of string

(** Shared with {!Swiftr_pass}: the (first-seen) type of every register. *)
val reg_scalar_types : Ir.Instr.func -> Ir.Types.t option array

(** Hardens one function in place. *)
val xform_func : Harden_config.t -> Ir.Instr.func -> unit

(** Hardens every [hardened] function of (a copy of) the module. *)
val run : ?cfg:Harden_config.t -> Ir.Instr.modul -> Ir.Instr.modul
