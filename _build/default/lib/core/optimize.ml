(** Classic scalar optimizations, run before vectorization and hardening in
    every build flavour — the paper plugs ELZAR in "after all optimization
    passes and right before assembly code generation" (§IV-A), so hardened
    code must not contain redundancies a real -O3 pipeline would have
    removed.

    All passes are conservative under the IR's non-SSA register model:
    copy propagation and CSE are block-local and invalidate on
    redefinition; dead-code elimination removes only pure instructions
    whose destination is never read anywhere in the function. *)

open Ir
open Instr

(* ---- constant folding ---- *)

let imm_of (o : operand) : (Types.t * int64) option =
  match o with
  | Imm (t, v) -> Some (t, v)
  | Fimm (t, v) -> Some (t, Cpu.Value.fencode (Types.elem t) v)
  | Reg _ | Glob _ | Fref _ -> None

let is_div = function Sdiv | Udiv | Srem | Urem -> true | _ -> false

(* evaluates one pure scalar instruction over constant operands; bit-exact
   via the machine's own value semantics *)
let fold_instr (i : t) : t option =
  let ( let* ) = Option.bind in
  match i with
  | Binop (r, op, a, b) when not (Types.is_vector r.rty) && not (is_div op) ->
      let* _, x = imm_of a in
      let* _, y = imm_of b in
      let s = Types.elem r.rty in
      Some (Mov (r, Imm (r.rty, Cpu.Value.binop_fn s op x y)))
  | Fbinop (r, op, a, b) when not (Types.is_vector r.rty) ->
      let* _, x = imm_of a in
      let* _, y = imm_of b in
      let s = Types.elem r.rty in
      Some (Mov (r, Fimm (r.rty, Cpu.Value.fdecode s (Cpu.Value.fbinop_fn s op x y))))
  | Icmp (r, cc, a, b) when not (Types.is_vector r.rty) ->
      let* ta, x = imm_of a in
      let* _, y = imm_of b in
      let s = Types.elem ta in
      Some (Mov (r, Imm (Types.i1, if Cpu.Value.icmp_fn s cc x y then 1L else 0L)))
  | Cast (r, k, a) when not (Types.is_vector r.rty) ->
      let* ta, x = imm_of a in
      let from = Types.elem ta and dst = Types.elem r.rty in
      let bits = Cpu.Value.cast_fn k ~from ~dst x in
      if Types.is_float dst then Some (Mov (r, Fimm (r.rty, Cpu.Value.fdecode dst bits)))
      else Some (Mov (r, Imm (r.rty, bits)))
  | Select (r, c, a, b) -> (
      match imm_of c with
      | Some (_, cv) -> Some (Mov (r, if cv <> 0L then a else b))
      | None -> None)
  | _ -> None

let constant_fold (f : func) : int =
  let changed = ref 0 in
  List.iter
    (fun (_, (blk : block)) ->
      blk.instrs <-
        List.map
          (fun i ->
            match fold_instr i with
            | Some i' ->
                incr changed;
                i'
            | None -> i)
          blk.instrs)
    f.blocks;
  !changed

(* ---- block-local copy propagation ---- *)

let map_operands (g : operand -> operand) (i : t) : t =
  match i with
  | Binop (r, op, a, b) -> Binop (r, op, g a, g b)
  | Fbinop (r, op, a, b) -> Fbinop (r, op, g a, g b)
  | Icmp (r, cc, a, b) -> Icmp (r, cc, g a, g b)
  | Fcmp (r, cc, a, b) -> Fcmp (r, cc, g a, g b)
  | Select (r, c, a, b) -> Select (r, g c, g a, g b)
  | Cast (r, k, a) -> Cast (r, k, g a)
  | Mov (r, a) -> Mov (r, g a)
  | Load (r, a) -> Load (r, g a)
  | Store (v, a) -> Store (g v, g a)
  | Alloca _ -> i
  | Call (r, n, args) -> Call (r, n, List.map g args)
  | Call_ind (r, rt, fp, args) -> Call_ind (r, rt, g fp, List.map g args)
  | Atomic_rmw (r, op, a, x) -> Atomic_rmw (r, op, g a, g x)
  | Cmpxchg (r, a, e, d) -> Cmpxchg (r, g a, g e, g d)
  | Extractlane (r, v, l) -> Extractlane (r, g v, l)
  | Insertlane (r, v, l, s) -> Insertlane (r, g v, l, g s)
  | Broadcast (r, s) -> Broadcast (r, g s)
  | Shuffle (r, v, p) -> Shuffle (r, g v, p)
  | Ptestz (r, v) -> Ptestz (r, g v)
  | Gather (r, a) -> Gather (r, g a)
  | Scatter (v, a) -> Scatter (g v, g a)

let map_term_operands (g : operand -> operand) (t : terminator) : terminator =
  match t with
  | Ret (Some o) -> Ret (Some (g o))
  | Cond_br (c, a, b) -> Cond_br (g c, a, b)
  | Vbr (m, a, b, r) -> Vbr (g m, a, b, r)
  | Vbr_unchecked (m, a, b) -> Vbr_unchecked (g m, a, b)
  | (Ret None | Br _ | Unreachable) as t -> t

let copy_propagate (f : func) : int =
  let changed = ref 0 in
  List.iter
    (fun (_, (blk : block)) ->
      (* rid -> replacement operand, valid until either side is redefined *)
      let copies : (int, operand) Hashtbl.t = Hashtbl.create 16 in
      let kill rid =
        Hashtbl.remove copies rid;
        Hashtbl.iter
          (fun k v -> match v with Reg r when r.rid = rid -> Hashtbl.remove copies k | _ -> ())
          (Hashtbl.copy copies)
      in
      let subst (o : operand) : operand =
        match o with
        | Reg r -> (
            match Hashtbl.find_opt copies r.rid with
            | Some o' when Types.equal (operand_ty None o') r.rty ->
                incr changed;
                o'
            | _ -> o)
        | o -> o
      in
      blk.instrs <-
        List.map
          (fun i ->
            let i = map_operands subst i in
            (match dest i with Some r -> kill r.rid | None -> ());
            (match i with
            | Mov (r, src) when not (match src with Reg s -> s.rid = r.rid | _ -> false) ->
                Hashtbl.replace copies r.rid src
            | _ -> ());
            i)
          blk.instrs;
      blk.term <- map_term_operands subst blk.term)
    f.blocks;
  !changed

(* ---- block-local common subexpression elimination ---- *)

(* pure, side-effect-free instructions with a deterministic value *)
let cse_key (i : t) : (string * operand list) option =
  let mask_key p = String.concat "," (Array.to_list (Array.map string_of_int p)) in
  match i with
  | Binop (r, op, a, b) ->
      Some (Printf.sprintf "b%s%s" (Printer.string_of_binop op) (Types.to_string r.rty), [ a; b ])
  | Fbinop (r, op, a, b) ->
      Some (Printf.sprintf "f%s%s" (Printer.string_of_fbinop op) (Types.to_string r.rty), [ a; b ])
  | Icmp (r, cc, a, b) ->
      Some (Printf.sprintf "i%s%s" (Printer.string_of_icmp cc) (Types.to_string r.rty), [ a; b ])
  | Fcmp (r, cc, a, b) ->
      Some (Printf.sprintf "c%s%s" (Printer.string_of_fcmp cc) (Types.to_string r.rty), [ a; b ])
  | Cast (r, k, a) ->
      Some (Printf.sprintf "k%s%s" (Printer.string_of_cast k) (Types.to_string r.rty), [ a ])
  | Select (r, c, a, b) -> Some ("s" ^ Types.to_string r.rty, [ c; a; b ])
  | Extractlane (_, v, l) -> Some (Printf.sprintf "x%d" l, [ v ])
  | Broadcast (r, s) -> Some ("bc" ^ Types.to_string r.rty, [ s ])
  | Shuffle (r, v, p) -> Some ("sh" ^ Types.to_string r.rty ^ mask_key p, [ v ])
  | _ -> None

let operand_regs (ops : operand list) =
  List.filter_map (function Reg r -> Some r.rid | _ -> None) ops

let local_cse (f : func) : int =
  let changed = ref 0 in
  List.iter
    (fun (_, (blk : block)) ->
      (* (key, operands) -> available destination register *)
      let avail : ((string * operand list) * reg) list ref = ref [] in
      let invalidate rid =
        avail :=
          List.filter
            (fun (((_, ops), d) : (string * operand list) * reg) ->
              d.rid <> rid && not (List.mem rid (operand_regs ops)))
            !avail
      in
      blk.instrs <-
        List.map
          (fun i ->
            match cse_key i with
            | None ->
                (match dest i with Some r -> invalidate r.rid | None -> ());
                i
            | Some key -> (
                let d = Option.get (dest i) in
                match List.assoc_opt key !avail with
                | Some prev when Types.equal prev.rty d.rty && prev.rid <> d.rid ->
                    incr changed;
                    invalidate d.rid;
                    avail := (key, d) :: !avail;
                    Mov (d, Reg prev)
                | _ ->
                    invalidate d.rid;
                    avail := (key, d) :: !avail;
                    i))
          blk.instrs)
    f.blocks;
  !changed

(* ---- dead code elimination ---- *)

let is_pure (i : t) : bool =
  match i with
  | Binop _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Mov _ | Extractlane _
  | Insertlane _ | Broadcast _ | Shuffle _ | Ptestz _ ->
      true
  | Load _ | Store _ | Alloca _ | Call _ | Call_ind _ | Atomic_rmw _ | Cmpxchg _ | Gather _
  | Scatter _ ->
      false

let dead_code_eliminate (f : func) : int =
  let removed = ref 0 in
  let rec fixpoint () =
    let used = Hashtbl.create 64 in
    let see = function Reg r -> Hashtbl.replace used r.rid () | _ -> () in
    List.iter
      (fun (_, (blk : block)) ->
        List.iter (fun i -> List.iter see (operands i)) blk.instrs;
        List.iter see (term_operands blk.term))
      f.blocks;
    (* keep induction variables: the vectorizer's loop metadata names them *)
    List.iter (fun li -> Hashtbl.replace used li.l_ivar.rid ()) f.loops;
    let changed = ref false in
    List.iter
      (fun (_, (blk : block)) ->
        let keep i =
          match dest i with
          | Some r when is_pure i && not (Hashtbl.mem used r.rid) ->
              incr removed;
              changed := true;
              false
          | _ -> true
        in
        blk.instrs <- List.filter keep blk.instrs)
      f.blocks;
    if !changed then fixpoint ()
  in
  fixpoint ();
  !removed

(* ---- loop-invariant code motion ---- *)

(* Instructions safe to execute speculatively in the preheader even when
   the loop body never runs: pure and trap-free (divisions stay put). *)
let hoistable (i : t) : bool =
  match i with
  | Binop (_, (Sdiv | Udiv | Srem | Urem), _, _) -> false
  | Binop _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Mov _ -> true
  | _ -> false

(* Hoists invariant computations of single-block loop bodies recorded by
   the builder into the block that jumps into the loop header. *)
let licm (f : func) : int =
  let hoisted = ref 0 in
  List.iter
    (fun (li : loop_info) ->
      match List.assoc_opt li.l_body f.blocks with
      | Some body when body.term = Br li.l_latch ->
          (* registers redefined anywhere inside the loop are not invariant *)
          let loop_defs = Hashtbl.create 16 in
          List.iter
            (fun lbl ->
              match List.assoc_opt lbl f.blocks with
              | Some (b : block) ->
                  List.iter
                    (fun i ->
                      match dest i with
                      | Some r -> Hashtbl.replace loop_defs r.rid ()
                      | None -> ())
                    b.instrs
              | None -> ())
            [ li.l_header; li.l_body; li.l_latch ];
          Hashtbl.replace loop_defs li.l_ivar.rid ();
          let invariant_op = function
            | Reg r -> not (Hashtbl.mem loop_defs r.rid)
            | Imm _ | Fimm _ | Glob _ | Fref _ -> true
          in
          (* find the unique preheader: a block other than the latch whose
             terminator targets the header *)
          let preheader =
            List.filter
              (fun (l, (b : block)) ->
                l <> li.l_latch && List.mem li.l_header (successors b.term))
              f.blocks
          in
          (match preheader with
          | [ (pre_label, pre) ] ->
              (* a destination is only safe to hoist when the body is its
                 sole writer in the whole function (no pre-loop value can
                 be observed) and the body never reads it before writing *)
              let defined_elsewhere = Hashtbl.create 16 in
              List.iter
                (fun (l, (b : block)) ->
                  if l <> li.l_body then
                    List.iter
                      (fun i ->
                        match dest i with
                        | Some r -> Hashtbl.replace defined_elsewhere r.rid ()
                        | None -> ())
                      b.instrs)
                f.blocks;
              let use_before_def = Hashtbl.create 16 in
              let seen_def = Hashtbl.create 16 in
              List.iter
                (fun i ->
                  List.iter
                    (function
                      | Reg r when not (Hashtbl.mem seen_def r.rid) ->
                          Hashtbl.replace use_before_def r.rid ()
                      | _ -> ())
                    (operands i);
                  match dest i with
                  | Some r -> Hashtbl.replace seen_def r.rid ()
                  | None -> ())
                body.instrs;
              ignore pre_label;
              let moved = ref [] in
              body.instrs <-
                List.filter
                  (fun i ->
                    if
                      hoistable i
                      && List.for_all invariant_op (operands i)
                      &&
                      match dest i with
                      | Some d ->
                          (not (Hashtbl.mem defined_elsewhere d.rid))
                          && (not (Hashtbl.mem use_before_def d.rid))
                          && List.length
                               (List.filter
                                  (fun j ->
                                    match dest j with
                                    | Some r -> r.rid = d.rid
                                    | None -> false)
                                  body.instrs)
                             = 1
                      | None -> false
                    then begin
                      moved := i :: !moved;
                      incr hoisted;
                      false
                    end
                    else true)
                  body.instrs;
              pre.instrs <- pre.instrs @ List.rev !moved
          | _ -> ())
      | _ -> ())
    f.loops;
  !hoisted

(* ---- driver ---- *)

type stats = { folded : int; propagated : int; cse_hits : int; dce_removed : int }

let run_func (f : func) : stats =
  let folded = ref 0 and propagated = ref 0 and cse_hits = ref 0 and dce = ref 0 in
  for _ = 1 to 2 do
    propagated := !propagated + copy_propagate f;
    folded := !folded + constant_fold f;
    propagated := !propagated + copy_propagate f;
    cse_hits := !cse_hits + local_cse f;
    cse_hits := !cse_hits + licm f;
    dce := !dce + dead_code_eliminate f
  done;
  { folded = !folded; propagated = !propagated; cse_hits = !cse_hits; dce_removed = !dce }

(* Optimizes every function of [m] in place; returns aggregate stats. *)
let run (m : modul) : stats =
  List.fold_left
    (fun acc f ->
      let s = run_func f in
      {
        folded = acc.folded + s.folded;
        propagated = acc.propagated + s.propagated;
        cse_hits = acc.cse_hits + s.cse_hits;
        dce_removed = acc.dce_removed + s.dce_removed;
      })
    { folded = 0; propagated = 0; cse_hits = 0; dce_removed = 0 }
    m.funcs
