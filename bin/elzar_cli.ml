(** Command-line interface to the ELZAR framework.

    - [elzar list] — available workloads and case-study apps
    - [elzar run WORKLOAD] — execute under a build flavour, print counters
    - [elzar inject WORKLOAD] — run a fault-injection campaign
    - [elzar show WORKLOAD FUNC] — print a function's IR before/after a pass
    - [elzar app NAME] — run a case study and report throughput *)

open Cmdliner

let size_conv =
  let parse = function
    | "tiny" -> Ok Workloads.Workload.Tiny
    | "small" -> Ok Workloads.Workload.Small
    | "medium" -> Ok Workloads.Workload.Medium
    | "large" -> Ok Workloads.Workload.Large
    | s -> Error (`Msg ("unknown size " ^ s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Workloads.Workload.size_to_string s))

let build_of_string = function
  | "native" -> Ok Elzar.Native
  | "novec" -> Ok Elzar.Native_novec
  | "elzar" -> Ok (Elzar.Hardened Elzar.Harden_config.default)
  | "elzar-nochecks" -> Ok (Elzar.Hardened Elzar.Harden_config.no_checks)
  | "elzar-floats" -> Ok (Elzar.Hardened Elzar.Harden_config.floats_only)
  | "elzar-future" -> Ok (Elzar.Hardened Elzar.Harden_config.future_avx)
  | "elzar-extended" -> Ok (Elzar.Hardened Elzar.Harden_config.extended)
  | "elzar-reexec" -> Ok (Elzar.Hardened Elzar.Harden_config.reexec)
  | "swiftr" -> Ok Elzar.Swiftr
  | s -> Error (`Msg ("unknown build " ^ s))

let build_conv =
  Arg.conv
    (build_of_string, fun fmt b -> Format.pp_print_string fmt (Elzar.build_name b))

let build_arg =
  Arg.(value & opt build_conv (Elzar.Hardened Elzar.Harden_config.default)
       & info [ "b"; "build" ] ~doc:"Build flavour: native, novec, elzar, elzar-nochecks, elzar-floats, elzar-future, elzar-extended, elzar-reexec, swiftr.")

let size_arg =
  Arg.(value & opt size_conv Workloads.Workload.Small & info [ "s"; "size" ] ~doc:"Input size.")

let engine_conv =
  let parse = function
    | "reference" -> Ok Cpu.Machine.Reference
    | "closure" -> Ok Cpu.Machine.Closure
    | "block" -> Ok Cpu.Machine.Block
    | s -> Error (`Msg ("unknown engine " ^ s ^ " (expected reference, closure or block)"))
  in
  Arg.conv (parse, fun fmt e -> Format.pp_print_string fmt (Cpu.Machine.engine_to_string e))

(* [None] means "not given": each command picks its own default (the
   closure tier) and [inject] additionally honours the deprecated
   [--reference-engine] alias. *)
let engine_arg =
  Arg.(value & opt (some engine_conv) None
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: reference (the interpreter, kept as the executable \
                 specification), closure (per-instruction threaded code, the default) or \
                 block (fused superblock closures with precomputed timing). All engines \
                 are bit-identical; only wall time differs.")

let threads_arg = Arg.(value & opt int 2 & info [ "t"; "threads" ] ~doc:"Worker threads.")

(* ---- list ---- *)

let list_cmd =
  let run () =
    Printf.printf "workloads:\n";
    List.iter
      (fun w ->
        Printf.printf "  %-22s %s\n" w.Workloads.Workload.name
          w.Workloads.Workload.description)
      (Workloads.Registry.all @ Workloads.Registry.micro);
    Printf.printf "apps:\n";
    List.iter
      (fun a -> Printf.printf "  %-22s %s\n" a.Apps.App.name a.Apps.App.description)
      Apps.Registry_apps.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and apps") Term.(const run $ const ())

(* ---- run ---- *)

let run_cmd =
  let run name build nthreads size profile engine json =
    let w = Workloads.Registry.find name in
    let prof = if profile then Some (Cpu.Profile.create ()) else None in
    let engine =
      Option.value engine ~default:Cpu.Machine.default_config.Cpu.Machine.engine
    in
    let machine_cfg =
      { Cpu.Machine.default_config with Cpu.Machine.profile = prof; engine }
    in
    let r = Workloads.Workload.execute ~machine_cfg w ~build ~nthreads ~size in
    (match r.Cpu.Machine.trap with
    | Some t -> Printf.printf "trap: %s\n" (Cpu.Machine.string_of_trap t)
    | None -> ());
    let c = r.Cpu.Machine.totals in
    Printf.printf "build        %s\n" (Elzar.build_name build);
    Printf.printf "wall cycles  %d\n" r.Cpu.Machine.wall_cycles;
    Printf.printf "instructions %d (avx %d)\n" c.Cpu.Counters.instrs c.Cpu.Counters.avx_instrs;
    Printf.printf "loads/stores %d / %d (L1 miss %.2f%%)\n" c.Cpu.Counters.loads
      c.Cpu.Counters.stores (Cpu.Counters.l1_miss_pct c);
    Printf.printf "branches     %d (miss %.2f%%)\n" c.Cpu.Counters.branches
      (Cpu.Counters.branch_miss_pct c);
    Printf.printf "output       %s\n" (Digest.to_hex r.Cpu.Machine.output_digest);
    (match prof with Some p -> Format.printf "%a" Cpu.Profile.pp p | None -> ());
    match json with
    | Some path ->
        let params =
          [
            ("workload", Obs.Json.Str name);
            ("build", Obs.Json.Str (Elzar.build_name build));
            ("threads", Obs.Json.Int nthreads);
            ("size", Obs.Json.Str (Workloads.Workload.size_to_string size));
            ("engine", Obs.Json.Str (Cpu.Machine.engine_to_string engine));
          ]
        in
        Report.write path (Report.run_result ~params ?profile:prof r);
        Printf.printf "wrote %s\n" path
    | None -> ()
  in
  let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD") in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Attribute simulated cycles per instruction class (closure engine \
                   only) and print the table.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the run report (counters, output digest, optional profile) to \
                   $(docv) as versioned JSON.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload on the simulated machine")
    Term.(const run $ name_arg $ build_arg $ threads_arg $ size_arg $ profile
          $ engine_arg $ json)

(* ---- inject ---- *)

(* One --chaos entry: EVENT@SLOT with an optional trailing '!' for
   "persistent" (act on every execution of the slot, not just the first).
   EVENT is raise | hang | kill | slow:SECONDS. *)
let chaos_spec_of_string (s : string) : (Supervisor.chaos_spec, [ `Msg of string ]) result
    =
  let body, persistent =
    let l = String.length s in
    if l > 0 && s.[l - 1] = '!' then (String.sub s 0 (l - 1), true) else (s, false)
  in
  match String.index_opt body '@' with
  | None -> Error (`Msg (Printf.sprintf "chaos entry %S: expected EVENT@SLOT" s))
  | Some i -> (
      let ev = String.sub body 0 i in
      let slot_s = String.sub body (i + 1) (String.length body - i - 1) in
      match int_of_string_opt slot_s with
      | None -> Error (`Msg (Printf.sprintf "chaos entry %S: bad slot %S" s slot_s))
      | Some slot -> (
          let event =
            match ev with
            | "raise" -> Ok Supervisor.Chaos_raise
            | "hang" -> Ok Supervisor.Chaos_hang
            | "kill" -> Ok Supervisor.Chaos_kill
            | _ when String.length ev > 5 && String.sub ev 0 5 = "slow:" -> (
                match float_of_string_opt (String.sub ev 5 (String.length ev - 5)) with
                | Some d -> Ok (Supervisor.Chaos_slow d)
                | None -> Error (`Msg (Printf.sprintf "chaos entry %S: bad duration" s)))
            | _ ->
                Error
                  (`Msg
                     (Printf.sprintf
                        "chaos entry %S: unknown event %S (raise|hang|kill|slow:SECS)" s
                        ev))
          in
          Result.map (fun e -> Supervisor.chaos ~persistent ~slot e) event))

let chaos_conv : Supervisor.chaos_plan Arg.conv =
  let parse s =
    if s = "" then Ok []
    else
      List.fold_left
        (fun acc entry ->
          match (acc, chaos_spec_of_string entry) with
          | Ok l, Ok c -> Ok (l @ [ c ])
          | (Error _ as e), _ | _, (Error _ as e) -> e)
        (Ok []) (String.split_on_char ',' s)
  in
  Arg.conv (parse, fun fmt (l : Supervisor.chaos_plan) ->
      Format.fprintf fmt "<%d chaos specs>" (List.length l))

let inject_cmd =
  let run name build n seed jobs double same_bit model avf checkpoint quiet engine
      reference_engine no_fast_forward json no_supervise retries deadline_factor
      deadline_floor max_tool_errors chaos =
    let w = Workloads.Registry.find name in
    let spec = Workloads.Workload.fi_spec w ~build () in
    let engine =
      match engine with
      | Some e -> e
      | None ->
          if reference_engine then Cpu.Machine.Reference else spec.Fault.engine
    in
    let spec = { spec with Fault.engine } in
    let fast_forward = not no_fast_forward in
    (* Ctrl-C / SIGTERM: cooperative cancellation.  The flag stops the
       campaign at the next experiment boundary; the engine flushes and
       closes the checkpoint on the way out, so the partial campaign can
       be resumed.  The conventional 128+signal exit code is produced
       after the partial report is printed. *)
    let cancel = Atomic.make false in
    let sig_seen = ref Sys.sigint in
    let on_sig s =
      Atomic.set cancel true;
      sig_seen := s
    in
    (try
       Sys.set_signal Sys.sigint (Sys.Signal_handle on_sig);
       Sys.set_signal Sys.sigterm (Sys.Signal_handle on_sig)
     with Invalid_argument _ | Sys_error _ -> ());
    let progress =
      if quiet then None
      else
        Some
          (fun (p : Campaign.progress) ->
            if p.Campaign.completed mod 10 = 0 || p.Campaign.completed >= p.Campaign.total
            then
              Printf.eprintf "\r%d/%d injections (%.0fs elapsed, eta %s%s%s)   %!"
                p.Campaign.completed p.Campaign.total p.Campaign.elapsed
                (* no executed run yet (pure checkpoint replay so far):
                   there is no rate, so no ETA to print *)
                (if Float.is_nan p.Campaign.eta then "--:--"
                 else Printf.sprintf "%.0fs" p.Campaign.eta)
                (if p.Campaign.restored > 0 then
                   Printf.sprintf ", %d from checkpoint" p.Campaign.restored
                 else "")
                (if p.Campaign.quarantined > 0 then
                   Printf.sprintf ", %d quarantined" p.Campaign.quarantined
                 else "");
            if p.Campaign.completed >= p.Campaign.total then prerr_newline ())
    in
    let supervise =
      if no_supervise then None
      else
        Some
          {
            Supervisor.retries;
            deadline_factor;
            deadline_floor;
            max_tool_errors;
          }
    in
    let model = Fault.model_of_string model in
    let report =
      if double then
        Campaign.double ~seed ~n ~same_bit ?jobs ?progress ?checkpoint ~fast_forward
          ?supervise ~chaos ~cancel spec
      else
        match model with
        | Fault.Reg ->
            Campaign.single ~seed ~n ?jobs ?progress ?checkpoint ~fast_forward
              ?supervise ~chaos ~cancel spec
        | m ->
            Campaign.model_campaign ~seed ~n ?jobs ?progress ?checkpoint ~fast_forward
              ?supervise ~chaos ~cancel ~model:m spec
    in
    Format.printf "%a@." Fault.pp_stats report.Campaign.stats;
    let obs = Array.map snd report.Campaign.outcomes in
    (match Fault.mean_latency obs with
    | Some l -> Format.printf "mean detection latency: %.0f instrs@." l
    | None -> ());
    if avf then Format.printf "%a" Fault.pp_avf (Fault.avf_table obs);
    Format.printf "%a@." Campaign.pp_totals report;
    let nq = List.length report.Campaign.quarantined in
    if nq > 0 then begin
      Printf.eprintf "%d experiment(s) quarantined (excluded from the stats above):\n" nq;
      List.iter
        (fun te ->
          Format.eprintf "  %a@." Supervisor.pp_tool_error te;
          if te.Supervisor.te_backtrace <> "" then
            Format.eprintf "%s@." te.Supervisor.te_backtrace)
        report.Campaign.quarantined
    end;
    if report.Campaign.worker_deaths > 0 then
      Printf.eprintf "%d worker domain death(s); workers were respawned\n"
        report.Campaign.worker_deaths;
    if report.Campaign.interrupted then
      Printf.eprintf "campaign interrupted; partial results above%s\n"
        (match checkpoint with
        | Some f -> Printf.sprintf " — rerun with --checkpoint %s to resume" f
        | None -> " (no --checkpoint given, a rerun restarts from scratch)");
    (match json with
    | Some path ->
        let params =
          [
            ("workload", Obs.Json.Str name);
            ("build", Obs.Json.Str (Elzar.build_name build));
            ("n", Obs.Json.Int n);
            ("seed", Obs.Json.Int seed);
            ("double", Obs.Json.Bool double);
            ("fault_model", Obs.Json.Str (Fault.model_to_string model));
            ("engine", Obs.Json.Str (Cpu.Machine.engine_to_string engine));
            ("fast_forward", Obs.Json.Bool fast_forward);
            ("supervised", Obs.Json.Bool (supervise <> None));
          ]
        in
        Report.write path (Report.campaign ~params report);
        Printf.printf "wrote %s\n" path
    | None -> ());
    if report.Campaign.interrupted then
      exit (128 + if !sig_seen = Sys.sigterm then 15 else 2);
    if supervise <> None && nq > max_tool_errors then begin
      Printf.eprintf "too many tool errors: %d quarantined > --max-tool-errors %d\n" nq
        max_tool_errors;
      exit 3
    end
  in
  let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD") in
  let n = Arg.(value & opt int 100 & info [ "n" ] ~doc:"Number of injections.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ]
             ~doc:"Worker domains (default: one per recommended domain). Results are \
                   bit-identical for any value.")
  in
  let double =
    Arg.(value & flag & info [ "double" ] ~doc:"Double-bit campaign (two flips, §III-C).")
  in
  let model =
    Arg.(value & opt string "reg"
         & info [ "fault-model" ] ~docv:"MODEL"
             ~doc:"Fault model: reg (register SEUs, the paper's §IV-B campaign), mem \
                   (memory bit-flips), addr (effective-address faults), cf (control-flow \
                   faults), or mixed. Ignored with --double.")
  in
  let avf =
    Arg.(value & flag
         & info [ "avf" ]
             ~doc:"Print the per-instruction-class vulnerability (AVF) table.")
  in
  let same_bit =
    Arg.(value & opt bool true
         & info [ "same-bit" ]
             ~doc:"With --double, flip the same bit in both lanes (adversarial \
                   agreeing-replicas pattern).")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Persist completed experiments to $(docv); an interrupted campaign with \
                   the same parameters resumes from it instead of restarting.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the progress meter.") in
  let reference_engine =
    Arg.(value & flag
         & info [ "reference-engine" ]
             ~doc:"Deprecated alias for --engine reference (ignored when --engine is \
                   given).")
  in
  let no_fast_forward =
    Arg.(value & flag
         & info [ "no-fast-forward" ]
             ~doc:"Disable snapshot fast-forward: every injection run replays the whole \
                   fault-free prefix. Results are bit-identical; only wall time differs.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the campaign report (outcome histogram, AVF table, latency \
                   histogram, phase spans) to $(docv) as versioned JSON. The result \
                   sections are bit-identical for any --jobs value.")
  in
  let no_supervise =
    Arg.(value & flag
         & info [ "no-supervise" ]
             ~doc:"Run experiments without the supervision layer (no host-exception \
                   retry/quarantine, no wall-clock watchdog, no worker respawn). \
                   Results are bit-identical either way on campaigns with no tool \
                   errors.")
  in
  let retries =
    Arg.(value & opt int Supervisor.default.Supervisor.retries
         & info [ "retries" ]
             ~doc:"Re-executions of an experiment whose run raised a host exception \
                   before it is quarantined.")
  in
  let deadline_factor =
    Arg.(value & opt float Supervisor.default.Supervisor.deadline_factor
         & info [ "deadline-factor" ]
             ~doc:"Per-experiment wall-clock deadline, as a multiple of the running \
                   median experiment time; a run aborted twice by the watchdog is \
                   quarantined.")
  in
  let deadline_floor =
    Arg.(value & opt float Supervisor.default.Supervisor.deadline_floor
         & info [ "deadline-floor" ]
             ~doc:"Never deadline an experiment below this many seconds.")
  in
  let max_tool_errors =
    Arg.(value & opt int Supervisor.default.Supervisor.max_tool_errors
         & info [ "max-tool-errors" ]
             ~doc:"Exit nonzero (3) when more than this many experiments were \
                   quarantined. The campaign still completes and reports either way.")
  in
  let chaos =
    Arg.(value & opt chaos_conv []
         & info [ "chaos" ] ~docv:"PLAN"
             ~doc:"Test-only harness-failure injection: comma-separated EVENT@SLOT \
                   entries (raise@3, hang@5, slow:0.2@7, kill@9; trailing '!' makes an \
                   entry fire on every execution of its slot). Requires supervision.")
  in
  Cmd.v
    (Cmd.info "inject" ~doc:"Run a fault-injection campaign")
    Term.(const run $ name_arg $ build_arg $ n $ seed $ jobs $ double $ same_bit $ model
          $ avf $ checkpoint $ quiet $ engine_arg $ reference_engine $ no_fast_forward
          $ json $ no_supervise $ retries $ deadline_factor $ deadline_floor
          $ max_tool_errors $ chaos)

(* ---- show ---- *)

let show_cmd =
  let run name fname build size =
    let w = Workloads.Registry.find name in
    let m = Elzar.prepare build (w.Workloads.Workload.build size) in
    match Ir.Instr.find_func m fname with
    | Some f -> print_string (Ir.Printer.func_to_string f)
    | None -> Printf.printf "no function @%s\n" fname
  in
  let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD") in
  let fname = Arg.(value & pos 1 string "work" & info [] ~docv:"FUNCTION") in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a function's IR after the selected pass pipeline")
    Term.(const run $ name_arg $ fname $ build_arg $ size_arg)

(* ---- trace ---- *)

let trace_cmd =
  let run name build nthreads size limit =
    let w = Workloads.Registry.find name in
    let m = Elzar.prepare build (w.Workloads.Workload.build size) in
    let buf = Buffer.create 4096 in
    let cfg = { Cpu.Machine.default_config with trace = Some buf } in
    let machine = Cpu.Machine.create ~cfg ~flags_cmp:(Elzar.uses_flags_cmp build) m in
    w.Workloads.Workload.init size machine;
    ignore (Cpu.Machine.run ~args:[| Int64.of_int nthreads |] machine "main");
    let lines = String.split_on_char '\n' (Buffer.contents buf) in
    List.iteri (fun i l -> if i < limit then print_endline l) lines
  in
  let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD") in
  let limit = Arg.(value & opt int 100 & info [ "n" ] ~doc:"Lines of trace to print.") in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print an instruction-level execution trace (SDE debugtrace analogue)")
    Term.(const run $ name_arg $ build_arg $ threads_arg $ size_arg $ limit)

(* ---- app ---- *)

let app_cmd =
  let run name build nthreads client =
    let app = Apps.Registry_apps.find name in
    let client =
      match client with
      | "A" -> Apps.App.Ycsb Apps.Ycsb.A
      | "D" -> Apps.App.Ycsb Apps.Ycsb.D
      | _ -> Apps.App.Ab
    in
    let r = Apps.App.execute app ~build ~client ~nthreads in
    (match r.Cpu.Machine.trap with
    | Some t -> Printf.printf "trap: %s\n" (Cpu.Machine.string_of_trap t)
    | None -> ());
    Printf.printf "%s %s %s %dT: %.0f req/s (%d cycles)\n" name
      (Apps.App.client_to_string client) (Elzar.build_name build) nthreads
      (Apps.App.throughput app r) r.Cpu.Machine.wall_cycles
  in
  let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"APP") in
  let client = Arg.(value & opt string "A" & info [ "c"; "client" ] ~doc:"Client: A, D or ab.") in
  Cmd.v
    (Cmd.info "app" ~doc:"Run a case-study application")
    Term.(const run $ name_arg $ build_arg $ threads_arg $ client)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "elzar" ~version:"1.0.0"
             ~doc:"Triple modular redundancy using (simulated) Intel AVX")
          [ list_cmd; run_cmd; inject_cmd; show_cmd; trace_cmd; app_cmd ]))
